#!/usr/bin/env python3
"""Verifies an ardf-serve torture replay (scripts/serve_torture.sh).

Matches the daemon's response lines positionally against the manifest
scripts/serve_corpus.py wrote (the replay client is strictly
sequential, so order is exact), then enforces the robustness contract:

  - exactly one response line per request line, every line valid JSON;
  - poison lines answer with their designated error code;
  - every good lint render is bit-identical to a fresh single-shot
    `ardf-lint --format=json` run over the same file;
  - the starved-budget analyze completed degraded, not wedged;
  - the stats response carries the request-latency histogram (saved as
    the artifact) and counters proving errors, shedding, and at least
    one response-memo hit all happened.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path


def fail(msg):
    print(f"serve_verify.py: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--lint", required=True)
    ap.add_argument("--expect", required=True)
    ap.add_argument("--responses", required=True)
    ap.add_argument("--latency-out", required=True)
    args = ap.parse_args()

    manifest = json.loads(Path(args.expect).read_text())
    entries = manifest["entries"]
    classes = manifest["poison_classes"]
    lines = Path(args.responses).read_text().splitlines()
    if len(lines) != len(entries):
        fail(f"{len(entries)} requests but {len(lines)} response lines")
    if len(classes) < 6:
        fail(f"only {len(classes)} poison classes in the corpus: {classes}")

    # One fresh single-shot run per distinct file is the bit-identity
    # oracle (exit 1 just means findings were reported).
    def single_shot(path):
        proc = subprocess.run(
            [args.lint, "--format=json", path],
            capture_output=True,
            text=True,
        )
        if proc.returncode not in (0, 1):
            fail(f"ardf-lint crashed on {path} (rc={proc.returncode})")
        return proc.stdout

    oracle = {}
    stats_result = None
    good = errors = 0
    for pos, (entry, line) in enumerate(zip(entries, lines), start=1):
        try:
            resp = json.loads(line)
        except json.JSONDecodeError as err:
            fail(f"line {pos}: response is not JSON ({err}): {line[:120]}")
        if "id" in entry and resp.get("id") != entry["id"]:
            fail(f"line {pos}: id {resp.get('id')!r} != {entry['id']!r}")
        kind = entry["kind"]
        if kind == "error":
            if resp.get("ok") is not False:
                fail(f"line {pos} ({entry['cls']}): expected error, got "
                     f"{line[:160]}")
            code = resp["error"]["code"]
            if code != entry["code"]:
                fail(f"line {pos} ({entry['cls']}): code {code!r} != "
                     f"{entry['code']!r}")
            errors += 1
        elif kind == "lint":
            if resp.get("ok") is not True:
                fail(f"line {pos}: good lint refused: {line[:160]}")
            path = entry["file"]
            if path not in oracle:
                oracle[path] = single_shot(path)
            if resp["result"]["render"] != oracle[path]:
                fail(f"line {pos}: render for {path} is not bit-identical "
                     f"to single-shot ardf-lint")
            good += 1
        elif kind == "analyze-degraded":
            if resp.get("ok") is not True:
                fail(f"line {pos}: starved analyze refused: {line[:160]}")
            if resp["result"]["degraded"] < 1:
                fail(f"line {pos}: starved analyze reported no degradation")
        elif kind == "stats":
            if resp.get("ok") is not True:
                fail(f"line {pos}: stats refused: {line[:160]}")
            stats_result = resp["result"]
        elif kind == "shutdown":
            if resp.get("ok") is not True:
                fail(f"line {pos}: shutdown refused: {line[:160]}")
        else:
            fail(f"line {pos}: unknown manifest kind {kind!r}")

    if stats_result is None:
        fail("no stats response in the replay")
    hist = stats_result["request_ns"]
    if hist["count"] < good + errors:
        fail(f"latency histogram count {hist['count']} < {good + errors} "
             f"answered requests")
    if hist["p50_ns"] <= 0:
        fail("latency histogram has a zero p50")
    counters = stats_result["counters"]
    if counters.get("serve.errors", 0) < 1:
        fail("stats counters record no contained errors")
    # The replay is strictly sequential, so the bounded queue never
    # fills (serve.overloads stays 0 by design); the armed drills prove
    # themselves through the failpoint hit counter instead.
    if counters.get("failpoint.hits", 0) < 2:
        fail("stats counters record fewer than 2 failpoint drill hits")
    if counters.get("serve.cache.hits", 0) < 1:
        fail("stats counters record no response-memo hit")

    Path(args.latency_out).write_text(
        json.dumps(stats_result, indent=2) + "\n"
    )
    print(
        f"serve_verify.py: PASS: {good} good renders bit-identical, "
        f"{errors} poison lines contained ({len(classes)} classes), "
        f"p50={hist['p50_ns']}ns p99={hist['p99_ns']}ns over "
        f"{hist['count']} requests"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
