#!/usr/bin/env sh
# Runs the batching, scaling, kernel, and lint benchmarks and records
# JSON snapshots at the repo root (BENCH_batch.json, BENCH_scaling.json,
# BENCH_kernel.json, BENCH_lint.json), plus a telemetry counter snapshot
# (BENCH_stats.json: ardf-stats over the bundled example programs).
#
# Usage: scripts/bench_snapshot.sh [build-dir] [repetitions]
#   build-dir    defaults to ./build; configured on the fly if it has
#                never been configured.
#   repetitions  forwarded as --benchmark_repetitions (also settable via
#                the BENCH_REPETITIONS environment variable; default 1).
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
REPETITIONS=${2:-${BENCH_REPETITIONS:-1}}

# A build dir without a CMake cache has never been configured: do it
# here (explicitly Release) so the script works from a fresh checkout.
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
fi

# Refuse to snapshot anything but a Release build: committed BENCH_*.json
# numbers from -O0/debug binaries poison every later comparison. An empty
# cached value means the dir was configured before the top-level default
# became a cache entry -- reconfigure rather than guess.
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "$BUILD_DIR/CMakeCache.txt")
if [ "$BUILD_TYPE" != "Release" ]; then
  echo "bench_snapshot.sh: error: '$BUILD_DIR' is configured as" \
    "CMAKE_BUILD_TYPE='${BUILD_TYPE:-<empty>}', not Release." >&2
  echo "  Benchmarks from non-Release builds must not be recorded." >&2
  echo "  Re-run: cmake -B '$BUILD_DIR' -S '$REPO_ROOT'" \
    "-DCMAKE_BUILD_TYPE=Release" >&2
  exit 2
fi

cmake --build "$BUILD_DIR" \
  --target bench_batch bench_scaling bench_kernel bench_lint ardf-stats -j

"$BUILD_DIR/bench/bench_batch" \
  --benchmark_repetitions="$REPETITIONS" \
  --benchmark_out="$REPO_ROOT/BENCH_batch.json" \
  --benchmark_out_format=json
"$BUILD_DIR/bench/bench_scaling" \
  --benchmark_repetitions="$REPETITIONS" \
  --benchmark_out="$REPO_ROOT/BENCH_scaling.json" \
  --benchmark_out_format=json
"$BUILD_DIR/bench/bench_kernel" \
  --benchmark_repetitions="$REPETITIONS" \
  --benchmark_out="$REPO_ROOT/BENCH_kernel.json" \
  --benchmark_out_format=json
"$BUILD_DIR/bench/bench_lint" \
  --benchmark_repetitions="$REPETITIONS" \
  --benchmark_out="$REPO_ROOT/BENCH_lint.json" \
  --benchmark_out_format=json

# Telemetry counter snapshot over the bundled examples: cache hit rates
# and the 3N/2N cost-bound verdicts ride along with the timing runs.
"$BUILD_DIR/tools/ardf-stats" \
  --json="$REPO_ROOT/BENCH_stats.json" \
  "$REPO_ROOT"/examples/programs/*.arf

echo "Wrote $REPO_ROOT/BENCH_batch.json, $REPO_ROOT/BENCH_scaling.json," \
  "$REPO_ROOT/BENCH_kernel.json, $REPO_ROOT/BENCH_lint.json," \
  "and $REPO_ROOT/BENCH_stats.json"
