#!/usr/bin/env sh
# Runs the batching, scaling, kernel, and lint benchmarks and records
# JSON snapshots at the repo root (BENCH_batch.json, BENCH_scaling.json,
# BENCH_kernel.json, BENCH_lint.json). Assumes the project is already
# configured in ./build; pass a different build dir as $1.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}

cmake --build "$BUILD_DIR" \
  --target bench_batch bench_scaling bench_kernel bench_lint -j

"$BUILD_DIR/bench/bench_batch" \
  --benchmark_out="$REPO_ROOT/BENCH_batch.json" \
  --benchmark_out_format=json
"$BUILD_DIR/bench/bench_scaling" \
  --benchmark_out="$REPO_ROOT/BENCH_scaling.json" \
  --benchmark_out_format=json
"$BUILD_DIR/bench/bench_kernel" \
  --benchmark_out="$REPO_ROOT/BENCH_kernel.json" \
  --benchmark_out_format=json
"$BUILD_DIR/bench/bench_lint" \
  --benchmark_out="$REPO_ROOT/BENCH_lint.json" \
  --benchmark_out_format=json

echo "Wrote $REPO_ROOT/BENCH_batch.json, $REPO_ROOT/BENCH_scaling.json," \
  "$REPO_ROOT/BENCH_kernel.json, and $REPO_ROOT/BENCH_lint.json"
