#!/usr/bin/env sh
# Runs the batching, scaling, kernel, summary, lint, nest, and serve
# benchmarks and records JSON snapshots at the repo root
# (BENCH_batch.json, BENCH_scaling.json, BENCH_kernel.json,
# BENCH_summary.json, BENCH_lint.json, BENCH_nest.json,
# BENCH_serve.json), plus a
# telemetry snapshot (BENCH_stats.json: ardf-stats over the bundled
# example programs -- deterministic counters, derived rates, and the
# log2-bucketed latency histogram summaries with p50/p95/p99).
#
# scripts/bench_trend.py merges the recorded snapshots into a trend
# table and (in --check mode) gates on deterministic-counter drift.
#
# Usage: scripts/bench_snapshot.sh [build-dir] [repetitions]
#   build-dir    defaults to ./build; configured on the fly if it has
#                never been configured.
#   repetitions  forwarded as --benchmark_repetitions (also settable via
#                the BENCH_REPETITIONS environment variable; default 1).
#                With more than one repetition, only the aggregate rows
#                (median/mean/stddev) are recorded, so committed
#                snapshots carry the stable statistic instead of every
#                raw rep.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
REPETITIONS=${2:-${BENCH_REPETITIONS:-1}}

# A build dir without a CMake cache has never been configured: do it
# here (explicitly Release) so the script works from a fresh checkout.
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
fi

# Refuse to snapshot anything but a Release build: committed BENCH_*.json
# numbers from -O0/debug binaries poison every later comparison. An empty
# cached value means the dir was configured before the top-level default
# became a cache entry -- reconfigure rather than guess.
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "$BUILD_DIR/CMakeCache.txt")
if [ "$BUILD_TYPE" != "Release" ]; then
  echo "bench_snapshot.sh: error: '$BUILD_DIR' is configured as" \
    "CMAKE_BUILD_TYPE='${BUILD_TYPE:-<empty>}', not Release." >&2
  echo "  Benchmarks from non-Release builds must not be recorded." >&2
  echo "  Re-run: cmake -B '$BUILD_DIR' -S '$REPO_ROOT'" \
    "-DCMAKE_BUILD_TYPE=Release" >&2
  exit 2
fi

cmake --build "$BUILD_DIR" --target \
  bench_batch bench_scaling bench_kernel bench_summary bench_lint \
  bench_nest bench_serve ardf-stats -j

# With repetitions, forward only the aggregates into the snapshot.
AGGREGATE_FLAGS=""
if [ "$REPETITIONS" -gt 1 ]; then
  AGGREGATE_FLAGS="--benchmark_report_aggregates_only=true"
fi

# run_bench <name>: runs bench_<name>, records BENCH_<name>.json, and
# verifies the recorded context proves the *library* was compiled as
# release. Google Benchmark's own "library_build_type" field describes
# how libbenchmark was built (the distro package is assertion-enabled,
# so that field legitimately reads "debug"); the guard that protects our
# numbers is the ardf_library_build_type context the bench mains embed,
# which reflects libardf's actual compile flags.
run_bench() {
  OUT="$REPO_ROOT/BENCH_$1.json"
  # shellcheck disable=SC2086 -- AGGREGATE_FLAGS is intentionally split.
  "$BUILD_DIR/bench/bench_$1" \
    --benchmark_repetitions="$REPETITIONS" \
    $AGGREGATE_FLAGS \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json
  if ! grep -q '"ardf_library_build_type": "release"' "$OUT"; then
    echo "bench_snapshot.sh: error: $OUT was measured against a" \
      "debug-typed libardf; refusing to record it." >&2
    echo "  Rebuild with -DCMAKE_BUILD_TYPE=Release and re-run." >&2
    rm -f "$OUT"
    exit 2
  fi
}

run_bench batch
run_bench scaling
run_bench kernel
run_bench summary
run_bench lint
run_bench nest
run_bench serve

# Telemetry snapshot over the bundled examples: cache hit rates, the
# 3N/2N cost-bound verdicts, and the latency histogram summaries
# (ardf-stats always runs with timings enabled, so the "histograms"
# section is populated) ride along with the timing runs.
"$BUILD_DIR/tools/ardf-stats" \
  --json="$REPO_ROOT/BENCH_stats.json" \
  "$REPO_ROOT"/examples/programs/*.arf

if ! grep -q '"histograms"' "$REPO_ROOT/BENCH_stats.json"; then
  echo "bench_snapshot.sh: error: BENCH_stats.json has no histogram" \
    "section; ardf-stats was built without the latency histograms." >&2
  exit 2
fi

echo "Wrote $REPO_ROOT/BENCH_batch.json, $REPO_ROOT/BENCH_scaling.json," \
  "$REPO_ROOT/BENCH_kernel.json, $REPO_ROOT/BENCH_summary.json," \
  "$REPO_ROOT/BENCH_lint.json, $REPO_ROOT/BENCH_nest.json," \
  "$REPO_ROOT/BENCH_serve.json, and $REPO_ROOT/BENCH_stats.json"
