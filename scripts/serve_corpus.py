#!/usr/bin/env python3
"""Builds the poisoned request corpus that scripts/serve_torture.sh
replays against a live ardf-serve daemon.

Writes two files:

  requests.ndjson  one request per line, in replay order: two
                   sacrificial requests that soak up the armed
                   failpoints (serve.request@1:throw answers the first
                   line with an internal error; serve.session@1:breach
                   sheds the first fresh-document build), then rounds of
                   poison lines interleaved with good lint requests over
                   the bundled example programs, a memo-hit repeat, a
                   stats probe, and an orderly shutdown.
  expect.json      a positional manifest: one entry per request line
                   with the response contract scripts/serve_verify.py
                   enforces (ok/error, error code, bit-identical render,
                   degraded count, ...).

The replay client is strictly sequential (one request in flight), so
positional matching of responses to manifest entries is exact, and the
failpoint @1 ordinals burn deterministically on the sacrificial lines.
"""

import json
import sys
from pathlib import Path


def lint_request(rid, path, source):
    return {"method": "lint", "id": rid, "file": str(path), "source": source}


def main():
    if len(sys.argv) != 4:
        print(
            "usage: serve_corpus.py <examples-dir> <requests.ndjson> "
            "<expect.json>",
            file=sys.stderr,
        )
        return 2
    examples_dir = Path(sys.argv[1])
    examples = sorted(examples_dir.glob("*.arf"))
    if not examples:
        print(f"serve_corpus.py: no .arf files in {examples_dir}",
              file=sys.stderr)
        return 2
    sources = {p: p.read_text() for p in examples}

    lines = []  # raw request lines (some intentionally are not JSON)
    expect = []  # positional manifest, one entry per line

    def add(line, entry):
        lines.append(line)
        expect.append(entry)

    def add_json(obj, entry):
        add(json.dumps(obj, separators=(",", ":")), entry)

    rid = 0

    def next_id():
        nonlocal rid
        rid += 1
        return rid

    # --- Sacrificial requests: burn the armed @1 failpoint ordinals so
    # every later line sees a clean daemon. The throw fires before the
    # request is parsed, so that response carries no id.
    first = examples[0]
    add_json(
        lint_request(next_id(), first, sources[first]),
        {"kind": "error", "code": "internal", "cls": "failpoint-throw"},
    )
    add_json(
        lint_request(next_id(), "sacrificial.arf", sources[first]),
        {"id": rid, "kind": "error", "code": "overloaded",
         "cls": "failpoint-breach"},
    )

    # --- The poison classes. Each returns (line, manifest-entry); ids
    # are omitted where the daemon cannot recover one (the verifier
    # matches positionally).
    deep_source = ("do i0 = 1, 2 {\n" * 300) + "A[i0] = 1;\n" + ("}\n" * 300)

    def poisons():
        yield ('{"method":', {"kind": "error", "code": "bad-request",
                              "cls": "malformed-json"})
        yield ("[" * 4000, {"kind": "error", "code": "bad-request",
                            "cls": "json-depth-bomb"})
        i = next_id()
        yield (
            json.dumps(
                {"method": "analyze", "id": i, "file": "bomb.arf",
                 "source": deep_source},
                separators=(",", ":"),
            ),
            {"id": i, "kind": "error", "code": "bad-request",
             "cls": "source-parser-bomb"},
        )
        # Refused by the line reader before parsing: no id comes back.
        yield (
            '{"method":"lint","source":"' + "a" * 100000 + '"}',
            {"kind": "error", "code": "payload-too-large",
             "cls": "oversized-payload"},
        )
        i = next_id()
        yield (
            json.dumps({"method": "frobnicate", "id": i},
                       separators=(",", ":")),
            {"id": i, "kind": "error", "code": "bad-request",
             "cls": "unknown-method"},
        )
        i = next_id()
        yield (
            json.dumps({"method": "lint", "id": i, "file": "x.arf"},
                       separators=(",", ":")),
            {"id": i, "kind": "error", "code": "bad-request",
             "cls": "missing-source"},
        )
        i = next_id()
        yield (
            json.dumps(
                {"method": "lint", "id": i, "file": "x.arf",
                 "source": [1, 2]},
                separators=(",", ":"),
            ),
            {"id": i, "kind": "error", "code": "bad-request",
             "cls": "mistyped-field"},
        )
        # Hostile-but-legal: a starved budget must degrade, not wedge.
        i = next_id()
        yield (
            json.dumps(
                {"method": "analyze", "id": i, "file": str(first),
                 "source": sources[first], "budget": {"visits": 1}},
                separators=(",", ":"),
            ),
            {"id": i, "kind": "analyze-degraded"},
        )

    # --- Interleave: every poison line is followed by a good lint that
    # must render bit-identically to single-shot ardf-lint.
    poison_pool = list(poisons())
    pi = 0
    for _round in range(2):
        for path in examples:
            line, entry = poison_pool[pi % len(poison_pool)]
            pi += 1
            add(line, entry)
            add_json(
                lint_request(next_id(), path, sources[path]),
                {"id": rid, "kind": "lint", "file": str(path)},
            )

    # --- Memo hit: same file + source again; the response must replay
    # the identical render (the verifier checks the stats counter too).
    add_json(
        lint_request(next_id(), first, sources[first]),
        {"id": rid, "kind": "lint", "file": str(first)},
    )

    add_json(
        {"method": "stats", "id": 98},
        {"id": 98, "kind": "stats"},
    )
    add_json(
        {"method": "shutdown", "id": 99},
        {"id": 99, "kind": "shutdown"},
    )

    Path(sys.argv[2]).write_text("\n".join(lines) + "\n")
    classes = sorted({e["cls"] for e in expect if "cls" in e})
    Path(sys.argv[3]).write_text(
        json.dumps({"entries": expect, "poison_classes": classes}, indent=2)
        + "\n"
    )
    print(
        f"serve_corpus.py: {len(lines)} request lines, "
        f"{len(classes)} poison classes: {', '.join(classes)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
