#!/usr/bin/env sh
# Boots ardf-serve on a Unix socket with fault-injection drills armed,
# replays a poisoned request corpus through the daemon's own client
# mode, and verifies the robustness envelope end to end:
#
#   - the daemon answers every line (poison included) and never dies:
#     the replay ends with an orderly shutdown, exit code 0;
#   - every good lint request renders bit-identically to a fresh
#     single-shot `ardf-lint --format=json` run over the same file;
#   - each poison class (malformed JSON, JSON depth bomb, source parser
#     bomb, oversized payload, unknown method, missing/mistyped fields)
#     gets its designated error code, not a crash;
#   - the armed failpoints (serve.request throw, serve.session breach)
#     burn on sacrificial requests and the daemon keeps serving;
#   - the final stats response carries the request-latency histogram,
#     which is saved as the run's artifact.
#
# Usage: scripts/serve_torture.sh [build-dir] [out-dir]
#   build-dir  defaults to ./build (must contain tools/ardf-serve and
#              tools/ardf-lint).
#   out-dir    defaults to ./serve-torture-out; receives requests.ndjson,
#              responses.ndjson, daemon.log, and serve-latency.json.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
OUT_DIR=${2:-"$REPO_ROOT/serve-torture-out"}
SERVE="$BUILD_DIR/tools/ardf-serve"
LINT="$BUILD_DIR/tools/ardf-lint"

for Tool in "$SERVE" "$LINT"; do
  if [ ! -x "$Tool" ]; then
    echo "serve_torture.sh: error: missing $Tool (build ardf-serve and" \
      "ardf-lint first)" >&2
    exit 2
  fi
done

mkdir -p "$OUT_DIR"
# Unix socket paths are length-limited (~104 bytes); mktemp in /tmp
# keeps the path short regardless of where the checkout lives.
SOCK_DIR=$(mktemp -d /tmp/ardf-serve.XXXXXX)
SOCK="$SOCK_DIR/ardf.sock"
trap 'rm -rf "$SOCK_DIR"' EXIT

# Build the corpus: two sacrificial requests that soak up the armed
# failpoints, then poison lines interleaved with good lints over the
# bundled examples, a memo-hit repeat, a stats probe, and shutdown.
python3 "$REPO_ROOT/scripts/serve_corpus.py" \
  "$REPO_ROOT/examples/programs" \
  "$OUT_DIR/requests.ndjson" "$OUT_DIR/expect.json"

# Boot the daemon with the drills armed. The client replays the corpus
# strictly one line at a time (send, await response, repeat), so the
# @1 ordinals deterministically burn on the two sacrificial requests.
ARDF_FAILPOINTS='serve.request@1:throw,serve.session@1:breach' \
  "$SERVE" --socket="$SOCK" --workers=2 --deadline-ms=5000 \
  --max-request-bytes=65536 --tenant-quota=64 2>"$OUT_DIR/daemon.log" &
DAEMON_PID=$!

# The daemon unlinks-then-binds before announcing itself on stderr;
# wait for the socket node rather than racing the boot.
Tries=0
while [ ! -S "$SOCK" ]; do
  Tries=$((Tries + 1))
  if [ "$Tries" -gt 100 ]; then
    echo "serve_torture.sh: error: daemon never bound $SOCK" >&2
    cat "$OUT_DIR/daemon.log" >&2 || true
    kill "$DAEMON_PID" 2>/dev/null || true
    exit 2
  fi
  sleep 0.1
done

"$SERVE" --connect="$SOCK" \
  <"$OUT_DIR/requests.ndjson" >"$OUT_DIR/responses.ndjson"

# Survival is the headline assertion: the shutdown request (last corpus
# line) must produce an orderly exit 0, not a crash or a hang.
if ! wait "$DAEMON_PID"; then
  echo "serve_torture.sh: error: daemon exited abnormally" >&2
  cat "$OUT_DIR/daemon.log" >&2 || true
  exit 1
fi

# Verify every response against the manifest and extract the latency
# histogram artifact.
python3 "$REPO_ROOT/scripts/serve_verify.py" \
  --lint="$LINT" \
  --expect="$OUT_DIR/expect.json" \
  --responses="$OUT_DIR/responses.ndjson" \
  --latency-out="$OUT_DIR/serve-latency.json"

echo "serve_torture.sh: PASS (artifacts in $OUT_DIR)"
