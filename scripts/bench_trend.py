#!/usr/bin/env python3
"""Merge BENCH_*.json snapshots into one trend table, and gate on drift.

Two modes:

  bench_trend.py [--dir DIR] [--tsv]
      Reads every BENCH_*.json under DIR (default: the repo root) and
      prints one merged table: a row per benchmark (median-or-single
      real time in ns) from the Google Benchmark snapshots, followed by
      the deterministic telemetry counters and histogram summaries from
      BENCH_stats.json.

  bench_trend.py --check BASELINE CURRENT
      Compares the deterministic counters of two ardf-stats JSON files
      (the committed BENCH_stats.json vs. a fresh scrape over the same
      inputs). Timings are machine noise and are ignored; the counters
      below are pure functions of the source corpus and the analysis,
      so ANY drift means the analysis itself changed and the snapshot
      must be regenerated deliberately. Exits 1 on drift, 0 otherwise.

Only the standard library is used; no third-party packages.
"""

import argparse
import json
import os
import sys

# Counters that must be bit-stable for a fixed corpus: solver work
# totals and the paper's visit-bound instrumentation. Cache hit/miss
# counters stay out -- they are deterministic too, but legitimately
# shift with engine defaults; the gate is for analysis drift.
DETERMINISTIC_COUNTERS = [
    "solver.node_visits",
    "solver.meet_ops",
    "solver.apply_ops",
    "solver.passes",
    "solver.must.node_visits",
    "solver.must.visit_bound",
    "solver.may.node_visits",
    "solver.may.visit_bound",
]


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def benchmark_rows(name, doc):
    """Yields (snapshot, benchmark, ns) rows from a Google Benchmark doc.

    With repetitions recorded as aggregates, only the median row is
    forwarded (the stable statistic); single-rep snapshots forward the
    plain iteration rows.
    """
    benches = doc.get("benchmarks", [])
    medians = [b for b in benches if b.get("run_type") == "aggregate"
               and b.get("aggregate_name") == "median"]
    rows = medians if medians else [
        b for b in benches if b.get("run_type", "iteration") == "iteration"
    ]
    for b in rows:
        label = b.get("run_name") or b.get("name", "?")
        yield name, label, float(b.get("real_time", 0.0))


def stats_rows(doc):
    """Yields (section, key, value) rows from an ardf-stats JSON doc."""
    for key in DETERMINISTIC_COUNTERS:
        if key in doc.get("counters", {}):
            yield "counter", key, doc["counters"][key]
    for name, h in sorted(doc.get("histograms", {}).items()):
        for q in ("count", "p50_ns", "p95_ns", "p99_ns"):
            if q in h:
                yield "histogram", "%s.%s" % (name, q), h[q]


def cmd_table(root, tsv):
    paths = sorted(
        os.path.join(root, f)
        for f in os.listdir(root)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not paths:
        print("bench_trend.py: no BENCH_*.json under %s" % root,
              file=sys.stderr)
        return 2

    rows = []
    for path in paths:
        snap = os.path.basename(path)[len("BENCH_"):-len(".json")]
        try:
            doc = load(path)
        except (OSError, ValueError) as e:
            print("bench_trend.py: skipping %s: %s" % (path, e),
                  file=sys.stderr)
            continue
        if "benchmarks" in doc:
            for _, label, ns in benchmark_rows(snap, doc):
                rows.append((snap, label, "%.0f" % ns, "ns"))
        else:
            for section, key, value in stats_rows(doc):
                rows.append((snap, key, str(value),
                             "ns" if key.endswith("_ns") else section))

    if tsv:
        for r in rows:
            print("\t".join(r))
        return 0

    widths = [max(len(r[i]) for r in rows + [("snapshot", "name", "value",
                                              "unit")]) for i in range(4)]
    fmt = "  ".join("%%-%ds" % w for w in widths)
    print(fmt % ("snapshot", "name", "value", "unit"))
    print(fmt % tuple("-" * w for w in widths))
    for r in rows:
        print(fmt % r)
    return 0


def cmd_check(baseline_path, current_path):
    baseline = load(baseline_path)
    current = load(current_path)
    drifted = []
    for key in DETERMINISTIC_COUNTERS:
        b = baseline.get("counters", {}).get(key)
        c = current.get("counters", {}).get(key)
        if b is None or c is None:
            # A counter absent from either side is itself a drift: the
            # telemetry schema changed under the snapshot.
            drifted.append((key, b, c))
        elif b != c:
            drifted.append((key, b, c))
    if drifted:
        print("bench_trend.py: deterministic counters drifted from %s:"
              % baseline_path, file=sys.stderr)
        for key, b, c in drifted:
            print("  %-28s %s -> %s" % (key, b, c), file=sys.stderr)
        print("  If the analysis change is intentional, regenerate the"
              " snapshot with scripts/bench_snapshot.sh.", file=sys.stderr)
        return 1
    print("bench_trend.py: %d deterministic counters match %s"
          % (len(DETERMINISTIC_COUNTERS), baseline_path))
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        description="Merge BENCH_*.json snapshots; gate deterministic "
                    "counter drift.")
    ap.add_argument("--dir", default=None,
                    help="directory holding BENCH_*.json "
                         "(default: repo root, inferred from this script)")
    ap.add_argument("--tsv", action="store_true",
                    help="machine-readable tab-separated output")
    ap.add_argument("--check", nargs=2, metavar=("BASELINE", "CURRENT"),
                    help="compare deterministic counters of two "
                         "ardf-stats JSON files; exit 1 on drift")
    args = ap.parse_args(argv)

    if args.check:
        return cmd_check(args.check[0], args.check[1])
    root = args.dir or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    return cmd_table(root, args.tsv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
