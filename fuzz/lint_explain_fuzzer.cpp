//===- fuzz/lint_explain_fuzzer.cpp - libFuzzer target for --explain ------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the full lint pipeline with remarks enabled (the --explain
/// path: provenance re-solve, bit-identity cross-check, derivation
/// build, all three renderers) over arbitrary bytes. The contract under
/// malformed input is degrade-only:
///
///   1. lintSource with Explain set never crashes or throws (enforced
///      by the fuzzer process plus its sanitizers),
///   2. every attached evidence trail is non-empty and its embedded
///      derivation JSON is brace-delimited,
///   3. the renderers accept whatever diagnostics came back -- the
///      text, JSON-lines, and SARIF writers must not trip on evidence
///      attached to recovered partial programs.
///
/// The first input byte picks the engine and whether a check filter is
/// applied, so the cross-check path is exercised against every fast
/// engine; the rest is the source text.
///
/// Build (requires Clang):
///   cmake -B build-fuzz -DARDF_BUILD_FUZZERS=ON \
///         -DCMAKE_CXX_COMPILER=clang++ && cmake --build build-fuzz
///   build-fuzz/fuzz/lint_explain_fuzzer -max_total_time=60 fuzz/corpus
///
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include "lint/Render.h"

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

using namespace ardf;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  uint8_t Sel = Size ? Data[0] : 0;
  std::string Source(reinterpret_cast<const char *>(Data + (Size ? 1 : 0)),
                     Size ? Size - 1 : 0);

  LintOptions Opts;
  Opts.Explain = true;
  switch (Sel & 3) {
  case 0:
    Opts.Engine = SolverOptions::Engine::Reference;
    break;
  case 1:
    Opts.Engine = SolverOptions::Engine::PackedKernel;
    break;
  case 2:
    Opts.Engine = SolverOptions::Engine::PackedSimd;
    break;
  default:
    Opts.Engine = SolverOptions::Engine::Summary;
    break;
  }
  if (Sel & 4)
    Opts.ExplainCheck = "cross-iteration-conflict";

  LintResult R = lintSource(Source, "fuzz.arf", Opts);

  for (const Diagnostic &D : R.Diags) {
    if (D.hasEvidence()) {
      if (D.DerivationJson.empty())
        continue; // trail without DAG is allowed, not the reverse
      if (D.DerivationJson.front() != '{' || D.DerivationJson.back() != '}')
        __builtin_trap(); // embedded derivation must be a JSON object
    } else if (!D.DerivationJson.empty()) {
      __builtin_trap(); // a DAG without a trail is a wiring bug
    }
  }

  // All three renderers must swallow whatever the degraded pipeline
  // produced; rendering throws nothing and the fuzzer traps on crash.
  SourceMap Sources;
  Sources.add("fuzz.arf", Source);
  std::ostringstream Text, Json, Sarif;
  renderText(Text, R.Diags, Sources);
  renderJsonLines(Json, R.Diags);
  renderSarif(Sarif, R.Diags);
  return 0;
}
