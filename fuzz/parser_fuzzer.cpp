//===- fuzz/parser_fuzzer.cpp - libFuzzer target for the .arf parser ------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives parseProgram over arbitrary bytes and traps on any violation
/// of the recovery-mode contract:
///
///   1. parseProgram never crashes or throws (enforced by the fuzzer
///      process itself plus the sanitizers it is built with),
///   2. a failed parse always carries located diagnostics (line and
///      column >= 1),
///   3. the partial program is well-formed: its pretty-printed form
///      re-parses cleanly and printing is a fixed point.
///
/// Build (requires Clang):
///   cmake -B build-fuzz -DARDF_BUILD_FUZZERS=ON \
///         -DCMAKE_CXX_COMPILER=clang++ && cmake --build build-fuzz
///   build-fuzz/fuzz/parser_fuzzer -max_total_time=60 fuzz/corpus
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include <cstddef>
#include <cstdint>
#include <string>

using namespace ardf;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string Source(reinterpret_cast<const char *>(Data), Size);

  ParseResult First = parseProgram(Source);
  if (!First.succeeded() && First.Diags.empty())
    __builtin_trap(); // failed parses must explain themselves
  for (const ParseDiagnostic &D : First.Diags)
    if (D.Line < 1 || D.Col < 1)
      __builtin_trap(); // every diagnostic points at a source position

  std::string Printed = programToString(First.Prog);
  ParseResult Second = parseProgram(Printed);
  if (!Second.succeeded())
    __builtin_trap(); // recovered partial programs stay well-formed
  if (programToString(Second.Prog) != Printed)
    __builtin_trap(); // printing is a fixed point of parse-then-print
  return 0;
}
