//===- fuzz/serve_request_fuzzer.cpp - libFuzzer target for the protocol --===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the daemon's untrusted-input layers over arbitrary bytes and
/// traps on any violation of the totality contract:
///
///   1. json::parse never crashes, throws, or overflows the stack
///      (depth-bombed input included -- the cap must hold),
///   2. an accepted JSON value re-serializes to a single line that
///      parses back to itself (writer/parser agreement),
///   3. parseRequest is total: every line yields either a valid
///      Request or a non-empty error message, never an exception,
///   4. a rejected line still renders a well-formed error-response
///      line (what the daemon would actually send), which re-parses
///      as JSON.
///
/// Build (requires Clang):
///   cmake -B build-fuzz -DARDF_BUILD_FUZZERS=ON \
///         -DCMAKE_CXX_COMPILER=clang++ && cmake --build build-fuzz
///   build-fuzz/fuzz/serve_request_fuzzer -max_total_time=60
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cstddef>
#include <cstdint>
#include <string>

using namespace ardf;
using namespace ardf::serve;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string Line(reinterpret_cast<const char *>(Data), Size);

  json::ParseOutcome J = json::parse(Line);
  if (J.Ok) {
    // Writer/parser round trip: the rewritten form is one line and a
    // fixed point.
    std::string Out = J.V.toString();
    if (Out.find('\n') != std::string::npos)
      __builtin_trap(); // NDJSON safety: writers never emit raw newlines
    json::ParseOutcome Back = json::parse(Out);
    if (!Back.Ok)
      __builtin_trap(); // everything written must parse back
    if (Back.V.toString() != Out)
      __builtin_trap(); // serialization is a fixed point
  } else if (J.Error.empty()) {
    __builtin_trap(); // failed parses must explain themselves
  }

  ParsedRequest P = parseRequest(Line);
  if (!P.Ok) {
    if (P.Error.empty())
      __builtin_trap(); // rejections carry a reason
    // The daemon's actual answer for this line must itself be one
    // well-formed JSON line.
    std::string Resp = errorResponse(P.Id, ErrorCode::BadRequest, P.Error);
    if (Resp.find('\n') != std::string::npos)
      __builtin_trap();
    if (!json::parse(Resp).Ok)
      __builtin_trap(); // error responses are always valid JSON
  } else {
    // Accepted requests round-trip their validated fields sanely.
    if (P.R.Tenant.empty())
      __builtin_trap(); // validation guarantees a non-empty tenant
  }
  return 0;
}
