//===- unroll/UnrollController.h - Controlled unrolling (4.3) --*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The controlled loop unrolling strategy of Section 4.3: unrolling is
/// performed incrementally; at each step the critical path length
/// l_unroll of the doubled body is predicted from distance-1 dependence
/// information (cheaply available from the framework), and the step is
/// taken only when l_unroll stays below the threshold tau, with
/// l <= tau < 2*l. The process stops when no usable parallelism is
/// created or the factor cap is reached.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_UNROLL_UNROLLCONTROLLER_H
#define ARDF_UNROLL_UNROLLCONTROLLER_H

#include "unroll/StmtDepGraph.h"

#include <vector>

namespace ardf {

/// One evaluated unrolling step.
struct UnrollStep {
  /// Candidate factor evaluated (current factor doubled).
  unsigned Factor;

  /// Critical path predicted from distance-1 dependences only.
  unsigned PredictedCriticalPath;

  /// Exact critical path with all dependence distances.
  unsigned ExactCriticalPath;

  /// Estimated register demand of the candidate body (Section 4.3's
  /// companion prediction); 0 when pressure tracking is disabled.
  unsigned RegisterPressure;

  /// Statements per critical path statement in the unrolled body.
  double Parallelism;

  /// Whether the controller took this step.
  bool Performed;
};

/// Decision record of the controller.
struct UnrollPlan {
  unsigned ChosenFactor = 1;
  std::vector<UnrollStep> Trace;

  /// Critical path of the original body (l in the paper).
  unsigned BaseCriticalPath = 1;
};

/// Options for controlled unrolling.
struct UnrollControlOptions {
  /// Threshold ratio tau / l in [1, 2): a doubling step is taken when
  /// the predicted critical path of the doubled body stays strictly
  /// below TauRatio times the current one.
  double TauRatio = 1.5;

  /// Upper bound on the unroll factor.
  unsigned MaxFactor = 16;

  /// Register budget: a step whose estimated register demand exceeds
  /// this is refused (0 = unlimited, pressure not computed).
  unsigned MaxRegisters = 0;
};

/// Runs the controlled unrolling policy for \p Loop. Returns a plan
/// with ChosenFactor == 1 when the body has nested loops or no
/// statements.
UnrollPlan controlUnrolling(const Program &P, const DoLoopStmt &Loop,
                            const UnrollControlOptions &Opts = {});

} // namespace ardf

#endif // ARDF_UNROLL_UNROLLCONTROLLER_H
