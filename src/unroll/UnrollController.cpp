//===- unroll/UnrollController.cpp - Controlled unrolling (4.3) ----------===//

#include "unroll/UnrollController.h"

#include "unroll/RegisterPressure.h"

using namespace ardf;

UnrollPlan ardf::controlUnrolling(const Program &P, const DoLoopStmt &Loop,
                                  const UnrollControlOptions &Opts) {
  UnrollPlan Plan;
  std::optional<StmtDepGraph> G = buildStmtDepGraph(P, Loop);
  if (!G || G->Stmts.empty())
    return Plan;

  Plan.BaseCriticalPath = criticalPathLength(*G, 1);

  unsigned Factor = 1;
  while (2 * Factor <= Opts.MaxFactor) {
    unsigned Candidate = 2 * Factor;
    // Distance-1 dependences *of the current unrolled loop* are the
    // original dependences with distance <= Factor (an original
    // distance d spans ceil(d / Factor) unrolled iterations). The
    // incremental step thus sees longer original distances as the
    // factor grows — exactly why the strategy is iterative.
    int64_t Visible = Factor;
    unsigned Current = criticalPathLength(*G, Factor, Visible);
    unsigned Predicted = criticalPathLength(*G, Candidate, Visible);
    unsigned Exact = criticalPathLength(*G, Candidate);
    double Parallelism =
        static_cast<double>(G->Stmts.size()) * Candidate / Exact;
    // The step pays off when the predicted critical path grows by less
    // than tau (per unit of current length): doubling the work while the
    // chain stays short uncovers cross-iteration parallelism. A register
    // budget additionally vetoes steps whose unrolled body would not fit
    // (the paper's suggested pressure prediction).
    unsigned Pressure = 0;
    if (Opts.MaxRegisters)
      Pressure = estimateRegisterPressure(P, Loop, Candidate).Registers;
    bool Perform =
        Predicted < Opts.TauRatio * static_cast<double>(Current) &&
        (!Opts.MaxRegisters || Pressure <= Opts.MaxRegisters);
    Plan.Trace.push_back(
        UnrollStep{Candidate, Predicted, Exact, Pressure, Parallelism,
                   Perform});
    if (!Perform)
      break;
    Factor = Candidate;
  }
  Plan.ChosenFactor = Factor;
  return Plan;
}
