//===- unroll/RegisterPressure.h - Pressure prediction (4.3) ---*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's suggested companion to controlled unrolling (Section 4.3:
/// "A similar strategy may be used to predict the effect of loop
/// unrolling on the register pressure in the loop"): estimate the
/// register demand of the unrolled body before committing to the
/// transformation. The estimate materializes the unrolled loop and runs
/// the same live-range construction register allocation would use —
/// pipeline stages plus scalar ranges.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_UNROLL_REGISTERPRESSURE_H
#define ARDF_UNROLL_REGISTERPRESSURE_H

#include "ir/Program.h"

namespace ardf {

/// Register-demand estimate for one (possibly unrolled) loop body.
struct PressureEstimate {
  /// Total registers demanded: pipeline stages + scalar live ranges.
  unsigned Registers = 0;

  /// Stages contributed by array value pipelines alone.
  unsigned PipelineStages = 0;

  /// The estimate materialized the unrolled body (false: factor == 1 or
  /// the loop could not be unrolled, so the base body was measured).
  bool Unrolled = false;
};

/// Estimates the register pressure of \p Loop unrolled by \p Factor
/// (1 = the original body).
PressureEstimate estimateRegisterPressure(const Program &P,
                                          const DoLoopStmt &Loop,
                                          unsigned Factor);

} // namespace ardf

#endif // ARDF_UNROLL_REGISTERPRESSURE_H
