//===- unroll/StmtDepGraph.cpp - Statement-level dependence DAG ----------===//

#include "unroll/StmtDepGraph.h"

#include "analysis/LoopDataFlow.h"

#include <algorithm>
#include <map>
#include <set>

using namespace ardf;

bool StmtDepGraph::hasCarriedDistance(int64_t Distance) const {
  return std::any_of(Edges.begin(), Edges.end(), [&](const Edge &E) {
    return E.Distance == Distance;
  });
}

namespace {

/// Collects the scalar names a statement defines and uses (the loop IV
/// is excluded: its recurrence is handled by address arithmetic, not the
/// dependence chain, matching the paper's assumption of a removed basic
/// induction variable).
void scalarDefsUses(const Stmt &S, const std::string &IV,
                    std::set<std::string> &Defs,
                    std::set<std::string> &Uses) {
  const auto *AS = dyn_cast<AssignStmt>(&S);
  if (!AS)
    return;
  if (const auto *V = dyn_cast<VarRef>(AS->getLHS()))
    Defs.insert(V->getName());
  forEachSubExpr(*AS->getRHS(), [&](const Expr &E) {
    if (const auto *V = dyn_cast<VarRef>(&E))
      if (V->getName() != IV)
        Uses.insert(V->getName());
  });
  if (const ArrayRefExpr *Target = AS->getArrayTarget())
    for (const ExprPtr &Sub : Target->subscripts())
      forEachSubExpr(*Sub, [&](const Expr &E) {
        if (const auto *V = dyn_cast<VarRef>(&E))
          if (V->getName() != IV)
            Uses.insert(V->getName());
      });
}

} // namespace

std::optional<StmtDepGraph> ardf::buildStmtDepGraph(const Program &P,
                                                    const DoLoopStmt &Loop) {
  // Innermost loops only.
  bool HasInner = false;
  forEachStmt(Loop.getBody(), [&](const Stmt &S) {
    if (isa<DoLoopStmt>(&S))
      HasInner = true;
  });
  if (HasInner)
    return std::nullopt;

  StmtDepGraph G;
  std::map<const Stmt *, unsigned> Index;
  forEachStmt(Loop.getBody(), [&](const Stmt &S) {
    if (isa<AssignStmt>(&S)) {
      Index[&S] = G.Stmts.size();
      G.Stmts.push_back(&S);
    }
  });

  std::set<std::tuple<unsigned, unsigned, int64_t>> Seen;
  auto addEdge = [&](unsigned From, unsigned To, int64_t Distance) {
    if (Distance == 0 && From >= To)
      return; // intra-iteration order must be strictly forward
    if (Seen.insert({From, To, Distance}).second)
      G.Edges.push_back(StmtDepGraph::Edge{From, To, Distance});
  };

  // Array dependences from the may framework instance.
  LoopDataFlow DF(P, Loop, ProblemSpec::reachingReferences());
  DependenceInfo Deps = extractDependences(DF);
  const ReferenceUniverse &U = DF.universe();
  for (const Dependence &D : Deps.Deps) {
    const Stmt *FromStmt = U.occurrence(D.FromId).OwnerStmt;
    const Stmt *ToStmt = U.occurrence(D.ToId).OwnerStmt;
    auto FromIt = Index.find(FromStmt);
    auto ToIt = Index.find(ToStmt);
    if (FromIt == Index.end() || ToIt == Index.end())
      continue; // guard-condition uses carry no statement latency
    addEdge(FromIt->second, ToIt->second, D.Distance);
  }

  // Scalar flow dependences: def before use in body order is loop
  // independent; def after use is carried to the next iteration.
  const std::string &IV = Loop.getIndVar();
  std::vector<std::set<std::string>> Defs(G.Stmts.size());
  std::vector<std::set<std::string>> Uses(G.Stmts.size());
  for (unsigned I = 0; I != G.Stmts.size(); ++I)
    scalarDefsUses(*G.Stmts[I], IV, Defs[I], Uses[I]);
  for (unsigned From = 0; From != G.Stmts.size(); ++From)
    for (unsigned To = 0; To != G.Stmts.size(); ++To)
      for (const std::string &Name : Defs[From])
        if (Uses[To].count(Name))
          addEdge(From, To, From < To ? 0 : 1);

  return G;
}

unsigned ardf::criticalPathLength(const StmtDepGraph &G, unsigned Copies,
                                  int64_t MaxDistance) {
  if (G.Stmts.empty() || Copies == 0)
    return 0;
  unsigned N = G.Stmts.size();
  // Longest path counted in statements; nodes ordered topologically by
  // (copy, statement index) since distance-0 edges point strictly
  // forward in body order.
  std::vector<unsigned> Len(N * Copies, 1);
  unsigned Best = 1;
  for (unsigned C = 0; C != Copies; ++C) {
    for (unsigned I = 0; I != N; ++I) {
      unsigned Node = C * N + I;
      Best = std::max(Best, Len[Node]);
      for (const StmtDepGraph::Edge &E : G.Edges) {
        if (E.From != I)
          continue;
        if (MaxDistance >= 0 && E.Distance > MaxDistance)
          continue;
        uint64_t TargetCopy = C + static_cast<uint64_t>(E.Distance);
        if (TargetCopy >= Copies)
          continue;
        unsigned Target = TargetCopy * N + E.To;
        Len[Target] = std::max(Len[Target], Len[Node] + 1);
      }
    }
  }
  return Best;
}
