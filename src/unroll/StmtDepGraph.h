//===- unroll/StmtDepGraph.h - Statement-level dependence DAG --*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement-level dependence graph of a loop body, built from the
/// delta-reaching-references framework instance (array dependences,
/// Section 4.3) plus scalar flow dependences. criticalPathLength
/// computes the longest dependence chain over k replicated iterations —
/// the parallelism measure l driving controlled loop unrolling.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_UNROLL_STMTDEPGRAPH_H
#define ARDF_UNROLL_STMTDEPGRAPH_H

#include "analysis/Dependence.h"
#include "ir/Program.h"

#include <vector>

namespace ardf {

/// Dependence DAG over the assignment statements of one loop body.
struct StmtDepGraph {
  /// The assignment statements, in body order (conditional assignments
  /// included; nested loops disqualify the body).
  std::vector<const Stmt *> Stmts;

  /// A dependence edge From -> To carried over Distance iterations
  /// (0 == loop independent).
  struct Edge {
    unsigned From;
    unsigned To;
    int64_t Distance;
  };
  std::vector<Edge> Edges;

  /// True if some edge has the given carried distance.
  bool hasCarriedDistance(int64_t Distance) const;
};

/// Builds the dependence graph for \p Loop. Returns nullopt when the
/// body contains nested loops (the unrolling strategy targets innermost
/// loops).
std::optional<StmtDepGraph> buildStmtDepGraph(const Program &P,
                                              const DoLoopStmt &Loop);

/// Length (number of statements) of the longest dependence chain when
/// the body is replicated over \p Copies consecutive iterations. With
/// \p MaxDistance >= 0, only edges with Distance <= MaxDistance
/// participate — passing 1 yields the paper's distance-1 predictor,
/// passing a negative value uses all edges (the exact value).
unsigned criticalPathLength(const StmtDepGraph &G, unsigned Copies,
                            int64_t MaxDistance = -1);

} // namespace ardf

#endif // ARDF_UNROLL_STMTDEPGRAPH_H
