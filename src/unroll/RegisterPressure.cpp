//===- unroll/RegisterPressure.cpp - Pressure prediction (4.3) -----------===//

#include "unroll/RegisterPressure.h"

#include "analysis/LoopDataFlow.h"
#include "liverange/LiveRanges.h"
#include "passes/LoopNormalize.h"
#include "transform/LoopUnroll.h"

using namespace ardf;

namespace {

PressureEstimate measure(const Program &P, const DoLoopStmt &Loop) {
  LoopDataFlow Avail(P, Loop, ProblemSpec::availableValues());
  std::vector<LiveRange> Ranges = buildLiveRanges(Avail);
  PressureEstimate E;
  for (const LiveRange &L : Ranges) {
    E.Registers += L.Depth;
    if (!L.isScalar())
      E.PipelineStages += L.Depth;
  }
  return E;
}

} // namespace

PressureEstimate ardf::estimateRegisterPressure(const Program &P,
                                                const DoLoopStmt &Loop,
                                                unsigned Factor) {
  if (Factor <= 1)
    return measure(P, Loop);

  std::optional<StmtList> Unrolled = unrollLoop(Loop, Factor);
  if (!Unrolled)
    return measure(P, Loop); // cannot materialize; base-body estimate

  // Build a scratch program holding the unrolled main loop with the
  // original declarations (needed for linearization).
  Program Scratch;
  for (const ArrayDecl &D : P.arrayDecls()) {
    std::vector<ExprPtr> Sizes;
    for (const ExprPtr &S : D.DimSizes)
      Sizes.push_back(S->clone());
    Scratch.declareArray(D.Name, std::move(Sizes));
  }
  const auto *MainLoop = cast<DoLoopStmt>(Unrolled->front().get());
  Scratch.addStmt(MainLoop->clone());

  // The main unrolled loop steps by Factor; normalize it so iteration
  // distances come out in unrolled-iteration units.
  NormalizeResult Norm = normalizeLoops(Scratch);
  PressureEstimate E =
      measure(Norm.Transformed, *Norm.Transformed.getFirstLoop());
  E.Unrolled = true;
  return E;
}
