//===- lattice/Distance.cpp - Chain lattice of iteration distances -------===//

#include "lattice/Distance.h"

#include <ostream>

using namespace ardf;

std::string DistanceValue::toString() const {
  if (isNoInstance())
    return "_";
  if (isAllInstances())
    return "T";
  return std::to_string(Dist);
}

std::ostream &ardf::operator<<(std::ostream &OS, const DistanceValue &V) {
  return OS << V.toString();
}
