//===- lattice/PackedTransfer.h - Composed packed flow functions -*- C++ -*-=//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closure algebra behind the summary engine (dataflow/FlowSummary).
/// Every per-cell flow function the packed kernel applies -- preserve,
/// generate, and the exit increment -- lies in the three-parameter
/// family
///
///   f(x) = min(max(shift^Shift(x), Floor), Cap)
///
/// over the packed chain lattice, where shift is the bounded exit
/// increment of PackedDistance.h. The family is closed under exactly
/// the operations one Gauss-Seidel pass performs:
///
///   * function composition (composeTransfer),
///   * pointwise must/may meets of equal-shift members
///     (meetTransferMust / meetTransferMay),
///
/// so the effect of a whole pass on any node, as a function of the
/// back-edge value the pass started from, is again a single Transfer.
/// FlowSummary.cpp sweeps whole Floor/Cap rows through the VectorOps
/// tables; this header is the scalar specification those sweeps are
/// oracle-tested against.
///
/// Why the family is closed: shift is monotone, and on a chain every
/// monotone function commutes with min and max, so
///
///   f2(f1(x)) = min(max(s(x), max(s2(F1), F2)),
///                   min(max(s2(C1), F2), C2)),  s = shift^(K1+K2)
///
/// and pointwise meets of clamp functions meet their floors and caps
/// componentwise (median algebra of a chain; requires the canonical
/// Floor <= Cap form, which canonicalTransfer restores after every
/// composition -- replacing Floor by min(Floor, Cap) never changes the
/// denoted function).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_LATTICE_PACKEDTRANSFER_H
#define ARDF_LATTICE_PACKEDTRANSFER_H

#include "lattice/PackedDistance.h"

#include <cstdint>

namespace ardf {
namespace packed {

/// One cell's summarized flow function min(max(shift^Shift(x), Floor),
/// Cap). Plain data; the canonical form keeps Floor <= Cap (every
/// constructor and composeTransfer return canonical transfers, which
/// the meet closed-forms require).
struct Transfer {
  uint32_t Shift = 0;
  PackedDistance Floor = NoInstance;
  PackedDistance Cap = AllInstances;

  friend bool operator==(const Transfer &A, const Transfer &B) {
    return A.Shift == B.Shift && A.Floor == B.Floor && A.Cap == B.Cap;
  }
};

/// shift^N: the bounded increment applied \p N times.
constexpr PackedDistance shiftN(PackedDistance X, uint32_t N,
                                uint64_t Bound) {
  for (uint32_t I = 0; I != N; ++I)
    X = increment(X, Bound);
  return X;
}

/// Restores Floor <= Cap without changing the denoted function: when
/// Floor exceeds Cap the transfer is the constant Cap, which
/// min(max(x, Cap), Cap) also denotes.
constexpr Transfer canonicalTransfer(Transfer T) {
  T.Floor = meetMust(T.Floor, T.Cap);
  return T;
}

/// f(x) = x.
constexpr Transfer identityTransfer() { return Transfer{}; }

/// The preserve function min(x, p) of a non-generating body cell.
constexpr Transfer preserveTransfer(PackedDistance P) {
  return Transfer{0, NoInstance, P};
}

/// The generating cell's full per-pass function: the dense preserve
/// sweep min(x, Pre) followed by the sparse patch min(max(., Zero), Q)
/// (see KernelSolver applyRow). Collapsed into the family:
/// min(max(min(x,Pre),Zero),Q) == min(max(x, Zero), min(max(Pre,Zero),Q)).
constexpr Transfer generateTransfer(PackedDistance Pre, PackedDistance Q) {
  return canonicalTransfer(
      Transfer{0, Zero, meetMust(meetMay(Pre, Zero), Q)});
}

/// The exit node's bounded increment as a family member: one shift, no
/// clamps.
constexpr Transfer incrementTransfer() {
  return Transfer{1, NoInstance, AllInstances};
}

/// Evaluates \p T at \p X under the increment bound \p Bound.
constexpr PackedDistance applyTransfer(const Transfer &T, PackedDistance X,
                                       uint64_t Bound) {
  return meetMust(meetMay(shiftN(X, T.Shift, Bound), T.Floor), T.Cap);
}

/// F2 after F1 (canonical). Exact for every x: shift commutes with the
/// clamps because it is monotone on a chain (see the file comment).
constexpr Transfer composeTransfer(const Transfer &F2, const Transfer &F1,
                                   uint64_t Bound) {
  return canonicalTransfer(Transfer{
      F1.Shift + F2.Shift,
      meetMay(shiftN(F1.Floor, F2.Shift, Bound), F2.Floor),
      meetMust(meetMay(shiftN(F1.Cap, F2.Shift, Bound), F2.Floor),
               F2.Cap)});
}

/// Pointwise must-meet min(f(x), g(x)). Pre: canonical operands with
/// equal Shift (the per-pass transfers of one node's predecessors; the
/// loop flow graphs the summary engine lowers satisfy this by
/// construction, and FlowSummary verifies it).
constexpr Transfer meetTransferMust(const Transfer &A, const Transfer &B) {
  return Transfer{A.Shift, meetMust(A.Floor, B.Floor),
                  meetMust(A.Cap, B.Cap)};
}

/// Pointwise may-meet max(f(x), g(x)). Pre: as meetTransferMust.
constexpr Transfer meetTransferMay(const Transfer &A, const Transfer &B) {
  return Transfer{A.Shift, meetMay(A.Floor, B.Floor), meetMay(A.Cap, B.Cap)};
}

} // namespace packed
} // namespace ardf

#endif // ARDF_LATTICE_PACKEDTRANSFER_H
