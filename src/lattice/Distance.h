//===- lattice/Distance.h - Chain lattice of iteration distances -*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chain lattice L of maximal iteration distance values (Fig. 2 of the
/// paper):
///
///   NoInstance < 0 < 1 < 2 < ... < AllInstances
///
/// A value x for a subscripted reference r denotes the range of the latest
/// x instances of r. In a *must* problem the lattice is used as-is
/// (top = AllInstances, bottom = NoInstance, meet = min); in a *may*
/// problem the lattice is reversed (top = NoInstance, bottom =
/// AllInstances, meet = max) -- see Section 3.3. DistanceValue provides
/// the order-agnostic carrier; solvers pick min or max as their meet.
///
/// The increment operator ++ models the loop exit node i := i + 1
/// (Section 3.1.3): NoInstance and AllInstances are fixed points,
/// finite x maps to x + 1 (saturating to AllInstances at UB - 1 when the
/// trip count UB is known, since UB - 1 already denotes the complete
/// range of iteration instances).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_LATTICE_DISTANCE_H
#define ARDF_LATTICE_DISTANCE_H

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace ardf {

/// Trip count value standing for "unknown / unbounded".
constexpr int64_t UnknownTripCount = -1;

/// An element of the iteration-distance chain lattice.
class DistanceValue {
public:
  /// Constructs NoInstance (the must-problem bottom).
  DistanceValue() : TheTag(Tag::NoInstance), Dist(0) {}

  /// Returns the lattice element denoting no instance.
  static DistanceValue noInstance() { return DistanceValue(); }

  /// Returns the lattice element denoting all instances.
  static DistanceValue allInstances() {
    DistanceValue V;
    V.TheTag = Tag::AllInstances;
    return V;
  }

  /// Returns the finite distance \p D >= 0.
  static DistanceValue finite(int64_t D) {
    assert(D >= 0 && "negative iteration distance");
    DistanceValue V;
    V.TheTag = Tag::Finite;
    V.Dist = D;
    return V;
  }

  /// Returns finite(D) for D >= 0, noInstance() for negative D. Convenient
  /// for preserve constants computed as ceil(min k) - 1, which may
  /// underflow below the empty range.
  static DistanceValue finiteOrNone(int64_t D) {
    return D < 0 ? noInstance() : finite(D);
  }

  bool isNoInstance() const { return TheTag == Tag::NoInstance; }
  bool isAllInstances() const { return TheTag == Tag::AllInstances; }
  bool isFinite() const { return TheTag == Tag::Finite; }

  /// Returns the finite distance; asserts isFinite().
  int64_t getDistance() const {
    assert(isFinite() && "no finite distance");
    return Dist;
  }

  /// Total order of the chain: NoInstance < finite ascending < AllInstances.
  bool operator<(const DistanceValue &RHS) const {
    if (TheTag != RHS.TheTag)
      return rank() < RHS.rank();
    return TheTag == Tag::Finite && Dist < RHS.Dist;
  }
  bool operator==(const DistanceValue &RHS) const {
    return TheTag == RHS.TheTag &&
           (TheTag != Tag::Finite || Dist == RHS.Dist);
  }
  bool operator!=(const DistanceValue &RHS) const { return !(*this == RHS); }
  bool operator<=(const DistanceValue &RHS) const { return !(RHS < *this); }
  bool operator>(const DistanceValue &RHS) const { return RHS < *this; }
  bool operator>=(const DistanceValue &RHS) const { return !(*this < RHS); }

  /// The meet of the must-lattice (Fig. 2): minimum.
  static DistanceValue min(DistanceValue A, DistanceValue B) {
    return A < B ? A : B;
  }

  /// The dual operator / may-lattice meet: maximum.
  static DistanceValue max(DistanceValue A, DistanceValue B) {
    return A < B ? B : A;
  }

  /// The exit-node increment x++ (Section 3.1.3). When \p TripCount is
  /// known, finite values saturate to AllInstances at TripCount - 1.
  DistanceValue increment(int64_t TripCount = UnknownTripCount) const {
    if (!isFinite())
      return *this;
    int64_t Next = Dist + 1;
    if (TripCount != UnknownTripCount && Next >= TripCount - 1)
      return allInstances();
    return finite(Next);
  }

  /// True if an instance at iteration distance \p Delta is within the
  /// range denoted by this value (used when clients check pr <= delta <= x).
  bool covers(int64_t Delta) const {
    if (isAllInstances())
      return true;
    if (isNoInstance())
      return false;
    return Delta <= Dist;
  }

  /// Renders "_" (NoInstance), "T" (AllInstances), or the decimal distance,
  /// matching the paper's Table 1 notation.
  std::string toString() const;

private:
  enum class Tag : uint8_t { NoInstance, Finite, AllInstances };

  int rank() const {
    switch (TheTag) {
    case Tag::NoInstance:
      return 0;
    case Tag::Finite:
      return 1;
    case Tag::AllInstances:
      return 2;
    }
    return 0;
  }

  Tag TheTag;
  int64_t Dist;
};

std::ostream &operator<<(std::ostream &OS, const DistanceValue &V);

} // namespace ardf

#endif // ARDF_LATTICE_DISTANCE_H
