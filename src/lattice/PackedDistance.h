//===- lattice/PackedDistance.h - Packed chain lattice ---------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A branch-free uint64_t encoding of the iteration-distance chain
/// lattice (Fig. 2). The chain
///
///   NoInstance < 0 < 1 < 2 < ... < AllInstances
///
/// embeds order-isomorphically into the unsigned integers:
///
///   NoInstance   -> 0
///   finite d     -> d + 1
///   AllInstances -> UINT64_MAX
///
/// Because the embedding is monotone and injective, chain order *is*
/// unsigned order, so every flow function of the framework becomes
/// straight-line integer arithmetic over flat arrays:
///
///   meet (must)     min(x, y)
///   meet (may)      max(x, y)
///   generate        max(x, pack(0))            (pack(0) == 1)
///   preserve        min(x, pack(p))
///   exit increment  saturating +1, clamped at the packed trip bound
///
/// exactly the shape compilers auto-vectorize. The exact pack/unpack
/// round trip to DistanceValue is what the kernel-vs-reference oracle
/// tests lean on: identical fixed points on both representations.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_LATTICE_PACKEDDISTANCE_H
#define ARDF_LATTICE_PACKEDDISTANCE_H

#include "lattice/Distance.h"

#include <algorithm>
#include <cstdint>

namespace ardf {
namespace packed {

/// A packed chain-lattice element. Plain integer on purpose: the kernel
/// solver wants flat std::vector<uint64_t> rows it can sweep branch-free.
using PackedDistance = uint64_t;

/// pack(DistanceValue::noInstance()).
constexpr PackedDistance NoInstance = 0;

/// pack(DistanceValue::allInstances()).
constexpr PackedDistance AllInstances = UINT64_MAX;

/// pack(DistanceValue::finite(0)) — the generate constant.
constexpr PackedDistance Zero = 1;

/// Packs the finite distance \p D >= 0.
constexpr PackedDistance finite(int64_t D) {
  return static_cast<PackedDistance>(D) + 1;
}

/// Exact embedding of a DistanceValue.
inline PackedDistance pack(DistanceValue V) {
  if (V.isNoInstance())
    return NoInstance;
  if (V.isAllInstances())
    return AllInstances;
  return finite(V.getDistance());
}

/// Exact inverse of pack.
inline DistanceValue unpack(PackedDistance X) {
  if (X == NoInstance)
    return DistanceValue::noInstance();
  if (X == AllInstances)
    return DistanceValue::allInstances();
  return DistanceValue::finite(static_cast<int64_t>(X - 1));
}

/// The must-lattice meet: minimum in chain == unsigned order.
constexpr PackedDistance meetMust(PackedDistance A, PackedDistance B) {
  return A < B ? A : B;
}

/// The may-lattice meet (dual): maximum.
constexpr PackedDistance meetMay(PackedDistance A, PackedDistance B) {
  return A < B ? B : A;
}

/// The packed saturation bound of the exit increment for \p TripCount:
/// increment(x, incrementBound(T)) == pack(unpack(x).increment(T)) for
/// every packed x. The reference saturates finite d to AllInstances when
/// d + 1 >= T - 1; the incremented packed candidate is d + 2, so the
/// clamp threshold is T itself. Trip counts below 2 make every finite
/// increment saturate (candidates are >= 2), and an unknown trip count
/// never clamps anything but AllInstances.
constexpr uint64_t incrementBound(int64_t TripCount) {
  if (TripCount == UnknownTripCount)
    return AllInstances;
  return static_cast<uint64_t>(std::max<int64_t>(TripCount, 2));
}

/// The exit-node increment x++ (Section 3.1.3), branch-free: NoInstance
/// and AllInstances are fixed points, finite values advance by one and
/// clamp to AllInstances at \p Bound (from incrementBound). Compiles to
/// two compares, an add, and a select.
constexpr PackedDistance increment(PackedDistance X, uint64_t Bound) {
  PackedDistance Next =
      X + (static_cast<uint64_t>(X != NoInstance) &
           static_cast<uint64_t>(X != AllInstances));
  return Next >= Bound ? AllInstances : Next;
}

/// covers on the packed form: Delta within the range denoted by \p X.
constexpr bool covers(PackedDistance X, int64_t Delta) {
  return X == AllInstances ||
         (X != NoInstance && static_cast<uint64_t>(Delta) < X);
}

//===----------------------------------------------------------------------===//
// 32-bit narrowed cells
//
// Loop iteration distances are tiny (bounded by the trip count and the
// loop body size), so when every packed constant of a compiled program
// fits well under 2^32, the whole working set can run in uint32_t cells
// -- half the memory traffic of the bandwidth-bound kernel sweeps. The
// narrowing map
//
//   NoInstance   -> 0
//   finite v     -> v            (v < NarrowLimit)
//   AllInstances -> UINT32_MAX
//
// is an order isomorphism onto its image, so min, max, the generate
// clamp, and the bounded increment commute with it element by element:
// a narrowed solve reaches the image of the wide fixed point and
// unpacks to bit-identical DistanceValue matrices. Values reachable
// during iteration never leave the image: meets and clamps are bounded
// by their operands and the increment saturates at the (narrowable)
// bound, which is why CompiledFlowProgram::compile can decide
// narrowability from the constants alone (see Narrow32).
//===----------------------------------------------------------------------===//

/// A narrowed packed chain-lattice element.
using PackedDistance32 = uint32_t;

/// narrow(AllInstances).
constexpr PackedDistance32 AllInstances32 = UINT32_MAX;

/// Finite packed constants must stay strictly below this for a program
/// to narrow. The slack below UINT32_MAX keeps the increment's +1 (and
/// any future small headroom) from ever colliding with the
/// AllInstances32 sentinel.
constexpr uint64_t NarrowLimit = 0xFFFF0000ull;

/// True when the packed constant \p X survives narrowing exactly.
constexpr bool narrowable(PackedDistance X) {
  return X == AllInstances || X < NarrowLimit;
}

/// The narrowing map. Pre: narrowable(X).
constexpr PackedDistance32 narrow(PackedDistance X) {
  return X == AllInstances ? AllInstances32
                           : static_cast<PackedDistance32>(X);
}

/// Exact inverse of narrow on its image.
constexpr PackedDistance widen(PackedDistance32 X) {
  return X == AllInstances32 ? AllInstances
                             : static_cast<PackedDistance>(X);
}

/// The exit increment over narrowed cells; the image of increment under
/// narrow when the bound is narrowable.
constexpr PackedDistance32 increment32(PackedDistance32 X, uint32_t Bound) {
  PackedDistance32 Next =
      X + (static_cast<uint32_t>(X != 0) &
           static_cast<uint32_t>(X != AllInstances32));
  return Next >= Bound ? AllInstances32 : Next;
}

/// Exact unpack of a narrowed cell.
inline DistanceValue unpack32(PackedDistance32 X) { return unpack(widen(X)); }

} // namespace packed
} // namespace ardf

#endif // ARDF_LATTICE_PACKEDDISTANCE_H
