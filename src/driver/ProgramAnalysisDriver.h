//===- driver/ProgramAnalysisDriver.h - Batched program driver -*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProgramAnalysisDriver runs a batch of data flow problems over every
/// analyzable loop of a Program. Each loop gets one LoopAnalysisSession
/// (so the problem-independent tables are built once no matter how many
/// problems run), and the per-loop work is distributed over a pool of
/// worker threads pulling loop indices from a shared queue.
///
/// Thread-safety invariant: loop analysis is embarrassingly parallel.
/// A session reads only the immutable Program and its own loop's
/// statements, and all mutable state (graph, universe, orientations,
/// memoized instances and solutions) lives inside the session. The
/// driver assigns each loop record to exactly one worker, so no two
/// threads ever touch the same mutable object; the only shared mutable
/// datum is the atomic queue cursor. Anything added to the per-loop
/// analysis must preserve this: no caches or counters global to the
/// driver may be written from analyzeLoop().
///
/// Telemetry follows the same rule locklessly: when the calling thread
/// has a telemetry context installed (telem::TelemetryScope), each
/// worker records into its own private Telemetry (and private trace
/// buffer, when the root has a sink) under a distinct thread id, and
/// run() merges counters and spans into the root context after join --
/// the workers share no telemetry state while analyzing.
///
/// The default is Threads = 1, which runs inline on the calling thread
/// (deterministic, and what the tests use); benchmarks opt into more.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DRIVER_PROGRAMANALYSISDRIVER_H
#define ARDF_DRIVER_PROGRAMANALYSISDRIVER_H

#include "analysis/LoopAnalysisSession.h"
#include "analysis/LoopNest.h"

#include <memory>
#include <string>
#include <vector>

namespace ardf {

/// The four problems of the paper's Section 4 clients, grouped by access:
/// must-reaching definitions, delta-available values, delta-busy stores,
/// and (may) delta-reaching references.
std::vector<ProblemSpec> paperProblems();

/// Driver configuration.
struct DriverOptions {
  /// Worker threads. 1 (the default) analyzes inline on the calling
  /// thread with no thread machinery at all.
  unsigned Threads = 1;

  /// Problems solved per loop; empty means paperProblems().
  std::vector<ProblemSpec> Problems;

  /// Also analyze nested loops (each with its own flow graph, the
  /// hierarchical process of Section 3.6). When false, only top-level
  /// loops are analyzed.
  bool IncludeNested = true;

  /// Solver options forwarded to every solve. This includes the engine:
  /// SolverOptions::Engine::PackedKernel makes every session run the
  /// compiled packed-kernel solver (bit-identical results; each session
  /// memoizes its compiled flow programs, so the invariant above holds
  /// unchanged). Engine::PackedSimd additionally batches each loop's
  /// problem list through LoopAnalysisSession::solveInterleaved, fusing
  /// same-direction problems into one SoA sweep; if the batched path
  /// throws, the driver falls back to the per-problem loop so fault
  /// attribution stays per spec.
  SolverOptions Solver;
};

/// One captured analysis failure inside the driver's per-loop fault
/// boundary: which phase threw and what it said. Failed solves record
/// one entry per problem; the loop's other problems still run.
struct LoopFailure {
  /// The phase that failed: "session" (building the loop's tables) or
  /// "solve:<problem name>".
  std::string Phase;

  /// The exception's what() text.
  std::string Message;
};

/// Per-loop record of the driver.
struct AnalyzedLoop {
  /// The analyzed (reduced, normalized) form of the loop from the
  /// nesting tree -- what the session is built over. Null when the nest
  /// recognizer rejected the loop (see UnsupportedReason): no session is
  /// built and no solves run for it.
  const DoLoopStmt *Loop = nullptr;

  /// The source While/DoLoop statement the record describes.
  const Stmt *Source = nullptr;

  /// Nesting depth: 0 for top-level loops.
  unsigned Depth = 0;

  /// Slash-joined induction variables from the outermost enclosing loop
  /// down to this one ("i/j"); unsupported levels print "?".
  std::string NestPath;

  /// Why the loop was not analyzable; empty for supported loops.
  std::string UnsupportedReason;

  /// The loop's session; null until run() (or sessionFor) reaches it.
  std::unique_ptr<LoopAnalysisSession> Session;

  /// Node visits summed over this loop's solves.
  unsigned NodeVisits = 0;

  /// How this loop's analysis went: Ok, Degraded (at least one solve
  /// returned a conservative-fill result; the rest are exact), or
  /// Failed (an exception was captured -- see Failures; solves that did
  /// complete remain valid in the session cache).
  SolveOutcome Status = SolveOutcome::Ok;

  /// The first breach reason among this loop's degraded solves
  /// (None when Status is Ok).
  BreachReason Breach = BreachReason::None;

  /// Captured exceptions, in the order they occurred.
  std::vector<LoopFailure> Failures;
};

/// Batch totals by per-loop status (run() populates the records).
struct DriverReport {
  unsigned Ok = 0;
  unsigned Degraded = 0;
  unsigned Failed = 0;

  /// Loops the nest recognizer rejected (no analysis ran at all).
  unsigned Unsupported = 0;

  unsigned total() const { return Ok + Degraded + Failed + Unsupported; }
};

/// Outcome of one incremental re-analysis (see rerun()).
struct DriverRerun {
  /// Loops whose record -- session, memoized compiled programs,
  /// transfer summaries, and solutions -- was carried over unchanged.
  unsigned Reused = 0;

  /// Loops analyzed from scratch (edited, new, or previously failed).
  unsigned Reanalyzed = 0;
};

/// Whole-program batched analysis over a worker pool.
class ProgramAnalysisDriver {
public:
  /// Enumerates the loops of \p P (innermost first, like the
  /// hierarchical analysis). No analysis runs until run().
  explicit ProgramAnalysisDriver(const Program &P,
                                 DriverOptions Opts = DriverOptions());

  /// Analyzes every enumerated loop: builds its session and solves the
  /// configured problems. Idempotent; the second call is a no-op.
  void run();

  /// Incremental re-analysis against an edited \p NewProgram (running
  /// the initial batch first if needed). Loops are diffed structurally:
  /// a new-program loop that matches a successfully analyzed old loop
  /// (equal nesting depth, DoLoopStmt::equals, and unchanged array
  /// declarations) keeps that loop's whole record -- its session with
  /// every memoized compiled program, transfer summary, and solution
  /// stays warm, and no solver work runs for it at all. Only unmatched
  /// loops are (re)analyzed, through the same worker pool and fault
  /// boundaries as run(). This is the daemon-style warm path: with
  /// Engine::Summary a small edit re-lowers exactly the touched loops'
  /// summaries.
  ///
  /// Lifetime: a reused session keeps referencing the program it was
  /// built against, so every program ever handed to the driver must
  /// outlive it (structural equality guarantees the retained analysis
  /// is valid for the new text). The loop records' pointers are
  /// re-anchored into \p NewProgram.
  DriverRerun rerun(const Program &NewProgram);

  const Program &program() const { return *Prog; }
  const DriverOptions &options() const { return Opts; }

  /// The current program's loop-nesting tree (reduced forms, nest
  /// paths, unsupported records).
  const LoopNestTree &nest() const { return *NestTrees.back(); }

  /// Per-loop records in analysis order (innermost before parents).
  const std::vector<AnalyzedLoop> &loops() const { return Loops; }

  /// The session of \p Loop -- matched against either the source
  /// statement or its reduced form -- built on demand if run() has not
  /// reached it yet; null if \p Loop is not a (supported) loop of the
  /// program.
  LoopAnalysisSession *sessionFor(const DoLoopStmt &Loop);

  /// Node visits summed over all analyzed loops (the whole-program cost
  /// metric of the paper).
  unsigned totalNodeVisits() const;

  /// Tallies loop statuses. The batch always completes: exceptions and
  /// budget breaches are captured per loop inside analyzeLoop's fault
  /// boundary and never cross the worker pool.
  DriverReport report() const;

private:
  void collectFromNest();
  void analyzeLoop(AnalyzedLoop &R) const;
  void analyzeAll(const std::vector<AnalyzedLoop *> &Work);

  const Program *Prog;
  DriverOptions Opts;
  std::vector<AnalyzedLoop> Loops;

  /// Every nesting tree the driver has built, oldest first; rerun()
  /// appends rather than replaces because reused sessions keep
  /// referencing the reduced loops owned by the tree they were built
  /// against (same lifetime rule as the programs themselves).
  std::vector<std::shared_ptr<const LoopNestTree>> NestTrees;

  bool Ran = false;
};

} // namespace ardf

#endif // ARDF_DRIVER_PROGRAMANALYSISDRIVER_H
