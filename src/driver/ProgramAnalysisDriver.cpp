//===- driver/ProgramAnalysisDriver.cpp - Batched program driver ---------===//

#include "driver/ProgramAnalysisDriver.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace ardf;

std::vector<ProblemSpec> ardf::paperProblems() {
  return {ProblemSpec::mustReachingDefs(), ProblemSpec::availableValues(),
          ProblemSpec::busyStores(), ProblemSpec::reachingReferences()};
}

ProgramAnalysisDriver::ProgramAnalysisDriver(const Program &P,
                                             DriverOptions Opts)
    : Prog(&P), Opts(std::move(Opts)) {
  if (this->Opts.Problems.empty())
    this->Opts.Problems = paperProblems();
  collect(P.getStmts(), 0);
  std::stable_sort(Loops.begin(), Loops.end(),
                   [](const AnalyzedLoop &A, const AnalyzedLoop &B) {
                     return A.Depth > B.Depth;
                   });
}

void ProgramAnalysisDriver::collect(const StmtList &Stmts, unsigned Depth) {
  for (const StmtPtr &S : Stmts) {
    switch (S->getKind()) {
    case Stmt::Kind::Assign:
      break;
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S.get());
      collect(IS->getThen(), Depth);
      collect(IS->getElse(), Depth);
      break;
    }
    case Stmt::Kind::DoLoop: {
      const auto *Loop = cast<DoLoopStmt>(S.get());
      Loops.push_back(AnalyzedLoop{Loop, Depth, nullptr, 0});
      if (Opts.IncludeNested)
        collect(Loop->getBody(), Depth + 1);
      break;
    }
    }
  }
}

void ProgramAnalysisDriver::analyzeLoop(AnalyzedLoop &R) const {
  // Writes only into R and R.Session: see the thread-safety invariant in
  // the header.
  if (!R.Session)
    R.Session = std::make_unique<LoopAnalysisSession>(*Prog, *R.Loop);
  for (const ProblemSpec &Spec : Opts.Problems)
    R.NodeVisits += R.Session->solve(Spec, Opts.Solver).NodeVisits;
}

void ProgramAnalysisDriver::run() {
  if (Ran)
    return;
  Ran = true;

  if (Opts.Threads <= 1 || Loops.size() <= 1) {
    for (AnalyzedLoop &R : Loops)
      analyzeLoop(R);
    return;
  }

  // Work queue: the cursor is the only mutable state shared between
  // workers; each index is claimed by exactly one thread.
  std::atomic<size_t> Next{0};
  auto Worker = [this, &Next] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Loops.size())
        return;
      analyzeLoop(Loops[I]);
    }
  };

  unsigned NumWorkers =
      std::min<size_t>(Opts.Threads, Loops.size());
  std::vector<std::thread> Pool;
  Pool.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
}

LoopAnalysisSession *ProgramAnalysisDriver::sessionFor(const DoLoopStmt &Loop) {
  for (AnalyzedLoop &R : Loops)
    if (R.Loop == &Loop) {
      if (!R.Session)
        R.Session = std::make_unique<LoopAnalysisSession>(*Prog, *R.Loop);
      return R.Session.get();
    }
  return nullptr;
}

unsigned ProgramAnalysisDriver::totalNodeVisits() const {
  unsigned Total = 0;
  for (const AnalyzedLoop &R : Loops)
    Total += R.NodeVisits;
  return Total;
}
