//===- driver/ProgramAnalysisDriver.cpp - Batched program driver ---------===//

#include "driver/ProgramAnalysisDriver.h"

#include "support/FailPoint.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <thread>

using namespace ardf;

std::vector<ProblemSpec> ardf::paperProblems() {
  return {ProblemSpec::mustReachingDefs(), ProblemSpec::availableValues(),
          ProblemSpec::busyStores(), ProblemSpec::reachingReferences()};
}

ProgramAnalysisDriver::ProgramAnalysisDriver(const Program &P,
                                             DriverOptions Opts)
    : Prog(&P), Opts(std::move(Opts)) {
  if (this->Opts.Problems.empty())
    this->Opts.Problems = paperProblems();
  NestTrees.push_back(std::make_shared<const LoopNestTree>(P));
  collectFromNest();
}

void ProgramAnalysisDriver::collectFromNest() {
  // One record per nest node (pre-order from the tree), analyzed
  // innermost first like the hierarchical process of Section 3.6.
  // Supported loops carry their reduced form; rejected loops carry the
  // recognizer's reason and are never handed to a session.
  for (const std::unique_ptr<NestLoop> &Node : nest().all()) {
    if (Node->Depth > 0 && !Opts.IncludeNested)
      continue;
    AnalyzedLoop R;
    R.Loop = Node->Analyzed;
    R.Source = Node->Source;
    R.Depth = Node->Depth;
    R.NestPath = Node->path();
    R.UnsupportedReason = Node->UnsupportedReason;
    Loops.push_back(std::move(R));
  }
  std::stable_sort(Loops.begin(), Loops.end(),
                   [](const AnalyzedLoop &A, const AnalyzedLoop &B) {
                     return A.Depth > B.Depth;
                   });
}

void ProgramAnalysisDriver::analyzeLoop(AnalyzedLoop &R) const {
  // Writes only into R, R.Session, and the worker's own telemetry
  // context: see the thread-safety invariant in the header. Every
  // throwing phase runs inside a catch-all fault boundary, so one bad
  // loop degrades to a LoopFailure record and the batch -- and the
  // worker pool above it -- always completes.
  if (!R.Loop)
    return; // unsupported: recorded, nothing to solve
  telem::Span S("loop", "driver");
  telem::LatencyTimer LT(telem::Histo::DriverLoopNs);
  S.arg("depth", R.Depth);
  auto Fail = [&R](std::string Phase, std::string Message) {
    R.Status = SolveOutcome::Failed;
    R.Failures.push_back(
        LoopFailure{std::move(Phase), std::move(Message)});
    telem::count(telem::Counter::LoopFailures);
  };
  try {
    failpoint::evaluate("driver.loop");
    if (!R.Session)
      R.Session = std::make_unique<LoopAnalysisSession>(*Prog, *R.Loop);
  } catch (const std::exception &E) {
    Fail("session", E.what());
    return;
  } catch (...) {
    Fail("session", "unknown exception");
    return;
  }
  // The SIMD engine first runs the whole problem batch through the
  // session's interleaved path (one fused sweep per direction). On a
  // throw it falls through to the per-problem loop, whose per-spec
  // fault boundary pins the failure to its problem; partially cached
  // solutions from the batched attempt are simply re-served.
  if (Opts.Solver.Eng == SolverOptions::Engine::PackedSimd) {
    try {
      std::vector<const SolveResult *> Batch =
          R.Session->solveInterleaved(Opts.Problems, Opts.Solver);
      for (const SolveResult *Res : Batch) {
        R.NodeVisits += Res->NodeVisits;
        if (Res->Outcome != SolveOutcome::Ok &&
            R.Status == SolveOutcome::Ok) {
          R.Status = SolveOutcome::Degraded;
          R.Breach = Res->Breach;
        }
      }
      S.arg("node_visits", R.NodeVisits);
      telem::count(telem::Counter::DriverLoops);
      return;
    } catch (...) {
    }
  }
  for (const ProblemSpec &Spec : Opts.Problems) {
    try {
      const SolveResult &Res = R.Session->solve(Spec, Opts.Solver);
      R.NodeVisits += Res.NodeVisits;
      if (Res.Outcome != SolveOutcome::Ok &&
          R.Status == SolveOutcome::Ok) {
        R.Status = SolveOutcome::Degraded;
        R.Breach = Res.Breach;
      }
    } catch (const std::exception &E) {
      Fail(std::string("solve:") + Spec.Name, E.what());
    } catch (...) {
      Fail(std::string("solve:") + Spec.Name, "unknown exception");
    }
  }
  S.arg("node_visits", R.NodeVisits);
  telem::count(telem::Counter::DriverLoops);
}

void ProgramAnalysisDriver::run() {
  if (Ran)
    return;
  Ran = true;
  std::vector<AnalyzedLoop *> Work;
  Work.reserve(Loops.size());
  for (AnalyzedLoop &R : Loops)
    Work.push_back(&R);
  analyzeAll(Work);
}

void ProgramAnalysisDriver::analyzeAll(
    const std::vector<AnalyzedLoop *> &Work) {
  if (Opts.Threads <= 1 || Work.size() <= 1) {
    for (AnalyzedLoop *R : Work)
      analyzeLoop(*R);
    return;
  }

  // Work queue: the cursor is the only mutable state shared between
  // workers; each index is claimed by exactly one thread.
  std::atomic<size_t> Next{0};
  unsigned NumWorkers = std::min<size_t>(Opts.Threads, Work.size());

  // Per-worker telemetry, allocated up front so it outlives the threads
  // and can be merged into the root after join. Workers record
  // locklessly into their own context (distinct thread ids); without a
  // root context the slots stay empty and workers run telemetry-free.
  telem::Telemetry *Root = telem::Telemetry::current();
  struct WorkerTelemetry {
    telem::Telemetry Telem;
    telem::MemoryTraceSink Sink;
  };
  std::vector<std::unique_ptr<WorkerTelemetry>> Slots(NumWorkers);
  if (Root)
    for (unsigned I = 0; I != NumWorkers; ++I) {
      Slots[I] = std::make_unique<WorkerTelemetry>();
      Slots[I]->Telem.setThreadId(I + 1);
      if (Root->sink())
        Slots[I]->Telem.setSink(&Slots[I]->Sink);
    }

  auto Worker = [this, &Next, &Slots, &Work](unsigned WorkerIdx) {
    std::optional<telem::TelemetryScope> Scope;
    if (Slots[WorkerIdx])
      Scope.emplace(Slots[WorkerIdx]->Telem);
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Work.size())
        return;
      analyzeLoop(*Work[I]);
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Pool.emplace_back(Worker, I);
  for (std::thread &T : Pool)
    T.join();

  // Join-time aggregation: counters add up; spans keep the worker's
  // thread id so the trace shows the real parallel lanes.
  if (Root)
    for (const std::unique_ptr<WorkerTelemetry> &Slot : Slots) {
      Root->mergeCountersFrom(Slot->Telem);
      if (Root->sink())
        for (const telem::TraceEvent &E : Slot->Sink.events())
          Root->sink()->record(E);
    }
}

DriverRerun ProgramAnalysisDriver::rerun(const Program &NewProgram) {
  run();

  // Array declarations parameterize reference linearization, so a
  // record may only be carried over when every declaration is
  // unchanged; otherwise the whole batch re-analyzes.
  bool DeclsEqual = [&] {
    const std::vector<ArrayDecl> &A = Prog->arrayDecls();
    const std::vector<ArrayDecl> &B = NewProgram.arrayDecls();
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I != A.size(); ++I) {
      if (A[I].Name != B[I].Name ||
          A[I].DimSizes.size() != B[I].DimSizes.size())
        return false;
      for (size_t D = 0; D != A[I].DimSizes.size(); ++D)
        if (!A[I].DimSizes[D]->equals(*B[I].DimSizes[D]))
          return false;
    }
    return true;
  }();

  std::vector<AnalyzedLoop> Old;
  Old.swap(Loops);
  Prog = &NewProgram;
  NestTrees.push_back(std::make_shared<const LoopNestTree>(NewProgram));
  collectFromNest();

  // Greedy structural match on the SOURCE statements (so while loops
  // diff correctly too): each new loop takes the first untaken old
  // record that analyzed cleanly and is textually identical at the same
  // depth. Failed or never-built records are not worth carrying -- a
  // fresh analysis is the only way they make progress. Unsupported new
  // loops never analyze, so they neither reuse nor reanalyze.
  DriverRerun Out;
  std::vector<bool> Taken(Old.size(), false);
  std::vector<AnalyzedLoop *> Pending;
  for (AnalyzedLoop &R : Loops) {
    if (!R.Loop)
      continue;
    const DoLoopStmt *NewLoop = R.Loop;
    const Stmt *NewSource = R.Source;
    std::string NewPath = R.NestPath;
    bool Matched = false;
    if (DeclsEqual)
      for (size_t I = 0; I != Old.size() && !Matched; ++I) {
        AnalyzedLoop &O = Old[I];
        if (Taken[I] || !O.Session || O.Status == SolveOutcome::Failed ||
            O.Depth != R.Depth || !O.Source->equals(*NewSource))
          continue;
        Taken[I] = true;
        R = std::move(O);
        R.Loop = NewLoop;
        R.Source = NewSource;
        R.NestPath = std::move(NewPath);
        Matched = true;
      }
    if (Matched) {
      ++Out.Reused;
    } else {
      ++Out.Reanalyzed;
      Pending.push_back(&R);
    }
  }
  analyzeAll(Pending);
  return Out;
}

LoopAnalysisSession *ProgramAnalysisDriver::sessionFor(const DoLoopStmt &Loop) {
  for (AnalyzedLoop &R : Loops)
    if (R.Loop == &Loop || R.Source == &Loop) {
      if (!R.Loop)
        return nullptr; // unsupported loop: no session exists
      if (!R.Session)
        R.Session = std::make_unique<LoopAnalysisSession>(*Prog, *R.Loop);
      return R.Session.get();
    }
  return nullptr;
}

unsigned ProgramAnalysisDriver::totalNodeVisits() const {
  unsigned Total = 0;
  for (const AnalyzedLoop &R : Loops)
    Total += R.NodeVisits;
  return Total;
}

DriverReport ProgramAnalysisDriver::report() const {
  DriverReport Rep;
  for (const AnalyzedLoop &R : Loops) {
    if (!R.Loop) {
      ++Rep.Unsupported;
      continue;
    }
    switch (R.Status) {
    case SolveOutcome::Ok:
      ++Rep.Ok;
      break;
    case SolveOutcome::Degraded:
      ++Rep.Degraded;
      break;
    case SolveOutcome::Failed:
      ++Rep.Failed;
      break;
    }
  }
  return Rep;
}
