//===- transform/LoadElimination.h - Redundant loads (4.2.2) ---*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eliminates delta-redundant loads (Section 4.2.2, Fig. 7) by scalar
/// replacement: when the delta-available-values instance proves that a
/// use re-reads a value generated delta iterations earlier, the value is
/// kept in scalar temporaries forming a source-level register pipeline:
///
///   * def generator  X[f] = rhs      becomes  _tN_0 = rhs; X[f] = _tN_0;
///   * use generator  ... X[g] ...    becomes  _tN_0 = X[g]; ... _tN_0 ...
///   * each reuse at distance d       becomes  a read of _tN_d
///   * end of body                    appends  _tN_d = _tN_{d-1} shifts
///   * the loop preheader             loads    _tN_k = X[f(lower - k)]
///
/// This is the same transformation scalar replacement [Callahan, Carr &
/// Kennedy 90] performs from dependence information; here it is driven
/// by the flow-sensitive framework, so reuse under conditional control
/// flow is found (and unsafe reuse through conditional kills rejected).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_TRANSFORM_LOADELIMINATION_H
#define ARDF_TRANSFORM_LOADELIMINATION_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace ardf {

class ProgramAnalysisDriver;

/// Configuration for redundant load elimination.
struct LoadElimOptions {
  /// Largest reuse distance converted into temporaries (pipeline depth
  /// cap; deeper reuse is left in memory).
  int64_t MaxDistance = 8;
};

/// Result of redundant load elimination.
struct LoadElimResult {
  Program Transformed;

  /// Number of use sites rerouted to temporaries.
  unsigned LoadsEliminated = 0;

  /// Number of scalar temporaries introduced.
  unsigned TempsIntroduced = 0;

  /// Human-readable notes, one per rerouted use.
  std::vector<std::string> Notes;
};

/// Applies scalar replacement to every top-level loop of \p P.
LoadElimResult eliminateRedundantLoads(const Program &P,
                                       const LoadElimOptions &Opts = {});

/// Batched form: analyses run through \p Driver's per-loop sessions, so
/// the flow graphs and reference universes are shared with every other
/// client of the driver (and with its own run(), if already performed).
LoadElimResult eliminateRedundantLoads(ProgramAnalysisDriver &Driver,
                                       const LoadElimOptions &Opts = {});

} // namespace ardf

#endif // ARDF_TRANSFORM_LOADELIMINATION_H
