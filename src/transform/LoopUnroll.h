//===- transform/LoopUnroll.h - Loop unrolling (Section 4.3) ---*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop unrolling transformation consumed by the controlled
/// unrolling strategy of Section 4.3: the body is replicated Factor
/// times with the induction variable shifted (i, i+1, ..., i+Factor-1),
/// the main loop steps by Factor, and leftover iterations run in a
/// remainder loop.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_TRANSFORM_LOOPUNROLL_H
#define ARDF_TRANSFORM_LOOPUNROLL_H

#include "ir/Program.h"

#include <optional>

namespace ardf {

/// Unrolls \p Loop by \p Factor. Requires a normalized loop with a
/// constant trip count and Factor >= 2; returns nullopt otherwise. The
/// result is the main unrolled loop, followed by a remainder loop when
/// the trip count is not divisible by Factor.
std::optional<StmtList> unrollLoop(const DoLoopStmt &Loop, unsigned Factor);

/// Unrolls every top-level loop of \p P by \p Factor (loops that cannot
/// be unrolled are kept). Returns the transformed program.
Program unrollProgram(const Program &P, unsigned Factor);

} // namespace ardf

#endif // ARDF_TRANSFORM_LOOPUNROLL_H
