//===- transform/Rewrite.cpp - Clone-with-edits rewriting ----------------===//

#include "transform/Rewrite.h"

#include <cassert>

using namespace ardf;

ExprPtr ardf::rewriteExpr(const Expr &E, RewritePlan &Plan) {
  auto It = Plan.ReplaceExprs.find(&E);
  if (It != Plan.ReplaceExprs.end()) {
    ExprPtr Replacement = std::move(It->second);
    Plan.ReplaceExprs.erase(It);
    assert(Replacement && "expression replacement already consumed");
    return Replacement;
  }
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
    return E.clone();
  case Expr::Kind::ArrayRef: {
    const auto *AR = cast<ArrayRefExpr>(&E);
    std::vector<ExprPtr> Subs;
    Subs.reserve(AR->getNumSubscripts());
    for (const ExprPtr &S : AR->subscripts())
      Subs.push_back(rewriteExpr(*S, Plan));
    return std::make_unique<ArrayRefExpr>(AR->getName(), std::move(Subs));
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(&E);
    return std::make_unique<BinaryExpr>(BE->getOp(),
                                        rewriteExpr(*BE->getLHS(), Plan),
                                        rewriteExpr(*BE->getRHS(), Plan));
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(&E);
    return std::make_unique<UnaryExpr>(UE->getOp(),
                                       rewriteExpr(*UE->getOperand(), Plan));
  }
  }
  return nullptr;
}

namespace {

StmtPtr rewriteStmt(const Stmt &S, RewritePlan &Plan) {
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    const auto *AS = cast<AssignStmt>(&S);
    return std::make_unique<AssignStmt>(rewriteExpr(*AS->getLHS(), Plan),
                                        rewriteExpr(*AS->getRHS(), Plan));
  }
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(&S);
    return std::make_unique<IfStmt>(rewriteExpr(*IS->getCond(), Plan),
                                    rewriteStmts(IS->getThen(), Plan),
                                    rewriteStmts(IS->getElse(), Plan));
  }
  case Stmt::Kind::DoLoop: {
    const auto *DL = cast<DoLoopStmt>(&S);
    return std::make_unique<DoLoopStmt>(
        DL->getIndVar(), rewriteExpr(*DL->getLower(), Plan),
        rewriteExpr(*DL->getUpper(), Plan),
        rewriteStmts(DL->getBody(), Plan), DL->getStep());
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(&S);
    return std::make_unique<WhileStmt>(rewriteExpr(*WS->getCond(), Plan),
                                       rewriteStmts(WS->getBody(), Plan));
  }
  case Stmt::Kind::Break:
    return std::make_unique<BreakStmt>();
  }
  return nullptr;
}

} // namespace

StmtList ardf::rewriteStmts(const StmtList &Stmts, RewritePlan &Plan) {
  StmtList Result;
  for (const StmtPtr &S : Stmts) {
    auto BeforeIt = Plan.InsertBefore.find(S.get());
    if (BeforeIt != Plan.InsertBefore.end())
      for (StmtPtr &New : BeforeIt->second)
        Result.push_back(std::move(New));
    if (!Plan.RemoveStmts.count(S.get()))
      Result.push_back(rewriteStmt(*S, Plan));
    auto AfterIt = Plan.InsertAfter.find(S.get());
    if (AfterIt != Plan.InsertAfter.end())
      for (StmtPtr &New : AfterIt->second)
        Result.push_back(std::move(New));
  }
  return Result;
}

Program ardf::rewriteProgram(const Program &P, RewritePlan &Plan) {
  Program Result;
  for (const ArrayDecl &D : P.arrayDecls()) {
    std::vector<ExprPtr> Sizes;
    Sizes.reserve(D.DimSizes.size());
    for (const ExprPtr &S : D.DimSizes)
      Sizes.push_back(S->clone());
    Result.declareArray(D.Name, std::move(Sizes));
  }
  StmtList Rewritten = rewriteStmts(P.getStmts(), Plan);
  for (StmtPtr &S : Rewritten)
    Result.addStmt(std::move(S));
  return Result;
}

ExprPtr ardf::substituteScalar(const Expr &E, const std::string &Var,
                               const Expr &Replacement) {
  if (const auto *V = dyn_cast<VarRef>(&E))
    if (V->getName() == Var)
      return Replacement.clone();
  // Source locations are preserved so diagnostics on substituted bodies
  // (normalized/reduced loops) still anchor to the original source.
  ExprPtr Copy;
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
    return E.clone();
  case Expr::Kind::ArrayRef: {
    const auto *AR = cast<ArrayRefExpr>(&E);
    std::vector<ExprPtr> Subs;
    Subs.reserve(AR->getNumSubscripts());
    for (const ExprPtr &S : AR->subscripts())
      Subs.push_back(substituteScalar(*S, Var, Replacement));
    Copy = std::make_unique<ArrayRefExpr>(AR->getName(), std::move(Subs));
    break;
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(&E);
    Copy = std::make_unique<BinaryExpr>(
        BE->getOp(), substituteScalar(*BE->getLHS(), Var, Replacement),
        substituteScalar(*BE->getRHS(), Var, Replacement));
    break;
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(&E);
    Copy = std::make_unique<UnaryExpr>(
        UE->getOp(), substituteScalar(*UE->getOperand(), Var, Replacement));
    break;
  }
  }
  if (Copy)
    Copy->setLoc(E.getLoc());
  return Copy;
}

StmtList ardf::substituteScalar(const StmtList &Stmts, const std::string &Var,
                                const Expr &Replacement) {
  StmtList Result;
  Result.reserve(Stmts.size());
  for (const StmtPtr &S : Stmts) {
    switch (S->getKind()) {
    case Stmt::Kind::Assign: {
      const auto *AS = cast<AssignStmt>(S.get());
      Result.push_back(std::make_unique<AssignStmt>(
          substituteScalar(*AS->getLHS(), Var, Replacement),
          substituteScalar(*AS->getRHS(), Var, Replacement)));
      break;
    }
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S.get());
      Result.push_back(std::make_unique<IfStmt>(
          substituteScalar(*IS->getCond(), Var, Replacement),
          substituteScalar(IS->getThen(), Var, Replacement),
          substituteScalar(IS->getElse(), Var, Replacement)));
      break;
    }
    case Stmt::Kind::DoLoop: {
      const auto *DL = cast<DoLoopStmt>(S.get());
      // An inner loop with the same induction variable shadows it.
      if (DL->getIndVar() == Var) {
        Result.push_back(S->clone());
        break;
      }
      Result.push_back(std::make_unique<DoLoopStmt>(
          DL->getIndVar(), substituteScalar(*DL->getLower(), Var, Replacement),
          substituteScalar(*DL->getUpper(), Var, Replacement),
          substituteScalar(DL->getBody(), Var, Replacement), DL->getStep()));
      break;
    }
    case Stmt::Kind::While: {
      const auto *WS = cast<WhileStmt>(S.get());
      Result.push_back(std::make_unique<WhileStmt>(
          substituteScalar(*WS->getCond(), Var, Replacement),
          substituteScalar(WS->getBody(), Var, Replacement)));
      break;
    }
    case Stmt::Kind::Break:
      Result.push_back(S->clone());
      break;
    }
    Result.back()->setLoc(S->getLoc());
  }
  return Result;
}
