//===- transform/LoopUnroll.cpp - Loop unrolling (Section 4.3) -----------===//

#include "transform/LoopUnroll.h"

#include "ir/IRBuilder.h"
#include "lattice/Distance.h"
#include "transform/Rewrite.h"

using namespace ardf;

std::optional<StmtList> ardf::unrollLoop(const DoLoopStmt &Loop,
                                         unsigned Factor) {
  if (Factor < 2 || !Loop.isNormalized())
    return std::nullopt;
  int64_t Trip = Loop.getConstantTripCount();
  if (Trip == UnknownTripCount || Trip < static_cast<int64_t>(Factor))
    return std::nullopt;

  const std::string &IV = Loop.getIndVar();
  int64_t MainTrip = Trip - Trip % Factor;

  StmtList UnrolledBody;
  for (unsigned K = 0; K != Factor; ++K) {
    ExprPtr Shifted = K == 0 ? var(IV) : add(var(IV), lit(K));
    StmtList Copy = substituteScalar(Loop.getBody(), IV, *Shifted);
    for (StmtPtr &S : Copy)
      UnrolledBody.push_back(std::move(S));
  }

  StmtList Result;
  Result.push_back(std::make_unique<DoLoopStmt>(
      IV, lit(1), lit(MainTrip), std::move(UnrolledBody),
      static_cast<int64_t>(Factor)));
  if (MainTrip < Trip)
    Result.push_back(std::make_unique<DoLoopStmt>(
        IV, lit(MainTrip + 1), lit(Trip), cloneStmts(Loop.getBody())));
  return Result;
}

Program ardf::unrollProgram(const Program &P, unsigned Factor) {
  RewritePlan Plan;
  for (const StmtPtr &S : P.getStmts()) {
    const auto *Loop = dyn_cast<DoLoopStmt>(S.get());
    if (!Loop)
      continue;
    std::optional<StmtList> Unrolled = unrollLoop(*Loop, Factor);
    if (!Unrolled)
      continue;
    Plan.RemoveStmts.insert(Loop);
    Plan.InsertAfter[Loop] = std::move(*Unrolled);
  }
  return rewriteProgram(P, Plan);
}
