//===- transform/StoreElimination.cpp - Redundant stores (4.2.1) ---------===//

#include "transform/StoreElimination.h"

#include "analysis/LoopAnalysisSession.h"
#include "driver/ProgramAnalysisDriver.h"
#include "ir/IRBuilder.h"
#include "ir/PrettyPrinter.h"
#include "transform/Rewrite.h"

#include <algorithm>

using namespace ardf;

namespace {

/// Collects the redundant stores of one loop into \p Plan. Returns the
/// maximal redundancy distance (0 when nothing was eliminated with
/// delta >= 1).
int64_t planLoop(LoopAnalysisSession &Session, RewritePlan &Plan,
                 StoreElimResult &Result) {
  const DoLoopStmt &Loop = Session.loop();
  const ReferenceUniverse &U = Session.universe();

  // Sinks are candidate redundant stores; sources are the busy stores
  // overwriting them delta iterations later.
  struct Victim {
    const Stmt *Store;
    unsigned SinkId;
    unsigned SourceId;
    int64_t Delta;
  };
  std::vector<Victim> Victims;
  for (const ReusePair &Pair : Session.reusePairs(
           ProblemSpec::busyStoresPerOccurrence(), RefSelector::Defs)) {
    const RefOccurrence &Sink = U.occurrence(Pair.SinkId);
    const RefOccurrence &Source = U.occurrence(Pair.SourceId);
    if (Sink.InSummary || Source.InSummary)
      continue;
    Victims.push_back(
        Victim{Sink.OwnerStmt, Pair.SinkId, Pair.SourceId, Pair.Distance});
  }
  if (Victims.empty())
    return 0;

  // One statement may be redundant against several future stores; keep
  // the smallest distance per statement (fewest unpeeled iterations).
  std::sort(Victims.begin(), Victims.end(),
            [](const Victim &A, const Victim &B) {
              return A.Store != B.Store ? A.Store < B.Store
                                        : A.Delta < B.Delta;
            });
  Victims.erase(std::unique(Victims.begin(), Victims.end(),
                            [](const Victim &A, const Victim &B) {
                              return A.Store == B.Store;
                            }),
                Victims.end());

  int64_t MaxDelta = 0;
  for (const Victim &V : Victims)
    MaxDelta = std::max(MaxDelta, V.Delta);

  // The final MaxDelta iterations must still perform every store; with a
  // known trip count that small, the transformation cannot pay off.
  int64_t Trip = Loop.getConstantTripCount();
  if (Trip != UnknownTripCount && Trip <= MaxDelta)
    return 0;

  for (const Victim &V : Victims) {
    Plan.RemoveStmts.insert(V.Store);
    ++Result.StoresEliminated;
    Result.Notes.push_back(
        exprToString(*U.occurrence(V.SinkId).Ref) + " is " +
        std::to_string(V.Delta) + "-redundant (overwritten by " +
        exprToString(*U.occurrence(V.SourceId).Ref) + ")");
  }

  if (MaxDelta > 0) {
    // Shrink the main loop by MaxDelta iterations...
    ExprPtr NewUpper;
    if (const auto *UpperLit = dyn_cast<IntLit>(Loop.getUpper()))
      NewUpper = lit(UpperLit->getValue() - MaxDelta);
    else
      NewUpper = sub(Loop.getUpper()->clone(), lit(MaxDelta));
    Plan.ReplaceExprs[Loop.getUpper()] = std::move(NewUpper);

    // ... and unpeel them with the full original body:
    //   do i = UB - MaxDelta + 1, UB { <original body> }
    ExprPtr EpiLower;
    ExprPtr EpiUpper;
    if (const auto *UpperLit = dyn_cast<IntLit>(Loop.getUpper())) {
      EpiLower = lit(UpperLit->getValue() - MaxDelta + 1);
      EpiUpper = lit(UpperLit->getValue());
    } else {
      EpiLower = sub(Loop.getUpper()->clone(), lit(MaxDelta - 1));
      EpiUpper = Loop.getUpper()->clone();
    }
    StmtList Epilogue;
    Epilogue.push_back(std::make_unique<DoLoopStmt>(
        Loop.getIndVar(), std::move(EpiLower), std::move(EpiUpper),
        cloneStmts(Loop.getBody())));
    Plan.InsertAfter[&Loop] = std::move(Epilogue);
    Result.UnpeeledIterations += MaxDelta;
  }
  return MaxDelta;
}

} // namespace

StoreElimResult ardf::eliminateRedundantStores(const Program &P) {
  StoreElimResult Result;
  RewritePlan Plan;
  for (const StmtPtr &S : P.getStmts())
    if (const auto *Loop = dyn_cast<DoLoopStmt>(S.get()))
      if (Loop->isNormalized()) {
        LoopAnalysisSession Session(P, *Loop);
        planLoop(Session, Plan, Result);
      }
  Result.Transformed = rewriteProgram(P, Plan);
  return Result;
}

StoreElimResult ardf::eliminateRedundantStores(ProgramAnalysisDriver &Driver) {
  const Program &P = Driver.program();
  StoreElimResult Result;
  RewritePlan Plan;
  for (const StmtPtr &S : P.getStmts())
    if (const auto *Loop = dyn_cast<DoLoopStmt>(S.get()))
      if (Loop->isNormalized())
        if (LoopAnalysisSession *Session = Driver.sessionFor(*Loop))
          planLoop(*Session, Plan, Result);
  Result.Transformed = rewriteProgram(P, Plan);
  return Result;
}
