//===- transform/LoadElimination.cpp - Redundant loads (4.2.2) -----------===//

#include "transform/LoadElimination.h"

#include "analysis/LoopAnalysisSession.h"
#include "driver/ProgramAnalysisDriver.h"
#include "ir/IRBuilder.h"
#include "ir/PrettyPrinter.h"
#include "transform/Rewrite.h"

#include <algorithm>
#include <map>
#include <set>

using namespace ardf;

namespace {

/// Name of pipeline stage \p K for generator occurrence \p SourceId.
std::string tempName(unsigned SourceId, int64_t K) {
  return "_t" + std::to_string(SourceId) + "_" + std::to_string(K);
}

void appendTo(std::map<const Stmt *, StmtList> &Map, const Stmt *Key,
              StmtPtr S) {
  Map[Key].push_back(std::move(S));
}

/// Plans scalar replacement for one (normalized) loop. The session may
/// be shared with other clients; the per-occurrence available-values
/// solution is memoized in it.
void planLoop(LoopAnalysisSession &Session, const LoadElimOptions &Opts,
              RewritePlan &Plan, LoadElimResult &Result) {
  const DoLoopStmt &Loop = Session.loop();
  const ReferenceUniverse &U = Session.universe();

  // Candidate pairs, grouped by sink.
  std::map<unsigned, std::vector<ReusePair>> BySink;
  std::set<unsigned> AllSinks;
  for (const ReusePair &Pair : Session.reusePairs(
           ProblemSpec::availableValuesPerOccurrence(), RefSelector::Uses)) {
    const RefOccurrence &Sink = U.occurrence(Pair.SinkId);
    const RefOccurrence &Source = U.occurrence(Pair.SourceId);
    if (Sink.InSummary || Source.InSummary)
      continue;
    if (Pair.Distance > Opts.MaxDistance)
      continue;
    BySink[Pair.SinkId].push_back(Pair);
    AllSinks.insert(Pair.SinkId);
  }
  if (BySink.empty())
    return;

  // Choose one source per sink: prefer definitions (their value is
  // produced anyway); a use may serve as generator only when it is not
  // itself rerouted to a temporary.
  struct Chosen {
    std::vector<std::pair<unsigned, int64_t>> Sinks; // (sinkId, delta)
    int64_t MaxDelta = 0;
  };
  std::map<unsigned, Chosen> Generators;
  for (auto &[SinkId, Pairs] : BySink) {
    std::sort(Pairs.begin(), Pairs.end(),
              [&](const ReusePair &A, const ReusePair &B) {
                bool ADef = U.occurrence(A.SourceId).IsDef;
                bool BDef = U.occurrence(B.SourceId).IsDef;
                if (ADef != BDef)
                  return ADef;
                return A.Distance < B.Distance;
              });
    const ReusePair *Best = nullptr;
    for (const ReusePair &Pair : Pairs) {
      if (!U.occurrence(Pair.SourceId).IsDef && AllSinks.count(Pair.SourceId))
        continue;
      Best = &Pair;
      break;
    }
    if (!Best)
      continue;
    Chosen &C = Generators[Best->SourceId];
    C.Sinks.emplace_back(SinkId, Best->Distance);
    C.MaxDelta = std::max(C.MaxDelta, Best->Distance);
  }

  // Phase 1: reroute every sink to its pipeline stage. All replacements
  // must be registered before any generator statement is eagerly
  // rewritten below, since a sink may sit inside another generator's
  // right-hand side.
  for (auto &[SourceId, C] : Generators) {
    const RefOccurrence &Source = U.occurrence(SourceId);
    for (const auto &[SinkId, Delta] : C.Sinks) {
      const RefOccurrence &Sink = U.occurrence(SinkId);
      Plan.ReplaceExprs[Sink.Ref] = var(tempName(SourceId, Delta));
      ++Result.LoadsEliminated;
      Result.Notes.push_back("use " + exprToString(*Sink.Ref) + " reuses " +
                             exprToString(*Source.Ref) + " from " +
                             std::to_string(Delta) + " iteration(s) earlier");
    }
  }

  // Phase 2a: use generators load stage 0 once, in front of their
  // statement; the use itself becomes a stage-0 read. These replacements
  // are registered before any def generator's statement is eagerly
  // rewritten, since a use generator may sit inside a def generator's
  // right-hand side.
  for (auto &[SourceId, C] : Generators) {
    const RefOccurrence &Source = U.occurrence(SourceId);
    if (Source.IsDef)
      continue;
    appendTo(Plan.InsertBefore, Source.OwnerStmt,
             assign(var(tempName(SourceId, 0)), Source.Ref->clone()));
    Plan.ReplaceExprs[Source.Ref] = var(tempName(SourceId, 0));
    ++Result.TempsIntroduced;
  }

  // Phase 2b: def generators materialize their value in stage 0 before
  // the store consumes it: X[f] = rhs becomes _t_0 = rhs; X[f] = _t_0.
  // rewriteExpr is applied eagerly so replacements nested inside the
  // statement compose.
  for (auto &[SourceId, C] : Generators) {
    const RefOccurrence &Source = U.occurrence(SourceId);
    if (!Source.IsDef)
      continue;
    const auto *AS = cast<AssignStmt>(Source.OwnerStmt);
    appendTo(Plan.InsertBefore, Source.OwnerStmt,
             assign(var(tempName(SourceId, 0)),
                    rewriteExpr(*AS->getRHS(), Plan)));
    appendTo(Plan.InsertBefore, Source.OwnerStmt,
             assign(rewriteExpr(*AS->getLHS(), Plan),
                    var(tempName(SourceId, 0))));
    Plan.RemoveStmts.insert(Source.OwnerStmt);
    ++Result.TempsIntroduced;
  }

  // Phase 2c: pipeline shifts and preheader initialization.
  for (auto &[SourceId, C] : Generators) {
    const RefOccurrence &Source = U.occurrence(SourceId);
    if (C.MaxDelta == 0)
      continue;

    // Pipeline shifts at the end of the body: _t_d = _t_{d-1}.
    const Stmt *LastStmt = Loop.getBody().back().get();
    for (int64_t K = C.MaxDelta; K >= 1; --K)
      appendTo(Plan.InsertAfter, LastStmt,
               assign(var(tempName(SourceId, K)),
                      var(tempName(SourceId, K - 1))));

    // Preheader initialization: stage k holds the value the generator
    // would have produced k iterations before the first one, i.e. the
    // element X[f(lower - k)] as the loop begins.
    for (int64_t K = 1; K <= C.MaxDelta; ++K) {
      std::vector<ExprPtr> Subs;
      ExprPtr Shifted = sub(Loop.getLower()->clone(), lit(K));
      for (const ExprPtr &S : Source.Ref->subscripts())
        Subs.push_back(substituteScalar(*S, Loop.getIndVar(), *Shifted));
      appendTo(Plan.InsertBefore, &Loop,
               assign(var(tempName(SourceId, K)),
                      std::make_unique<ArrayRefExpr>(Source.Ref->getName(),
                                                     std::move(Subs))));
      ++Result.TempsIntroduced;
    }
  }
}

} // namespace

LoadElimResult ardf::eliminateRedundantLoads(const Program &P,
                                             const LoadElimOptions &Opts) {
  LoadElimResult Result;
  RewritePlan Plan;
  for (const StmtPtr &S : P.getStmts())
    if (const auto *Loop = dyn_cast<DoLoopStmt>(S.get()))
      if (Loop->isNormalized()) {
        LoopAnalysisSession Session(P, *Loop);
        planLoop(Session, Opts, Plan, Result);
      }
  Result.Transformed = rewriteProgram(P, Plan);
  return Result;
}

LoadElimResult ardf::eliminateRedundantLoads(ProgramAnalysisDriver &Driver,
                                             const LoadElimOptions &Opts) {
  const Program &P = Driver.program();
  LoadElimResult Result;
  RewritePlan Plan;
  for (const StmtPtr &S : P.getStmts())
    if (const auto *Loop = dyn_cast<DoLoopStmt>(S.get()))
      if (Loop->isNormalized())
        if (LoopAnalysisSession *Session = Driver.sessionFor(*Loop))
          planLoop(*Session, Opts, Plan, Result);
  Result.Transformed = rewriteProgram(P, Plan);
  return Result;
}
