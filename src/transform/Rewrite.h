//===- transform/Rewrite.h - Clone-with-edits rewriting --------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transformation substrate: transforms analyze the original program
/// (whose Expr/Stmt pointers the analysis results refer to) and then
/// produce an edited deep copy. A RewritePlan collects edits keyed by
/// original node pointers; rewriteProgram applies them during cloning:
///
///   * ReplaceExprs  — swap a specific expression occurrence,
///   * RemoveStmts   — drop a statement (from any nesting depth),
///   * InsertBefore/InsertAfter — splice statements around an original.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_TRANSFORM_REWRITE_H
#define ARDF_TRANSFORM_REWRITE_H

#include "ir/Program.h"

#include <map>
#include <set>

namespace ardf {

/// Edits to apply while cloning (see file comment). Replacement
/// expressions and inserted statements are moved out of the plan when
/// applied; each target must therefore be rewritten at most once.
struct RewritePlan {
  std::map<const Expr *, ExprPtr> ReplaceExprs;
  std::set<const Stmt *> RemoveStmts;
  std::map<const Stmt *, StmtList> InsertBefore;
  std::map<const Stmt *, StmtList> InsertAfter;

  bool empty() const {
    return ReplaceExprs.empty() && RemoveStmts.empty() &&
           InsertBefore.empty() && InsertAfter.empty();
  }
};

/// Clones \p E, substituting planned replacements.
ExprPtr rewriteExpr(const Expr &E, RewritePlan &Plan);

/// Clones \p Stmts applying all edits of \p Plan.
StmtList rewriteStmts(const StmtList &Stmts, RewritePlan &Plan);

/// Clones \p P applying all edits of \p Plan.
Program rewriteProgram(const Program &P, RewritePlan &Plan);

/// Clones \p E substituting every occurrence of scalar \p Var by a clone
/// of \p Replacement (used by unrolling and unpeeling: i -> i + k).
ExprPtr substituteScalar(const Expr &E, const std::string &Var,
                         const Expr &Replacement);

/// Clones \p Stmts with the same substitution applied everywhere.
StmtList substituteScalar(const StmtList &Stmts, const std::string &Var,
                          const Expr &Replacement);

} // namespace ardf

#endif // ARDF_TRANSFORM_REWRITE_H
