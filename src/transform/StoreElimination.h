//===- transform/StoreElimination.h - Redundant stores (4.2.1) -*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eliminates delta-redundant stores (Section 4.2.1, Fig. 6): a store
/// whose element is rewritten delta iterations later without an
/// intervening use — detected from the delta-busy-stores instance — is
/// removed from the loop, and the final delta_max iterations are
/// unpeeled into an epilogue loop that still performs every store.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_TRANSFORM_STOREELIMINATION_H
#define ARDF_TRANSFORM_STOREELIMINATION_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace ardf {

class ProgramAnalysisDriver;

/// Result of redundant store elimination.
struct StoreElimResult {
  Program Transformed;

  /// Number of store statements removed from loop bodies.
  unsigned StoresEliminated = 0;

  /// Iterations unpeeled across all transformed loops (max delta).
  int64_t UnpeeledIterations = 0;

  /// Human-readable notes, one per eliminated store:
  /// "A[i + 1] is 1-redundant (overwritten by A[i])".
  std::vector<std::string> Notes;
};

/// Applies redundant store elimination to every top-level loop of \p P.
/// Loops must be normalized; loops whose trip count is too small to
/// unpeel are left unchanged.
StoreElimResult eliminateRedundantStores(const Program &P);

/// Batched form: analyses run through \p Driver's per-loop sessions, so
/// the flow graphs and reference universes are shared with every other
/// client of the driver (and with its own run(), if already performed).
StoreElimResult eliminateRedundantStores(ProgramAnalysisDriver &Driver);

} // namespace ardf

#endif // ARDF_TRANSFORM_STOREELIMINATION_H
