//===- affine/AffineAccess.h - Affine view of array references -*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts subscript expressions into polynomials, linearizes
/// multi-dimensional references (Section 3.6), and decomposes the result
/// into the affine form a*iv + b with respect to the controlling
/// induction variable. Induction variables of enclosing loops and
/// dimension sizes remain symbolic, exactly as the paper prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_AFFINE_AFFINEACCESS_H
#define ARDF_AFFINE_AFFINEACCESS_H

#include "affine/Poly.h"
#include "ir/Program.h"

#include <optional>
#include <string>

namespace ardf {

/// Evaluates a subscript-position expression to a polynomial over
/// symbolic names. Returns nullopt for expressions containing array
/// references, comparisons, logical operators, or inexact division.
std::optional<Poly> evalToPoly(const Expr &E);

/// Linearizes the subscripts of \p Ref into a single polynomial, using
/// the dimension sizes declared in \p P (row-major: the first subscript
/// varies slowest, matching the paper's X[N*i + j] form for X[i, j]).
/// One-dimensional references linearize to their sole subscript.
/// Returns nullopt when a subscript is not polynomial or a needed
/// dimension size is missing/non-polynomial.
std::optional<Poly> linearizeSubscripts(const ArrayRefExpr &Ref,
                                        const Program &P);

/// A subscripted reference linearized and decomposed as A*iv + B with
/// respect to one induction variable. A and B are polynomials that do not
/// mention iv; enclosing-loop induction variables stay symbolic inside
/// them. The analysis requires A to be nonzero for references that evolve
/// with the loop; loop-invariant references have A == 0.
struct AffineAccess {
  std::string Array;
  Poly A;
  Poly B;

  /// True if the subscript does not move with the induction variable.
  bool isLoopInvariant() const { return A.isZero(); }

  /// Renders "X[a*iv + b]" style text for diagnostics.
  std::string toString(const std::string &IV) const;
};

/// Builds the affine view of \p Ref with respect to induction variable
/// \p IV. Returns nullopt when the (linearized) subscript is not affine
/// in IV.
std::optional<AffineAccess> makeAffineAccess(const ArrayRefExpr &Ref,
                                             const Program &P,
                                             const std::string &IV);

/// Computes the constant reuse distance delta such that
/// From.subscript(i - delta) == To.subscript(i) for all i, i.e. instances
/// of \p To reference the element \p From produced delta iterations
/// earlier: delta = (From.B - To.B) / From.A + contribution of equal A's.
/// Requires both accesses to the same array with symbolically equal A;
/// returns nullopt when no constant distance exists.
std::optional<Rational> constantReuseDistance(const AffineAccess &From,
                                              const AffineAccess &To);

} // namespace ardf

#endif // ARDF_AFFINE_AFFINEACCESS_H
