//===- affine/AffineAccess.cpp - Affine view of array references ---------===//

#include "affine/AffineAccess.h"

#include <sstream>

using namespace ardf;

std::optional<Poly> ardf::evalToPoly(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    return Poly::constant(cast<IntLit>(&E)->getValue());
  case Expr::Kind::VarRef:
    return Poly::symbol(cast<VarRef>(&E)->getName());
  case Expr::Kind::ArrayRef:
    return std::nullopt;
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(&E);
    if (UE->getOp() != UnaryOpKind::Neg)
      return std::nullopt;
    std::optional<Poly> Operand = evalToPoly(*UE->getOperand());
    if (!Operand)
      return std::nullopt;
    return -*Operand;
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(&E);
    std::optional<Poly> L = evalToPoly(*BE->getLHS());
    std::optional<Poly> R = evalToPoly(*BE->getRHS());
    if (!L || !R)
      return std::nullopt;
    switch (BE->getOp()) {
    case BinaryOpKind::Add:
      return *L + *R;
    case BinaryOpKind::Sub:
      return *L - *R;
    case BinaryOpKind::Mul:
      return *L * *R;
    case BinaryOpKind::Div:
      // Only exact division by a nonzero integer constant is polynomial.
      if (!R->isConstant() || R->getConstant() == 0)
        return std::nullopt;
      return L->dividedBy(R->getConstant());
    default:
      return std::nullopt;
    }
  }
  }
  return std::nullopt;
}

std::optional<Poly> ardf::linearizeSubscripts(const ArrayRefExpr &Ref,
                                              const Program &P) {
  unsigned NumDims = Ref.getNumSubscripts();
  if (NumDims == 1)
    return evalToPoly(*Ref.getSubscript(0));

  const ArrayDecl *Decl = P.getArrayDecl(Ref.getName());
  if (!Decl || Decl->getNumDims() != NumDims)
    return std::nullopt;

  // Row-major: addr = (((s0) * d1 + s1) * d2 + s2) ...  The paper's
  // two-dimensional X[i, j] with first-dimension size N linearizes to
  // N*i + j (Fig. 4 discussion).
  Poly Addr;
  for (unsigned I = 0; I != NumDims; ++I) {
    std::optional<Poly> Sub = evalToPoly(*Ref.getSubscript(I));
    if (!Sub)
      return std::nullopt;
    if (I == 0) {
      Addr = *Sub;
      continue;
    }
    std::optional<Poly> Dim = evalToPoly(*Decl->DimSizes[I]);
    if (!Dim)
      return std::nullopt;
    Addr = Addr * *Dim + *Sub;
  }
  return Addr;
}

std::string AffineAccess::toString(const std::string &IV) const {
  std::ostringstream OS;
  OS << Array << '[';
  if (!A.isZero()) {
    if (A.isConstant() && A.getConstant() == 1)
      OS << IV;
    else
      OS << '(' << A << ")*" << IV;
    if (!B.isZero())
      OS << " + " << B;
  } else {
    OS << B;
  }
  OS << ']';
  return OS.str();
}

std::optional<AffineAccess> ardf::makeAffineAccess(const ArrayRefExpr &Ref,
                                                   const Program &P,
                                                   const std::string &IV) {
  std::optional<Poly> Linear = linearizeSubscripts(Ref, P);
  if (!Linear)
    return std::nullopt;
  auto Split = Linear->splitAffine(IV);
  if (!Split)
    return std::nullopt;
  // The coefficient of IV must itself be IV-free; splitAffine guarantees
  // this by construction (degree-2 occurrences are rejected).
  AffineAccess Access;
  Access.Array = Ref.getName();
  Access.A = std::move(Split->first);
  Access.B = std::move(Split->second);
  return Access;
}

std::optional<Rational> ardf::constantReuseDistance(const AffineAccess &From,
                                                    const AffineAccess &To) {
  if (From.Array != To.Array)
    return std::nullopt;
  // f1(i - d) == f2(i) for all i requires equal coefficients on i and
  // d == (B1 - B2) / A1.
  if (From.A != To.A)
    return std::nullopt;
  Poly Diff = From.B - To.B;
  if (Diff.isZero())
    return Rational(0);
  if (From.A.isZero())
    return std::nullopt;
  return Diff.ratioTo(From.A);
}
