//===- affine/Poly.h - Multivariate integer polynomials --------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse multivariate polynomials with integer coefficients over symbolic
/// constants and induction variables. Subscript expressions evaluate to
/// Poly values; linearizing a multi-dimensional reference X[f1(i), f2(i)]
/// multiplies subscripts by (symbolic) dimension sizes, producing terms
/// such as N*i (Section 3.6 of the paper). The affine decomposition
/// a*iv + b with symbolic a and b is computed from a Poly.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_AFFINE_POLY_H
#define ARDF_AFFINE_POLY_H

#include "support/Rational.h"

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ardf {

/// A monomial: a sorted multiset of symbol names. The empty monomial is
/// the constant term.
using Monomial = std::vector<std::string>;

/// A sparse multivariate polynomial with int64 coefficients.
class Poly {
public:
  /// The zero polynomial.
  Poly() = default;

  /// The constant polynomial \p C.
  static Poly constant(int64_t C);

  /// The degree-1 polynomial consisting of the single symbol \p Name.
  static Poly symbol(const std::string &Name);

  bool isZero() const { return Terms.empty(); }

  /// True if the polynomial is a constant (possibly zero).
  bool isConstant() const;

  /// Returns the constant value; asserts isConstant().
  int64_t getConstant() const;

  /// Returns the coefficient of \p M (0 when absent).
  int64_t getCoeff(const Monomial &M) const;

  /// True if \p Name occurs in any monomial.
  bool mentions(const std::string &Name) const;

  /// Maximum total degree of any monomial (0 for constants and zero).
  unsigned degree() const;

  Poly operator+(const Poly &RHS) const;
  Poly operator-(const Poly &RHS) const;
  Poly operator*(const Poly &RHS) const;
  Poly operator-() const;
  bool operator==(const Poly &RHS) const { return Terms == RHS.Terms; }
  bool operator!=(const Poly &RHS) const { return !(*this == RHS); }

  /// Multiplies all coefficients by \p C.
  Poly scaled(int64_t C) const;

  /// Exact division by an integer: returns nullopt unless every
  /// coefficient is divisible by \p C.
  std::optional<Poly> dividedBy(int64_t C) const;

  /// If this == c * RHS for a rational c, returns c. Handles the symbolic
  /// kill-distance evaluation of Section 3.6 (e.g. (2*N) / (N) == 2).
  /// RHS must be nonzero.
  std::optional<Rational> ratioTo(const Poly &RHS) const;

  /// Splits this polynomial P into (A, B) with P == A * sym + B, where
  /// neither A nor B mentions \p Sym. Returns nullopt when some monomial
  /// contains \p Sym with degree >= 2 (non-affine in Sym).
  std::optional<std::pair<Poly, Poly>> splitAffine(const std::string &Sym) const;

  /// Substitutes the polynomial \p Value for the symbol \p Sym.
  Poly substituted(const std::string &Sym, const Poly &Value) const;

  /// All distinct symbols mentioned.
  std::vector<std::string> symbols() const;

  const std::map<Monomial, int64_t> &terms() const { return Terms; }

  /// Renders e.g. "2*N*i + j - 1"; "0" for the zero polynomial.
  std::string toString() const;

private:
  void addTerm(const Monomial &M, int64_t Coeff);

  std::map<Monomial, int64_t> Terms;
};

std::ostream &operator<<(std::ostream &OS, const Poly &P);

} // namespace ardf

#endif // ARDF_AFFINE_POLY_H
