//===- affine/Poly.cpp - Multivariate integer polynomials ----------------===//

#include "affine/Poly.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <set>
#include <sstream>

using namespace ardf;

Poly Poly::constant(int64_t C) {
  Poly P;
  if (C != 0)
    P.Terms[Monomial()] = C;
  return P;
}

Poly Poly::symbol(const std::string &Name) {
  Poly P;
  P.Terms[Monomial{Name}] = 1;
  return P;
}

bool Poly::isConstant() const {
  return Terms.empty() || (Terms.size() == 1 && Terms.begin()->first.empty());
}

int64_t Poly::getConstant() const {
  assert(isConstant() && "polynomial is not a constant");
  return Terms.empty() ? 0 : Terms.begin()->second;
}

int64_t Poly::getCoeff(const Monomial &M) const {
  auto It = Terms.find(M);
  return It == Terms.end() ? 0 : It->second;
}

bool Poly::mentions(const std::string &Name) const {
  for (const auto &[M, C] : Terms)
    if (std::find(M.begin(), M.end(), Name) != M.end())
      return true;
  return false;
}

unsigned Poly::degree() const {
  unsigned D = 0;
  for (const auto &[M, C] : Terms)
    D = std::max<unsigned>(D, M.size());
  return D;
}

void Poly::addTerm(const Monomial &M, int64_t Coeff) {
  if (Coeff == 0)
    return;
  int64_t &Slot = Terms[M];
  Slot += Coeff;
  if (Slot == 0)
    Terms.erase(M);
}

Poly Poly::operator+(const Poly &RHS) const {
  Poly Result = *this;
  for (const auto &[M, C] : RHS.Terms)
    Result.addTerm(M, C);
  return Result;
}

Poly Poly::operator-(const Poly &RHS) const {
  Poly Result = *this;
  for (const auto &[M, C] : RHS.Terms)
    Result.addTerm(M, -C);
  return Result;
}

Poly Poly::operator-() const {
  Poly Result;
  for (const auto &[M, C] : Terms)
    Result.Terms[M] = -C;
  return Result;
}

Poly Poly::operator*(const Poly &RHS) const {
  Poly Result;
  for (const auto &[MA, CA] : Terms) {
    for (const auto &[MB, CB] : RHS.Terms) {
      Monomial M = MA;
      M.insert(M.end(), MB.begin(), MB.end());
      std::sort(M.begin(), M.end());
      Result.addTerm(M, CA * CB);
    }
  }
  return Result;
}

Poly Poly::scaled(int64_t C) const {
  Poly Result;
  if (C == 0)
    return Result;
  for (const auto &[M, Coeff] : Terms)
    Result.Terms[M] = Coeff * C;
  return Result;
}

std::optional<Poly> Poly::dividedBy(int64_t C) const {
  assert(C != 0 && "division by zero");
  Poly Result;
  for (const auto &[M, Coeff] : Terms) {
    if (Coeff % C != 0)
      return std::nullopt;
    Result.Terms[M] = Coeff / C;
  }
  return Result;
}

std::optional<Rational> Poly::ratioTo(const Poly &RHS) const {
  assert(!RHS.isZero() && "ratio to the zero polynomial");
  if (isZero())
    return Rational(0);
  // Monomial sets must match exactly and all coefficient ratios agree.
  if (Terms.size() != RHS.Terms.size())
    return std::nullopt;
  std::optional<Rational> Ratio;
  auto ItA = Terms.begin();
  auto ItB = RHS.Terms.begin();
  for (; ItA != Terms.end(); ++ItA, ++ItB) {
    if (ItA->first != ItB->first)
      return std::nullopt;
    Rational R(ItA->second, ItB->second);
    if (Ratio && *Ratio != R)
      return std::nullopt;
    Ratio = R;
  }
  return Ratio;
}

std::optional<std::pair<Poly, Poly>>
Poly::splitAffine(const std::string &Sym) const {
  Poly A, B;
  for (const auto &[M, C] : Terms) {
    unsigned Count = std::count(M.begin(), M.end(), Sym);
    if (Count == 0) {
      B.addTerm(M, C);
      continue;
    }
    if (Count > 1)
      return std::nullopt;
    Monomial Rest;
    bool Removed = false;
    for (const std::string &S : M) {
      if (!Removed && S == Sym) {
        Removed = true;
        continue;
      }
      Rest.push_back(S);
    }
    A.addTerm(Rest, C);
  }
  return std::make_pair(std::move(A), std::move(B));
}

Poly Poly::substituted(const std::string &Sym, const Poly &Value) const {
  Poly Result;
  for (const auto &[M, C] : Terms) {
    Poly Term = Poly::constant(C);
    for (const std::string &S : M)
      Term = Term * (S == Sym ? Value : Poly::symbol(S));
    Result = Result + Term;
  }
  return Result;
}

std::vector<std::string> Poly::symbols() const {
  std::set<std::string> Set;
  for (const auto &[M, C] : Terms)
    Set.insert(M.begin(), M.end());
  return std::vector<std::string>(Set.begin(), Set.end());
}

std::string Poly::toString() const {
  if (Terms.empty())
    return "0";
  std::ostringstream OS;
  bool First = true;
  // Print higher-degree terms first for readability.
  std::vector<std::pair<Monomial, int64_t>> Sorted(Terms.begin(), Terms.end());
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const auto &A, const auto &B) {
                     return A.first.size() > B.first.size();
                   });
  for (const auto &[M, C] : Sorted) {
    int64_t Coeff = C;
    if (First) {
      if (Coeff < 0) {
        OS << '-';
        Coeff = -Coeff;
      }
    } else {
      OS << (Coeff < 0 ? " - " : " + ");
      Coeff = Coeff < 0 ? -Coeff : Coeff;
    }
    First = false;
    if (M.empty()) {
      OS << Coeff;
      continue;
    }
    if (Coeff != 1)
      OS << Coeff << '*';
    for (size_t I = 0; I != M.size(); ++I) {
      if (I)
        OS << '*';
      OS << M[I];
    }
  }
  return OS.str();
}

std::ostream &ardf::operator<<(std::ostream &OS, const Poly &P) {
  return OS << P.toString();
}
