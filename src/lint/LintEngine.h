//===- lint/LintEngine.h - Whole-program diagnostics engine ----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ardf-lint engine: validates a program (precondition diagnostics),
/// then runs every framework-backed check of lint/Checks.h over each
/// normalized, analyzable loop. One LoopAnalysisSession per loop is
/// shared by all checks, so the loop's flow graph, reference universe,
/// and any problem instance two checks have in common are built and
/// solved exactly once. With CrossCheck enabled every problem is
/// additionally solved by BOTH solver engines and any divergence is
/// reported as an internal-consistency error -- a permanent static
/// oracle for the packed kernel solver.
///
/// \code
///   LintResult R = lintSource(Text, "fig1.arf");
///   renderText(std::cout, R.Diags, Sources);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_LINT_LINTENGINE_H
#define ARDF_LINT_LINTENGINE_H

#include "dataflow/Framework.h"
#include "lint/Diagnostic.h"

#include <string>
#include <vector>

namespace ardf {

class Program;

/// Lint engine configuration.
struct LintOptions {
  /// Primary solver engine every check solves with.
  SolverOptions::Engine Engine = SolverOptions::Engine::Reference;

  /// Solve each problem with both engines and report divergence as an
  /// engine-divergence error diagnostic.
  bool CrossCheck = true;

  /// Also lint nested loops (each with respect to its own induction
  /// variable).
  bool IncludeNested = true;

  /// Resource ceilings forwarded to every backing solve. A check whose
  /// solve degrades is skipped with an explicit analysis-degraded
  /// diagnostic instead of reporting findings derived from the
  /// conservative fill; the loop's other checks still run.
  SolverBudget Budget;

  /// Attach derivation evidence to every explainable diagnostic
  /// (ardf-lint --explain): each finding's backing problem is re-solved
  /// through the reference engine with provenance recording and the
  /// solution cell's derivation trail plus DAG are attached (see
  /// lint/Remarks.h). The configured engine's solves are unaffected.
  bool Explain = false;

  /// Restrict Explain to one check id (--explain=CHECK-ID); empty
  /// explains all checks.
  std::string ExplainCheck;
};

/// Result of one lint run.
struct LintResult {
  std::vector<Diagnostic> Diags;

  /// Loops the framework checks actually ran on (normalized, analyzable
  /// ones; the rest only get precondition diagnostics).
  unsigned LoopsAnalyzed = 0;

  /// Engine cross-check comparisons that diverged (0 is the invariant).
  unsigned EngineDivergences = 0;

  /// Checks skipped (or aborted by a captured exception) because their
  /// backing analysis degraded; each carries an analysis-degraded
  /// diagnostic.
  unsigned ChecksDegraded = 0;

  bool hasErrors() const {
    for (const Diagnostic &D : Diags)
      if (D.isError())
        return true;
    return false;
  }

  unsigned count(DiagSeverity S) const {
    unsigned N = 0;
    for (const Diagnostic &D : Diags)
      N += D.Severity == S ? 1 : 0;
    return N;
  }
};

/// Lints an already-parsed program. \p File is the artifact name stamped
/// into every diagnostic.
LintResult lintProgram(const Program &P, const std::string &File,
                       const LintOptions &Opts = LintOptions());

/// Parses \p Source and lints it. Parse failures become parse-error
/// diagnostics (and no framework checks run on a partial program).
LintResult lintSource(const std::string &Source, const std::string &File,
                      const LintOptions &Opts = LintOptions());

} // namespace ardf

#endif // ARDF_LINT_LINTENGINE_H
