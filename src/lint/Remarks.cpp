//===- lint/Remarks.cpp - Derivation evidence for diagnostics -------------===//

#include "lint/Remarks.h"

#include "analysis/LoopAnalysisSession.h"
#include "dataflow/Provenance.h"

using namespace ardf;

namespace {

/// Resolves an explain key's problem name back to its spec. The checks
/// only ever stamp the four lint problems, so a linear scan suffices.
const ProblemSpec *findProblem(const std::vector<ProblemSpec> &Problems,
                               const std::string &Name) {
  for (const ProblemSpec &Spec : Problems)
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}

} // namespace

unsigned ardf::attachRemarks(LoopAnalysisSession &Session,
                             const LintCheckContext &Ctx,
                             std::vector<Diagnostic> &Diags, size_t FirstIdx,
                             const RemarkOptions &Opts) {
  std::vector<ProblemSpec> Problems = lintProblems();
  const ReferenceUniverse &U = Session.universe();
  unsigned Attached = 0;
  for (size_t I = FirstIdx; I < Diags.size(); ++I) {
    Diagnostic &D = Diags[I];
    if (D.EvidenceProblem.empty())
      continue;
    if (!Opts.CheckFilter.empty() && D.CheckId != Opts.CheckFilter)
      continue;
    const ProblemSpec *Spec = findProblem(Problems, D.EvidenceProblem);
    if (!Spec || D.EvidenceSinkId >= U.size())
      continue;

    // Reference re-solve with recording. RecordProvenance participates
    // in the solution-cache key, so this neither evicts nor aliases the
    // configured engine's cached result; one re-solve serves every
    // diagnostic of the same problem.
    SolverOptions ProvOpts = Ctx.Solver;
    ProvOpts.RecordProvenance = true;
    const SolveResult &Recorded = Session.solve(*Spec, ProvOpts);
    if (!Recorded.ok() || !Recorded.Provenance ||
        Recorded.Provenance->Degraded)
      continue; // degraded analysis: no explanation, no crash
    const SolveProvenance &Prov = *Recorded.Provenance;

    // The recording must derive exactly the solution the check read:
    // cross-check the re-solve bit-identical against the cached result
    // of the configured engine before interpreting it.
    const SolveResult &Fast = Session.solve(*Spec, Ctx.Solver);
    if (Fast.ok() &&
        !(Recorded.In == Fast.In && Recorded.Out == Fast.Out))
      continue; // engine divergence is checkEngineDivergence's report

    // The explained cell: IN at the sink's flow node, tracked slot of
    // the generating reference. All four lint problems are ungrouped,
    // so the source occurrence maps to exactly one tracked element.
    int Idx = -1;
    for (unsigned T = 0; T != Prov.Tracked.size(); ++T)
      if (Prov.Tracked[T].OccId == D.EvidenceSourceId)
        Idx = static_cast<int>(T);
    if (Idx < 0)
      continue;
    unsigned SinkNode = U.occurrence(D.EvidenceSinkId).Node;
    if (SinkNode >= Prov.NumNodes)
      continue;

    DerivationGraph G =
        buildDerivation(Prov, SinkNode, static_cast<unsigned>(Idx));
    for (ProvenanceStep &Step : derivationTrail(Prov, G))
      D.Evidence.push_back(
          RelatedLoc{Step.Loc, std::move(Step.Message)});
    D.DerivationJson = derivationToJson(Prov, G);
    ++Attached;
  }
  return Attached;
}
