//===- lint/Diagnostic.cpp - Structured lint diagnostics ------------------===//

#include "lint/Diagnostic.h"

#include <algorithm>
#include <tuple>

using namespace ardf;

const char *ardf::severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Error:
    return "error";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Note:
    return "note";
  }
  return "?";
}

void ardf::sortDiagnostics(std::vector<Diagnostic> &Diags) {
  std::stable_sort(Diags.begin(), Diags.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     return std::tie(A.File, A.Loc.Line, A.Loc.Col, A.CheckId,
                                     A.Message) <
                            std::tie(B.File, B.Loc.Line, B.Loc.Col, B.CheckId,
                                     B.Message);
                   });
}
