//===- lint/Remarks.h - Derivation evidence for diagnostics ----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The remarks pass behind ardf-lint --explain: turns the provenance
/// recording of dataflow/Provenance.h into structured analysis remarks
/// attached to each Diagnostic. Every framework-backed check stamps an
/// explain key (the backing problem plus the occurrence pair) onto its
/// findings for free; when explain is requested, attachRemarks re-solves
/// each referenced problem through the reference engine with provenance
/// recording -- the fast engines stay untouched -- cross-checks the
/// re-solve bit-identical against the cached configured-engine result,
/// and attaches the solution cell's chronological derivation trail plus
/// the full derivation DAG (as compact JSON) to the diagnostic. The
/// renderers then print a caret-annotated because-trail (text), embed
/// the DAG (JSON lines), or emit codeFlows/threadFlows (SARIF).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_LINT_REMARKS_H
#define ARDF_LINT_REMARKS_H

#include "lint/Checks.h"
#include "lint/Diagnostic.h"

#include <cstddef>
#include <string>
#include <vector>

namespace ardf {

/// Remarks pass configuration.
struct RemarkOptions {
  /// Restrict explanation to diagnostics of one check id; empty explains
  /// every explainable diagnostic.
  std::string CheckFilter;
};

/// Attaches derivation evidence to the diagnostics in
/// [\p FirstIdx, Diags.size()) that carry an explain key. Each backing
/// problem is re-solved once through \p Session with the reference
/// engine recording provenance (a distinct solution-cache entry, so the
/// configured engine's cached result is undisturbed) and the re-solve is
/// verified bit-identical against that cached result before any
/// derivation is read from it. Diagnostics whose backing solve degraded
/// are skipped silently -- explain degrades, never crashes. Returns the
/// number of diagnostics that gained evidence.
unsigned attachRemarks(LoopAnalysisSession &Session,
                       const LintCheckContext &Ctx,
                       std::vector<Diagnostic> &Diags, size_t FirstIdx,
                       const RemarkOptions &Opts = RemarkOptions());

} // namespace ardf

#endif // ARDF_LINT_REMARKS_H
