//===- lint/Render.cpp - Diagnostic renderers -----------------------------===//

#include "lint/Render.h"

#include "lint/Checks.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>

using namespace ardf;

namespace {

/// "i/j" + {1, 0} -> "i=1, j=0"; a NoDistance level prints "?".
std::string levelDistanceList(const Diagnostic &D) {
  std::vector<std::string> Names;
  std::string Segment;
  std::istringstream Path(D.NestPath);
  while (std::getline(Path, Segment, '/'))
    Names.push_back(Segment);
  std::string Out;
  for (size_t I = 0; I != D.Levels.size(); ++I) {
    if (I)
      Out += ", ";
    Out += I < Names.size() ? Names[I] : "?";
    Out += '=';
    Out += D.Levels[I] == Diagnostic::NoDistance
               ? "?"
               : std::to_string(D.Levels[I]);
  }
  return Out;
}

} // namespace

std::string SourceMap::line(const std::string &File, unsigned Line) const {
  const std::string *Text = textOf(File);
  if (!Text || Line == 0)
    return std::string();
  size_t Begin = 0;
  for (unsigned N = 1; N < Line; ++N) {
    Begin = Text->find('\n', Begin);
    if (Begin == std::string::npos)
      return std::string();
    ++Begin;
  }
  size_t End = Text->find('\n', Begin);
  return Text->substr(Begin, End == std::string::npos ? End : End - Begin);
}

//===----------------------------------------------------------------------===//
// Human text
//===----------------------------------------------------------------------===//

void ardf::renderText(std::ostream &OS, const std::vector<Diagnostic> &Diags,
                      const SourceMap &Sources) {
  for (const Diagnostic &D : Diags) {
    OS << D.File << ':' << D.Loc.toString() << ": " << severityName(D.Severity)
       << ": [" << D.CheckId << "] " << D.Message << '\n';
    if (D.Loc.isValid()) {
      std::string Snippet = Sources.line(D.File, D.Loc.Line);
      if (!Snippet.empty()) {
        OS << "    " << Snippet << '\n';
        OS << "    " << std::string(D.Loc.Col > 0 ? D.Loc.Col - 1 : 0, ' ')
           << "^\n";
      }
    }
    if (D.hasDistance())
      OS << "  distance: " << D.Distance
         << (D.Distance == 1 ? " iteration" : " iterations") << '\n';
    if (D.hasNest()) {
      OS << "  nest: " << D.NestPath;
      if (!D.Levels.empty())
        OS << " (level distances: " << levelDistanceList(D) << ')';
      OS << '\n';
    }
    for (const RelatedLoc &R : D.Related)
      OS << "  note: " << D.File << ':' << R.Loc.toString() << ": "
         << R.Message << '\n';
    if (D.hasEvidence()) {
      // The because-trail: the chronological derivation of the solution
      // cell behind the finding, each step caret-anchored to its source
      // line (steps without a position, e.g. the final settling summary,
      // print without a snippet).
      OS << "  because:\n";
      for (size_t E = 0; E != D.Evidence.size(); ++E) {
        const RelatedLoc &Step = D.Evidence[E];
        OS << "    [" << E + 1 << "] ";
        if (Step.Loc.isValid())
          OS << D.File << ':' << Step.Loc.toString() << ": ";
        OS << Step.Message << '\n';
        if (Step.Loc.isValid()) {
          std::string Snippet = Sources.line(D.File, Step.Loc.Line);
          if (!Snippet.empty()) {
            OS << "        " << Snippet << '\n';
            OS << "        "
               << std::string(Step.Loc.Col > 0 ? Step.Loc.Col - 1 : 0, ' ')
               << "^\n";
          }
        }
      }
    }
    if (!D.FixHint.empty())
      OS << "  fix: " << D.FixHint << '\n';
  }
}

//===----------------------------------------------------------------------===//
// JSON helpers
//===----------------------------------------------------------------------===//

std::string ardf::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON lines
//===----------------------------------------------------------------------===//

void ardf::renderJsonLines(std::ostream &OS,
                           const std::vector<Diagnostic> &Diags) {
  for (const Diagnostic &D : Diags) {
    OS << "{\"check\":\"" << jsonEscape(D.CheckId) << "\",\"severity\":\""
       << severityName(D.Severity) << "\",\"file\":\"" << jsonEscape(D.File)
       << "\",\"line\":" << D.Loc.Line << ",\"col\":" << D.Loc.Col
       << ",\"message\":\"" << jsonEscape(D.Message) << '"';
    if (D.hasDistance())
      OS << ",\"distance\":" << D.Distance;
    if (D.hasNest()) {
      OS << ",\"nest\":\"" << jsonEscape(D.NestPath) << '"';
      if (!D.Levels.empty()) {
        // NoDistance levels render as -1 (distance unknown there).
        OS << ",\"levels\":[";
        for (size_t L = 0; L != D.Levels.size(); ++L)
          OS << (L ? "," : "") << D.Levels[L];
        OS << ']';
      }
    }
    if (D.StmtId != 0)
      OS << ",\"stmtId\":" << D.StmtId;
    if (!D.FixHint.empty())
      OS << ",\"fix\":\"" << jsonEscape(D.FixHint) << '"';
    if (!D.Related.empty()) {
      OS << ",\"related\":[";
      for (size_t I = 0; I != D.Related.size(); ++I) {
        const RelatedLoc &R = D.Related[I];
        OS << (I ? "," : "") << "{\"line\":" << R.Loc.Line
           << ",\"col\":" << R.Loc.Col << ",\"message\":\""
           << jsonEscape(R.Message) << "\"}";
      }
      OS << ']';
    }
    if (D.hasEvidence()) {
      OS << ",\"evidence\":[";
      for (size_t I = 0; I != D.Evidence.size(); ++I) {
        const RelatedLoc &E = D.Evidence[I];
        OS << (I ? "," : "") << "{\"line\":" << E.Loc.Line
           << ",\"col\":" << E.Loc.Col << ",\"message\":\""
           << jsonEscape(E.Message) << "\"}";
      }
      OS << ']';
      // The derivation DAG is already one compact JSON object; embed it
      // verbatim rather than re-escaping it as a string.
      if (!D.DerivationJson.empty())
        OS << ",\"derivation\":" << D.DerivationJson;
    }
    OS << "}\n";
  }
}

//===----------------------------------------------------------------------===//
// SARIF 2.1.0
//===----------------------------------------------------------------------===//

namespace {

const char *ruleDescription(const std::string &Id) {
  for (const CheckInfo &R : allChecks())
    if (Id == R.Id)
      return R.Description;
  return "";
}

} // namespace

const std::vector<CheckInfo> &ardf::allChecks() {
  static const std::vector<CheckInfo> Checks = {
      {checkid::RedundantLoad, "warning",
       "A use re-reads a value the loop already produced; the "
       "delta-available-values framework instance proves the reuse at a "
       "constant iteration distance."},
      {checkid::DeadStore, "warning",
       "A store is overwritten before any read; the delta-busy-stores "
       "framework instance proves the overwrite at a constant iteration "
       "distance."},
      {checkid::LoopCarriedReuse, "note",
       "A must-reaching definition feeds a use a constant number of "
       "iterations later; a register pipelining candidate."},
      {checkid::CrossIterationConflict, "note",
       "A may-reaching reference pair carries a dependence across "
       "iterations, constraining parallel execution."},
      {checkid::Precondition, "warning",
       "The program violates or weakens an analysis precondition of the "
       "array reference data flow framework."},
      {checkid::ParseError, "error", "The source could not be parsed."},
      {checkid::AnalysisDegraded, "warning",
       "A check's backing solve was cut short by a resource budget or an "
       "injected fault; the check was skipped rather than reporting "
       "findings from the conservative fill."},
      {checkid::AnalysisUnsupported, "warning",
       "A loop falls outside the analyzable subset (early exit, "
       "unrecognized while shape, or rewritten induction variable) and "
       "was skipped with the reason recorded."},
      {checkid::EngineDivergence, "error",
       "The reference and packed kernel solver engines disagree on a "
       "solution; internal consistency failure in ardf itself."},
  };
  return Checks;
}

void ardf::renderSarif(std::ostream &OS,
                       const std::vector<Diagnostic> &Diags) {
  // Rule table: every check id that fired, in sorted order.
  std::set<std::string> Fired;
  for (const Diagnostic &D : Diags)
    Fired.insert(D.CheckId);

  OS << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"ardf-lint\",\n"
     << "          \"informationUri\": "
        "\"https://doi.org/10.1145/155090.155096\",\n"
     << "          \"rules\": [\n";
  size_t RuleIdx = 0;
  for (const std::string &Id : Fired) {
    OS << "            {\n"
       << "              \"id\": \"" << jsonEscape(Id) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << jsonEscape(ruleDescription(Id)) << "\" }\n"
       << "            }" << (++RuleIdx != Fired.size() ? "," : "") << '\n';
  }
  OS << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (size_t I = 0; I != Diags.size(); ++I) {
    const Diagnostic &D = Diags[I];
    OS << "        {\n"
       << "          \"ruleId\": \"" << jsonEscape(D.CheckId) << "\",\n"
       << "          \"level\": \"" << severityName(D.Severity) << "\",\n"
       << "          \"message\": { \"text\": \"" << jsonEscape(D.Message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << jsonEscape(D.File) << "\" },\n"
       << "                \"region\": { \"startLine\": " << D.Loc.Line
       << ", \"startColumn\": " << D.Loc.Col << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]";
    if (!D.Related.empty()) {
      OS << ",\n          \"relatedLocations\": [\n";
      for (size_t R = 0; R != D.Related.size(); ++R) {
        const RelatedLoc &Rel = D.Related[R];
        OS << "            {\n"
           << "              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": { \"uri\": \""
           << jsonEscape(D.File) << "\" },\n"
           << "                \"region\": { \"startLine\": " << Rel.Loc.Line
           << ", \"startColumn\": " << Rel.Loc.Col << " }\n"
           << "              },\n"
           << "              \"message\": { \"text\": \""
           << jsonEscape(Rel.Message) << "\" }\n"
           << "            }" << (R + 1 != D.Related.size() ? "," : "")
           << '\n';
      }
      OS << "          ]";
    }
    if (D.hasEvidence()) {
      // The derivation trail as a SARIF code flow: one threadFlow whose
      // locations walk the solution cell's derivation chronologically.
      // Steps without a source position anchor at the result's own
      // location (SARIF requires a physicalLocation per step).
      OS << ",\n          \"codeFlows\": [\n"
         << "            {\n"
         << "              \"threadFlows\": [\n"
         << "                {\n"
         << "                  \"locations\": [\n";
      for (size_t E = 0; E != D.Evidence.size(); ++E) {
        const RelatedLoc &Step = D.Evidence[E];
        const SourceLoc &L = Step.Loc.isValid() ? Step.Loc : D.Loc;
        OS << "                    {\n"
           << "                      \"location\": {\n"
           << "                        \"physicalLocation\": {\n"
           << "                          \"artifactLocation\": { \"uri\": \""
           << jsonEscape(D.File) << "\" },\n"
           << "                          \"region\": { \"startLine\": "
           << L.Line << ", \"startColumn\": " << L.Col << " }\n"
           << "                        },\n"
           << "                        \"message\": { \"text\": \""
           << jsonEscape(Step.Message) << "\" }\n"
           << "                      }\n"
           << "                    }"
           << (E + 1 != D.Evidence.size() ? "," : "") << '\n';
      }
      OS << "                  ]\n"
         << "                }\n"
         << "              ]\n"
         << "            }\n"
         << "          ]";
    }
    bool HasProps = D.hasDistance() || !D.FixHint.empty() || D.StmtId != 0 ||
                    D.hasNest() ||
                    (D.hasEvidence() && !D.DerivationJson.empty());
    if (HasProps) {
      OS << ",\n          \"properties\": { ";
      bool First = true;
      if (D.hasDistance()) {
        OS << "\"iterationDistance\": " << D.Distance;
        First = false;
      }
      if (D.hasNest()) {
        OS << (First ? "" : ", ") << "\"nestPath\": \""
           << jsonEscape(D.NestPath) << '"';
        if (!D.Levels.empty()) {
          OS << ", \"levelDistances\": [";
          for (size_t L = 0; L != D.Levels.size(); ++L)
            OS << (L ? ", " : "") << D.Levels[L];
          OS << ']';
        }
        First = false;
      }
      if (D.StmtId != 0) {
        OS << (First ? "" : ", ") << "\"stmtId\": " << D.StmtId;
        First = false;
      }
      if (!D.FixHint.empty()) {
        OS << (First ? "" : ", ") << "\"fix\": \"" << jsonEscape(D.FixHint)
           << '"';
        First = false;
      }
      if (D.hasEvidence() && !D.DerivationJson.empty())
        OS << (First ? "" : ", ") << "\"derivation\": " << D.DerivationJson;
      OS << " }";
    }
    OS << "\n        }" << (I + 1 != Diags.size() ? "," : "") << '\n';
  }
  OS << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
}
