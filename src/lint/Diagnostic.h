//===- lint/Diagnostic.h - Structured lint diagnostics ---------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured diagnostic record every ardf-lint check emits: a check
/// id, severity, source anchor, iteration-distance evidence, an optional
/// fix hint, and related source positions. One record carries everything
/// the three renderers (human text, JSON lines, SARIF 2.1.0) need, so a
/// check never formats output itself.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_LINT_DIAGNOSTIC_H
#define ARDF_LINT_DIAGNOSTIC_H

#include "ir/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ardf {

/// Severity of a lint diagnostic; maps 1:1 onto SARIF levels.
enum class DiagSeverity {
  Error,   ///< Precondition violations and internal-consistency failures.
  Warning, ///< Actionable inefficiencies (redundant loads, dead stores).
  Note     ///< Opportunities and informational facts (reuse, conflicts).
};

/// SARIF-compatible lowercase name ("error", "warning", "note").
const char *severityName(DiagSeverity S);

/// A secondary source position attached to a diagnostic (e.g. the site
/// that generated the reused value).
struct RelatedLoc {
  SourceLoc Loc;
  std::string Message;
};

/// One lint finding.
struct Diagnostic {
  /// Sentinel for "no iteration-distance evidence".
  static constexpr int64_t NoDistance = -1;

  /// Stable rule identifier: "redundant-load", "dead-store",
  /// "loop-carried-reuse", "cross-iteration-conflict", "precondition",
  /// "parse-error", or "engine-divergence".
  std::string CheckId;

  DiagSeverity Severity = DiagSeverity::Warning;

  /// Artifact the diagnostic anchors in (as given to the engine; used
  /// verbatim as the SARIF artifact URI).
  std::string File;

  /// Primary source position (invalid when the program was built
  /// programmatically and carries no locations).
  SourceLoc Loc;

  /// Human-readable statement of the finding (no location prefix).
  std::string Message;

  /// Suggested remediation; empty when the check has none.
  std::string FixHint;

  /// Iteration-distance evidence (the delta of the underlying framework
  /// fact); NoDistance when not applicable.
  int64_t Distance = NoDistance;

  /// Slash-joined induction variables from the outermost loop of the
  /// nest down to the diagnosed loop ("i/j"). Empty for top-level loops
  /// and non-loop diagnostics, so single-loop output is unchanged.
  std::string NestPath;

  /// Per-nest-level iteration distances of the same underlying fact,
  /// outermost level first, innermost (== Distance) last; aligned with
  /// the segments of NestPath. A level where the fact does not hold (or
  /// whose with-respect-to solve degraded) carries NoDistance. Empty
  /// when the loop has no analyzed ancestors.
  std::vector<int64_t> Levels;

  /// Pre-order statement id for precondition findings (0 = none).
  unsigned StmtId = 0;

  /// Secondary positions (e.g. the generating reference).
  std::vector<RelatedLoc> Related;

  /// Explain key (lint/Remarks.h): the backing problem whose solution
  /// cell this finding was derived from, plus the occurrence pair.
  /// Empty problem name = not explainable. Checks stamp the key
  /// unconditionally (it is three cheap fields); the remarks pass only
  /// runs under --explain.
  std::string EvidenceProblem;
  unsigned EvidenceSourceId = 0;
  unsigned EvidenceSinkId = 0;

  /// Chronological derivation evidence attached by the remarks pass
  /// (--explain): the because-trail of the text renderer, the
  /// codeFlow of the SARIF renderer. Empty without --explain.
  std::vector<RelatedLoc> Evidence;

  /// The full derivation DAG as one compact JSON object (embedded
  /// verbatim by the JSON and SARIF renderers). Empty without
  /// --explain.
  std::string DerivationJson;

  bool hasDistance() const { return Distance != NoDistance; }
  bool hasNest() const { return !NestPath.empty(); }
  bool isError() const { return Severity == DiagSeverity::Error; }
  bool hasEvidence() const { return !Evidence.empty(); }
};

/// Stable presentation order: by file, then source position, then check
/// id, then message (ties broken textually so golden files are
/// deterministic).
void sortDiagnostics(std::vector<Diagnostic> &Diags);

} // namespace ardf

#endif // ARDF_LINT_DIAGNOSTIC_H
