//===- lint/LintEngine.cpp - Whole-program diagnostics engine -------------===//

#include "lint/LintEngine.h"

#include "analysis/LoopAnalysisSession.h"
#include "analysis/LoopNest.h"
#include "frontend/Parser.h"
#include "lint/Checks.h"
#include "lint/Remarks.h"
#include "passes/Validate.h"
#include "support/FailPoint.h"
#include "telemetry/Telemetry.h"

#include <memory>
#include <unordered_set>

using namespace ardf;

namespace {

DiagSeverity severityOf(IssueSeverity S) {
  return S == IssueSeverity::Error ? DiagSeverity::Error
                                   : DiagSeverity::Warning;
}

} // namespace

LintResult ardf::lintProgram(const Program &P, const std::string &File,
                             const LintOptions &Opts) {
  LintResult Result;

  // Phase 1: precondition diagnostics from the Validate pass. Statements
  // carrying an error-severity issue poison their enclosing loop: its
  // analysis results would be wrong, so the framework checks skip it.
  std::unordered_set<const Stmt *> Poisoned;
  {
    telem::Span Validate("validate", "lint");
    for (const ValidationIssue &I : validateForAnalysis(P)) {
      if (I.Severity == IssueSeverity::Error)
        Poisoned.insert(I.Offending);
      Diagnostic D;
      D.CheckId = checkid::Precondition;
      D.Severity = severityOf(I.Severity);
      D.File = File;
      D.Loc = I.Loc;
      D.Message = I.Message;
      D.StmtId = I.StmtId;
      Result.Diags.push_back(std::move(D));
    }
  }

  // Phase 2: framework-backed checks over the loop-nesting tree, one
  // shared session per supported loop (its reduced form, so while loops
  // and non-normalized bounds are analyzed too). Rejected loops get an
  // explicit analysis-unsupported diagnostic instead of silence.
  LoopNestTree Nest(P);
  LintCheckContext Ctx;
  Ctx.File = File;
  Ctx.Solver.Eng = Opts.Engine;
  Ctx.Solver.Budget = Opts.Budget;
  for (const std::unique_ptr<NestLoop> &NodePtr : Nest.all()) {
    const NestLoop &N = *NodePtr;
    if (N.Depth > 0 && !Opts.IncludeNested)
      continue;
    // Precondition errors already explain why the loop cannot be
    // analyzed; skip it without piling an analysis-unsupported
    // diagnostic on top.
    bool Skip = false;
    forEachStmt(*N.Source,
                [&](const Stmt &S) { Skip |= Poisoned.count(&S) > 0; });
    if (Skip)
      continue;
    if (!N.isSupported()) {
      Diagnostic D;
      D.CheckId = checkid::AnalysisUnsupported;
      D.Severity = DiagSeverity::Warning;
      D.File = File;
      D.Loc = N.loc();
      D.NestPath = N.Depth > 0 ? N.path() : "";
      D.Message = std::string("analysis unsupported: the ") +
                  (N.isWhile() ? "while" : "do") + " loop at nest path '" +
                  N.path() + "' was not analyzed: " + N.UnsupportedReason;
      D.FixHint = "rewrite the loop as a counted form the framework "
                  "supports (see the analyzability preconditions)";
      Result.Diags.push_back(std::move(D));
      continue;
    }
    const DoLoopStmt *Loop = N.Analyzed;
    telem::Span LoopSpan("lint-loop", "lint");
    LoopAnalysisSession Session(P, *Loop);

    // One extra session per enclosing level, analyzing the same reduced
    // loop with respect to that level's induction variable (the
    // hierarchical seam of Section 3.6); the checks read one iteration
    // distance per level from these.
    std::vector<std::unique_ptr<LoopAnalysisSession>> LevelSessions;
    Ctx.NestPath = N.Depth > 0 ? N.path() : "";
    Ctx.Ancestors.clear();
    for (const NestLoop *A : N.ancestors()) {
      NestLevel Level;
      if (A->isSupported()) {
        Level.Iv = A->iv();
        LevelSessions.push_back(std::make_unique<LoopAnalysisSession>(
            P, *Loop, A->iv(), A->tripCount()));
        Level.Session = LevelSessions.back().get();
      } else {
        Level.Iv = "?";
      }
      Ctx.Ancestors.push_back(std::move(Level));
    }
    // Per-check fault boundary: an exception out of one check (e.g. an
    // armed lint.check failpoint, or a throwing solve) becomes an
    // analysis-degraded diagnostic for that check only; the loop's
    // remaining checks still run.
    auto RunCheck = [&](const char *Name, auto &&Fn) {
      telem::Span S("check", "lint", Name);
      telem::LatencyTimer LT(telem::Histo::CheckNs);
      telem::count(telem::Counter::LintChecks);
      try {
        failpoint::evaluate("lint.check");
        Fn();
      } catch (const std::exception &E) {
        Diagnostic D;
        D.CheckId = checkid::AnalysisDegraded;
        D.Severity = DiagSeverity::Warning;
        D.File = File;
        D.Loc = Loop->getLoc();
        D.Message = std::string("analysis degraded: check '") + Name +
                    "' aborted for the loop over '" + Loop->getIndVar() +
                    "': " + E.what();
        Result.Diags.push_back(std::move(D));
      }
    };
    size_t FirstDiag = Result.Diags.size();
    RunCheck("redundant-load",
             [&] { checkRedundantLoad(Session, Ctx, Result.Diags); });
    RunCheck("dead-store", [&] { checkDeadStore(Session, Ctx, Result.Diags); });
    RunCheck("loop-carried-reuse",
             [&] { checkLoopCarriedReuse(Session, Ctx, Result.Diags); });
    RunCheck("cross-iteration-conflict",
             [&] { checkCrossIterationConflict(Session, Ctx, Result.Diags); });
    if (Opts.CrossCheck)
      RunCheck("engine-cross-check", [&] {
        Result.EngineDivergences +=
            checkEngineDivergence(Session, Ctx, Result.Diags);
        telem::count(telem::Counter::LintCrossChecks);
      });
    // Explain runs inside the same fault boundary as the checks: a
    // throwing provenance re-solve degrades this loop's remarks, never
    // the lint run.
    if (Opts.Explain)
      RunCheck("explain", [&] {
        RemarkOptions RO;
        RO.CheckFilter = Opts.ExplainCheck;
        attachRemarks(Session, Ctx, Result.Diags, FirstDiag, RO);
      });
    ++Result.LoopsAnalyzed;
    telem::count(telem::Counter::LintLoops);
  }

  for (const Diagnostic &D : Result.Diags)
    if (D.CheckId == checkid::AnalysisDegraded)
      ++Result.ChecksDegraded;
  telem::count(telem::Counter::LintDiagnostics, Result.Diags.size());
  sortDiagnostics(Result.Diags);
  return Result;
}

LintResult ardf::lintSource(const std::string &Source,
                            const std::string &File,
                            const LintOptions &Opts) {
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded()) {
    LintResult Result;
    for (const ParseDiagnostic &PD : Parsed.Diags) {
      Diagnostic D;
      D.CheckId = checkid::ParseError;
      D.Severity = DiagSeverity::Error;
      D.File = File;
      D.Loc = SourceLoc(PD.Line, PD.Col);
      D.Message = PD.Message;
      Result.Diags.push_back(std::move(D));
    }
    sortDiagnostics(Result.Diags);
    return Result;
  }
  return lintProgram(Parsed.Prog, File, Opts);
}
