//===- lint/Render.h - Diagnostic renderers --------------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three output formats of ardf-lint over one shared Diagnostic
/// list:
///
///   * renderText: human-readable "file:line:col: severity: message"
///     lines with source snippets and caret markers,
///   * renderJsonLines: one self-contained JSON object per diagnostic
///     (grep/jq-friendly),
///   * renderSarif: a SARIF 2.1.0 log for CI annotation, one run with
///     a rule table covering every check id that fired.
///
/// Renderers are pure: they read diagnostics (and, for snippets, the
/// SourceMap) and write a stream; they never reorder or filter.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_LINT_RENDER_H
#define ARDF_LINT_RENDER_H

#include "lint/Diagnostic.h"

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace ardf {

/// Maps artifact names (Diagnostic::File) to their source text, so the
/// text renderer can print the offending line under each diagnostic.
class SourceMap {
public:
  void add(std::string File, std::string Text) {
    Texts[std::move(File)] = std::move(Text);
  }

  /// The text of \p File, or null when unknown (snippets are skipped).
  const std::string *textOf(const std::string &File) const {
    auto It = Texts.find(File);
    return It == Texts.end() ? nullptr : &It->second;
  }

  /// Line \p Line (1-based) of \p File, without the newline; empty when
  /// the file or line is unknown.
  std::string line(const std::string &File, unsigned Line) const;

private:
  std::map<std::string, std::string> Texts;
};

/// Human text with source snippets and caret markers.
void renderText(std::ostream &OS, const std::vector<Diagnostic> &Diags,
                const SourceMap &Sources);

/// One JSON object per line, one line per diagnostic.
void renderJsonLines(std::ostream &OS, const std::vector<Diagnostic> &Diags);

/// A complete SARIF 2.1.0 log (static analysis results interchange
/// format) with one run.
void renderSarif(std::ostream &OS, const std::vector<Diagnostic> &Diags);

/// Escapes \p S for embedding in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// Static metadata of one lint check (rule), shared by the SARIF rule
/// table and `ardf-lint --list-checks`.
struct CheckInfo {
  const char *Id;

  /// Typical severity of the check's findings ("error", "warning",
  /// "note"); precondition findings can be either error or warning.
  const char *Severity;

  const char *Description;
};

/// Every check id ardf-lint can emit, in presentation order.
const std::vector<CheckInfo> &allChecks();

} // namespace ardf

#endif // ARDF_LINT_RENDER_H
