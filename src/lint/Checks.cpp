//===- lint/Checks.cpp - Framework-backed lint checks ---------------------===//

#include "lint/Checks.h"

#include "analysis/Dependence.h"
#include "analysis/LoopDataFlow.h"
#include "ir/PrettyPrinter.h"

#include <algorithm>
#include <map>
#include <tuple>

using namespace ardf;

namespace {

/// Per-nest-level distances for the reuse-pair checks: queries each
/// ancestor's with-respect-to session once, then answers
/// (SourceId, SinkId) lookups while diagnostics are built. Occurrence
/// ids are stable across the sessions because every level analyzes the
/// same reduced loop (only the framework's iteration space changes).
class LevelDistances {
public:
  LevelDistances(const LintCheckContext &Ctx, const ProblemSpec &Spec,
                 RefSelector Sel) {
    for (const NestLevel &L : Ctx.Ancestors) {
      PerLevel.emplace_back();
      if (!L.Session ||
          L.Session->solve(Spec, Ctx.Solver).Outcome != SolveOutcome::Ok)
        continue; // unknown level: every lookup reports NoDistance
      for (const ReusePair &P : L.Session->reusePairs(Spec, Sel, Ctx.Solver))
        PerLevel.back().insert({{P.SourceId, P.SinkId}, P.Distance});
    }
  }

  /// Stamps the nest path and the per-level distance vector (outermost
  /// first, the pair's own distance innermost) onto \p D.
  void attach(Diagnostic &D, const LintCheckContext &Ctx,
              const ReusePair &Pair) const {
    D.NestPath = Ctx.NestPath;
    if (PerLevel.empty())
      return;
    for (const auto &Level : PerLevel) {
      auto It = Level.find({Pair.SourceId, Pair.SinkId});
      D.Levels.push_back(It == Level.end() ? Diagnostic::NoDistance
                                           : It->second);
    }
    D.Levels.push_back(Pair.Distance);
  }

private:
  std::vector<std::map<std::pair<unsigned, unsigned>, int64_t>> PerLevel;
};

/// LevelDistances' counterpart for the dependence-based conflict check,
/// keyed by (FromId, ToId, Kind).
class LevelDependences {
public:
  explicit LevelDependences(const LintCheckContext &Ctx) {
    for (const NestLevel &L : Ctx.Ancestors) {
      PerLevel.emplace_back();
      if (!L.Session ||
          L.Session->solve(ProblemSpec::reachingReferences(), Ctx.Solver)
                  .Outcome != SolveOutcome::Ok)
        continue;
      LoopDataFlow DF(*L.Session, ProblemSpec::reachingReferences(),
                      Ctx.Solver);
      for (const Dependence &AD : extractDependences(DF).Deps)
        PerLevel.back().insert(
            {{AD.FromId, AD.ToId, static_cast<int>(AD.Kind)}, AD.Distance});
    }
  }

  void attach(Diagnostic &D, const LintCheckContext &Ctx,
              const Dependence &Dep) const {
    D.NestPath = Ctx.NestPath;
    if (PerLevel.empty())
      return;
    for (const auto &Level : PerLevel) {
      auto It =
          Level.find({Dep.FromId, Dep.ToId, static_cast<int>(Dep.Kind)});
      D.Levels.push_back(It == Level.end() ? Diagnostic::NoDistance
                                           : It->second);
    }
    D.Levels.push_back(Dep.Distance);
  }

private:
  std::vector<std::map<std::tuple<unsigned, unsigned, int>, int64_t>>
      PerLevel;
};

std::string iterations(int64_t N) {
  return std::to_string(N) + (N == 1 ? " iteration" : " iterations");
}

/// Emits an analysis-degraded diagnostic for \p CheckName on the
/// session's loop.
void emitDegraded(LoopAnalysisSession &Session, const LintCheckContext &Ctx,
                  const char *CheckName, BreachReason Reason,
                  std::vector<Diagnostic> &Out) {
  Diagnostic D;
  D.CheckId = checkid::AnalysisDegraded;
  D.Severity = DiagSeverity::Warning;
  D.File = Ctx.File;
  D.Loc = Session.loop().getLoc();
  D.Message = std::string("analysis degraded: check '") + CheckName +
              "' skipped for the loop over '" + Session.loop().getIndVar() +
              "' (" + breachReasonName(Reason) +
              "); its backing solve returned the conservative answer";
  D.FixHint = "raise the solver budget (or investigate the injected "
              "fault) to restore this check";
  Out.push_back(std::move(D));
}

/// Degradation gate at the head of each check: solves the check's
/// problem (a session cache hit when the check proceeds) and, when the
/// result is degraded, reports that instead of deriving findings from
/// the conservative fill. Returns true when the check must be skipped.
bool gateDegraded(LoopAnalysisSession &Session, const LintCheckContext &Ctx,
                  const ProblemSpec &Spec, const char *CheckName,
                  std::vector<Diagnostic> &Out) {
  const SolveResult &R = Session.solve(Spec, Ctx.Solver);
  if (R.Outcome == SolveOutcome::Ok)
    return false;
  emitDegraded(Session, Ctx, CheckName, R.Breach, Out);
  return true;
}

/// Picks one reuse pair per sink: definitions are preferred as sources
/// (their value exists anyway), then the smallest distance. Pairs whose
/// endpoints sit inside summarized inner loops are dropped -- their
/// facts belong to the inner loop's own lint run.
std::vector<ReusePair> bestPairPerSink(const ReferenceUniverse &U,
                                       std::vector<ReusePair> Pairs) {
  Pairs.erase(std::remove_if(Pairs.begin(), Pairs.end(),
                             [&](const ReusePair &P) {
                               return U.occurrence(P.SinkId).InSummary ||
                                      U.occurrence(P.SourceId).InSummary;
                             }),
              Pairs.end());
  std::stable_sort(Pairs.begin(), Pairs.end(),
                   [&](const ReusePair &A, const ReusePair &B) {
                     if (A.SinkId != B.SinkId)
                       return A.SinkId < B.SinkId;
                     bool ADef = U.occurrence(A.SourceId).IsDef;
                     bool BDef = U.occurrence(B.SourceId).IsDef;
                     if (ADef != BDef)
                       return ADef;
                     return A.Distance < B.Distance;
                   });
  Pairs.erase(std::unique(Pairs.begin(), Pairs.end(),
                          [](const ReusePair &A, const ReusePair &B) {
                            return A.SinkId == B.SinkId;
                          }),
              Pairs.end());
  return Pairs;
}

} // namespace

std::vector<ProblemSpec> ardf::lintProblems() {
  return {ProblemSpec::availableValuesPerOccurrence(),
          ProblemSpec::busyStoresPerOccurrence(),
          ProblemSpec::mustReachingDefs(),
          ProblemSpec::reachingReferences()};
}

void ardf::checkRedundantLoad(LoopAnalysisSession &Session,
                              const LintCheckContext &Ctx,
                              std::vector<Diagnostic> &Out) {
  const ReferenceUniverse &U = Session.universe();
  if (gateDegraded(Session, Ctx, ProblemSpec::availableValuesPerOccurrence(),
                   checkid::RedundantLoad, Out))
    return;
  LevelDistances Levels(Ctx, ProblemSpec::availableValuesPerOccurrence(),
                        RefSelector::Uses);
  for (const ReusePair &Pair : bestPairPerSink(
           U, Session.reusePairs(ProblemSpec::availableValuesPerOccurrence(),
                                 RefSelector::Uses, Ctx.Solver))) {
    const RefOccurrence &Sink = U.occurrence(Pair.SinkId);
    const RefOccurrence &Source = U.occurrence(Pair.SourceId);
    std::string SinkText = exprToString(*Sink.Ref);
    std::string SourceText = exprToString(*Source.Ref);

    Diagnostic D;
    D.CheckId = checkid::RedundantLoad;
    D.Severity = DiagSeverity::Warning;
    D.File = Ctx.File;
    D.Loc = Sink.Ref->getLoc();
    D.Distance = Pair.Distance;
    if (Pair.Distance == 0) {
      D.Message = "redundant load: " + SinkText + " re-reads the value of " +
                  SourceText + " from earlier in the same iteration";
      D.FixHint = "reuse the scalar that already holds " + SourceText +
                  " instead of reloading from memory";
    } else {
      D.Message = "redundant load: " + SinkText + " re-reads the value " +
                  SourceText + " produced " + iterations(Pair.Distance) +
                  " earlier";
      D.FixHint = "keep the last " + std::to_string(Pair.Distance + 1) +
                  " value(s) of " + SourceText +
                  " in scalar temporaries (register pipeline of depth " +
                  std::to_string(Pair.Distance) + ")";
    }
    D.Related.push_back(
        RelatedLoc{Source.Ref->getLoc(), "value of " + SourceText +
                                             " is generated here"});
    D.EvidenceProblem = ProblemSpec::availableValuesPerOccurrence().Name;
    D.EvidenceSourceId = Pair.SourceId;
    D.EvidenceSinkId = Pair.SinkId;
    Levels.attach(D, Ctx, Pair);
    Out.push_back(std::move(D));
  }
}

void ardf::checkDeadStore(LoopAnalysisSession &Session,
                          const LintCheckContext &Ctx,
                          std::vector<Diagnostic> &Out) {
  const ReferenceUniverse &U = Session.universe();
  if (gateDegraded(Session, Ctx, ProblemSpec::busyStoresPerOccurrence(),
                   checkid::DeadStore, Out))
    return;
  LevelDistances Levels(Ctx, ProblemSpec::busyStoresPerOccurrence(),
                        RefSelector::Defs);
  for (const ReusePair &Pair : bestPairPerSink(
           U, Session.reusePairs(ProblemSpec::busyStoresPerOccurrence(),
                                 RefSelector::Defs, Ctx.Solver))) {
    const RefOccurrence &Sink = U.occurrence(Pair.SinkId);
    const RefOccurrence &Source = U.occurrence(Pair.SourceId);
    std::string SinkText = exprToString(*Sink.Ref);
    std::string SourceText = exprToString(*Source.Ref);

    Diagnostic D;
    D.CheckId = checkid::DeadStore;
    D.Severity = DiagSeverity::Warning;
    D.File = Ctx.File;
    D.Loc = Sink.Ref->getLoc();
    D.Distance = Pair.Distance;
    D.Message = "dead store: " + SinkText + " is overwritten by " +
                SourceText + " " +
                (Pair.Distance == 0 ? std::string("later in the same "
                                                  "iteration")
                                    : iterations(Pair.Distance) + " later") +
                " without an intervening read";
    D.FixHint = Pair.Distance == 0
                    ? "remove the store; its value is never observed"
                    : "remove the store from the loop and unpeel the final " +
                          iterations(Pair.Distance) + " into an epilogue";
    D.Related.push_back(RelatedLoc{Source.Ref->getLoc(),
                                   SourceText + " overwrites the element "
                                                "here"});
    D.EvidenceProblem = ProblemSpec::busyStoresPerOccurrence().Name;
    D.EvidenceSourceId = Pair.SourceId;
    D.EvidenceSinkId = Pair.SinkId;
    Levels.attach(D, Ctx, Pair);
    Out.push_back(std::move(D));
  }
}

void ardf::checkLoopCarriedReuse(LoopAnalysisSession &Session,
                                 const LintCheckContext &Ctx,
                                 std::vector<Diagnostic> &Out) {
  const ReferenceUniverse &U = Session.universe();
  if (gateDegraded(Session, Ctx, ProblemSpec::mustReachingDefs(),
                   checkid::LoopCarriedReuse, Out))
    return;
  LevelDistances Levels(Ctx, ProblemSpec::mustReachingDefs(),
                        RefSelector::Uses);
  std::vector<ReusePair> Pairs = Session.reusePairs(
      ProblemSpec::mustReachingDefs(), RefSelector::Uses, Ctx.Solver);
  // Same-iteration forwarding is redundant-load territory; this check
  // reports the loop-carried pipelining candidates only.
  Pairs.erase(std::remove_if(Pairs.begin(), Pairs.end(),
                             [](const ReusePair &P) {
                               return P.Distance < 1;
                             }),
              Pairs.end());
  for (const ReusePair &Pair : bestPairPerSink(U, std::move(Pairs))) {
    const RefOccurrence &Sink = U.occurrence(Pair.SinkId);
    const RefOccurrence &Source = U.occurrence(Pair.SourceId);
    std::string SinkText = exprToString(*Sink.Ref);
    std::string SourceText = exprToString(*Source.Ref);
    int64_t Registers = Pair.Distance + 1;

    Diagnostic D;
    D.CheckId = checkid::LoopCarriedReuse;
    D.Severity = DiagSeverity::Note;
    D.File = Ctx.File;
    D.Loc = Sink.Ref->getLoc();
    D.Distance = Pair.Distance;
    D.Message = "loop-carried reuse: " + SinkText +
                " always reads the value stored by " + SourceText + " " +
                iterations(Pair.Distance) +
                " earlier; register pipelining candidate (distance " +
                std::to_string(Pair.Distance) + ", " +
                std::to_string(Registers) + " register(s), saves one load "
                                            "per iteration)";
    D.FixHint = "carry the value in " + std::to_string(Registers) +
                " rotating scalar register(s) to eliminate the load of " +
                SinkText;
    D.Related.push_back(RelatedLoc{Source.Ref->getLoc(),
                                   "pipelined value is stored here by " +
                                       SourceText});
    D.EvidenceProblem = ProblemSpec::mustReachingDefs().Name;
    D.EvidenceSourceId = Pair.SourceId;
    D.EvidenceSinkId = Pair.SinkId;
    Levels.attach(D, Ctx, Pair);
    Out.push_back(std::move(D));
  }
}

void ardf::checkCrossIterationConflict(LoopAnalysisSession &Session,
                                       const LintCheckContext &Ctx,
                                       std::vector<Diagnostic> &Out) {
  if (gateDegraded(Session, Ctx, ProblemSpec::reachingReferences(),
                   checkid::CrossIterationConflict, Out))
    return;
  LevelDependences Levels(Ctx);
  LoopDataFlow DF(Session, ProblemSpec::reachingReferences(), Ctx.Solver);
  const ReferenceUniverse &U = Session.universe();
  for (const Dependence &Dep : extractDependences(DF).Deps) {
    if (!Dep.isLoopCarried())
      continue;
    const RefOccurrence &From = U.occurrence(Dep.FromId);
    const RefOccurrence &To = U.occurrence(Dep.ToId);
    if (From.InSummary || To.InSummary)
      continue;
    const char *Shape = Dep.Kind == DepKind::Output ? "write/write"
                        : Dep.Kind == DepKind::Flow ? "write/read"
                                                    : "read/write";
    std::string FromText = exprToString(*From.Ref);
    std::string ToText = exprToString(*To.Ref);

    Diagnostic D;
    D.CheckId = checkid::CrossIterationConflict;
    D.Severity = DiagSeverity::Note;
    D.File = Ctx.File;
    D.Loc = To.Ref->getLoc();
    D.Distance = Dep.Distance;
    D.Message = std::string("cross-iteration ") + Shape + " conflict: " +
                depKindName(Dep.Kind) + " dependence " + FromText + " -> " +
                ToText + " at distance " + std::to_string(Dep.Distance) +
                " blocks unordered parallel execution of iterations";
    D.FixHint = "iterations closer than " + iterations(Dep.Distance) +
                " apart are dependence-free; unroll or block by at most " +
                std::to_string(Dep.Distance) + " for safe overlap";
    D.Related.push_back(
        RelatedLoc{From.Ref->getLoc(), FromText + " conflicts from here"});
    D.EvidenceProblem = ProblemSpec::reachingReferences().Name;
    D.EvidenceSourceId = Dep.FromId;
    D.EvidenceSinkId = Dep.ToId;
    Levels.attach(D, Ctx, Dep);
    Out.push_back(std::move(D));
  }
}

unsigned ardf::checkEngineDivergence(LoopAnalysisSession &Session,
                                     const LintCheckContext &Ctx,
                                     std::vector<Diagnostic> &Out) {
  unsigned Divergences = 0;
  for (const ProblemSpec &Spec : lintProblems()) {
    SolverOptions Ref = Ctx.Solver;
    Ref.Eng = SolverOptions::Engine::Reference;
    SolverOptions Packed = Ctx.Solver;
    Packed.Eng = SolverOptions::Engine::PackedKernel;
    const SolveResult &A = Session.solve(Spec, Ref);
    const SolveResult &B = Session.solve(Spec, Packed);
    // A degraded solve is a budget/fault artifact, not an engine
    // divergence (an ordinal-armed failpoint can even degrade one
    // engine's solve and not the other's); report it as degraded and
    // skip the comparison.
    if (A.Outcome != SolveOutcome::Ok || B.Outcome != SolveOutcome::Ok) {
      emitDegraded(Session, Ctx, "engine-cross-check",
                   A.Outcome != SolveOutcome::Ok ? A.Breach : B.Breach,
                   Out);
      continue;
    }
    if (A.In == B.In && A.Out == B.Out)
      continue;
    ++Divergences;
    Diagnostic D;
    D.CheckId = checkid::EngineDivergence;
    D.Severity = DiagSeverity::Error;
    D.File = Ctx.File;
    D.Loc = Session.loop().getLoc();
    D.Message = std::string("internal consistency: reference and packed "
                            "kernel solvers diverge on problem '") +
                Spec.Name + "' for the loop over '" +
                Session.loop().getIndVar() + "'";
    D.FixHint = "this is an ardf bug, not a program issue; please report "
                "it with the input program";
    Out.push_back(std::move(D));
  }
  return Divergences;
}
