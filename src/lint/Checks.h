//===- lint/Checks.h - Framework-backed lint checks ------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-loop lint checks, each a single O(N)-pass framework instance
/// drawn from the loop's shared LoopAnalysisSession (so four checks on
/// one loop build the flow graph and reference universe exactly once,
/// and any instance two checks share is solved once):
///
///   * redundant-load: a use covered by a delta-available value re-reads
///     a value the loop already holds (Section 4.2.2).
///   * dead-store: a definition that is delta-busy -- overwritten delta
///     iterations later without an intervening read (Section 4.2.1).
///   * loop-carried-reuse: a must-reaching definition feeds a use delta
///     iterations later; a register pipelining candidate (Section 4.1).
///   * cross-iteration-conflict: may-reaching write/write and write/read
///     pairs whose carried dependence blocks naive parallelization
///     (Section 4.3).
///
/// checkEngineDivergence is the permanent static oracle for the packed
/// kernel solver: it solves every problem the checks used under BOTH
/// engines and reports any difference as an internal-consistency error.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_LINT_CHECKS_H
#define ARDF_LINT_CHECKS_H

#include "analysis/LoopAnalysisSession.h"
#include "lint/Diagnostic.h"

#include <string>
#include <vector>

namespace ardf {

/// Stable check identifiers (the SARIF rule ids).
namespace checkid {
inline constexpr const char RedundantLoad[] = "redundant-load";
inline constexpr const char DeadStore[] = "dead-store";
inline constexpr const char LoopCarriedReuse[] = "loop-carried-reuse";
inline constexpr const char CrossIterationConflict[] =
    "cross-iteration-conflict";
inline constexpr const char Precondition[] = "precondition";
inline constexpr const char ParseError[] = "parse-error";
inline constexpr const char EngineDivergence[] = "engine-divergence";
inline constexpr const char AnalysisDegraded[] = "analysis-degraded";
inline constexpr const char AnalysisUnsupported[] = "analysis-unsupported";
} // namespace checkid

/// One enclosing nest level of the loop under check: the level's
/// induction variable plus a session over the *same* reduced loop
/// analyzed with respect to that variable (Section 3.6), from which the
/// checks read the level's iteration distance for each finding. A null
/// session marks a level whose distances are unknown (unsupported
/// ancestor).
struct NestLevel {
  std::string Iv;
  LoopAnalysisSession *Session = nullptr;
};

/// Shared inputs of one per-loop check run.
struct LintCheckContext {
  /// Artifact name stamped into every diagnostic.
  std::string File;

  /// Solver options of the primary engine (all checks solve with these).
  SolverOptions Solver;

  /// Slash-joined nest path of the loop under check ("i/j"); empty for
  /// top-level loops, which keeps their diagnostics byte-identical to
  /// the pre-nest output.
  std::string NestPath;

  /// Enclosing levels, outermost first (empty for top-level loops).
  /// Every diagnostic of a nested loop gains one distance per entry
  /// plus its own innermost distance.
  std::vector<NestLevel> Ancestors;
};

void checkRedundantLoad(LoopAnalysisSession &Session,
                        const LintCheckContext &Ctx,
                        std::vector<Diagnostic> &Out);

void checkDeadStore(LoopAnalysisSession &Session, const LintCheckContext &Ctx,
                    std::vector<Diagnostic> &Out);

void checkLoopCarriedReuse(LoopAnalysisSession &Session,
                           const LintCheckContext &Ctx,
                           std::vector<Diagnostic> &Out);

void checkCrossIterationConflict(LoopAnalysisSession &Session,
                                 const LintCheckContext &Ctx,
                                 std::vector<Diagnostic> &Out);

/// Cross-checks the Reference and PackedKernel engines on every problem
/// the checks above use. Returns the number of divergent problems (also
/// reported as engine-divergence error diagnostics).
unsigned checkEngineDivergence(LoopAnalysisSession &Session,
                               const LintCheckContext &Ctx,
                               std::vector<Diagnostic> &Out);

/// The problem specs the four checks draw from their session, in check
/// order (what checkEngineDivergence iterates).
std::vector<ProblemSpec> lintProblems();

} // namespace ardf

#endif // ARDF_LINT_CHECKS_H
