//===- telemetry/Telemetry.h - Counters, timers, trace spans ---*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry surface of the solver stack: monotonic wall/CPU clocks,
/// a fixed set of named atomic counters, and hierarchical trace spans
/// recorded through a pluggable TraceSink. Perfetto-style nesting comes
/// from time containment of spans on one thread id, so a Span is just an
/// RAII timer that files a TraceEvent when it dies.
///
/// The design contract is *true zero overhead when disabled*: no
/// Telemetry installed for the current thread means every instrumentation
/// site collapses to one thread-local load and a predictable branch --
/// no clock reads, no stores, and in particular no heap allocation (the
/// alloc-counting suite asserts the last point over the solver hot
/// paths). With a Telemetry installed but no sink attached, counters are
/// relaxed atomic adds and spans remain no-ops; only an attached sink
/// pays for clock reads and event buffering.
///
/// Instrumented code never receives a Telemetry parameter. It reads the
/// thread-local current() pointer, which a TelemetryScope installs for
/// the dynamic extent of a region:
///
/// \code
///   telem::Telemetry T;
///   telem::MemoryTraceSink Sink;
///   T.setSink(&Sink);
///   {
///     telem::TelemetryScope Scope(T);
///     runAnalysis();                       // spans + counters recorded
///   }
///   telem::writeChromeTrace(Out, Sink.events());   // Export.h
/// \endcode
///
/// Counters are thread-safe (relaxed atomics). Sinks are not: a sink is
/// owned by one thread at a time. Multi-threaded layers (the driver's
/// worker pool) give every worker its own Telemetry + MemoryTraceSink
/// and merge into the root at join, so the hot path stays lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_TELEMETRY_TELEMETRY_H
#define ARDF_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ardf {
namespace telem {

/// Monotonic wall clock, nanoseconds (std::chrono::steady_clock).
uint64_t wallNowNs();

/// Per-thread CPU clock, nanoseconds (CLOCK_THREAD_CPUTIME_ID where
/// available, std::clock otherwise).
uint64_t cpuNowNs();

/// Every counter the stack records, one slot per enumerator. The dotted
/// display names (counterName) group them by layer: solver.*, flow.*,
/// session.*, preserve.*, driver.*, lint.*.
enum class Counter : unsigned {
  /// Reference-engine solver executions.
  SolverRunsReference,
  /// Packed-kernel solver executions.
  SolverRunsPacked,
  /// Node visits summed over all solves.
  SolverNodeVisits,
  /// Iteration passes (initialization excluded).
  SolverPasses,
  /// Lattice meet applications.
  SolverMeetOps,
  /// Flow function applications.
  SolverApplyOps,
  /// Node visits of must-problem solves.
  MustNodeVisits,
  /// Paper bound: 3N summed over must solves.
  MustVisitBound,
  /// Node visits of may-problem solves.
  MayNodeVisits,
  /// Paper bound: 2N summed over may solves.
  MayVisitBound,
  /// Interleaved group sweeps (solveCompiledGroup executions).
  SolverGroupSweeps,
  /// CompiledFlowProgram lowerings.
  FlowCompiles,
  /// CompiledFlowGroup fusions (SoA multi-problem lowerings).
  FlowGroupCompiles,
  /// Packed matrix cells lowered.
  FlowCompiledCells,
  /// Wall nanoseconds spent lowering.
  FlowCompileNs,
  /// LoopAnalysisSessions constructed.
  SessionsBuilt,
  /// Session instance-cache hits.
  SessionInstanceHits,
  /// Session instance-cache misses (builds).
  SessionInstanceMisses,
  /// Session solution-cache hits.
  SessionSolutionHits,
  /// Session solution-cache misses (solves).
  SessionSolutionMisses,
  /// Session compiled-program cache hits.
  SessionCompiledHits,
  /// Session compiled-program cache misses.
  SessionCompiledMisses,
  /// Session compiled-group cache hits.
  SessionGroupHits,
  /// Session compiled-group cache misses.
  SessionGroupMisses,
  /// Preserve-constant cache hits.
  PreserveHits,
  /// Preserve-constant cache misses.
  PreserveMisses,
  /// Loops analyzed by ProgramAnalysisDriver.
  DriverLoops,
  /// Loops the lint engine ran checks on.
  LintLoops,
  /// Individual lint check executions.
  LintChecks,
  /// Diagnostics emitted by lint runs.
  LintDiagnostics,
  /// Engine cross-check comparisons.
  LintCrossChecks,
  /// Solver budget breaches (visits, deadline, or matrix cells).
  BudgetBreaches,
  /// Solves that returned a degraded (conservative-fill) result.
  DegradedSolves,
  /// Loops whose analysis failed inside the driver's fault boundary.
  LoopFailures,
  /// Armed failpoints that fired (support/FailPoint.h).
  FailpointHits,
  /// FlowSummary lowerings (transfer compositions run).
  SummaryLowerings,
  /// Summary applications (solves served without schedule passes).
  SummaryApplies,
  /// Session summary-cache hits (a memoized summary served a solve).
  SummaryCacheHits,
  /// Basic blocks created by CFG construction (cfg/Cfg.h).
  CfgBlocks,
  /// Natural loops discovered by back-edge detection.
  CfgLoops,
  /// Loop-nesting trees built (analysis/LoopNest.h).
  NestTrees,
  /// Nest loops reduced to the paper's normalized DO form.
  NestReduced,
  /// Nest loops the recognizer rejected (analysis-unsupported).
  NestUnsupported,
  /// Request lines received by the analysis server (serve/Server.h),
  /// including ones later shed or refused.
  ServeRequests,
  /// Requests answered with an ok response.
  ServeOk,
  /// Requests answered with a structured error response.
  ServeErrors,
  /// Requests shed with an overloaded response (queue full).
  ServeOverloads,
  /// Wedged requests the watchdog failed so the daemon kept serving.
  ServeWatchdogKills,
  /// Serve cache hits (a memoized response or warm entry was served).
  ServeCacheHits,
  /// Serve cache misses (the request was analyzed from scratch).
  ServeCacheMisses,
  /// Serve cache entries evicted by tenant quotas (LRU order).
  ServeCacheEvictions,
  /// Edited sources routed through ProgramAnalysisDriver::rerun.
  ServeReruns,
  /// Sentinel; not a counter.
  NumCounters
};

constexpr unsigned NumCounters = static_cast<unsigned>(Counter::NumCounters);

/// The dotted display name of \p C, e.g. "session.solution.hits".
const char *counterName(Counter C);

/// Every latency histogram the stack records. Latencies are wall-clock
/// nanoseconds bucketed by bit width (log2 buckets), so one histogram is
/// a fixed array of atomic counts -- no allocation, no locks.
enum class Histo : unsigned {
  /// One data-flow solve, any engine (reference, kernel, SIMD, summary).
  SolveNs,
  /// One lint check over one loop (including its solves).
  CheckNs,
  /// One driver loop analysis (session build + problem batch).
  DriverLoopNs,
  /// One analysis-server request, admission to response (any method).
  ServeRequestNs,
  /// Sentinel; not a histogram.
  NumHistos
};

constexpr unsigned NumHistos = static_cast<unsigned>(Histo::NumHistos);

/// The dotted display name of \p H, e.g. "solver.solve_ns".
const char *histoName(Histo H);

/// Number of log2 buckets: bucket B counts samples whose nanosecond
/// value has bit width B, i.e. Ns in [2^(B-1), 2^B - 1] (bucket 0 holds
/// exact zeros). 64 buckets cover the full uint64 range.
constexpr unsigned HistogramBuckets = 64;

/// The bucket index of \p Ns: its bit width.
inline unsigned histogramBucket(uint64_t Ns) {
  unsigned B = 0;
  while (Ns) {
    ++B;
    Ns >>= 1;
  }
  // Values >= 2^63 ns (292 years) clamp into the top bucket rather
  // than indexing past the array.
  return B < HistogramBuckets ? B : HistogramBuckets - 1;
}

/// The inclusive upper bound of bucket \p B in nanoseconds.
inline uint64_t histogramBucketUpperNs(unsigned B) {
  if (B >= 64)
    return ~uint64_t(0);
  return (uint64_t(1) << B) - 1;
}

/// A point-in-time copy of one histogram, with quantile estimation.
struct HistogramSnapshot {
  uint64_t Count = 0;
  uint64_t SumNs = 0;
  uint64_t Buckets[HistogramBuckets] = {};

  bool empty() const { return Count == 0; }

  /// Upper-bound estimate of quantile \p Q in [0, 1]: the upper edge of
  /// the first bucket whose cumulative count reaches Q * Count. Returns
  /// 0 for an empty histogram.
  uint64_t quantileNs(double Q) const;
};

/// One log-bucketed latency histogram: lock-free relaxed-atomic counts,
/// fixed storage, safe to record from several threads.
class Histogram {
public:
  Histogram() {
    for (std::atomic<uint64_t> &B : Buckets)
      B.store(0, std::memory_order_relaxed);
  }
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  void record(uint64_t Ns) {
    Buckets[histogramBucket(Ns)].fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Ns, std::memory_order_relaxed);
    Cnt.fetch_add(1, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot S;
    S.Count = Cnt.load(std::memory_order_relaxed);
    S.SumNs = Sum.load(std::memory_order_relaxed);
    for (unsigned I = 0; I != HistogramBuckets; ++I)
      S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
    return S;
  }

  void mergeFrom(const Histogram &Other) {
    for (unsigned I = 0; I != HistogramBuckets; ++I)
      Buckets[I].fetch_add(
          Other.Buckets[I].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    Sum.fetch_add(Other.Sum.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    Cnt.fetch_add(Other.Cnt.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[HistogramBuckets];
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Cnt{0};
};

/// One completed span, in the shape the Chrome trace-event writer needs:
/// a name, a category, a start timestamp and duration on the wall clock,
/// the logical thread id it ran on, and up to four numeric arguments.
struct TraceEvent {
  std::string Name;
  const char *Cat = "";
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  uint32_t Tid = 0;

  static constexpr unsigned MaxArgs = 4;
  unsigned NumArgs = 0;
  const char *ArgKeys[MaxArgs] = {nullptr, nullptr, nullptr, nullptr};
  uint64_t ArgVals[MaxArgs] = {0, 0, 0, 0};
};

/// Destination of completed spans. Implementations are single-threaded:
/// one sink belongs to one recording thread at a time.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void record(TraceEvent E) = 0;
};

/// The standard sink: buffers events in memory for the exporters.
class MemoryTraceSink final : public TraceSink {
public:
  void record(TraceEvent E) override { Events.push_back(std::move(E)); }
  const std::vector<TraceEvent> &events() const { return Events; }
  void clear() { Events.clear(); }

private:
  std::vector<TraceEvent> Events;
};

/// One telemetry context: a counter array plus an optional sink. Safe to
/// share across threads for counting; span recording follows the sink's
/// single-thread rule.
class Telemetry {
public:
  Telemetry() {
    for (std::atomic<uint64_t> &C : Counters)
      C.store(0, std::memory_order_relaxed);
  }
  Telemetry(const Telemetry &) = delete;
  Telemetry &operator=(const Telemetry &) = delete;

  void add(Counter C, uint64_t N = 1) {
    Counters[static_cast<unsigned>(C)].fetch_add(N,
                                                 std::memory_order_relaxed);
  }
  uint64_t get(Counter C) const {
    return Counters[static_cast<unsigned>(C)].load(
        std::memory_order_relaxed);
  }

  /// Attaches \p S (not owned; null detaches). Spans only record -- and
  /// only then read clocks -- while a sink is attached.
  void setSink(TraceSink *S) { Sink = S; }
  TraceSink *sink() const { return Sink; }

  /// Enables latency histograms. Off by default so the counters-only
  /// tier stays clock-free: a LatencyTimer reads the wall clock only
  /// while timings are enabled. Independent of the sink.
  void enableTimings(bool On = true) { Timings = On; }
  bool timingsEnabled() const { return Timings; }

  void recordLatency(Histo H, uint64_t Ns) {
    Histograms[static_cast<unsigned>(H)].record(Ns);
  }
  const Histogram &histogram(Histo H) const {
    return Histograms[static_cast<unsigned>(H)];
  }

  /// Logical thread id stamped into recorded events (0 = main).
  void setThreadId(uint32_t Id) { Tid = Id; }
  uint32_t threadId() const { return Tid; }

  /// Files \p E with this context's thread id; dropped without a sink.
  void record(TraceEvent E) {
    if (!Sink)
      return;
    E.Tid = Tid;
    Sink->record(std::move(E));
  }

  /// Adds \p Other's counters and histograms into this context (the
  /// driver's join-time aggregation; events merge separately, see
  /// ProgramAnalysisDriver).
  void mergeCountersFrom(const Telemetry &Other) {
    for (unsigned I = 0; I != NumCounters; ++I)
      Counters[I].fetch_add(
          Other.Counters[I].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    for (unsigned I = 0; I != NumHistos; ++I)
      Histograms[I].mergeFrom(Other.Histograms[I]);
  }

  /// The context installed for this thread, or null (telemetry off).
  static Telemetry *current();

private:
  friend class TelemetryScope;
  std::atomic<uint64_t> Counters[NumCounters];
  Histogram Histograms[NumHistos];
  TraceSink *Sink = nullptr;
  uint32_t Tid = 0;
  bool Timings = false;
};

/// Installs \p T as the current thread's telemetry for a dynamic extent;
/// restores the previous context (usually none) on destruction. Scopes
/// nest.
class TelemetryScope {
public:
  explicit TelemetryScope(Telemetry &T);
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope &) = delete;
  TelemetryScope &operator=(const TelemetryScope &) = delete;

private:
  Telemetry *Prev;
};

/// Bumps \p C on the current context, if any.
inline void count(Counter C, uint64_t N = 1) {
  if (Telemetry *T = Telemetry::current())
    T->add(C, N);
}

/// RAII trace span: starts timing at construction, files a TraceEvent at
/// destruction. Inert (no clock read, no allocation) unless the current
/// context has a sink. \p Name and \p Cat must be string literals; a
/// non-null \p Detail is appended as "Name:Detail" (copied, so its
/// lifetime may end at the constructor).
class Span {
public:
  explicit Span(const char *Name, const char *Cat,
                const char *Detail = nullptr);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a numeric argument (shown in the trace viewer); dropped
  /// beyond TraceEvent::MaxArgs. \p Key must be a string literal.
  void arg(const char *Key, uint64_t Value) {
    if (!Owner || Event.NumArgs == TraceEvent::MaxArgs)
      return;
    Event.ArgKeys[Event.NumArgs] = Key;
    Event.ArgVals[Event.NumArgs] = Value;
    ++Event.NumArgs;
  }

  /// True when this span is live (current context has a sink): lets
  /// call sites skip argument computation that only feeds the trace.
  bool active() const { return Owner != nullptr; }

private:
  Telemetry *Owner = nullptr;
  TraceEvent Event;
};

/// RAII latency sample: times its dynamic extent on the wall clock and
/// records it into one histogram of the current context. Inert -- one
/// thread-local load, one flag load, no clock read -- unless the current
/// context has timings enabled (enableTimings), so the counters-only
/// tier and the disabled tier keep their zero-overhead contracts.
class LatencyTimer {
public:
  explicit LatencyTimer(Histo H) {
    Telemetry *T = Telemetry::current();
    if (!T || !T->timingsEnabled())
      return;
    Owner = T;
    Which = H;
    StartNs = wallNowNs();
  }
  ~LatencyTimer() {
    if (Owner)
      Owner->recordLatency(Which, wallNowNs() - StartNs);
  }
  LatencyTimer(const LatencyTimer &) = delete;
  LatencyTimer &operator=(const LatencyTimer &) = delete;

private:
  Telemetry *Owner = nullptr;
  Histo Which = Histo::SolveNs;
  uint64_t StartNs = 0;
};

} // namespace telem
} // namespace ardf

#endif // ARDF_TELEMETRY_TELEMETRY_H
