//===- telemetry/Telemetry.cpp - Counters, timers, trace spans -----------===//

#include "telemetry/Telemetry.h"

#include <chrono>
#include <ctime>

using namespace ardf;
using namespace ardf::telem;

uint64_t telem::wallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t telem::cpuNowNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec TS;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS) == 0)
    return static_cast<uint64_t>(TS.tv_sec) * 1000000000u +
           static_cast<uint64_t>(TS.tv_nsec);
#endif
  return static_cast<uint64_t>(std::clock()) *
         (1000000000u / CLOCKS_PER_SEC);
}

const char *telem::counterName(Counter C) {
  switch (C) {
  case Counter::SolverRunsReference:
    return "solver.runs.reference";
  case Counter::SolverRunsPacked:
    return "solver.runs.packed";
  case Counter::SolverNodeVisits:
    return "solver.node_visits";
  case Counter::SolverPasses:
    return "solver.passes";
  case Counter::SolverMeetOps:
    return "solver.meet_ops";
  case Counter::SolverApplyOps:
    return "solver.apply_ops";
  case Counter::MustNodeVisits:
    return "solver.must.node_visits";
  case Counter::MustVisitBound:
    return "solver.must.visit_bound";
  case Counter::MayNodeVisits:
    return "solver.may.node_visits";
  case Counter::MayVisitBound:
    return "solver.may.visit_bound";
  case Counter::SolverGroupSweeps:
    return "solver.group_sweeps";
  case Counter::FlowCompiles:
    return "flow.compiles";
  case Counter::FlowGroupCompiles:
    return "flow.group_compiles";
  case Counter::FlowCompiledCells:
    return "flow.compiled_cells";
  case Counter::FlowCompileNs:
    return "flow.compile_ns";
  case Counter::SessionsBuilt:
    return "session.built";
  case Counter::SessionInstanceHits:
    return "session.instance.hits";
  case Counter::SessionInstanceMisses:
    return "session.instance.misses";
  case Counter::SessionSolutionHits:
    return "session.solution.hits";
  case Counter::SessionSolutionMisses:
    return "session.solution.misses";
  case Counter::SessionCompiledHits:
    return "session.compiled.hits";
  case Counter::SessionCompiledMisses:
    return "session.compiled.misses";
  case Counter::SessionGroupHits:
    return "session.group.hits";
  case Counter::SessionGroupMisses:
    return "session.group.misses";
  case Counter::PreserveHits:
    return "preserve.hits";
  case Counter::PreserveMisses:
    return "preserve.misses";
  case Counter::DriverLoops:
    return "driver.loops";
  case Counter::LintLoops:
    return "lint.loops";
  case Counter::LintChecks:
    return "lint.checks";
  case Counter::LintDiagnostics:
    return "lint.diagnostics";
  case Counter::LintCrossChecks:
    return "lint.cross_checks";
  case Counter::BudgetBreaches:
    return "solver.budget_breaches";
  case Counter::DegradedSolves:
    return "solver.degraded_solves";
  case Counter::LoopFailures:
    return "driver.loop_failures";
  case Counter::FailpointHits:
    return "failpoint.hits";
  case Counter::SummaryLowerings:
    return "summary.lowerings";
  case Counter::SummaryApplies:
    return "summary.applies";
  case Counter::SummaryCacheHits:
    return "summary.cache.hits";
  case Counter::CfgBlocks:
    return "cfg.blocks";
  case Counter::CfgLoops:
    return "cfg.loops";
  case Counter::NestTrees:
    return "nest.trees";
  case Counter::NestReduced:
    return "nest.reduced";
  case Counter::NestUnsupported:
    return "nest.unsupported";
  case Counter::ServeRequests:
    return "serve.requests";
  case Counter::ServeOk:
    return "serve.ok";
  case Counter::ServeErrors:
    return "serve.errors";
  case Counter::ServeOverloads:
    return "serve.overloads";
  case Counter::ServeWatchdogKills:
    return "serve.watchdog_kills";
  case Counter::ServeCacheHits:
    return "serve.cache.hits";
  case Counter::ServeCacheMisses:
    return "serve.cache.misses";
  case Counter::ServeCacheEvictions:
    return "serve.cache.evictions";
  case Counter::ServeReruns:
    return "serve.reruns";
  case Counter::NumCounters:
    break;
  }
  return "unknown";
}

const char *telem::histoName(Histo H) {
  switch (H) {
  case Histo::SolveNs:
    return "solver.solve_ns";
  case Histo::CheckNs:
    return "lint.check_ns";
  case Histo::DriverLoopNs:
    return "driver.loop_ns";
  case Histo::ServeRequestNs:
    return "serve.request_ns";
  case Histo::NumHistos:
    break;
  }
  return "unknown";
}

uint64_t HistogramSnapshot::quantileNs(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // The first bucket whose cumulative count reaches ceil(Q * Count);
  // report its inclusive upper edge (an upper-bound estimate).
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (Rank * 1.0 < Q * static_cast<double>(Count))
    ++Rank;
  if (Rank == 0)
    Rank = 1;
  uint64_t Cum = 0;
  for (unsigned B = 0; B != HistogramBuckets; ++B) {
    Cum += Buckets[B];
    if (Cum >= Rank)
      return histogramBucketUpperNs(B);
  }
  return histogramBucketUpperNs(HistogramBuckets - 1);
}

namespace {

thread_local Telemetry *CurrentTelemetry = nullptr;

} // namespace

Telemetry *Telemetry::current() { return CurrentTelemetry; }

TelemetryScope::TelemetryScope(Telemetry &T) : Prev(CurrentTelemetry) {
  CurrentTelemetry = &T;
}

TelemetryScope::~TelemetryScope() { CurrentTelemetry = Prev; }

Span::Span(const char *Name, const char *Cat, const char *Detail) {
  Telemetry *T = Telemetry::current();
  if (!T || !T->sink())
    return;
  Owner = T;
  if (Detail) {
    Event.Name.reserve(std::char_traits<char>::length(Name) + 1 +
                       std::char_traits<char>::length(Detail));
    Event.Name = Name;
    Event.Name += ':';
    Event.Name += Detail;
  } else {
    Event.Name = Name;
  }
  Event.Cat = Cat;
  Event.StartNs = wallNowNs();
}

Span::~Span() {
  if (!Owner)
    return;
  Event.DurNs = wallNowNs() - Event.StartNs;
  Owner->record(std::move(Event));
}
