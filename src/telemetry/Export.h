//===- telemetry/Export.h - Trace and stats exporters ----------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializers for recorded telemetry: a Chrome trace-event JSON writer
/// (the array-of-events schema Perfetto and chrome://tracing load: one
/// complete event per span with "ph":"X", microsecond "ts"/"dur", and
/// "pid"/"tid" lane ids) and a structured stats report over a
/// Telemetry's counters, as machine JSON or a human-readable table.
/// Both stats forms include the derived rates (cache hit rates, the
/// paper's 3N/2N cost-bound check) so consumers need no counter
/// arithmetic of their own.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_TELEMETRY_EXPORT_H
#define ARDF_TELEMETRY_EXPORT_H

#include "telemetry/Telemetry.h"

#include <iosfwd>

namespace ardf {
namespace telem {

/// Writes \p Events as Chrome trace-event JSON (Perfetto-loadable).
/// Timestamps are rebased so the earliest span starts at ts 0; span
/// nesting is recovered by the viewer from time containment per tid.
void writeChromeTrace(std::ostream &OS,
                      const std::vector<TraceEvent> &Events);

/// Derived metrics of a counter set (what the stats reports append).
struct DerivedStats {
  double InstanceHitRate = 0.0;
  double SolutionHitRate = 0.0;
  double CompiledHitRate = 0.0;
  double PreserveHitRate = 0.0;

  /// True when recorded must/may node visits exactly equal the paper's
  /// 3N/2N schedule bounds (vacuously true with no solves recorded).
  bool MustBoundMet = true;
  bool MayBoundMet = true;

  static DerivedStats compute(const Telemetry &T);
};

/// Writes every counter plus the derived metrics and latency histogram
/// summaries as one JSON object: {"counters": {name: value, ...},
/// "derived": {...}, "histograms": {name: {count, sum_ns, p50_ns,
/// p95_ns, p99_ns, buckets: [[upper_ns, count], ...]}, ...}}. Histogram
/// buckets are the non-empty log2 buckets only.
void writeStatsJson(std::ostream &OS, const Telemetry &T);

/// Writes the human-readable stats table (all counters, grouped by
/// prefix, with the derived rates, bound checks, and latency quantiles
/// at the end).
void writeStatsTable(std::ostream &OS, const Telemetry &T);

/// Writes the Prometheus text exposition format (scrape-ready): every
/// counter as an ardf_-prefixed counter metric, the derived rates as
/// gauges, and each latency histogram as a native Prometheus histogram
/// with cumulative le-labelled buckets at the log2 bucket upper edges.
void writePrometheus(std::ostream &OS, const Telemetry &T);

} // namespace telem
} // namespace ardf

#endif // ARDF_TELEMETRY_EXPORT_H
