//===- telemetry/Export.cpp - Trace and stats exporters ------------------===//

#include "telemetry/Export.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

using namespace ardf;
using namespace ardf::telem;

namespace {

/// JSON string escaping (control characters, quotes, backslashes).
void writeJsonString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

/// Microseconds with nanosecond precision, as trace-event "ts" wants.
void writeMicros(std::ostream &OS, uint64_t Ns) {
  OS << Ns / 1000 << '.' << std::setw(3) << std::setfill('0') << Ns % 1000
     << std::setfill(' ');
}

double hitRate(uint64_t Hits, uint64_t Misses) {
  uint64_t Total = Hits + Misses;
  return Total == 0 ? 0.0 : static_cast<double>(Hits) / Total;
}

/// Human-scaled duration: "512ns", "4.1us", "2.3ms", "1.2s".
std::string formatNs(uint64_t Ns) {
  std::ostringstream SS;
  SS << std::fixed << std::setprecision(1);
  if (Ns < 1000)
    SS << Ns << "ns";
  else if (Ns < 1000000)
    SS << Ns / 1000.0 << "us";
  else if (Ns < 1000000000)
    SS << Ns / 1000000.0 << "ms";
  else
    SS << Ns / 1000000000.0 << "s";
  return SS.str();
}

/// Prometheus metric name of a dotted counter/histogram name: prefixed
/// with "ardf_", dots mapped to underscores.
std::string promName(const char *Dotted) {
  std::string Out = "ardf_";
  for (const char *P = Dotted; *P; ++P)
    Out += *P == '.' ? '_' : *P;
  return Out;
}

/// The index one past the last non-empty bucket (0 if all empty).
unsigned highestBucketEnd(const HistogramSnapshot &S) {
  unsigned End = 0;
  for (unsigned B = 0; B != HistogramBuckets; ++B)
    if (S.Buckets[B])
      End = B + 1;
  return End;
}

} // namespace

void telem::writeChromeTrace(std::ostream &OS,
                             const std::vector<TraceEvent> &Events) {
  uint64_t Epoch = UINT64_MAX;
  for (const TraceEvent &E : Events)
    Epoch = std::min(Epoch, E.StartNs);
  if (Events.empty())
    Epoch = 0;

  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Process metadata first: gives the single pid lane a readable name.
  OS << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,"
        "\"tid\":0,\"args\":{\"name\":\"ardf\"}}";
  for (const TraceEvent &E : Events) {
    OS << ",\n{\"name\":";
    writeJsonString(OS, E.Name);
    OS << ",\"cat\":";
    writeJsonString(OS, E.Cat);
    OS << ",\"ph\":\"X\",\"ts\":";
    writeMicros(OS, E.StartNs - Epoch);
    OS << ",\"dur\":";
    writeMicros(OS, E.DurNs);
    OS << ",\"pid\":1,\"tid\":" << E.Tid;
    if (E.NumArgs) {
      OS << ",\"args\":{";
      for (unsigned I = 0; I != E.NumArgs; ++I) {
        if (I)
          OS << ',';
        writeJsonString(OS, E.ArgKeys[I]);
        OS << ':' << E.ArgVals[I];
      }
      OS << '}';
    }
    OS << '}';
  }
  OS << "\n]}\n";
}

DerivedStats DerivedStats::compute(const Telemetry &T) {
  DerivedStats D;
  D.InstanceHitRate = hitRate(T.get(Counter::SessionInstanceHits),
                              T.get(Counter::SessionInstanceMisses));
  D.SolutionHitRate = hitRate(T.get(Counter::SessionSolutionHits),
                              T.get(Counter::SessionSolutionMisses));
  D.CompiledHitRate = hitRate(T.get(Counter::SessionCompiledHits),
                              T.get(Counter::SessionCompiledMisses));
  D.PreserveHitRate = hitRate(T.get(Counter::PreserveHits),
                              T.get(Counter::PreserveMisses));
  D.MustBoundMet =
      T.get(Counter::MustNodeVisits) == T.get(Counter::MustVisitBound);
  D.MayBoundMet =
      T.get(Counter::MayNodeVisits) == T.get(Counter::MayVisitBound);
  return D;
}

void telem::writeStatsJson(std::ostream &OS, const Telemetry &T) {
  OS << "{\n  \"counters\": {\n";
  for (unsigned I = 0; I != NumCounters; ++I) {
    Counter C = static_cast<Counter>(I);
    OS << "    ";
    writeJsonString(OS, counterName(C));
    OS << ": " << T.get(C) << (I + 1 == NumCounters ? "\n" : ",\n");
  }
  DerivedStats D = DerivedStats::compute(T);
  std::ostringstream Rates;
  Rates << std::fixed << std::setprecision(4);
  Rates << "    \"session.instance.hit_rate\": " << D.InstanceHitRate
        << ",\n    \"session.solution.hit_rate\": " << D.SolutionHitRate
        << ",\n    \"session.compiled.hit_rate\": " << D.CompiledHitRate
        << ",\n    \"preserve.hit_rate\": " << D.PreserveHitRate;
  OS << "  },\n  \"derived\": {\n"
     << Rates.str() << ",\n    \"solver.must.bound_met\": "
     << (D.MustBoundMet ? "true" : "false")
     << ",\n    \"solver.may.bound_met\": "
     << (D.MayBoundMet ? "true" : "false") << "\n  },\n"
     << "  \"histograms\": {\n";
  for (unsigned I = 0; I != NumHistos; ++I) {
    Histo H = static_cast<Histo>(I);
    HistogramSnapshot S = T.histogram(H).snapshot();
    OS << "    ";
    writeJsonString(OS, histoName(H));
    OS << ": {\"count\": " << S.Count << ", \"sum_ns\": " << S.SumNs
       << ", \"p50_ns\": " << S.quantileNs(0.50)
       << ", \"p95_ns\": " << S.quantileNs(0.95)
       << ", \"p99_ns\": " << S.quantileNs(0.99) << ", \"buckets\": [";
    bool First = true;
    for (unsigned B = 0; B != HistogramBuckets; ++B) {
      if (!S.Buckets[B])
        continue;
      if (!First)
        OS << ", ";
      First = false;
      OS << '[' << histogramBucketUpperNs(B) << ", " << S.Buckets[B]
         << ']';
    }
    OS << "]}" << (I + 1 == NumHistos ? "\n" : ",\n");
  }
  OS << "  }\n}\n";
}

void telem::writeStatsTable(std::ostream &OS, const Telemetry &T) {
  OS << "== ardf telemetry ==\n";
  for (unsigned I = 0; I != NumCounters; ++I) {
    Counter C = static_cast<Counter>(I);
    OS << "  " << std::left << std::setw(28) << counterName(C)
       << std::right << std::setw(14) << T.get(C) << '\n';
  }
  DerivedStats D = DerivedStats::compute(T);
  std::ostringstream Pct;
  Pct << std::fixed << std::setprecision(1);
  auto Rate = [&Pct](double R) {
    Pct.str("");
    Pct << R * 100 << '%';
    return Pct.str();
  };
  OS << "  --\n"
     << "  " << std::left << std::setw(28) << "session.instance.hit_rate"
     << std::right << std::setw(14) << Rate(D.InstanceHitRate) << '\n'
     << "  " << std::left << std::setw(28) << "session.solution.hit_rate"
     << std::right << std::setw(14) << Rate(D.SolutionHitRate) << '\n'
     << "  " << std::left << std::setw(28) << "session.compiled.hit_rate"
     << std::right << std::setw(14) << Rate(D.CompiledHitRate) << '\n'
     << "  " << std::left << std::setw(28) << "preserve.hit_rate"
     << std::right << std::setw(14) << Rate(D.PreserveHitRate) << '\n'
     << "  " << std::left << std::setw(28) << "solver.must 3N bound"
     << std::right << std::setw(14) << (D.MustBoundMet ? "met" : "MISSED")
     << '\n'
     << "  " << std::left << std::setw(28) << "solver.may 2N bound"
     << std::right << std::setw(14) << (D.MayBoundMet ? "met" : "MISSED")
     << '\n';
  bool WroteLatencyHeader = false;
  for (unsigned I = 0; I != NumHistos; ++I) {
    Histo H = static_cast<Histo>(I);
    HistogramSnapshot S = T.histogram(H).snapshot();
    if (S.empty())
      continue;
    if (!WroteLatencyHeader) {
      OS << "  --\n";
      WroteLatencyHeader = true;
    }
    OS << "  " << std::left << std::setw(28) << histoName(H) << std::right
       << " n=" << S.Count << "  p50<=" << formatNs(S.quantileNs(0.50))
       << "  p95<=" << formatNs(S.quantileNs(0.95))
       << "  p99<=" << formatNs(S.quantileNs(0.99)) << '\n';
  }
}

void telem::writePrometheus(std::ostream &OS, const Telemetry &T) {
  for (unsigned I = 0; I != NumCounters; ++I) {
    Counter C = static_cast<Counter>(I);
    std::string Name = promName(counterName(C));
    OS << "# TYPE " << Name << " counter\n"
       << Name << " " << T.get(C) << '\n';
  }
  DerivedStats D = DerivedStats::compute(T);
  std::ostringstream Rates;
  Rates << std::fixed << std::setprecision(4);
  auto Gauge = [&OS, &Rates](const char *Dotted, double Value) {
    std::string Name = promName(Dotted);
    Rates.str("");
    Rates << Value;
    OS << "# TYPE " << Name << " gauge\n" << Name << " " << Rates.str()
       << '\n';
  };
  Gauge("session.instance.hit_rate", D.InstanceHitRate);
  Gauge("session.solution.hit_rate", D.SolutionHitRate);
  Gauge("session.compiled.hit_rate", D.CompiledHitRate);
  Gauge("preserve.hit_rate", D.PreserveHitRate);
  Gauge("solver.must.bound_met", D.MustBoundMet ? 1.0 : 0.0);
  Gauge("solver.may.bound_met", D.MayBoundMet ? 1.0 : 0.0);
  for (unsigned I = 0; I != NumHistos; ++I) {
    Histo H = static_cast<Histo>(I);
    HistogramSnapshot S = T.histogram(H).snapshot();
    std::string Name = promName(histoName(H));
    OS << "# TYPE " << Name << " histogram\n";
    uint64_t Cum = 0;
    unsigned End = highestBucketEnd(S);
    for (unsigned B = 0; B != End; ++B) {
      Cum += S.Buckets[B];
      OS << Name << "_bucket{le=\"" << histogramBucketUpperNs(B)
         << "\"} " << Cum << '\n';
    }
    OS << Name << "_bucket{le=\"+Inf\"} " << S.Count << '\n'
       << Name << "_sum " << S.SumNs << '\n'
       << Name << "_count " << S.Count << '\n';
  }
}
