//===- frontend/Lexer.cpp - Tokenizer for the loop language --------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdint>

using namespace ardf;

const char *ardf::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Integer:
    return "integer";
  case TokenKind::KwArray:
    return "'array'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Error:
    return "invalid character";
  }
  return "?";
}

namespace {

TokenKind keywordKind(const std::string &Text) {
  if (Text == "array")
    return TokenKind::KwArray;
  if (Text == "do")
    return TokenKind::KwDo;
  if (Text == "if")
    return TokenKind::KwIf;
  if (Text == "else")
    return TokenKind::KwElse;
  if (Text == "while")
    return TokenKind::KwWhile;
  if (Text == "break")
    return TokenKind::KwBreak;
  return TokenKind::Identifier;
}

} // namespace

std::vector<Token> ardf::lex(const std::string &Source) {
  std::vector<Token> Tokens;
  unsigned Line = 1;
  unsigned Col = 1;
  size_t I = 0;
  const size_t N = Source.size();

  auto makeToken = [&](TokenKind Kind, std::string Text, unsigned TokCol) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Line = Line;
    T.Col = TokCol;
    Tokens.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    // Whitespace.
    if (C == '\n') {
      ++Line;
      Col = 1;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Col;
      ++I;
      continue;
    }
    // Comments.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    unsigned TokCol = Col;
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_')) {
        Text += Source[I];
        ++I;
        ++Col;
      }
      makeToken(keywordKind(Text), Text, TokCol);
      continue;
    }
    // Integers. Accumulated with an explicit overflow check: a literal
    // past int64 range (a fuzzer favorite) must become an Error token
    // with a located diagnostic downstream, never a thrown
    // std::out_of_range from std::stoll.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Text;
      int64_t Value = 0;
      bool Overflow = false;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I]))) {
        int64_t Digit = Source[I] - '0';
        if (Value > (INT64_MAX - Digit) / 10)
          Overflow = true;
        else
          Value = Value * 10 + Digit;
        Text += Source[I];
        ++I;
        ++Col;
      }
      Token T;
      T.Kind = Overflow ? TokenKind::Error : TokenKind::Integer;
      T.Text = Text;
      T.IntValue = Overflow ? 0 : Value;
      T.Line = Line;
      T.Col = TokCol;
      Tokens.push_back(std::move(T));
      continue;
    }
    // Punctuation; two-character operators first.
    auto twoChar = [&](char First, char Second, TokenKind Kind) {
      if (C == First && I + 1 < N && Source[I + 1] == Second) {
        makeToken(Kind, std::string{First, Second}, TokCol);
        I += 2;
        Col += 2;
        return true;
      }
      return false;
    };
    if (twoChar('=', '=', TokenKind::EqEq) ||
        twoChar('!', '=', TokenKind::NotEq) ||
        twoChar('<', '=', TokenKind::LessEq) ||
        twoChar('>', '=', TokenKind::GreaterEq) ||
        twoChar('&', '&', TokenKind::AmpAmp) ||
        twoChar('|', '|', TokenKind::PipePipe))
      continue;

    TokenKind Kind;
    switch (C) {
    case '(':
      Kind = TokenKind::LParen;
      break;
    case ')':
      Kind = TokenKind::RParen;
      break;
    case '[':
      Kind = TokenKind::LBracket;
      break;
    case ']':
      Kind = TokenKind::RBracket;
      break;
    case '{':
      Kind = TokenKind::LBrace;
      break;
    case '}':
      Kind = TokenKind::RBrace;
      break;
    case ',':
      Kind = TokenKind::Comma;
      break;
    case ';':
      Kind = TokenKind::Semi;
      break;
    case '=':
      Kind = TokenKind::Assign;
      break;
    case '+':
      Kind = TokenKind::Plus;
      break;
    case '-':
      Kind = TokenKind::Minus;
      break;
    case '*':
      Kind = TokenKind::Star;
      break;
    case '/':
      Kind = TokenKind::Slash;
      break;
    case '<':
      Kind = TokenKind::Less;
      break;
    case '>':
      Kind = TokenKind::Greater;
      break;
    case '!':
      Kind = TokenKind::Bang;
      break;
    default:
      Kind = TokenKind::Error;
      break;
    }
    makeToken(Kind, std::string(1, C), TokCol);
    ++I;
    ++Col;
  }

  Token Eof;
  Eof.Kind = TokenKind::EndOfFile;
  Eof.Line = Line;
  Eof.Col = Col;
  Tokens.push_back(std::move(Eof));
  return Tokens;
}
