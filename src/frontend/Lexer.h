//===- frontend/Lexer.h - Tokenizer for the loop language ------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the small Fortran-style loop language used to write the
/// paper's examples:
///
/// \code
///   array C[1000];
///   do i = 1, 1000 {
///     C[i+2] = C[i] * 2;
///     if (C[i] == 0) { C[i] = B[i-1]; }
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_FRONTEND_LEXER_H
#define ARDF_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace ardf {

/// Kinds of tokens produced by the lexer.
enum class TokenKind {
  EndOfFile,
  Identifier,
  Integer,
  KwArray,
  KwDo,
  KwIf,
  KwElse,
  KwWhile,
  KwBreak,
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Assign,  // =
  Plus,
  Minus,
  Star,
  Slash,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Bang,
  Error
};

/// Returns a human-readable name for \p Kind, for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// A lexed token with source position (1-based line and column).
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;
  int64_t IntValue = 0;
  unsigned Line = 0;
  unsigned Col = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Tokenizes \p Source in one shot. `//`-to-end-of-line comments are
/// skipped. Unknown characters produce TokenKind::Error tokens (the parser
/// reports them); lexing always terminates with an EndOfFile token.
std::vector<Token> lex(const std::string &Source);

} // namespace ardf

#endif // ARDF_FRONTEND_LEXER_H
