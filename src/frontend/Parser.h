//===- frontend/Parser.h - Parser for the loop language --------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing ir::Program trees. Grammar:
///
/// \code
///   program   := (arrayDecl | stmt)*
///   arrayDecl := 'array' ident '[' expr (',' expr)* ']' ';'
///   stmt      := assign | if | doLoop
///   assign    := lvalue '=' expr ';'
///   if        := 'if' '(' expr ')' block ('else' block)?
///   doLoop    := 'do' ident '=' expr ',' expr (',' int)? block
///   block     := '{' stmt* '}'
///   expr      := orExpr (precedence-climbing over || && cmp + - * /)
///   lvalue    := ident ('[' expr (',' expr)* ']')?
/// \endcode
///
/// Errors are collected as diagnostics; no exceptions are thrown.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_FRONTEND_PARSER_H
#define ARDF_FRONTEND_PARSER_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace ardf {

/// A parse diagnostic with 1-based source position.
struct ParseDiagnostic {
  unsigned Line;
  unsigned Col;
  std::string Message;
};

/// Result of parsing: the program (possibly partial on error) plus any
/// diagnostics. succeeded() is true when no diagnostics were emitted.
struct ParseResult {
  Program Prog;
  std::vector<ParseDiagnostic> Diags;

  bool succeeded() const { return Diags.empty(); }

  /// Formats all diagnostics as "line:col: message" lines.
  std::string diagnosticsToString() const;
};

/// Parses \p Source into a Program.
ParseResult parseProgram(const std::string &Source);

/// Convenience wrapper for tests/examples: parses \p Source and aborts
/// with an assertion message if parsing fails.
Program parseOrDie(const std::string &Source);

} // namespace ardf

#endif // ARDF_FRONTEND_PARSER_H
