//===- frontend/Parser.cpp - Parser for the loop language ----------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include "support/FailPoint.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace ardf;

namespace {

/// Precedence-climbing parser over the token stream.
class Parser {
public:
  Parser(std::vector<Token> Tokens, ParseResult &Result)
      : Tokens(std::move(Tokens)), Result(Result) {}

  void parse() {
    while (!peek().is(TokenKind::EndOfFile) && !Bail) {
      size_t Before = Pos;
      if (peek().is(TokenKind::KwArray))
        parseArrayDecl();
      else if (StmtPtr S = parseStmt())
        Result.Prog.addStmt(std::move(S));
      // Ensure forward progress even on malformed input.
      if (Pos == Before)
        ++Pos;
    }
  }

private:
  /// Recursion ceiling over parseStmt/parsePrimary: deeper nesting (a
  /// denial-of-service/stack-overflow vector, not a real program) stops
  /// with a located diagnostic instead of unbounded stack growth.
  static constexpr unsigned MaxDepth = 200;

  /// Diagnostic ceiling: pathological inputs (100k stray tokens) stop
  /// after this many messages instead of producing one per token.
  static constexpr size_t MaxDiagnostics = 100;

  /// RAII recursion accounting; Ok is false past MaxDepth (the
  /// constructor has already emitted the diagnostic).
  struct DepthScope {
    Parser &P;
    bool Ok;
    explicit DepthScope(Parser &P) : P(P), Ok(++P.Depth <= MaxDepth) {
      if (!Ok)
        P.error("nesting too deep (limit " + std::to_string(MaxDepth) +
                " levels)");
    }
    ~DepthScope() { --P.Depth; }
  };

  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }

  bool consumeIf(TokenKind Kind) {
    if (!peek().is(Kind))
      return false;
    advance();
    return true;
  }

  bool expect(TokenKind Kind, const char *Context) {
    if (consumeIf(Kind))
      return true;
    error(std::string("expected ") + tokenKindName(Kind) + " " + Context +
          ", found " + tokenKindName(peek().Kind));
    return false;
  }

  void error(std::string Message) {
    if (Bail)
      return;
    if (Result.Diags.size() >= MaxDiagnostics) {
      Bail = true;
      Result.Diags.push_back(ParseDiagnostic{
          peek().Line, peek().Col, "too many errors; aborting parse"});
      return;
    }
    Result.Diags.push_back(
        ParseDiagnostic{peek().Line, peek().Col, std::move(Message)});
  }

  /// Source position of the next token (the start of the construct
  /// about to be parsed).
  SourceLoc loc() const { return SourceLoc(peek().Line, peek().Col); }

  void parseArrayDecl() {
    expect(TokenKind::KwArray, "at start of declaration");
    std::string Name = peek().Text;
    if (!expect(TokenKind::Identifier, "as array name"))
      return;
    std::vector<ExprPtr> Dims;
    if (!expect(TokenKind::LBracket, "after array name"))
      return;
    do {
      if (ExprPtr E = parseExpr())
        Dims.push_back(std::move(E));
      else
        return;
    } while (consumeIf(TokenKind::Comma));
    expect(TokenKind::RBracket, "after dimension sizes");
    expect(TokenKind::Semi, "after array declaration");
    Result.Prog.declareArray(std::move(Name), std::move(Dims));
  }

  StmtPtr parseStmt() {
    DepthScope Scope(*this);
    if (!Scope.Ok)
      return nullptr;
    failpoint::evaluate("parser.alloc");
    switch (peek().Kind) {
    case TokenKind::KwIf:
      return parseIf();
    case TokenKind::KwDo:
      return parseDoLoop();
    case TokenKind::KwWhile:
      return parseWhile();
    case TokenKind::KwBreak:
      return parseBreak();
    case TokenKind::Identifier:
      return parseAssign();
    default:
      error(std::string("expected statement, found ") +
            tokenKindName(peek().Kind));
      return nullptr;
    }
  }

  StmtPtr parseAssign() {
    SourceLoc Start = loc();
    ExprPtr LHS = parseLValue();
    if (!LHS)
      return nullptr;
    if (!expect(TokenKind::Assign, "in assignment"))
      return nullptr;
    ExprPtr RHS = parseExpr();
    if (!RHS)
      return nullptr;
    expect(TokenKind::Semi, "after assignment");
    auto S = std::make_unique<AssignStmt>(std::move(LHS), std::move(RHS));
    S->setLoc(Start);
    return S;
  }

  StmtPtr parseIf() {
    SourceLoc Start = loc();
    expect(TokenKind::KwIf, "at start of conditional");
    if (!expect(TokenKind::LParen, "after 'if'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    expect(TokenKind::RParen, "after condition");
    StmtList Then = parseBlock();
    StmtList Else;
    if (consumeIf(TokenKind::KwElse))
      Else = parseBlock();
    auto S = std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                      std::move(Else));
    S->setLoc(Start);
    return S;
  }

  StmtPtr parseDoLoop() {
    SourceLoc Start = loc();
    expect(TokenKind::KwDo, "at start of loop");
    std::string IndVar = peek().Text;
    if (!expect(TokenKind::Identifier, "as induction variable"))
      return nullptr;
    if (!expect(TokenKind::Assign, "after induction variable"))
      return nullptr;
    ExprPtr Lower = parseExpr();
    if (!Lower)
      return nullptr;
    if (!expect(TokenKind::Comma, "between loop bounds"))
      return nullptr;
    ExprPtr Upper = parseExpr();
    if (!Upper)
      return nullptr;
    int64_t Step = 1;
    if (consumeIf(TokenKind::Comma)) {
      bool Negative = consumeIf(TokenKind::Minus);
      if (peek().is(TokenKind::Integer)) {
        Step = advance().IntValue;
        if (Negative)
          Step = -Step;
      } else {
        error("expected integer step");
      }
    }
    StmtList Body = parseBlock();
    auto S = std::make_unique<DoLoopStmt>(std::move(IndVar), std::move(Lower),
                                          std::move(Upper), std::move(Body),
                                          Step);
    S->setLoc(Start);
    return S;
  }

  StmtPtr parseWhile() {
    SourceLoc Start = loc();
    expect(TokenKind::KwWhile, "at start of loop");
    if (!expect(TokenKind::LParen, "after 'while'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    expect(TokenKind::RParen, "after condition");
    StmtList Body = parseBlock();
    auto S = std::make_unique<WhileStmt>(std::move(Cond), std::move(Body));
    S->setLoc(Start);
    return S;
  }

  StmtPtr parseBreak() {
    SourceLoc Start = loc();
    expect(TokenKind::KwBreak, "at start of statement");
    expect(TokenKind::Semi, "after 'break'");
    auto S = std::make_unique<BreakStmt>();
    S->setLoc(Start);
    return S;
  }

  StmtList parseBlock() {
    StmtList Stmts;
    if (!expect(TokenKind::LBrace, "at start of block"))
      return Stmts;
    while (!peek().is(TokenKind::RBrace) &&
           !peek().is(TokenKind::EndOfFile) && !Bail) {
      size_t Before = Pos;
      if (StmtPtr S = parseStmt())
        Stmts.push_back(std::move(S));
      if (Pos == Before)
        ++Pos;
    }
    expect(TokenKind::RBrace, "at end of block");
    return Stmts;
  }

  ExprPtr parseLValue() {
    SourceLoc Start = loc();
    std::string Name = peek().Text;
    if (!expect(TokenKind::Identifier, "as assignment target"))
      return nullptr;
    if (!peek().is(TokenKind::LBracket)) {
      auto V = std::make_unique<VarRef>(std::move(Name));
      V->setLoc(Start);
      return V;
    }
    return parseSubscripts(std::move(Name), Start);
  }

  ExprPtr parseSubscripts(std::string Name, SourceLoc Start) {
    expect(TokenKind::LBracket, "in array reference");
    std::vector<ExprPtr> Subs;
    do {
      if (ExprPtr E = parseExpr())
        Subs.push_back(std::move(E));
      else
        return nullptr;
    } while (consumeIf(TokenKind::Comma));
    expect(TokenKind::RBracket, "after subscripts");
    auto R = std::make_unique<ArrayRefExpr>(std::move(Name), std::move(Subs));
    R->setLoc(Start);
    return R;
  }

  /// Returns the binary operator for \p Kind, if it is one.
  static bool binaryOpFor(TokenKind Kind, BinaryOpKind &Op, unsigned &Prec) {
    switch (Kind) {
    case TokenKind::PipePipe:
      Op = BinaryOpKind::Or;
      Prec = 1;
      return true;
    case TokenKind::AmpAmp:
      Op = BinaryOpKind::And;
      Prec = 2;
      return true;
    case TokenKind::EqEq:
      Op = BinaryOpKind::Eq;
      Prec = 3;
      return true;
    case TokenKind::NotEq:
      Op = BinaryOpKind::Ne;
      Prec = 3;
      return true;
    case TokenKind::Less:
      Op = BinaryOpKind::Lt;
      Prec = 3;
      return true;
    case TokenKind::LessEq:
      Op = BinaryOpKind::Le;
      Prec = 3;
      return true;
    case TokenKind::Greater:
      Op = BinaryOpKind::Gt;
      Prec = 3;
      return true;
    case TokenKind::GreaterEq:
      Op = BinaryOpKind::Ge;
      Prec = 3;
      return true;
    case TokenKind::Plus:
      Op = BinaryOpKind::Add;
      Prec = 4;
      return true;
    case TokenKind::Minus:
      Op = BinaryOpKind::Sub;
      Prec = 4;
      return true;
    case TokenKind::Star:
      Op = BinaryOpKind::Mul;
      Prec = 5;
      return true;
    case TokenKind::Slash:
      Op = BinaryOpKind::Div;
      Prec = 5;
      return true;
    default:
      return false;
    }
  }

  ExprPtr parseExpr(unsigned MinPrec = 1) {
    ExprPtr LHS = parsePrimary();
    if (!LHS)
      return nullptr;
    for (;;) {
      BinaryOpKind Op;
      unsigned Prec;
      if (!binaryOpFor(peek().Kind, Op, Prec) || Prec < MinPrec)
        return LHS;
      advance();
      ExprPtr RHS = parseExpr(Prec + 1);
      if (!RHS)
        return nullptr;
      SourceLoc Start = LHS->getLoc();
      LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS));
      LHS->setLoc(Start);
    }
  }

  ExprPtr parsePrimary() {
    DepthScope Scope(*this);
    if (!Scope.Ok)
      return nullptr;
    SourceLoc Start = loc();
    switch (peek().Kind) {
    case TokenKind::Integer: {
      auto E = std::make_unique<IntLit>(advance().IntValue);
      E->setLoc(Start);
      return E;
    }
    case TokenKind::Minus: {
      advance();
      ExprPtr E = parsePrimary();
      if (!E)
        return nullptr;
      auto U = std::make_unique<UnaryExpr>(UnaryOpKind::Neg, std::move(E));
      U->setLoc(Start);
      return U;
    }
    case TokenKind::Bang: {
      advance();
      ExprPtr E = parsePrimary();
      if (!E)
        return nullptr;
      auto U = std::make_unique<UnaryExpr>(UnaryOpKind::Not, std::move(E));
      U->setLoc(Start);
      return U;
    }
    case TokenKind::LParen: {
      advance();
      ExprPtr E = parseExpr();
      expect(TokenKind::RParen, "after parenthesized expression");
      return E;
    }
    case TokenKind::Identifier: {
      std::string Name = advance().Text;
      if (peek().is(TokenKind::LBracket))
        return parseSubscripts(std::move(Name), Start);
      auto V = std::make_unique<VarRef>(std::move(Name));
      V->setLoc(Start);
      return V;
    }
    default:
      error(std::string("expected expression, found ") +
            tokenKindName(peek().Kind));
      return nullptr;
    }
  }

  std::vector<Token> Tokens;
  ParseResult &Result;
  size_t Pos = 0;
  unsigned Depth = 0;
  bool Bail = false;
};

} // namespace

std::string ParseResult::diagnosticsToString() const {
  std::ostringstream OS;
  for (const ParseDiagnostic &D : Diags)
    OS << D.Line << ':' << D.Col << ": " << D.Message << '\n';
  return OS.str();
}

ParseResult ardf::parseProgram(const std::string &Source) {
  ParseResult Result;
  // Recovery-mode guarantee: parseProgram never lets an exception out.
  // A fault mid-parse (bad_alloc, an armed parser.alloc failpoint)
  // becomes an error diagnostic; statements already added to the
  // program stay well-formed, the in-flight one unwinds away.
  try {
    Parser P(lex(Source), Result);
    P.parse();
  } catch (const std::exception &E) {
    Result.Diags.push_back(ParseDiagnostic{
        1, 1, std::string("internal error while parsing: ") + E.what()});
  }
  return Result;
}

Program ardf::parseOrDie(const std::string &Source) {
  ParseResult Result = parseProgram(Source);
  if (!Result.succeeded()) {
    std::fprintf(stderr, "parse error:\n%s",
                 Result.diagnosticsToString().c_str());
    std::abort();
  }
  return std::move(Result.Prog);
}
