//===- codegen/LoopCodeGen.h - Machine code generation ---------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers loop IR to MachineIR in two flavors:
///
///   * conventional — every array use issues a load, every array
///     definition a store (Fig. 5 (ii));
///   * register-pipelined — values proven reusable by the
///     delta-available-values instance live in register pipelines; reuse
///     points read pipeline stages, in-loop loads disappear, and the
///     pipeline progresses at the end of each iteration either by
///     explicit register moves or by a constant-cost rotating register
///     window (Fig. 5 (iii), Section 4.1.4).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_CODEGEN_LOOPCODEGEN_H
#define ARDF_CODEGEN_LOOPCODEGEN_H

#include "ir/Program.h"
#include "machine/MachineIR.h"

#include <map>
#include <string>
#include <vector>

namespace ardf {

/// How register pipelines progress at the end of an iteration.
enum class PipelineMode {
  None,   ///< Conventional code, no pipelining.
  Moves,  ///< Explicit register-to-register moves per stage.
  Rotate  ///< One constant-cost window rotation (Cydra 5 ICP style).
};

/// Code generation options.
struct CodeGenOptions {
  PipelineMode Mode = PipelineMode::None;

  /// Deepest pipeline materialized.
  int64_t MaxDepth = 8;

  /// Register budget for pipeline stages per loop (0 = unlimited).
  /// When the demand exceeds it, the lowest-priority pipelines (fewest
  /// reuse points per stage, the P(l) ratio of Section 4.1.2) stay in
  /// memory.
  unsigned MaxPipelineRegisters = 0;
};

/// Result of lowering a program.
struct CodeGenResult {
  MachineProgram Prog;

  /// Register holding each scalar (callers preset inputs through this).
  std::map<std::string, int> ScalarRegs;

  /// Number of register pipelines materialized and their total stages.
  unsigned PipelineCount = 0;
  unsigned TotalStages = 0;

  /// One line per pipeline: "A[i + 2]: 3 stages in r4..r6".
  std::vector<std::string> Notes;
};

/// Lowers \p P (scalar assignments and loops at the top level; loop
/// bodies may contain assignments, conditionals, and nested loops) to
/// machine code. Pipelines are built for top-level loops only.
CodeGenResult generateLoopCode(const Program &P,
                               const CodeGenOptions &Opts = {});

} // namespace ardf

#endif // ARDF_CODEGEN_LOOPCODEGEN_H
