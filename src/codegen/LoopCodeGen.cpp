//===- codegen/LoopCodeGen.cpp - Machine code generation -----------------===//

#include "codegen/LoopCodeGen.h"

#include "analysis/LoopDataFlow.h"
#include "ir/PrettyPrinter.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

using namespace ardf;

namespace {

/// One register pipeline materialized for a loop.
struct Pipeline {
  /// Generation sites (group members), split by role: definition sites
  /// write stage 0 and store from it; use sites load into stage 0.
  std::set<const ArrayRefExpr *> DefMembers;
  std::set<const ArrayRefExpr *> UseMembers;

  /// Reuse point -> stage index (= reuse distance).
  std::map<const ArrayRefExpr *, int64_t> SinkStage;

  int64_t Depth = 1;
  int BaseReg = -1;
  const RefOccurrence *Rep = nullptr;
};

/// The code generator proper.
class CodeGen {
public:
  CodeGen(const Program &P, const CodeGenOptions &Opts) : P(P), Opts(Opts) {}

  CodeGenResult run() {
    for (const StmtPtr &S : P.getStmts()) {
      if (const auto *Loop = dyn_cast<DoLoopStmt>(S.get()))
        genTopLevelLoop(*Loop);
      else
        genStmt(*S);
    }
    Result.Prog.emit({.Op = MOpcode::Halt});
    return std::move(Result);
  }

private:
  int freshReg() { return NextReg++; }

  int scalarReg(const std::string &Name) {
    auto [It, Inserted] = Result.ScalarRegs.try_emplace(Name, -1);
    if (Inserted)
      It->second = freshReg();
    return It->second;
  }

  int newLabel() { return NextLabel++; }

  void emit(MInstr I) { Result.Prog.emit(std::move(I)); }

  void emitLabel(int L) { emit({.Op = MOpcode::LabelDef, .Label = L}); }

  int emitImm(int64_t V) {
    int R = freshReg();
    emit({.Op = MOpcode::LoadImm, .Dst = R, .Imm = V});
    return R;
  }

  /// Evaluates \p E into a register.
  int genExpr(const Expr &E) {
    switch (E.getKind()) {
    case Expr::Kind::IntLit:
      return emitImm(cast<IntLit>(&E)->getValue());
    case Expr::Kind::VarRef:
      return scalarReg(cast<VarRef>(&E)->getName());
    case Expr::Kind::ArrayRef: {
      const auto *AR = cast<ArrayRefExpr>(&E);
      // Pipeline reuse point: read the stage register directly.
      for (Pipeline &Pipe : ActivePipes) {
        auto It = Pipe.SinkStage.find(AR);
        if (It != Pipe.SinkStage.end())
          return Pipe.BaseReg + static_cast<int>(It->second);
        // A use that is a generation site loads into stage 0 and the
        // expression reads stage 0 (refreshing the pipeline on this
        // path).
        if (Pipe.UseMembers.count(AR)) {
          int Addr = genAddress(*AR);
          emit({.Op = MOpcode::Load,
                .Dst = Pipe.BaseReg,
                .Src1 = Addr,
                .Array = AR->getName()});
          return Pipe.BaseReg;
        }
      }
      int Addr = genAddress(*AR);
      int Dst = freshReg();
      emit({.Op = MOpcode::Load,
            .Dst = Dst,
            .Src1 = Addr,
            .Array = AR->getName()});
      return Dst;
    }
    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(&E);
      int Src = genExpr(*UE->getOperand());
      int Dst = freshReg();
      if (UE->getOp() == UnaryOpKind::Not) {
        emit({.Op = MOpcode::Not, .Dst = Dst, .Src1 = Src});
      } else {
        int Zero = emitImm(0);
        emit({.Op = MOpcode::Sub, .Dst = Dst, .Src1 = Zero, .Src2 = Src});
      }
      return Dst;
    }
    case Expr::Kind::Binary: {
      const auto *BE = cast<BinaryExpr>(&E);
      int L = genExpr(*BE->getLHS());
      int R = genExpr(*BE->getRHS());
      int Dst = freshReg();
      MOpcode Op = MOpcode::Add; // overwritten below; pacifies -Wmaybe-uninitialized
      switch (BE->getOp()) {
      case BinaryOpKind::Add:
        Op = MOpcode::Add;
        break;
      case BinaryOpKind::Sub:
        Op = MOpcode::Sub;
        break;
      case BinaryOpKind::Mul:
        Op = MOpcode::Mul;
        break;
      case BinaryOpKind::Div:
        Op = MOpcode::Div;
        break;
      case BinaryOpKind::Eq:
        Op = MOpcode::CmpEq;
        break;
      case BinaryOpKind::Ne:
        Op = MOpcode::CmpNe;
        break;
      case BinaryOpKind::Lt:
        Op = MOpcode::CmpLt;
        break;
      case BinaryOpKind::Le:
        Op = MOpcode::CmpLe;
        break;
      case BinaryOpKind::Gt:
        Op = MOpcode::CmpGt;
        break;
      case BinaryOpKind::Ge:
        Op = MOpcode::CmpGe;
        break;
      case BinaryOpKind::And:
        Op = MOpcode::Mul; // both are 0/1 after comparisons
        break;
      case BinaryOpKind::Or: {
        // L | R as (L + R) != 0.
        int Sum = freshReg();
        emit({.Op = MOpcode::Add, .Dst = Sum, .Src1 = L, .Src2 = R});
        int Zero = emitImm(0);
        emit({.Op = MOpcode::CmpNe, .Dst = Dst, .Src1 = Sum, .Src2 = Zero});
        return Dst;
      }
      }
      emit({.Op = Op, .Dst = Dst, .Src1 = L, .Src2 = R});
      return Dst;
    }
    }
    return -1;
  }

  /// Computes the flattened address of \p AR (row-major with declared
  /// dimension sizes, consistent with the interpreter).
  int genAddress(const ArrayRefExpr &AR) {
    const ArrayDecl *Decl = P.getArrayDecl(AR.getName());
    int Addr = genExpr(*AR.getSubscript(0));
    for (unsigned I = 1, N = AR.getNumSubscripts(); I != N; ++I) {
      assert(Decl && Decl->getNumDims() == N &&
             "multi-dimensional reference to undeclared array");
      int Dim = genExpr(*Decl->DimSizes[I]);
      int Scaled = freshReg();
      emit({.Op = MOpcode::Mul, .Dst = Scaled, .Src1 = Addr, .Src2 = Dim});
      int Sub = genExpr(*AR.getSubscript(I));
      int Next = freshReg();
      emit({.Op = MOpcode::Add, .Dst = Next, .Src1 = Scaled, .Src2 = Sub});
      Addr = Next;
    }
    return Addr;
  }

  void genStmt(const Stmt &S) {
    switch (S.getKind()) {
    case Stmt::Kind::Assign: {
      const auto *AS = cast<AssignStmt>(&S);
      if (const ArrayRefExpr *Target = AS->getArrayTarget()) {
        // Pipelined definition sites write stage 0 and store from it.
        for (Pipeline &Pipe : ActivePipes) {
          if (!Pipe.DefMembers.count(Target))
            continue;
          int Value = genExpr(*AS->getRHS());
          emit({.Op = MOpcode::Mov, .Dst = Pipe.BaseReg, .Src1 = Value});
          int Addr = genAddress(*Target);
          emit({.Op = MOpcode::Store,
                .Src1 = Addr,
                .Src2 = Pipe.BaseReg,
                .Array = Target->getName()});
          return;
        }
        int Value = genExpr(*AS->getRHS());
        int Addr = genAddress(*Target);
        emit({.Op = MOpcode::Store,
              .Src1 = Addr,
              .Src2 = Value,
              .Array = Target->getName()});
        return;
      }
      int Value = genExpr(*AS->getRHS());
      int Dst = scalarReg(cast<VarRef>(AS->getLHS())->getName());
      emit({.Op = MOpcode::Mov, .Dst = Dst, .Src1 = Value});
      return;
    }
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(&S);
      int Cond = genExpr(*IS->getCond());
      int ElseLabel = newLabel();
      emit({.Op = MOpcode::BranchZero, .Src1 = Cond, .Label = ElseLabel});
      for (const StmtPtr &Then : IS->getThen())
        genStmt(*Then);
      if (IS->hasElse()) {
        int EndLabel = newLabel();
        emit({.Op = MOpcode::Branch, .Label = EndLabel});
        emitLabel(ElseLabel);
        for (const StmtPtr &Else : IS->getElse())
          genStmt(*Else);
        emitLabel(EndLabel);
      } else {
        emitLabel(ElseLabel);
      }
      return;
    }
    case Stmt::Kind::DoLoop:
      genLoopSkeleton(*cast<DoLoopStmt>(&S));
      return;
    case Stmt::Kind::While:
    case Stmt::Kind::Break:
      // Code generation consumes reduced (DO-only) loop nests; run the
      // loop-nest reducer first.
      throw std::logic_error("code generation over unreduced while/break");
    }
  }

  /// Emits a loop without pipelines (inner loops, conventional mode).
  void genLoopSkeleton(const DoLoopStmt &Loop) {
    assert(Loop.getStep() == 1 && "code generation requires unit step");
    int IV = scalarReg(Loop.getIndVar());
    int Lower = genExpr(*Loop.getLower());
    emit({.Op = MOpcode::Mov, .Dst = IV, .Src1 = Lower});
    int Bound = genExpr(*Loop.getUpper());
    int Head = newLabel();
    int Done = newLabel();
    emitLabel(Head);
    {
      int Cmp = freshReg();
      emit({.Op = MOpcode::CmpLe, .Dst = Cmp, .Src1 = IV, .Src2 = Bound});
      emit({.Op = MOpcode::BranchZero, .Src1 = Cmp, .Label = Done});
    }
    for (const StmtPtr &S : Loop.getBody())
      genStmt(*S);
    int OneReg = emitImm(1);
    emit({.Op = MOpcode::Add, .Dst = IV, .Src1 = IV, .Src2 = OneReg});
    emit({.Op = MOpcode::Branch, .Label = Head});
    emitLabel(Done);
  }

  /// Emits a top-level loop, materializing pipelines when enabled.
  void genTopLevelLoop(const DoLoopStmt &Loop) {
    std::unique_ptr<LoopDataFlow> DF;
    if (Opts.Mode != PipelineMode::None && Loop.getStep() == 1) {
      DF = std::make_unique<LoopDataFlow>(P, Loop,
                                          ProblemSpec::availableValues());
      planPipelines(*DF);
    }

    int IV = scalarReg(Loop.getIndVar());
    int Lower = genExpr(*Loop.getLower());

    // Pipeline initialization: stage k holds the value from k
    // iterations before the first (Fig. 5's preloads). The induction
    // variable register is borrowed to evaluate the shifted subscripts.
    for (Pipeline &Pipe : ActivePipes) {
      for (int64_t K = 1; K < Pipe.Depth; ++K) {
        int KReg = emitImm(K);
        emit({.Op = MOpcode::Sub, .Dst = IV, .Src1 = Lower, .Src2 = KReg});
        int Addr = genAddress(*Pipe.Rep->Ref);
        emit({.Op = MOpcode::Load,
              .Dst = Pipe.BaseReg + static_cast<int>(K),
              .Src1 = Addr,
              .Array = Pipe.Rep->Ref->getName()});
      }
    }

    emit({.Op = MOpcode::Mov, .Dst = IV, .Src1 = Lower});
    int Bound = genExpr(*Loop.getUpper());
    int Head = newLabel();
    int Done = newLabel();
    emitLabel(Head);
    {
      int Cmp = freshReg();
      emit({.Op = MOpcode::CmpLe, .Dst = Cmp, .Src1 = IV, .Src2 = Bound});
      emit({.Op = MOpcode::BranchZero, .Src1 = Cmp, .Label = Done});
    }
    for (const StmtPtr &S : Loop.getBody())
      genStmt(*S);
    progressPipelines();
    int OneReg = emitImm(1);
    emit({.Op = MOpcode::Add, .Dst = IV, .Src1 = IV, .Src2 = OneReg});
    emit({.Op = MOpcode::Branch, .Label = Head});
    emitLabel(Done);
    ActivePipes.clear();
  }

  /// Chooses the pipelines for one analyzed loop (grouped
  /// available-values sources and their reuse points).
  void planPipelines(const LoopDataFlow &DF) {
    const FrameworkInstance &FW = DF.framework();
    const ReferenceUniverse &U = DF.universe();

    std::map<int, Pipeline> ByIdx;
    for (const ReusePair &Pair : DF.reusePairs(RefSelector::Uses)) {
      int Idx = FW.trackedIndexOf(Pair.SourceId);
      if (Idx < 0 || Pair.Distance >= Opts.MaxDepth)
        continue;
      const RefOccurrence &Sink = U.occurrence(Pair.SinkId);
      const RefOccurrence &Source = U.occurrence(Pair.SourceId);
      if (Sink.InSummary || Source.InSummary)
        continue;
      // A sink that is itself a generation site of the group keeps its
      // load (it refreshes stage 0).
      if (FW.trackedIndexOf(Pair.SinkId) == Idx)
        continue;
      Pipeline &Pipe = ByIdx[Idx];
      // Keep the smallest-distance pairing per sink.
      auto It = Pipe.SinkStage.find(Sink.Ref);
      if (It == Pipe.SinkStage.end() || It->second > Pair.Distance)
        Pipe.SinkStage[Sink.Ref] = Pair.Distance;
    }

    // Register budget: keep the highest-priority pipelines (reuse
    // points per stage) that fit.
    if (Opts.MaxPipelineRegisters) {
      std::vector<int> Order;
      for (auto &[Idx, Pipe] : ByIdx)
        if (!Pipe.SinkStage.empty())
          Order.push_back(Idx);
      auto PriorityOf = [&](int Idx) {
        const Pipeline &Pipe = ByIdx[Idx];
        int64_t Delta0 = 0;
        for (const auto &[Ref, Stage] : Pipe.SinkStage)
          Delta0 = std::max(Delta0, Stage);
        return static_cast<double>(Pipe.SinkStage.size()) / (Delta0 + 1);
      };
      std::sort(Order.begin(), Order.end(), [&](int A, int B) {
        return PriorityOf(A) > PriorityOf(B);
      });
      unsigned Budget = Opts.MaxPipelineRegisters;
      for (int Idx : Order) {
        Pipeline &Pipe = ByIdx[Idx];
        int64_t Delta0 = 0;
        for (const auto &[Ref, Stage] : Pipe.SinkStage)
          Delta0 = std::max(Delta0, Stage);
        unsigned Need = Delta0 + 1;
        if (Need <= Budget) {
          Budget -= Need;
          continue;
        }
        Pipe.SinkStage.clear(); // stays in memory
      }
    }

    for (auto &[Idx, Pipe] : ByIdx) {
      if (Pipe.SinkStage.empty())
        continue;
      Pipe.Rep = &FW.getTracked(Idx);
      for (unsigned Id : FW.trackedMembers(Idx)) {
        const RefOccurrence &Member = U.occurrence(Id);
        if (Member.IsDef)
          Pipe.DefMembers.insert(Member.Ref);
        else
          Pipe.UseMembers.insert(Member.Ref);
      }
      int64_t Delta0 = 0;
      for (const auto &[Ref, Stage] : Pipe.SinkStage)
        Delta0 = std::max(Delta0, Stage);
      Pipe.Depth = Delta0 + 1;
      Pipe.BaseReg = NextReg;
      NextReg += Pipe.Depth;
      Result.Notes.push_back(exprToString(*Pipe.Rep->Ref) + ": " +
                             std::to_string(Pipe.Depth) + " stage(s) in r" +
                             std::to_string(Pipe.BaseReg) + "..r" +
                             std::to_string(Pipe.BaseReg + Pipe.Depth - 1));
      ++Result.PipelineCount;
      Result.TotalStages += Pipe.Depth;
      ActivePipes.push_back(std::move(Pipe));
    }
  }

  /// Emits the end-of-iteration pipeline progression.
  void progressPipelines() {
    for (Pipeline &Pipe : ActivePipes) {
      if (Pipe.Depth < 2)
        continue;
      if (Opts.Mode == PipelineMode::Rotate) {
        emit({.Op = MOpcode::Rotate,
              .Src1 = static_cast<int>(Pipe.Depth),
              .Imm = Pipe.BaseReg});
        continue;
      }
      for (int64_t K = Pipe.Depth - 1; K >= 1; --K)
        emit({.Op = MOpcode::Mov,
              .Dst = Pipe.BaseReg + static_cast<int>(K),
              .Src1 = Pipe.BaseReg + static_cast<int>(K - 1)});
    }
  }

  const Program &P;
  const CodeGenOptions &Opts;
  CodeGenResult Result;
  std::vector<Pipeline> ActivePipes;
  int NextReg = 0;
  int NextLabel = 0;
};

} // namespace

CodeGenResult ardf::generateLoopCode(const Program &P,
                                     const CodeGenOptions &Opts) {
  return CodeGen(P, Opts).run();
}
