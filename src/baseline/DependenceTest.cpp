//===- baseline/DependenceTest.cpp - Classic GCD dependence test ---------===//

#include "baseline/DependenceTest.h"

#include <numeric>
#include <utility>

using namespace ardf;

ClassicDepVerdict ardf::classicDependenceTest(int64_t A1, int64_t B1,
                                              int64_t A2, int64_t B2,
                                              int64_t UB) {
  ClassicDepVerdict V;
  // Solve A1*x - A2*y == B2 - B1 for iterations x, y in [1, UB].
  int64_t Diff = B2 - B1;

  if (A1 == 0 && A2 == 0) {
    V.MayDepend = Diff == 0;
    if (V.MayDepend)
      V.Distance = 0;
    return V;
  }

  // GCD divisibility: a solution over the integers exists iff
  // gcd(A1, A2) divides the constant difference.
  int64_t G = std::gcd(A1 < 0 ? -A1 : A1, A2 < 0 ? -A2 : A2);
  if (G != 0 && Diff % G != 0) {
    V.MayDepend = false;
    return V;
  }

  // Consistent pair: constant distance delta with A1*(i - delta) + B1 ==
  // A2*i + B2 requires A1 == A2 and delta == (B1 - B2) / A1.
  if (A1 == A2 && A1 != 0 && (B1 - B2) % A1 == 0) {
    int64_t Delta = (B1 - B2) / A1;
    // Bounds: the dependence is realizable only within the iteration
    // space.
    if (UB >= 0 && (Delta >= UB || Delta <= -UB)) {
      V.MayDepend = false;
      return V;
    }
    V.MayDepend = true;
    V.Distance = Delta;
    return V;
  }

  // Inconsistent pair (different strides): a crude Banerjee-style range
  // check over [1, UB] when the bound is known.
  if (UB >= 0) {
    auto Range = [&](int64_t A, int64_t B) {
      int64_t Lo = A >= 0 ? A * 1 + B : A * UB + B;
      int64_t Hi = A >= 0 ? A * UB + B : A * 1 + B;
      return std::pair<int64_t, int64_t>(Lo, Hi);
    };
    auto [Lo1, Hi1] = Range(A1, B1);
    auto [Lo2, Hi2] = Range(A2, B2);
    if (Hi1 < Lo2 || Hi2 < Lo1) {
      V.MayDepend = false;
      return V;
    }
  }
  V.MayDepend = true;
  return V;
}
