//===- baseline/NaiveSolver.h - Unordered worklist solver ------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conventional FIFO-worklist fixed point solver over the same
/// framework instances. It computes the identical solution but ignores
/// the structure the paper exploits (reverse postorder + weak
/// idempotence of the exit function), so its node-visit count is the
/// baseline against which the 3N / 2N claims of Section 3.2 are
/// benchmarked. It can also start a may-problem from the pessimistic
/// "no instances" guess to demonstrate the slow convergence the paper
/// warns about (up to UB - 1 passes; Section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_BASELINE_NAIVESOLVER_H
#define ARDF_BASELINE_NAIVESOLVER_H

#include "dataflow/Framework.h"

namespace ardf {

/// Options for the naive solver.
struct NaiveSolverOptions {
  /// Safety valve; the solver reports non-convergence past this.
  uint64_t MaxNodeVisits = 10000000;

  /// Seed the worklist in reverse working order (pessimal for forward
  /// propagation) instead of working order.
  bool PessimalSeedOrder = true;

  /// For may-problems: ignore the paper's "all instances" initial guess
  /// and start from "no instances" — the natural-but-slow choice whose
  /// convergence needs up to UB - 1 rounds of the exit increment.
  bool PessimisticMayInit = false;
};

/// Solves \p FW with a FIFO worklist. NodeVisits counts every node
/// recomputation; Converged is false when MaxNodeVisits was exhausted.
SolveResult solveNaiveWorklist(const FrameworkInstance &FW,
                               const NaiveSolverOptions &Opts = {});

} // namespace ardf

#endif // ARDF_BASELINE_NAIVESOLVER_H
