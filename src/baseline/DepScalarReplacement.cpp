//===- baseline/DepScalarReplacement.cpp - CCK-style baseline ------------===//

#include "baseline/DepScalarReplacement.h"

#include "affine/AffineAccess.h"
#include "baseline/DependenceTest.h"
#include "ir/PrettyPrinter.h"

#include <optional>
#include <vector>

using namespace ardf;

namespace {

/// A reference with its integer affine view and position in body order.
struct FlatRef {
  const ArrayRefExpr *Ref;
  bool IsDef;
  int64_t A;
  int64_t B;
  unsigned Position;
};

} // namespace

BaselineSRResult ardf::findReuseDependenceBased(const Program &P,
                                                const DoLoopStmt &Loop,
                                                int64_t MaxDistance) {
  BaselineSRResult Result;

  // Conventional scalar replacement targets innermost loops with
  // straight-line bodies; conditional control flow defeats its
  // dependence summaries.
  for (const StmtPtr &S : Loop.getBody()) {
    if (!isa<AssignStmt>(S.get())) {
      Result.BailedOnControlFlow = true;
      return Result;
    }
  }

  // Flatten the references in execution order.
  std::vector<FlatRef> Refs;
  unsigned Position = 0;
  for (const StmtPtr &S : Loop.getBody()) {
    const auto *AS = cast<AssignStmt>(S.get());
    bool Bad = false;
    auto Note = [&](const Expr &E, bool IsDef) {
      forEachSubExpr(E, [&](const Expr &Sub) {
        const auto *AR = dyn_cast<ArrayRefExpr>(&Sub);
        if (!AR)
          return;
        std::optional<AffineAccess> Acc =
            makeAffineAccess(*AR, P, Loop.getIndVar());
        if (!Acc || !Acc->A.isConstant() || !Acc->B.isConstant()) {
          Bad = true;
          return;
        }
        Refs.push_back(FlatRef{AR, IsDef, Acc->A.getConstant(),
                               Acc->B.getConstant(), Position++});
      });
    };
    Note(*AS->getRHS(), /*IsDef=*/false);
    if (const ArrayRefExpr *Target = AS->getArrayTarget()) {
      for (const ExprPtr &Sub : Target->subscripts())
        Note(*Sub, /*IsDef=*/false);
      Note(*Target, /*IsDef=*/true);
    }
    if (Bad) {
      Result.BailedOnSubscripts = true;
      return Result;
    }
  }

  int64_t UB = Loop.getConstantTripCount();

  // For every (generator, use) pair with a consistent dependence at
  // distance delta >= 0, the value is promotable unless some definition
  // writes the cell in between (checked with the same dependence
  // algebra; everything is unconditional here).
  for (const FlatRef &Src : Refs) {
    for (const FlatRef &Snk : Refs) {
      if (Snk.IsDef || Src.Ref == Snk.Ref)
        continue;
      if (Src.Ref->getName() != Snk.Ref->getName())
        continue;
      ClassicDepVerdict V =
          classicDependenceTest(Src.A, Src.B, Snk.A, Snk.B, UB);
      if (!V.MayDepend || !V.Distance)
        continue;
      int64_t Delta = *V.Distance;
      if (Delta < 0 || Delta > MaxDistance)
        continue;
      if (Delta == 0 && Src.Position >= Snk.Position)
        continue;

      // Kill scan: a def writing the sink's cell between the source's
      // instance and the sink invalidates promotion.
      bool Killed = false;
      for (const FlatRef &Killer : Refs) {
        if (!Killer.IsDef || Killer.Ref == Src.Ref)
          continue;
        if (Killer.Ref->getName() != Src.Ref->getName())
          continue;
        ClassicDepVerdict KV =
            classicDependenceTest(Killer.A, Killer.B, Snk.A, Snk.B, UB);
        if (!KV.MayDepend || !KV.Distance)
          continue; // inconsistent killers defeat promotion too
        int64_t KD = *KV.Distance;
        bool InWindow =
            KD > 0 ? KD < Delta ||
                         (KD == Delta && Killer.Position > Src.Position)
                   : KD == 0 && Delta > 0 && Killer.Position < Snk.Position;
        // Same-iteration special case for delta == 0 windows.
        if (Delta == 0)
          InWindow = KD == 0 && Killer.Position > Src.Position &&
                     Killer.Position < Snk.Position;
        if (InWindow) {
          Killed = true;
          break;
        }
      }
      if (!Killed)
        Result.Reuses.push_back(BaselineReuse{exprToString(*Src.Ref),
                                              exprToString(*Snk.Ref),
                                              Delta});
    }
  }
  return Result;
}
