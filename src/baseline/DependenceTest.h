//===- baseline/DependenceTest.h - Classic GCD dependence test -*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conventional, flow-INsensitive dependence machinery the paper
/// positions itself against (Section 1: "conventional data dependence
/// information is inadequate for fine-grained optimizations"): a GCD
/// divisibility test plus single-loop bounds check for one-dimensional
/// affine reference pairs, and the constant dependence distance for
/// consistent pairs. No control flow, no kill information.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_BASELINE_DEPENDENCETEST_H
#define ARDF_BASELINE_DEPENDENCETEST_H

#include <cstdint>
#include <optional>

namespace ardf {

/// Verdict of the classic test for references X[A1*i + B1] and
/// X[A2*i + B2] over i in [1, UB].
struct ClassicDepVerdict {
  /// May the two references touch a common cell at all?
  bool MayDepend = false;

  /// For consistent pairs (A1 == A2): the constant iteration distance
  /// (positive: the first reference's instance precedes).
  std::optional<int64_t> Distance;
};

/// Runs GCD + bounds on the pair. \p UB < 0 means unknown (bounds step
/// skipped).
ClassicDepVerdict classicDependenceTest(int64_t A1, int64_t B1, int64_t A2,
                                        int64_t B2, int64_t UB);

} // namespace ardf

#endif // ARDF_BASELINE_DEPENDENCETEST_H
