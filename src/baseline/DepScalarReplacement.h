//===- baseline/DepScalarReplacement.h - CCK-style baseline ----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison baseline of Section 5: scalar replacement driven by
/// conventional data dependence information in the style of Callahan,
/// Carr & Kennedy [PLDI'90]. It detects register-promotable reuse from
/// consistent dependences (classic GCD machinery, no data flow), and —
/// this is the documented weakness the paper exploits — it gives up in
/// the presence of conditional control flow, where dependence summaries
/// cannot distinguish must-reuse from may-reuse.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_BASELINE_DEPSCALARREPLACEMENT_H
#define ARDF_BASELINE_DEPSCALARREPLACEMENT_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace ardf {

/// One reuse opportunity the baseline found.
struct BaselineReuse {
  std::string SourceText; ///< generating reference, e.g. "A[i + 2]"
  std::string SinkText;   ///< reusing reference
  int64_t Distance;
};

/// Result of the dependence-based analysis for one loop.
struct BaselineSRResult {
  std::vector<BaselineReuse> Reuses;

  /// True when the loop contains conditional control flow and the
  /// baseline refused to reason about reuse.
  bool BailedOnControlFlow = false;

  /// True when a non-affine subscript made the loop unanalyzable.
  bool BailedOnSubscripts = false;
};

/// Runs dependence-based reuse detection on \p Loop.
BaselineSRResult findReuseDependenceBased(const Program &P,
                                          const DoLoopStmt &Loop,
                                          int64_t MaxDistance = 8);

} // namespace ardf

#endif // ARDF_BASELINE_DEPSCALARREPLACEMENT_H
