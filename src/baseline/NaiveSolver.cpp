//===- baseline/NaiveSolver.cpp - Unordered worklist solver --------------===//

#include "baseline/NaiveSolver.h"

#include <deque>

using namespace ardf;

SolveResult ardf::solveNaiveWorklist(const FrameworkInstance &FW,
                                     const NaiveSolverOptions &Opts) {
  const LoopFlowGraph &Graph = FW.getGraph();
  unsigned NumNodes = Graph.getNumNodes();
  unsigned NumTracked = FW.getNumTracked();

  SolveResult Result;
  Result.In.reset(NumNodes, NumTracked);
  Result.Out.reset(NumNodes, NumTracked);

  auto meetOverPreds = [&](unsigned Node, unsigned Idx) {
    const std::vector<unsigned> &Preds = FW.workingPreds(Node);
    DistanceValue V = Result.Out[Preds.front()][Idx];
    for (unsigned I = 1; I < Preds.size(); ++I)
      V = FW.meet(V, Result.Out[Preds[I]][Idx]);
    return V;
  };

  // Initialization: the prescribed initial guess is part of the
  // framework definition and is shared with the structured solver; only
  // the iteration strategy differs.
  if (FW.getSpec().isMust()) {
    unsigned Source = FW.workingOrder().front();
    for (unsigned Node : FW.workingOrder()) {
      ++Result.NodeVisits;
      for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
        DistanceValue In = Node == Source ? DistanceValue::noInstance()
                                          : meetOverPreds(Node, Idx);
        Result.In[Node][Idx] = In;
        Result.Out[Node][Idx] = FW.generatesAt(Idx, Node)
                                    ? DistanceValue::allInstances()
                                    : In;
      }
    }
  } else {
    DistanceValue Init = Opts.PessimisticMayInit
                             ? DistanceValue::noInstance()
                             : DistanceValue::allInstances();
    for (unsigned Node = 0; Node != NumNodes; ++Node)
      for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
        Result.In[Node][Idx] = Init;
        Result.Out[Node][Idx] = Init;
      }
  }

  // FIFO worklist.
  std::deque<unsigned> Worklist;
  std::vector<char> Queued(NumNodes, 1);
  if (Opts.PessimalSeedOrder)
    Worklist.assign(FW.workingOrder().rbegin(), FW.workingOrder().rend());
  else
    Worklist.assign(FW.workingOrder().begin(), FW.workingOrder().end());

  std::vector<std::vector<unsigned>> WorkingSuccs(NumNodes);
  for (unsigned Node = 0; Node != NumNodes; ++Node)
    for (unsigned Pred : FW.workingPreds(Node))
      WorkingSuccs[Pred].push_back(Node);

  Result.Converged = true;
  while (!Worklist.empty()) {
    if (Result.NodeVisits >= Opts.MaxNodeVisits) {
      Result.Converged = false;
      break;
    }
    unsigned Node = Worklist.front();
    Worklist.pop_front();
    Queued[Node] = 0;
    ++Result.NodeVisits;

    bool Changed = false;
    for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
      DistanceValue In = meetOverPreds(Node, Idx);
      DistanceValue Out = FW.applyNode(Node, Idx, In);
      if (In != Result.In[Node][Idx] || Out != Result.Out[Node][Idx])
        Changed = true;
      Result.In[Node][Idx] = In;
      Result.Out[Node][Idx] = Out;
    }
    if (!Changed)
      continue;
    for (unsigned Succ : WorkingSuccs[Node]) {
      if (!Queued[Succ]) {
        Queued[Succ] = 1;
        Worklist.push_back(Succ);
      }
    }
  }
  return Result;
}
