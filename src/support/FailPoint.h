//===- support/FailPoint.h - Deterministic fault injection -----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named failpoints for deterministic fault injection. A failpoint is a
/// call site identified by a dotted literal name ("driver.loop",
/// "solver.pass", ...) that tests or the environment can arm with an
/// action:
///
///   Throw  - raise FailPointError at the site,
///   Stall  - sleep at the site (deadline-budget testing),
///   Breach - make the site report a forced budget breach, which the
///            solver maps to a degraded-but-sound result.
///
/// Arming is keyed by exact site name plus an optional 1-based fire
/// ordinal: `driver.loop@3:throw` fires on the third evaluation only,
/// `driver.loop:throw` on every evaluation. The ARDF_FAILPOINTS
/// environment variable (comma-separated specs, parsed once at static
/// initialization) arms failpoints in any process without code changes:
///
///   ARDF_FAILPOINTS=driver.loop@3:throw,lint.check:stall=50 ardf-lint f.arf
///
/// The zero-overhead-off contract matches the telemetry layer: when no
/// failpoint is armed anywhere in the process, evaluate() is a single
/// relaxed atomic load and a predictable branch -- no lock, no lookup,
/// no allocation (the alloc-counting suite covers the solver paths).
/// The slow path takes a global mutex; armed runs are for tests and
/// drills, not production hot loops.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_SUPPORT_FAILPOINT_H
#define ARDF_SUPPORT_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ardf {
namespace failpoint {

/// What an armed failpoint does when it fires.
enum class Action : uint8_t {
  Throw, ///< Throw FailPointError from the site.
  Stall, ///< Sleep StallMs milliseconds, then continue normally.
  Breach ///< Report Fired::Breach (a forced budget breach) to the site.
};

/// The exception Throw-armed failpoints raise. Sites never catch it
/// specially; it exercises the same isolation boundaries as any
/// std::exception escaping a subsystem.
class FailPointError : public std::runtime_error {
public:
  explicit FailPointError(const std::string &Site)
      : std::runtime_error("failpoint '" + Site + "' fired"), Site(Site) {}
  const std::string &site() const { return Site; }

private:
  std::string Site;
};

/// What evaluate() tells the call site. Only Breach-armed failpoints
/// produce Breach; Throw never returns and Stall returns No after the
/// sleep.
enum class Fired : uint8_t { No, Breach };

namespace detail {
/// Process-wide count of armed failpoints; nonzero iff the registry has
/// any entry. The only state the fast path touches.
extern std::atomic<uint32_t> ArmedCount;
Fired evaluateSlow(const char *Site);
} // namespace detail

/// True when any failpoint is armed in the process (one relaxed load).
inline bool anyArmed() {
  return detail::ArmedCount.load(std::memory_order_relaxed) != 0;
}

/// The instrumentation site: a no-op unless some failpoint is armed.
/// \p Site must be a literal dotted name from the catalog (DESIGN.md
/// section 11).
inline Fired evaluate(const char *Site) {
  if (!anyArmed())
    return Fired::No;
  return detail::evaluateSlow(Site);
}

/// Arms \p Site with \p A. \p FireAt selects the 1-based evaluation the
/// failpoint fires on (0 = every evaluation). Re-arming a site replaces
/// its entry and resets its counters.
void arm(const std::string &Site, Action A, uint64_t FireAt = 0,
         uint64_t StallMs = 100);

/// Disarms \p Site; returns false if it was not armed.
bool disarm(const std::string &Site);

/// Disarms everything (test teardown).
void disarmAll();

/// Times \p Site actually fired since it was (re-)armed; 0 when unarmed.
uint64_t firedCount(const std::string &Site);

/// Parses and arms a spec list: `site[@N]:action[,site[@N]:action...]`
/// where action is `throw`, `breach`, or `stall[=MS]`. Returns false
/// (arming nothing further) on malformed input, with a human-readable
/// reason in \p Error if non-null. The format of ARDF_FAILPOINTS.
bool armFromSpec(const std::string &Spec, std::string *Error = nullptr);

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor.
class ScopedFailPoint {
public:
  ScopedFailPoint(std::string Site, Action A, uint64_t FireAt = 0,
                  uint64_t StallMs = 100)
      : Site(std::move(Site)) {
    arm(this->Site, A, FireAt, StallMs);
  }
  ~ScopedFailPoint() { disarm(Site); }
  ScopedFailPoint(const ScopedFailPoint &) = delete;
  ScopedFailPoint &operator=(const ScopedFailPoint &) = delete;

private:
  std::string Site;
};

} // namespace failpoint
} // namespace ardf

#endif // ARDF_SUPPORT_FAILPOINT_H
