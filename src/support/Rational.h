//===- support/Rational.h - Exact rational arithmetic ----------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa,
// "A Practical Data Flow Framework for Array Reference Analysis and its
// Use in Optimizations", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over int64, used by the preserve-constant
/// computation of the data flow framework (Section 3.1.2 of the paper),
/// where the kill-distance function k(i) = (P*i + Q) / R must be evaluated
/// without rounding error.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_SUPPORT_RATIONAL_H
#define ARDF_SUPPORT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <iosfwd>

namespace ardf {

/// An exact rational number Num/Den with Den > 0 and gcd(Num, Den) == 1.
///
/// Arithmetic asserts on overflow-free small operands; the framework only
/// ever manipulates subscript coefficients and iteration counts, which are
/// far below the int64 range.
class Rational {
public:
  /// Constructs the rational zero.
  Rational() : Num(0), Den(1) {}

  /// Constructs the integer \p N.
  Rational(int64_t N) : Num(N), Den(1) {}

  /// Constructs \p N / \p D; \p D must be nonzero.
  Rational(int64_t N, int64_t D);

  int64_t numerator() const { return Num; }
  int64_t denominator() const { return Den; }

  /// Returns true if this rational is an integer.
  bool isInteger() const { return Den == 1; }

  /// Returns the largest integer <= this value.
  int64_t floor() const;

  /// Returns the smallest integer >= this value.
  int64_t ceil() const;

  /// Returns the integer value; asserts unless isInteger().
  int64_t asInteger() const {
    assert(isInteger() && "rational is not an integer");
    return Num;
  }

  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  Rational operator/(const Rational &RHS) const;
  Rational operator-() const { return Rational(-Num, Den); }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;
  bool operator<=(const Rational &RHS) const { return !(RHS < *this); }
  bool operator>(const Rational &RHS) const { return RHS < *this; }
  bool operator>=(const Rational &RHS) const { return !(*this < RHS); }

private:
  int64_t Num;
  int64_t Den;
};

/// Prints "Num/Den" (or just "Num" for integers).
std::ostream &operator<<(std::ostream &OS, const Rational &R);

} // namespace ardf

#endif // ARDF_SUPPORT_RATIONAL_H
