//===- support/Rational.cpp - Exact rational arithmetic ------------------===//

#include "support/Rational.h"

#include <numeric>
#include <ostream>

using namespace ardf;

Rational::Rational(int64_t N, int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  int64_t G = std::gcd(N < 0 ? -N : N, D);
  if (G == 0)
    G = 1;
  Num = N / G;
  Den = D / G;
}

int64_t Rational::floor() const {
  if (Num >= 0 || Num % Den == 0)
    return Num / Den;
  return Num / Den - 1;
}

int64_t Rational::ceil() const {
  if (Num <= 0 || Num % Den == 0)
    return Num / Den;
  return Num / Den + 1;
}

Rational Rational::operator+(const Rational &RHS) const {
  return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  return Rational(Num * RHS.Num, Den * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(RHS.Num != 0 && "rational division by zero");
  return Rational(Num * RHS.Den, Den * RHS.Num);
}

bool Rational::operator<(const Rational &RHS) const {
  return Num * RHS.Den < RHS.Num * Den;
}

std::ostream &ardf::operator<<(std::ostream &OS, const Rational &R) {
  OS << R.numerator();
  if (!R.isInteger())
    OS << '/' << R.denominator();
  return OS;
}
