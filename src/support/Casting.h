//===- support/Casting.h - isa/cast/dyn_cast templates ---------*- C++ -*-===//
//
// Part of ardf. LLVM-style opt-in RTTI: class hierarchies expose a Kind
// enumeration and a static classof(const Base*), and these templates
// provide checked downcasts without compiler RTTI.
//
//===----------------------------------------------------------------------===//

#ifndef ARDF_SUPPORT_CASTING_H
#define ARDF_SUPPORT_CASTING_H

#include <cassert>

namespace ardf {

/// Returns true if \p Val is an instance of To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace ardf

#endif // ARDF_SUPPORT_CASTING_H
