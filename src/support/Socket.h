//===- support/Socket.h - Unix-socket and line-IO helpers ------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal Unix-domain socket plumbing for the analysis daemon: a
/// listener that owns (and unlinks) its socket path, a client connector,
/// and newline-delimited line IO over raw file descriptors. The line
/// reader enforces a byte cap *while reading*: an over-long line is
/// consumed up to its newline and reported as TooLong, so one oversized
/// request costs bounded memory and the connection stays usable -- the
/// admission-control half of the daemon's robustness envelope lives
/// here.
///
/// All writes use MSG_NOSIGNAL (with a process-wide SIGPIPE ignore as
/// belt-and-braces for pipes), so a client that disconnects mid-response
/// surfaces as a write error on that connection, never a fatal signal.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_SUPPORT_SOCKET_H
#define ARDF_SUPPORT_SOCKET_H

#include <cstdint>
#include <string>
#include <string_view>

namespace ardf {
namespace net {

/// Makes SIGPIPE harmless for the process (idempotent). Every daemon
/// entry point calls this before serving; writeLine additionally sends
/// with MSG_NOSIGNAL.
void ignoreSigpipe();

/// Outcome of LineReader::readLine.
enum class LineStatus : uint8_t {
  Ok,      ///< one line delivered (newline stripped)
  TooLong, ///< line exceeded the cap; drained to its newline and dropped
  Eof,     ///< orderly end of stream (no partial line pending)
  Error,   ///< read failed; errno text in the reader's error()
};

/// Buffered newline-delimited reader over a file descriptor (socket,
/// pipe, or stdin). Not thread-safe; one reader per connection.
class LineReader {
public:
  explicit LineReader(int Fd) : Fd(Fd) {}

  /// Reads the next line into \p Line (newline stripped; a final
  /// unterminated line is delivered at EOF). Lines longer than
  /// \p MaxBytes (0 = uncapped) are discarded as they stream in and
  /// reported TooLong -- the reader never buffers more than MaxBytes
  /// plus one read chunk.
  LineStatus readLine(std::string &Line, uint64_t MaxBytes = 0);

  /// The errno text of the last Error outcome.
  const std::string &error() const { return Err; }

private:
  int Fd;
  std::string Buf;
  size_t Pos = 0;
  bool SawEof = false;
  std::string Err;
};

/// Writes \p Line plus a trailing newline atomically-enough for NDJSON
/// (one full write loop; callers serialize per connection). Returns
/// false on a write error (e.g. the peer disconnected mid-response),
/// with the errno text in \p Error if non-null.
bool writeLine(int Fd, std::string_view Line, std::string *Error = nullptr);

/// A listening Unix-domain socket bound to a filesystem path. The path
/// is unlinked on close, and a stale path from a dead prior daemon is
/// unlinked before bind.
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener() { close(); }
  UnixListener(const UnixListener &) = delete;
  UnixListener &operator=(const UnixListener &) = delete;

  /// Binds and listens on \p Path. Returns false with the reason in
  /// \p Error (errno text included) on failure.
  bool listen(const std::string &Path, std::string &Error, int Backlog = 16);

  /// Accepts one connection; returns the connection fd, or -1 on error
  /// (including close() from another thread, the shutdown path).
  int accept();

  /// Closes the listening socket and unlinks the path. Safe to call
  /// from another thread to break a blocking accept().
  void close();

  bool listening() const { return Fd >= 0; }
  const std::string &path() const { return Path; }

private:
  int Fd = -1;
  std::string Path;
};

/// Connects to the Unix-domain socket at \p Path; returns the fd, or -1
/// with the errno text in \p Error.
int connectUnix(const std::string &Path, std::string &Error);

/// Closes a connection fd from connectUnix/UnixListener::accept.
void closeFd(int Fd);

} // namespace net
} // namespace ardf

#endif // ARDF_SUPPORT_SOCKET_H
