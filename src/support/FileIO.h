//===- support/FileIO.h - Robust input-file reading -------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared input reading for the CLI tools. A plain ifstream-slurp treats
/// a directory as an empty readable file and happily loads a
/// multi-gigabyte input into memory; readInputFile classifies those
/// failure modes up front so every tool can report one precise line and
/// exit 2 instead of silently analyzing nothing (or dying on bad_alloc).
/// Failed reads carry the OS errno text (strerror_r), so daemon logs and
/// CLI exit-2 paths say *why* the input was rejected, not just that it
/// was.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_SUPPORT_FILEIO_H
#define ARDF_SUPPORT_FILEIO_H

#include <cstdint>
#include <string>

namespace ardf {
namespace io {

/// Outcome of readInputFile. Anything but Ok leaves Out untouched.
enum class ReadStatus : uint8_t {
  Ok,
  NotFound,   ///< path does not exist
  NotRegular, ///< path exists but is a directory/socket/device
  TooLarge,   ///< regular file, but larger than the caller's cap
  ReadError,  ///< open or read failed (permissions, I/O error)
};

/// Default per-file size cap for tool inputs (a .arf program measured in
/// tens of megabytes is an input-handling bug, not a workload).
inline constexpr uint64_t DefaultMaxInputBytes = 64ull << 20;

/// The thread-safe strerror_r text of \p Err ("No such file or
/// directory", ...); never empty.
std::string errnoText(int Err);

/// Reads the regular file at Path into Out, refusing non-files and
/// anything over MaxBytes (0 means uncapped). A non-null \p Detail
/// receives the OS-level reason (errno text) for NotFound and ReadError
/// outcomes, and is cleared otherwise.
ReadStatus readInputFile(const std::string &Path, std::string &Out,
                         uint64_t MaxBytes = DefaultMaxInputBytes,
                         std::string *Detail = nullptr);

/// One-line human description of a failed read, e.g.
/// "'build' is not a regular file". A non-empty \p Detail (the errno
/// text readInputFile reported) is appended as ": <detail>".
std::string describeReadError(ReadStatus Status, const std::string &Path,
                              uint64_t MaxBytes = DefaultMaxInputBytes,
                              const std::string &Detail = std::string());

} // namespace io
} // namespace ardf

#endif // ARDF_SUPPORT_FILEIO_H
