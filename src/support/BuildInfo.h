//===- support/BuildInfo.h - Library build-type introspection --*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reports how libardf itself was compiled. Benchmark binaries embed
/// this in their JSON context so committed snapshots prove they were
/// measured against an optimized library: Google Benchmark's own
/// "library_build_type" field describes how *libbenchmark* was built
/// (the distro package ships an assertion-enabled one, so that field
/// reads "debug" even in a Release tree) and must not be used as a
/// guard for our numbers.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_SUPPORT_BUILDINFO_H
#define ARDF_SUPPORT_BUILDINFO_H

#include <string>

namespace ardf {

/// "release" when the libardf translation units were compiled with
/// optimization and without assertions (NDEBUG), "debug" otherwise.
/// Evaluated at library compile time, so it describes the .a/.so the
/// caller actually linked, not the caller's own flags.
const char *libraryBuildType();

/// The shared --version line of the CLI tools, e.g.
/// "ardf-lint (ardf) build=release". One helper so every tool reports
/// the library's build type the same way (see libraryBuildType for why
/// the library's own flags are the honest source).
std::string toolVersionLine(const char *Tool);

} // namespace ardf

#endif // ARDF_SUPPORT_BUILDINFO_H
