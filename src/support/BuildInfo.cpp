//===- support/BuildInfo.cpp - Library build-type introspection ----------===//

#include "support/BuildInfo.h"

const char *ardf::libraryBuildType() {
#if defined(NDEBUG) && defined(__OPTIMIZE__)
  return "release";
#else
  return "debug";
#endif
}

std::string ardf::toolVersionLine(const char *Tool) {
  std::string Line = Tool;
  Line += " (ardf) build=";
  Line += libraryBuildType();
  return Line;
}
