//===- support/FileIO.cpp - Robust input-file reading ---------------------===//

#include "support/FileIO.h"

#include <filesystem>
#include <fstream>

using namespace ardf;
using namespace ardf::io;

ReadStatus io::readInputFile(const std::string &Path, std::string &Out,
                             uint64_t MaxBytes) {
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::file_status St = fs::status(Path, EC);
  if (EC || St.type() == fs::file_type::not_found)
    return ReadStatus::NotFound;
  if (St.type() != fs::file_type::regular)
    return ReadStatus::NotRegular;
  uint64_t Size = fs::file_size(Path, EC);
  if (EC)
    return ReadStatus::ReadError;
  if (MaxBytes != 0 && Size > MaxBytes)
    return ReadStatus::TooLarge;

  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return ReadStatus::ReadError;
  std::string Text(Size, '\0');
  In.read(Text.data(), static_cast<std::streamsize>(Size));
  if (static_cast<uint64_t>(In.gcount()) != Size)
    return ReadStatus::ReadError;
  Out = std::move(Text);
  return ReadStatus::Ok;
}

std::string io::describeReadError(ReadStatus Status, const std::string &Path,
                                  uint64_t MaxBytes) {
  switch (Status) {
  case ReadStatus::Ok:
    return "'" + Path + "' read successfully";
  case ReadStatus::NotFound:
    return "no such file '" + Path + "'";
  case ReadStatus::NotRegular:
    return "'" + Path + "' is not a regular file";
  case ReadStatus::TooLarge:
    return "'" + Path + "' exceeds the input size cap of " +
           std::to_string(MaxBytes) +
           " bytes (raise with --max-input-bytes)";
  case ReadStatus::ReadError:
    return "cannot read '" + Path + "'";
  }
  return "unknown read failure for '" + Path + "'";
}
