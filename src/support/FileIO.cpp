//===- support/FileIO.cpp - Robust input-file reading ---------------------===//

#include "support/FileIO.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

using namespace ardf;
using namespace ardf::io;

namespace {

// strerror_r has two signatures: the GNU one returns the message
// pointer (possibly static storage), the XSI one fills the buffer and
// returns int. Overloading on the actual return type picks the right
// reading without a feature-macro guess.
inline std::string takeStrerror(char *Ret, char *) { return Ret; }
inline std::string takeStrerror(int, char *Buf) { return Buf; }

void setDetail(std::string *Detail, int Err) {
  if (Detail)
    *Detail = errnoText(Err);
}

} // namespace

std::string io::errnoText(int Err) {
  char Buf[256] = {};
  std::string Text = takeStrerror(strerror_r(Err, Buf, sizeof(Buf)), Buf);
  if (Text.empty())
    Text = "errno " + std::to_string(Err);
  return Text;
}

ReadStatus io::readInputFile(const std::string &Path, std::string &Out,
                             uint64_t MaxBytes, std::string *Detail) {
  namespace fs = std::filesystem;
  if (Detail)
    Detail->clear();
  std::error_code EC;
  fs::file_status St = fs::status(Path, EC);
  if (EC || St.type() == fs::file_type::not_found) {
    setDetail(Detail, EC.value() != 0 ? EC.value() : ENOENT);
    return ReadStatus::NotFound;
  }
  if (St.type() != fs::file_type::regular)
    return ReadStatus::NotRegular;
  uint64_t Size = fs::file_size(Path, EC);
  if (EC) {
    setDetail(Detail, EC.value());
    return ReadStatus::ReadError;
  }
  if (MaxBytes != 0 && Size > MaxBytes)
    return ReadStatus::TooLarge;

  errno = 0;
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    setDetail(Detail, errno != 0 ? errno : EIO);
    return ReadStatus::ReadError;
  }
  std::string Text(Size, '\0');
  In.read(Text.data(), static_cast<std::streamsize>(Size));
  if (static_cast<uint64_t>(In.gcount()) != Size) {
    setDetail(Detail, errno != 0 ? errno : EIO);
    return ReadStatus::ReadError;
  }
  Out = std::move(Text);
  return ReadStatus::Ok;
}

std::string io::describeReadError(ReadStatus Status, const std::string &Path,
                                  uint64_t MaxBytes,
                                  const std::string &Detail) {
  std::string Msg;
  switch (Status) {
  case ReadStatus::Ok:
    Msg = "'" + Path + "' read successfully";
    break;
  case ReadStatus::NotFound:
    Msg = "no such file '" + Path + "'";
    break;
  case ReadStatus::NotRegular:
    Msg = "'" + Path + "' is not a regular file";
    break;
  case ReadStatus::TooLarge:
    Msg = "'" + Path + "' exceeds the input size cap of " +
          std::to_string(MaxBytes) + " bytes (raise with --max-input-bytes)";
    break;
  case ReadStatus::ReadError:
    Msg = "cannot read '" + Path + "'";
    break;
  }
  if (!Detail.empty() && Status != ReadStatus::Ok)
    Msg += ": " + Detail;
  return Msg;
}
