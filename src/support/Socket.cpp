//===- support/Socket.cpp - Unix-socket and line-IO helpers ---------------===//

#include "support/Socket.h"

#include "support/FileIO.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ardf;
using namespace ardf::net;

void net::ignoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

LineStatus LineReader::readLine(std::string &Line, uint64_t MaxBytes) {
  Line.clear();
  bool Overflow = false;
  for (;;) {
    // Scan what is buffered for a newline.
    size_t Nl = Buf.find('\n', Pos);
    if (Nl != std::string::npos) {
      if (!Overflow)
        Line.assign(Buf, Pos, Nl - Pos);
      Pos = Nl + 1;
      // Compact once the consumed prefix dominates the buffer.
      if (Pos > 4096 && Pos * 2 > Buf.size()) {
        Buf.erase(0, Pos);
        Pos = 0;
      }
      if (Overflow || (MaxBytes != 0 && Line.size() > MaxBytes)) {
        Line.clear();
        return LineStatus::TooLong;
      }
      return LineStatus::Ok;
    }
    // No newline buffered. Enforce the cap before reading more: drop
    // the partial line and switch to drain mode until its newline.
    if (!Overflow && MaxBytes != 0 && Buf.size() - Pos > MaxBytes) {
      Overflow = true;
      Buf.clear();
      Pos = 0;
    }
    if (SawEof) {
      if (Overflow)
        return LineStatus::TooLong;
      if (Pos < Buf.size()) {
        // Final unterminated line.
        Line.assign(Buf, Pos, Buf.size() - Pos);
        Pos = Buf.size();
        if (MaxBytes != 0 && Line.size() > MaxBytes) {
          Line.clear();
          return LineStatus::TooLong;
        }
        return LineStatus::Ok;
      }
      return LineStatus::Eof;
    }
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = io::errnoText(errno);
      return LineStatus::Error;
    }
    if (N == 0) {
      SawEof = true;
      continue;
    }
    if (Overflow) {
      // Drain mode: only look for the newline, never buffer the body.
      const char *NlPtr = static_cast<const char *>(
          memchr(Chunk, '\n', static_cast<size_t>(N)));
      if (NlPtr) {
        size_t After =
            static_cast<size_t>(N) - static_cast<size_t>(NlPtr - Chunk) - 1;
        Buf.assign(NlPtr + 1, After);
        Pos = 0;
        return LineStatus::TooLong;
      }
      continue;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

bool net::writeLine(int Fd, std::string_view Line, std::string *Error) {
  std::string Out;
  Out.reserve(Line.size() + 1);
  Out.append(Line);
  Out.push_back('\n');
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, Out.data() + Off, Out.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = io::errnoText(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool UnixListener::listen(const std::string &SocketPath, std::string &Error,
                          int Backlog) {
  close();
  sockaddr_un Addr;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: '" + SocketPath + "'";
    return false;
  }
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0) {
    Error = "socket: " + io::errnoText(errno);
    return false;
  }
  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE even though nothing is listening; remove it first.
  ::unlink(SocketPath.c_str());
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size());
  if (::bind(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "bind '" + SocketPath + "': " + io::errnoText(errno);
    ::close(S);
    return false;
  }
  if (::listen(S, Backlog) < 0) {
    Error = "listen '" + SocketPath + "': " + io::errnoText(errno);
    ::close(S);
    ::unlink(SocketPath.c_str());
    return false;
  }
  Fd = S;
  Path = SocketPath;
  return true;
}

int UnixListener::accept() {
  if (Fd < 0)
    return -1;
  for (;;) {
    int C = ::accept(Fd, nullptr, nullptr);
    if (C >= 0)
      return C;
    if (errno == EINTR)
      continue;
    return -1;
  }
}

void UnixListener::close() {
  if (Fd < 0)
    return;
  // shutdown() breaks a blocked accept() in another thread; close alone
  // is not guaranteed to on all kernels.
  ::shutdown(Fd, SHUT_RDWR);
  ::close(Fd);
  Fd = -1;
  if (!Path.empty()) {
    ::unlink(Path.c_str());
    Path.clear();
  }
}

int net::connectUnix(const std::string &Path, std::string &Error) {
  sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: '" + Path + "'";
    return -1;
  }
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0) {
    Error = "socket: " + io::errnoText(errno);
    return -1;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "connect '" + Path + "': " + io::errnoText(errno);
    ::close(S);
    return -1;
  }
  return S;
}

void net::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}
