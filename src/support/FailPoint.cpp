//===- support/FailPoint.cpp - Deterministic fault injection --------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#include "telemetry/Telemetry.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace ardf {
namespace failpoint {

namespace detail {
std::atomic<uint32_t> ArmedCount{0};
} // namespace detail

namespace {

struct Entry {
  Action Act = Action::Throw;
  uint64_t FireAt = 0; // 0 = every evaluation
  uint64_t StallMs = 100;
  uint64_t Evals = 0;
  uint64_t Fired = 0;
};

struct Registry {
  std::mutex Mu;
  std::unordered_map<std::string, Entry> Map;
};

// Meyers singleton: safe to use from static initializers in any TU (the
// environment armer below runs before main).
Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

namespace detail {

Fired evaluateSlow(const char *Site) {
  Registry &R = registry();
  Action Act;
  uint64_t StallMs;
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    auto It = R.Map.find(Site);
    if (It == R.Map.end())
      return Fired::No;
    Entry &E = It->second;
    ++E.Evals;
    if (E.FireAt != 0 && E.Evals != E.FireAt)
      return Fired::No;
    ++E.Fired;
    Act = E.Act;
    StallMs = E.StallMs;
  }
  // Act outside the lock: a stall must not serialize unrelated sites,
  // and a throw must not unwind through it.
  telem::count(telem::Counter::FailpointHits);
  switch (Act) {
  case Action::Throw:
    throw FailPointError(Site);
  case Action::Stall:
    std::this_thread::sleep_for(std::chrono::milliseconds(StallMs));
    return Fired::No;
  case Action::Breach:
    return Fired::Breach;
  }
  return Fired::No;
}

} // namespace detail

void arm(const std::string &Site, Action A, uint64_t FireAt,
         uint64_t StallMs) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Entry &E = R.Map[Site];
  E = Entry{A, FireAt, StallMs, 0, 0};
  detail::ArmedCount.store(static_cast<uint32_t>(R.Map.size()),
                           std::memory_order_relaxed);
}

bool disarm(const std::string &Site) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  bool Erased = R.Map.erase(Site) != 0;
  detail::ArmedCount.store(static_cast<uint32_t>(R.Map.size()),
                           std::memory_order_relaxed);
  return Erased;
}

void disarmAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Map.clear();
  detail::ArmedCount.store(0, std::memory_order_relaxed);
}

uint64_t firedCount(const std::string &Site) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.Map.find(Site);
  return It == R.Map.end() ? 0 : It->second.Fired;
}

bool armFromSpec(const std::string &Spec, std::string *Error) {
  auto Fail = [&](const std::string &Why) {
    if (Error)
      *Error = Why;
    return false;
  };
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Item = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Item.empty())
      continue;
    size_t Colon = Item.rfind(':');
    if (Colon == std::string::npos || Colon == 0)
      return Fail("'" + Item + "': expected site[@N]:action");
    std::string Site = Item.substr(0, Colon);
    std::string ActionStr = Item.substr(Colon + 1);
    uint64_t FireAt = 0;
    size_t At = Site.find('@');
    if (At != std::string::npos) {
      std::string Ord = Site.substr(At + 1);
      Site = Site.substr(0, At);
      if (Site.empty() || Ord.empty() ||
          Ord.find_first_not_of("0123456789") != std::string::npos)
        return Fail("'" + Item + "': bad fire ordinal");
      FireAt = std::strtoull(Ord.c_str(), nullptr, 10);
      if (FireAt == 0)
        return Fail("'" + Item + "': fire ordinal must be >= 1");
    }
    uint64_t StallMs = 100;
    Action Act;
    if (ActionStr == "throw") {
      Act = Action::Throw;
    } else if (ActionStr == "breach") {
      Act = Action::Breach;
    } else if (ActionStr == "stall" || ActionStr.rfind("stall=", 0) == 0) {
      Act = Action::Stall;
      if (ActionStr.size() > 5) {
        std::string Ms = ActionStr.substr(6);
        if (Ms.empty() ||
            Ms.find_first_not_of("0123456789") != std::string::npos)
          return Fail("'" + Item + "': bad stall duration");
        StallMs = std::strtoull(Ms.c_str(), nullptr, 10);
      }
    } else {
      return Fail("'" + Item +
                  "': unknown action (expected throw, breach, stall[=MS])");
    }
    arm(Site, Act, FireAt, StallMs);
  }
  return true;
}

namespace {

// Arms ARDF_FAILPOINTS at static initialization, so unarmed processes
// never pay more than the zeroed ArmedCount load.
struct EnvArmer {
  EnvArmer() {
    const char *Env = std::getenv("ARDF_FAILPOINTS");
    if (!Env || !*Env)
      return;
    std::string Error;
    if (!armFromSpec(Env, &Error))
      std::fprintf(stderr, "ardf: ignoring invalid ARDF_FAILPOINTS entry: %s\n",
                   Error.c_str());
  }
};
EnvArmer GEnvArmer;

} // namespace

} // namespace failpoint
} // namespace ardf
