//===- machine/MachineIR.h - Three-address machine code --------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small three-address register machine standing in for the paper's
/// target architectures (sequential / fine-grained parallel; the Cydra 5
/// rotating register file of Section 4.1.4 is modeled by the Rotate
/// instruction). Code is a flat instruction list with numeric labels.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_MACHINE_MACHINEIR_H
#define ARDF_MACHINE_MACHINEIR_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ardf {

/// Machine opcodes.
enum class MOpcode {
  LoadImm,  ///< Dst = Imm
  Mov,      ///< Dst = Src1
  Add,      ///< Dst = Src1 + Src2
  Sub,      ///< Dst = Src1 - Src2
  Mul,      ///< Dst = Src1 * Src2
  Div,      ///< Dst = Src1 / Src2 (0 on division by zero)
  CmpEq,    ///< Dst = Src1 == Src2
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  Not,      ///< Dst = !Src1
  Load,     ///< Dst = Array[Src1]
  Store,    ///< Array[Src1] = Src2
  Branch,   ///< goto Label
  BranchZero, ///< if Src1 == 0 goto Label
  BranchLe, ///< if Src1 <= Src2 goto Label
  Rotate,   ///< rotate registers [Imm, Imm + Src1): r[k+1] = r[k], one cycle
  LabelDef, ///< label marker (no-op)
  Halt
};

const char *opcodeName(MOpcode Op);

/// One machine instruction. Field use depends on the opcode; unused
/// fields are -1 / 0 / empty.
struct MInstr {
  MOpcode Op;
  int Dst = -1;
  int Src1 = -1;
  int Src2 = -1;
  int64_t Imm = 0;
  std::string Array;
  int Label = -1;
};

/// A machine program plus metadata.
struct MachineProgram {
  std::vector<MInstr> Code;
  unsigned NumRegs = 0;

  /// Appends an instruction and returns its index.
  unsigned emit(MInstr I);

  /// Renders an assembly-like listing.
  void print(std::ostream &OS) const;
};

} // namespace ardf

#endif // ARDF_MACHINE_MACHINEIR_H
