//===- machine/Simulator.cpp - Machine code simulator --------------------===//

#include "machine/Simulator.h"

#include <cassert>

using namespace ardf;

MachineSimulator::MachineSimulator(const MachineProgram &Prog,
                                   MachineCostModel Costs)
    : Prog(&Prog), Costs(Costs) {
  Regs.assign(Prog.NumRegs + 1, 0);
  for (unsigned I = 0; I != Prog.Code.size(); ++I)
    if (Prog.Code[I].Op == MOpcode::LabelDef)
      LabelPos[Prog.Code[I].Label] = I;
}

void MachineSimulator::setReg(int Reg, int64_t Value) {
  if (Reg >= static_cast<int>(Regs.size()))
    Regs.resize(Reg + 1, 0);
  Regs[Reg] = Value;
}

void MachineSimulator::setArrayCell(const std::string &Array, int64_t Index,
                                    int64_t Value) {
  Memory[Array][Index] = Value;
}

int64_t MachineSimulator::arrayCell(const std::string &Array,
                                    int64_t Index) const {
  auto ArrIt = Memory.find(Array);
  if (ArrIt == Memory.end())
    return 0;
  auto CellIt = ArrIt->second.find(Index);
  return CellIt == ArrIt->second.end() ? 0 : CellIt->second;
}

void MachineSimulator::run(uint64_t MaxInstructions) {
  unsigned PC = 0;
  uint64_t Executed = 0;
  const std::vector<MInstr> &Code = Prog->Code;
  while (PC < Code.size()) {
    assert(Executed++ < MaxInstructions && "machine program diverged");
    (void)Executed;
    const MInstr &I = Code[PC];
    ++PC;
    switch (I.Op) {
    case MOpcode::LabelDef:
      continue; // free
    case MOpcode::Halt:
      return;
    case MOpcode::LoadImm:
      Regs[I.Dst] = I.Imm;
      break;
    case MOpcode::Mov:
      Regs[I.Dst] = Regs[I.Src1];
      ++Stats.Moves;
      Stats.Cycles += Costs.MoveCost;
      ++Stats.Instructions;
      continue;
    case MOpcode::Add:
      Regs[I.Dst] = Regs[I.Src1] + Regs[I.Src2];
      break;
    case MOpcode::Sub:
      Regs[I.Dst] = Regs[I.Src1] - Regs[I.Src2];
      break;
    case MOpcode::Mul:
      Regs[I.Dst] = Regs[I.Src1] * Regs[I.Src2];
      break;
    case MOpcode::Div:
      Regs[I.Dst] = Regs[I.Src2] == 0 ? 0 : Regs[I.Src1] / Regs[I.Src2];
      break;
    case MOpcode::CmpEq:
      Regs[I.Dst] = Regs[I.Src1] == Regs[I.Src2];
      break;
    case MOpcode::CmpNe:
      Regs[I.Dst] = Regs[I.Src1] != Regs[I.Src2];
      break;
    case MOpcode::CmpLt:
      Regs[I.Dst] = Regs[I.Src1] < Regs[I.Src2];
      break;
    case MOpcode::CmpLe:
      Regs[I.Dst] = Regs[I.Src1] <= Regs[I.Src2];
      break;
    case MOpcode::CmpGt:
      Regs[I.Dst] = Regs[I.Src1] > Regs[I.Src2];
      break;
    case MOpcode::CmpGe:
      Regs[I.Dst] = Regs[I.Src1] >= Regs[I.Src2];
      break;
    case MOpcode::Not:
      Regs[I.Dst] = !Regs[I.Src1];
      break;
    case MOpcode::Load: {
      auto &Arr = Memory[I.Array];
      auto It = Arr.find(Regs[I.Src1]);
      Regs[I.Dst] = It == Arr.end() ? 0 : It->second;
      ++Stats.Loads;
      Stats.Cycles += Costs.LoadCost;
      ++Stats.Instructions;
      continue;
    }
    case MOpcode::Store:
      Memory[I.Array][Regs[I.Src1]] = Regs[I.Src2];
      ++Stats.Stores;
      Stats.Cycles += Costs.StoreCost;
      ++Stats.Instructions;
      continue;
    case MOpcode::Branch:
      PC = LabelPos.at(I.Label);
      ++Stats.Branches;
      Stats.Cycles += Costs.BranchCost;
      ++Stats.Instructions;
      continue;
    case MOpcode::BranchZero:
      if (Regs[I.Src1] == 0)
        PC = LabelPos.at(I.Label);
      ++Stats.Branches;
      Stats.Cycles += Costs.BranchCost;
      ++Stats.Instructions;
      continue;
    case MOpcode::BranchLe:
      if (Regs[I.Src1] <= Regs[I.Src2])
        PC = LabelPos.at(I.Label);
      ++Stats.Branches;
      Stats.Cycles += Costs.BranchCost;
      ++Stats.Instructions;
      continue;
    case MOpcode::Rotate: {
      // r[base+k] = r[base+k-1] for k = len-1..1, in one cycle (the
      // hardware register window / ICP of Section 4.1.4).
      int Base = static_cast<int>(I.Imm);
      int Len = I.Src1;
      for (int K = Len - 1; K >= 1; --K)
        Regs[Base + K] = Regs[Base + K - 1];
      ++Stats.Rotates;
      Stats.Cycles += Costs.RotateCost;
      ++Stats.Instructions;
      continue;
    }
    }
    // Common ALU accounting.
    ++Stats.Alu;
    Stats.Cycles += Costs.AluCost;
    ++Stats.Instructions;
  }
}
