//===- machine/Simulator.h - Machine code simulator ------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes MachineProgram code and accounts for the memory traffic and
/// cycle costs the paper's optimizations target: loads avoided by
/// register pipelines (Fig. 5), pipeline progression moves vs. the
/// constant-cost rotating register file (Section 4.1.4).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_MACHINE_SIMULATOR_H
#define ARDF_MACHINE_SIMULATOR_H

#include "machine/MachineIR.h"

#include <cstdint>
#include <map>
#include <string>

namespace ardf {

/// Per-operation cycle costs.
struct MachineCostModel {
  uint64_t LoadCost = 4;
  uint64_t StoreCost = 4;
  uint64_t AluCost = 1;
  uint64_t MoveCost = 1;
  uint64_t BranchCost = 1;
  uint64_t RotateCost = 1; ///< The ICP update is constant cost.
};

/// Execution counters.
struct MachineStats {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Moves = 0;
  uint64_t Alu = 0;
  uint64_t Branches = 0;
  uint64_t Rotates = 0;
  uint64_t Instructions = 0;
  uint64_t Cycles = 0;

  uint64_t memoryAccesses() const { return Loads + Stores; }
};

/// Executes machine programs against sparse array memory.
class MachineSimulator {
public:
  explicit MachineSimulator(const MachineProgram &Prog,
                            MachineCostModel Costs = MachineCostModel());

  /// Presets a register (for scalar inputs).
  void setReg(int Reg, int64_t Value);

  /// Presets one array cell.
  void setArrayCell(const std::string &Array, int64_t Index, int64_t Value);

  /// Runs to Halt (or past the last instruction). Asserts if the
  /// instruction budget (default 100M) is exceeded — a runaway loop.
  void run(uint64_t MaxInstructions = 100000000);

  int64_t reg(int R) const { return Regs[R]; }
  int64_t arrayCell(const std::string &Array, int64_t Index) const;
  const std::map<std::string, std::map<int64_t, int64_t>> &memory() const {
    return Memory;
  }
  const MachineStats &stats() const { return Stats; }

private:
  const MachineProgram *Prog;
  MachineCostModel Costs;
  std::vector<int64_t> Regs;
  std::map<std::string, std::map<int64_t, int64_t>> Memory;
  std::map<int, unsigned> LabelPos;
  MachineStats Stats;
};

} // namespace ardf

#endif // ARDF_MACHINE_SIMULATOR_H
