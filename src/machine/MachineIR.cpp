//===- machine/MachineIR.cpp - Three-address machine code ----------------===//

#include "machine/MachineIR.h"

#include <algorithm>
#include <ostream>

using namespace ardf;

const char *ardf::opcodeName(MOpcode Op) {
  switch (Op) {
  case MOpcode::LoadImm:
    return "li";
  case MOpcode::Mov:
    return "mov";
  case MOpcode::Add:
    return "add";
  case MOpcode::Sub:
    return "sub";
  case MOpcode::Mul:
    return "mul";
  case MOpcode::Div:
    return "div";
  case MOpcode::CmpEq:
    return "cmpeq";
  case MOpcode::CmpNe:
    return "cmpne";
  case MOpcode::CmpLt:
    return "cmplt";
  case MOpcode::CmpLe:
    return "cmple";
  case MOpcode::CmpGt:
    return "cmpgt";
  case MOpcode::CmpGe:
    return "cmpge";
  case MOpcode::Not:
    return "not";
  case MOpcode::Load:
    return "load";
  case MOpcode::Store:
    return "store";
  case MOpcode::Branch:
    return "b";
  case MOpcode::BranchZero:
    return "bz";
  case MOpcode::BranchLe:
    return "ble";
  case MOpcode::Rotate:
    return "rot";
  case MOpcode::LabelDef:
    return "label";
  case MOpcode::Halt:
    return "halt";
  }
  return "?";
}

unsigned MachineProgram::emit(MInstr I) {
  if (I.Op == MOpcode::Rotate) {
    // Imm is the window base, Src1 the window length.
    NumRegs = std::max<unsigned>(NumRegs, I.Imm + I.Src1);
  } else {
    int MaxReg = std::max({I.Dst, I.Src1, I.Src2});
    if (MaxReg >= 0)
      NumRegs = std::max(NumRegs, static_cast<unsigned>(MaxReg) + 1);
  }
  Code.push_back(std::move(I));
  return Code.size() - 1;
}

void MachineProgram::print(std::ostream &OS) const {
  for (const MInstr &I : Code) {
    switch (I.Op) {
    case MOpcode::LabelDef:
      OS << 'L' << I.Label << ":\n";
      continue;
    case MOpcode::LoadImm:
      OS << "  li r" << I.Dst << ", " << I.Imm << '\n';
      continue;
    case MOpcode::Mov:
      OS << "  mov r" << I.Dst << ", r" << I.Src1 << '\n';
      continue;
    case MOpcode::Load:
      OS << "  load r" << I.Dst << ", " << I.Array << "(r" << I.Src1
         << ")\n";
      continue;
    case MOpcode::Store:
      OS << "  store " << I.Array << "(r" << I.Src1 << "), r" << I.Src2
         << '\n';
      continue;
    case MOpcode::Branch:
      OS << "  b L" << I.Label << '\n';
      continue;
    case MOpcode::BranchZero:
      OS << "  bz r" << I.Src1 << ", L" << I.Label << '\n';
      continue;
    case MOpcode::BranchLe:
      OS << "  ble r" << I.Src1 << ", r" << I.Src2 << ", L" << I.Label
         << '\n';
      continue;
    case MOpcode::Rotate:
      OS << "  rot r" << I.Imm << "..r" << (I.Imm + I.Src1 - 1) << '\n';
      continue;
    case MOpcode::Halt:
      OS << "  halt\n";
      continue;
    default:
      OS << "  " << opcodeName(I.Op) << " r" << I.Dst << ", r" << I.Src1
         << ", r" << I.Src2 << '\n';
    }
  }
}
