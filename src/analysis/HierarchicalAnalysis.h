//===- analysis/HierarchicalAnalysis.h - Whole-program driver --*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hierarchical analysis process of Section 3.2: "The overall
/// analysis of a program is performed hierarchically starting with the
/// innermost nested loops and working towards the outermost loops and
/// the main program." Each loop is analyzed exactly once with its own
/// loop flow graph; nested loops appear as summary nodes in their
/// parents' graphs (handled by cfg/ and dataflow/References). This
/// driver walks a whole Program, orders the loops innermost-first, runs
/// one problem instance per loop, and exposes the per-loop results.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_ANALYSIS_HIERARCHICALANALYSIS_H
#define ARDF_ANALYSIS_HIERARCHICALANALYSIS_H

#include "analysis/LoopDataFlow.h"

#include <memory>
#include <vector>

namespace ardf {

/// Per-loop analysis result in hierarchical order.
struct LoopResult {
  const DoLoopStmt *Loop;

  /// Nesting depth: 0 for top-level loops.
  unsigned Depth;

  /// The solved instance for this loop.
  std::unique_ptr<LoopDataFlow> DF;
};

/// Whole-program hierarchical analysis for one problem.
class HierarchicalAnalysis {
public:
  /// Analyzes every loop of \p P, innermost loops first.
  HierarchicalAnalysis(const Program &P, ProblemSpec Spec);

  /// Results in analysis order (innermost before their parents).
  const std::vector<LoopResult> &loops() const { return Results; }

  /// The result for \p Loop, or null if it is not a loop of the
  /// analyzed program.
  const LoopDataFlow *resultFor(const DoLoopStmt &Loop) const;

  /// Total node visits across all loops (the whole-program cost).
  unsigned totalNodeVisits() const;

  /// All reuse pairs across all loops, tagged with their loop.
  struct TaggedReuse {
    const DoLoopStmt *Loop;
    ReusePair Pair;
  };
  std::vector<TaggedReuse> allReusePairs(RefSelector SinkSel) const;

private:
  void collect(const StmtList &Stmts, unsigned Depth);

  const Program *Prog;
  ProblemSpec Spec;
  std::vector<LoopResult> Results;
};

} // namespace ardf

#endif // ARDF_ANALYSIS_HIERARCHICALANALYSIS_H
