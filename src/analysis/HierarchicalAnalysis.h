//===- analysis/HierarchicalAnalysis.h - Whole-program driver --*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hierarchical analysis process of Section 3.2: "The overall
/// analysis of a program is performed hierarchically starting with the
/// innermost nested loops and working towards the outermost loops and
/// the main program." Loops come from the nesting tree (analysis/
/// LoopNest.h) — natural loops over the CFG, each reduced to its
/// normalized DO form — so while loops and non-normalized bounds
/// participate, and loops the recognizer rejects are reported instead
/// of analyzed. Each supported loop is analyzed exactly once with its
/// own loop flow graph; nested loops appear as summary nodes in their
/// parents' graphs (handled by cfg/ and dataflow/References). This
/// driver orders the loops innermost-first, runs one problem instance
/// per loop, and exposes the per-loop results.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_ANALYSIS_HIERARCHICALANALYSIS_H
#define ARDF_ANALYSIS_HIERARCHICALANALYSIS_H

#include "analysis/LoopDataFlow.h"
#include "analysis/LoopNest.h"

#include <memory>
#include <vector>

namespace ardf {

/// Per-loop analysis result in hierarchical order.
struct LoopResult {
  /// The analyzed (reduced, normalized) form of the loop, owned by the
  /// nesting tree. For a plain normalized DO loop this is a structural
  /// copy of the source statement.
  const DoLoopStmt *Loop;

  /// The source While/DoLoop statement in the program.
  const Stmt *Source;

  /// Nesting depth: 0 for top-level loops.
  unsigned Depth;

  /// The solved instance for this loop.
  std::unique_ptr<LoopDataFlow> DF;
};

/// Whole-program hierarchical analysis for one problem.
class HierarchicalAnalysis {
public:
  /// Analyzes every supported loop of \p P, innermost loops first.
  HierarchicalAnalysis(const Program &P, ProblemSpec Spec);

  /// Results in analysis order (innermost before their parents).
  const std::vector<LoopResult> &loops() const { return Results; }

  /// The nesting tree the loops came from (rejected loops and their
  /// reasons live here).
  const LoopNestTree &nest() const { return *Tree; }

  /// The result for \p Loop — either a source loop statement of the
  /// analyzed program or a reduced form — or null.
  const LoopDataFlow *resultFor(const Stmt &Loop) const;

  /// Total node visits across all loops (the whole-program cost).
  unsigned totalNodeVisits() const;

  /// All reuse pairs across all loops, tagged with their loop.
  struct TaggedReuse {
    const DoLoopStmt *Loop;
    ReusePair Pair;
  };
  std::vector<TaggedReuse> allReusePairs(RefSelector SinkSel) const;

private:
  const Program *Prog;
  ProblemSpec Spec;
  std::unique_ptr<LoopNestTree> Tree;
  std::vector<LoopResult> Results;
};

} // namespace ardf

#endif // ARDF_ANALYSIS_HIERARCHICALANALYSIS_H
