//===- analysis/Dependence.cpp - Dependence detection --------------------===//

#include "analysis/Dependence.h"

#include "ir/PrettyPrinter.h"

#include <algorithm>
#include <ostream>

using namespace ardf;

const char *ardf::depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  case DepKind::Input:
    return "input";
  }
  return "?";
}

bool DependenceInfo::hasCarriedDistance(int64_t Distance) const {
  return std::any_of(Deps.begin(), Deps.end(), [&](const Dependence &D) {
    return D.Distance == Distance;
  });
}

std::vector<Dependence> DependenceInfo::distanceOne() const {
  std::vector<Dependence> Result;
  for (const Dependence &D : Deps)
    if (D.Distance == 1)
      Result.push_back(D);
  return Result;
}

namespace {

/// Smallest iteration distance delta >= Pr at which From(i - delta) may
/// equal To(i) for some i in [1, Trip]. Conservative in the may sense:
/// symbolic uncertainty reports a dependence at distance Pr rather than
/// missing one. Returns nullopt when overlap is provably impossible.
std::optional<int64_t> minOverlapDistance(const AffineAccess &From,
                                          const AffineAccess &To, int64_t Pr,
                                          int64_t Trip) {
  Poly Da = From.A - To.A;
  Poly Db = From.B - To.B;

  if (From.A.isZero()) {
    // Invariant source: every instance names the same cell; any overlap
    // holds at every distance, so the minimum is Pr.
    if (To.A.isZero()) {
      if (Db.isZero())
        return Pr;
      if (Db.isConstant())
        return std::nullopt;
      return Pr; // symbolic: conservative
    }
    if (Db.isConstant() && To.A.isConstant()) {
      Rational Hit(Db.getConstant(), To.A.getConstant());
      if (!Hit.isInteger())
        return std::nullopt;
      int64_t I = Hit.asInteger();
      if (I < 1 || (Trip != UnknownTripCount && I > Trip))
        return std::nullopt;
      return Pr;
    }
    return Pr; // symbolic: conservative
  }

  if (Da.isZero()) {
    // delta(i) == Db / A1 constant.
    std::optional<Rational> C = Db.isZero()
                                    ? std::optional<Rational>(Rational(0))
                                    : Db.ratioTo(From.A);
    if (!C)
      return Pr; // symbolic: conservative
    if (!C->isInteger())
      return std::nullopt;
    int64_t D = C->asInteger();
    return D >= Pr ? std::optional<int64_t>(D) : std::nullopt;
  }

  if (!Da.isConstant() || !Db.isConstant() || !From.A.isConstant())
    return Pr; // symbolic: conservative

  // delta(i) = (da*i + db) / a1, monotone linear; find the minimum value
  // >= Pr over integer i in [1, Trip].
  int64_t DaC = Da.getConstant(), DbC = Db.getConstant(),
          A1 = From.A.getConstant();
  auto DeltaAt = [&](int64_t I) { return Rational(DaC * I + DbC, A1); };
  Rational XStar(Pr * A1 - DbC, DaC); // delta(x*) == Pr
  bool SlopePositive = (DaC > 0) == (A1 > 0);
  Rational M;
  if (SlopePositive) {
    int64_t I0 = XStar.isInteger() ? XStar.asInteger() : XStar.floor() + 1;
    if (I0 < 1)
      I0 = 1;
    if (Trip != UnknownTripCount && I0 > Trip)
      return std::nullopt;
    M = DeltaAt(I0);
  } else {
    int64_t ILast = XStar.isInteger() ? XStar.asInteger() : XStar.ceil() - 1;
    if (Trip != UnknownTripCount && ILast > Trip)
      ILast = Trip;
    if (ILast < 1)
      return std::nullopt;
    M = DeltaAt(ILast);
  }
  if (M < Rational(Pr))
    return std::nullopt;
  return M.ceil();
}

DepKind kindOf(bool FromIsDef, bool ToIsDef) {
  if (FromIsDef)
    return ToIsDef ? DepKind::Output : DepKind::Flow;
  return ToIsDef ? DepKind::Anti : DepKind::Input;
}

} // namespace

DependenceInfo ardf::extractDependences(const LoopDataFlow &DF,
                                        bool IncludeInput) {
  DependenceInfo Info;
  const FrameworkInstance &FW = DF.framework();
  const ReferenceUniverse &U = DF.universe();
  int64_t Trip = DF.graph().getTripCount();

  for (const RefOccurrence &To : U.occurrences()) {
    if (!To.isTrackable())
      continue;
    for (unsigned Idx = 0; Idx != FW.getNumTracked(); ++Idx) {
      const RefOccurrence &From = FW.getTracked(Idx);
      if (From.Id == To.Id)
        continue;
      if (From.arrayName() != To.arrayName())
        continue;
      DepKind Kind = kindOf(From.IsDef, To.IsDef);
      if (Kind == DepKind::Input && !IncludeInput)
        continue;
      int64_t Pr = FW.pr(Idx, To.Node);
      std::optional<int64_t> D =
          minOverlapDistance(*From.Affine, *To.Affine, Pr, Trip);
      if (!D)
        continue;
      if (!DF.valueAt(To.Node, Idx).covers(*D))
        continue;
      Info.Deps.push_back(Dependence{From.Id, To.Id, Kind, *D});
    }
  }
  return Info;
}

DependenceInfo ardf::computeDependences(const Program &P,
                                        const DoLoopStmt &Loop,
                                        bool IncludeInput) {
  LoopDataFlow DF(P, Loop, ProblemSpec::reachingReferences());
  return extractDependences(DF, IncludeInput);
}

void ardf::printDependences(std::ostream &OS, const DependenceInfo &Info,
                            const LoopDataFlow &DF) {
  const ReferenceUniverse &U = DF.universe();
  for (const Dependence &D : Info.Deps) {
    OS << depKindName(D.Kind) << ' '
       << exprToString(*U.occurrence(D.FromId).Ref) << " -> "
       << exprToString(*U.occurrence(D.ToId).Ref) << " distance "
       << D.Distance << (D.isLoopCarried() ? " (carried)" : " (independent)")
       << '\n';
  }
}
