//===- analysis/LoopNest.h - Loop-nesting tree + reduction -----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop-nesting tree: natural loops discovered over the basic-block
/// CFG (cfg/Cfg.h), arranged by containment and reduced — bottom-up —
/// to the paper's analyzable form. Each supported nest level yields a
/// normalized DoLoopStmt whose body has inner loops replaced by their
/// own reduced forms, so the existing LoopFlowGraph / LoopAnalysisSession
/// machinery (and all four solver engines) apply unchanged per level.
///
/// Induction-variable recognition turns the counted while pattern
///
///   i = lo;
///   while (i <= E) { body...; i = i + c; }
///
/// into `do i = lo, E, c` (with <, >=, > variants adjusting the bound
/// and step sign) before normalization. Loops the recognizer rejects —
/// a break (early exit), an unrecognized while shape, a rewritten
/// induction variable, a bound the body mutates — carry an explicit
/// human-readable reason so clients (driver, lint) can surface an
/// analysis-unsupported diagnostic instead of silently skipping them.
///
/// Per-level distance vectors: a supported loop at depth d has d
/// supported ancestors; analyzing its reduced form once per ancestor
/// induction variable (the session's WithRespectTo seam, Section 3.6)
/// yields one iteration distance per nest level.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_ANALYSIS_LOOPNEST_H
#define ARDF_ANALYSIS_LOOPNEST_H

#include "cfg/Cfg.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ardf {

/// One loop of the nesting tree.
struct NestLoop {
  /// The source While/DoLoop statement (never null).
  const Stmt *Source = nullptr;

  NestLoop *Parent = nullptr;
  std::vector<NestLoop *> Children;

  /// Nesting depth: 0 for outermost loops.
  unsigned Depth = 0;

  /// Index of this loop's natural loop in cfg().loops().
  unsigned CfgLoopIndex = 0;

  /// The standalone reduced form: a normalized DO loop whose body has
  /// every inner loop replaced by its reduced form. Null when the
  /// recognizer rejected this loop (see UnsupportedReason).
  std::unique_ptr<DoLoopStmt> Reduced;

  /// The copy of this loop embedded in the outermost supported
  /// ancestor's Reduced tree — the form analysis sessions should use,
  /// since ancestor normalization substitutes ancestor induction
  /// variables through it. Equals Reduced.get() for root loops; null
  /// when unsupported.
  const DoLoopStmt *Analyzed = nullptr;

  /// Why the recognizer rejected this loop; empty when supported.
  std::string UnsupportedReason;

  /// For a recognized while: the `i = lo` init statement preceding it
  /// (subsumed by the reduced DO loop's bounds). Null otherwise.
  const Stmt *ConsumedInit = nullptr;

  bool isSupported() const { return Analyzed != nullptr; }
  bool isWhile() const { return isa<WhileStmt>(Source); }

  /// The induction variable of the reduced form ("" when unsupported).
  const std::string &iv() const;

  /// Constant trip count of the reduced (normalized) form, or -1.
  int64_t tripCount() const;

  /// Source location of the loop statement.
  SourceLoc loc() const { return Source->getLoc(); }

  /// Ancestors outermost-first (empty for a root loop).
  std::vector<const NestLoop *> ancestors() const;

  /// Slash-joined induction variables from the outermost ancestor down
  /// to this loop, e.g. "i/j"; unsupported levels print "?".
  std::string path() const;
};

/// The loop-nesting forest of a whole program, with every loop reduced
/// (or rejected with a reason). Construction never throws for malformed
/// loops — a per-loop fault boundary turns internal failures into
/// unsupported records — but propagates resource exhaustion
/// (std::bad_alloc) like the rest of the pipeline.
///
/// The tree keeps the program pointer; the program must outlive it
/// (sessions hand out references into both).
class LoopNestTree {
public:
  explicit LoopNestTree(const Program &P);

  const Program &program() const { return *Prog; }
  const Cfg &cfg() const { return *Graph; }

  /// Top-level loops in source order.
  const std::vector<NestLoop *> &roots() const { return Roots; }

  /// All loops, pre-order (each loop before its children, outermost
  /// first, source order within a level).
  const std::vector<std::unique_ptr<NestLoop>> &all() const { return Nodes; }

  unsigned size() const { return Nodes.size(); }
  unsigned supportedCount() const { return Supported; }
  unsigned unsupportedCount() const { return Nodes.size() - Supported; }

  /// Pre-order walk.
  void forEach(const std::function<void(const NestLoop &)> &Fn) const;

  /// The nest node for a source loop statement, or null.
  const NestLoop *nodeFor(const Stmt &SourceLoop) const;

private:
  void reduce(NestLoop &L);
  void reduceDoLoop(NestLoop &L, const DoLoopStmt &DL);
  void reduceWhile(NestLoop &L, const WhileStmt &WS);
  StmtList reduceBody(const NestLoop &L, const StmtList &Body);
  void assignAnalyzedForms(NestLoop &Root);

  const Program *Prog;
  std::unique_ptr<Cfg> Graph;
  std::vector<std::unique_ptr<NestLoop>> Nodes;
  std::vector<NestLoop *> Roots;
  unsigned Supported = 0;
};

} // namespace ardf

#endif // ARDF_ANALYSIS_LOOPNEST_H
