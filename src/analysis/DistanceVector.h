//===- analysis/DistanceVector.h - Tight-nest distance vectors -*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's stated future work (Sections 3.6 and 6): recurrences that
/// arise "with respect to multiple induction variables simultaneously"
/// — the Z[i+1, j] = Z[i, j-1] case of Fig. 4 that no single-loop
/// analysis can see — need the scalar iteration distance expanded to a
/// *vector* of distances, one per enclosing loop.
///
/// This module implements the combined analysis for tight (perfect)
/// two-deep loop nests: for a reference pair it solves the per-dimension
/// subscript equations
///
///   f1_k(i - d_i, j - d_j) == f2_k(i, j)     for every dimension k
///
/// for a constant distance vector (d_outer, d_inner). A pair reusing at
/// vector (1, 1) means the sink re-touches the element the source
/// produced one outer AND one inner iteration earlier. Safety of reuse
/// additionally requires that no definition of the array kills the value
/// in between; the conservative kill test here admits only nests whose
/// other same-array definitions provably miss the reuse window.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_ANALYSIS_DISTANCEVECTOR_H
#define ARDF_ANALYSIS_DISTANCEVECTOR_H

#include "ir/Program.h"

#include <optional>
#include <string>
#include <vector>

namespace ardf {

/// A reuse at a two-level iteration distance vector.
struct VectorReuse {
  /// Source (generating) and sink references.
  const ArrayRefExpr *Source;
  const ArrayRefExpr *Sink;

  /// Iterations of the outer / inner loop between generation and reuse.
  /// Lexicographically non-negative: (Outer, Inner) > (0, 0) or equal
  /// for intra-iteration pairs.
  int64_t OuterDistance;
  int64_t InnerDistance;
};

/// Result of the combined nest analysis.
struct NestAnalysis {
  /// The nest was a tight two-deep nest with analyzable subscripts.
  bool Analyzable = false;
  std::string OuterIV;
  std::string InnerIV;
  std::vector<VectorReuse> Reuses;
};

/// Analyzes the tight nest rooted at \p Outer (whose body must be
/// exactly one inner loop). Finds constant distance-vector reuse
/// between definition sources and use sinks of the inner body.
NestAnalysis analyzeTightNest(const Program &P, const DoLoopStmt &Outer);

/// Solves f1(i - di, j - dj) == f2(i, j) dimension-wise for a constant
/// vector; exposed for testing. \p Source and \p Sink must name the
/// same array and have equal dimensionality.
std::optional<std::pair<int64_t, int64_t>>
solveDistanceVector(const ArrayRefExpr &Source, const ArrayRefExpr &Sink,
                    const std::string &OuterIV, const std::string &InnerIV);

} // namespace ardf

#endif // ARDF_ANALYSIS_DISTANCEVECTOR_H
