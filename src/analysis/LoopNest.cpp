//===- analysis/LoopNest.cpp - Loop-nesting tree + reduction -------------===//

#include "analysis/LoopNest.h"

#include "passes/LoopNormalize.h"
#include "support/FailPoint.h"
#include "telemetry/Telemetry.h"

#include <cassert>
#include <new>
#include <stdexcept>

using namespace ardf;

namespace {

/// True when \p Stmts contains a break binding to the loop whose body
/// this is — i.e. one not nested inside a further loop.
bool hasOwnLevelBreak(const StmtList &Stmts) {
  for (const StmtPtr &S : Stmts) {
    switch (S->getKind()) {
    case Stmt::Kind::Break:
      return true;
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S.get());
      if (hasOwnLevelBreak(IS->getThen()) || hasOwnLevelBreak(IS->getElse()))
        return true;
      break;
    }
    case Stmt::Kind::Assign:
    case Stmt::Kind::DoLoop:
    case Stmt::Kind::While:
      break;
    }
  }
  return false;
}

/// True when any statement in \p Stmts (at any depth) assigns scalar
/// \p Name or rebinds it as an inner induction variable, excluding the
/// statement \p Skip.
bool assignsScalar(const StmtList &Stmts, const std::string &Name,
                   const Stmt *Skip) {
  bool Found = false;
  forEachStmt(Stmts, [&](const Stmt &S) {
    if (&S == Skip || Found)
      return;
    if (const auto *AS = dyn_cast<AssignStmt>(&S)) {
      if (const auto *V = dyn_cast<VarRef>(AS->getLHS()))
        if (V->getName() == Name)
          Found = true;
    } else if (const auto *DL = dyn_cast<DoLoopStmt>(&S)) {
      if (DL->getIndVar() == Name)
        Found = true;
    }
  });
  return Found;
}

/// True when \p E mentions scalar \p Name.
bool mentionsScalar(const Expr &E, const std::string &Name) {
  bool Found = false;
  forEachSubExpr(E, [&](const Expr &Sub) {
    if (const auto *V = dyn_cast<VarRef>(&Sub))
      if (V->getName() == Name)
        Found = true;
  });
  return Found;
}

/// The statement immediately preceding \p Target in whatever statement
/// list contains it, or null (not found / first in its list).
const Stmt *findPreceding(const StmtList &Stmts, const Stmt *Target) {
  for (size_t I = 0; I != Stmts.size(); ++I) {
    if (Stmts[I].get() == Target)
      return I == 0 ? nullptr : Stmts[I - 1].get();
    const Stmt *Found = nullptr;
    switch (Stmts[I]->getKind()) {
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(Stmts[I].get());
      Found = findPreceding(IS->getThen(), Target);
      if (!Found)
        Found = findPreceding(IS->getElse(), Target);
      break;
    }
    case Stmt::Kind::DoLoop:
      Found = findPreceding(cast<DoLoopStmt>(Stmts[I].get())->getBody(),
                            Target);
      break;
    case Stmt::Kind::While:
      Found = findPreceding(cast<WhileStmt>(Stmts[I].get())->getBody(),
                            Target);
      break;
    case Stmt::Kind::Assign:
    case Stmt::Kind::Break:
      break;
    }
    if (Found)
      return Found;
  }
  return nullptr;
}

/// Collects the DO loops of \p Stmts that are not nested inside another
/// loop in \p Stmts, in source order.
void collectOwnLevelLoops(const StmtList &Stmts,
                          std::vector<const DoLoopStmt *> &Out) {
  for (const StmtPtr &S : Stmts) {
    switch (S->getKind()) {
    case Stmt::Kind::DoLoop:
      Out.push_back(cast<DoLoopStmt>(S.get()));
      break;
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S.get());
      collectOwnLevelLoops(IS->getThen(), Out);
      collectOwnLevelLoops(IS->getElse(), Out);
      break;
    }
    case Stmt::Kind::While:
      collectOwnLevelLoops(cast<WhileStmt>(S.get())->getBody(), Out);
      break;
    case Stmt::Kind::Assign:
    case Stmt::Kind::Break:
      break;
    }
  }
}

} // namespace

const std::string &NestLoop::iv() const {
  static const std::string Empty;
  return Analyzed ? Analyzed->getIndVar() : Empty;
}

int64_t NestLoop::tripCount() const {
  return Analyzed ? Analyzed->getConstantTripCount() : -1;
}

std::vector<const NestLoop *> NestLoop::ancestors() const {
  std::vector<const NestLoop *> Result;
  for (const NestLoop *A = Parent; A; A = A->Parent)
    Result.push_back(A);
  std::reverse(Result.begin(), Result.end());
  return Result;
}

std::string NestLoop::path() const {
  std::string Result;
  for (const NestLoop *A : ancestors()) {
    Result += A->isSupported() ? A->iv() : "?";
    Result += '/';
  }
  Result += isSupported() ? iv() : "?";
  return Result;
}

LoopNestTree::LoopNestTree(const Program &P) : Prog(&P) {
  telem::Span NestSpan("loop-nest", "nest");

  Graph = std::make_unique<Cfg>(P);

  // One nest node per natural loop. Headers come out of loop discovery
  // in reverse postorder, which for structured programs is exactly
  // pre-order over the nesting forest (outer before inner, source order
  // within a level).
  const std::vector<NaturalLoop> &NLoops = Graph->loops();
  Nodes.reserve(NLoops.size());
  for (unsigned I = 0; I != NLoops.size(); ++I) {
    auto Node = std::make_unique<NestLoop>();
    Node->Source = NLoops[I].Source;
    Node->CfgLoopIndex = I;
    assert(Node->Source && "natural loop without a source statement");
    int ParentIdx = Graph->parentLoopOf(I);
    if (ParentIdx >= 0) {
      Node->Parent = Nodes[ParentIdx].get();
      Node->Depth = Node->Parent->Depth + 1;
      Node->Parent->Children.push_back(Node.get());
    } else {
      Roots.push_back(Node.get());
    }
    Nodes.push_back(std::move(Node));
  }

  for (NestLoop *Root : Roots)
    reduce(*Root);

  // Analysis roots: reduced loops with no reduced parent. A supported
  // loop under an unsupported parent is analyzed standalone (its
  // per-level distances above the unsupported ancestor stay unknown).
  for (const std::unique_ptr<NestLoop> &Node : Nodes) {
    if (Node->Reduced && (!Node->Parent || !Node->Parent->Reduced)) {
      Node->Analyzed = Node->Reduced.get();
      assignAnalyzedForms(*Node);
    }
  }

  for (const auto &Node : Nodes)
    if (Node->isSupported())
      ++Supported;

  telem::count(telem::Counter::NestTrees);
  telem::count(telem::Counter::NestReduced, Supported);
  telem::count(telem::Counter::NestUnsupported, Nodes.size() - Supported);
}

void LoopNestTree::forEach(
    const std::function<void(const NestLoop &)> &Fn) const {
  for (const auto &Node : Nodes)
    Fn(*Node);
}

const NestLoop *LoopNestTree::nodeFor(const Stmt &SourceLoop) const {
  for (const auto &Node : Nodes)
    if (Node->Source == &SourceLoop)
      return Node.get();
  return nullptr;
}

void LoopNestTree::reduce(NestLoop &L) {
  for (NestLoop *Child : L.Children)
    reduce(*Child);

  // Per-loop fault boundary: one loop failing to reduce (including an
  // armed nest.reduce failpoint) degrades to an unsupported record; the
  // rest of the tree still builds. Allocation failure propagates.
  try {
    failpoint::evaluate("nest.reduce");
    if (const auto *DL = dyn_cast<DoLoopStmt>(L.Source))
      reduceDoLoop(L, *DL);
    else
      reduceWhile(L, *cast<WhileStmt>(L.Source));
  } catch (const std::bad_alloc &) {
    throw;
  } catch (const std::exception &E) {
    L.Reduced.reset();
    L.UnsupportedReason = std::string("internal error during reduction: ") +
                          E.what();
  }
}

/// Shared rejection checks; returns a non-empty reason to reject.
static std::string commonRejection(const NestLoop &L, const StmtList &Body) {
  if (hasOwnLevelBreak(Body))
    return "loop has an early exit (break); must-facts would be unsound";
  for (const NestLoop *Child : L.Children)
    if (!Child->Reduced)
      return "contains an unsupported inner loop";
  return "";
}

void LoopNestTree::reduceDoLoop(NestLoop &L, const DoLoopStmt &DL) {
  std::string Reason = commonRejection(L, DL.getBody());
  if (Reason.empty() && DL.getStep() == 0)
    Reason = "zero loop step";
  if (Reason.empty() &&
      assignsScalar(DL.getBody(), DL.getIndVar(), /*Skip=*/nullptr))
    Reason = "induction variable '" + DL.getIndVar() +
             "' is assigned inside the loop";
  if (Reason.empty() && DL.getBody().empty())
    Reason = "empty loop body";
  if (!Reason.empty()) {
    L.UnsupportedReason = std::move(Reason);
    return;
  }

  auto Raw = std::make_unique<DoLoopStmt>(
      DL.getIndVar(), DL.getLower()->clone(), DL.getUpper()->clone(),
      reduceBody(L, DL.getBody()), DL.getStep());
  Raw->setLoc(DL.getLoc());
  L.Reduced = normalizeLoop(*Raw);
}

void LoopNestTree::reduceWhile(NestLoop &L, const WhileStmt &WS) {
  std::string Reason = commonRejection(L, WS.getBody());
  if (!Reason.empty()) {
    L.UnsupportedReason = std::move(Reason);
    return;
  }

  // Guard shape: iv <op> bound, op in { <, <=, >, >= }.
  const auto *Cond = dyn_cast<BinaryExpr>(WS.getCond());
  const VarRef *IVRef =
      Cond ? dyn_cast<VarRef>(Cond->getLHS()) : nullptr;
  BinaryOpKind Op = Cond ? Cond->getOp() : BinaryOpKind::Add;
  bool Upward = Op == BinaryOpKind::Lt || Op == BinaryOpKind::Le;
  bool Downward = Op == BinaryOpKind::Gt || Op == BinaryOpKind::Ge;
  if (!Cond || !IVRef || (!Upward && !Downward)) {
    L.UnsupportedReason =
        "loop condition is not a counted form (expected `iv < bound`, "
        "`iv <= bound`, `iv > bound`, or `iv >= bound`)";
    return;
  }
  const std::string &IV = IVRef->getName();
  const Expr *Bound = Cond->getRHS();

  // Initialization: `iv = lo` immediately before the while.
  const Stmt *Prev = findPreceding(Prog->getStmts(), &WS);
  const auto *Init = Prev ? dyn_cast<AssignStmt>(Prev) : nullptr;
  const VarRef *InitLHS = Init ? dyn_cast<VarRef>(Init->getLHS()) : nullptr;
  if (!InitLHS || InitLHS->getName() != IV) {
    L.UnsupportedReason = "no initialization of '" + IV +
                          "' immediately before the loop";
    return;
  }

  // Increment: a single trailing `iv = iv + c` / `iv = iv - c` /
  // `iv = c + iv` with a non-zero literal c.
  const StmtList &Body = WS.getBody();
  const auto *Incr =
      Body.empty() ? nullptr : dyn_cast<AssignStmt>(Body.back().get());
  const VarRef *IncrLHS = Incr ? dyn_cast<VarRef>(Incr->getLHS()) : nullptr;
  int64_t Step = 0;
  if (IncrLHS && IncrLHS->getName() == IV) {
    if (const auto *RHS = dyn_cast<BinaryExpr>(Incr->getRHS())) {
      const auto *AddL = dyn_cast<VarRef>(RHS->getLHS());
      const auto *AddR = dyn_cast<VarRef>(RHS->getRHS());
      const auto *LitL = dyn_cast<IntLit>(RHS->getLHS());
      const auto *LitR = dyn_cast<IntLit>(RHS->getRHS());
      if (RHS->getOp() == BinaryOpKind::Add && AddL &&
          AddL->getName() == IV && LitR)
        Step = LitR->getValue();
      else if (RHS->getOp() == BinaryOpKind::Add && AddR &&
               AddR->getName() == IV && LitL)
        Step = LitL->getValue();
      else if (RHS->getOp() == BinaryOpKind::Sub && AddL &&
               AddL->getName() == IV && LitR)
        Step = -LitR->getValue();
    }
  }
  if (Step == 0) {
    L.UnsupportedReason =
        "no trailing `" + IV + " = " + IV +
        " + c` increment with a non-zero literal step";
    return;
  }
  if ((Upward && Step < 0) || (Downward && Step > 0)) {
    L.UnsupportedReason = "increment direction contradicts the loop "
                          "condition";
    return;
  }

  // The induction variable must change only through the increment, and
  // the bound must be loop-invariant (a DO loop evaluates it once).
  if (assignsScalar(Body, IV, /*Skip=*/Incr)) {
    L.UnsupportedReason = "induction variable '" + IV +
                          "' is assigned more than once per iteration";
    return;
  }
  if (mentionsScalar(*Bound, IV)) {
    L.UnsupportedReason = "loop bound mentions the induction variable";
    return;
  }
  bool BoundMutated = false;
  forEachSubExpr(*Bound, [&](const Expr &E) {
    if (const auto *V = dyn_cast<VarRef>(&E))
      if (assignsScalar(Body, V->getName(), /*Skip=*/nullptr))
        BoundMutated = true;
  });
  if (BoundMutated) {
    L.UnsupportedReason = "loop bound is modified inside the loop";
    return;
  }
  if (Body.size() == 1) {
    L.UnsupportedReason = "empty loop body";
    return;
  }

  // Inclusive upper bound for the DO form: `<` and `>` are off by one.
  ExprPtr Upper;
  if (const auto *BoundLit = dyn_cast<IntLit>(Bound)) {
    int64_t V = BoundLit->getValue();
    Upper = std::make_unique<IntLit>(Op == BinaryOpKind::Lt   ? V - 1
                                     : Op == BinaryOpKind::Gt ? V + 1
                                                              : V);
  } else if (Op == BinaryOpKind::Lt) {
    Upper = std::make_unique<BinaryExpr>(BinaryOpKind::Sub, Bound->clone(),
                                         std::make_unique<IntLit>(1));
  } else if (Op == BinaryOpKind::Gt) {
    Upper = std::make_unique<BinaryExpr>(BinaryOpKind::Add, Bound->clone(),
                                         std::make_unique<IntLit>(1));
  } else {
    Upper = Bound->clone();
  }
  Upper->setLoc(Bound->getLoc());

  // The body minus the increment, inner loops replaced by their reduced
  // forms.
  StmtList Reduced = reduceBody(L, Body);
  Reduced.pop_back();

  auto Raw = std::make_unique<DoLoopStmt>(IV, Init->getRHS()->clone(),
                                          std::move(Upper),
                                          std::move(Reduced), Step);
  Raw->setLoc(WS.getLoc());
  L.ConsumedInit = Prev;
  L.Reduced = normalizeLoop(*Raw);
}

StmtList LoopNestTree::reduceBody(const NestLoop &L, const StmtList &Body) {
  StmtList Result;
  Result.reserve(Body.size());
  for (const StmtPtr &S : Body) {
    StmtPtr Copy;
    switch (S->getKind()) {
    case Stmt::Kind::Assign:
    case Stmt::Kind::Break:
      Copy = S->clone();
      break;
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S.get());
      Copy = std::make_unique<IfStmt>(IS->getCond()->clone(),
                                      reduceBody(L, IS->getThen()),
                                      reduceBody(L, IS->getElse()));
      Copy->setLoc(S->getLoc());
      break;
    }
    case Stmt::Kind::DoLoop:
    case Stmt::Kind::While: {
      // Every loop reachable without crossing another loop is a direct
      // child; splice in its reduced form.
      const NestLoop *Child = nullptr;
      for (const NestLoop *C : L.Children)
        if (C->Source == S.get())
          Child = C;
      if (!Child || !Child->Reduced)
        throw std::logic_error("reduceBody: inner loop without a reduced "
                               "child record");
      Copy = Child->Reduced->clone();
      break;
    }
    }
    Result.push_back(std::move(Copy));
  }
  return Result;
}

void LoopNestTree::assignAnalyzedForms(NestLoop &Root) {
  // Pair each supported child with its embedded copy inside the parent's
  // analyzed form, in source order, then recurse. The reduced body
  // mirrors the source structure one-to-one, so order matching is exact.
  std::vector<NestLoop *> Work{&Root};
  while (!Work.empty()) {
    NestLoop *Node = Work.back();
    Work.pop_back();
    std::vector<const DoLoopStmt *> Embedded;
    collectOwnLevelLoops(Node->Analyzed->getBody(), Embedded);
    assert(Embedded.size() == Node->Children.size() &&
           "reduced body does not mirror the nest");
    for (unsigned I = 0; I != Node->Children.size(); ++I) {
      Node->Children[I]->Analyzed = Embedded[I];
      Work.push_back(Node->Children[I]);
    }
  }
}
