//===- analysis/LoopAnalysisSession.h - Cached per-loop analysis -*- C++ -*-==//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A LoopAnalysisSession is constructed once per loop and then hands out
/// framework instances and solutions for any number of (G, K) problems
/// without re-parsing the loop body: the flow graph, reference universe,
/// and both traversal orientations are built once and shared, so the
/// four paper problems (register pipelining runs delta-available values;
/// load/store elimination adds the per-occurrence variants and delta-busy
/// stores; unrolling adds delta-reaching references) pay the
/// problem-independent preprocessing exactly once. Instances and
/// solutions are memoized by problem parameters, so clients can ask
/// repeatedly for free.
///
/// \code
///   LoopAnalysisSession S(P, *P.getFirstLoop());
///   const SolveResult &Avail = S.solve(ProblemSpec::availableValues());
///   const SolveResult &Busy = S.solve(ProblemSpec::busyStores());
/// \endcode
///
/// Sessions on distinct loops share no mutable state, which is the
/// invariant the parallel ProgramAnalysisDriver builds on. One session
/// must only be used from one thread at a time.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_ANALYSIS_LOOPANALYSISSESSION_H
#define ARDF_ANALYSIS_LOOPANALYSISSESSION_H

#include "dataflow/CompiledFlow.h"
#include "dataflow/FlowSummary.h"
#include "dataflow/Framework.h"

#include <memory>
#include <vector>

namespace ardf {

/// A discovered recurrent access pattern: the instance of \p SourceId
/// generated \p Distance iterations earlier is guaranteed (must-problems)
/// or possible (may-problems) to be the one \p SinkId touches.
struct ReusePair {
  /// Occurrence id of the generating reference (tracked).
  unsigned SourceId;

  /// Occurrence id of the consuming reference.
  unsigned SinkId;

  /// Iteration distance between generation and reuse (>= 0; 0 means the
  /// same iteration).
  int64_t Distance;
};

/// Enumerates reuse pairs from a solved instance: for every occurrence
/// matching \p SinkSel and every tracked reference, reports a pair when
/// a constant iteration distance exists and lies within the solved range
/// [pr(d, n), IN[n, d]]. The sink's own generation site is skipped.
std::vector<ReusePair> collectReusePairs(const FrameworkInstance &FW,
                                         const SolveResult &Result,
                                         RefSelector SinkSel);

/// Hit/miss tallies of every cache a session keeps, one pair per cache:
/// framework instances, solutions, compiled flow programs, and the
/// shared preserve-constant cache. A hit means the memoized object was
/// returned; a miss means it was built (so misses equal the counts the
/// old hits-excluded accessors reported). Mirrored into the telemetry
/// counters when a telemetry context is installed.
struct SessionCacheStats {
  uint64_t InstanceHits = 0;
  uint64_t InstanceMisses = 0;
  uint64_t SolutionHits = 0;
  uint64_t SolutionMisses = 0;
  uint64_t CompiledHits = 0;
  uint64_t CompiledMisses = 0;
  uint64_t GroupHits = 0;
  uint64_t GroupMisses = 0;
  uint64_t SummaryHits = 0;
  uint64_t SummaryMisses = 0;
  uint64_t PreserveHits = 0;
  uint64_t PreserveMisses = 0;
};

/// Cached per-loop analysis state: owns the problem-independent tables
/// of one loop and memoizes framework instances and solutions per
/// problem.
class LoopAnalysisSession {
public:
  /// Builds the session for \p Loop. A non-empty \p WithRespectTo
  /// analyzes the body with respect to an enclosing loop's induction
  /// variable (Section 3.6); the local one becomes a symbolic constant
  /// and the trip count is taken from \p EnclosingTripCount.
  LoopAnalysisSession(const Program &P, const DoLoopStmt &Loop,
                      const std::string &WithRespectTo = "",
                      int64_t EnclosingTripCount = UnknownTripCount);

  const Program &program() const { return *Prog; }
  const DoLoopStmt &loop() const { return *TheLoop; }
  const LoopFlowGraph &graph() const { return *Graph; }
  const ReferenceUniverse &universe() const { return *Universe; }

  /// The trip count instances of this session saturate at.
  int64_t tripCount() const { return TripCount; }

  /// The memoized framework instance for \p Spec (built on first use;
  /// problems are identified by their (G, K, mode, direction, grouping)
  /// parameters, not their name).
  const FrameworkInstance &instance(const ProblemSpec &Spec);

  /// The memoized solution for (\p Spec, \p Opts). The reference stays
  /// valid for the lifetime of the session. With a packed engine
  /// (PackedKernel or PackedSimd) the solve runs the packed kernel over
  /// the memoized compiled flow program (bit-identical results;
  /// distinct cache entry from the reference engine's).
  const SolveResult &solve(const ProblemSpec &Spec,
                           const SolverOptions &Opts = SolverOptions());

  /// Solves every spec of \p Specs, returning the memoized solutions in
  /// spec order (references stay valid for the session's lifetime, like
  /// solve). With a packed engine on the plain paper schedule, the
  /// specs that miss the solution cache are fused per direction into
  /// one CompiledFlowGroup and solved in a single interleaved sweep;
  /// every other configuration (reference engine, fixpoint iteration,
  /// history recording) falls back to per-spec solve calls. Either way
  /// each returned solution is bit-identical to solve(Spec, Opts).
  std::vector<const SolveResult *>
  solveInterleaved(const std::vector<ProblemSpec> &Specs,
                   const SolverOptions &Opts = SolverOptions());

  /// The memoized compiled flow program of \p Spec's instance (lowered
  /// on first use; what the packed engines solve against).
  const CompiledFlowProgram &compiledFlow(const ProblemSpec &Spec);

  /// The memoized transfer summary of \p Spec's compiled program
  /// (composed on first use; what Engine::Summary applies). Memoized
  /// beside the compiled program and independent of any budget -- the
  /// budget is replayed per application -- so one summary serves every
  /// re-solve of the instance. May come back with Valid == false, in
  /// which case solve falls back to the kernel.
  const FlowSummary &flowSummary(const ProblemSpec &Spec);

  /// The memoized fused group of \p Specs' compiled programs, in spec
  /// order (lowered on first use; what solveInterleaved sweeps). Pre:
  /// \p Specs is non-empty and all specs share one direction.
  const CompiledFlowGroup &
  compiledFlowGroup(const std::vector<ProblemSpec> &Specs);

  /// Reuse pairs of \p Spec's solution (solving first if needed).
  std::vector<ReusePair> reusePairs(const ProblemSpec &Spec,
                                    RefSelector SinkSel,
                                    const SolverOptions &Opts =
                                        SolverOptions());

  /// Distinct framework instances built so far.
  unsigned instancesBuilt() const { return Instances.size(); }

  /// Preserve constants memoized across this session's instances.
  const PreserveCache &preserveCache() const { return Cache; }

  /// Hit/miss tallies of every session cache (the preserve pair is read
  /// from the shared cache at call time).
  SessionCacheStats cacheStats() const {
    SessionCacheStats S = Stats;
    S.PreserveHits = Cache.hits();
    S.PreserveMisses = Cache.misses();
    return S;
  }

  /// Solver runs performed so far. Exactly the solution-cache misses of
  /// cacheStats(); kept for callers that only care about solve count.
  unsigned solvesPerformed() const {
    return static_cast<unsigned>(Stats.SolutionMisses);
  }

private:
  const LoopOrientation &orientation(FlowDirection Dir);

  struct Instance {
    ProblemSpec Spec;
    FrameworkInstance FW;
    /// Lazily lowered packed flow program (Engine::PackedKernel).
    std::unique_ptr<CompiledFlowProgram> Compiled;
    /// Lazily composed transfer summary (Engine::Summary).
    std::unique_ptr<FlowSummary> Summary;
  };

  Instance &instanceRecord(const ProblemSpec &Spec);
  const CompiledFlowProgram &compiledFor(Instance &I);
  struct Solution {
    ProblemSpec Spec;
    SolverOptions Opts;
    SolveResult Result;
  };

  /// Non-counting solution-cache probe (solveInterleaved peeks without
  /// distorting the hit/miss tallies; the final solve() fill pass does
  /// the counting).
  const Solution *lookupSolution(const ProblemSpec &Spec,
                                 const SolverOptions &Opts) const;

  struct Group {
    /// The fused parts in part order (stable addresses: compiled
    /// programs are memoized per instance record).
    std::vector<const CompiledFlowProgram *> Parts;
    CompiledFlowGroup Fused;
  };

  const CompiledFlowGroup &
  compiledGroup(const std::vector<const CompiledFlowProgram *> &Parts);

  const Program *Prog;
  const DoLoopStmt *TheLoop;
  std::unique_ptr<LoopFlowGraph> Graph;
  std::unique_ptr<ReferenceUniverse> Universe;
  int64_t TripCount;
  /// Lazily built per direction; stable addresses (instances point in).
  std::unique_ptr<LoopOrientation> Forward;
  std::unique_ptr<LoopOrientation> Backward;
  /// Preserve constants shared by every instance of this session.
  PreserveCache Cache;
  /// unique_ptr entries so handed-out references survive growth.
  std::vector<std::unique_ptr<Instance>> Instances;
  std::vector<std::unique_ptr<Solution>> Solutions;
  std::vector<std::unique_ptr<Group>> Groups;
  /// Per-cache hit/miss tallies (preserve pair lives in Cache).
  SessionCacheStats Stats;
};

} // namespace ardf

#endif // ARDF_ANALYSIS_LOOPANALYSISSESSION_H
