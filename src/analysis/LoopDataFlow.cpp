//===- analysis/LoopDataFlow.cpp - Analysis facade -----------------------===//

#include "analysis/LoopDataFlow.h"

using namespace ardf;

LoopDataFlow::LoopDataFlow(const Program &P, const DoLoopStmt &Loop,
                           ProblemSpec Spec, SolverOptions Opts)
    : Owned(std::make_unique<LoopAnalysisSession>(P, Loop)),
      Session(Owned.get()), FW(&Session->instance(Spec)),
      Result(&Session->solve(Spec, Opts)) {}

LoopDataFlow::LoopDataFlow(const Program &P, const DoLoopStmt &Loop,
                           ProblemSpec Spec,
                           const std::string &WithRespectTo,
                           int64_t EnclosingTripCount, SolverOptions Opts)
    : Owned(std::make_unique<LoopAnalysisSession>(P, Loop, WithRespectTo,
                                                  EnclosingTripCount)),
      Session(Owned.get()), FW(&Session->instance(Spec)),
      Result(&Session->solve(Spec, Opts)) {}

LoopDataFlow::LoopDataFlow(LoopAnalysisSession &Session, ProblemSpec Spec,
                           SolverOptions Opts)
    : Session(&Session), FW(&Session.instance(Spec)),
      Result(&Session.solve(Spec, Opts)) {}
