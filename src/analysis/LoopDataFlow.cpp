//===- analysis/LoopDataFlow.cpp - Analysis facade -----------------------===//

#include "analysis/LoopDataFlow.h"

using namespace ardf;

LoopDataFlow::LoopDataFlow(const Program &P, const DoLoopStmt &Loop,
                           ProblemSpec Spec, SolverOptions Opts) {
  Graph = std::make_unique<LoopFlowGraph>(Loop);
  FW = std::make_unique<FrameworkInstance>(*Graph, P, Spec);
  Result = solveDataFlow(*FW, Opts);
}

LoopDataFlow::LoopDataFlow(const Program &P, const DoLoopStmt &Loop,
                           ProblemSpec Spec,
                           const std::string &WithRespectTo,
                           int64_t EnclosingTripCount, SolverOptions Opts) {
  Graph = std::make_unique<LoopFlowGraph>(Loop);
  FW = std::make_unique<FrameworkInstance>(*Graph, P, Spec, WithRespectTo,
                                           EnclosingTripCount);
  Result = solveDataFlow(*FW, Opts);
}

std::vector<ReusePair> LoopDataFlow::reusePairs(RefSelector SinkSel) const {
  std::vector<ReusePair> Pairs;
  const ReferenceUniverse &U = FW->getUniverse();
  for (const RefOccurrence &Sink : U.occurrences()) {
    if (!selects(SinkSel, Sink) || !Sink.isTrackable())
      continue;
    for (unsigned Idx = 0; Idx != FW->getNumTracked(); ++Idx) {
      const RefOccurrence &Source = FW->getTracked(Idx);
      if (Source.Id == Sink.Id)
        continue;
      // Forward problems: the source executed delta iterations earlier,
      // Source.subscript(i - delta) == Sink.subscript(i). Backward
      // problems look into the future: Source.subscript(i + delta) ==
      // Sink.subscript(i), which is the same equation with the roles
      // swapped.
      std::optional<Rational> Delta =
          FW->getSpec().isBackward()
              ? constantReuseDistance(*Sink.Affine, *Source.Affine)
              : constantReuseDistance(*Source.Affine, *Sink.Affine);
      if (!Delta || !Delta->isInteger())
        continue;
      int64_t D = Delta->asInteger();
      if (D < FW->pr(Idx, Sink.Node))
        continue;
      if (!Result.In[Sink.Node][Idx].covers(D))
        continue;
      Pairs.push_back(ReusePair{Source.Id, Sink.Id, D});
    }
  }
  return Pairs;
}
