//===- analysis/LoopAnalysisSession.cpp - Cached per-loop analysis -------===//

#include "analysis/LoopAnalysisSession.h"

#include "support/FailPoint.h"
#include "telemetry/Telemetry.h"

using namespace ardf;

namespace {

/// Problems are cached by parameters, not by display name: two specs
/// with equal (mode, direction, G, K, grouping) share one instance.
bool sameProblem(const ProblemSpec &A, const ProblemSpec &B) {
  return A.Mode == B.Mode && A.Direction == B.Direction && A.Gen == B.Gen &&
         A.Kill == B.Kill && A.GroupByAccess == B.GroupByAccess;
}

} // namespace

LoopAnalysisSession::LoopAnalysisSession(const Program &P,
                                         const DoLoopStmt &Loop,
                                         const std::string &WithRespectTo,
                                         int64_t EnclosingTripCount)
    : Prog(&P), TheLoop(&Loop),
      Graph(std::make_unique<LoopFlowGraph>(Loop)),
      Universe(std::make_unique<ReferenceUniverse>(*Graph, P,
                                                   WithRespectTo)),
      TripCount(WithRespectTo.empty() ||
                        WithRespectTo == Graph->getIndVar()
                    ? Graph->getTripCount()
                    : EnclosingTripCount) {
  telem::count(telem::Counter::SessionsBuilt);
}

const LoopOrientation &LoopAnalysisSession::orientation(FlowDirection Dir) {
  std::unique_ptr<LoopOrientation> &Slot =
      Dir == FlowDirection::Backward ? Backward : Forward;
  if (!Slot)
    Slot = std::make_unique<LoopOrientation>(
        LoopOrientation::compute(*Graph, Dir));
  return *Slot;
}

LoopAnalysisSession::Instance &
LoopAnalysisSession::instanceRecord(const ProblemSpec &Spec) {
  for (const std::unique_ptr<Instance> &I : Instances)
    if (sameProblem(I->Spec, Spec)) {
      ++Stats.InstanceHits;
      telem::count(telem::Counter::SessionInstanceHits);
      return *I;
    }
  ++Stats.InstanceMisses;
  telem::count(telem::Counter::SessionInstanceMisses);
  Instances.push_back(std::make_unique<Instance>(Instance{
      Spec,
      FrameworkInstance(*Universe, orientation(Spec.Direction), Spec,
                        TripCount, &Cache),
      nullptr, nullptr}));
  return *Instances.back();
}

const FrameworkInstance &
LoopAnalysisSession::instance(const ProblemSpec &Spec) {
  return instanceRecord(Spec).FW;
}

const CompiledFlowProgram &
LoopAnalysisSession::compiledFor(Instance &I) {
  if (I.Compiled) {
    ++Stats.CompiledHits;
    telem::count(telem::Counter::SessionCompiledHits);
    return *I.Compiled;
  }
  ++Stats.CompiledMisses;
  telem::count(telem::Counter::SessionCompiledMisses);
  failpoint::evaluate("session.lower");
  I.Compiled = std::make_unique<CompiledFlowProgram>(
      CompiledFlowProgram::compile(I.FW));
  return *I.Compiled;
}

const CompiledFlowProgram &
LoopAnalysisSession::compiledFlow(const ProblemSpec &Spec) {
  return compiledFor(instanceRecord(Spec));
}

const FlowSummary &
LoopAnalysisSession::flowSummary(const ProblemSpec &Spec) {
  Instance &I = instanceRecord(Spec);
  if (I.Summary) {
    ++Stats.SummaryHits;
    telem::count(telem::Counter::SummaryCacheHits);
    return *I.Summary;
  }
  ++Stats.SummaryMisses;
  I.Summary = std::make_unique<FlowSummary>(FlowSummary::lower(compiledFor(I)));
  return *I.Summary;
}

const LoopAnalysisSession::Solution *
LoopAnalysisSession::lookupSolution(const ProblemSpec &Spec,
                                    const SolverOptions &Opts) const {
  for (const std::unique_ptr<Solution> &S : Solutions)
    if (sameProblem(S->Spec, Spec) && S->Opts == Opts)
      return S.get();
  return nullptr;
}

const SolveResult &LoopAnalysisSession::solve(const ProblemSpec &Spec,
                                              const SolverOptions &Opts) {
  if (const Solution *S = lookupSolution(Spec, Opts)) {
    ++Stats.SolutionHits;
    telem::count(telem::Counter::SessionSolutionHits);
    return S->Result;
  }
  ++Stats.SolutionMisses;
  telem::count(telem::Counter::SessionSolutionMisses);
  const FrameworkInstance &FW = instance(Spec);
  SolveResult Result;
  if (Opts.Eng == SolverOptions::Engine::Summary && summaryEligible(Opts)) {
    // The memoized summary serves any budget (replayed per
    // application); an invalid one falls through to the kernel.
    const FlowSummary &S = flowSummary(Spec);
    Result = S.Valid ? applySummary(S, Opts)
                     : solveCompiled(compiledFlow(Spec), Opts);
  } else if (Opts.usesPackedKernel() && !Opts.RecordProvenance) {
    Result = solveCompiled(compiledFlow(Spec), Opts);
  } else {
    // Reference path; RecordProvenance lands here for every engine
    // (solveDataFlow forces the scalar solver under that flag).
    Result = solveDataFlow(FW, Opts);
  }
  Solutions.push_back(std::make_unique<Solution>(
      Solution{Spec, Opts, std::move(Result)}));
  return Solutions.back()->Result;
}

const CompiledFlowGroup &LoopAnalysisSession::compiledGroup(
    const std::vector<const CompiledFlowProgram *> &Parts) {
  for (const std::unique_ptr<Group> &G : Groups)
    if (G->Parts == Parts) {
      ++Stats.GroupHits;
      telem::count(telem::Counter::SessionGroupHits);
      return G->Fused;
    }
  ++Stats.GroupMisses;
  telem::count(telem::Counter::SessionGroupMisses);
  Groups.push_back(std::make_unique<Group>(
      Group{Parts, CompiledFlowGroup::compile(Parts)}));
  return Groups.back()->Fused;
}

const CompiledFlowGroup &LoopAnalysisSession::compiledFlowGroup(
    const std::vector<ProblemSpec> &Specs) {
  std::vector<const CompiledFlowProgram *> Parts;
  Parts.reserve(Specs.size());
  for (const ProblemSpec &Spec : Specs)
    Parts.push_back(&compiledFlow(Spec));
  return compiledGroup(Parts);
}

std::vector<const SolveResult *>
LoopAnalysisSession::solveInterleaved(const std::vector<ProblemSpec> &Specs,
                                      const SolverOptions &Opts) {
  // Fusing requires the packed kernel on the plain paper schedule:
  // change-tracked iteration would couple the members' convergence and
  // history snapshots would interleave their matrices, either of which
  // breaks the per-member bit-identity contract. Summary solves skip
  // fusion too -- each spec's memoized summary is already a zero-pass
  // application, so the fill loop below is the fast path.
  bool Fusable = Opts.usesPackedKernel() &&
                 Opts.Eng != SolverOptions::Engine::Summary &&
                 Opts.Strat == SolverOptions::Strategy::PaperSchedule &&
                 !Opts.RecordHistory && !Opts.RecordProvenance;
  if (Fusable) {
    for (FlowDirection Dir :
         {FlowDirection::Forward, FlowDirection::Backward}) {
      // The specs of this direction that miss the solution cache, first
      // occurrence only (duplicates resolve from the cache afterwards).
      std::vector<const ProblemSpec *> Need;
      for (const ProblemSpec &Spec : Specs) {
        if (Spec.Direction != Dir || lookupSolution(Spec, Opts))
          continue;
        bool Seen = false;
        for (const ProblemSpec *N : Need)
          Seen |= sameProblem(*N, Spec);
        if (!Seen)
          Need.push_back(&Spec);
      }
      // A lone miss gains nothing from the group layout; the fill loop
      // below solves it through the ordinary memoized path.
      if (Need.size() < 2)
        continue;
      std::vector<const CompiledFlowProgram *> Parts;
      Parts.reserve(Need.size());
      for (const ProblemSpec *Spec : Need)
        Parts.push_back(&compiledFlow(*Spec));
      std::vector<SolveResult> Solved =
          solveCompiledGroup(compiledGroup(Parts), Opts);
      for (size_t I = 0; I != Need.size(); ++I) {
        ++Stats.SolutionMisses;
        telem::count(telem::Counter::SessionSolutionMisses);
        Solutions.push_back(std::make_unique<Solution>(
            Solution{*Need[I], Opts, std::move(Solved[I])}));
      }
    }
  }
  std::vector<const SolveResult *> Results;
  Results.reserve(Specs.size());
  for (const ProblemSpec &Spec : Specs)
    Results.push_back(&solve(Spec, Opts));
  return Results;
}

std::vector<ReusePair>
LoopAnalysisSession::reusePairs(const ProblemSpec &Spec,
                                RefSelector SinkSel,
                                const SolverOptions &Opts) {
  return collectReusePairs(instance(Spec), solve(Spec, Opts), SinkSel);
}

std::vector<ReusePair> ardf::collectReusePairs(const FrameworkInstance &FW,
                                               const SolveResult &Result,
                                               RefSelector SinkSel) {
  std::vector<ReusePair> Pairs;
  unsigned NumTracked = FW.getNumTracked();
  if (NumTracked == 0)
    return Pairs;
  const ReferenceUniverse &U = FW.getUniverse();
  const bool Backward = FW.getSpec().isBackward();

  // The tracked representatives are loop-invariant: resolve each tuple
  // element's id and affine view once instead of per (sink, source)
  // combination.
  struct Source {
    unsigned Id;
    const AffineAccess *Affine;
  };
  std::vector<Source> Sources;
  Sources.reserve(NumTracked);
  for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
    const RefOccurrence &Rep = FW.getTracked(Idx);
    Sources.push_back(Source{Rep.Id, &*Rep.Affine});
  }
  Pairs.reserve(U.size());

  for (const RefOccurrence &Sink : U.occurrences()) {
    if (!selects(SinkSel, Sink) || !Sink.isTrackable())
      continue;
    const AffineAccess &SinkAffine = *Sink.Affine;
    DistanceMatrix::ConstRow InRow = Result.In[Sink.Node];
    for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
      if (Sources[Idx].Id == Sink.Id)
        continue;
      // Forward problems: the source executed delta iterations earlier,
      // Source.subscript(i - delta) == Sink.subscript(i). Backward
      // problems look into the future: Source.subscript(i + delta) ==
      // Sink.subscript(i), which is the same equation with the roles
      // swapped.
      std::optional<Rational> Delta =
          Backward ? constantReuseDistance(SinkAffine, *Sources[Idx].Affine)
                   : constantReuseDistance(*Sources[Idx].Affine, SinkAffine);
      if (!Delta || !Delta->isInteger())
        continue;
      int64_t D = Delta->asInteger();
      if (D < FW.pr(Idx, Sink.Node))
        continue;
      if (!InRow[Idx].covers(D))
        continue;
      Pairs.push_back(ReusePair{Sources[Idx].Id, Sink.Id, D});
    }
  }
  return Pairs;
}
