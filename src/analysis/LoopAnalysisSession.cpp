//===- analysis/LoopAnalysisSession.cpp - Cached per-loop analysis -------===//

#include "analysis/LoopAnalysisSession.h"

#include "support/FailPoint.h"
#include "telemetry/Telemetry.h"

using namespace ardf;

namespace {

/// Problems are cached by parameters, not by display name: two specs
/// with equal (mode, direction, G, K, grouping) share one instance.
bool sameProblem(const ProblemSpec &A, const ProblemSpec &B) {
  return A.Mode == B.Mode && A.Direction == B.Direction && A.Gen == B.Gen &&
         A.Kill == B.Kill && A.GroupByAccess == B.GroupByAccess;
}

} // namespace

LoopAnalysisSession::LoopAnalysisSession(const Program &P,
                                         const DoLoopStmt &Loop,
                                         const std::string &WithRespectTo,
                                         int64_t EnclosingTripCount)
    : Prog(&P), TheLoop(&Loop),
      Graph(std::make_unique<LoopFlowGraph>(Loop)),
      Universe(std::make_unique<ReferenceUniverse>(*Graph, P,
                                                   WithRespectTo)),
      TripCount(WithRespectTo.empty() ||
                        WithRespectTo == Graph->getIndVar()
                    ? Graph->getTripCount()
                    : EnclosingTripCount) {
  telem::count(telem::Counter::SessionsBuilt);
}

const LoopOrientation &LoopAnalysisSession::orientation(FlowDirection Dir) {
  std::unique_ptr<LoopOrientation> &Slot =
      Dir == FlowDirection::Backward ? Backward : Forward;
  if (!Slot)
    Slot = std::make_unique<LoopOrientation>(
        LoopOrientation::compute(*Graph, Dir));
  return *Slot;
}

LoopAnalysisSession::Instance &
LoopAnalysisSession::instanceRecord(const ProblemSpec &Spec) {
  for (const std::unique_ptr<Instance> &I : Instances)
    if (sameProblem(I->Spec, Spec)) {
      ++Stats.InstanceHits;
      telem::count(telem::Counter::SessionInstanceHits);
      return *I;
    }
  ++Stats.InstanceMisses;
  telem::count(telem::Counter::SessionInstanceMisses);
  Instances.push_back(std::make_unique<Instance>(Instance{
      Spec,
      FrameworkInstance(*Universe, orientation(Spec.Direction), Spec,
                        TripCount, &Cache),
      nullptr}));
  return *Instances.back();
}

const FrameworkInstance &
LoopAnalysisSession::instance(const ProblemSpec &Spec) {
  return instanceRecord(Spec).FW;
}

const CompiledFlowProgram &
LoopAnalysisSession::compiledFlow(const ProblemSpec &Spec) {
  Instance &I = instanceRecord(Spec);
  if (I.Compiled) {
    ++Stats.CompiledHits;
    telem::count(telem::Counter::SessionCompiledHits);
    return *I.Compiled;
  }
  ++Stats.CompiledMisses;
  telem::count(telem::Counter::SessionCompiledMisses);
  failpoint::evaluate("session.lower");
  I.Compiled = std::make_unique<CompiledFlowProgram>(
      CompiledFlowProgram::compile(I.FW));
  return *I.Compiled;
}

const SolveResult &LoopAnalysisSession::solve(const ProblemSpec &Spec,
                                              const SolverOptions &Opts) {
  for (const std::unique_ptr<Solution> &S : Solutions)
    if (sameProblem(S->Spec, Spec) && S->Opts == Opts) {
      ++Stats.SolutionHits;
      telem::count(telem::Counter::SessionSolutionHits);
      return S->Result;
    }
  ++Stats.SolutionMisses;
  telem::count(telem::Counter::SessionSolutionMisses);
  const FrameworkInstance &FW = instance(Spec);
  SolveResult Result = Opts.Eng == SolverOptions::Engine::PackedKernel
                           ? solveCompiled(compiledFlow(Spec), Opts)
                           : solveDataFlow(FW, Opts);
  Solutions.push_back(std::make_unique<Solution>(
      Solution{Spec, Opts, std::move(Result)}));
  return Solutions.back()->Result;
}

std::vector<ReusePair>
LoopAnalysisSession::reusePairs(const ProblemSpec &Spec,
                                RefSelector SinkSel,
                                const SolverOptions &Opts) {
  return collectReusePairs(instance(Spec), solve(Spec, Opts), SinkSel);
}

std::vector<ReusePair> ardf::collectReusePairs(const FrameworkInstance &FW,
                                               const SolveResult &Result,
                                               RefSelector SinkSel) {
  std::vector<ReusePair> Pairs;
  unsigned NumTracked = FW.getNumTracked();
  if (NumTracked == 0)
    return Pairs;
  const ReferenceUniverse &U = FW.getUniverse();
  const bool Backward = FW.getSpec().isBackward();

  // The tracked representatives are loop-invariant: resolve each tuple
  // element's id and affine view once instead of per (sink, source)
  // combination.
  struct Source {
    unsigned Id;
    const AffineAccess *Affine;
  };
  std::vector<Source> Sources;
  Sources.reserve(NumTracked);
  for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
    const RefOccurrence &Rep = FW.getTracked(Idx);
    Sources.push_back(Source{Rep.Id, &*Rep.Affine});
  }
  Pairs.reserve(U.size());

  for (const RefOccurrence &Sink : U.occurrences()) {
    if (!selects(SinkSel, Sink) || !Sink.isTrackable())
      continue;
    const AffineAccess &SinkAffine = *Sink.Affine;
    DistanceMatrix::ConstRow InRow = Result.In[Sink.Node];
    for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
      if (Sources[Idx].Id == Sink.Id)
        continue;
      // Forward problems: the source executed delta iterations earlier,
      // Source.subscript(i - delta) == Sink.subscript(i). Backward
      // problems look into the future: Source.subscript(i + delta) ==
      // Sink.subscript(i), which is the same equation with the roles
      // swapped.
      std::optional<Rational> Delta =
          Backward ? constantReuseDistance(SinkAffine, *Sources[Idx].Affine)
                   : constantReuseDistance(*Sources[Idx].Affine, SinkAffine);
      if (!Delta || !Delta->isInteger())
        continue;
      int64_t D = Delta->asInteger();
      if (D < FW.pr(Idx, Sink.Node))
        continue;
      if (!InRow[Idx].covers(D))
        continue;
      Pairs.push_back(ReusePair{Sources[Idx].Id, Sink.Id, D});
    }
  }
  return Pairs;
}
