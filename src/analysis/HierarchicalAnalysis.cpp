//===- analysis/HierarchicalAnalysis.cpp - Whole-program driver ----------===//

#include "analysis/HierarchicalAnalysis.h"

#include <algorithm>

using namespace ardf;

HierarchicalAnalysis::HierarchicalAnalysis(const Program &P,
                                           ProblemSpec Spec)
    : Prog(&P), Spec(Spec), Tree(std::make_unique<LoopNestTree>(P)) {
  Tree->forEach([&](const NestLoop &N) {
    if (N.isSupported())
      Results.push_back(LoopResult{N.Analyzed, N.Source, N.Depth, nullptr});
  });
  // Innermost first: deeper loops analyzed before their parents
  // (stable, so siblings stay in program order).
  std::stable_sort(Results.begin(), Results.end(),
                   [](const LoopResult &A, const LoopResult &B) {
                     return A.Depth > B.Depth;
                   });
  for (LoopResult &R : Results)
    R.DF = std::make_unique<LoopDataFlow>(*Prog, *R.Loop, Spec);
}

const LoopDataFlow *HierarchicalAnalysis::resultFor(const Stmt &Loop) const {
  for (const LoopResult &R : Results)
    if (R.Loop == &Loop || R.Source == &Loop)
      return R.DF.get();
  return nullptr;
}

unsigned HierarchicalAnalysis::totalNodeVisits() const {
  unsigned Total = 0;
  for (const LoopResult &R : Results)
    Total += R.DF->result().NodeVisits;
  return Total;
}

std::vector<HierarchicalAnalysis::TaggedReuse>
HierarchicalAnalysis::allReusePairs(RefSelector SinkSel) const {
  std::vector<TaggedReuse> All;
  for (const LoopResult &R : Results)
    for (const ReusePair &Pair : R.DF->reusePairs(SinkSel))
      All.push_back(TaggedReuse{R.Loop, Pair});
  return All;
}
