//===- analysis/HierarchicalAnalysis.cpp - Whole-program driver ----------===//

#include "analysis/HierarchicalAnalysis.h"

#include <algorithm>

using namespace ardf;

HierarchicalAnalysis::HierarchicalAnalysis(const Program &P,
                                           ProblemSpec Spec)
    : Prog(&P), Spec(Spec) {
  collect(P.getStmts(), 0);
  // Innermost first: deeper loops analyzed before their parents
  // (stable, so siblings stay in program order).
  std::stable_sort(Results.begin(), Results.end(),
                   [](const LoopResult &A, const LoopResult &B) {
                     return A.Depth > B.Depth;
                   });
  for (LoopResult &R : Results)
    R.DF = std::make_unique<LoopDataFlow>(*Prog, *R.Loop, Spec);
}

void HierarchicalAnalysis::collect(const StmtList &Stmts, unsigned Depth) {
  for (const StmtPtr &S : Stmts) {
    switch (S->getKind()) {
    case Stmt::Kind::Assign:
      break;
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S.get());
      collect(IS->getThen(), Depth);
      collect(IS->getElse(), Depth);
      break;
    }
    case Stmt::Kind::DoLoop: {
      const auto *Loop = cast<DoLoopStmt>(S.get());
      Results.push_back(LoopResult{Loop, Depth, nullptr});
      collect(Loop->getBody(), Depth + 1);
      break;
    }
    }
  }
}

const LoopDataFlow *
HierarchicalAnalysis::resultFor(const DoLoopStmt &Loop) const {
  for (const LoopResult &R : Results)
    if (R.Loop == &Loop)
      return R.DF.get();
  return nullptr;
}

unsigned HierarchicalAnalysis::totalNodeVisits() const {
  unsigned Total = 0;
  for (const LoopResult &R : Results)
    Total += R.DF->result().NodeVisits;
  return Total;
}

std::vector<HierarchicalAnalysis::TaggedReuse>
HierarchicalAnalysis::allReusePairs(RefSelector SinkSel) const {
  std::vector<TaggedReuse> All;
  for (const LoopResult &R : Results)
    for (const ReusePair &Pair : R.DF->reusePairs(SinkSel))
      All.push_back(TaggedReuse{R.Loop, Pair});
  return All;
}
