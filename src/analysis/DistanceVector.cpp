//===- analysis/DistanceVector.cpp - Tight-nest distance vectors ---------===//

#include "analysis/DistanceVector.h"

#include "affine/AffineAccess.h"
#include "support/Rational.h"

#include <optional>

using namespace ardf;

namespace {

/// One linear equation ai*di + aj*dj == c over the distance vector.
struct VecEquation {
  int64_t Ai;
  int64_t Aj;
  int64_t C;
};

/// Extracts the coefficients of one subscript dimension; requires the
/// polynomial to be affine in both IVs with integer coefficients and a
/// constant remainder difference.
std::optional<VecEquation> equationFor(const Expr &S1, const Expr &S2,
                                       const std::string &OuterIV,
                                       const std::string &InnerIV) {
  std::optional<Poly> P1 = evalToPoly(S1);
  std::optional<Poly> P2 = evalToPoly(S2);
  if (!P1 || !P2)
    return std::nullopt;
  auto SplitOuter1 = P1->splitAffine(OuterIV);
  auto SplitOuter2 = P2->splitAffine(OuterIV);
  if (!SplitOuter1 || !SplitOuter2)
    return std::nullopt;
  // Coefficient on the outer IV must be an inner-IV-free integer and
  // agree between the two references.
  if (!SplitOuter1->first.isConstant() || !SplitOuter2->first.isConstant())
    return std::nullopt;
  if (SplitOuter1->first != SplitOuter2->first)
    return std::nullopt;
  auto SplitInner1 = SplitOuter1->second.splitAffine(InnerIV);
  auto SplitInner2 = SplitOuter2->second.splitAffine(InnerIV);
  if (!SplitInner1 || !SplitInner2)
    return std::nullopt;
  if (!SplitInner1->first.isConstant() || !SplitInner2->first.isConstant())
    return std::nullopt;
  if (SplitInner1->first != SplitInner2->first)
    return std::nullopt;
  Poly Diff = SplitInner1->second - SplitInner2->second;
  if (!Diff.isConstant())
    return std::nullopt;
  return VecEquation{SplitOuter1->first.getConstant(),
                     SplitInner1->first.getConstant(),
                     Diff.getConstant()};
}

/// True when (AOut, AIn) lexicographically precedes (BOut, BIn).
bool lexLess(int64_t AOut, int64_t AIn, int64_t BOut, int64_t BIn) {
  return AOut != BOut ? AOut < BOut : AIn < BIn;
}

} // namespace

std::optional<std::pair<int64_t, int64_t>>
ardf::solveDistanceVector(const ArrayRefExpr &Source,
                          const ArrayRefExpr &Sink,
                          const std::string &OuterIV,
                          const std::string &InnerIV) {
  if (Source.getName() != Sink.getName() ||
      Source.getNumSubscripts() != Sink.getNumSubscripts())
    return std::nullopt;

  std::vector<VecEquation> Eqs;
  for (unsigned K = 0, N = Source.getNumSubscripts(); K != N; ++K) {
    std::optional<VecEquation> Eq = equationFor(
        *Source.getSubscript(K), *Sink.getSubscript(K), OuterIV, InnerIV);
    if (!Eq)
      return std::nullopt;
    Eqs.push_back(*Eq);
  }

  // Solve the stacked system for (di, dj); a reuse vector must be the
  // unique constant solution.
  std::optional<std::pair<int64_t, int64_t>> Solution;
  for (size_t A = 0; A != Eqs.size(); ++A) {
    for (size_t B = A + 1; B != Eqs.size(); ++B) {
      int64_t Det = Eqs[A].Ai * Eqs[B].Aj - Eqs[B].Ai * Eqs[A].Aj;
      if (Det == 0)
        continue;
      Rational Di(Eqs[A].C * Eqs[B].Aj - Eqs[B].C * Eqs[A].Aj, Det);
      Rational Dj(Eqs[A].Ai * Eqs[B].C - Eqs[B].Ai * Eqs[A].C, Det);
      if (!Di.isInteger() || !Dj.isInteger())
        return std::nullopt;
      Solution = {Di.asInteger(), Dj.asInteger()};
      break;
    }
    if (Solution)
      break;
  }
  if (!Solution) {
    // Rank < 2: degenerate systems are solvable only when every
    // equation is 0 == 0 (the same cell every iteration).
    for (const VecEquation &Eq : Eqs)
      if (Eq.Ai != 0 || Eq.Aj != 0 || Eq.C != 0)
        return std::nullopt;
    return std::make_pair<int64_t, int64_t>(0, 0);
  }
  // Consistency of every dimension.
  for (const VecEquation &Eq : Eqs)
    if (Eq.Ai * Solution->first + Eq.Aj * Solution->second != Eq.C)
      return std::nullopt;
  return Solution;
}

NestAnalysis ardf::analyzeTightNest(const Program &P,
                                    const DoLoopStmt &Outer) {
  NestAnalysis Result;
  if (Outer.getBody().size() != 1)
    return Result;
  const auto *Inner = dyn_cast<DoLoopStmt>(Outer.getBody()[0].get());
  if (!Inner)
    return Result;
  for (const StmtPtr &S : Inner->getBody())
    if (isa<DoLoopStmt>(S.get()))
      return Result; // only two-deep nests

  Result.Analyzable = true;
  Result.OuterIV = Outer.getIndVar();
  Result.InnerIV = Inner->getIndVar();

  // Collect references with their roles and body positions; the
  // conservative must-reuse argument below only admits unconditional
  // definitions (a guarded def breaks the all-paths guarantee).
  struct Ref {
    const ArrayRefExpr *R;
    bool IsDef;
    bool Conditional;
    unsigned Position;
  };
  std::vector<Ref> Refs;
  unsigned Position = 0;
  std::function<void(const StmtList &, bool)> Walk =
      [&](const StmtList &Stmts, bool Conditional) {
        for (const StmtPtr &S : Stmts) {
          if (const auto *AS = dyn_cast<AssignStmt>(S.get())) {
            forEachSubExpr(*AS->getRHS(), [&](const Expr &E) {
              if (const auto *AR = dyn_cast<ArrayRefExpr>(&E))
                Refs.push_back(Ref{AR, false, Conditional, Position});
            });
            if (const ArrayRefExpr *Target = AS->getArrayTarget())
              Refs.push_back(Ref{Target, true, Conditional, Position});
            ++Position;
          } else if (const auto *IS = dyn_cast<IfStmt>(S.get())) {
            forEachSubExpr(*IS->getCond(), [&](const Expr &E) {
              if (const auto *AR = dyn_cast<ArrayRefExpr>(&E))
                Refs.push_back(Ref{AR, false, Conditional, Position});
            });
            ++Position;
            Walk(IS->getThen(), true);
            Walk(IS->getElse(), true);
          }
        }
      };
  Walk(Inner->getBody(), false);
  (void)P;

  for (const Ref &Source : Refs) {
    if (!Source.IsDef || Source.Conditional)
      continue;
    for (const Ref &Sink : Refs) {
      if (Sink.IsDef || Sink.R == Source.R)
        continue;
      std::optional<std::pair<int64_t, int64_t>> V = solveDistanceVector(
          *Source.R, *Sink.R, Result.OuterIV, Result.InnerIV);
      if (!V)
        continue;
      auto [DOut, DIn] = *V;
      // The source must execute before the sink: lexicographically
      // positive vector, or zero vector with the source earlier in the
      // body.
      bool Positive = lexLess(0, 0, DOut, DIn) ||
                      (DOut == 0 && DIn == 0 &&
                       Source.Position < Sink.Position);
      if (!Positive)
        continue;

      // Conservative kill scan: any other def of the array that can
      // alias the sink at a vector strictly between source and sink
      // invalidates the reuse; a def with no constant vector to the
      // sink is assumed to kill.
      bool Killed = false;
      for (const Ref &Killer : Refs) {
        if (!Killer.IsDef || Killer.R == Source.R ||
            Killer.R->getName() != Source.R->getName())
          continue;
        std::optional<std::pair<int64_t, int64_t>> KV =
            solveDistanceVector(*Killer.R, *Sink.R, Result.OuterIV,
                                Result.InnerIV);
        if (!KV) {
          Killed = true;
          break;
        }
        auto [KOut, KIn] = *KV;
        bool InWindow =
            (lexLess(0, 0, KOut, KIn) || (KOut == 0 && KIn == 0)) &&
            lexLess(KOut, KIn, DOut, DIn);
        if (InWindow) {
          Killed = true;
          break;
        }
      }
      if (Killed)
        continue;
      Result.Reuses.push_back(
          VectorReuse{Source.R, Sink.R, DOut, DIn});
    }
  }
  return Result;
}
