//===- analysis/LoopDataFlow.h - Analysis facade ---------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LoopDataFlow bundles graph construction, framework instantiation, and
/// the solve for one loop and one problem — the one-call entry point used
/// by the optimization clients and the examples:
///
/// \code
///   Program P = parseOrDie(Source);
///   LoopDataFlow DF(P, *P.getFirstLoop(), ProblemSpec::availableValues());
///   for (const ReusePair &R : DF.reusePairs(RefSelector::Uses)) ...
/// \endcode
///
/// It is a thin view over a LoopAnalysisSession: the constructors above
/// own a private session; the session constructor attaches to a shared
/// one, so a client that runs several problems on the same loop reuses
/// the graph and reference universe instead of rebuilding them.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_ANALYSIS_LOOPDATAFLOW_H
#define ARDF_ANALYSIS_LOOPDATAFLOW_H

#include "analysis/LoopAnalysisSession.h"

#include <memory>
#include <vector>

namespace ardf {

/// Facade exposing the flow graph, framework instance, and solution of
/// one problem on one loop.
class LoopDataFlow {
public:
  LoopDataFlow(const Program &P, const DoLoopStmt &Loop, ProblemSpec Spec,
               SolverOptions Opts = SolverOptions());

  /// Section 3.6 variant: analyzes the body of \p Loop with respect to
  /// the induction variable \p WithRespectTo of an enclosing loop (the
  /// local induction variable becomes a symbolic constant).
  LoopDataFlow(const Program &P, const DoLoopStmt &Loop, ProblemSpec Spec,
               const std::string &WithRespectTo,
               int64_t EnclosingTripCount = UnknownTripCount,
               SolverOptions Opts = SolverOptions());

  /// Batched variant: draws (and memoizes) the problem's instance and
  /// solution in \p Session instead of rebuilding the loop's tables.
  /// \p Session must outlive this object.
  LoopDataFlow(LoopAnalysisSession &Session, ProblemSpec Spec,
               SolverOptions Opts = SolverOptions());

  const LoopFlowGraph &graph() const { return Session->graph(); }
  const FrameworkInstance &framework() const { return *FW; }
  const SolveResult &result() const { return *Result; }
  const ReferenceUniverse &universe() const { return Session->universe(); }

  /// The underlying session (shared or privately owned); further
  /// problems solved through it reuse this loop's tables.
  LoopAnalysisSession &session() const { return *Session; }

  /// The data flow value for tracked occurrence \p TrackedIdx at node
  /// \p Node (IN tuple; node-exit information for backward problems).
  DistanceValue valueAt(unsigned Node, unsigned TrackedIdx) const {
    return Result->In[Node][TrackedIdx];
  }

  /// Enumerates reuse pairs: for every occurrence matching \p SinkSel
  /// and every tracked reference, reports a pair when a constant
  /// iteration distance exists and lies within the solved range
  /// [pr(d, n), IN[n, d]]. The sink's own generation site is skipped.
  std::vector<ReusePair> reusePairs(RefSelector SinkSel) const {
    return collectReusePairs(*FW, *Result, SinkSel);
  }

private:
  std::unique_ptr<LoopAnalysisSession> Owned;
  LoopAnalysisSession *Session;
  const FrameworkInstance *FW;
  const SolveResult *Result;
};

} // namespace ardf

#endif // ARDF_ANALYSIS_LOOPDATAFLOW_H
