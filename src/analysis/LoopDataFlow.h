//===- analysis/LoopDataFlow.h - Analysis facade ---------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LoopDataFlow bundles graph construction, framework instantiation, and
/// the solve for one loop and one problem — the one-call entry point used
/// by the optimization clients and the examples:
///
/// \code
///   Program P = parseOrDie(Source);
///   LoopDataFlow DF(P, *P.getFirstLoop(), ProblemSpec::availableValues());
///   for (const ReusePair &R : DF.reusePairs(RefSelector::Uses)) ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_ANALYSIS_LOOPDATAFLOW_H
#define ARDF_ANALYSIS_LOOPDATAFLOW_H

#include "dataflow/Framework.h"

#include <memory>
#include <vector>

namespace ardf {

/// A discovered recurrent access pattern: the instance of \p SourceId
/// generated \p Distance iterations earlier is guaranteed (must-problems)
/// or possible (may-problems) to be the one \p SinkId touches.
struct ReusePair {
  /// Occurrence id of the generating reference (tracked).
  unsigned SourceId;

  /// Occurrence id of the consuming reference.
  unsigned SinkId;

  /// Iteration distance between generation and reuse (>= 0; 0 means the
  /// same iteration).
  int64_t Distance;
};

/// Facade owning the flow graph, framework instance, and solution of one
/// problem on one loop.
class LoopDataFlow {
public:
  LoopDataFlow(const Program &P, const DoLoopStmt &Loop, ProblemSpec Spec,
               SolverOptions Opts = SolverOptions());

  /// Section 3.6 variant: analyzes the body of \p Loop with respect to
  /// the induction variable \p WithRespectTo of an enclosing loop (the
  /// local induction variable becomes a symbolic constant).
  LoopDataFlow(const Program &P, const DoLoopStmt &Loop, ProblemSpec Spec,
               const std::string &WithRespectTo,
               int64_t EnclosingTripCount = UnknownTripCount,
               SolverOptions Opts = SolverOptions());

  const LoopFlowGraph &graph() const { return *Graph; }
  const FrameworkInstance &framework() const { return *FW; }
  const SolveResult &result() const { return Result; }
  const ReferenceUniverse &universe() const { return FW->getUniverse(); }

  /// The data flow value for tracked occurrence \p TrackedIdx at node
  /// \p Node (IN tuple; node-exit information for backward problems).
  DistanceValue valueAt(unsigned Node, unsigned TrackedIdx) const {
    return Result.In[Node][TrackedIdx];
  }

  /// Enumerates reuse pairs: for every occurrence matching \p SinkSel
  /// and every tracked reference, reports a pair when a constant
  /// iteration distance exists and lies within the solved range
  /// [pr(d, n), IN[n, d]]. The sink's own generation site is skipped.
  std::vector<ReusePair> reusePairs(RefSelector SinkSel) const;

private:
  std::unique_ptr<LoopFlowGraph> Graph;
  std::unique_ptr<FrameworkInstance> FW;
  SolveResult Result;
};

} // namespace ardf

#endif // ARDF_ANALYSIS_LOOPDATAFLOW_H
