//===- analysis/Dependence.h - Dependence detection (Section 4.3) -*- C++ -*//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-carried and loop-independent dependence detection from
/// delta-reaching references (the may-problem of Section 4.3): for each
/// reference r2 at node n and each reaching reference r1, a dependence
/// r1 -> r2 with distance delta exists when some
/// pr <= delta <= IN[n, r1] satisfies f1(i - delta) == f2(i). The
/// dependence kind follows from the def/use roles. Instances closer than
/// the reported distance are dependence-free — exactly the information
/// the controlled loop unrolling strategy of Section 4.3 consumes.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_ANALYSIS_DEPENDENCE_H
#define ARDF_ANALYSIS_DEPENDENCE_H

#include "analysis/LoopDataFlow.h"

#include <iosfwd>
#include <vector>

namespace ardf {

/// Classic dependence kinds [Kuck et al. 81].
enum class DepKind {
  Flow,   ///< def -> use
  Anti,   ///< use -> def
  Output, ///< def -> def
  Input   ///< use -> use (not ordering-relevant; reported for reuse info)
};

const char *depKindName(DepKind K);

/// One detected dependence between two reference occurrences.
struct Dependence {
  /// Source occurrence (executes first).
  unsigned FromId;

  /// Sink occurrence (executes \p Distance iterations later).
  unsigned ToId;

  DepKind Kind;

  /// Minimal iteration distance at which the references may overlap.
  int64_t Distance;

  /// True when Distance >= 1 (carried across iterations).
  bool isLoopCarried() const { return Distance >= 1; }
};

/// Result of dependence analysis for one loop.
struct DependenceInfo {
  std::vector<Dependence> Deps;

  /// True if some dependence with the given distance exists.
  bool hasCarriedDistance(int64_t Distance) const;

  /// All dependences with Distance == 1 (drives the unrolling predictor
  /// of Section 4.3).
  std::vector<Dependence> distanceOne() const;
};

/// Runs delta-reaching references on \p Loop and extracts dependences.
/// Input "dependences" (use -> use) are included only when
/// \p IncludeInput is set.
DependenceInfo computeDependences(const Program &P, const DoLoopStmt &Loop,
                                  bool IncludeInput = false);

/// Extracts dependences from an already-solved reaching-references
/// instance.
DependenceInfo extractDependences(const LoopDataFlow &DF,
                                  bool IncludeInput = false);

/// Prints one dependence per line: "flow C[i+2] -> C[i] distance 2".
void printDependences(std::ostream &OS, const DependenceInfo &Info,
                      const LoopDataFlow &DF);

} // namespace ardf

#endif // ARDF_ANALYSIS_DEPENDENCE_H
