//===- passes/Validate.cpp - Analyzability checks -------------------------===//

#include "passes/Validate.h"

#include "affine/AffineAccess.h"
#include "ir/PrettyPrinter.h"

#include <unordered_map>

using namespace ardf;

namespace {

/// Validates loops against the Section 1 preconditions. Statement ids
/// are assigned in one pre-order numbering pass over the whole program,
/// so every issue can name its statement by a stable 1-based id no
/// matter which loop it was found in.
class Validator {
public:
  explicit Validator(const Program &P) : P(P) {
    unsigned NextId = 0;
    forEachStmt(P.getStmts(),
                [&](const Stmt &S) { IdOf.emplace(&S, ++NextId); });
  }

  std::vector<ValidationIssue> run() {
    forEachStmt(P.getStmts(), [&](const Stmt &S) {
      if (const auto *Loop = dyn_cast<DoLoopStmt>(&S))
        validateLoop(*Loop);
    });
    checkBreakPlacement(P.getStmts(), /*InLoop=*/false);
    return std::move(Issues);
  }

private:
  void report(IssueSeverity Severity, const Stmt &S, SourceLoc Loc,
              std::string Message) {
    Issues.push_back(
        ValidationIssue{Severity, IdOf.at(&S), Loc, &S, std::move(Message)});
  }

  void validateLoop(const DoLoopStmt &Loop) {
    const std::string &IV = Loop.getIndVar();

    if (!Loop.isNormalized())
      report(IssueSeverity::Warning, Loop, Loop.getLoc(),
             "loop over '" + IV +
                 "' is not normalized (run passes/LoopNormalize first)");

    forEachStmt(Loop.getBody(), [&](const Stmt &S) {
      // No assignment to the controlling induction variable (Section 1).
      if (const auto *AS = dyn_cast<AssignStmt>(&S)) {
        if (const auto *V = dyn_cast<VarRef>(AS->getLHS()))
          if (V->getName() == IV)
            report(IssueSeverity::Error, S, S.getLoc(),
                   "assignment to induction variable '" + IV +
                       "' inside its loop");
        auto CheckRef = [&](const ArrayRefExpr &AR) {
          if (AR.getNumSubscripts() > 1 && !P.getArrayDecl(AR.getName()))
            report(IssueSeverity::Warning, S, AR.getLoc(),
                   "multi-dimensional reference " + exprToString(AR) +
                       " to undeclared array cannot be linearized");
          else if (!makeAffineAccess(AR, P, IV))
            report(IssueSeverity::Warning, S, AR.getLoc(),
                   "subscript of " + exprToString(AR) + " is not affine in '" +
                       IV +
                       "'; the reference is treated as a whole-array access");
        };
        forEachSubExpr(*AS->getRHS(), [&](const Expr &E) {
          if (const auto *AR = dyn_cast<ArrayRefExpr>(&E))
            CheckRef(*AR);
        });
        if (const ArrayRefExpr *Target = AS->getArrayTarget())
          CheckRef(*Target);
      }
    });
  }

  /// A break binds to the innermost enclosing loop; outside any loop it
  /// has nothing to leave and the program is malformed.
  void checkBreakPlacement(const StmtList &Stmts, bool InLoop) {
    for (const StmtPtr &S : Stmts) {
      switch (S->getKind()) {
      case Stmt::Kind::Break:
        if (!InLoop)
          report(IssueSeverity::Error, *S, S->getLoc(),
                 "'break' outside of any loop");
        break;
      case Stmt::Kind::If: {
        const auto *IS = cast<IfStmt>(S.get());
        checkBreakPlacement(IS->getThen(), InLoop);
        checkBreakPlacement(IS->getElse(), InLoop);
        break;
      }
      case Stmt::Kind::DoLoop:
        checkBreakPlacement(cast<DoLoopStmt>(S.get())->getBody(),
                            /*InLoop=*/true);
        break;
      case Stmt::Kind::While:
        checkBreakPlacement(cast<WhileStmt>(S.get())->getBody(),
                            /*InLoop=*/true);
        break;
      case Stmt::Kind::Assign:
        break;
      }
    }
  }

  const Program &P;
  std::vector<ValidationIssue> Issues;
  std::unordered_map<const Stmt *, unsigned> IdOf;
};

} // namespace

std::vector<ValidationIssue> ardf::validateForAnalysis(const Program &P) {
  return Validator(P).run();
}

bool ardf::isAnalyzable(const std::vector<ValidationIssue> &Issues) {
  for (const ValidationIssue &I : Issues)
    if (I.Severity == IssueSeverity::Error)
      return false;
  return true;
}
