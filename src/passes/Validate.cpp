//===- passes/Validate.cpp - Analyzability checks -------------------------===//

#include "passes/Validate.h"

#include "affine/AffineAccess.h"
#include "ir/PrettyPrinter.h"

#include <set>

using namespace ardf;

namespace {

void validateLoop(const Program &P, const DoLoopStmt &Loop,
                  std::vector<ValidationIssue> &Issues) {
  const std::string &IV = Loop.getIndVar();

  if (!Loop.isNormalized())
    Issues.push_back(
        {IssueSeverity::Warning,
         "loop over '" + IV +
             "' is not normalized (run passes/LoopNormalize first)"});

  forEachStmt(Loop.getBody(), [&](const Stmt &S) {
    // No assignment to the controlling induction variable (Section 1).
    if (const auto *AS = dyn_cast<AssignStmt>(&S)) {
      if (const auto *V = dyn_cast<VarRef>(AS->getLHS()))
        if (V->getName() == IV)
          Issues.push_back({IssueSeverity::Error,
                            "assignment to induction variable '" + IV +
                                "' inside its loop"});
      auto CheckRef = [&](const ArrayRefExpr &AR) {
        if (AR.getNumSubscripts() > 1 && !P.getArrayDecl(AR.getName()))
          Issues.push_back(
              {IssueSeverity::Warning,
               "multi-dimensional reference " + exprToString(AR) +
                   " to undeclared array cannot be linearized"});
        else if (!makeAffineAccess(AR, P, IV))
          Issues.push_back(
              {IssueSeverity::Warning,
               "subscript of " + exprToString(AR) +
                   " is not affine in '" + IV +
                   "'; the reference is treated as a whole-array access"});
      };
      forEachSubExpr(*AS->getRHS(), [&](const Expr &E) {
        if (const auto *AR = dyn_cast<ArrayRefExpr>(&E))
          CheckRef(*AR);
      });
      if (const ArrayRefExpr *Target = AS->getArrayTarget())
        CheckRef(*Target);
    }
  });
}

} // namespace

std::vector<ValidationIssue> ardf::validateForAnalysis(const Program &P) {
  std::vector<ValidationIssue> Issues;
  forEachStmt(P.getStmts(), [&](const Stmt &S) {
    if (const auto *Loop = dyn_cast<DoLoopStmt>(&S))
      validateLoop(P, *Loop, Issues);
  });
  return Issues;
}

bool ardf::isAnalyzable(const std::vector<ValidationIssue> &Issues) {
  for (const ValidationIssue &I : Issues)
    if (I.Severity == IssueSeverity::Error)
      return false;
  return true;
}
