//===- passes/LoopNormalize.h - Loop normalization --------------*- C++ -*-==//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop normalization, a precondition of the analysis (Section 1: "all
/// loops are normalized, i.e., the induction variable ranges from 1 to
/// an upper bound UB with increment one"). A loop
///
///   do i = lo, hi, s { body(i) }          (s > 0)
///
/// becomes
///
///   do i = 1, (hi - lo + s) / s { body(s*(i-1) + lo) }
///
/// and symmetrically for negative steps. Affine subscripts stay affine
/// under the linear substitution.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_PASSES_LOOPNORMALIZE_H
#define ARDF_PASSES_LOOPNORMALIZE_H

#include "ir/Program.h"

namespace ardf {

/// Result of normalization.
struct NormalizeResult {
  Program Transformed;
  unsigned LoopsNormalized = 0;
};

/// Normalizes every loop (at any nesting depth) of \p P.
NormalizeResult normalizeLoops(const Program &P);

/// Per-loop canonicalizer: returns a normalized copy of \p Loop (lower
/// bound 1, step 1) with the induction variable substituted through the
/// body. Inner statements are cloned as-is — callers that want nested
/// loops normalized too (the loop-nest reducer works bottom-up) must
/// normalize them first. Already-normalized loops come back as plain
/// clones. Source locations are preserved throughout.
std::unique_ptr<DoLoopStmt> normalizeLoop(const DoLoopStmt &Loop);

} // namespace ardf

#endif // ARDF_PASSES_LOOPNORMALIZE_H
