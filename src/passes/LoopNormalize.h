//===- passes/LoopNormalize.h - Loop normalization --------------*- C++ -*-==//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop normalization, a precondition of the analysis (Section 1: "all
/// loops are normalized, i.e., the induction variable ranges from 1 to
/// an upper bound UB with increment one"). A loop
///
///   do i = lo, hi, s { body(i) }          (s > 0)
///
/// becomes
///
///   do i = 1, (hi - lo + s) / s { body(s*(i-1) + lo) }
///
/// and symmetrically for negative steps. Affine subscripts stay affine
/// under the linear substitution.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_PASSES_LOOPNORMALIZE_H
#define ARDF_PASSES_LOOPNORMALIZE_H

#include "ir/Program.h"

namespace ardf {

/// Result of normalization.
struct NormalizeResult {
  Program Transformed;
  unsigned LoopsNormalized = 0;
};

/// Normalizes every loop (at any nesting depth) of \p P.
NormalizeResult normalizeLoops(const Program &P);

} // namespace ardf

#endif // ARDF_PASSES_LOOPNORMALIZE_H
