//===- passes/Validate.h - Analyzability checks ----------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the analysis preconditions of Section 1 and reports what the
/// framework will treat conservatively: non-normalized loops, array
/// subscripts that are not affine in the controlling induction variable,
/// assignments to an induction variable inside its loop, and
/// multi-dimensional references without a declaration to linearize by.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_PASSES_VALIDATE_H
#define ARDF_PASSES_VALIDATE_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace ardf {

/// Severity of a validation finding.
enum class IssueSeverity {
  /// The construct violates a hard precondition (analysis results would
  /// be wrong, e.g. an induction variable assignment).
  Error,
  /// The construct is handled conservatively (information loss only).
  Warning
};

/// One validation finding. The offending statement is identified
/// structurally (pre-order statement id plus source location) instead of
/// being embedded in the message text, so clients -- the lint engine in
/// particular -- can anchor diagnostics without re-parsing messages.
struct ValidationIssue {
  IssueSeverity Severity;

  /// 1-based pre-order index of the offending statement within the
  /// program (the id validateForAnalysis assigns while walking).
  unsigned StmtId = 0;

  /// Source position of the offending statement, or of the offending
  /// expression when the finding is expression-level (subscripts).
  /// Invalid for IR built programmatically.
  SourceLoc Loc;

  /// The offending statement itself (never null for issues produced by
  /// validateForAnalysis).
  const Stmt *Offending = nullptr;

  std::string Message;
};

/// Validates \p P. An empty result means the program meets every
/// precondition exactly.
std::vector<ValidationIssue> validateForAnalysis(const Program &P);

/// True when no Error-severity issue was found.
bool isAnalyzable(const std::vector<ValidationIssue> &Issues);

} // namespace ardf

#endif // ARDF_PASSES_VALIDATE_H
