//===- passes/LoopNormalize.cpp - Loop normalization ---------------------===//

#include "passes/LoopNormalize.h"

#include "ir/IRBuilder.h"
#include "transform/Rewrite.h"

using namespace ardf;

namespace {

/// Rewrites one loop level to normalized form, with \p Body as the
/// (already processed) loop body. Does not recurse.
std::unique_ptr<DoLoopStmt> normalizeLoopWithBody(const DoLoopStmt &DL,
                                                  StmtList Body) {
  int64_t Step = DL.getStep();
  const auto *LowerLit = dyn_cast<IntLit>(DL.getLower());
  std::unique_ptr<DoLoopStmt> Result;
  if (Step == 1 && LowerLit && LowerLit->getValue() == 1) {
    Result = std::make_unique<DoLoopStmt>(DL.getIndVar(),
                                          DL.getLower()->clone(),
                                          DL.getUpper()->clone(),
                                          std::move(Body));
    Result->setLoc(DL.getLoc());
    return Result;
  }
  const std::string &IV = DL.getIndVar();
  // Trip count: (hi - lo + s) / s for s > 0, (lo - hi - s) / -s for
  // s < 0; folded when both bounds are literals.
  ExprPtr Trip;
  const auto *UpperLit = dyn_cast<IntLit>(DL.getUpper());
  if (LowerLit && UpperLit) {
    int64_t N = Step > 0
                    ? (UpperLit->getValue() - LowerLit->getValue() + Step) /
                          Step
                    : (LowerLit->getValue() - UpperLit->getValue() - Step) /
                          -Step;
    Trip = lit(N);
  } else if (Step > 0) {
    Trip = binop(BinaryOpKind::Div,
                 add(sub(DL.getUpper()->clone(), DL.getLower()->clone()),
                     lit(Step)),
                 lit(Step));
  } else {
    Trip = binop(BinaryOpKind::Div,
                 add(sub(DL.getLower()->clone(), DL.getUpper()->clone()),
                     lit(-Step)),
                 lit(-Step));
  }
  // i_old = s * (i - 1) + lo; folded to i + (lo - 1) for unit steps
  // with literal bounds to keep subscripts tidy.
  ExprPtr OldIV;
  if (Step == 1 && LowerLit) {
    int64_t Off = LowerLit->getValue() - 1;
    OldIV = Off == 0 ? var(IV) : add(var(IV), lit(Off));
  } else {
    OldIV = add(mul(lit(Step), sub(var(IV), lit(1))),
                DL.getLower()->clone());
  }
  StmtList NewBody = substituteScalar(Body, IV, *OldIV);
  Result = std::make_unique<DoLoopStmt>(IV, lit(1), std::move(Trip),
                                        std::move(NewBody));
  Result->setLoc(DL.getLoc());
  return Result;
}

StmtList normalizeStmts(const StmtList &Stmts, unsigned &Count);

StmtPtr normalizeStmt(const Stmt &S, unsigned &Count) {
  StmtPtr Copy;
  switch (S.getKind()) {
  case Stmt::Kind::Assign:
  case Stmt::Kind::Break:
    return S.clone();
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(&S);
    Copy = std::make_unique<IfStmt>(IS->getCond()->clone(),
                                    normalizeStmts(IS->getThen(), Count),
                                    normalizeStmts(IS->getElse(), Count));
    break;
  }
  case Stmt::Kind::While: {
    // While loops are not counted loops; the loop-nest recognizer
    // reduces the counted pattern separately. Normalize inside only.
    const auto *WS = cast<WhileStmt>(&S);
    Copy = std::make_unique<WhileStmt>(WS->getCond()->clone(),
                                       normalizeStmts(WS->getBody(), Count));
    break;
  }
  case Stmt::Kind::DoLoop: {
    const auto *DL = cast<DoLoopStmt>(&S);
    StmtList Body = normalizeStmts(DL->getBody(), Count);
    if (!DL->isNormalized())
      ++Count;
    return normalizeLoopWithBody(*DL, std::move(Body));
  }
  }
  if (Copy)
    Copy->setLoc(S.getLoc());
  return Copy;
}

StmtList normalizeStmts(const StmtList &Stmts, unsigned &Count) {
  StmtList Result;
  Result.reserve(Stmts.size());
  for (const StmtPtr &S : Stmts)
    Result.push_back(normalizeStmt(*S, Count));
  return Result;
}

} // namespace

NormalizeResult ardf::normalizeLoops(const Program &P) {
  NormalizeResult Result;
  for (const ArrayDecl &D : P.arrayDecls()) {
    std::vector<ExprPtr> Sizes;
    for (const ExprPtr &S : D.DimSizes)
      Sizes.push_back(S->clone());
    Result.Transformed.declareArray(D.Name, std::move(Sizes));
  }
  StmtList Stmts = normalizeStmts(P.getStmts(), Result.LoopsNormalized);
  for (StmtPtr &S : Stmts)
    Result.Transformed.addStmt(std::move(S));
  return Result;
}

std::unique_ptr<DoLoopStmt> ardf::normalizeLoop(const DoLoopStmt &Loop) {
  return normalizeLoopWithBody(Loop, cloneStmts(Loop.getBody()));
}
