//===- passes/LoopNormalize.cpp - Loop normalization ---------------------===//

#include "passes/LoopNormalize.h"

#include "ir/IRBuilder.h"
#include "transform/Rewrite.h"

using namespace ardf;

namespace {

StmtList normalizeStmts(const StmtList &Stmts, unsigned &Count);

StmtPtr normalizeStmt(const Stmt &S, unsigned &Count) {
  switch (S.getKind()) {
  case Stmt::Kind::Assign:
    return S.clone();
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(&S);
    return std::make_unique<IfStmt>(IS->getCond()->clone(),
                                    normalizeStmts(IS->getThen(), Count),
                                    normalizeStmts(IS->getElse(), Count));
  }
  case Stmt::Kind::DoLoop: {
    const auto *DL = cast<DoLoopStmt>(&S);
    StmtList Body = normalizeStmts(DL->getBody(), Count);
    int64_t Step = DL->getStep();
    const auto *LowerLit = dyn_cast<IntLit>(DL->getLower());
    if (Step == 1 && LowerLit && LowerLit->getValue() == 1)
      return std::make_unique<DoLoopStmt>(DL->getIndVar(),
                                          DL->getLower()->clone(),
                                          DL->getUpper()->clone(),
                                          std::move(Body));
    ++Count;
    const std::string &IV = DL->getIndVar();
    // Trip count: (hi - lo + s) / s for s > 0, (lo - hi - s) / -s for
    // s < 0; folded when both bounds are literals.
    ExprPtr Trip;
    const auto *UpperLit = dyn_cast<IntLit>(DL->getUpper());
    if (LowerLit && UpperLit) {
      int64_t N = Step > 0
                      ? (UpperLit->getValue() - LowerLit->getValue() + Step) /
                            Step
                      : (LowerLit->getValue() - UpperLit->getValue() - Step) /
                            -Step;
      Trip = lit(N);
    } else if (Step > 0) {
      Trip = binop(BinaryOpKind::Div,
                   add(sub(DL->getUpper()->clone(), DL->getLower()->clone()),
                       lit(Step)),
                   lit(Step));
    } else {
      Trip = binop(BinaryOpKind::Div,
                   add(sub(DL->getLower()->clone(), DL->getUpper()->clone()),
                       lit(-Step)),
                   lit(-Step));
    }
    // i_old = s * (i - 1) + lo; folded to i + (lo - 1) for unit steps
    // with literal bounds to keep subscripts tidy.
    ExprPtr OldIV;
    if (Step == 1 && LowerLit) {
      int64_t Off = LowerLit->getValue() - 1;
      OldIV = Off == 0 ? var(IV) : add(var(IV), lit(Off));
    } else {
      OldIV = add(mul(lit(Step), sub(var(IV), lit(1))),
                  DL->getLower()->clone());
    }
    StmtList NewBody = substituteScalar(Body, IV, *OldIV);
    return std::make_unique<DoLoopStmt>(IV, lit(1), std::move(Trip),
                                        std::move(NewBody));
  }
  }
  return nullptr;
}

StmtList normalizeStmts(const StmtList &Stmts, unsigned &Count) {
  StmtList Result;
  Result.reserve(Stmts.size());
  for (const StmtPtr &S : Stmts)
    Result.push_back(normalizeStmt(*S, Count));
  return Result;
}

} // namespace

NormalizeResult ardf::normalizeLoops(const Program &P) {
  NormalizeResult Result;
  for (const ArrayDecl &D : P.arrayDecls()) {
    std::vector<ExprPtr> Sizes;
    for (const ExprPtr &S : D.DimSizes)
      Sizes.push_back(S->clone());
    Result.Transformed.declareArray(D.Name, std::move(Sizes));
  }
  StmtList Stmts = normalizeStmts(P.getStmts(), Result.LoopsNormalized);
  for (StmtPtr &S : Stmts)
    Result.Transformed.addStmt(std::move(S));
  return Result;
}
