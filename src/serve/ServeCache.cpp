//===- serve/ServeCache.cpp - Tenant-partitioned analysis cache -----------===//

#include "serve/ServeCache.h"

#include "telemetry/Telemetry.h"

#include <algorithm>

using namespace ardf;
using namespace ardf::serve;

uint64_t serve::hashBytes(std::string_view Bytes) {
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  for (char C : Bytes) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull; // FNV prime
  }
  return H;
}

const std::string *Document::findResponse(uint64_t Key) {
  for (size_t I = 0; I < Responses.size(); ++I) {
    if (Responses[I].Key != Key)
      continue;
    if (I != 0)
      std::rotate(Responses.begin(), Responses.begin() + I,
                  Responses.begin() + I + 1);
    return &Responses.front().ResultJson;
  }
  return nullptr;
}

void Document::rememberResponse(uint64_t Key, std::string ResultJson) {
  for (size_t I = 0; I < Responses.size(); ++I) {
    if (Responses[I].Key != Key)
      continue;
    Responses[I].ResultJson = std::move(ResultJson);
    std::rotate(Responses.begin(), Responses.begin() + I,
                Responses.begin() + I + 1);
    return;
  }
  Responses.insert(Responses.begin(), {Key, std::move(ResultJson)});
  if (Responses.size() > MaxResponses)
    Responses.resize(MaxResponses);
}

void Document::reset() {
  Driver.reset();
  Programs.clear();
  Responses.clear();
  SourceHash = 0;
  RetainedBytes = 0;
}

ServeCache::ServeCache(unsigned TenantQuota)
    : Quota(TenantQuota == 0 ? 1 : TenantQuota) {}

std::shared_ptr<Document> ServeCache::lookup(const std::string &Tenant,
                                             const std::string &File,
                                             bool &Created) {
  std::lock_guard<std::mutex> Lock(M);
  TenantState &T = Tenants[Tenant];
  for (auto It = T.Lru.begin(); It != T.Lru.end(); ++It) {
    if (It->first != File)
      continue;
    T.Lru.splice(T.Lru.begin(), T.Lru, It);
    Created = false;
    return T.Lru.front().second;
  }
  Created = true;
  auto Doc = std::make_shared<Document>();
  T.Lru.emplace_front(File, Doc);
  while (T.Lru.size() > Quota) {
    T.Lru.pop_back();
    ++Evictions;
    telem::count(telem::Counter::ServeCacheEvictions);
  }
  return Doc;
}

void ServeCache::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Tenants.clear();
}

ServeCacheStats ServeCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  ServeCacheStats S;
  S.Tenants = Tenants.size();
  S.Evictions = Evictions;
  for (const auto &[Name, T] : Tenants) {
    (void)Name;
    S.Documents += T.Lru.size();
    for (const auto &[File, Doc] : T.Lru) {
      (void)File;
      // RetainedBytes is guarded by the document mutex; a point-in-time
      // racy read is fine for a stats report, but stay well-defined by
      // taking the (uncontended in practice) lock.
      std::lock_guard<std::mutex> DocLock(Doc->M);
      S.ResidentBytes += Doc->RetainedBytes;
    }
  }
  return S;
}
