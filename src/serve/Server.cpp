//===- serve/Server.cpp - The ardf-serve request engine -------------------===//

#include "serve/Server.h"

#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"
#include "lint/LintEngine.h"
#include "lint/Render.h"
#include "support/FailPoint.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace ardf;
using namespace ardf::serve;

namespace {

/// An int-valued JSON member without implicit-conversion ambiguity.
json::Value jint(uint64_t V) { return json::Value(V); }

uint64_t mix(uint64_t H, uint64_t V) {
  return H ^ (V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2));
}

/// The ok-response line around an already-rendered result object --
/// memoized responses replay the identical result bytes.
std::string okResponseRaw(const json::Value &Id, const std::string &Result) {
  std::string Out = "{\"id\":";
  Id.write(Out);
  Out += ",\"ok\":true,\"result\":";
  Out += Result;
  Out += "}";
  return Out;
}

/// The effective budget of one request: the server's ceilings, with the
/// server deadline folded in, tightened (never loosened) by the
/// request's own ceilings.
SolverBudget clampBudget(const ServeOptions &O, const SolverBudget &R) {
  SolverBudget B = O.Budget;
  uint64_t ServerDeadline = O.RequestDeadlineMs * 1000000ull;
  if (ServerDeadline != 0 &&
      (B.DeadlineNs == 0 || ServerDeadline < B.DeadlineNs))
    B.DeadlineNs = ServerDeadline;
  if (R.VisitSlack > 0.0 &&
      (B.VisitSlack == 0.0 || R.VisitSlack < B.VisitSlack))
    B.VisitSlack = R.VisitSlack;
  if (R.MaxNodeVisits != 0 &&
      (B.MaxNodeVisits == 0 || R.MaxNodeVisits < B.MaxNodeVisits))
    B.MaxNodeVisits = R.MaxNodeVisits;
  if (R.DeadlineNs != 0 && (B.DeadlineNs == 0 || R.DeadlineNs < B.DeadlineNs))
    B.DeadlineNs = R.DeadlineNs;
  if (R.MaxMatrixCells != 0 &&
      (B.MaxMatrixCells == 0 || R.MaxMatrixCells < B.MaxMatrixCells))
    B.MaxMatrixCells = R.MaxMatrixCells;
  return B;
}

uint64_t budgetKey(const SolverBudget &B) {
  uint64_t H = mix(0, static_cast<uint64_t>(B.VisitSlack * 1e6));
  H = mix(H, B.MaxNodeVisits);
  H = mix(H, B.DeadlineNs);
  return mix(H, B.MaxMatrixCells);
}

/// Response-memo key ingredient: everything besides the source text
/// that can change the rendered result.
uint64_t requestOptionsKey(const Request &R, const SolverBudget &B) {
  uint64_t H = mix(0, static_cast<uint64_t>(R.M));
  H = mix(H, static_cast<uint64_t>(R.Engine));
  H = mix(H, R.CrossCheck ? 1 : 0);
  H = mix(H, R.IncludeNested ? 1 : 0);
  H = mix(H, hashBytes(R.ExplainCheck));
  return mix(H, budgetKey(B));
}

/// Warm-driver compatibility key: the DriverOptions shape a cached
/// driver was built with.
uint64_t driverOptionsKey(const Request &R, const SolverBudget &B) {
  uint64_t H = mix(1, static_cast<uint64_t>(R.Engine));
  H = mix(H, R.IncludeNested ? 1 : 0);
  H = mix(H, budgetKey(B));
  return H == 0 ? 1 : H;
}

/// What a worker hands back for one request: the response line and
/// whether it is an ok response (the counter split happens at the
/// respond-once site, so watchdog-killed requests are not double
/// counted).
struct HandlerResult {
  std::string Line;
  bool Ok = false;
};

/// One in-flight request, shared between its worker, the watchdog, and
/// (until admission) the submitting thread. The Responded flag makes
/// responding idempotent: exactly one of worker / watchdog / shedding
/// wins.
struct PendingRequest {
  std::string Line;
  AnalysisServer::Respond Respond;
  std::atomic<bool> Responded{false};

  std::mutex IdM;
  json::Value Id;

  bool tryRespond(std::string Response) {
    if (Responded.exchange(true))
      return false;
    Respond(std::move(Response));
    return true;
  }

  void setId(const json::Value &V) {
    std::lock_guard<std::mutex> L(IdM);
    Id = V;
  }

  json::Value idSnapshot() {
    std::lock_guard<std::mutex> L(IdM);
    return Id;
  }
};

/// One worker slot. Current/StartNs/Abandoned are guarded by the
/// server mutex; the thread object is moved out by whoever retires the
/// slot (join at shutdown, detach at abandonment).
struct WorkerState {
  std::thread T;
  std::shared_ptr<PendingRequest> Current;
  uint64_t StartNs = 0;
  bool Abandoned = false;
};

} // namespace

struct AnalysisServer::Core : std::enable_shared_from_this<Core> {
  explicit Core(ServeOptions O)
      : Opts(std::move(O)), Cache(Opts.TenantQuota) {
    Telem.enableTimings(true);
  }

  ServeOptions Opts;
  ServeCache Cache;
  telem::Telemetry Telem;

  std::mutex M;
  std::condition_variable CV;        ///< workers wait for work
  std::condition_variable IdleCV;    ///< drain() waits for quiescence
  std::condition_variable WatchdogCV;
  std::deque<std::shared_ptr<PendingRequest>> Queue;
  std::vector<std::shared_ptr<WorkerState>> Workers;
  std::thread Watchdog;
  bool Shutdown = false;
  bool WatchdogStop = false;

  void start() {
    unsigned N = Opts.Workers == 0 ? 1 : Opts.Workers;
    std::lock_guard<std::mutex> L(M);
    for (unsigned I = 0; I != N; ++I)
      Workers.push_back(spawnWorker());
    if (Opts.RequestDeadlineMs != 0)
      Watchdog = std::thread([C = shared_from_this()] { C->watchdogLoop(); });
  }

  std::shared_ptr<WorkerState> spawnWorker() {
    auto W = std::make_shared<WorkerState>();
    W->T = std::thread([C = shared_from_this(), W] { C->workerLoop(W); });
    return W;
  }

  void workerLoop(std::shared_ptr<WorkerState> Self) {
    // One shared Telemetry for the whole pool: counters and histograms
    // are relaxed atomics, and no sink is ever attached, so concurrent
    // workers are safe.
    telem::TelemetryScope Scope(Telem);
    for (;;) {
      std::shared_ptr<PendingRequest> Req;
      {
        std::unique_lock<std::mutex> L(M);
        CV.wait(L, [&] { return Shutdown || !Queue.empty(); });
        if (Queue.empty())
          return; // shutdown, nothing left
        Req = std::move(Queue.front());
        Queue.pop_front();
        Self->Current = Req;
        Self->StartNs = telem::wallNowNs();
      }
      HandlerResult HR = handleRequest(*Req);
      if (Req->tryRespond(std::move(HR.Line)))
        Telem.add(HR.Ok ? telem::Counter::ServeOk
                        : telem::Counter::ServeErrors);
      {
        std::lock_guard<std::mutex> L(M);
        Self->Current = nullptr;
        Self->StartNs = 0;
        if (Self->Abandoned)
          return; // the watchdog already runs a replacement
      }
      IdleCV.notify_all();
    }
  }

  void watchdogLoop() {
    const uint64_t WedgeNs = (Opts.RequestDeadlineMs + Opts.WatchdogGraceMs) *
                             1000000ull;
    std::unique_lock<std::mutex> L(M);
    while (!WatchdogStop) {
      WatchdogCV.wait_for(L, std::chrono::milliseconds(20));
      if (WatchdogStop)
        return;
      uint64_t Now = telem::wallNowNs();
      for (size_t I = 0; I != Workers.size(); ++I) {
        std::shared_ptr<WorkerState> W = Workers[I];
        if (W->Abandoned || !W->Current || Now - W->StartNs <= WedgeNs)
          continue;
        // Fail the wedged request, abandon the worker, keep the pool at
        // strength. The abandoned thread finishes into the void: its
        // late tryRespond loses, and it exits on the Abandoned flag.
        std::shared_ptr<PendingRequest> Req = W->Current;
        W->Abandoned = true;
        W->T.detach();
        Workers[I] = spawnWorker();
        L.unlock();
        if (Req->tryRespond(errorResponse(
                Req->idSnapshot(), ErrorCode::Deadline,
                "request exceeded its deadline; worker abandoned"))) {
          Telem.add(telem::Counter::ServeErrors);
          Telem.add(telem::Counter::ServeWatchdogKills);
        }
        IdleCV.notify_all();
        L.lock();
      }
    }
  }

  void beginShutdown() {
    std::vector<std::shared_ptr<PendingRequest>> Orphans;
    {
      std::lock_guard<std::mutex> L(M);
      Shutdown = true;
      Orphans.assign(Queue.begin(), Queue.end());
      Queue.clear();
    }
    CV.notify_all();
    IdleCV.notify_all();
    for (const std::shared_ptr<PendingRequest> &R : Orphans)
      if (R->tryRespond(errorResponse(R->idSnapshot(),
                                      ErrorCode::ShuttingDown,
                                      "daemon is shutting down")))
        Telem.add(telem::Counter::ServeErrors);
  }

  HandlerResult handleRequest(PendingRequest &Req) {
    telem::LatencyTimer Timer(telem::Histo::ServeRequestNs);
    json::Value Id;
    try {
      // The per-request fault boundary's own drill site. Throw is
      // contained right here (an internal error response); Breach
      // forces load shedding; Stall is the watchdog's test vector.
      if (failpoint::evaluate("serve.request") == failpoint::Fired::Breach)
        return {errorResponse(Id, ErrorCode::Overloaded,
                              "serve.request failpoint forced shedding"),
                false};
      ParsedRequest P = parseRequest(Req.Line);
      Id = P.Id;
      Req.setId(P.Id);
      if (!P.Ok)
        return {errorResponse(P.Id, ErrorCode::BadRequest, P.Error), false};
      switch (P.R.M) {
      case Method::Stats:
        return {okResponse(P.R.Id, statsResult()), true};
      case Method::Shutdown: {
        beginShutdown();
        json::Object O;
        O["shutting_down"] = json::Value(true);
        return {okResponse(P.R.Id, json::Value(std::move(O))), true};
      }
      default:
        return handleAnalysis(P.R);
      }
    } catch (const std::exception &E) {
      return {errorResponse(Id, ErrorCode::Internal, E.what()), false};
    } catch (...) {
      return {errorResponse(Id, ErrorCode::Internal, "unknown exception"),
              false};
    }
  }

  HandlerResult handleAnalysis(const Request &R) {
    SolverBudget Budget = clampBudget(Opts, R.Budget);
    uint64_t SrcHash = hashBytes(R.Source);
    uint64_t MemoKey = mix(requestOptionsKey(R, Budget), SrcHash);
    bool Created = false;
    std::shared_ptr<Document> Doc = Cache.lookup(R.Tenant, R.File, Created);
    std::lock_guard<std::mutex> DocLock(Doc->M);
    if (const std::string *Memo = Doc->findResponse(MemoKey)) {
      Telem.add(telem::Counter::ServeCacheHits);
      return {okResponseRaw(R.Id, *Memo), true};
    }
    Telem.add(telem::Counter::ServeCacheMisses);
    // The session-build drill site (fires on fresh documents only, so
    // good traffic on warm documents rides through an armed drill).
    if (Created &&
        failpoint::evaluate("serve.session") == failpoint::Fired::Breach)
      return {errorResponse(R.Id, ErrorCode::Overloaded,
                            "serve.session failpoint forced shedding"),
              false};

    std::string ResultJson;
    std::string ParseError;
    if (R.M == Method::Analyze) {
      ResultJson = analyzeResult(R, Budget, SrcHash, *Doc, ParseError);
      if (ResultJson.empty())
        return {errorResponse(R.Id, ErrorCode::BadRequest,
                              "parse failed:\n" + ParseError),
                false};
    } else {
      ResultJson = lintResult(R, Budget);
    }
    Doc->rememberResponse(MemoKey, ResultJson);
    return {okResponseRaw(R.Id, ResultJson), true};
  }

  /// Renders the lint/explain result object. Exactly the single-shot
  /// pipeline of ardf-lint --format=json: lintSource + renderJsonLines,
  /// so the "render" member is bit-identical to that tool's stdout.
  std::string lintResult(const Request &R, const SolverBudget &Budget) {
    LintOptions LO;
    LO.Engine = R.Engine;
    LO.CrossCheck = R.CrossCheck;
    LO.IncludeNested = R.IncludeNested;
    LO.Budget = Budget;
    LO.Explain = R.M == Method::Explain;
    LO.ExplainCheck = R.ExplainCheck;
    LintResult LR = lintSource(R.Source, R.File, LO);
    std::ostringstream OS;
    renderJsonLines(OS, LR.Diags);
    json::Object O;
    O["render"] = json::Value(OS.str());
    O["diagnostics"] = jint(LR.Diags.size());
    O["errors"] = jint(LR.count(DiagSeverity::Error));
    O["warnings"] = jint(LR.count(DiagSeverity::Warning));
    O["notes"] = jint(LR.count(DiagSeverity::Note));
    O["loops"] = jint(LR.LoopsAnalyzed);
    O["degraded"] = jint(LR.ChecksDegraded);
    O["divergences"] = jint(LR.EngineDivergences);
    O["exit"] = jint(LR.hasErrors() ? 1 : 0);
    return json::Value(std::move(O)).toString();
  }

  /// Runs (or warm-reruns) the driver for an analyze request. Returns
  /// "" with \p ParseError set when the source does not parse. Caller
  /// holds the document mutex.
  std::string analyzeResult(const Request &R, const SolverBudget &Budget,
                            uint64_t SrcHash, Document &D,
                            std::string &ParseError) {
    Document *Doc = &D;
    uint64_t DrvKey = driverOptionsKey(R, Budget);
    ParseResult PR = parseProgram(R.Source);
    if (!PR.succeeded()) {
      ParseError = PR.diagnosticsToString();
      return "";
    }
    // A warm driver only serves requests with the same analysis shape;
    // different options rebuild cold (rare: one editor per document in
    // practice).
    if (Doc->Driver && Doc->DriverOptionsKey != DrvKey)
      Doc->reset();
    // Bound the rerun lifetime rule: after enough retained versions,
    // rebuild cold to release them.
    if (Doc->Driver && Doc->SourceHash != SrcHash &&
        Doc->Programs.size() >= Opts.MaxProgramsPerDocument)
      Doc->reset();

    bool Warm = false;
    unsigned Reused = 0, Reanalyzed = 0;
    if (Doc->Driver && Doc->SourceHash == SrcHash) {
      // Same text, options differing only in memo-relevant ways: the
      // driver's whole state is current.
      Warm = true;
    } else if (Doc->Driver) {
      auto NewProg = std::make_unique<Program>(std::move(PR.Prog));
      DriverRerun RR = Doc->Driver->rerun(*NewProg);
      Doc->Programs.push_back(std::move(NewProg));
      Doc->RetainedBytes += R.Source.size();
      Doc->SourceHash = SrcHash;
      Telem.add(telem::Counter::ServeReruns);
      Warm = true;
      Reused = RR.Reused;
      Reanalyzed = RR.Reanalyzed;
    } else {
      auto NewProg = std::make_unique<Program>(std::move(PR.Prog));
      DriverOptions DO;
      DO.IncludeNested = R.IncludeNested;
      DO.Solver.Eng = R.Engine;
      DO.Solver.Budget = Budget;
      Doc->Driver =
          std::make_unique<ProgramAnalysisDriver>(*NewProg, std::move(DO));
      Doc->Programs.push_back(std::move(NewProg));
      Doc->RetainedBytes += R.Source.size();
      Doc->SourceHash = SrcHash;
      Doc->DriverOptionsKey = DrvKey;
      Doc->Driver->run();
    }

    DriverReport Rep = Doc->Driver->report();
    json::Object O;
    O["loops"] = jint(Rep.total());
    O["ok"] = jint(Rep.Ok);
    O["degraded"] = jint(Rep.Degraded);
    O["failed"] = jint(Rep.Failed);
    O["unsupported"] = jint(Rep.Unsupported);
    O["node_visits"] = jint(Doc->Driver->totalNodeVisits());
    O["engine"] = json::Value(engineName(R.Engine));
    O["warm"] = json::Value(Warm);
    O["reused"] = jint(Reused);
    O["reanalyzed"] = jint(Reanalyzed);
    return json::Value(std::move(O)).toString();
  }

  json::Value statsResult() {
    json::Object Counters;
    for (unsigned I = 0; I != telem::NumCounters; ++I) {
      auto C = static_cast<telem::Counter>(I);
      if (uint64_t V = Telem.get(C))
        Counters[telem::counterName(C)] = jint(V);
    }
    ServeCacheStats CS = Cache.stats();
    json::Object CacheO;
    CacheO["tenants"] = jint(CS.Tenants);
    CacheO["documents"] = jint(CS.Documents);
    CacheO["resident_bytes"] = jint(CS.ResidentBytes);
    CacheO["evictions"] = jint(CS.Evictions);
    telem::HistogramSnapshot S =
        Telem.histogram(telem::Histo::ServeRequestNs).snapshot();
    json::Object H;
    H["count"] = jint(S.Count);
    H["sum_ns"] = jint(S.SumNs);
    H["p50_ns"] = jint(S.quantileNs(0.5));
    H["p90_ns"] = jint(S.quantileNs(0.9));
    H["p99_ns"] = jint(S.quantileNs(0.99));
    json::Object O;
    O["counters"] = json::Value(std::move(Counters));
    O["cache"] = json::Value(std::move(CacheO));
    O["request_ns"] = json::Value(std::move(H));
    return json::Value(std::move(O));
  }
};

AnalysisServer::AnalysisServer(ServeOptions Opts)
    : C(std::make_shared<Core>(std::move(Opts))) {
  C->start();
}

AnalysisServer::~AnalysisServer() {
  C->beginShutdown();
  {
    std::lock_guard<std::mutex> L(C->M);
    C->WatchdogStop = true;
  }
  C->WatchdogCV.notify_all();
  if (C->Watchdog.joinable())
    C->Watchdog.join();
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> L(C->M);
    for (const std::shared_ptr<WorkerState> &W : C->Workers)
      if (!W->Abandoned && W->T.joinable())
        Threads.push_back(std::move(W->T));
  }
  C->CV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void AnalysisServer::submit(std::string Line, Respond R) {
  auto Req = std::make_shared<PendingRequest>();
  Req->Line = std::move(Line);
  Req->Respond = std::move(R);
  C->Telem.add(telem::Counter::ServeRequests);
  if (C->Opts.MaxRequestBytes != 0 &&
      Req->Line.size() > C->Opts.MaxRequestBytes) {
    if (Req->tryRespond(errorResponse(
            json::Value(), ErrorCode::PayloadTooLarge,
            "request of " + std::to_string(Req->Line.size()) +
                " bytes exceeds the " +
                std::to_string(C->Opts.MaxRequestBytes) + " byte cap")))
      C->Telem.add(telem::Counter::ServeErrors);
    return;
  }
  ErrorCode Shed = ErrorCode::BadRequest; // sentinel meaning "admitted"
  {
    std::lock_guard<std::mutex> L(C->M);
    if (C->Shutdown)
      Shed = ErrorCode::ShuttingDown;
    else if (C->Queue.size() >= C->Opts.QueueDepth)
      Shed = ErrorCode::Overloaded;
    else
      C->Queue.push_back(Req);
  }
  if (Shed == ErrorCode::ShuttingDown) {
    if (Req->tryRespond(errorResponse(json::Value(), Shed,
                                      "daemon is shutting down")))
      C->Telem.add(telem::Counter::ServeErrors);
    return;
  }
  if (Shed == ErrorCode::Overloaded) {
    // Shedding is deliberately cheap: no parse, so the echoed id is
    // null. Clients treat overloaded as retry-later regardless of id.
    if (Req->tryRespond(errorResponse(json::Value(), Shed,
                                      "request queue is full; retry later")))
      C->Telem.add(telem::Counter::ServeOverloads);
    return;
  }
  C->CV.notify_one();
}

void AnalysisServer::requestShutdown() { C->beginShutdown(); }

bool AnalysisServer::shutdownRequested() const {
  std::lock_guard<std::mutex> L(C->M);
  return C->Shutdown;
}

void AnalysisServer::drain() {
  std::unique_lock<std::mutex> L(C->M);
  C->IdleCV.wait(L, [&] {
    if (!C->Queue.empty())
      return false;
    for (const std::shared_ptr<WorkerState> &W : C->Workers)
      if (!W->Abandoned && W->Current)
        return false;
    return true;
  });
}

const ServeOptions &AnalysisServer::options() const { return C->Opts; }

ServeCacheStats AnalysisServer::cacheStats() const { return C->Cache.stats(); }

const telem::Telemetry &AnalysisServer::telemetry() const { return C->Telem; }
