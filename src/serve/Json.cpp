//===- serve/Json.cpp - Bounded JSON parsing and writing ------------------===//

#include "serve/Json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace ardf;
using namespace ardf::json;

Value::Value(uint64_t U) {
  if (U <= static_cast<uint64_t>(INT64_MAX)) {
    K = Kind::Int;
    IntV = static_cast<int64_t>(U);
  } else {
    K = Kind::Double;
    DoubleV = static_cast<double>(U);
  }
}

int64_t Value::intValue() const {
  if (K == Kind::Int)
    return IntV;
  if (K == Kind::Double)
    return static_cast<int64_t>(DoubleV);
  return 0;
}

double Value::doubleValue() const {
  if (K == Kind::Double)
    return DoubleV;
  if (K == Kind::Int)
    return static_cast<double>(IntV);
  return 0.0;
}

const Value *Value::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = ObjectV.find(Key);
  return It == ObjectV.end() ? nullptr : &It->second;
}

void json::appendQuoted(std::string &Out, std::string_view S) {
  Out.push_back('"');
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
}

void Value::write(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Int: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(IntV));
    Out += Buf;
    break;
  }
  case Kind::Double: {
    if (std::isfinite(DoubleV)) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.17g", DoubleV);
      Out += Buf;
    } else {
      // JSON has no Inf/NaN literal; null is the conventional stand-in.
      Out += "null";
    }
    break;
  }
  case Kind::String:
    appendQuoted(Out, StringV);
    break;
  case Kind::Array: {
    Out.push_back('[');
    bool First = true;
    for (const Value &E : ArrayV) {
      if (!First)
        Out.push_back(',');
      First = false;
      E.write(Out);
    }
    Out.push_back(']');
    break;
  }
  case Kind::Object: {
    Out.push_back('{');
    bool First = true;
    for (const auto &[Key, Member] : ObjectV) {
      if (!First)
        Out.push_back(',');
      First = false;
      appendQuoted(Out, Key);
      Out.push_back(':');
      Member.write(Out);
    }
    Out.push_back('}');
    break;
  }
  }
}

std::string Value::toString() const {
  std::string Out;
  write(Out);
  return Out;
}

namespace {

/// The recursive-descent parser. One instance per parse() call; all
/// errors funnel through fail() so every outcome carries an offset.
class Parser {
public:
  Parser(std::string_view Text, unsigned MaxDepth)
      : Text(Text), MaxDepth(MaxDepth) {}

  ParseOutcome run() {
    ParseOutcome Out;
    skipWs();
    if (!parseValue(Out.V, 0)) {
      Out.Error = Err;
      Out.ErrorAt = ErrAt;
      return Out;
    }
    skipWs();
    if (Pos != Text.size()) {
      Out.Error = "trailing characters after JSON value";
      Out.ErrorAt = Pos;
      return Out;
    }
    Out.Ok = true;
    return Out;
  }

private:
  bool fail(const std::string &Msg) {
    if (Err.empty()) {
      Err = Msg;
      ErrAt = Pos;
    }
    return false;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool parseValue(Value &V, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting depth exceeds " + std::to_string(MaxDepth));
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(V, Depth);
    case '[':
      return parseArray(V, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      V = Value(std::move(S));
      return true;
    }
    case 't':
      if (Text.compare(Pos, 4, "true") == 0) {
        Pos += 4;
        V = Value(true);
        return true;
      }
      return fail("invalid literal");
    case 'f':
      if (Text.compare(Pos, 5, "false") == 0) {
        Pos += 5;
        V = Value(false);
        return true;
      }
      return fail("invalid literal");
    case 'n':
      if (Text.compare(Pos, 4, "null") == 0) {
        Pos += 4;
        V = Value(nullptr);
        return true;
      }
      return fail("invalid literal");
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return parseNumber(V);
      return fail(std::string("unexpected character '") + C + "'");
    }
  }

  bool parseObject(Value &V, unsigned Depth) {
    ++Pos; // '{'
    Object O;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      V = Value(std::move(O));
      return true;
    }
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      Value Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      // Last duplicate key wins (the std::map insert-or-assign).
      O[std::move(Key)] = std::move(Member);
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        V = Value(std::move(O));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &V, unsigned Depth) {
    ++Pos; // '['
    Array A;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      V = Value(std::move(A));
      return true;
    }
    for (;;) {
      skipWs();
      Value E;
      if (!parseValue(E, Depth + 1))
        return false;
      A.push_back(std::move(E));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        V = Value(std::move(A));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out.push_back(C);
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos];
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        if (Pos + 4 >= Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 1; I <= 4; ++I) {
          char H = Text[Pos + I];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code += static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code += static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code += static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape digit");
        }
        Pos += 4;
        // UTF-8 encode the BMP code point; surrogate pairs are passed
        // through as two 3-byte sequences (requests are ASCII in
        // practice, so exact pairing is not worth the complexity).
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        return fail("invalid escape character");
      }
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value &V) {
    size_t Start = Pos;
    bool Integral = true;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("invalid number");
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("invalid number fraction");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("invalid number exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Num(Text.substr(Start, Pos - Start));
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long I = std::strtoll(Num.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        V = Value(static_cast<int64_t>(I));
        return true;
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0')
      return fail("invalid number");
    V = Value(D);
    return true;
  }

  std::string_view Text;
  unsigned MaxDepth;
  size_t Pos = 0;
  std::string Err;
  size_t ErrAt = 0;
};

} // namespace

ParseOutcome json::parse(std::string_view Text, unsigned MaxDepth) {
  return Parser(Text, MaxDepth).run();
}
