//===- serve/Server.h - The ardf-serve request engine ----------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's transport-agnostic core: a bounded request queue, a
/// worker pool, the tenant cache, and a watchdog. Transports (stdio,
/// Unix socket -- tools/ardf-serve) read lines and call submit(); the
/// server promises to invoke the response callback exactly once per
/// submitted line, always with a well-formed protocol response.
///
/// The robustness envelope, one layer per failure class:
///
///  * Admission: a line over MaxRequestBytes is refused with
///    payload-too-large before parsing; a full queue sheds the request
///    with an immediate overloaded response (bounded memory, bounded
///    latency for everyone already queued).
///  * Budgets: every analysis runs under the server's SolverBudget
///    ceilings; a request may tighten its own budget but never loosen
///    the server's. Breaches degrade the analysis, not the daemon.
///  * Fault boundary: each request runs inside its own try/catch (plus
///    the serve.request failpoint); an escaping exception becomes an
///    internal error response for that request only.
///  * Watchdog: a worker that blows through the deadline plus grace
///    (e.g. a stalled failpoint or a pathological input the budgets
///    missed) has its request failed with a deadline response by the
///    watchdog thread; the worker slot is abandoned -- the thread
///    detaches, finishes into the void, and discards its late result --
///    and a replacement worker keeps the pool at strength. The daemon
///    never dies with the wedged worker.
///  * Quotas: the cache evicts per tenant (ServeCache), so one noisy
///    tenant cannot evict another's warm state.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_SERVE_SERVER_H
#define ARDF_SERVE_SERVER_H

#include "serve/Protocol.h"
#include "serve/ServeCache.h"
#include "telemetry/Telemetry.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace ardf {
namespace serve {

/// Server configuration (all ceilings have safe defaults; 0 disables
/// the individual ceiling where noted).
struct ServeOptions {
  /// Worker threads handling requests.
  unsigned Workers = 1;

  /// Bounded queue depth; submissions past it are shed with an
  /// overloaded response.
  unsigned QueueDepth = 64;

  /// Admission cap on one request line, bytes (0 = uncapped).
  uint64_t MaxRequestBytes = 1u << 20;

  /// Per-request wall-clock deadline, milliseconds. Doubles as the
  /// default solver deadline when a request sets none, and as the
  /// watchdog threshold (plus grace). 0 disables both.
  uint64_t RequestDeadlineMs = 2000;

  /// Extra time past the deadline before the watchdog fails a wedged
  /// worker's request (budgets check at pass boundaries, so a healthy
  /// over-deadline solve normally degrades on its own first).
  uint64_t WatchdogGraceMs = 500;

  /// Live documents per tenant (ServeCache quota).
  unsigned TenantQuota = 8;

  /// Program versions retained per document before the warm driver is
  /// rebuilt cold (bounds the rerun lifetime rule's memory).
  unsigned MaxProgramsPerDocument = 8;

  /// Server-wide solver ceilings; requests may only tighten them.
  SolverBudget Budget;

  /// Engine used when a request names none.
  SolverOptions::Engine Engine = SolverOptions::Engine::Reference;
};

/// The transport-agnostic request engine.
class AnalysisServer {
public:
  /// Invoked exactly once per submitted line with the complete response
  /// line (no trailing newline). May be called from a worker thread,
  /// the watchdog thread, or inline from submit(); must be thread-safe
  /// against other requests' callbacks and must not block for long.
  using Respond = std::function<void(std::string)>;

  explicit AnalysisServer(ServeOptions Opts = ServeOptions());

  /// Drains and joins (requestShutdown + pending requests answered
  /// shutting-down).
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer &) = delete;
  AnalysisServer &operator=(const AnalysisServer &) = delete;

  /// Submits one raw request line. Admission control (payload cap,
  /// queue bound, shutdown state) answers inline; admitted lines are
  /// answered from the pool.
  void submit(std::string Line, Respond R);

  /// Begins shutdown: no new admissions, queued requests are answered
  /// shutting-down, workers exit once idle. Idempotent, non-blocking.
  void requestShutdown();

  /// True once a shutdown request (method or call) was seen. Transports
  /// poll this to leave their accept loops.
  bool shutdownRequested() const;

  /// Blocks until the queue is empty and every worker is idle (tests
  /// and the stdio transport's EOF handling).
  void drain();

  const ServeOptions &options() const;

  ServeCacheStats cacheStats() const;

  /// The server's telemetry context (counters + serve.request_ns
  /// histogram); shared by all workers, safe to read concurrently.
  const telem::Telemetry &telemetry() const;

private:
  struct Core;
  std::shared_ptr<Core> C;
};

} // namespace serve
} // namespace ardf

#endif // ARDF_SERVE_SERVER_H
