//===- serve/Protocol.h - ardf-serve wire protocol -------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON protocol of ardf-serve, shared by the
/// daemon, the bundled client, the fuzzer, and the tests. One request
/// per line, one response line per request, over stdio or a Unix
/// socket:
///
/// \code
///   request  := { "method": "analyze"|"lint"|"explain"|"stats"
///                           |"shutdown",
///                 "id"?: any,            // echoed verbatim
///                 "tenant"?: string,     // cache partition ("default")
///                 "file"?: string,       // artifact name for diagnostics
///                 "source"?: string,     // .arf program text
///                 "engine"?: string,     // reference|packed|simd|summary
///                 "cross_check"?: bool, "nested"?: bool,
///                 "explain_check"?: string,
///                 "budget"?: { "visits"?: int, "slack"?: number,
///                              "deadline_ms"?: int, "cells"?: int } }
///   response := { "id": any, "ok": true,  "result": object }
///             | { "id": any, "ok": false,
///                 "error": { "code": string, "message": string } }
/// \endcode
///
/// Error codes are a closed set (ErrorCode): clients can dispatch on
/// them without parsing messages. Parsing is total: any malformed line
/// becomes a bad-request error response, never an exception.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_SERVE_PROTOCOL_H
#define ARDF_SERVE_PROTOCOL_H

#include "dataflow/Framework.h"
#include "serve/Json.h"

#include <string>

namespace ardf {
namespace serve {

/// The five request methods.
enum class Method : uint8_t { Analyze, Lint, Explain, Stats, Shutdown };

const char *methodName(Method M);

/// The closed error-code set of the protocol.
enum class ErrorCode : uint8_t {
  BadRequest,      ///< malformed JSON or invalid/missing fields
  PayloadTooLarge, ///< request line exceeded the admission byte cap
  Overloaded,      ///< bounded queue full; request shed, retry later
  Deadline,        ///< request exceeded its wall-clock deadline
  Internal,        ///< fault contained by the request boundary
  ShuttingDown,    ///< daemon is draining; no new work admitted
};

const char *errorCodeName(ErrorCode C);

/// One parsed, validated request.
struct Request {
  Method M = Method::Stats;

  /// The request's "id" member, echoed verbatim into the response
  /// (null when absent -- fire-and-forget clients still get a line).
  json::Value Id;

  /// Cache partition; every tenant has its own LRU quota.
  std::string Tenant = "default";

  /// Artifact name stamped into diagnostics (and the incremental-diff
  /// key: edits arrive as new sources under the same tenant+file).
  std::string File = "<request>";

  /// Program text (analyze/lint/explain).
  std::string Source;

  SolverOptions::Engine Engine = SolverOptions::Engine::Reference;
  bool CrossCheck = true;
  bool IncludeNested = true;
  std::string ExplainCheck;

  /// Request-level ceilings; the server clamps them against its own
  /// (a tenant may tighten its budget, never loosen the server's).
  SolverBudget Budget;
};

/// Outcome of parseRequest: Ok with a Request, or an error message for
/// a BadRequest response. Id carries whatever id could be recovered
/// from the line (so even malformed requests echo one when possible).
struct ParsedRequest {
  bool Ok = false;
  Request R;
  std::string Error;
  json::Value Id;
};

/// Parses and validates one request line. Total: never throws.
ParsedRequest parseRequest(const std::string &Line);

/// Builds the ok-response line (no trailing newline).
std::string okResponse(const json::Value &Id, json::Value Result);

/// Builds the error-response line (no trailing newline).
std::string errorResponse(const json::Value &Id, ErrorCode Code,
                          const std::string &Message);

} // namespace serve
} // namespace ardf

#endif // ARDF_SERVE_PROTOCOL_H
