//===- serve/Json.h - Bounded JSON parsing and writing ---------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's JSON layer: a small value model, a recursive-descent
/// parser, and a compact single-line writer. The parser is built for
/// untrusted input -- it never throws, reports one located error
/// message, and enforces a nesting-depth cap so a "[[[[..." bomb costs
/// O(depth cap) stack instead of a stack overflow. Payload-size caps
/// live one layer up (the line reader and the server's admission
/// control); this layer assumes the text already fit in memory.
///
/// Numbers are kept as int64 when the source text is integral and in
/// range (budget ceilings and ids must round-trip exactly), doubles
/// otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_SERVE_JSON_H
#define ARDF_SERVE_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ardf {
namespace json {

class Value;

/// Object members in key order (std::map: deterministic serialization).
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

/// One JSON value. A tagged union over the seven JSON shapes (numbers
/// split into integral and floating).
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  Value() : K(Kind::Null) {}
  Value(std::nullptr_t) : K(Kind::Null) {}
  Value(bool B) : K(Kind::Bool), BoolV(B) {}
  Value(int64_t I) : K(Kind::Int), IntV(I) {}
  Value(int I) : K(Kind::Int), IntV(I) {}
  Value(uint64_t U);
  Value(double D) : K(Kind::Double), DoubleV(D) {}
  Value(const char *S) : K(Kind::String), StringV(S) {}
  Value(std::string S) : K(Kind::String), StringV(std::move(S)) {}
  Value(Array A) : K(Kind::Array), ArrayV(std::move(A)) {}
  Value(Object O) : K(Kind::Object), ObjectV(std::move(O)) {}

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return BoolV; }
  int64_t intValue() const;
  double doubleValue() const;
  const std::string &stringValue() const { return StringV; }
  const Array &array() const { return ArrayV; }
  Array &array() { return ArrayV; }
  const Object &object() const { return ObjectV; }
  Object &object() { return ObjectV; }

  /// Member lookup on an object; null for other kinds or missing keys.
  const Value *find(const std::string &Key) const;

  /// Compact single-line serialization (NDJSON-safe: the writer never
  /// emits a raw newline, including inside strings).
  void write(std::string &Out) const;
  std::string toString() const;

private:
  Kind K;
  bool BoolV = false;
  int64_t IntV = 0;
  double DoubleV = 0.0;
  std::string StringV;
  Array ArrayV;
  Object ObjectV;
};

/// Default nesting-depth cap for untrusted input.
inline constexpr unsigned DefaultMaxDepth = 64;

/// Result of parse(): either a value or a located error message.
struct ParseOutcome {
  Value V;
  bool Ok = false;
  std::string Error;    ///< empty when Ok
  size_t ErrorAt = 0;   ///< byte offset of the error
};

/// Parses one complete JSON document from \p Text (leading/trailing
/// whitespace allowed; anything else after the value is an error).
/// Never throws.
ParseOutcome parse(std::string_view Text, unsigned MaxDepth = DefaultMaxDepth);

/// Escapes \p S as a JSON string literal (with quotes) into \p Out.
void appendQuoted(std::string &Out, std::string_view S);

} // namespace json
} // namespace ardf

#endif // ARDF_SERVE_JSON_H
