//===- serve/ServeCache.h - Tenant-partitioned analysis cache --*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's cross-request memory: one Document per (tenant, file)
/// holding every parsed Program version the warm driver still
/// references, the ProgramAnalysisDriver whose sessions (compiled flow
/// programs, transfer summaries, solutions) stay warm across edits, and
/// a small LRU of rendered responses keyed by content hash x request
/// options.
///
/// Containment model: tenants are hard partitions. Each tenant owns an
/// LRU list capped at a document quota; inserting past the quota evicts
/// that tenant's least-recently-used document (never another tenant's),
/// so one tenant streaming unique files can only thrash its own
/// entries. Eviction is safe under concurrency: lookups hand out
/// shared_ptr<Document>, so a worker mid-analysis on an evicted
/// document finishes on the live object and the memory is reclaimed
/// when the last worker lets go.
///
/// Locking: the cache map has one mutex for structural operations
/// (lookup/insert/evict -- all O(1)-ish and allocation-light); each
/// Document has its own mutex serializing analysis on that document.
/// Workers never hold both at once.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_SERVE_SERVECACHE_H
#define ARDF_SERVE_SERVECACHE_H

#include "driver/ProgramAnalysisDriver.h"
#include "ir/Program.h"

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ardf {
namespace serve {

/// FNV-1a 64-bit content hash (the cache key ingredient).
uint64_t hashBytes(std::string_view Bytes);

/// One cached (tenant, file) document. All members except the mutex are
/// guarded by it: a worker locks the document for the whole analysis of
/// one request against it.
struct Document {
  std::mutex M;

  /// Content hash of the current (latest analyzed) source version.
  uint64_t SourceHash = 0;

  /// Signature of the DriverOptions the warm driver was built with; an
  /// analyze request under different options rebuilds cold (0 = no
  /// driver yet).
  uint64_t DriverOptionsKey = 0;

  /// Approximate resident source bytes across retained versions.
  size_t RetainedBytes = 0;

  /// Every program version the driver was handed, oldest first. The
  /// driver's reused sessions keep referencing old versions (the
  /// rerun lifetime rule), so versions are retained until the worker
  /// resets the document (bounded by the server's per-document cap).
  std::vector<std::unique_ptr<Program>> Programs;

  /// Warm driver over Programs.back(); null until the first analyzable
  /// request (or after a reset).
  std::unique_ptr<ProgramAnalysisDriver> Driver;

  /// A rendered response memo: Key folds content hash and the
  /// analysis-relevant request options.
  struct CachedResponse {
    uint64_t Key = 0;
    std::string ResultJson;
  };

  /// Tiny per-document response LRU, most recent first.
  static constexpr size_t MaxResponses = 4;
  std::vector<CachedResponse> Responses;

  /// Finds a memoized response; moves it to the front on hit.
  const std::string *findResponse(uint64_t Key);

  /// Inserts (or refreshes) a memoized response, trimming to
  /// MaxResponses.
  void rememberResponse(uint64_t Key, std::string ResultJson);

  /// Drops the driver, retained programs, and memos (the bounded-memory
  /// reset path; also what a parse failure leaves behind).
  void reset();
};

/// Point-in-time structural tallies of the cache.
struct ServeCacheStats {
  size_t Tenants = 0;
  size_t Documents = 0;
  size_t ResidentBytes = 0;
  uint64_t Evictions = 0;
};

/// The tenant-partitioned document cache.
class ServeCache {
public:
  /// \p TenantQuota caps live documents per tenant (0 means 1: a quota
  /// of zero would make every request uncacheable, which no caller
  /// wants).
  explicit ServeCache(unsigned TenantQuota);

  /// The document of (tenant, file), created on first use. Touches the
  /// tenant's LRU and evicts past-quota documents (eviction only
  /// detaches them from the map; live references finish safely).
  /// \p Created reports whether this call made the document.
  std::shared_ptr<Document> lookup(const std::string &Tenant,
                                   const std::string &File, bool &Created);

  /// Drops every document (tests; the daemon never calls this while
  /// serving).
  void clear();

  ServeCacheStats stats() const;

private:
  struct TenantState {
    /// Most-recently-used first; pair of file name and document.
    std::list<std::pair<std::string, std::shared_ptr<Document>>> Lru;
  };

  mutable std::mutex M;
  std::map<std::string, TenantState> Tenants;
  unsigned Quota;
  uint64_t Evictions = 0;
};

} // namespace serve
} // namespace ardf

#endif // ARDF_SERVE_SERVECACHE_H
