//===- serve/Protocol.cpp - ardf-serve wire protocol ----------------------===//

#include "serve/Protocol.h"

using namespace ardf;
using namespace ardf::serve;

const char *serve::methodName(Method M) {
  switch (M) {
  case Method::Analyze:
    return "analyze";
  case Method::Lint:
    return "lint";
  case Method::Explain:
    return "explain";
  case Method::Stats:
    return "stats";
  case Method::Shutdown:
    return "shutdown";
  }
  return "unknown";
}

const char *serve::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::BadRequest:
    return "bad-request";
  case ErrorCode::PayloadTooLarge:
    return "payload-too-large";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::Deadline:
    return "deadline";
  case ErrorCode::Internal:
    return "internal";
  case ErrorCode::ShuttingDown:
    return "shutting-down";
  }
  return "unknown";
}

namespace {

bool parseMethod(const std::string &Name, Method &Out) {
  if (Name == "analyze")
    Out = Method::Analyze;
  else if (Name == "lint")
    Out = Method::Lint;
  else if (Name == "explain")
    Out = Method::Explain;
  else if (Name == "stats")
    Out = Method::Stats;
  else if (Name == "shutdown")
    Out = Method::Shutdown;
  else
    return false;
  return true;
}

/// Reads an optional member of \p Kind; false (with \p Err set) when
/// present with the wrong kind.
bool readString(const json::Value &O, const char *Key, std::string &Out,
                std::string &Err) {
  const json::Value *V = O.find(Key);
  if (!V)
    return true;
  if (!V->isString()) {
    Err = std::string("'") + Key + "' must be a string";
    return false;
  }
  Out = V->stringValue();
  return true;
}

bool readBool(const json::Value &O, const char *Key, bool &Out,
              std::string &Err) {
  const json::Value *V = O.find(Key);
  if (!V)
    return true;
  if (!V->isBool()) {
    Err = std::string("'") + Key + "' must be a boolean";
    return false;
  }
  Out = V->boolValue();
  return true;
}

bool readUint(const json::Value &O, const char *Key, uint64_t &Out,
              std::string &Err) {
  const json::Value *V = O.find(Key);
  if (!V)
    return true;
  if (!V->isInt() || V->intValue() < 0) {
    Err = std::string("'") + Key + "' must be a non-negative integer";
    return false;
  }
  Out = static_cast<uint64_t>(V->intValue());
  return true;
}

} // namespace

ParsedRequest serve::parseRequest(const std::string &Line) {
  ParsedRequest P;
  json::ParseOutcome J = json::parse(Line);
  if (!J.Ok) {
    P.Error = "malformed JSON at byte " + std::to_string(J.ErrorAt) + ": " +
              J.Error;
    return P;
  }
  if (!J.V.isObject()) {
    P.Error = "request must be a JSON object";
    return P;
  }
  if (const json::Value *Id = J.V.find("id"))
    P.Id = *Id;

  const json::Value *MethodV = J.V.find("method");
  if (!MethodV || !MethodV->isString()) {
    P.Error = "missing 'method' string";
    return P;
  }
  Request &R = P.R;
  R.Id = P.Id;
  if (!parseMethod(MethodV->stringValue(), R.M)) {
    P.Error = "unknown method '" + MethodV->stringValue() +
              "' (expected analyze, lint, explain, stats, or shutdown)";
    return P;
  }

  std::string Err;
  std::string EngineName;
  if (!readString(J.V, "tenant", R.Tenant, Err) ||
      !readString(J.V, "file", R.File, Err) ||
      !readString(J.V, "source", R.Source, Err) ||
      !readString(J.V, "engine", EngineName, Err) ||
      !readString(J.V, "explain_check", R.ExplainCheck, Err) ||
      !readBool(J.V, "cross_check", R.CrossCheck, Err) ||
      !readBool(J.V, "nested", R.IncludeNested, Err)) {
    P.Error = Err;
    return P;
  }
  if (R.Tenant.empty()) {
    P.Error = "'tenant' must be non-empty";
    return P;
  }
  if (!EngineName.empty() && !parseEngineName(EngineName, R.Engine)) {
    P.Error = "unknown engine '" + EngineName + "' (expected one of: " +
              engineNameList() + ")";
    return P;
  }
  if (const json::Value *B = J.V.find("budget")) {
    if (!B->isObject()) {
      P.Error = "'budget' must be an object";
      return P;
    }
    uint64_t Visits = 0, DeadlineMs = 0, Cells = 0;
    if (!readUint(*B, "visits", Visits, Err) ||
        !readUint(*B, "deadline_ms", DeadlineMs, Err) ||
        !readUint(*B, "cells", Cells, Err)) {
      P.Error = Err;
      return P;
    }
    if (const json::Value *Slack = B->find("slack")) {
      if (!Slack->isNumber() || Slack->doubleValue() < 0.0) {
        P.Error = "'slack' must be a non-negative number";
        return P;
      }
      R.Budget.VisitSlack = Slack->doubleValue();
    }
    R.Budget.MaxNodeVisits = Visits;
    R.Budget.DeadlineNs = DeadlineMs * 1000000ull;
    R.Budget.MaxMatrixCells = Cells;
  }

  bool NeedsSource = R.M == Method::Analyze || R.M == Method::Lint ||
                     R.M == Method::Explain;
  if (NeedsSource && !J.V.find("source")) {
    P.Error = std::string("method '") + methodName(R.M) +
              "' requires a 'source' string";
    return P;
  }

  P.Ok = true;
  return P;
}

std::string serve::okResponse(const json::Value &Id, json::Value Result) {
  std::string Out = "{\"id\":";
  Id.write(Out);
  Out += ",\"ok\":true,\"result\":";
  Result.write(Out);
  Out += "}";
  return Out;
}

std::string serve::errorResponse(const json::Value &Id, ErrorCode Code,
                                 const std::string &Message) {
  std::string Out = "{\"id\":";
  Id.write(Out);
  Out += ",\"ok\":false,\"error\":{\"code\":\"";
  Out += errorCodeName(Code);
  Out += "\",\"message\":";
  json::appendQuoted(Out, Message);
  Out += "}}";
  return Out;
}
