//===- interp/Interpreter.h - Source-level loop interpreter ----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for the loop IR with memory-access accounting.
/// It serves two roles in the reproduction:
///
///   1. Oracle for transformation correctness: redundant store/load
///      elimination and loop unrolling are validated by comparing the
///      final machine-visible state (arrays + scalars) of the original
///      and transformed programs on the same inputs.
///   2. Cost model for the paper's optimization claims: every evaluated
///      array reference counts as a memory load, every array assignment
///      as a memory store, so the benches can report the load/store
///      reductions of Figs. 5-7 quantitatively.
///
/// Array storage is sparse (hash map per array), so negative and
/// out-of-declared-bounds subscripts (A[i-1] at i == 1, the unpeeled
/// A[1001], ...) behave uniformly; uninitialized cells and scalars read
/// as 0 unless preset.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_INTERP_INTERPRETER_H
#define ARDF_INTERP_INTERPRETER_H

#include "ir/Program.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace ardf {

/// Memory-access counters accumulated during execution.
struct ExecStats {
  uint64_t ArrayLoads = 0;
  uint64_t ArrayStores = 0;
  uint64_t ScalarAssignments = 0;
  uint64_t StatementsExecuted = 0;
  uint64_t LoopIterations = 0;

  uint64_t memoryAccesses() const { return ArrayLoads + ArrayStores; }
};

/// Machine-visible final state: every written/read array cell and every
/// scalar. Two executions are observationally equivalent when their
/// MachineState compares equal.
struct MachineState {
  /// Array name -> (flattened cell index -> value). Multi-dimensional
  /// references are flattened row-major using the declared sizes.
  std::map<std::string, std::map<int64_t, int64_t>> Arrays;
  std::map<std::string, int64_t> Scalars;

  bool operator==(const MachineState &RHS) const = default;
};

/// Interprets a whole Program.
class Interpreter {
public:
  explicit Interpreter(const Program &P) : Prog(&P) {}

  /// Presets a scalar input (e.g. the X of Fig. 1 or a symbolic bound).
  void setScalar(const std::string &Name, int64_t Value);

  /// Presets one array cell.
  void setArrayCell(const std::string &Array, int64_t Index, int64_t Value);

  /// Fills cells [0, Count) of \p Array with a deterministic
  /// pseudo-random pattern derived from \p Seed.
  void seedArray(const std::string &Array, int64_t Count, uint64_t Seed);

  /// Executes all top-level statements. May be called once.
  void run();

  const ExecStats &stats() const { return Stats; }
  const MachineState &state() const { return State; }

  /// Reads back one cell (0 when never written).
  int64_t arrayCell(const std::string &Array, int64_t Index) const;

  /// Reads back one scalar (0 when never written).
  int64_t scalar(const std::string &Name) const;

  /// Observes every statement right before it executes, in execution
  /// order. A loop statement fires once when control first reaches it;
  /// its body statements fire once per iteration. Used by the CFG
  /// execution-order oracle tests.
  void setTraceHook(std::function<void(const Stmt &)> Hook) {
    Trace = std::move(Hook);
  }

private:
  int64_t evalExpr(const Expr &E);
  int64_t flattenIndex(const ArrayRefExpr &Ref);
  void execStmt(const Stmt &S);
  void execStmts(const StmtList &Stmts);

  const Program *Prog;
  MachineState State;
  ExecStats Stats;
  std::function<void(const Stmt &)> Trace;
  /// Set by a break statement; unwinds execStmts up to the nearest
  /// enclosing loop, which clears it.
  bool BreakPending = false;
};

/// Convenience: interpret \p P with the given scalar presets and return
/// the interpreter (state + stats).
Interpreter interpret(const Program &P,
                      const std::map<std::string, int64_t> &Scalars = {});

} // namespace ardf

#endif // ARDF_INTERP_INTERPRETER_H
