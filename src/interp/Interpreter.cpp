//===- interp/Interpreter.cpp - Source-level loop interpreter ------------===//

#include "interp/Interpreter.h"

#include <cassert>

using namespace ardf;

void Interpreter::setScalar(const std::string &Name, int64_t Value) {
  State.Scalars[Name] = Value;
}

void Interpreter::setArrayCell(const std::string &Array, int64_t Index,
                               int64_t Value) {
  State.Arrays[Array][Index] = Value;
}

void Interpreter::seedArray(const std::string &Array, int64_t Count,
                            uint64_t Seed) {
  // SplitMix64: deterministic, platform-independent.
  uint64_t X = Seed;
  for (int64_t I = 0; I != Count; ++I) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Z ^= Z >> 31;
    State.Arrays[Array][I] = static_cast<int64_t>(Z % 1000) - 500;
  }
}

int64_t Interpreter::arrayCell(const std::string &Array,
                               int64_t Index) const {
  auto ArrIt = State.Arrays.find(Array);
  if (ArrIt == State.Arrays.end())
    return 0;
  auto CellIt = ArrIt->second.find(Index);
  return CellIt == ArrIt->second.end() ? 0 : CellIt->second;
}

int64_t Interpreter::scalar(const std::string &Name) const {
  auto It = State.Scalars.find(Name);
  return It == State.Scalars.end() ? 0 : It->second;
}

int64_t Interpreter::flattenIndex(const ArrayRefExpr &Ref) {
  // Row-major flattening with the declared dimension sizes, consistent
  // with affine/linearizeSubscripts.
  const ArrayDecl *Decl = Prog->getArrayDecl(Ref.getName());
  int64_t Index = 0;
  for (unsigned I = 0, N = Ref.getNumSubscripts(); I != N; ++I) {
    if (I > 0) {
      assert(Decl && Decl->getNumDims() == N &&
             "multi-dimensional reference to undeclared array");
      Index *= evalExpr(*Decl->DimSizes[I]);
    }
    Index += evalExpr(*Ref.getSubscript(I));
  }
  return Index;
}

int64_t Interpreter::evalExpr(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    return cast<IntLit>(&E)->getValue();
  case Expr::Kind::VarRef:
    return scalar(cast<VarRef>(&E)->getName());
  case Expr::Kind::ArrayRef: {
    const auto *AR = cast<ArrayRefExpr>(&E);
    int64_t Index = flattenIndex(*AR);
    ++Stats.ArrayLoads;
    return arrayCell(AR->getName(), Index);
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(&E);
    int64_t V = evalExpr(*UE->getOperand());
    return UE->getOp() == UnaryOpKind::Neg ? -V : !V;
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(&E);
    int64_t L = evalExpr(*BE->getLHS());
    // Short-circuit logical operators like a real compiler would.
    if (BE->getOp() == BinaryOpKind::And)
      return L != 0 && evalExpr(*BE->getRHS()) != 0;
    if (BE->getOp() == BinaryOpKind::Or)
      return L != 0 || evalExpr(*BE->getRHS()) != 0;
    int64_t R = evalExpr(*BE->getRHS());
    switch (BE->getOp()) {
    case BinaryOpKind::Add:
      return L + R;
    case BinaryOpKind::Sub:
      return L - R;
    case BinaryOpKind::Mul:
      return L * R;
    case BinaryOpKind::Div:
      return R == 0 ? 0 : L / R;
    case BinaryOpKind::Eq:
      return L == R;
    case BinaryOpKind::Ne:
      return L != R;
    case BinaryOpKind::Lt:
      return L < R;
    case BinaryOpKind::Le:
      return L <= R;
    case BinaryOpKind::Gt:
      return L > R;
    case BinaryOpKind::Ge:
      return L >= R;
    case BinaryOpKind::And:
    case BinaryOpKind::Or:
      break;
    }
    return 0;
  }
  }
  return 0;
}

void Interpreter::execStmt(const Stmt &S) {
  ++Stats.StatementsExecuted;
  if (Trace)
    Trace(S);
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    const auto *AS = cast<AssignStmt>(&S);
    int64_t Value = evalExpr(*AS->getRHS());
    if (const ArrayRefExpr *Target = AS->getArrayTarget()) {
      int64_t Index = flattenIndex(*Target);
      ++Stats.ArrayStores;
      State.Arrays[Target->getName()][Index] = Value;
    } else {
      ++Stats.ScalarAssignments;
      State.Scalars[cast<VarRef>(AS->getLHS())->getName()] = Value;
    }
    return;
  }
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(&S);
    if (evalExpr(*IS->getCond()) != 0)
      execStmts(IS->getThen());
    else
      execStmts(IS->getElse());
    return;
  }
  case Stmt::Kind::DoLoop: {
    const auto *DL = cast<DoLoopStmt>(&S);
    int64_t Lower = evalExpr(*DL->getLower());
    int64_t Upper = evalExpr(*DL->getUpper());
    int64_t Step = DL->getStep();
    assert(Step != 0 && "zero loop step");
    for (int64_t I = Lower; Step > 0 ? I <= Upper : I >= Upper; I += Step) {
      State.Scalars[DL->getIndVar()] = I;
      ++Stats.LoopIterations;
      execStmts(DL->getBody());
      if (BreakPending) {
        BreakPending = false;
        break;
      }
    }
    return;
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(&S);
    while (evalExpr(*WS->getCond()) != 0) {
      ++Stats.LoopIterations;
      execStmts(WS->getBody());
      if (BreakPending) {
        BreakPending = false;
        break;
      }
    }
    return;
  }
  case Stmt::Kind::Break:
    BreakPending = true;
    return;
  }
}

void Interpreter::execStmts(const StmtList &Stmts) {
  for (const StmtPtr &S : Stmts) {
    execStmt(*S);
    if (BreakPending)
      return;
  }
}

void Interpreter::run() { execStmts(Prog->getStmts()); }

Interpreter ardf::interpret(const Program &P,
                            const std::map<std::string, int64_t> &Scalars) {
  Interpreter I(P);
  for (const auto &[Name, Value] : Scalars)
    I.setScalar(Name, Value);
  I.run();
  return I;
}
