//===- ir/PrettyPrinter.h - Source form printing of the IR -----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints IR trees back in the surface syntax accepted by the parser, so
/// that print(parse(x)) == print(parse(print(parse(x)))) round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_IR_PRETTYPRINTER_H
#define ARDF_IR_PRETTYPRINTER_H

#include "ir/Program.h"

#include <iosfwd>
#include <string>

namespace ardf {

/// Prints \p E in surface syntax.
void printExpr(std::ostream &OS, const Expr &E);

/// Prints \p S in surface syntax, indented by \p Indent spaces.
void printStmt(std::ostream &OS, const Stmt &S, unsigned Indent = 0);

/// Prints a statement list.
void printStmts(std::ostream &OS, const StmtList &Stmts, unsigned Indent = 0);

/// Prints the whole program (declarations then statements).
void printProgram(std::ostream &OS, const Program &P);

/// Returns printExpr output as a string.
std::string exprToString(const Expr &E);

/// Returns printStmt output as a string.
std::string stmtToString(const Stmt &S);

/// Returns printProgram output as a string.
std::string programToString(const Program &P);

} // namespace ardf

#endif // ARDF_IR_PRETTYPRINTER_H
