//===- ir/Expr.cpp - Expression nodes of the loop IR ---------------------===//

#include "ir/Expr.h"

using namespace ardf;

Expr::~Expr() = default;

const char *ardf::spelling(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Add:
    return "+";
  case BinaryOpKind::Sub:
    return "-";
  case BinaryOpKind::Mul:
    return "*";
  case BinaryOpKind::Div:
    return "/";
  case BinaryOpKind::Eq:
    return "==";
  case BinaryOpKind::Ne:
    return "!=";
  case BinaryOpKind::Lt:
    return "<";
  case BinaryOpKind::Le:
    return "<=";
  case BinaryOpKind::Gt:
    return ">";
  case BinaryOpKind::Ge:
    return ">=";
  case BinaryOpKind::And:
    return "&&";
  case BinaryOpKind::Or:
    return "||";
  }
  return "?";
}

const char *ardf::spelling(UnaryOpKind Op) {
  switch (Op) {
  case UnaryOpKind::Neg:
    return "-";
  case UnaryOpKind::Not:
    return "!";
  }
  return "?";
}

ExprPtr Expr::clone() const {
  ExprPtr Copy;
  switch (TheKind) {
  case Kind::IntLit:
    Copy = std::make_unique<IntLit>(cast<IntLit>(this)->getValue());
    break;
  case Kind::VarRef:
    Copy = std::make_unique<VarRef>(cast<VarRef>(this)->getName());
    break;
  case Kind::ArrayRef: {
    const auto *AR = cast<ArrayRefExpr>(this);
    std::vector<ExprPtr> Subs;
    Subs.reserve(AR->getNumSubscripts());
    for (const ExprPtr &S : AR->subscripts())
      Subs.push_back(S->clone());
    Copy = std::make_unique<ArrayRefExpr>(AR->getName(), std::move(Subs));
    break;
  }
  case Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(this);
    Copy = std::make_unique<BinaryExpr>(BE->getOp(), BE->getLHS()->clone(),
                                        BE->getRHS()->clone());
    break;
  }
  case Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(this);
    Copy = std::make_unique<UnaryExpr>(UE->getOp(),
                                       UE->getOperand()->clone());
    break;
  }
  }
  if (Copy)
    Copy->setLoc(getLoc());
  return Copy;
}

bool Expr::equals(const Expr &RHS) const {
  if (TheKind != RHS.getKind())
    return false;
  switch (TheKind) {
  case Kind::IntLit:
    return cast<IntLit>(this)->getValue() == cast<IntLit>(&RHS)->getValue();
  case Kind::VarRef:
    return cast<VarRef>(this)->getName() == cast<VarRef>(&RHS)->getName();
  case Kind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(this);
    const auto *B = cast<ArrayRefExpr>(&RHS);
    if (A->getName() != B->getName() ||
        A->getNumSubscripts() != B->getNumSubscripts())
      return false;
    for (unsigned I = 0, E = A->getNumSubscripts(); I != E; ++I)
      if (!A->getSubscript(I)->equals(*B->getSubscript(I)))
        return false;
    return true;
  }
  case Kind::Binary: {
    const auto *A = cast<BinaryExpr>(this);
    const auto *B = cast<BinaryExpr>(&RHS);
    return A->getOp() == B->getOp() && A->getLHS()->equals(*B->getLHS()) &&
           A->getRHS()->equals(*B->getRHS());
  }
  case Kind::Unary: {
    const auto *A = cast<UnaryExpr>(this);
    const auto *B = cast<UnaryExpr>(&RHS);
    return A->getOp() == B->getOp() &&
           A->getOperand()->equals(*B->getOperand());
  }
  }
  return false;
}

void ardf::forEachSubExpr(const Expr &E,
                          const std::function<void(const Expr &)> &Fn) {
  Fn(E);
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
    break;
  case Expr::Kind::ArrayRef:
    for (const ExprPtr &S : cast<ArrayRefExpr>(&E)->subscripts())
      forEachSubExpr(*S, Fn);
    break;
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(&E);
    forEachSubExpr(*BE->getLHS(), Fn);
    forEachSubExpr(*BE->getRHS(), Fn);
    break;
  }
  case Expr::Kind::Unary:
    forEachSubExpr(*cast<UnaryExpr>(&E)->getOperand(), Fn);
    break;
  }
}
