//===- ir/Expr.h - Expression nodes of the loop IR -------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression nodes of the Fortran-like loop IR analyzed by the framework.
/// The paper (Section 1) restricts array subscripts to affine functions
/// a*i + b of the controlling induction variable; that restriction is
/// checked later by affine extraction, not by the IR itself.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_IR_EXPR_H
#define ARDF_IR_EXPR_H

#include "ir/SourceLoc.h"
#include "support/Casting.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ardf {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Binary operators of the source language. Comparison and logical
/// operators only appear in conditions of if statements.
enum class BinaryOpKind {
  Add,
  Sub,
  Mul,
  Div,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or
};

/// Unary operators of the source language.
enum class UnaryOpKind { Neg, Not };

/// Returns the source spelling of \p Op ("+", "<=", ...).
const char *spelling(BinaryOpKind Op);

/// Returns the source spelling of \p Op ("-", "!").
const char *spelling(UnaryOpKind Op);

/// Base class of all expression nodes.
class Expr {
public:
  enum class Kind { IntLit, VarRef, ArrayRef, Binary, Unary };

  explicit Expr(Kind K) : TheKind(K) {}
  virtual ~Expr();

  Kind getKind() const { return TheKind; }

  /// Source position of the expression's first token; invalid for IR
  /// built programmatically. Preserved by clone().
  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// Deep-copies this expression tree (including source locations).
  ExprPtr clone() const;

  /// Structural equality of two expression trees (locations ignored).
  bool equals(const Expr &RHS) const;

private:
  const Kind TheKind;
  SourceLoc Loc;
};

/// An integer literal.
class IntLit : public Expr {
public:
  explicit IntLit(int64_t Value) : Expr(Kind::IntLit), Value(Value) {}

  int64_t getValue() const { return Value; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// A reference to a scalar variable (or an induction variable, or a
/// symbolic constant -- the distinction is contextual).
class VarRef : public Expr {
public:
  explicit VarRef(std::string Name) : Expr(Kind::VarRef), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }

private:
  std::string Name;
};

/// A (possibly multi-dimensional) subscripted array reference X[e1,...,en].
class ArrayRefExpr : public Expr {
public:
  ArrayRefExpr(std::string Name, std::vector<ExprPtr> Subscripts)
      : Expr(Kind::ArrayRef), Name(std::move(Name)),
        Subscripts(std::move(Subscripts)) {}

  const std::string &getName() const { return Name; }
  unsigned getNumSubscripts() const { return Subscripts.size(); }
  const Expr *getSubscript(unsigned I) const {
    return Subscripts[I].get();
  }
  const std::vector<ExprPtr> &subscripts() const { return Subscripts; }

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::ArrayRef;
  }

private:
  std::string Name;
  std::vector<ExprPtr> Subscripts;
};

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOpKind Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(Kind::Binary), Op(Op), LHS(std::move(LHS)), RHS(std::move(RHS)) {}

  BinaryOpKind getOp() const { return Op; }
  const Expr *getLHS() const { return LHS.get(); }
  const Expr *getRHS() const { return RHS.get(); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  BinaryOpKind Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOpKind Op, ExprPtr Operand)
      : Expr(Kind::Unary), Op(Op), Operand(std::move(Operand)) {}

  UnaryOpKind getOp() const { return Op; }
  const Expr *getOperand() const { return Operand.get(); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOpKind Op;
  ExprPtr Operand;
};

/// Calls \p Fn on \p E and every transitive sub-expression, pre-order.
void forEachSubExpr(const Expr &E, const std::function<void(const Expr &)> &Fn);

} // namespace ardf

#endif // ARDF_IR_EXPR_H
