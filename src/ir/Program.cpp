//===- ir/Program.cpp - Top-level program container ----------------------===//

#include "ir/Program.h"

using namespace ardf;

void Program::declareArray(std::string Name, std::vector<ExprPtr> DimSizes) {
  Decls.push_back(ArrayDecl{std::move(Name), std::move(DimSizes)});
}

const ArrayDecl *Program::getArrayDecl(const std::string &Name) const {
  for (const ArrayDecl &D : Decls)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

const DoLoopStmt *Program::getFirstLoop() const {
  for (const StmtPtr &S : Stmts)
    if (const auto *DL = dyn_cast<DoLoopStmt>(S.get()))
      return DL;
  return nullptr;
}

DoLoopStmt *Program::getFirstLoop() {
  for (StmtPtr &S : Stmts)
    if (auto *DL = dyn_cast<DoLoopStmt>(S.get()))
      return DL;
  return nullptr;
}

bool Program::equals(const Program &RHS) const {
  if (Decls.size() != RHS.Decls.size())
    return false;
  for (size_t I = 0; I != Decls.size(); ++I) {
    const ArrayDecl &A = Decls[I];
    const ArrayDecl &B = RHS.Decls[I];
    if (A.Name != B.Name || A.DimSizes.size() != B.DimSizes.size())
      return false;
    for (size_t D = 0; D != A.DimSizes.size(); ++D)
      if (!A.DimSizes[D]->equals(*B.DimSizes[D]))
        return false;
  }
  return stmtsEqual(Stmts, RHS.Stmts);
}

Program Program::clone() const {
  Program P;
  for (const ArrayDecl &D : Decls) {
    std::vector<ExprPtr> Sizes;
    Sizes.reserve(D.DimSizes.size());
    for (const ExprPtr &S : D.DimSizes)
      Sizes.push_back(S->clone());
    P.declareArray(D.Name, std::move(Sizes));
  }
  for (const StmtPtr &S : Stmts)
    P.addStmt(S->clone());
  return P;
}
