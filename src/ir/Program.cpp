//===- ir/Program.cpp - Top-level program container ----------------------===//

#include "ir/Program.h"

using namespace ardf;

void Program::declareArray(std::string Name, std::vector<ExprPtr> DimSizes) {
  Decls.push_back(ArrayDecl{std::move(Name), std::move(DimSizes)});
}

const ArrayDecl *Program::getArrayDecl(const std::string &Name) const {
  for (const ArrayDecl &D : Decls)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

const DoLoopStmt *Program::getFirstLoop() const {
  for (const StmtPtr &S : Stmts)
    if (const auto *DL = dyn_cast<DoLoopStmt>(S.get()))
      return DL;
  return nullptr;
}

DoLoopStmt *Program::getFirstLoop() {
  for (StmtPtr &S : Stmts)
    if (auto *DL = dyn_cast<DoLoopStmt>(S.get()))
      return DL;
  return nullptr;
}

Program Program::clone() const {
  Program P;
  for (const ArrayDecl &D : Decls) {
    std::vector<ExprPtr> Sizes;
    Sizes.reserve(D.DimSizes.size());
    for (const ExprPtr &S : D.DimSizes)
      Sizes.push_back(S->clone());
    P.declareArray(D.Name, std::move(Sizes));
  }
  for (const StmtPtr &S : Stmts)
    P.addStmt(S->clone());
  return P;
}
