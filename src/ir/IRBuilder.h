//===- ir/IRBuilder.h - Convenience constructors for the IR ----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Free functions that make programmatic construction of IR trees terse,
/// used heavily by tests and examples:
///
/// \code
///   StmtList Body;
///   Body.push_back(assign(array("A", add(var("i"), lit(2))),
///                         add(array("A", var("i")), var("X"))));
///   StmtPtr Loop = doLoop("i", 1, 1000, std::move(Body));
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_IR_IRBUILDER_H
#define ARDF_IR_IRBUILDER_H

#include "ir/Stmt.h"

namespace ardf {

/// Builds an integer literal.
inline ExprPtr lit(int64_t V) { return std::make_unique<IntLit>(V); }

/// Builds a scalar variable reference.
inline ExprPtr var(std::string Name) {
  return std::make_unique<VarRef>(std::move(Name));
}

/// Builds a one-dimensional array reference.
inline ExprPtr array(std::string Name, ExprPtr Subscript) {
  std::vector<ExprPtr> Subs;
  Subs.push_back(std::move(Subscript));
  return std::make_unique<ArrayRefExpr>(std::move(Name), std::move(Subs));
}

/// Builds a two-dimensional array reference.
inline ExprPtr array(std::string Name, ExprPtr S0, ExprPtr S1) {
  std::vector<ExprPtr> Subs;
  Subs.push_back(std::move(S0));
  Subs.push_back(std::move(S1));
  return std::make_unique<ArrayRefExpr>(std::move(Name), std::move(Subs));
}

/// Builds a binary expression.
inline ExprPtr binop(BinaryOpKind Op, ExprPtr L, ExprPtr R) {
  return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R));
}

inline ExprPtr add(ExprPtr L, ExprPtr R) {
  return binop(BinaryOpKind::Add, std::move(L), std::move(R));
}
inline ExprPtr sub(ExprPtr L, ExprPtr R) {
  return binop(BinaryOpKind::Sub, std::move(L), std::move(R));
}
inline ExprPtr mul(ExprPtr L, ExprPtr R) {
  return binop(BinaryOpKind::Mul, std::move(L), std::move(R));
}
inline ExprPtr eq(ExprPtr L, ExprPtr R) {
  return binop(BinaryOpKind::Eq, std::move(L), std::move(R));
}
inline ExprPtr neg(ExprPtr E) {
  return std::make_unique<UnaryExpr>(UnaryOpKind::Neg, std::move(E));
}

/// Builds an assignment statement.
inline StmtPtr assign(ExprPtr LHS, ExprPtr RHS) {
  return std::make_unique<AssignStmt>(std::move(LHS), std::move(RHS));
}

/// Builds an if-then statement.
inline StmtPtr ifThen(ExprPtr Cond, StmtList Then) {
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  StmtList());
}

/// Builds an if-then-else statement.
inline StmtPtr ifThenElse(ExprPtr Cond, StmtList Then, StmtList Else) {
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else));
}

/// Builds a normalized DO loop with constant bounds.
inline StmtPtr doLoop(std::string IndVar, int64_t Lower, int64_t Upper,
                      StmtList Body) {
  return std::make_unique<DoLoopStmt>(std::move(IndVar), lit(Lower),
                                      lit(Upper), std::move(Body));
}

/// Builds a normalized DO loop with a symbolic upper bound.
inline StmtPtr doLoop(std::string IndVar, int64_t Lower, std::string Upper,
                      StmtList Body) {
  return std::make_unique<DoLoopStmt>(std::move(IndVar), lit(Lower),
                                      var(std::move(Upper)), std::move(Body));
}

/// Builds a while loop.
inline StmtPtr whileLoop(ExprPtr Cond, StmtList Body) {
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body));
}

/// Builds a break statement.
inline StmtPtr breakStmt() { return std::make_unique<BreakStmt>(); }

/// Appends statements to a list fluently.
inline StmtList stmts() { return StmtList(); }

} // namespace ardf

#endif // ARDF_IR_IRBUILDER_H
