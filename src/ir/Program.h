//===- ir/Program.h - Top-level program container ---------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program owns a list of array declarations (with per-dimension sizes,
/// needed to linearize multi-dimensional references per Section 3.6 of the
/// paper) and a list of top-level statements.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_IR_PROGRAM_H
#define ARDF_IR_PROGRAM_H

#include "ir/Stmt.h"

#include <optional>
#include <string>
#include <vector>

namespace ardf {

/// Declaration of an array with one size expression per dimension.
/// Sizes may be integer literals or symbolic constants (VarRef).
struct ArrayDecl {
  std::string Name;
  std::vector<ExprPtr> DimSizes;

  unsigned getNumDims() const { return DimSizes.size(); }
};

/// A whole translation unit: array declarations plus top-level statements.
class Program {
public:
  Program() = default;
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  /// Declares array \p Name with the given dimension sizes.
  void declareArray(std::string Name, std::vector<ExprPtr> DimSizes);

  /// Returns the declaration for \p Name, or null if undeclared
  /// (undeclared arrays are treated as one-dimensional, unknown size).
  const ArrayDecl *getArrayDecl(const std::string &Name) const;

  const std::vector<ArrayDecl> &arrayDecls() const { return Decls; }

  StmtList &getStmts() { return Stmts; }
  const StmtList &getStmts() const { return Stmts; }

  /// Appends a top-level statement.
  void addStmt(StmtPtr S) { Stmts.push_back(std::move(S)); }

  /// Returns the first top-level DO loop, or null. Convenience accessor
  /// for the single-loop examples that dominate the paper.
  const DoLoopStmt *getFirstLoop() const;
  DoLoopStmt *getFirstLoop();

  /// Deep copy of the whole program.
  Program clone() const;

  /// Structural equality: same array declarations (names, dimension
  /// sizes) and structurally equal statements, ignoring source
  /// locations.
  bool equals(const Program &RHS) const;

private:
  std::vector<ArrayDecl> Decls;
  StmtList Stmts;
};

} // namespace ardf

#endif // ARDF_IR_PROGRAM_H
