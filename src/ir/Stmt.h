//===- ir/Stmt.h - Statement nodes of the loop IR --------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement nodes of the Fortran-like loop IR: assignments, structured
/// conditionals, and DO loops. The paper assumes single-entry single-exit
/// loops controlled by a basic induction variable; arbitrary gotos are not
/// representable, which matches the analysis preconditions (Section 1).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_IR_STMT_H
#define ARDF_IR_STMT_H

#include "ir/Expr.h"
#include "ir/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace ardf {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// Base class of all statement nodes.
class Stmt {
public:
  enum class Kind { Assign, If, DoLoop, While, Break };

  explicit Stmt(Kind K) : TheKind(K) {}
  virtual ~Stmt();

  Kind getKind() const { return TheKind; }

  /// Source position of the statement's first token; invalid for IR
  /// built programmatically. Preserved by clone().
  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// Deep-copies this statement tree (including source locations).
  StmtPtr clone() const;

  /// Structural equality of two statement trees. Source locations are
  /// ignored, like Expr::equals, so a parsed tree and its re-parsed
  /// pretty-print compare equal.
  bool equals(const Stmt &RHS) const;

private:
  const Kind TheKind;
  SourceLoc Loc;
};

/// Deep-copies a statement list.
StmtList cloneStmts(const StmtList &Stmts);

/// Element-wise structural equality of two statement lists.
bool stmtsEqual(const StmtList &A, const StmtList &B);

/// An assignment `lhs := rhs` where lhs is a scalar or an array reference.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr LHS, ExprPtr RHS)
      : Stmt(Kind::Assign), LHS(std::move(LHS)), RHS(std::move(RHS)) {
    assert((isa<VarRef>(this->LHS.get()) ||
            isa<ArrayRefExpr>(this->LHS.get())) &&
           "assignment target must be a scalar or array reference");
  }

  const Expr *getLHS() const { return LHS.get(); }
  const Expr *getRHS() const { return RHS.get(); }

  /// Returns the array reference on the left-hand side, or null if the
  /// target is a scalar.
  const ArrayRefExpr *getArrayTarget() const {
    return dyn_cast<ArrayRefExpr>(LHS.get());
  }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  ExprPtr LHS;
  ExprPtr RHS;
};

/// A structured conditional `if (cond) { then } [else { else }]`.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtList Then, StmtList Else)
      : Stmt(Kind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr *getCond() const { return Cond.get(); }
  const StmtList &getThen() const { return Then; }
  const StmtList &getElse() const { return Else; }
  bool hasElse() const { return !Else.empty(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtList Then;
  StmtList Else;
};

/// A DO loop `do iv = lower, upper { body }` with unit increment.
///
/// Loop normalization (passes/LoopNormalize) rewrites general bounds and
/// steps into this canonical form with Lower == 1 where possible; the
/// analysis itself (Section 1 of the paper) assumes normalized loops.
class DoLoopStmt : public Stmt {
public:
  DoLoopStmt(std::string IndVar, ExprPtr Lower, ExprPtr Upper, StmtList Body,
             int64_t Step = 1)
      : Stmt(Kind::DoLoop), IndVar(std::move(IndVar)),
        Lower(std::move(Lower)), Upper(std::move(Upper)), Step(Step),
        Body(std::move(Body)) {}

  const std::string &getIndVar() const { return IndVar; }
  const Expr *getLower() const { return Lower.get(); }
  const Expr *getUpper() const { return Upper.get(); }
  int64_t getStep() const { return Step; }
  const StmtList &getBody() const { return Body; }
  StmtList &getBody() { return Body; }

  /// Returns the constant trip-count upper bound UB when both bounds are
  /// integer literals (normalized: trip count == Upper when Lower == 1),
  /// or -1 when the bound is symbolic.
  int64_t getConstantTripCount() const;

  /// True when the loop is in normalized form: lower bound 1, step 1.
  bool isNormalized() const;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::DoLoop; }

private:
  std::string IndVar;
  ExprPtr Lower;
  ExprPtr Upper;
  int64_t Step;
  StmtList Body;
};

/// A pre-tested loop `while (cond) { body }`.
///
/// While loops are outside the paper's analyzable form; the loop-nest
/// pass (analysis/LoopNest) recognizes the counted pattern
/// `i = lo; while (i <= hi) { ...; i = i + c }` and reduces it to a
/// DoLoopStmt. Unrecognized whiles are reported as analysis-unsupported.
class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtList Body)
      : Stmt(Kind::While), Cond(std::move(Cond)), Body(std::move(Body)) {}

  const Expr *getCond() const { return Cond.get(); }
  const StmtList &getBody() const { return Body; }
  StmtList &getBody() { return Body; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtList Body;
};

/// A `break` out of the innermost enclosing loop. Early exits void the
/// must-style facts the framework computes, so any loop containing one
/// is rejected by the recognizer (with an explicit diagnostic).
class BreakStmt : public Stmt {
public:
  BreakStmt() : Stmt(Kind::Break) {}

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Break; }
};

/// Calls \p Fn on \p S and every transitively nested statement, pre-order.
void forEachStmt(const Stmt &S, const std::function<void(const Stmt &)> &Fn);

/// Calls \p Fn on every statement in \p Stmts and their nested statements.
void forEachStmt(const StmtList &Stmts,
                 const std::function<void(const Stmt &)> &Fn);

} // namespace ardf

#endif // ARDF_IR_STMT_H
