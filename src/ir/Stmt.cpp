//===- ir/Stmt.cpp - Statement nodes of the loop IR ----------------------===//

#include "ir/Stmt.h"

using namespace ardf;

Stmt::~Stmt() = default;

StmtList ardf::cloneStmts(const StmtList &Stmts) {
  StmtList Result;
  Result.reserve(Stmts.size());
  for (const StmtPtr &S : Stmts)
    Result.push_back(S->clone());
  return Result;
}

StmtPtr Stmt::clone() const {
  StmtPtr Copy;
  switch (TheKind) {
  case Kind::Assign: {
    const auto *AS = cast<AssignStmt>(this);
    Copy = std::make_unique<AssignStmt>(AS->getLHS()->clone(),
                                        AS->getRHS()->clone());
    break;
  }
  case Kind::If: {
    const auto *IS = cast<IfStmt>(this);
    Copy = std::make_unique<IfStmt>(IS->getCond()->clone(),
                                    cloneStmts(IS->getThen()),
                                    cloneStmts(IS->getElse()));
    break;
  }
  case Kind::DoLoop: {
    const auto *DL = cast<DoLoopStmt>(this);
    Copy = std::make_unique<DoLoopStmt>(
        DL->getIndVar(), DL->getLower()->clone(), DL->getUpper()->clone(),
        cloneStmts(DL->getBody()), DL->getStep());
    break;
  }
  case Kind::While: {
    const auto *WS = cast<WhileStmt>(this);
    Copy = std::make_unique<WhileStmt>(WS->getCond()->clone(),
                                       cloneStmts(WS->getBody()));
    break;
  }
  case Kind::Break:
    Copy = std::make_unique<BreakStmt>();
    break;
  }
  if (Copy)
    Copy->setLoc(getLoc());
  return Copy;
}

bool Stmt::equals(const Stmt &RHS) const {
  if (TheKind != RHS.getKind())
    return false;
  switch (TheKind) {
  case Kind::Assign: {
    const auto *A = cast<AssignStmt>(this);
    const auto *B = cast<AssignStmt>(&RHS);
    return A->getLHS()->equals(*B->getLHS()) &&
           A->getRHS()->equals(*B->getRHS());
  }
  case Kind::If: {
    const auto *A = cast<IfStmt>(this);
    const auto *B = cast<IfStmt>(&RHS);
    return A->getCond()->equals(*B->getCond()) &&
           stmtsEqual(A->getThen(), B->getThen()) &&
           stmtsEqual(A->getElse(), B->getElse());
  }
  case Kind::DoLoop: {
    const auto *A = cast<DoLoopStmt>(this);
    const auto *B = cast<DoLoopStmt>(&RHS);
    return A->getIndVar() == B->getIndVar() && A->getStep() == B->getStep() &&
           A->getLower()->equals(*B->getLower()) &&
           A->getUpper()->equals(*B->getUpper()) &&
           stmtsEqual(A->getBody(), B->getBody());
  }
  case Kind::While: {
    const auto *A = cast<WhileStmt>(this);
    const auto *B = cast<WhileStmt>(&RHS);
    return A->getCond()->equals(*B->getCond()) &&
           stmtsEqual(A->getBody(), B->getBody());
  }
  case Kind::Break:
    return true;
  }
  return false;
}

bool ardf::stmtsEqual(const StmtList &A, const StmtList &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (!A[I]->equals(*B[I]))
      return false;
  return true;
}

int64_t DoLoopStmt::getConstantTripCount() const {
  const auto *Lo = dyn_cast<IntLit>(Lower.get());
  const auto *Hi = dyn_cast<IntLit>(Upper.get());
  if (!Lo || !Hi || Step == 0)
    return -1;
  int64_t Count = (Hi->getValue() - Lo->getValue() + Step) / Step;
  return Count < 0 ? 0 : Count;
}

bool DoLoopStmt::isNormalized() const {
  const auto *Lo = dyn_cast<IntLit>(Lower.get());
  return Lo && Lo->getValue() == 1 && Step == 1;
}

void ardf::forEachStmt(const Stmt &S,
                       const std::function<void(const Stmt &)> &Fn) {
  Fn(S);
  switch (S.getKind()) {
  case Stmt::Kind::Assign:
    break;
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(&S);
    forEachStmt(IS->getThen(), Fn);
    forEachStmt(IS->getElse(), Fn);
    break;
  }
  case Stmt::Kind::DoLoop:
    forEachStmt(cast<DoLoopStmt>(&S)->getBody(), Fn);
    break;
  case Stmt::Kind::While:
    forEachStmt(cast<WhileStmt>(&S)->getBody(), Fn);
    break;
  case Stmt::Kind::Break:
    break;
  }
}

void ardf::forEachStmt(const StmtList &Stmts,
                       const std::function<void(const Stmt &)> &Fn) {
  for (const StmtPtr &S : Stmts)
    forEachStmt(*S, Fn);
}
