//===- ir/PrettyPrinter.cpp - Source form printing of the IR -------------===//

#include "ir/PrettyPrinter.h"

#include <ostream>
#include <sstream>

using namespace ardf;

namespace {

/// Binding strength used to parenthesize only where needed.
unsigned precedence(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Or:
    return 1;
  case BinaryOpKind::And:
    return 2;
  case BinaryOpKind::Eq:
  case BinaryOpKind::Ne:
  case BinaryOpKind::Lt:
  case BinaryOpKind::Le:
  case BinaryOpKind::Gt:
  case BinaryOpKind::Ge:
    return 3;
  case BinaryOpKind::Add:
  case BinaryOpKind::Sub:
    return 4;
  case BinaryOpKind::Mul:
  case BinaryOpKind::Div:
    return 5;
  }
  return 0;
}

void printExprPrec(std::ostream &OS, const Expr &E, unsigned ParentPrec) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    OS << cast<IntLit>(&E)->getValue();
    return;
  case Expr::Kind::VarRef:
    OS << cast<VarRef>(&E)->getName();
    return;
  case Expr::Kind::ArrayRef: {
    const auto *AR = cast<ArrayRefExpr>(&E);
    OS << AR->getName() << '[';
    for (unsigned I = 0, N = AR->getNumSubscripts(); I != N; ++I) {
      if (I)
        OS << ", ";
      printExprPrec(OS, *AR->getSubscript(I), 0);
    }
    OS << ']';
    return;
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(&E);
    unsigned Prec = precedence(BE->getOp());
    bool NeedParens = Prec < ParentPrec;
    if (NeedParens)
      OS << '(';
    printExprPrec(OS, *BE->getLHS(), Prec);
    OS << ' ' << spelling(BE->getOp()) << ' ';
    // Right operand binds one tighter so that a - b - c prints with
    // explicit left association preserved.
    printExprPrec(OS, *BE->getRHS(), Prec + 1);
    if (NeedParens)
      OS << ')';
    return;
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(&E);
    OS << spelling(UE->getOp());
    printExprPrec(OS, *UE->getOperand(), 6);
    return;
  }
  }
}

void indentBy(std::ostream &OS, unsigned Indent) {
  for (unsigned I = 0; I != Indent; ++I)
    OS << ' ';
}

} // namespace

void ardf::printExpr(std::ostream &OS, const Expr &E) {
  printExprPrec(OS, E, 0);
}

void ardf::printStmt(std::ostream &OS, const Stmt &S, unsigned Indent) {
  indentBy(OS, Indent);
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    const auto *AS = cast<AssignStmt>(&S);
    printExpr(OS, *AS->getLHS());
    OS << " = ";
    printExpr(OS, *AS->getRHS());
    OS << ";\n";
    return;
  }
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(&S);
    OS << "if (";
    printExpr(OS, *IS->getCond());
    OS << ") {\n";
    printStmts(OS, IS->getThen(), Indent + 2);
    indentBy(OS, Indent);
    OS << '}';
    if (IS->hasElse()) {
      OS << " else {\n";
      printStmts(OS, IS->getElse(), Indent + 2);
      indentBy(OS, Indent);
      OS << '}';
    }
    OS << '\n';
    return;
  }
  case Stmt::Kind::DoLoop: {
    const auto *DL = cast<DoLoopStmt>(&S);
    OS << "do " << DL->getIndVar() << " = ";
    printExpr(OS, *DL->getLower());
    OS << ", ";
    printExpr(OS, *DL->getUpper());
    if (DL->getStep() != 1)
      OS << ", " << DL->getStep();
    OS << " {\n";
    printStmts(OS, DL->getBody(), Indent + 2);
    indentBy(OS, Indent);
    OS << "}\n";
    return;
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(&S);
    OS << "while (";
    printExpr(OS, *WS->getCond());
    OS << ") {\n";
    printStmts(OS, WS->getBody(), Indent + 2);
    indentBy(OS, Indent);
    OS << "}\n";
    return;
  }
  case Stmt::Kind::Break:
    OS << "break;\n";
    return;
  }
}

void ardf::printStmts(std::ostream &OS, const StmtList &Stmts,
                      unsigned Indent) {
  for (const StmtPtr &S : Stmts)
    printStmt(OS, *S, Indent);
}

void ardf::printProgram(std::ostream &OS, const Program &P) {
  for (const ArrayDecl &D : P.arrayDecls()) {
    OS << "array " << D.Name << '[';
    for (unsigned I = 0, N = D.getNumDims(); I != N; ++I) {
      if (I)
        OS << ", ";
      printExpr(OS, *D.DimSizes[I]);
    }
    OS << "];\n";
  }
  printStmts(OS, P.getStmts());
}

std::string ardf::exprToString(const Expr &E) {
  std::ostringstream OS;
  printExpr(OS, E);
  return OS.str();
}

std::string ardf::stmtToString(const Stmt &S) {
  std::ostringstream OS;
  printStmt(OS, S);
  return OS.str();
}

std::string ardf::programToString(const Program &P) {
  std::ostringstream OS;
  printProgram(OS, P);
  return OS.str();
}
