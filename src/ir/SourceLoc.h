//===- ir/SourceLoc.h - Source positions for IR nodes ----------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 1-based (line, column) source position. The parser stamps every
/// Expr and Stmt with the position of its first token; IR built
/// programmatically (IRBuilder, transforms) carries the invalid
/// position (0, 0). Locations survive clone(), so rewritten trees keep
/// pointing at the source construct they came from -- which is what the
/// lint diagnostics and SARIF output report.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_IR_SOURCELOC_H
#define ARDF_IR_SOURCELOC_H

#include <string>

namespace ardf {

/// A source position: 1-based line and column; (0, 0) means unknown.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  SourceLoc() = default;
  SourceLoc(unsigned Line, unsigned Col) : Line(Line), Col(Col) {}

  /// True for positions that came from real source text.
  bool isValid() const { return Line != 0; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
  friend bool operator!=(SourceLoc A, SourceLoc B) { return !(A == B); }

  /// Stable order for sorting diagnostics: by line, then column.
  friend bool operator<(SourceLoc A, SourceLoc B) {
    return A.Line != B.Line ? A.Line < B.Line : A.Col < B.Col;
  }

  /// Renders "line:col", or "?" when unknown.
  std::string toString() const {
    if (!isValid())
      return "?";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace ardf

#endif // ARDF_IR_SOURCELOC_H
