//===- scalardf/ScalarLiveness.h - Classic scalar liveness -----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic bit-vector live-variable analysis for scalars over the loop
/// flow graph — the substrate the paper assumes for scalar live ranges
/// in the integrated register allocation of Section 4.1 ("live ranges of
/// scalar variables are determined using conventional methods [1]").
/// Solved by iterative backward may-analysis over the cyclic graph.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_SCALARDF_SCALARLIVENESS_H
#define ARDF_SCALARDF_SCALARLIVENESS_H

#include "cfg/LoopFlowGraph.h"

#include <string>
#include <vector>

namespace ardf {

/// Result of scalar liveness over one loop flow graph.
class ScalarLiveness {
public:
  explicit ScalarLiveness(const LoopFlowGraph &Graph);

  /// All scalar variables read or written in the loop (including the
  /// induction variable and loop-invariant symbolic inputs), sorted.
  const std::vector<std::string> &variables() const { return Vars; }

  /// Index of \p Name in variables(), or -1.
  int indexOf(const std::string &Name) const;

  bool isLiveIn(unsigned Node, unsigned VarIdx) const {
    return LiveIn[Node * Vars.size() + VarIdx];
  }
  bool isLiveOut(unsigned Node, unsigned VarIdx) const {
    return LiveOut[Node * Vars.size() + VarIdx];
  }

  /// True when the variable is written somewhere in the loop. Variables
  /// never written are symbolic inputs (like the X of Fig. 1): their
  /// live range spans the whole loop and they can be loaded once in the
  /// preheader.
  bool isDefinedInLoop(unsigned VarIdx) const { return Defined[VarIdx]; }

  /// Number of nodes where the variable is live-in (the |l| length
  /// metric for scalar live ranges).
  unsigned liveNodeCount(unsigned VarIdx) const;

  /// Number of def and use sites of the variable.
  unsigned accessCount(unsigned VarIdx) const { return Accesses[VarIdx]; }

private:
  void collect();
  void solve();

  const LoopFlowGraph *Graph;
  std::vector<std::string> Vars;
  std::vector<char> Defined;
  std::vector<unsigned> Accesses;
  // Per-node def/use and solution bit sets, row-major [node][var].
  std::vector<char> Def;
  std::vector<char> Use;
  std::vector<char> LiveIn;
  std::vector<char> LiveOut;
};

} // namespace ardf

#endif // ARDF_SCALARDF_SCALARLIVENESS_H
