//===- scalardf/ScalarLiveness.cpp - Classic scalar liveness -------------===//

#include "scalardf/ScalarLiveness.h"

#include <algorithm>
#include <set>

using namespace ardf;

namespace {

/// Visits every scalar use in an expression.
void forEachScalarUse(const Expr &E,
                      const std::function<void(const std::string &)> &Fn) {
  forEachSubExpr(E, [&](const Expr &Sub) {
    if (const auto *V = dyn_cast<VarRef>(&Sub))
      Fn(V->getName());
  });
}

} // namespace

ScalarLiveness::ScalarLiveness(const LoopFlowGraph &Graph) : Graph(&Graph) {
  collect();
  solve();
}

int ScalarLiveness::indexOf(const std::string &Name) const {
  auto It = std::lower_bound(Vars.begin(), Vars.end(), Name);
  if (It == Vars.end() || *It != Name)
    return -1;
  return It - Vars.begin();
}

void ScalarLiveness::collect() {
  // First pass: the variable set.
  std::set<std::string> Names;
  auto NoteExpr = [&](const Expr &E) {
    forEachScalarUse(E, [&](const std::string &N) { Names.insert(N); });
  };
  for (const FlowNode &Node : Graph->nodes()) {
    switch (Node.Kind) {
    case FlowNodeKind::Statement: {
      const auto *AS = cast<AssignStmt>(Node.S);
      NoteExpr(*AS->getRHS());
      if (const auto *V = dyn_cast<VarRef>(AS->getLHS()))
        Names.insert(V->getName());
      else
        for (const ExprPtr &Sub : cast<ArrayRefExpr>(AS->getLHS())->subscripts())
          NoteExpr(*Sub);
      break;
    }
    case FlowNodeKind::Guard:
      NoteExpr(*cast<IfStmt>(Node.S)->getCond());
      break;
    case FlowNodeKind::Summary:
      forEachStmt(cast<DoLoopStmt>(Node.S)->getBody(), [&](const Stmt &S) {
        if (const auto *AS = dyn_cast<AssignStmt>(&S)) {
          NoteExpr(*AS->getRHS());
          NoteExpr(*AS->getLHS());
          if (const auto *V = dyn_cast<VarRef>(AS->getLHS()))
            Names.insert(V->getName());
        } else if (const auto *IS = dyn_cast<IfStmt>(&S)) {
          NoteExpr(*IS->getCond());
        }
      });
      break;
    case FlowNodeKind::Exit:
      Names.insert(Graph->getIndVar());
      break;
    }
  }
  Vars.assign(Names.begin(), Names.end());

  unsigned N = Graph->getNumNodes();
  unsigned V = Vars.size();
  Def.assign(N * V, 0);
  Use.assign(N * V, 0);
  Defined.assign(V, 0);
  Accesses.assign(V, 0);

  auto MarkUse = [&](unsigned Node, const Expr &E) {
    forEachScalarUse(E, [&](const std::string &Name) {
      int Idx = indexOf(Name);
      Use[Node * V + Idx] = 1;
      ++Accesses[Idx];
    });
  };
  auto MarkDef = [&](unsigned Node, const std::string &Name) {
    int Idx = indexOf(Name);
    Def[Node * V + Idx] = 1;
    Defined[Idx] = 1;
    ++Accesses[Idx];
  };

  for (unsigned Id = 0; Id != N; ++Id) {
    const FlowNode &Node = Graph->getNode(Id);
    switch (Node.Kind) {
    case FlowNodeKind::Statement: {
      const auto *AS = cast<AssignStmt>(Node.S);
      MarkUse(Id, *AS->getRHS());
      if (const auto *Var = dyn_cast<VarRef>(AS->getLHS()))
        MarkDef(Id, Var->getName());
      else
        for (const ExprPtr &Sub :
             cast<ArrayRefExpr>(AS->getLHS())->subscripts())
          MarkUse(Id, *Sub);
      break;
    }
    case FlowNodeKind::Guard:
      MarkUse(Id, *cast<IfStmt>(Node.S)->getCond());
      break;
    case FlowNodeKind::Summary:
      // Conservative summary: everything read inside is used, everything
      // written inside is both used and defined (partial kill).
      forEachStmt(cast<DoLoopStmt>(Node.S)->getBody(), [&](const Stmt &S) {
        if (const auto *AS = dyn_cast<AssignStmt>(&S)) {
          MarkUse(Id, *AS->getRHS());
          if (const auto *Var = dyn_cast<VarRef>(AS->getLHS()))
            MarkDef(Id, Var->getName());
          else
            for (const ExprPtr &Sub :
                 cast<ArrayRefExpr>(AS->getLHS())->subscripts())
              MarkUse(Id, *Sub);
        } else if (const auto *IS = dyn_cast<IfStmt>(&S)) {
          MarkUse(Id, *IS->getCond());
        }
      });
      break;
    case FlowNodeKind::Exit:
      // i := i + 1 both uses and defines the induction variable.
      MarkUse(Id, *std::make_unique<VarRef>(Graph->getIndVar()));
      MarkDef(Id, Graph->getIndVar());
      break;
    }
  }
}

void ScalarLiveness::solve() {
  unsigned N = Graph->getNumNodes();
  unsigned V = Vars.size();
  LiveIn.assign(N * V, 0);
  LiveOut.assign(N * V, 0);
  // Iterative backward may-analysis; the graph is one cycle, so a few
  // reverse passes converge.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = Graph->reversePostorder().rbegin(),
              End = Graph->reversePostorder().rend();
         It != End; ++It) {
      unsigned Id = *It;
      for (unsigned VI = 0; VI != V; ++VI) {
        char Out = 0;
        for (unsigned Succ : Graph->getNode(Id).Succs)
          Out |= LiveIn[Succ * V + VI];
        char In = Use[Id * V + VI] | (Out & !Def[Id * V + VI]);
        if (Out != LiveOut[Id * V + VI] || In != LiveIn[Id * V + VI]) {
          LiveOut[Id * V + VI] = Out;
          LiveIn[Id * V + VI] = In;
          Changed = true;
        }
      }
    }
  }
}

unsigned ScalarLiveness::liveNodeCount(unsigned VarIdx) const {
  unsigned Count = 0;
  unsigned V = Vars.size();
  for (unsigned Id = 0; Id != Graph->getNumNodes(); ++Id)
    Count += LiveIn[Id * V + VarIdx];
  return Count;
}
