//===- liverange/LiveRanges.cpp - Live ranges for regalloc ---------------===//

#include "liverange/LiveRanges.h"

#include "ir/PrettyPrinter.h"
#include "scalardf/ScalarLiveness.h"

#include <algorithm>
#include <map>

using namespace ardf;

std::vector<LiveRange> ardf::buildLiveRanges(LoopAnalysisSession &Session,
                                             const LiveRangeOptions &Opts) {
  return buildLiveRanges(
      LoopDataFlow(Session, ProblemSpec::availableValues()), Opts);
}

std::vector<LiveRange> ardf::buildLiveRanges(const LoopDataFlow &Avail,
                                             const LiveRangeOptions &Opts) {
  std::vector<LiveRange> Ranges;
  const LoopFlowGraph &Graph = Avail.graph();
  const FrameworkInstance &FW = Avail.framework();
  const ReferenceUniverse &U = Avail.universe();
  unsigned NumNodes = Graph.getNumNodes();

  // --- Subscripted ranges: group the reuse pairs by tracked source. ---
  std::map<int, std::vector<ReusePair>> BySource;
  for (const ReusePair &Pair : Avail.reusePairs(RefSelector::Uses)) {
    int Idx = FW.trackedIndexOf(Pair.SourceId);
    if (Idx < 0 || Pair.Distance > Opts.MaxDepth - 1)
      continue;
    if (U.occurrence(Pair.SinkId).InSummary ||
        U.occurrence(Pair.SourceId).InSummary)
      continue;
    BySource[Idx].push_back(Pair);
  }

  for (auto &[Idx, Pairs] : BySource) {
    const RefOccurrence &Rep = FW.getTracked(Idx);
    LiveRange L;
    L.TheKind = LiveRange::Kind::Subscripted;
    L.Name = exprToString(*Rep.Ref);
    L.TrackedIdx = Idx;
    L.Reuses = Pairs;
    int64_t Delta0 = 0;
    for (const ReusePair &Pair : Pairs)
      Delta0 = std::max(Delta0, Pair.Distance);
    L.Depth = Delta0 + 1;
    L.AccessCount = FW.trackedMembers(Idx).size() + Pairs.size();
    L.GeneratorIsDef = Rep.IsDef;
    // Cross-iteration values live across the whole body; same-iteration
    // reuse spans generation to last reuse (statement numbering
    // approximates position).
    if (Delta0 >= 1) {
      L.Length = NumNodes;
    } else {
      unsigned First = Graph.getNode(Rep.Node).StmtNumber;
      unsigned Last = First;
      for (const ReusePair &Pair : Pairs) {
        unsigned Num =
            Graph.getNode(U.occurrence(Pair.SinkId).Node).StmtNumber;
        Last = std::max(Last, Num ? Num : First);
      }
      L.Length = Last - First + 1;
    }
    Ranges.push_back(std::move(L));
  }

  // --- Scalar ranges from conventional liveness. ---
  ScalarLiveness Liveness(Graph);
  for (unsigned VI = 0; VI != Liveness.variables().size(); ++VI) {
    const std::string &Name = Liveness.variables()[VI];
    if (Name == Graph.getIndVar())
      continue; // the induction variable has a dedicated register
    if (Name.rfind("_t", 0) == 0)
      continue; // compiler temporaries are already registers
    bool DefinedInLoop = Liveness.isDefinedInLoop(VI);
    if (!DefinedInLoop && !Opts.IncludeSymbolicInputs)
      continue;
    LiveRange L;
    L.TheKind = LiveRange::Kind::Scalar;
    L.Name = Name;
    L.Depth = 1;
    L.AccessCount = Liveness.accessCount(VI);
    unsigned LiveNodes = Liveness.liveNodeCount(VI);
    // Symbolic inputs are live everywhere even if liveness says a use
    // appears late.
    L.Length = DefinedInLoop ? std::max(LiveNodes, 1u) : NumNodes;
    Ranges.push_back(std::move(L));
  }

  // --- Priorities (Section 4.1.2). ---
  for (LiveRange &L : Ranges) {
    L.Priority = (static_cast<double>(L.AccessCount) - 1.0) *
                 Opts.MemoryCost /
                 (static_cast<double>(L.Length) *
                  static_cast<double>(L.Depth));
  }
  return Ranges;
}
