//===- liverange/LiveRanges.h - Live ranges for regalloc -------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live range construction for the integrated register allocation of
/// Section 4.1: scalar live ranges come from conventional liveness
/// (scalardf), subscripted live ranges from the delta-available-values
/// framework instance — a range starts at a generation site and extends
/// through its reuse points, requiring a register pipeline of
/// depth(l) = delta0(l) + 1 stages, where delta0 is the largest reuse
/// distance (Section 4.1.1/4.1.2).
///
/// The priority function is the paper's savings/cost ratio:
///   P(l) = (access(l) - 1) * Cm / (|l| * depth(l)).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_LIVERANGE_LIVERANGES_H
#define ARDF_LIVERANGE_LIVERANGES_H

#include "analysis/LoopDataFlow.h"

#include <string>
#include <vector>

namespace ardf {

/// One live range: a scalar variable or a pipelined array value stream.
struct LiveRange {
  enum class Kind { Scalar, Subscripted };
  Kind TheKind;

  /// Scalar name, or the representative reference text for subscripted
  /// ranges ("A[i + 2]").
  std::string Name;

  /// For subscripted ranges: tuple index in the grouped
  /// available-values instance and the reuse pairs folded in.
  int TrackedIdx = -1;
  std::vector<ReusePair> Reuses;

  /// Register pipeline depth: 1 for scalars, delta0 + 1 otherwise.
  int64_t Depth = 1;

  /// Number of access sites (generation + reuses for subscripted;
  /// defs + uses for scalars).
  unsigned AccessCount = 1;

  /// Length |l| in flow graph nodes.
  unsigned Length = 1;

  /// The paper's priority P(l).
  double Priority = 0.0;

  /// True when every in-loop memory access to this value disappears if
  /// the range is register-allocated (subscripted ranges whose
  /// generator is a definition).
  bool GeneratorIsDef = false;

  bool isScalar() const { return TheKind == Kind::Scalar; }
};

/// Options for live range construction.
struct LiveRangeOptions {
  /// Average cost Cm of a memory load (the priority scale factor).
  double MemoryCost = 4.0;

  /// Pipeline depth cap; deeper reuse stays in memory.
  int64_t MaxDepth = 8;

  /// Include loop-invariant scalar inputs (never defined in the loop)
  /// as live ranges (they occupy a register for the whole loop).
  bool IncludeSymbolicInputs = true;
};

/// Builds the combined scalar + subscripted live range set for \p Loop.
/// \p Avail must be a solved grouped available-values instance for the
/// same loop (ProblemSpec::availableValues()).
std::vector<LiveRange> buildLiveRanges(const LoopDataFlow &Avail,
                                       const LiveRangeOptions &Opts = {});

/// Session form: solves (or reuses) the grouped available-values
/// instance memoized in \p Session.
std::vector<LiveRange> buildLiveRanges(LoopAnalysisSession &Session,
                                       const LiveRangeOptions &Opts = {});

} // namespace ardf

#endif // ARDF_LIVERANGE_LIVERANGES_H
