//===- regalloc/IRIG.cpp - Integrated register interference graph --------===//

#include "regalloc/IRIG.h"

#include <algorithm>
#include <numeric>

using namespace ardf;

bool IRIG::interfere(unsigned A, unsigned B) const {
  return std::find(Adj[A].begin(), Adj[A].end(), B) != Adj[A].end();
}

bool IRIG::isUnconstrained(unsigned Node, unsigned K) const {
  uint64_t Need = Ranges[Node].Depth;
  for (unsigned M : Adj[Node])
    Need += Ranges[M].Depth;
  return Need <= K;
}

IRIG ardf::buildIRIG(std::vector<LiveRange> Ranges, unsigned NumNodes) {
  IRIG G;
  G.Ranges = std::move(Ranges);
  G.Adj.resize(G.Ranges.size());
  auto WholeLoop = [&](const LiveRange &L) {
    return L.Depth >= 2 || L.Length >= NumNodes;
  };
  for (unsigned A = 0; A != G.Ranges.size(); ++A) {
    for (unsigned B = A + 1; B != G.Ranges.size(); ++B) {
      // Whole-loop ranges overlap everything; short intra-iteration
      // ranges interfere only with whole-loop ranges (a finer positional
      // test would need per-range start/end nodes, which Length alone
      // does not carry for scalars; erring toward interference is safe).
      bool Overlap = WholeLoop(G.Ranges[A]) || WholeLoop(G.Ranges[B]) ||
                     true; // conservative within one loop body
      if (Overlap) {
        G.Adj[A].push_back(B);
        G.Adj[B].push_back(A);
      }
    }
  }
  return G;
}

ColoringResult ardf::multiColor(const IRIG &G, unsigned K) {
  ColoringResult Result;
  Result.Regs.assign(G.size(), {});

  // Order: constrained nodes by descending priority, then the
  // unconstrained ones (always colorable by construction).
  std::vector<unsigned> Order(G.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    bool UA = G.isUnconstrained(A, K);
    bool UB = G.isUnconstrained(B, K);
    if (UA != UB)
      return !UA; // constrained first
    return G.Ranges[A].Priority > G.Ranges[B].Priority;
  });

  for (unsigned Node : Order) {
    int64_t Depth = G.Ranges[Node].Depth;
    // Registers already taken by colored neighbors.
    std::vector<char> Taken(K, 0);
    for (unsigned M : G.Adj[Node])
      for (int R : Result.Regs[M])
        if (R >= 0 && static_cast<unsigned>(R) < K)
          Taken[R] = 1;
    // First fit of a consecutive block of Depth registers (consecutive
    // blocks enable the rotating-register progression of Section 4.1.4).
    int Start = -1;
    for (unsigned R = 0; R + Depth <= K; ++R) {
      bool Free = true;
      for (int64_t D = 0; D != Depth; ++D)
        Free &= !Taken[R + D];
      if (Free) {
        Start = R;
        break;
      }
    }
    if (Start < 0) {
      Result.Spilled.push_back(Node);
      continue;
    }
    for (int64_t D = 0; D != Depth; ++D)
      Result.Regs[Node].push_back(Start + D);
    Result.RegistersUsed =
        std::max<unsigned>(Result.RegistersUsed, Start + Depth);
  }
  return Result;
}
