//===- regalloc/IRIG.h - Integrated register interference graph -*- C++ -*-==//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The integrated register interference graph (IRIG) of Section 4.1.2
/// and its multi-coloring (Section 4.1.3): scalar and subscripted live
/// ranges compete uniformly for k registers; a subscripted range needs
/// depth(l) colors (one per pipeline stage). A node n is unconstrained
/// when depth(n) + sum over neighbors m of depth(m) <= k; unconstrained
/// nodes are deferred (they can always be colored), constrained nodes
/// are colored greedily in priority order. The paper splits constrained
/// nodes it cannot color; this implementation leaves them uncolored
/// ("spilled" — the values stay in memory), a documented simplification
/// with the same external behavior for whole-loop ranges.
///
/// Interference is approximated structurally: two ranges interfere when
/// their node extents overlap; any cross-iteration range (depth >= 2 or
/// whole-loop scalars) spans the entire body and interferes with
/// everything. This matches the paper's loop-scoped allocation where
/// pipelines occupy their registers for the whole loop.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_REGALLOC_IRIG_H
#define ARDF_REGALLOC_IRIG_H

#include "liverange/LiveRanges.h"

#include <vector>

namespace ardf {

/// The interference graph over live ranges.
struct IRIG {
  std::vector<LiveRange> Ranges;
  /// Adjacency lists, symmetric.
  std::vector<std::vector<unsigned>> Adj;

  unsigned size() const { return Ranges.size(); }

  bool interfere(unsigned A, unsigned B) const;

  /// The paper's unconstrained test: depth(n) + sum of neighbor depths
  /// <= k.
  bool isUnconstrained(unsigned Node, unsigned K) const;
};

/// Builds the IRIG from live ranges (see the interference approximation
/// in the file comment). \p NumNodes is the loop flow graph size used
/// to detect whole-loop extents.
IRIG buildIRIG(std::vector<LiveRange> Ranges, unsigned NumNodes);

/// Register assignment produced by multi-coloring.
struct ColoringResult {
  /// Per live range: the assigned register numbers (depth(l) many,
  /// consecutive — pipeline stage s uses Regs[s]); empty when the range
  /// was not allocated (stays in memory).
  std::vector<std::vector<int>> Regs;

  /// Ranges that did not receive registers.
  std::vector<unsigned> Spilled;

  /// Highest register number used + 1.
  unsigned RegistersUsed = 0;

  bool isAllocated(unsigned Range) const { return !Regs[Range].empty(); }
};

/// Multi-colors the IRIG with \p K available registers using
/// priority-based coloring generalized to register pipelines.
ColoringResult multiColor(const IRIG &G, unsigned K);

} // namespace ardf

#endif // ARDF_REGALLOC_IRIG_H
