//===- cfg/LoopFlowGraph.cpp - Flow graph of one loop body ---------------===//

#include "cfg/LoopFlowGraph.h"

#include "ir/PrettyPrinter.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>
#include <stdexcept>

using namespace ardf;

LoopFlowGraph::LoopFlowGraph(const DoLoopStmt &Loop) : Loop(&Loop) {
  assert(!Loop.getBody().empty() && "loop with empty body");

  std::vector<unsigned> Dangling;
  buildStmts(Loop.getBody(), Dangling);
  Entry = 0;

  Exit = addNode(FlowNodeKind::Exit, nullptr);
  for (unsigned N : Dangling)
    addEdge(N, Exit);
  // The single back edge: transfer to the next iteration.
  addEdge(Exit, Entry);

  computeRPO();
  computeReachability();
  numberStatements();
}

unsigned LoopFlowGraph::addNode(FlowNodeKind Kind, const Stmt *S) {
  FlowNode N;
  N.Kind = Kind;
  N.S = S;
  Nodes.push_back(std::move(N));
  return Nodes.size() - 1;
}

void LoopFlowGraph::addEdge(unsigned From, unsigned To) {
  Nodes[From].Succs.push_back(To);
  Nodes[To].Preds.push_back(From);
}

void LoopFlowGraph::buildStmts(const StmtList &Stmts,
                               std::vector<unsigned> &Dangling) {
  for (const StmtPtr &SP : Stmts) {
    const Stmt &S = *SP;
    switch (S.getKind()) {
    case Stmt::Kind::Assign: {
      unsigned N = addNode(FlowNodeKind::Statement, &S);
      for (unsigned D : Dangling)
        addEdge(D, N);
      Dangling.assign(1, N);
      break;
    }
    case Stmt::Kind::DoLoop: {
      unsigned N = addNode(FlowNodeKind::Summary, &S);
      for (unsigned D : Dangling)
        addEdge(D, N);
      Dangling.assign(1, N);
      break;
    }
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(&S);
      unsigned Guard = addNode(FlowNodeKind::Guard, &S);
      for (unsigned D : Dangling)
        addEdge(D, Guard);

      std::vector<unsigned> ThenDangling{Guard};
      buildStmts(IS->getThen(), ThenDangling);

      std::vector<unsigned> ElseDangling{Guard};
      if (IS->hasElse())
        buildStmts(IS->getElse(), ElseDangling);

      Dangling = std::move(ThenDangling);
      // With no else branch, the guard itself falls through; with an
      // else branch, its dangling ends join the then-side ends.
      Dangling.insert(Dangling.end(), ElseDangling.begin(),
                      ElseDangling.end());
      // Both branches may be empty, leaving the guard twice.
      std::sort(Dangling.begin(), Dangling.end());
      Dangling.erase(std::unique(Dangling.begin(), Dangling.end()),
                     Dangling.end());
      break;
    }
    case Stmt::Kind::While:
    case Stmt::Kind::Break:
      // The flow graph models the paper's acyclic single-back-edge body.
      // The loop-nest reducer (analysis/LoopNest) rewrites recognized
      // whiles into DO form and rejects loops with early exits before a
      // graph is ever built; reaching here is a caller bug.
      throw std::logic_error(
          "loop flow graph over unreduced while/break statement");
    }
  }
}

void LoopFlowGraph::computeRPO() {
  std::vector<bool> Visited(Nodes.size(), false);
  std::vector<unsigned> Postorder;
  Postorder.reserve(Nodes.size());

  // Iterative DFS from the entry, ignoring the back edge exit -> entry.
  std::vector<std::pair<unsigned, unsigned>> Stack;
  Stack.emplace_back(Entry, 0);
  Visited[Entry] = true;
  while (!Stack.empty()) {
    auto &[Node, NextSucc] = Stack.back();
    if (NextSucc < Nodes[Node].Succs.size()) {
      unsigned Succ = Nodes[Node].Succs[NextSucc++];
      if (Node == Exit)
        continue; // the back edge
      if (!Visited[Succ]) {
        Visited[Succ] = true;
        Stack.emplace_back(Succ, 0);
      }
      continue;
    }
    Postorder.push_back(Node);
    Stack.pop_back();
  }

  RPO.assign(Postorder.rbegin(), Postorder.rend());
  assert(RPO.size() == Nodes.size() && "unreachable nodes in loop body");
  assert(RPO.front() == Entry && RPO.back() == Exit &&
         "RPO must start at entry and end at exit");
}

void LoopFlowGraph::computeReachability() {
  unsigned N = Nodes.size();
  Reach.assign(N * N, false);
  // Process in reverse RPO so successors' reach sets are complete:
  // reach(n) = union over intra-iteration successors s of {s} + reach(s).
  for (auto It = RPO.rbegin(); It != RPO.rend(); ++It) {
    unsigned Node = *It;
    if (Node == Exit)
      continue; // only the back edge leaves exit
    for (unsigned Succ : Nodes[Node].Succs) {
      Reach[Node * N + Succ] = true;
      for (unsigned K = 0; K != N; ++K)
        if (Reach[Succ * N + K])
          Reach[Node * N + K] = true;
    }
  }
}

void LoopFlowGraph::numberStatements() {
  unsigned Number = 1;
  for (unsigned Id : RPO) {
    FlowNode &Node = Nodes[Id];
    if (Node.Kind == FlowNodeKind::Guard)
      continue;
    Node.StmtNumber = Number++;
  }
}

unsigned LoopFlowGraph::findNode(const Stmt &S) const {
  for (unsigned I = 0, E = Nodes.size(); I != E; ++I)
    if (Nodes[I].S == &S)
      return I;
  return Nodes.size();
}

int64_t LoopFlowGraph::getTripCount() const {
  return Loop->getConstantTripCount();
}

std::string LoopFlowGraph::nodeLabel(unsigned Id) const {
  const FlowNode &Node = Nodes[Id];
  std::ostringstream OS;
  if (Node.StmtNumber)
    OS << Node.StmtNumber << ": ";
  switch (Node.Kind) {
  case FlowNodeKind::Statement: {
    const auto *AS = cast<AssignStmt>(Node.S);
    OS << exprToString(*AS->getLHS()) << " = " << exprToString(*AS->getRHS());
    break;
  }
  case FlowNodeKind::Guard:
    OS << "if " << exprToString(*cast<IfStmt>(Node.S)->getCond());
    break;
  case FlowNodeKind::Summary:
    OS << "do " << cast<DoLoopStmt>(Node.S)->getIndVar() << " (summary)";
    break;
  case FlowNodeKind::Exit:
    OS << getIndVar() << " = " << getIndVar() << " + 1";
    break;
  }
  return OS.str();
}

void LoopFlowGraph::printDot(std::ostream &OS) const {
  OS << "digraph loop {\n  node [shape=box];\n";
  for (unsigned I = 0, E = Nodes.size(); I != E; ++I) {
    OS << "  n" << I << " [label=\"" << nodeLabel(I) << "\"];\n";
    for (unsigned S : Nodes[I].Succs)
      OS << "  n" << I << " -> n" << S << (I == Exit ? " [style=dashed]" : "")
         << ";\n";
  }
  OS << "}\n";
}
