//===- cfg/Cfg.h - Basic-block CFG over the loop IR ------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A whole-program basic-block control flow graph over the structured IR,
/// plus the classic loop machinery on top of it: a Cooper-Harvey-Kennedy
/// dominator tree, back-edge detection, and natural-loop construction.
///
/// The builder lowers every statement form to plain blocks:
///
///   - `if (c)`            block terminated by c; successor 0 is the then
///                         branch, successor 1 the else/join branch
///   - `while (c) { B }`   a header block testing c (succ 0 enters the
///                         body, succ 1 leaves the loop) with a latch
///                         edge from the body's end back to the header
///   - `do i = lo, hi, s`  lowered like a while: a synthetic `i = lo`
///                         in the preheader, a synthetic guard
///                         `i <= hi` (or `>=` for negative steps) in the
///                         header, and a synthetic `i = i + s` in the
///                         latch — the CFG executes exactly like the
///                         source interpreter
///   - `break`             an unconditional edge to the innermost
///                         enclosing loop's after-block (statements
///                         following it start an unreachable block)
///
/// Loop headers remember the source While/DoLoop statement they were
/// lowered from, so natural loops discovered structurally (back edges
/// through the dominator tree) can be checked against — and mapped back
/// to — the syntactic loops, which is what analysis/LoopNest does.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_CFG_CFG_H
#define ARDF_CFG_CFG_H

#include "ir/Program.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace ardf {

/// One basic block: straight-line statements plus an optional branch
/// condition. With Cond set, Succs[0] is taken when Cond evaluates
/// non-zero and Succs[1] otherwise; without it the block has at most one
/// successor (the exit block has none).
struct CfgBlock {
  /// Executable statements, in order. Only scalar/array assignments
  /// appear here; control flow lives in Cond/Succs. Synthetic
  /// statements (DO-loop init and increment) are owned by the Cfg.
  std::vector<const Stmt *> Stmts;

  /// Branch condition terminating the block, or null.
  const Expr *Cond = nullptr;

  /// Source statement the condition came from (If/While/DoLoop), for
  /// diagnostics and tracing. Null when Cond is null.
  const Stmt *CondOwner = nullptr;

  /// When this block is the header a While/DoLoop statement was lowered
  /// to, the source statement; null otherwise.
  const Stmt *LoopHeaderOf = nullptr;

  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
};

/// A natural loop discovered from a back edge (or several sharing a
/// header).
struct NaturalLoop {
  /// Header block: the unique entry through which every iteration
  /// passes (the target of the back edge(s)).
  unsigned Header = 0;

  /// Latch blocks: sources of the back edges into Header.
  std::vector<unsigned> Latches;

  /// All member blocks, header included, in ascending block id order.
  std::vector<unsigned> Blocks;

  /// Edges leaving the loop (From inside, To outside). A loop whose
  /// only exit is the header test is a single-exit counted-loop
  /// candidate; extra exit edges mean a break.
  std::vector<std::pair<unsigned, unsigned>> ExitEdges;

  /// The source While/DoLoop the header was lowered from. The builder
  /// only introduces cycles when lowering loops, so this is always set
  /// for graphs built from the structured IR.
  const Stmt *Source = nullptr;

  bool contains(unsigned Block) const;
};

/// Whole-program CFG with dominators and natural loops.
class Cfg {
public:
  /// Builds the graph, dominator tree, and natural loops for \p P.
  explicit Cfg(const Program &P);

  Cfg(const Cfg &) = delete;
  Cfg &operator=(const Cfg &) = delete;

  unsigned getNumBlocks() const { return Blocks.size(); }
  const CfgBlock &getBlock(unsigned Id) const { return Blocks[Id]; }
  unsigned getEntry() const { return Entry; }
  unsigned getExit() const { return Exit; }

  /// Reverse postorder over blocks reachable from the entry.
  const std::vector<unsigned> &rpo() const { return RPO; }

  /// True when \p Block is reachable from the entry (code after an
  /// unconditional break is not).
  bool isReachable(unsigned Block) const { return Reachable[Block]; }

  /// Immediate dominator of \p Block; the entry (and any unreachable
  /// block) returns InvalidBlock.
  unsigned immediateDominator(unsigned Block) const { return IDom[Block]; }

  /// True when \p A dominates \p B (reflexive). False when either block
  /// is unreachable, except A == B.
  bool dominates(unsigned A, unsigned B) const;

  /// Back edges (From, To) where To dominates From, in discovery order.
  const std::vector<std::pair<unsigned, unsigned>> &backEdges() const {
    return BackEdges;
  }

  /// Natural loops, outermost-first (headers in reverse postorder).
  /// Back edges sharing a header are merged into one loop.
  const std::vector<NaturalLoop> &loops() const { return Loops; }

  /// Index into loops() of the innermost loop containing \p Block, or
  /// -1 when the block is in no loop.
  int loopOf(unsigned Block) const { return LoopOf[Block]; }

  /// Index into loops() of the loop immediately enclosing loop \p
  /// LoopIdx, or -1 for a top-level loop. This containment relation is
  /// the loop-nesting forest.
  int parentLoopOf(unsigned LoopIdx) const { return ParentLoop[LoopIdx]; }

  /// Graphviz rendering, for debugging.
  void dump(std::ostream &OS) const;
  std::string toDot() const;

  static constexpr unsigned InvalidBlock = ~0u;

private:
  friend class CfgBuilder;

  unsigned addBlock();
  void computeRPO();
  void computeDominators();
  void findLoops();

  std::vector<CfgBlock> Blocks;
  unsigned Entry = 0;
  unsigned Exit = 0;

  /// Owned synthetic IR introduced by DO-loop lowering.
  std::vector<StmtPtr> SynthStmts;
  std::vector<ExprPtr> SynthExprs;

  std::vector<unsigned> RPO;
  std::vector<bool> Reachable;
  std::vector<unsigned> IDom;
  /// Position of each block in RPO (for the CHK intersect walk);
  /// InvalidBlock for unreachable blocks.
  std::vector<unsigned> RPOIndex;
  std::vector<std::pair<unsigned, unsigned>> BackEdges;
  std::vector<NaturalLoop> Loops;
  std::vector<int> LoopOf;
  std::vector<int> ParentLoop;
};

} // namespace ardf

#endif // ARDF_CFG_CFG_H
