//===- cfg/LoopFlowGraph.h - Flow graph of one loop body -------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop flow graph FG = (N, E) of Section 3: one node per statement
/// of the loop body plus
///   * guard nodes for if-conditions (uses only, transparent to the
///     equation system — the paper folds these into edges),
///   * summary nodes replacing nested loops (hierarchical analysis), and
///   * the distinguished exit node representing i := i + 1.
/// The only cycle is the back edge exit -> entry, so the body subgraph is
/// acyclic and a reverse postorder traversal visits every node after all
/// of its intra-iteration predecessors.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_CFG_LOOPFLOWGRAPH_H
#define ARDF_CFG_LOOPFLOWGRAPH_H

#include "ir/Program.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace ardf {

/// Kinds of loop flow graph nodes.
enum class FlowNodeKind {
  Statement, ///< An assignment statement.
  Guard,     ///< The condition of an if statement (uses only).
  Summary,   ///< A nested loop, summarized (Section 3.2).
  Exit       ///< The unique i := i + 1 node.
};

/// One node of the loop flow graph.
struct FlowNode {
  FlowNodeKind Kind;
  /// The statement this node was made from: AssignStmt for Statement,
  /// IfStmt for Guard, DoLoopStmt for Summary, null for Exit.
  const Stmt *S = nullptr;
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
  /// 1-based number assigned to Statement/Summary/Exit nodes in program
  /// order (the paper's numbering in Fig. 3 / Table 1); 0 for guards.
  unsigned StmtNumber = 0;
};

/// The flow graph of one loop body.
class LoopFlowGraph {
public:
  /// Builds the flow graph for \p Loop. Nested loops become summary
  /// nodes. The body must be non-empty.
  explicit LoopFlowGraph(const DoLoopStmt &Loop);

  const DoLoopStmt &getLoop() const { return *Loop; }
  const std::string &getIndVar() const { return Loop->getIndVar(); }

  unsigned getNumNodes() const { return Nodes.size(); }
  const FlowNode &getNode(unsigned Id) const { return Nodes[Id]; }
  const std::vector<FlowNode> &nodes() const { return Nodes; }

  /// The entry node: the first node of the loop body.
  unsigned getEntry() const { return Entry; }

  /// The exit node (i := i + 1).
  unsigned getExit() const { return Exit; }

  /// Reverse postorder over the acyclic body subgraph (the back edge
  /// exit -> entry is ignored). Entry is first, exit is last.
  const std::vector<unsigned> &reversePostorder() const { return RPO; }

  /// True if node \p From reaches node \p To along intra-iteration edges
  /// (excluding the back edge). Irreflexive: reaches(n, n) is false.
  /// This implements the paper's pr predicate support: pr(d, n) == 0 iff
  /// the node of d reaches n within the same iteration.
  bool reachesIntraIteration(unsigned From, unsigned To) const {
    return Reach[From * Nodes.size() + To];
  }

  /// Finds the node id for statement \p S (Statement/Guard/Summary), or
  /// getNumNodes() if \p S is not a direct node of this graph.
  unsigned findNode(const Stmt &S) const;

  /// The trip count UB when constant, or UnknownTripCount (-1).
  int64_t getTripCount() const;

  /// Emits GraphViz DOT form for debugging and documentation.
  void printDot(std::ostream &OS) const;

  /// Returns a one-line description of node \p Id ("3: C[i] = B[i-1]").
  std::string nodeLabel(unsigned Id) const;

private:
  unsigned addNode(FlowNodeKind Kind, const Stmt *S);
  void addEdge(unsigned From, unsigned To);

  /// Builds the subgraph for \p Stmts; every node in \p Dangling is given
  /// an edge to the first node created. On return, Dangling holds the
  /// nodes whose successor is the code following \p Stmts.
  void buildStmts(const StmtList &Stmts, std::vector<unsigned> &Dangling);

  void computeRPO();
  void computeReachability();
  void numberStatements();

  const DoLoopStmt *Loop;
  std::vector<FlowNode> Nodes;
  unsigned Entry = 0;
  unsigned Exit = 0;
  std::vector<unsigned> RPO;
  std::vector<bool> Reach;
};

} // namespace ardf

#endif // ARDF_CFG_LOOPFLOWGRAPH_H
