//===- cfg/Cfg.cpp - Basic-block CFG over the loop IR --------------------===//

#include "cfg/Cfg.h"

#include "ir/PrettyPrinter.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

using namespace ardf;

bool NaturalLoop::contains(unsigned Block) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), Block);
}

namespace ardf {

/// Lowers the structured statement lists into blocks and edges.
class CfgBuilder {
public:
  explicit CfgBuilder(Cfg &G) : G(G) {}

  void build(const Program &P) {
    G.Entry = G.addBlock();
    G.Exit = G.addBlock();
    Cur = G.Entry;
    buildList(P.getStmts());
    addEdge(Cur, G.Exit);
  }

private:
  void addEdge(unsigned From, unsigned To) {
    G.Blocks[From].Succs.push_back(To);
    G.Blocks[To].Preds.push_back(From);
  }

  /// Records \p E as owned synthetic IR and returns a raw view of it.
  const Expr *ownExpr(ExprPtr E) {
    G.SynthExprs.push_back(std::move(E));
    return G.SynthExprs.back().get();
  }

  const Stmt *ownStmt(StmtPtr S) {
    G.SynthStmts.push_back(std::move(S));
    return G.SynthStmts.back().get();
  }

  void buildList(const StmtList &Stmts) {
    for (const StmtPtr &SP : Stmts)
      buildStmt(*SP);
  }

  void buildStmt(const Stmt &S) {
    switch (S.getKind()) {
    case Stmt::Kind::Assign:
      G.Blocks[Cur].Stmts.push_back(&S);
      return;

    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(&S);
      G.Blocks[Cur].Cond = IS->getCond();
      G.Blocks[Cur].CondOwner = &S;
      unsigned Head = Cur;
      unsigned Join = G.addBlock();

      unsigned Then = G.addBlock();
      addEdge(Head, Then); // successor 0: condition true
      Cur = Then;
      buildList(IS->getThen());
      addEdge(Cur, Join);

      if (IS->hasElse()) {
        unsigned Else = G.addBlock();
        addEdge(Head, Else); // successor 1: condition false
        Cur = Else;
        buildList(IS->getElse());
        addEdge(Cur, Join);
      } else {
        addEdge(Head, Join);
      }
      Cur = Join;
      return;
    }

    case Stmt::Kind::While: {
      const auto *WS = cast<WhileStmt>(&S);
      unsigned Header = G.addBlock();
      unsigned Body = G.addBlock();
      unsigned After = G.addBlock();
      addEdge(Cur, Header);
      G.Blocks[Header].Cond = WS->getCond();
      G.Blocks[Header].CondOwner = &S;
      G.Blocks[Header].LoopHeaderOf = &S;
      addEdge(Header, Body);  // successor 0: another iteration
      addEdge(Header, After); // successor 1: loop exit

      BreakTargets.push_back(After);
      Cur = Body;
      buildList(WS->getBody());
      BreakTargets.pop_back();
      addEdge(Cur, Header); // the latch
      Cur = After;
      return;
    }

    case Stmt::Kind::DoLoop: {
      // Lowered to the equivalent while so the CFG executes exactly
      // like the source interpreter:
      //   i = lo;  while (step > 0 ? i <= hi : i >= hi) { body; i += step }
      const auto *DL = cast<DoLoopStmt>(&S);
      const std::string &IV = DL->getIndVar();

      auto Synth = [&](ExprPtr E) {
        E->setLoc(S.getLoc());
        return E;
      };
      auto MakeVar = [&] {
        return Synth(std::make_unique<VarRef>(IV));
      };

      const Stmt *Init = ownStmt(std::make_unique<AssignStmt>(
          MakeVar(), DL->getLower()->clone()));
      G.Blocks[Cur].Stmts.push_back(Init);

      unsigned Header = G.addBlock();
      unsigned Body = G.addBlock();
      unsigned After = G.addBlock();
      addEdge(Cur, Header);
      G.Blocks[Header].Cond = ownExpr(Synth(std::make_unique<BinaryExpr>(
          DL->getStep() > 0 ? BinaryOpKind::Le : BinaryOpKind::Ge, MakeVar(),
          DL->getUpper()->clone())));
      G.Blocks[Header].CondOwner = &S;
      G.Blocks[Header].LoopHeaderOf = &S;
      addEdge(Header, Body);
      addEdge(Header, After);

      BreakTargets.push_back(After);
      Cur = Body;
      buildList(DL->getBody());
      BreakTargets.pop_back();

      const Stmt *Incr = ownStmt(std::make_unique<AssignStmt>(
          MakeVar(), Synth(std::make_unique<BinaryExpr>(
                         BinaryOpKind::Add, MakeVar(),
                         Synth(std::make_unique<IntLit>(DL->getStep()))))));
      G.Blocks[Cur].Stmts.push_back(Incr);
      addEdge(Cur, Header); // the latch
      Cur = After;
      return;
    }

    case Stmt::Kind::Break: {
      // A stray top-level break (flagged by Validate) falls off the
      // program; inside a loop it jumps past the innermost one. Either
      // way the rest of the statement list is unreachable.
      addEdge(Cur, BreakTargets.empty() ? G.Exit : BreakTargets.back());
      Cur = G.addBlock();
      return;
    }
    }
  }

  Cfg &G;
  unsigned Cur = 0;
  /// After-blocks of the enclosing loops, innermost last.
  std::vector<unsigned> BreakTargets;
};

} // namespace ardf

Cfg::Cfg(const Program &P) {
  telem::Span BuildSpan("cfg-build", "cfg");
  CfgBuilder(*this).build(P);
  computeRPO();
  computeDominators();
  findLoops();
  telem::count(telem::Counter::CfgBlocks, Blocks.size());
  telem::count(telem::Counter::CfgLoops, Loops.size());
}

unsigned Cfg::addBlock() {
  Blocks.emplace_back();
  return Blocks.size() - 1;
}

void Cfg::computeRPO() {
  unsigned N = Blocks.size();
  Reachable.assign(N, false);
  std::vector<unsigned> Postorder;
  Postorder.reserve(N);

  // Iterative DFS from the entry.
  std::vector<std::pair<unsigned, unsigned>> Stack;
  Stack.emplace_back(Entry, 0);
  Reachable[Entry] = true;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    if (NextSucc < Blocks[Block].Succs.size()) {
      unsigned Succ = Blocks[Block].Succs[NextSucc++];
      if (!Reachable[Succ]) {
        Reachable[Succ] = true;
        Stack.emplace_back(Succ, 0);
      }
      continue;
    }
    Postorder.push_back(Block);
    Stack.pop_back();
  }

  RPO.assign(Postorder.rbegin(), Postorder.rend());
  RPOIndex.assign(N, InvalidBlock);
  for (unsigned I = 0; I != RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;
}

void Cfg::computeDominators() {
  // Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm":
  // iterate intersect() over reverse postorder until fixpoint.
  unsigned N = Blocks.size();
  IDom.assign(N, InvalidBlock);
  IDom[Entry] = Entry;

  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDom[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Block : RPO) {
      if (Block == Entry)
        continue;
      unsigned NewIDom = InvalidBlock;
      for (unsigned Pred : Blocks[Block].Preds) {
        if (!Reachable[Pred] || IDom[Pred] == InvalidBlock)
          continue;
        NewIDom = NewIDom == InvalidBlock ? Pred : Intersect(NewIDom, Pred);
      }
      assert(NewIDom != InvalidBlock && "reachable block with no "
                                        "processed predecessor");
      if (IDom[Block] != NewIDom) {
        IDom[Block] = NewIDom;
        Changed = true;
      }
    }
  }
  // The entry's self-idom above is an algorithmic convenience; expose
  // "no immediate dominator" to callers.
  IDom[Entry] = InvalidBlock;
}

bool Cfg::dominates(unsigned A, unsigned B) const {
  if (A == B)
    return true;
  if (!Reachable[A] || !Reachable[B])
    return false;
  // Walk B's dominator chain; RPO indices strictly decrease, so this
  // terminates at the entry.
  unsigned Cursor = B;
  while (IDom[Cursor] != InvalidBlock) {
    Cursor = IDom[Cursor];
    if (Cursor == A)
      return true;
  }
  return false;
}

void Cfg::findLoops() {
  unsigned N = Blocks.size();

  // A back edge is an edge whose target dominates its source.
  for (unsigned Block : RPO)
    for (unsigned Succ : Blocks[Block].Succs)
      if (dominates(Succ, Block))
        BackEdges.emplace_back(Block, Succ);

  // Group back edges by header, headers in reverse postorder so outer
  // loops precede the loops nested in them.
  std::vector<unsigned> Headers;
  for (unsigned Block : RPO) {
    for (const auto &[From, To] : BackEdges) {
      (void)From;
      if (To == Block && std::find(Headers.begin(), Headers.end(), Block) ==
                             Headers.end())
        Headers.push_back(Block);
    }
  }

  for (unsigned Header : Headers) {
    NaturalLoop Loop;
    Loop.Header = Header;
    Loop.Source = Blocks[Header].LoopHeaderOf;

    // The natural loop: the header plus every block that reaches a
    // latch without passing through the header.
    std::vector<bool> InLoop(N, false);
    InLoop[Header] = true;
    std::vector<unsigned> Work;
    for (const auto &[From, To] : BackEdges) {
      if (To != Header)
        continue;
      Loop.Latches.push_back(From);
      if (!InLoop[From]) {
        InLoop[From] = true;
        Work.push_back(From);
      }
    }
    while (!Work.empty()) {
      unsigned Block = Work.back();
      Work.pop_back();
      for (unsigned Pred : Blocks[Block].Preds) {
        if (!Reachable[Pred] || InLoop[Pred])
          continue;
        InLoop[Pred] = true;
        Work.push_back(Pred);
      }
    }

    for (unsigned Block = 0; Block != N; ++Block)
      if (InLoop[Block])
        Loop.Blocks.push_back(Block);
    for (unsigned Block : Loop.Blocks)
      for (unsigned Succ : Blocks[Block].Succs)
        if (!InLoop[Succ])
          Loop.ExitEdges.emplace_back(Block, Succ);

    Loops.push_back(std::move(Loop));
  }

  // Innermost-loop map: later loops are nested inside earlier ones (or
  // disjoint), so the last loop claiming a block is its innermost.
  LoopOf.assign(N, -1);
  for (unsigned I = 0; I != Loops.size(); ++I)
    for (unsigned Block : Loops[I].Blocks)
      LoopOf[Block] = static_cast<int>(I);

  // Parent relation: the innermost *other* loop containing the header.
  ParentLoop.assign(Loops.size(), -1);
  for (unsigned I = 0; I != Loops.size(); ++I)
    for (unsigned J = 0; J != I; ++J)
      if (Loops[J].contains(Loops[I].Header))
        ParentLoop[I] = static_cast<int>(J);
}

void Cfg::dump(std::ostream &OS) const { OS << toDot(); }

std::string Cfg::toDot() const {
  std::ostringstream OS;
  OS << "digraph cfg {\n  node [shape=box, fontname=monospace];\n";
  for (unsigned Id = 0; Id != Blocks.size(); ++Id) {
    const CfgBlock &B = Blocks[Id];
    OS << "  b" << Id << " [label=\"B" << Id;
    if (Id == Entry)
      OS << " (entry)";
    if (Id == Exit)
      OS << " (exit)";
    if (B.LoopHeaderOf)
      OS << " header";
    OS << "\\l";
    for (const Stmt *S : B.Stmts) {
      std::string Text = stmtToString(*S);
      if (!Text.empty() && Text.back() == '\n')
        Text.pop_back();
      OS << Text << "\\l";
    }
    if (B.Cond)
      OS << "branch " << exprToString(*B.Cond) << "\\l";
    OS << "\"];\n";
  }
  for (unsigned Id = 0; Id != Blocks.size(); ++Id)
    for (unsigned I = 0; I != Blocks[Id].Succs.size(); ++I) {
      OS << "  b" << Id << " -> b" << Blocks[Id].Succs[I];
      if (Blocks[Id].Cond)
        OS << " [label=\"" << (I == 0 ? "T" : "F") << "\"]";
      OS << ";\n";
    }
  OS << "}\n";
  return OS.str();
}
