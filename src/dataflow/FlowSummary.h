//===- dataflow/FlowSummary.h - Precomposed loop transfer summaries ------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The summary engine (SolverOptions::Engine::Summary). A FlowSummary
/// composes one CompiledFlowProgram's packed flow functions along the
/// acyclic loop flow graph -- every per-cell function lies in the
/// closed three-parameter family of lattice/PackedTransfer.h -- so one
/// paper-schedule pass collapses, per node, into a single Transfer of
/// the back-edge row the pass started from. Closing the composition
/// over the back edge and evaluating at the (concrete) initialization
/// state yields the fixed point itself at lowering time: the summary
/// stores the final packed IN/OUT matrices, and re-solving the instance
/// is a single summary application per node -- O(N) cell writes through
/// the VectorOps unpack sweep, zero schedule passes -- instead of the
/// kernel's 3N/2N node visits. A workspace that already holds the same
/// summary's clean export does not even pay the sweep: the apply
/// degenerates to the counter/budget replay, O(1) (see applySummary).
///
/// applySummary replays everything a kernel solve observes except the
/// passes themselves: the same result shape, the same visit/pass/op
/// counters, the same telemetry, and the same budget and failpoint
/// boundaries (the BudgetGuard is consulted at exactly the kernel's
/// pass boundaries with the kernel's visit totals, so under identical
/// deterministic breaches both engines degrade at the same point to the
/// same conservative bits). Results are bit-identical to the reference
/// engine -- the summary oracle suite asserts it.
///
/// Lowering requires the structure every LoopFlowGraph orientation has:
/// the working source is first in order with the back-edge node as its
/// only working predecessor, every other node's predecessors precede it
/// in order, and meet operands agree on their accumulated shift count.
/// A program that fails the checks (none do today; future general CFGs
/// might) gets Valid == false and callers fall back to the kernel, as
/// they do for request shapes a summary cannot serve (IterateToFixpoint,
/// RecordHistory -- see summaryEligible).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_FLOWSUMMARY_H
#define ARDF_DATAFLOW_FLOWSUMMARY_H

#include "dataflow/CompiledFlow.h"
#include "dataflow/Framework.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ardf {

/// One CompiledFlowProgram's solution, precomputed by transfer
/// composition (see file comment). Plain data: cheap to move, trivially
/// shareable read-only across threads once built, independent of any
/// budget (the budget is replayed per application).
struct FlowSummary {
  unsigned NumNodes = 0;
  unsigned NumTracked = 0;
  bool IsMust = true;

  /// Matrices are stored narrowed exactly when the source program
  /// solves narrowed, so a summary costs the same bytes as one packed
  /// working set of its kernel solve.
  bool Narrow32 = false;

  /// False when the program's shape defeated the composition (see file
  /// comment); the matrices are then empty and callers must solve with
  /// the kernel instead.
  bool Valid = false;

  /// Per-pass meet-edge totals mirrored from the program, so a summary
  /// application can finish the operation counts exactly like a solve.
  unsigned MeetEdgesAll = 0;
  unsigned MeetEdgesNoSource = 0;

  /// Display name of the summarized problem (telemetry span labels).
  std::string ProblemName;

  /// Process-unique lowering identity (never 0 once Valid). A
  /// SolveWorkspace remembers the Id whose clean export its result
  /// matrices hold, so re-applying the same summary skips the export
  /// sweep entirely -- the O(1) warm re-solve. Pointer identity would
  /// not do: a freed summary's address can be reused.
  uint64_t Id = 0;

  /// The fixed point in packed row-major NumNodes x NumTracked layout,
  /// one width pair filled according to Narrow32.
  std::vector<uint64_t> FinalIn;
  std::vector<uint64_t> FinalOut;
  std::vector<uint32_t> FinalIn32;
  std::vector<uint32_t> FinalOut32;

  /// Cells per matrix side.
  size_t cells() const {
    return static_cast<size_t>(NumNodes) * NumTracked;
  }

  /// Composes \p CF's flow functions into a summary. The summary copies
  /// everything it needs and may outlive \p CF. Ticks
  /// telem::Counter::SummaryLowerings.
  static FlowSummary lower(const CompiledFlowProgram &CF);
};

/// True when a summary can serve a request with these options: the
/// paper schedule with no history snapshots. IterateToFixpoint wants
/// per-pass change tracking and RecordHistory wants per-pass matrices,
/// both of which a zero-pass application cannot produce; callers fall
/// back to the kernel for those.
inline bool summaryEligible(const SolverOptions &Opts) {
  return Opts.Strat == SolverOptions::Strategy::PaperSchedule &&
         !Opts.RecordHistory && !Opts.RecordProvenance;
}

/// Applies \p S into a fresh SolveResult: the kernel's result for the
/// summarized program under \p Opts, bit-identical, including budget
/// degradation at the kernel's pass boundaries. Pre: S.Valid and
/// summaryEligible(Opts).
SolveResult applySummary(const FlowSummary &S,
                         const SolverOptions &Opts = SolverOptions());

/// Workspace form: recycles \p WS's result matrices, so warm repeated
/// applications are allocation-free (the packed kernel buffers are
/// never touched -- a summary application has no working set). Better:
/// when the workspace's matrices already hold this summary's clean
/// export (same Id, previous application did not degrade, and no other
/// solver wrote the workspace in between), the export sweep is skipped
/// outright and only the counter/budget replay runs -- repeated warm
/// re-solves of an unchanged instance are O(1), not O(cells). The
/// skip is sound because the bytes a clean export writes are a pure
/// function of the summary: they are already in place.
const SolveResult &applySummary(const FlowSummary &S, SolveWorkspace &WS,
                                const SolverOptions &Opts = SolverOptions());

} // namespace ardf

#endif // ARDF_DATAFLOW_FLOWSUMMARY_H
