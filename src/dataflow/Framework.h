//===- dataflow/Framework.h - Flow functions and solver --------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FrameworkInstance materializes the equation system of Section 3.2 for
/// one loop and one (G, K) problem: the tracked reference tuple, the pr
/// predicate, and per-node flow functions (generate f(x) = max(x, 0),
/// preserve f(x) = min(x, p), exit f(x) = x++). solveDataFlow computes
/// the greatest fixed point with the paper's pass schedule:
///
///   must: one initialization pass plus two reverse-postorder passes
///         (3 * N node visits),
///   may:  two reverse-postorder passes from the all-instances initial
///         guess (2 * N node visits).
///
/// Backward problems run the same machinery over the reversed graph; the
/// IN tuple of a backward solution describes node *exit* information
/// (Section 3.4, footnote in Section 4.2.1).
///
/// IN/OUT tuples are stored flat (DistanceMatrix); a SolveWorkspace lets
/// repeated solves recycle the matrices so the hot pass loop performs no
/// heap allocation. The problem-independent inputs (reference universe,
/// traversal order, predecessor lists) can be borrowed from a
/// LoopAnalysisSession instead of recomputed per instance.
///
/// Two solver engines share this interface (SolverOptions::Engine): the
/// scalar Reference solver below, and the branch-free PackedKernel
/// solver over a lowered CompiledFlowProgram (CompiledFlow.h), which
/// produces bit-identical results.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_FRAMEWORK_H
#define ARDF_DATAFLOW_FRAMEWORK_H

#include "dataflow/DistanceMatrix.h"
#include "dataflow/PreserveConstant.h"
#include "dataflow/Problem.h"
#include "dataflow/SolverBudget.h"
#include "lattice/Distance.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ardf {

/// A data flow value tuple indexed by tracked-reference position (the
/// owning flavor; solutions store rows inside a DistanceMatrix).
using DistanceTuple = std::vector<DistanceValue>;

/// Snapshot of all IN/OUT tuples after one solver pass (used to
/// regenerate the paper's Table 1).
struct PassSnapshot {
  std::string Label;
  DistanceMatrix In;
  DistanceMatrix Out;
};

struct SolveProvenance;

/// Result of a data flow solve.
struct SolveResult {
  /// IN/OUT tuples per flow graph node (original node ids). For backward
  /// problems IN[n] holds node-exit information.
  DistanceMatrix In;
  DistanceMatrix Out;

  /// Total node visits performed (the paper's cost metric; 3*N resp.
  /// 2*N for the prescribed schedules).
  unsigned NodeVisits = 0;

  /// Iteration passes performed after initialization.
  unsigned Passes = 0;

  /// Lattice meet operations the solve performed: one per extra working
  /// predecessor per tracked component per meet evaluation (identical
  /// across engines; derived from the orientation's meet-edge counts).
  uint64_t MeetOps = 0;

  /// Flow function applications: node visits of the iteration passes
  /// times tracked components (initialization applies no flow function).
  uint64_t ApplyOps = 0;

  /// False only in IterateToFixpoint mode when MaxPasses was exhausted.
  bool Converged = true;

  /// How the solve ended. Degraded results are sound but imprecise: on
  /// a budget breach or injected fault every cell holds the conservative
  /// fill (NoInstance for must, AllInstances for may); on
  /// NonConvergence the matrices hold the last iterate, which for these
  /// descending chains is likewise conservative.
  SolveOutcome Outcome = SolveOutcome::Ok;

  /// Why the solve degraded (None when Outcome is Ok).
  BreachReason Breach = BreachReason::None;

  bool ok() const { return Outcome == SolveOutcome::Ok; }

  /// Per-pass snapshots when SolverOptions::RecordHistory is set.
  std::vector<PassSnapshot> History;

  /// Full derivation recording when SolverOptions::RecordProvenance is
  /// set (reference engine only); null otherwise. Shared so the session
  /// solution cache and explain consumers can hold it past the solve.
  std::shared_ptr<const SolveProvenance> Provenance;
};

/// Solver configuration.
struct SolverOptions {
  enum class Strategy {
    /// The paper's schedule: fixed pass counts guaranteed by (weak)
    /// idempotence of the flow functions.
    PaperSchedule,
    /// Iterate reverse-postorder passes until stable (used to verify the
    /// pass-count claims empirically and by the naive baseline bench).
    IterateToFixpoint
  };

  enum class Engine {
    /// The scalar DistanceValue solver (the executable specification).
    Reference,
    /// The branch-free packed-uint64 kernel over a CompiledFlowProgram
    /// (bit-identical results; see CompiledFlow.h). Through a
    /// LoopAnalysisSession the compiled program is memoized per
    /// instance; a direct solveDataFlow call compiles on the fly.
    PackedKernel,
    /// The packed kernel with explicit SIMD row operations
    /// (dataflow/VectorOps.h, runtime-dispatched) plus
    /// structure-of-arrays multi-problem interleaving: batch entry
    /// points (LoopAnalysisSession::solveInterleaved, the driver's
    /// problem loop) fuse same-direction problems of a loop into one
    /// CompiledFlowGroup sweep. A single solve behaves exactly like
    /// PackedKernel. Results stay bit-identical to Reference.
    PackedSimd,
    /// Precomposed transfer summaries (dataflow/FlowSummary.h): the
    /// compiled program's flow functions are composed along the loop
    /// flow graph and closed over the back edge once, so every further
    /// solve of the instance is a single summary application -- O(N)
    /// cell writes, zero schedule passes -- with the kernel's exact
    /// result, counters, and budget semantics. Requests a summary
    /// cannot serve (IterateToFixpoint, RecordHistory, or a program
    /// whose shape defeats composition) fall back to the SIMD kernel.
    Summary
  };

  Strategy Strat = Strategy::PaperSchedule;
  Engine Eng = Engine::Reference;
  unsigned MaxPasses = 64;
  bool RecordHistory = false;

  /// Records a full derivation (dataflow/Provenance.h) into
  /// SolveResult::Provenance. Forces the scalar reference path -- the
  /// packed/SIMD/summary engines stay untouched and fast -- so explain
  /// flows re-solve on demand and cross-check against the cached
  /// fast-engine result. Off on every hot path.
  bool RecordProvenance = false;

  /// Resource ceilings for each solve (default: nothing enforced). Part
  /// of the options identity below, so session solution caches never
  /// serve a result computed under a different budget.
  SolverBudget Budget;

  friend bool operator==(const SolverOptions &A, const SolverOptions &B) {
    return A.Strat == B.Strat && A.Eng == B.Eng &&
           A.MaxPasses == B.MaxPasses &&
           A.RecordHistory == B.RecordHistory &&
           A.RecordProvenance == B.RecordProvenance &&
           A.Budget == B.Budget;
  }
  friend bool operator!=(const SolverOptions &A, const SolverOptions &B) {
    return !(A == B);
  }

  /// True for every engine that solves over packed matrices
  /// (PackedKernel and PackedSimd share the kernel solver; Summary
  /// lowers through the same compiled program and falls back to the
  /// kernel whenever a summary cannot serve -- dispatch sites test
  /// Engine::Summary before this).
  bool usesPackedKernel() const { return Eng != Engine::Reference; }
};

/// CLI name of \p E: "reference", "packed", "simd", "summary".
const char *engineName(SolverOptions::Engine E);

/// Parses a CLI engine name into \p Out; false when \p Name is not a
/// known engine (callers turn that into a usage error rather than
/// silently falling back).
bool parseEngineName(std::string_view Name, SolverOptions::Engine &Out);

/// Every engine name parseEngineName accepts, comma-separated (e.g. for
/// usage text and unknown-name diagnostics): the single authority the
/// CLI tools share, so a new engine shows up everywhere at once.
const char *engineNameList();

class FrameworkInstance;
struct CompiledFlowProgram;
struct FlowSummary;
struct SolveProvenance;

/// Memoized preserve constants. The p constant of Section 3.1.2 depends
/// only on the (preserved, killer) affine access pair, the pr value, the
/// problem mode and direction, and the trip count — not on which problem
/// asked. Keyed by access-class pair, one cache serves every killer
/// occurrence of a class and every instance sharing the cache (a
/// LoopAnalysisSession passes its cache to all of its instances; trip
/// count is fixed per loop, so it stays out of the key). Not
/// thread-safe: shared only within one session, which is single-threaded
/// by contract.
class PreserveCache {
public:
  size_t size() const { return Map.size(); }

  /// Lookup hits and misses observed since construction (a hit means the
  /// rational preserve arithmetic was skipped; the cross-instance
  /// sharing metric the telemetry layer reports).
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  friend class FrameworkInstance;
  std::unordered_map<uint64_t, DistanceValue> Map;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Reusable solve buffers: repeated solveDataFlow calls through one
/// workspace overwrite the same IN/OUT matrices, so once the matrices
/// have grown to the largest (nodes x tracked) shape seen, further
/// solves perform no heap allocation at all (pass loop included).
/// The packed kernel engine additionally recycles its two uint64
/// matrices here (solveCompiled), under the same growth accounting.
/// RecordHistory still allocates snapshots; leave it off on hot paths.
class SolveWorkspace {
public:
  /// The most recent solution (valid until the next solve).
  const SolveResult &result() const { return Result; }

  /// Number of solves that had to grow a matrix allocation. Stable
  /// across warm repeats -- the invariant the allocation test asserts.
  unsigned matrixGrowths() const { return Growths; }

  /// Total solves run through this workspace.
  unsigned solves() const { return Solves; }

private:
  friend const SolveResult &solveDataFlow(const FrameworkInstance &FW,
                                          SolveWorkspace &WS,
                                          const SolverOptions &Opts);
  friend const SolveResult &solveCompiled(const CompiledFlowProgram &CF,
                                          SolveWorkspace &WS,
                                          const SolverOptions &Opts);
  friend const SolveResult &applySummary(const FlowSummary &S,
                                         SolveWorkspace &WS,
                                         const SolverOptions &Opts);
  SolveResult Result;
  /// Packed row-major IN/OUT buffers of the kernel engine, plus its
  /// one-row scratch buffer (IN rows of non-final passes and old-OUT
  /// snapshots of change-tracked passes never leave it). Programs whose
  /// constants narrow (CompiledFlowProgram::Narrow32) solve in the
  /// uint32_t set instead; both sets persist so a workspace can
  /// alternate widths without reallocating.
  std::vector<uint64_t> PackedIn;
  std::vector<uint64_t> PackedOut;
  std::vector<uint64_t> PackedScratch;
  std::vector<uint32_t> PackedIn32;
  std::vector<uint32_t> PackedOut32;
  std::vector<uint32_t> PackedScratch32;
  /// FlowSummary::Id whose clean export Result currently holds, or 0.
  /// applySummary skips the export sweep when it matches (the bytes are
  /// already in place); every other writer of Result resets it to 0.
  uint64_t WarmSummaryId = 0;
  unsigned Growths = 0;
  unsigned Solves = 0;
};

/// Problem-independent traversal tables of one loop graph in one working
/// orientation: the node order (forward: reverse postorder; backward:
/// the reversed sequence) and the working predecessor lists. Computed
/// once per (loop, direction) and shared across framework instances by
/// LoopAnalysisSession.
struct LoopOrientation {
  FlowDirection Direction = FlowDirection::Forward;
  std::vector<unsigned> Order;
  std::vector<std::vector<unsigned>> Preds;

  /// Meet operations one tracked component costs per full pass: the sum
  /// over nodes of (working predecessors - 1). NoSource excludes the
  /// working source (the must-initialization pass skips it). Computed
  /// once here so per-solve operation accounting is O(1).
  unsigned MeetEdgesAll = 0;
  unsigned MeetEdgesNoSource = 0;

  static LoopOrientation compute(const LoopFlowGraph &Graph,
                                 FlowDirection Dir);
};

/// A fully instantiated framework: loop graph + problem + flow functions.
class FrameworkInstance {
public:
  /// Instantiates the problem over \p Graph. A non-empty \p IVOverride
  /// analyzes the body with respect to an enclosing loop's induction
  /// variable (Section 3.6); the local one becomes a symbolic constant
  /// and the trip count is taken from \p TripOverride (the enclosing
  /// loop's, unknown by default).
  FrameworkInstance(const LoopFlowGraph &Graph, const Program &P,
                    ProblemSpec Spec, const std::string &IVOverride = "",
                    int64_t TripOverride = UnknownTripCount);

  /// Batched form: borrows the memoized problem-independent tables of a
  /// LoopAnalysisSession instead of recomputing them. \p Universe and
  /// \p Orient must outlive the instance and \p Orient's direction must
  /// match the problem's. \p TripCount is the lattice saturation bound.
  /// A non-null \p SharedCache memoizes preserve constants across all
  /// instances built against it; it must have been used only with the
  /// same universe and trip count.
  FrameworkInstance(const ReferenceUniverse &Universe,
                    const LoopOrientation &Orient, ProblemSpec Spec,
                    int64_t TripCount, PreserveCache *SharedCache = nullptr);

  /// The trip count the lattice saturates at.
  int64_t getTripCount() const { return TripCount; }

  const LoopFlowGraph &getGraph() const { return *Graph; }
  const ReferenceUniverse &getUniverse() const { return *Universe; }
  const ProblemSpec &getSpec() const { return Spec; }

  /// The tracked (generating) references, in tuple order. Without
  /// GroupByAccess every tuple element is a single occurrence; with it,
  /// an element is an equivalence class of same-access occurrences and
  /// getTracked returns the first member as representative.
  unsigned getNumTracked() const { return Groups.size(); }
  const RefOccurrence &getTracked(unsigned Idx) const {
    return Universe->occurrence(Groups[Idx].front());
  }

  /// All member occurrence ids of tuple element \p Idx.
  const std::vector<unsigned> &trackedMembers(unsigned Idx) const {
    return Groups[Idx];
  }

  /// Maps an occurrence id to its tuple position, or -1 if untracked.
  int trackedIndexOf(unsigned OccId) const { return OccToTracked[OccId]; }

  /// pr(d, n) for tracked index \p Idx at node \p Node, evaluated in the
  /// working orientation (Section 3.1.2; successors for backward
  /// problems). For a grouped element, 0 when any member's node reaches
  /// \p Node intra-iteration.
  int64_t pr(unsigned Idx, unsigned Node) const {
    return Pr[Idx * Graph->getNumNodes() + Node];
  }

  /// True if tracked reference \p Idx is generated in node \p Node.
  bool generatesAt(unsigned Idx, unsigned Node) const {
    return GenAt[Node * Groups.size() + Idx];
  }

  /// The preserve constant applied to tracked reference \p Idx at node
  /// \p Node (AllInstances when the node contains no killer for it).
  /// At the generating node itself this is the pre-generation phase; see
  /// preserveAfterGen.
  DistanceValue preserveAt(unsigned Idx, unsigned Node) const {
    return Preserve[Node * Groups.size() + Idx];
  }

  /// Within one statement, uses execute before the definition. A killer
  /// positioned after the generation point of tracked reference \p Idx
  /// in a generating node (e.g. the def killing a same-statement use's
  /// value in a forward problem, or a same-statement use killing the
  /// store's busyness in a backward problem) must apply after the
  /// generate function, with the fresh distance-0 instance in range.
  DistanceValue preserveAfterGen(unsigned Idx, unsigned Node) const {
    return PreserveAfter[Node * Groups.size() + Idx];
  }

  /// Applies the node flow function f_n to one tuple component.
  DistanceValue applyNode(unsigned Node, unsigned Idx,
                          DistanceValue In) const;

  /// Node order of the working orientation (forward: RPO; backward:
  /// reversed RPO). The first node is the working source.
  const std::vector<unsigned> &workingOrder() const { return Orient->Order; }

  /// Predecessors in the working orientation.
  const std::vector<unsigned> &workingPreds(unsigned Node) const {
    return Orient->Preds[Node];
  }

  /// Meet operations one tracked component costs per pass (see
  /// LoopOrientation::MeetEdgesAll/MeetEdgesNoSource).
  unsigned meetEdges(bool ExcludeSource) const {
    return ExcludeSource ? Orient->MeetEdgesNoSource
                         : Orient->MeetEdgesAll;
  }

  /// The meet of the problem: min for must, max for may.
  DistanceValue meet(DistanceValue A, DistanceValue B) const {
    return Spec.isMust() ? DistanceValue::min(A, B)
                         : DistanceValue::max(A, B);
  }

  /// Renders the tracked tuple header, e.g. "(C[i+2], B[2*i], C[i], B[i])".
  std::string tupleHeader() const;

private:
  void selectTracked();
  void computePr();
  void computePreserves();

  const LoopFlowGraph *Graph;
  ProblemSpec Spec;
  int64_t TripCount;
  /// Owned in the standalone constructor, borrowed in the batched one.
  std::unique_ptr<ReferenceUniverse> OwnedUniverse;
  const ReferenceUniverse *Universe;
  std::unique_ptr<LoopOrientation> OwnedOrient;
  const LoopOrientation *Orient;
  std::unique_ptr<PreserveCache> OwnedCache;
  PreserveCache *Cache;
  std::vector<std::vector<unsigned>> Groups;
  std::vector<int> OccToTracked;
  std::vector<char> GenAt;
  std::vector<int64_t> Pr;
  std::vector<DistanceValue> Preserve;
  std::vector<DistanceValue> PreserveAfter;
};

/// Solves the equation system of \p FW (Section 3.2).
SolveResult solveDataFlow(const FrameworkInstance &FW,
                          const SolverOptions &Opts = SolverOptions());

/// Workspace form: solves into \p WS's matrices, reusing their
/// allocations. The returned reference stays valid until the next solve
/// through the same workspace.
const SolveResult &solveDataFlow(const FrameworkInstance &FW,
                                 SolveWorkspace &WS,
                                 const SolverOptions &Opts = SolverOptions());

/// Formats one tuple like the paper's Table 1 rows: "(2, 1, _, T)".
std::string tupleToString(const DistanceTuple &T);
std::string tupleToString(DistanceMatrix::ConstRow Row);

} // namespace ardf

#endif // ARDF_DATAFLOW_FRAMEWORK_H
