//===- dataflow/PreserveConstant.h - The p constant of Section 3.1.2 -*- C++//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the preserve constant p of a preserve flow function
/// f(x) = min(x, p): the maximal iteration distance of instances of a
/// tracked reference d that survive a killing reference d' in the same
/// node (Sections 3.1.2, 3.3, 3.4 of the paper).
///
/// With d = X[a1*i + b1] and d' = X[a2*i + b2], the kill distance
/// function is k(i) = ((a1 - a2)*i + (b1 - b2)) / a1 (sign-flipped for
/// backward problems), evaluated over the iteration range I = [1, UB]:
///
///   must:  p = NoInstance                    if k == pr on I
///          p = AllInstances                  if k < pr on I
///          p = ceil(min{k(i) > pr}) - 1      otherwise
///   may:   p = NoInstance                    if k == pr on I
///          p = c - 1                         if k == c constant, c > pr
///          p = AllInstances                  otherwise (no definite kill)
///
/// Symbolic coefficients are handled where exact: a constant k is
/// recognized whenever (b1 - b2) is a rational multiple of a1 and the
/// coefficients of i agree (this covers the linearized multi-dimensional
/// cases of Section 3.6, e.g. k = N / N = 1). Anything else degrades
/// conservatively: NoInstance for must, AllInstances for may.
///
/// Two refinements over the paper's formulas, both exactness-preserving:
///   * a constant non-integer k never kills (delta is integral), so the
///     result is AllInstances rather than ceil(c) - 1;
///   * a computed p below pr leaves no instance in range => NoInstance.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_PRESERVECONSTANT_H
#define ARDF_DATAFLOW_PRESERVECONSTANT_H

#include "affine/AffineAccess.h"
#include "dataflow/Problem.h"
#include "lattice/Distance.h"

namespace ardf {

/// Inputs of a preserve-constant query.
struct PreserveQuery {
  /// Affine view of the preserved (tracked) reference d.
  const AffineAccess *Preserved;

  /// Affine view of the killing reference d' (null for whole-array
  /// kills, which yield NoInstance in must mode / AllInstances in may
  /// mode immediately).
  const AffineAccess *Killer;

  /// pr(d, n): 0 when d occurs in a node reaching n intra-iteration,
  /// 1 otherwise (Section 3.1.2).
  int64_t Pr = 1;

  /// Trip count UB, or UnknownTripCount.
  int64_t TripCount = UnknownTripCount;

  ProblemMode Mode = ProblemMode::Must;
  FlowDirection Direction = FlowDirection::Forward;
};

/// Computes the preserve constant for \p Q. The result is an element of
/// the distance chain: NoInstance (nothing preserved), finite(p), or
/// AllInstances (everything preserved).
DistanceValue computePreserveConstant(const PreserveQuery &Q);

} // namespace ardf

#endif // ARDF_DATAFLOW_PRESERVECONSTANT_H
