//===- dataflow/DistanceMatrix.h - Flat IN/OUT tuple storage ---*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contiguous NumNodes x NumTracked storage for the IN/OUT sides of a
/// data flow solution. The solver of Section 3.2 sweeps all nodes once
/// per pass, so a single row-major allocation (one row per flow graph
/// node, one column per tracked reference) keeps the whole working set
/// in one cache-friendly buffer and lets a SolveWorkspace recycle the
/// allocation across repeated solves. Rows are handed out as lightweight
/// views so existing Result.In[Node][Idx] call sites keep working.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_DISTANCEMATRIX_H
#define ARDF_DATAFLOW_DISTANCEMATRIX_H

#include "lattice/Distance.h"

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace ardf {

/// A NumNodes x NumTracked matrix of lattice values in one allocation.
class DistanceMatrix {
public:
  DistanceMatrix() = default;
  DistanceMatrix(unsigned NumNodes, unsigned NumTracked) {
    reset(NumNodes, NumTracked);
  }

  /// Resizes to NumNodes x NumTracked and refills every cell with
  /// NoInstance. The backing allocation is retained whenever it is
  /// already large enough; returns true when the backing store actually
  /// reallocated (the signal SolveWorkspace instruments to prove
  /// allocation-free reuse). Measured by comparing capacity around the
  /// assign rather than predicting it, so any reallocation assign
  /// performs is reported.
  bool reset(unsigned NumNodes, unsigned NumTracked) {
    size_t Needed = static_cast<size_t>(NumNodes) * NumTracked;
    size_t Before = Data.capacity();
    Nodes = NumNodes;
    Tracked = NumTracked;
    Data.assign(Needed, DistanceValue());
    return Data.capacity() != Before;
  }

  /// Like reset, but leaves existing cell contents alone (only cells
  /// the vector grows into are value-initialized). For consumers that
  /// overwrite every cell before reading — the packed kernel solver
  /// unpacks the full fixed point into the matrix — the refill that
  /// reset performs is pure memory traffic, which at large shapes is
  /// megabytes per solve. Same reallocation signal as reset.
  bool reshape(unsigned NumNodes, unsigned NumTracked) {
    size_t Needed = static_cast<size_t>(NumNodes) * NumTracked;
    size_t Before = Data.capacity();
    Nodes = NumNodes;
    Tracked = NumTracked;
    Data.resize(Needed);
    return Data.capacity() != Before;
  }

  unsigned numNodes() const { return Nodes; }
  unsigned numTracked() const { return Tracked; }
  bool empty() const { return Data.empty(); }
  size_t capacity() const { return Data.capacity(); }

  /// In-place view of one node's tuple (read-only).
  class ConstRow {
  public:
    ConstRow(const DistanceValue *Ptr, unsigned Size)
        : Ptr(Ptr), Len(Size) {}
    const DistanceValue &operator[](unsigned Idx) const { return Ptr[Idx]; }
    unsigned size() const { return Len; }
    const DistanceValue *begin() const { return Ptr; }
    const DistanceValue *end() const { return Ptr + Len; }

  private:
    const DistanceValue *Ptr;
    unsigned Len;
  };

  /// In-place view of one node's tuple (mutable).
  class Row {
  public:
    Row(DistanceValue *Ptr, unsigned Size) : Ptr(Ptr), Len(Size) {}
    DistanceValue &operator[](unsigned Idx) const { return Ptr[Idx]; }
    unsigned size() const { return Len; }
    DistanceValue *begin() const { return Ptr; }
    DistanceValue *end() const { return Ptr + Len; }
    operator ConstRow() const { return ConstRow(Ptr, Len); }

  private:
    DistanceValue *Ptr;
    unsigned Len;
  };

  Row operator[](unsigned Node) {
    return Row(Data.data() + static_cast<size_t>(Node) * Tracked, Tracked);
  }
  ConstRow operator[](unsigned Node) const {
    return ConstRow(Data.data() + static_cast<size_t>(Node) * Tracked,
                    Tracked);
  }

  DistanceValue *data() { return Data.data(); }
  const DistanceValue *data() const { return Data.data(); }

  friend bool operator==(const DistanceMatrix &A, const DistanceMatrix &B) {
    return A.Nodes == B.Nodes && A.Tracked == B.Tracked && A.Data == B.Data;
  }
  friend bool operator!=(const DistanceMatrix &A, const DistanceMatrix &B) {
    return !(A == B);
  }

private:
  unsigned Nodes = 0;
  unsigned Tracked = 0;
  std::vector<DistanceValue> Data;
};

/// Prints every row as a Table 1 style tuple, one node per line (used by
/// the gtest failure reporter).
std::ostream &operator<<(std::ostream &OS, const DistanceMatrix &M);

} // namespace ardf

#endif // ARDF_DATAFLOW_DISTANCEMATRIX_H
