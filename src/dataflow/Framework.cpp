//===- dataflow/Framework.cpp - Flow functions and solver ----------------===//

#include "dataflow/Framework.h"

#include "dataflow/CompiledFlow.h"
#include "dataflow/FlowSummary.h"
#include "dataflow/Provenance.h"
#include "dataflow/SolverTelemetry.h"
#include "ir/PrettyPrinter.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <ostream>
#include <sstream>

using namespace ardf;

LoopOrientation LoopOrientation::compute(const LoopFlowGraph &Graph,
                                         FlowDirection Dir) {
  LoopOrientation O;
  O.Direction = Dir;

  // Working orientation: reverse postorder for forward problems, the
  // reversed sequence (a topological order of the reversed acyclic body
  // graph) for backward problems.
  O.Order = Graph.reversePostorder();
  if (Dir == FlowDirection::Backward)
    std::reverse(O.Order.begin(), O.Order.end());

  O.Preds.resize(Graph.getNumNodes());
  for (unsigned N = 0; N != Graph.getNumNodes(); ++N)
    O.Preds[N] = Dir == FlowDirection::Backward ? Graph.getNode(N).Succs
                                                : Graph.getNode(N).Preds;

  // Per-pass meet totals (telemetry and SolveResult op accounting).
  for (unsigned N = 0; N != Graph.getNumNodes(); ++N)
    if (!O.Preds[N].empty())
      O.MeetEdgesAll += O.Preds[N].size() - 1;
  unsigned Source = O.Order.front();
  O.MeetEdgesNoSource = O.MeetEdgesAll;
  if (!O.Preds[Source].empty())
    O.MeetEdgesNoSource -= O.Preds[Source].size() - 1;
  return O;
}

FrameworkInstance::FrameworkInstance(const LoopFlowGraph &Graph,
                                     const Program &P, ProblemSpec Spec,
                                     const std::string &IVOverride,
                                     int64_t TripOverride)
    : Graph(&Graph), Spec(Spec),
      TripCount(IVOverride.empty() || IVOverride == Graph.getIndVar()
                    ? Graph.getTripCount()
                    : TripOverride),
      OwnedUniverse(
          std::make_unique<ReferenceUniverse>(Graph, P, IVOverride)),
      Universe(OwnedUniverse.get()),
      OwnedOrient(std::make_unique<LoopOrientation>(
          LoopOrientation::compute(Graph, Spec.Direction))),
      Orient(OwnedOrient.get()),
      OwnedCache(std::make_unique<PreserveCache>()),
      Cache(OwnedCache.get()) {
  selectTracked();
  computePr();
  computePreserves();
}

FrameworkInstance::FrameworkInstance(const ReferenceUniverse &Universe,
                                     const LoopOrientation &Orient,
                                     ProblemSpec Spec, int64_t TripCount,
                                     PreserveCache *SharedCache)
    : Graph(&Universe.getGraph()), Spec(Spec), TripCount(TripCount),
      Universe(&Universe), Orient(&Orient) {
  assert(Orient.Direction == Spec.Direction &&
         "orientation direction must match the problem's");
  if (!SharedCache) {
    OwnedCache = std::make_unique<PreserveCache>();
    SharedCache = OwnedCache.get();
  }
  Cache = SharedCache;
  selectTracked();
  computePr();
  computePreserves();
}

void FrameworkInstance::selectTracked() {
  OccToTracked.assign(Universe->size(), -1);
  // With grouping, occurrences of the same access class (same array,
  // same affine subscript) share one tuple element; the class partition
  // is precomputed by the universe.
  std::vector<int> GroupOfClass(
      Spec.GroupByAccess ? Universe->numAccessClasses() : 0, -1);
  for (const RefOccurrence &Occ : Universe->occurrences()) {
    if (!selects(Spec.Gen, Occ) || !Occ.isTrackable())
      continue;
    if (Spec.GroupByAccess) {
      int &G = GroupOfClass[Universe->accessClass(Occ.Id)];
      if (G < 0) {
        G = Groups.size();
        Groups.emplace_back();
      }
      Groups[G].push_back(Occ.Id);
      OccToTracked[Occ.Id] = G;
      continue;
    }
    OccToTracked[Occ.Id] = Groups.size();
    Groups.push_back({Occ.Id});
  }

  GenAt.assign(Graph->getNumNodes() * Groups.size(), 0);
  for (unsigned Idx = 0; Idx != Groups.size(); ++Idx)
    for (unsigned OccId : Groups[Idx])
      GenAt[Universe->occurrence(OccId).Node * Groups.size() + Idx] = 1;
}

void FrameworkInstance::computePr() {
  unsigned N = Graph->getNumNodes();
  Pr.assign(Groups.size() * N, 1);
  for (unsigned Idx = 0; Idx != Groups.size(); ++Idx) {
    for (unsigned OccId : Groups[Idx]) {
      unsigned Home = Universe->occurrence(OccId).Node;
      for (unsigned Node = 0; Node != N; ++Node) {
        // pr(d, n) == 0 iff a generating node of d reaches n in the
        // working orientation within the same iteration, so the
        // distance-0 instance is in range (Section 3.1.2).
        bool Reaches = Spec.isBackward()
                           ? Graph->reachesIntraIteration(Node, Home)
                           : Graph->reachesIntraIteration(Home, Node);
        if (Reaches)
          Pr[Idx * N + Node] = 0;
      }
    }
  }
}

void FrameworkInstance::computePreserves() {
  unsigned N = Graph->getNumNodes();
  unsigned T = Groups.size();
  int64_t Trip = TripCount;
  Preserve.assign(N * T, DistanceValue::allInstances());
  PreserveAfter.assign(N * T, DistanceValue::allInstances());

  // Micro-position of an occurrence within its statement, in working
  // execution order: forward problems execute uses (0) before the def
  // (1); backward problems traverse the statement in reverse.
  auto microPos = [&](const RefOccurrence &Occ) {
    unsigned Forward = Occ.IsDef ? 1 : 0;
    return Spec.isBackward() ? 1 - Forward : Forward;
  };

  for (unsigned Node = 0; Node != N; ++Node) {
    for (unsigned KillId : Universe->occurrencesAt(Node)) {
      const RefOccurrence &Killer = Universe->occurrence(KillId);
      if (!selects(Spec.Kill, Killer))
        continue;
      for (unsigned Idx = 0; Idx != T; ++Idx) {
        const RefOccurrence &D = getTracked(Idx);
        if (D.arrayName() != Killer.arrayName())
          continue;
        // A killer that is itself a member regenerates the tracked
        // value in the same breath; its (distance-0) kill is subsumed.
        if (OccToTracked[KillId] == static_cast<int>(Idx))
          continue;
        // A killer in a generating node of d positioned after the
        // generation point applies post-generation, with the fresh
        // distance-0 instance already in range.
        bool GenNode = generatesAt(Idx, Node);
        bool AfterGen = false;
        if (GenNode)
          for (unsigned MemberId : Groups[Idx])
            if (Universe->occurrence(MemberId).Node == Node &&
                microPos(Killer) >
                    microPos(Universe->occurrence(MemberId)))
              AfterGen = true;
        int64_t EffPr = AfterGen ? 0 : pr(Idx, Node);
        // The constant depends only on the access-class pair, pr, mode,
        // and direction (trip count is fixed per cache): memoized, so
        // repeated killers of one class and sibling instances sharing
        // the session cache skip the rational arithmetic.
        uint64_t KillerClass = Killer.KillsWholeArray
                                   ? uint64_t(Universe->numAccessClasses())
                                   : Universe->accessClass(KillId);
        uint64_t Key =
            (uint64_t(Universe->accessClass(D.Id)) *
                 (Universe->numAccessClasses() + 1) +
             KillerClass) *
                8 +
            uint64_t(EffPr) * 4 + uint64_t(Spec.isMust()) * 2 +
            uint64_t(Spec.isBackward());
        auto [CacheIt, Inserted] =
            Cache->Map.try_emplace(Key, DistanceValue::noInstance());
        if (Inserted)
          ++Cache->Misses;
        else
          ++Cache->Hits;
        telem::count(Inserted ? telem::Counter::PreserveMisses
                              : telem::Counter::PreserveHits);
        if (Inserted) {
          PreserveQuery Q;
          Q.Preserved = &*D.Affine;
          Q.Killer = Killer.KillsWholeArray ? nullptr : &*Killer.Affine;
          Q.Pr = EffPr;
          Q.TripCount = Trip;
          Q.Mode = Spec.Mode;
          Q.Direction = Spec.Direction;
          CacheIt->second = computePreserveConstant(Q);
        }
        DistanceValue P = CacheIt->second;
        // Several killers compose; surviving instances must survive
        // each of them.
        DistanceValue &Slot =
            AfterGen ? PreserveAfter[Node * T + Idx]
                     : Preserve[Node * T + Idx];
        Slot = DistanceValue::min(Slot, P);
      }
    }
  }
}

DistanceValue FrameworkInstance::applyNode(unsigned Node, unsigned Idx,
                                           DistanceValue In) const {
  if (Node == Graph->getExit())
    return In.increment(TripCount);
  DistanceValue Out = DistanceValue::min(In, preserveAt(Idx, Node));
  if (!generatesAt(Idx, Node))
    return Out;
  Out = DistanceValue::max(Out, DistanceValue::finite(0));
  return DistanceValue::min(Out, preserveAfterGen(Idx, Node));
}

std::string FrameworkInstance::tupleHeader() const {
  std::ostringstream OS;
  OS << '(';
  for (unsigned Idx = 0; Idx != Groups.size(); ++Idx) {
    if (Idx)
      OS << ", ";
    OS << exprToString(*getTracked(Idx).Ref);
  }
  OS << ')';
  return OS.str();
}

namespace {

void tupleToStream(std::ostringstream &OS, const DistanceValue *Vals,
                   unsigned Size) {
  OS << '(';
  for (unsigned I = 0; I != Size; ++I) {
    if (I)
      OS << ", ";
    OS << Vals[I].toString();
  }
  OS << ')';
}

} // namespace

std::string ardf::tupleToString(const DistanceTuple &T) {
  std::ostringstream OS;
  tupleToStream(OS, T.data(), T.size());
  return OS.str();
}

std::string ardf::tupleToString(DistanceMatrix::ConstRow Row) {
  std::ostringstream OS;
  tupleToStream(OS, Row.begin(), Row.size());
  return OS.str();
}

std::ostream &ardf::operator<<(std::ostream &OS, const DistanceMatrix &M) {
  for (unsigned Node = 0; Node != M.numNodes(); ++Node)
    OS << "\n  [" << Node << "] " << tupleToString(M[Node]);
  return OS;
}

namespace {

/// Shared solver state and passes. Writes into a caller-owned
/// SolveResult so a SolveWorkspace can recycle the matrices; the pass
/// loop itself never allocates.
class Solver {
public:
  Solver(const FrameworkInstance &FW, const SolverOptions &Opts,
         SolveResult &Result)
      : FW(FW), Opts(Opts), Result(Result),
        NumNodes(FW.getGraph().getNumNodes()),
        NumTracked(FW.getNumTracked()) {}

  /// Enables derivation recording into \p P (RecordProvenance mode;
  /// \p P must have been captured from this solver's instance).
  void setProvenance(SolveProvenance *P) { Prov = P; }

  void run() {
    detail::BudgetGuard Guard(Opts.Budget, FW.getSpec().isMust(), NumNodes,
                              NumTracked);
    if (degradeIfBreached(Guard.checkCells()))
      return;
    if (FW.getSpec().isMust())
      initializationPass();
    else
      initializeMay();
    if (degradeIfBreached(Guard.check(Result.NodeVisits)))
      return;

    unsigned Prescribed = 2;
    if (Opts.Strat == SolverOptions::Strategy::PaperSchedule) {
      for (unsigned P = 0; P != Prescribed; ++P) {
        iteratePass();
        if (degradeIfBreached(Guard.check(Result.NodeVisits)))
          return;
      }
    } else {
      Result.Converged = false;
      for (unsigned P = 0; P != Opts.MaxPasses; ++P) {
        bool Changed = iteratePass();
        if (degradeIfBreached(Guard.check(Result.NodeVisits)))
          return;
        if (!Changed) {
          Result.Converged = true;
          break;
        }
      }
    }
  }

private:
  /// On a breach, overwrites both matrices with the problem's
  /// conservative lattice value (must: NoInstance, nothing provably
  /// available; may: AllInstances, anything may reach) and tags the
  /// result degraded. Sound by construction -- clients can only lose
  /// precision.
  bool degradeIfBreached(BreachReason Reason) {
    if (Reason == BreachReason::None)
      return false;
    DistanceValue Fill = FW.getSpec().isMust()
                             ? DistanceValue::noInstance()
                             : DistanceValue::allInstances();
    for (unsigned Node = 0; Node != NumNodes; ++Node) {
      DistanceMatrix::Row InRow = Result.In[Node];
      DistanceMatrix::Row OutRow = Result.Out[Node];
      for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
        InRow[Idx] = Fill;
        OutRow[Idx] = Fill;
      }
    }
    Result.Converged = true;
    Result.Outcome = SolveOutcome::Degraded;
    Result.Breach = Reason;
    return true;
  }

  /// The must-problem initialization pass (Section 3.2): optimistic T
  /// for references generated along the meet-over-all-paths, with the
  /// loop entry pinned to bottom.
  void initializationPass() {
    provBeginLayer(0);
    unsigned Source = FW.workingOrder().front();
    for (unsigned Node : FW.workingOrder()) {
      ++Result.NodeVisits;
      DistanceMatrix::Row InRow = Result.In[Node];
      DistanceMatrix::Row OutRow = Result.Out[Node];
      for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
        DistanceValue In = DistanceValue::noInstance();
        if (Node != Source)
          In = meetOverPreds(Node, Idx);
        DistanceValue Out = FW.generatesAt(Idx, Node)
                                ? DistanceValue::allInstances()
                                : In;
        InRow[Idx] = In;
        OutRow[Idx] = Out;
        if (Prov)
          provCell(Node, Idx, In, Out);
      }
    }
    snapshot("init");
  }

  /// The may-problem initial guess: bottom (= all instances) everywhere,
  /// predicting the maximal effect of the exit increment (Section 3.3).
  void initializeMay() {
    provBeginLayer(0);
    for (unsigned Node = 0; Node != NumNodes; ++Node)
      for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
        Result.In[Node][Idx] = DistanceValue::allInstances();
        Result.Out[Node][Idx] = DistanceValue::allInstances();
        if (Prov)
          provCell(Node, Idx, DistanceValue::allInstances(),
                   DistanceValue::allInstances());
      }
    snapshot("init");
  }

  DistanceValue meetOverPreds(unsigned Node, unsigned Idx) {
    const std::vector<unsigned> &Preds = FW.workingPreds(Node);
    assert(!Preds.empty() && "flow graph node without predecessors");
    DistanceValue V = Result.Out[Preds.front()][Idx];
    if (Prov)
      provMeetInput(Node, 0, Idx, V);
    for (unsigned I = 1; I < Preds.size(); ++I) {
      DistanceValue PV = Result.Out[Preds[I]][Idx];
      if (Prov)
        provMeetInput(Node, I, Idx, PV);
      V = FW.meet(V, PV);
    }
    return V;
  }

  /// One chaotic-iteration pass in working order; returns true if any
  /// value changed.
  bool iteratePass() {
    provBeginLayer(Result.Passes + 1);
    bool Changed = false;
    for (unsigned Node : FW.workingOrder()) {
      ++Result.NodeVisits;
      DistanceMatrix::Row InRow = Result.In[Node];
      DistanceMatrix::Row OutRow = Result.Out[Node];
      for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
        DistanceValue In = meetOverPreds(Node, Idx);
        DistanceValue Out = FW.applyNode(Node, Idx, In);
        if (In != InRow[Idx] || Out != OutRow[Idx])
          Changed = true;
        InRow[Idx] = In;
        OutRow[Idx] = Out;
        if (Prov)
          provCell(Node, Idx, In, Out);
      }
    }
    ++Result.Passes;
    snapshot("pass " + std::to_string(Result.Passes));
    return Changed;
  }

  /// Derivation-recording helpers (all no-ops unless setProvenance was
  /// called; the extra per-operand branch is confined to the reference
  /// engine, whose role is the executable spec, not speed).
  void provBeginLayer(unsigned L) {
    if (!Prov)
      return;
    CurLayer = L;
    Prov->Passes = L;
    size_t Cells = size_t(L + 1) * NumNodes * NumTracked;
    Prov->CellIn.resize(Cells, DistanceValue::noInstance());
    Prov->CellOut.resize(Cells, DistanceValue::noInstance());
    Prov->MeetIn.resize(size_t(L + 1) * Prov->PredList.size() * NumTracked,
                        DistanceValue::noInstance());
  }
  void provCell(unsigned Node, unsigned Idx, DistanceValue In,
                DistanceValue Out) {
    unsigned C = Prov->cellIndex(CurLayer, Node, Idx);
    Prov->CellIn[C] = In;
    Prov->CellOut[C] = Out;
  }
  void provMeetInput(unsigned Node, unsigned K, unsigned Idx,
                     DistanceValue V) {
    Prov->MeetIn[(CurLayer * Prov->PredList.size() +
                  Prov->PredOffset[Node] + K) *
                     NumTracked +
                 Idx] = V;
  }

  void snapshot(std::string Label) {
    if (!Opts.RecordHistory)
      return;
    PassSnapshot S;
    S.Label = std::move(Label);
    S.In = Result.In;
    S.Out = Result.Out;
    Result.History.push_back(std::move(S));
  }

  const FrameworkInstance &FW;
  const SolverOptions &Opts;
  SolveResult &Result;
  unsigned NumNodes;
  unsigned NumTracked;
  SolveProvenance *Prov = nullptr;
  unsigned CurLayer = 0;
};

/// Resets \p Result to the shape of \p FW, reusing matrix allocations.
/// Returns true when a matrix had to grow.
bool resetResult(SolveResult &Result, const FrameworkInstance &FW) {
  unsigned NumNodes = FW.getGraph().getNumNodes();
  unsigned NumTracked = FW.getNumTracked();
  bool GrewIn = Result.In.reset(NumNodes, NumTracked);
  bool GrewOut = Result.Out.reset(NumNodes, NumTracked);
  Result.NodeVisits = 0;
  Result.Passes = 0;
  Result.MeetOps = 0;
  Result.ApplyOps = 0;
  Result.Converged = true;
  Result.Outcome = SolveOutcome::Ok;
  Result.Breach = BreachReason::None;
  Result.History.clear();
  Result.Provenance.reset();
  return GrewIn || GrewOut;
}

/// Runs the Reference engine over \p FW into \p Result, with per-solve
/// span and counter telemetry (inert when no context is installed).
void runReference(const FrameworkInstance &FW, const SolverOptions &Opts,
                  SolveResult &Result) {
  telem::Span S("solve", "solver", FW.getSpec().Name);
  telem::LatencyTimer LT(telem::Histo::SolveNs);
  Solver Sol(FW, Opts, Result);
  std::shared_ptr<SolveProvenance> Prov;
  if (Opts.RecordProvenance) {
    Prov = std::make_shared<SolveProvenance>(SolveProvenance::capture(FW));
    Sol.setProvenance(Prov.get());
  }
  Sol.run();
  if (Prov) {
    Prov->Degraded = !Result.ok();
    Result.Provenance = std::move(Prov);
  }
  detail::finishSolveCounts(Result, FW.getSpec().isMust(),
                            FW.getGraph().getNumNodes(),
                            FW.getNumTracked(), FW.meetEdges(false),
                            FW.meetEdges(true));
  detail::recordSolveTelemetry(Result, FW.getSpec().isMust(),
                               FW.getGraph().getNumNodes(),
                               /*PackedEngine=*/false);
  if (S.active()) {
    S.arg("nodes", FW.getGraph().getNumNodes());
    S.arg("tracked", FW.getNumTracked());
    S.arg("node_visits", Result.NodeVisits);
    S.arg("passes", Result.Passes);
  }
}

} // namespace

const char *ardf::engineName(SolverOptions::Engine E) {
  switch (E) {
  case SolverOptions::Engine::Reference:
    return "reference";
  case SolverOptions::Engine::PackedKernel:
    return "packed";
  case SolverOptions::Engine::PackedSimd:
    return "simd";
  case SolverOptions::Engine::Summary:
    return "summary";
  }
  return "unknown";
}

bool ardf::parseEngineName(std::string_view Name,
                           SolverOptions::Engine &Out) {
  if (Name == "reference")
    Out = SolverOptions::Engine::Reference;
  else if (Name == "packed")
    Out = SolverOptions::Engine::PackedKernel;
  else if (Name == "simd")
    Out = SolverOptions::Engine::PackedSimd;
  else if (Name == "summary")
    Out = SolverOptions::Engine::Summary;
  else
    return false;
  return true;
}

const char *ardf::engineNameList() { return "reference, packed, simd, summary"; }

namespace {

/// One-shot summary solve for direct solveDataFlow calls: lower, then
/// apply if the summary can serve, else fall through to the kernel.
/// Repeated solvers should go through a LoopAnalysisSession, which
/// memoizes the summary beside the compiled program.
bool trySummary(const CompiledFlowProgram &CF, const SolverOptions &Opts,
                SolveResult &Out) {
  if (!summaryEligible(Opts))
    return false;
  FlowSummary S = FlowSummary::lower(CF);
  if (!S.Valid)
    return false;
  Out = applySummary(S, Opts);
  return true;
}

} // namespace

SolveResult ardf::solveDataFlow(const FrameworkInstance &FW,
                                const SolverOptions &Opts) {
  // Provenance recording exists only in the scalar solver: it overrides
  // the engine choice so explain flows can re-derive any fast-engine
  // result (bit-identical by the engines' oracle contract).
  if (Opts.Eng == SolverOptions::Engine::Summary &&
      !Opts.RecordProvenance) {
    CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
    SolveResult Result;
    if (trySummary(CF, Opts, Result))
      return Result;
    return solveCompiled(CF, Opts);
  }
  if (Opts.usesPackedKernel() && !Opts.RecordProvenance)
    return solveCompiled(CompiledFlowProgram::compile(FW), Opts);
  SolveResult Result;
  resetResult(Result, FW);
  runReference(FW, Opts, Result);
  return Result;
}

const SolveResult &ardf::solveDataFlow(const FrameworkInstance &FW,
                                       SolveWorkspace &WS,
                                       const SolverOptions &Opts) {
  if (Opts.Eng == SolverOptions::Engine::Summary &&
      !Opts.RecordProvenance) {
    CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
    if (summaryEligible(Opts)) {
      FlowSummary S = FlowSummary::lower(CF);
      if (S.Valid)
        return applySummary(S, WS, Opts);
    }
    return solveCompiled(CF, WS, Opts);
  }
  if (Opts.usesPackedKernel() && !Opts.RecordProvenance) {
    // One-shot compile; callers that solve repeatedly should compile
    // once (or go through a LoopAnalysisSession, which memoizes the
    // program) and use solveCompiled directly.
    CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
    return solveCompiled(CF, WS, Opts);
  }
  if (resetResult(WS.Result, FW))
    ++WS.Growths;
  ++WS.Solves;
  WS.WarmSummaryId = 0;
  runReference(FW, Opts, WS.Result);
  return WS.Result;
}
