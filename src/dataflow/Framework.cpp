//===- dataflow/Framework.cpp - Flow functions and solver ----------------===//

#include "dataflow/Framework.h"

#include "ir/PrettyPrinter.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace ardf;

FrameworkInstance::FrameworkInstance(const LoopFlowGraph &Graph,
                                     const Program &P, ProblemSpec Spec,
                                     const std::string &IVOverride,
                                     int64_t TripOverride)
    : Graph(&Graph), Spec(Spec),
      TripCount(IVOverride.empty() || IVOverride == Graph.getIndVar()
                    ? Graph.getTripCount()
                    : TripOverride),
      Universe(Graph, P, IVOverride) {
  selectTracked();

  // Working orientation: reverse postorder for forward problems, the
  // reversed sequence (a topological order of the reversed acyclic body
  // graph) for backward problems.
  Order = Graph.reversePostorder();
  if (Spec.isBackward())
    std::reverse(Order.begin(), Order.end());

  Preds.resize(Graph.getNumNodes());
  for (unsigned N = 0; N != Graph.getNumNodes(); ++N)
    Preds[N] = Spec.isBackward() ? Graph.getNode(N).Succs
                                 : Graph.getNode(N).Preds;

  computePr();
  computePreserves();
}

void FrameworkInstance::selectTracked() {
  OccToTracked.assign(Universe.size(), -1);
  // With grouping, occurrences of the same (array, affine subscript)
  // share one tuple element; maps by the canonical printed form.
  std::map<std::string, unsigned> GroupOf;
  for (const RefOccurrence &Occ : Universe.occurrences()) {
    if (!selects(Spec.Gen, Occ) || !Occ.isTrackable())
      continue;
    if (Spec.GroupByAccess) {
      std::string Key = Occ.arrayName() + "|" + Occ.Affine->A.toString() +
                        "|" + Occ.Affine->B.toString();
      auto [It, Inserted] = GroupOf.try_emplace(Key, Groups.size());
      if (Inserted)
        Groups.emplace_back();
      Groups[It->second].push_back(Occ.Id);
      OccToTracked[Occ.Id] = It->second;
      continue;
    }
    OccToTracked[Occ.Id] = Groups.size();
    Groups.push_back({Occ.Id});
  }

  GenAt.assign(Graph->getNumNodes() * Groups.size(), 0);
  for (unsigned Idx = 0; Idx != Groups.size(); ++Idx)
    for (unsigned OccId : Groups[Idx])
      GenAt[Universe.occurrence(OccId).Node * Groups.size() + Idx] = 1;
}

void FrameworkInstance::computePr() {
  unsigned N = Graph->getNumNodes();
  Pr.assign(Groups.size() * N, 1);
  for (unsigned Idx = 0; Idx != Groups.size(); ++Idx) {
    for (unsigned OccId : Groups[Idx]) {
      unsigned Home = Universe.occurrence(OccId).Node;
      for (unsigned Node = 0; Node != N; ++Node) {
        // pr(d, n) == 0 iff a generating node of d reaches n in the
        // working orientation within the same iteration, so the
        // distance-0 instance is in range (Section 3.1.2).
        bool Reaches = Spec.isBackward()
                           ? Graph->reachesIntraIteration(Node, Home)
                           : Graph->reachesIntraIteration(Home, Node);
        if (Reaches)
          Pr[Idx * N + Node] = 0;
      }
    }
  }
}

void FrameworkInstance::computePreserves() {
  unsigned N = Graph->getNumNodes();
  unsigned T = Groups.size();
  int64_t Trip = TripCount;
  Preserve.assign(N * T, DistanceValue::allInstances());
  PreserveAfter.assign(N * T, DistanceValue::allInstances());

  // Micro-position of an occurrence within its statement, in working
  // execution order: forward problems execute uses (0) before the def
  // (1); backward problems traverse the statement in reverse.
  auto microPos = [&](const RefOccurrence &Occ) {
    unsigned Forward = Occ.IsDef ? 1 : 0;
    return Spec.isBackward() ? 1 - Forward : Forward;
  };

  for (unsigned Node = 0; Node != N; ++Node) {
    for (unsigned KillId : Universe.occurrencesAt(Node)) {
      const RefOccurrence &Killer = Universe.occurrence(KillId);
      if (!selects(Spec.Kill, Killer))
        continue;
      for (unsigned Idx = 0; Idx != T; ++Idx) {
        const RefOccurrence &D = getTracked(Idx);
        if (D.arrayName() != Killer.arrayName())
          continue;
        // A killer that is itself a member regenerates the tracked
        // value in the same breath; its (distance-0) kill is subsumed.
        if (OccToTracked[KillId] == static_cast<int>(Idx))
          continue;
        // A killer in a generating node of d positioned after the
        // generation point applies post-generation, with the fresh
        // distance-0 instance already in range.
        bool GenNode = generatesAt(Idx, Node);
        bool AfterGen = false;
        if (GenNode)
          for (unsigned MemberId : Groups[Idx])
            if (Universe.occurrence(MemberId).Node == Node &&
                microPos(Killer) >
                    microPos(Universe.occurrence(MemberId)))
              AfterGen = true;
        PreserveQuery Q;
        Q.Preserved = &*D.Affine;
        Q.Killer = Killer.KillsWholeArray ? nullptr : &*Killer.Affine;
        Q.Pr = AfterGen ? 0 : pr(Idx, Node);
        Q.TripCount = Trip;
        Q.Mode = Spec.Mode;
        Q.Direction = Spec.Direction;
        DistanceValue P = computePreserveConstant(Q);
        // Several killers compose; surviving instances must survive
        // each of them.
        DistanceValue &Slot =
            AfterGen ? PreserveAfter[Node * T + Idx]
                     : Preserve[Node * T + Idx];
        Slot = DistanceValue::min(Slot, P);
      }
    }
  }
}

DistanceValue FrameworkInstance::applyNode(unsigned Node, unsigned Idx,
                                           DistanceValue In) const {
  if (Node == Graph->getExit())
    return In.increment(TripCount);
  DistanceValue Out = DistanceValue::min(In, preserveAt(Idx, Node));
  if (!generatesAt(Idx, Node))
    return Out;
  Out = DistanceValue::max(Out, DistanceValue::finite(0));
  return DistanceValue::min(Out, preserveAfterGen(Idx, Node));
}

std::string FrameworkInstance::tupleHeader() const {
  std::ostringstream OS;
  OS << '(';
  for (unsigned Idx = 0; Idx != Groups.size(); ++Idx) {
    if (Idx)
      OS << ", ";
    OS << exprToString(*getTracked(Idx).Ref);
  }
  OS << ')';
  return OS.str();
}

std::string ardf::tupleToString(const DistanceTuple &T) {
  std::ostringstream OS;
  OS << '(';
  for (unsigned I = 0; I != T.size(); ++I) {
    if (I)
      OS << ", ";
    OS << T[I].toString();
  }
  OS << ')';
  return OS.str();
}

namespace {

/// Shared solver state and passes.
class Solver {
public:
  Solver(const FrameworkInstance &FW, const SolverOptions &Opts)
      : FW(FW), Opts(Opts), NumNodes(FW.getGraph().getNumNodes()),
        NumTracked(FW.getNumTracked()) {
    Result.In.assign(NumNodes, DistanceTuple(NumTracked));
    Result.Out.assign(NumNodes, DistanceTuple(NumTracked));
  }

  SolveResult run() {
    if (FW.getSpec().isMust())
      initializationPass();
    else
      initializeMay();

    unsigned Prescribed = 2;
    if (Opts.Strat == SolverOptions::Strategy::PaperSchedule) {
      for (unsigned P = 0; P != Prescribed; ++P)
        iteratePass();
    } else {
      Result.Converged = false;
      for (unsigned P = 0; P != Opts.MaxPasses; ++P) {
        if (!iteratePass()) {
          Result.Converged = true;
          break;
        }
      }
    }
    return std::move(Result);
  }

private:
  /// The must-problem initialization pass (Section 3.2): optimistic T
  /// for references generated along the meet-over-all-paths, with the
  /// loop entry pinned to bottom.
  void initializationPass() {
    unsigned Source = FW.workingOrder().front();
    for (unsigned Node : FW.workingOrder()) {
      ++Result.NodeVisits;
      for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
        DistanceValue In = DistanceValue::noInstance();
        if (Node != Source)
          In = meetOverPreds(Node, Idx);
        Result.In[Node][Idx] = In;
        Result.Out[Node][Idx] = FW.generatesAt(Idx, Node)
                                    ? DistanceValue::allInstances()
                                    : In;
      }
    }
    snapshot("init");
  }

  /// The may-problem initial guess: bottom (= all instances) everywhere,
  /// predicting the maximal effect of the exit increment (Section 3.3).
  void initializeMay() {
    for (unsigned Node = 0; Node != NumNodes; ++Node)
      for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
        Result.In[Node][Idx] = DistanceValue::allInstances();
        Result.Out[Node][Idx] = DistanceValue::allInstances();
      }
    snapshot("init");
  }

  DistanceValue meetOverPreds(unsigned Node, unsigned Idx) {
    const std::vector<unsigned> &Preds = FW.workingPreds(Node);
    assert(!Preds.empty() && "flow graph node without predecessors");
    DistanceValue V = Result.Out[Preds.front()][Idx];
    for (unsigned I = 1; I < Preds.size(); ++I)
      V = FW.meet(V, Result.Out[Preds[I]][Idx]);
    return V;
  }

  /// One chaotic-iteration pass in working order; returns true if any
  /// value changed.
  bool iteratePass() {
    bool Changed = false;
    for (unsigned Node : FW.workingOrder()) {
      ++Result.NodeVisits;
      for (unsigned Idx = 0; Idx != NumTracked; ++Idx) {
        DistanceValue In = meetOverPreds(Node, Idx);
        DistanceValue Out = FW.applyNode(Node, Idx, In);
        if (In != Result.In[Node][Idx] || Out != Result.Out[Node][Idx])
          Changed = true;
        Result.In[Node][Idx] = In;
        Result.Out[Node][Idx] = Out;
      }
    }
    ++Result.Passes;
    snapshot("pass " + std::to_string(Result.Passes));
    return Changed;
  }

  void snapshot(std::string Label) {
    if (!Opts.RecordHistory)
      return;
    PassSnapshot S;
    S.Label = std::move(Label);
    S.In = Result.In;
    S.Out = Result.Out;
    Result.History.push_back(std::move(S));
  }

  const FrameworkInstance &FW;
  const SolverOptions &Opts;
  unsigned NumNodes;
  unsigned NumTracked;
  SolveResult Result;
};

} // namespace

SolveResult ardf::solveDataFlow(const FrameworkInstance &FW,
                                const SolverOptions &Opts) {
  return Solver(FW, Opts).run();
}
