//===- dataflow/SolverBudget.cpp - Per-solve resource ceilings ------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//

#include "dataflow/SolverBudget.h"

using namespace ardf;

const char *ardf::breachReasonName(BreachReason R) {
  switch (R) {
  case BreachReason::None:
    return "none";
  case BreachReason::NodeVisits:
    return "node-visits";
  case BreachReason::Deadline:
    return "deadline";
  case BreachReason::MatrixCells:
    return "matrix-cells";
  case BreachReason::NonConvergence:
    return "non-convergence";
  case BreachReason::FaultInjected:
    return "fault-injected";
  }
  return "unknown";
}
