//===- dataflow/SolverTelemetry.h - Shared solve accounting ----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Internal helper shared by the Reference solver (Framework.cpp) and the
// packed kernel (KernelSolver.cpp): fills the operation-count fields of
// a SolveResult from the precomputed per-pass meet-edge totals (O(1),
// always on, so the two engines stay bit-identical including counters)
// and flushes one solve's telemetry to the current context, if any.
//
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_SOLVERTELEMETRY_H
#define ARDF_DATAFLOW_SOLVERTELEMETRY_H

#include "dataflow/Framework.h"
#include "telemetry/Telemetry.h"

namespace ardf {
namespace detail {

/// Derives MeetOps/ApplyOps for a finished solve. Both engines evaluate
/// the meet at every node of every iteration pass plus (must problems)
/// every non-source node of the initialization pass, and apply the flow
/// function at every (node, tracked) cell of every iteration pass.
inline void finishSolveCounts(SolveResult &Result, bool IsMust,
                              unsigned NumNodes, unsigned NumTracked,
                              unsigned MeetEdgesAll,
                              unsigned MeetEdgesNoSource) {
  uint64_t T = NumTracked;
  Result.MeetOps =
      T * (static_cast<uint64_t>(MeetEdgesAll) * Result.Passes +
           (IsMust ? MeetEdgesNoSource : 0));
  Result.ApplyOps =
      static_cast<uint64_t>(NumNodes) * T * Result.Passes;
  // Running out of passes without stabilizing is a (benign) budget
  // exhaustion: the last iterate is still conservative for these
  // descending chains, but clients deserve the degraded tag. Breach
  // reasons from the BudgetGuard take precedence.
  if (!Result.Converged && Result.Outcome == SolveOutcome::Ok) {
    Result.Outcome = SolveOutcome::Degraded;
    Result.Breach = BreachReason::NonConvergence;
  }
}

/// Flushes one solve into the current telemetry context: run/visit/op
/// counters plus the paper's cost-bound pair (3N for must, 2N for may).
inline void recordSolveTelemetry(const SolveResult &Result, bool IsMust,
                                 unsigned NumNodes, bool PackedEngine) {
  telem::Telemetry *T = telem::Telemetry::current();
  if (!T)
    return;
  T->add(PackedEngine ? telem::Counter::SolverRunsPacked
                      : telem::Counter::SolverRunsReference);
  T->add(telem::Counter::SolverNodeVisits, Result.NodeVisits);
  T->add(telem::Counter::SolverPasses, Result.Passes);
  T->add(telem::Counter::SolverMeetOps, Result.MeetOps);
  T->add(telem::Counter::SolverApplyOps, Result.ApplyOps);
  if (Result.Outcome == SolveOutcome::Ok) {
    // The 3N/2N cost-bound pairs cover clean solves only: a degraded
    // solve deliberately did less (or, unconverged, more) work than the
    // schedule, and would make the bound ledgers meaningless.
    if (IsMust) {
      T->add(telem::Counter::MustNodeVisits, Result.NodeVisits);
      T->add(telem::Counter::MustVisitBound, 3u * NumNodes);
    } else {
      T->add(telem::Counter::MayNodeVisits, Result.NodeVisits);
      T->add(telem::Counter::MayVisitBound, 2u * NumNodes);
    }
  } else {
    T->add(telem::Counter::DegradedSolves);
    if (Result.Breach == BreachReason::NodeVisits ||
        Result.Breach == BreachReason::Deadline ||
        Result.Breach == BreachReason::MatrixCells)
      T->add(telem::Counter::BudgetBreaches);
  }
}

} // namespace detail
} // namespace ardf

#endif // ARDF_DATAFLOW_SOLVERTELEMETRY_H
