//===- dataflow/References.h - Reference universe of a loop ----*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects every subscripted reference occurrence of a loop body into a
/// ReferenceUniverse: the raw material from which a problem's G and K
/// sets (Section 3.1) are selected. Each occurrence carries its flow
/// graph node, def/use role, and affine view a*iv + b with respect to the
/// loop's induction variable.
///
/// References inside summary nodes (nested loops) are collected with the
/// paper's Section 3.2 conventions: they participate as generating
/// references only when their linearized subscript is affine in the
/// *outer* induction variable with inner-IV-free coefficients, and they
/// conservatively kill all instances of same-array references otherwise
/// (and, as killers, always kill the whole array).
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_REFERENCES_H
#define ARDF_DATAFLOW_REFERENCES_H

#include "affine/AffineAccess.h"
#include "cfg/LoopFlowGraph.h"

#include <optional>
#include <string>
#include <vector>

namespace ardf {

/// One occurrence of a subscripted reference in the loop body.
struct RefOccurrence {
  /// Index of this occurrence in ReferenceUniverse::occurrences().
  unsigned Id = 0;

  /// Flow graph node containing the occurrence.
  unsigned Node = 0;

  /// The syntactic reference (never null).
  const ArrayRefExpr *Ref = nullptr;

  /// The statement the reference occurs in: the AssignStmt for
  /// assignment defs/uses, the IfStmt for guard-condition uses. Never
  /// null. Transformations key rewrite plans on this.
  const Stmt *OwnerStmt = nullptr;

  /// True for definitions (assignment targets), false for uses.
  bool IsDef = false;

  /// True when the occurrence sits inside a summarized inner loop.
  bool InSummary = false;

  /// Affine view with respect to the analyzed loop's induction variable;
  /// nullopt when the subscript is not affine (then the occurrence can
  /// only act as a whole-array kill).
  std::optional<AffineAccess> Affine;

  /// True when, acting as a killing reference, this occurrence must be
  /// assumed to kill every instance of any same-array reference:
  /// non-affine subscripts and references inside summary nodes.
  bool KillsWholeArray = false;

  const std::string &arrayName() const { return Ref->getName(); }

  /// True when the occurrence can be tracked by the framework (generate
  /// instances): it needs a valid affine view.
  bool isTrackable() const { return Affine.has_value(); }
};

/// All subscripted reference occurrences of one loop body.
class ReferenceUniverse {
public:
  /// Collects occurrences for \p Graph. \p P supplies array declarations
  /// for multi-dimensional linearization. When \p IVOverride is
  /// non-empty, affine views are taken with respect to that variable
  /// instead of the graph's own induction variable -- the paper's
  /// "separate analysis of the loop body with respect to an enclosing
  /// loop" (Section 3.6), under which the local induction variable acts
  /// as a symbolic constant.
  ReferenceUniverse(const LoopFlowGraph &Graph, const Program &P,
                    const std::string &IVOverride = "");

  /// The induction variable the affine views are taken against.
  const std::string &getIV() const { return IV; }

  const std::vector<RefOccurrence> &occurrences() const { return Occs; }
  const RefOccurrence &occurrence(unsigned Id) const { return Occs[Id]; }
  unsigned size() const { return Occs.size(); }

  /// Ids of the occurrences located in flow graph node \p Node.
  const std::vector<unsigned> &occurrencesAt(unsigned Node) const {
    return ByNode[Node];
  }

  /// Access-class id of trackable occurrence \p Id: occurrences of the
  /// same array with the same affine subscript form one class. This is
  /// the problem-independent core of the GroupByAccess equivalence (and
  /// the identity preserve-constant caching keys on); untrackable
  /// occurrences have no class (returns noAccessClass).
  unsigned accessClass(unsigned Id) const { return ClassOf[Id]; }
  unsigned numAccessClasses() const { return NumClasses; }
  static constexpr unsigned noAccessClass = ~0u;

  const LoopFlowGraph &getGraph() const { return *Graph; }
  const Program &getProgram() const { return *Prog; }

private:
  void collectFromNode(unsigned Node);
  void collectExpr(const Expr &E, unsigned Node, const Stmt &Owner,
                   bool InSummary);
  void addOccurrence(const ArrayRefExpr &Ref, unsigned Node,
                     const Stmt &Owner, bool IsDef, bool InSummary);
  void collectSummary(const DoLoopStmt &Inner, unsigned Node);
  void computeAccessClasses();

  const LoopFlowGraph *Graph;
  const Program *Prog;
  std::string IV;
  std::vector<RefOccurrence> Occs;
  std::vector<std::vector<unsigned>> ByNode;
  std::vector<unsigned> ClassOf;
  unsigned NumClasses = 0;
};

} // namespace ardf

#endif // ARDF_DATAFLOW_REFERENCES_H
