//===- dataflow/SolverBudget.h - Per-solve resource ceilings ---*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource governance for one data flow solve. A SolverBudget puts
/// ceilings on node visits (either absolute or as a slack factor over
/// the paper's 3N/2N schedule), wall-clock time, and matrix cells. Both
/// engines check the budget only at pass boundaries -- the hot inner
/// loops stay untouched -- so enforcement granularity is one full pass.
///
/// On breach the solve does not fail: it returns a degraded-but-sound
/// result, every IN/OUT cell filled with the problem's conservative
/// lattice value (NoInstance, the must-problem bottom: "no instance
/// provably available"; AllInstances, the may-problem top: "any instance
/// may reach"). Clients that consume such a solution can only miss
/// optimizations, never apply an unsafe one. The outcome and the breach
/// reason ride on SolveResult::Outcome / SolveResult::Breach.
///
/// A default-constructed budget (all fields 0) disables every check;
/// the pass-boundary guard then costs two integer compares plus one
/// relaxed atomic load (the failpoint fast path) per pass -- the
/// alloc-counting suite holds the solver hot paths to zero new
/// allocations with the budget off.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_SOLVERBUDGET_H
#define ARDF_DATAFLOW_SOLVERBUDGET_H

#include "support/FailPoint.h"
#include "telemetry/Telemetry.h"

#include <cstdint>

namespace ardf {

/// How a solve ended. Degraded means the result is the documented
/// conservative fill (or, for NonConvergence, the last iterate) -- sound
/// but imprecise. Failed never appears on a SolveResult (a solve that
/// cannot even produce a conservative answer throws instead); it is the
/// driver-level status of a loop whose analysis threw.
enum class SolveOutcome : uint8_t { Ok, Degraded, Failed };

/// Why a solve degraded (SolveOutcome::Degraded) or a loop failed.
enum class BreachReason : uint8_t {
  None,
  NodeVisits,     ///< Visit ceiling (slack * schedule, or absolute) hit.
  Deadline,       ///< Wall-clock deadline passed at a pass boundary.
  MatrixCells,    ///< nodes * tracked exceeds the matrix-cell cap.
  NonConvergence, ///< IterateToFixpoint exhausted MaxPasses.
  FaultInjected   ///< A solver.pass failpoint forced a breach.
};

/// Display name of \p R, e.g. "node-visits" (diagnostics, traces).
const char *breachReasonName(BreachReason R);

/// Per-solve resource ceilings. Every field 0 (or 0.0) disables that
/// check; a default-constructed budget enforces nothing.
struct SolverBudget {
  /// Visit ceiling as a multiple of the paper schedule (3N for must,
  /// 2N for may): the solve degrades once visits exceed
  /// VisitSlack * schedule. 1.0 admits exactly the paper schedule;
  /// values below 1.0 cut solves short; values above admit that much
  /// fixpoint iteration. 0 disables.
  double VisitSlack = 0.0;

  /// Absolute node-visit ceiling; combined with VisitSlack the tighter
  /// bound wins. 0 disables.
  uint64_t MaxNodeVisits = 0;

  /// Wall-clock deadline for one solve, in nanoseconds, checked at pass
  /// boundaries (a pass always completes). 0 disables.
  uint64_t DeadlineNs = 0;

  /// Ceiling on nodes * tracked cells. A breach is detected before any
  /// pass runs: the solve skips all solving (and the packed engine's
  /// working buffers) and returns the conservative fill immediately.
  /// 0 disables.
  uint64_t MaxMatrixCells = 0;

  bool enabled() const {
    return VisitSlack > 0.0 || MaxNodeVisits != 0 || DeadlineNs != 0 ||
           MaxMatrixCells != 0;
  }

  friend bool operator==(const SolverBudget &A, const SolverBudget &B) {
    return A.VisitSlack == B.VisitSlack &&
           A.MaxNodeVisits == B.MaxNodeVisits &&
           A.DeadlineNs == B.DeadlineNs &&
           A.MaxMatrixCells == B.MaxMatrixCells;
  }
  friend bool operator!=(const SolverBudget &A, const SolverBudget &B) {
    return !(A == B);
  }
};

namespace detail {

/// Pass-boundary budget enforcement shared by both engines. Constructed
/// once per solve; resolves the slack factor against the problem's
/// schedule and reads the start clock only when a deadline is set.
class BudgetGuard {
public:
  BudgetGuard(const SolverBudget &B, bool IsMust, unsigned NumNodes,
              unsigned NumTracked)
      : CellCap(B.MaxMatrixCells),
        Cells(static_cast<uint64_t>(NumNodes) * NumTracked),
        DeadlineNs(B.DeadlineNs) {
    if (B.VisitSlack > 0.0) {
      double Sched =
          static_cast<double>((IsMust ? 3u : 2u)) * NumNodes * B.VisitSlack;
      VisitCap = Sched < 1.0 ? 1 : static_cast<uint64_t>(Sched);
    }
    if (B.MaxNodeVisits != 0 &&
        (VisitCap == 0 || B.MaxNodeVisits < VisitCap))
      VisitCap = B.MaxNodeVisits;
    if (DeadlineNs != 0)
      StartNs = telem::wallNowNs();
  }

  /// Pre-solve admission check: the matrix-cell cap.
  BreachReason checkCells() const {
    if (CellCap != 0 && Cells > CellCap)
      return BreachReason::MatrixCells;
    return BreachReason::None;
  }

  /// Pass-boundary check. Evaluates the solver.pass failpoint first, so
  /// a Breach-armed failpoint forces degradation deterministically even
  /// with no budget set.
  BreachReason check(uint64_t NodeVisits) const {
    if (failpoint::evaluate("solver.pass") == failpoint::Fired::Breach)
      return BreachReason::FaultInjected;
    if (VisitCap != 0 && NodeVisits > VisitCap)
      return BreachReason::NodeVisits;
    if (DeadlineNs != 0 && telem::wallNowNs() - StartNs > DeadlineNs)
      return BreachReason::Deadline;
    return BreachReason::None;
  }

private:
  uint64_t VisitCap = 0;
  uint64_t CellCap = 0;
  uint64_t Cells = 0;
  uint64_t DeadlineNs = 0;
  uint64_t StartNs = 0;
};

} // namespace detail
} // namespace ardf

#endif // ARDF_DATAFLOW_SOLVERBUDGET_H
