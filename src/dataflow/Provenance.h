//===- dataflow/Provenance.h - Solution derivation recording ---*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derivation provenance for the reference engine. When
/// SolverOptions::RecordProvenance is set, the scalar solver records,
/// for every schedule layer (the initialization pass is layer 0, each
/// iteration pass the next layer), the post-meet IN and post-apply OUT
/// value of every cell plus every meet operand exactly as it was read --
/// enough to re-derive any solution cell offline: which reference
/// generated it (stmt + location), which preserve constants it survived,
/// at which meet points another path lowered/raised it (and what the
/// losing values were), which pass settled it, and which back-edge
/// increments produced its iteration distance.
///
/// The fast engines (kernel, SIMD, summary) never record; explain flows
/// re-solve the loop through the reference engine on demand and
/// cross-check the result bit-identical against the cached fast-engine
/// solution (the engines are oracle-tested equal, so this never loses
/// information).
///
/// Two consumers are built on the raw recording:
///  - buildDerivation interns the backward slice of one cell into a
///    compact DAG of derivation nodes (shared sub-derivations appear
///    once), printable as a tree and walkable as an evidence trail.
///  - replayProvenance re-applies every recorded derivation step from
///    the recorded constants and meet operands and verifies each value
///    bit-for-bit -- the test-suite oracle that the recording really is
///    the derivation and not a parallel reconstruction.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_PROVENANCE_H
#define ARDF_DATAFLOW_PROVENANCE_H

#include "ir/SourceLoc.h"
#include "lattice/Distance.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ardf {

class FrameworkInstance;

/// The complete recording of one reference-engine solve. Layers:
/// layer 0 is the initialization pass (must: optimistic seed with meets
/// over already-written cells; may: the all-instances guess, no meets),
/// layers 1..Passes are the iteration passes.
struct SolveProvenance {
  unsigned NumNodes = 0;
  unsigned NumTracked = 0;
  /// Iteration passes recorded; total layers = Passes + 1.
  unsigned Passes = 0;
  bool IsMust = true;
  bool Backward = false;
  /// True when the solve degraded (budget breach / fault): per-cell
  /// recordings stop at the breach and must not be interpreted.
  bool Degraded = false;
  int64_t TripCount = UnknownTripCount;
  std::string ProblemName;
  unsigned ExitNode = 0;
  unsigned SourceNode = 0;
  /// Working traversal order (forward: RPO; backward: reversed).
  std::vector<unsigned> Order;
  /// Position of each node in Order (inverse permutation).
  std::vector<unsigned> OrderPos;
  /// Working predecessor lists, flattened: node N's predecessors are
  /// PredList[PredOffset[N] .. PredOffset[N+1]).
  std::vector<unsigned> PredOffset;
  std::vector<unsigned> PredList;

  /// One tracked tuple element (the generating reference; grouped
  /// problems use the representative member).
  struct TrackedInfo {
    unsigned OccId = 0;
    /// Flow node the representative is generated in.
    unsigned Node = 0;
    SourceLoc Loc;
    /// Rendered reference text, e.g. "A[i-1]".
    std::string RefText;
    bool IsDef = false;
  };
  std::vector<TrackedInfo> Tracked;

  struct NodeInfo {
    /// Human label, e.g. "3: C[i] = B[i-1]".
    std::string Label;
    SourceLoc Loc;
    bool IsExit = false;
  };
  std::vector<NodeInfo> Nodes;

  /// Transfer constants per (node, tracked): index Node*NumTracked+Idx.
  std::vector<DistanceValue> Preserve;
  std::vector<DistanceValue> PreserveAfter;
  std::vector<char> GenAt;

  /// Recorded cell values per layer:
  /// CellIn/CellOut[(Layer*NumNodes + Node)*NumTracked + Idx].
  std::vector<DistanceValue> CellIn;
  std::vector<DistanceValue> CellOut;
  /// Meet operands exactly as read:
  /// MeetIn[(Layer*PredList.size() + PredOffset[Node]+K)*NumTracked+Idx].
  /// Layer-0 slots of a may problem (and of the pinned must source) are
  /// unused and hold NoInstance.
  std::vector<DistanceValue> MeetIn;

  unsigned numPreds(unsigned Node) const {
    return PredOffset[Node + 1] - PredOffset[Node];
  }
  unsigned pred(unsigned Node, unsigned K) const {
    return PredList[PredOffset[Node] + K];
  }
  unsigned cellIndex(unsigned Layer, unsigned Node, unsigned Idx) const {
    return (Layer * NumNodes + Node) * NumTracked + Idx;
  }
  DistanceValue in(unsigned Layer, unsigned Node, unsigned Idx) const {
    return CellIn[cellIndex(Layer, Node, Idx)];
  }
  DistanceValue out(unsigned Layer, unsigned Node, unsigned Idx) const {
    return CellOut[cellIndex(Layer, Node, Idx)];
  }
  DistanceValue meetInput(unsigned Layer, unsigned Node, unsigned K,
                          unsigned Idx) const {
    return MeetIn[(Layer * PredList.size() + PredOffset[Node] + K) *
                      NumTracked +
                  Idx];
  }

  /// The layer a predecessor's OUT was taken from when node \p Node met
  /// at layer \p Layer: the current layer when the predecessor precedes
  /// \p Node in working order (already visited this pass), the previous
  /// one across the back edge.
  unsigned predLayer(unsigned Layer, unsigned Node, unsigned K) const {
    unsigned P = pred(Node, K);
    return (OrderPos[P] < OrderPos[Node] || Layer == 0) ? Layer : Layer - 1;
  }

  /// The first layer at (and after) which the queried cell's value never
  /// changed -- the schedule pass that settled it.
  unsigned settledLayer(unsigned Node, unsigned Idx, bool IsIn) const;

  /// Re-applies the transfer function of \p Node to \p In from the
  /// recorded constants (the offline mirror of
  /// FrameworkInstance::applyNode).
  DistanceValue applyTransfer(unsigned Node, unsigned Idx,
                              DistanceValue In) const;

  /// Captures the static shape + metadata of \p FW (cells are filled by
  /// the solver as it runs).
  static SolveProvenance capture(const FrameworkInstance &FW);
};

/// One interned derivation step. A node is identified by (kind, layer,
/// flow node); the tracked index is fixed per graph.
struct DerivationNode {
  enum class Kind {
    /// Layer-0 OUT: the must initialization seed or the may guess.
    Init,
    /// IN of (layer, node): the meet over predecessor OUTs.
    Meet,
    /// OUT of (layer, node): the flow function applied to IN. At the
    /// exit node this is the back-edge increment.
    Transfer
  };
  Kind K = Kind::Init;
  unsigned Layer = 0;
  unsigned Node = 0;
  DistanceValue Value;
  /// Operand derivation node ids (Meet: one per predecessor; Transfer:
  /// the IN it was applied to; Init: none).
  std::vector<uint32_t> Inputs;
  /// Meet only: operand index whose value equals the result (the
  /// "winning" path; -1 otherwise).
  int Winner = -1;
  /// Meet only: operand values exactly as read (the losing values).
  std::vector<DistanceValue> InputValues;
};

/// The backward slice of one solution cell as an interned DAG.
struct DerivationGraph {
  std::vector<DerivationNode> Nodes;
  uint32_t Root = 0;
  unsigned QueryNode = 0;
  unsigned QueryIdx = 0;
  bool QueryIsIn = true;
  /// The layer that settled the queried cell.
  unsigned SettledLayer = 0;

  const DerivationNode &root() const { return Nodes[Root]; }
};

/// Builds the derivation DAG of cell (\p Node, \p Idx) of the final
/// solution (IN side when \p IsIn). \p P must be a non-degraded
/// recording.
DerivationGraph buildDerivation(const SolveProvenance &P, unsigned Node,
                                unsigned Idx, bool IsIn = true);

/// Pretty-prints \p G as an indented tree with per-step explanations
/// ("met 2 paths", "preserved through", "back edge: distance + 1", ...).
/// Shared sub-derivations print once and are referenced by id after.
void printDerivation(std::ostream &OS, const SolveProvenance &P,
                     const DerivationGraph &G);

/// One chronological evidence step of a derivation (for remarks, SARIF
/// codeFlows, and the text because-trail).
struct ProvenanceStep {
  SourceLoc Loc;
  std::string Message;
};

/// Flattens the winning path of \p G into chronological steps: the
/// generating reference first, then every value-changing transfer, meet
/// (with the losing value), and back-edge increment, ending at the
/// queried cell.
std::vector<ProvenanceStep> derivationTrail(const SolveProvenance &P,
                                            const DerivationGraph &G);

/// Serializes \p G as one compact JSON object (nodes, edges, values,
/// the settled layer) for the JSON renderer and SARIF properties.
std::string derivationToJson(const SolveProvenance &P,
                             const DerivationGraph &G);

/// Re-applies every recorded derivation step: recomputes each layer's
/// meets from the recorded operands, checks each operand against the
/// predecessor cell it claims to be, and recomputes each transfer from
/// the recorded constants; every value must match the recording
/// bit-for-bit. Returns false (with a diagnostic in \p WhyNot, if
/// non-null) on the first mismatch. Degraded recordings replay
/// vacuously true (nothing was recorded).
bool replayProvenance(const SolveProvenance &P,
                      std::string *WhyNot = nullptr);

} // namespace ardf

#endif // ARDF_DATAFLOW_PROVENANCE_H
