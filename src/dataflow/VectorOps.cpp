//===- dataflow/VectorOps.cpp - SIMD row operations ----------------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Backend tables for VectorOps.h. The x86 backends carry per-function
// target attributes, so this file compiles with the baseline ISA and
// the binary still contains AVX2/AVX-512 code paths -- rowOps() decides
// at runtime which one the host may execute. AVX2 has no unsigned
// 64-bit min/max or compare, so those backends bias both operands by
// 2^63 (an order isomorphism from unsigned to signed order) and use the
// signed compare; AVX-512F and AArch64 NEON compare unsigned natively.
//
//===----------------------------------------------------------------------===//

#include "dataflow/VectorOps.h"

#include "lattice/Distance.h"
#include "lattice/PackedDistance.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <type_traits>

#if defined(__x86_64__) || defined(_M_X64)
#define ARDF_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define ARDF_SIMD_NEON 1
#include <arm_neon.h>
#endif

using namespace ardf;
using simd::Isa;
using simd::RowOps;
using simd::RowOps32;

//===----------------------------------------------------------------------===//
// Scalar backend: portable loops, the executable specification the SIMD
// backends are tested bit-identical against. Simple enough that the
// compiler auto-vectorizes them for whatever ISA the build targets.
//===----------------------------------------------------------------------===//

namespace {

void minIntoScalar(uint64_t *Dst, const uint64_t *Src, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = std::min(Dst[I], Src[I]);
}

void maxIntoScalar(uint64_t *Dst, const uint64_t *Src, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = std::max(Dst[I], Src[I]);
}

void minRowsScalar(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                   size_t N) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = std::min(A[I], B[I]);
}

void incrementScalar(uint64_t *Dst, const uint64_t *Src, size_t N,
                     uint64_t Bound) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = packed::increment(Src[I], Bound);
}

uint64_t xorAccumScalar(const uint64_t *A, const uint64_t *B, size_t N) {
  uint64_t Acc = 0;
  for (size_t I = 0; I != N; ++I)
    Acc |= A[I] ^ B[I];
  return Acc;
}

void unpackScalar(DistanceValue *Dst, const uint64_t *Src, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = packed::unpack(Src[I]);
}

constexpr RowOps ScalarOps = {
    Isa::Scalar,
    minIntoScalar,
    maxIntoScalar,
    minRowsScalar,
    incrementScalar,
    xorAccumScalar,
    unpackScalar,
};

// Narrowed-cell scalar backend: same loops over uint32_t.

void minInto32Scalar(uint32_t *Dst, const uint32_t *Src, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = std::min(Dst[I], Src[I]);
}

void maxInto32Scalar(uint32_t *Dst, const uint32_t *Src, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = std::max(Dst[I], Src[I]);
}

void minRows32Scalar(uint32_t *Dst, const uint32_t *A, const uint32_t *B,
                     size_t N) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = std::min(A[I], B[I]);
}

void increment32Scalar(uint32_t *Dst, const uint32_t *Src, size_t N,
                       uint32_t Bound) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = packed::increment32(Src[I], Bound);
}

uint32_t xorAccum32Scalar(const uint32_t *A, const uint32_t *B, size_t N) {
  uint32_t Acc = 0;
  for (size_t I = 0; I != N; ++I)
    Acc |= A[I] ^ B[I];
  return Acc;
}

void unpack32Scalar(DistanceValue *Dst, const uint32_t *Src, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = packed::unpack32(Src[I]);
}

constexpr RowOps32 ScalarOps32 = {
    Isa::Scalar,
    minInto32Scalar,
    maxInto32Scalar,
    minRows32Scalar,
    increment32Scalar,
    xorAccum32Scalar,
    unpack32Scalar,
};

//===----------------------------------------------------------------------===//
// AVX2 backend (x86-64): 4 lanes per step, signed compares over
// sign-biased operands, scalar tails.
//===----------------------------------------------------------------------===//

#if ARDF_SIMD_X86

/// The vectorized unpack stores DistanceValue cells as {low qword = tag
/// byte, high qword = distance}. DistanceValue's tag encoding is
/// private, so the three tag byte values are read back from real
/// objects here rather than hard-coded; equality on DistanceValue is
/// memberwise, so the zeroed padding these stores produce compares
/// equal to constructor-built values.
struct UnpackImages {
  long long TagNo, TagFinite, TagAll;
};

UnpackImages computeUnpackImages() {
  static_assert(sizeof(DistanceValue) == 16,
                "SIMD unpack assumes 16-byte DistanceValue cells");
  static_assert(std::is_trivially_copyable_v<DistanceValue>,
                "SIMD unpack stores raw bytes into DistanceValue");
  auto TagOf = [](DistanceValue V) {
    unsigned char Byte;
    std::memcpy(&Byte, &V, 1);
    return static_cast<long long>(Byte);
  };
  // Sanity-check the {tag, distance} qword split the stores rely on.
  DistanceValue Probe = DistanceValue::finite(0x1122334455667788LL);
  uint64_t High;
  std::memcpy(&High, reinterpret_cast<const char *>(&Probe) + 8, 8);
  assert(High == 0x1122334455667788ULL &&
         "SIMD unpack assumes the distance occupies the high qword");
  (void)High;
  return {TagOf(DistanceValue::noInstance()), TagOf(DistanceValue::finite(0)),
          TagOf(DistanceValue::allInstances())};
}

const UnpackImages &unpackImages() {
  static const UnpackImages Images = computeUnpackImages();
  return Images;
}

#define ARDF_TGT_AVX2 __attribute__((target("avx2")))

ARDF_TGT_AVX2 inline __m256i signBias256() {
  return _mm256_set1_epi64x(static_cast<long long>(1ULL << 63));
}

/// Lanewise A > B in unsigned order.
ARDF_TGT_AVX2 inline __m256i cmpGtU64(__m256i A, __m256i B) {
  const __m256i Bias = signBias256();
  return _mm256_cmpgt_epi64(_mm256_xor_si256(A, Bias),
                            _mm256_xor_si256(B, Bias));
}

ARDF_TGT_AVX2 inline __m256i minU64(__m256i A, __m256i B) {
  return _mm256_blendv_epi8(A, B, cmpGtU64(A, B));
}

ARDF_TGT_AVX2 inline __m256i maxU64(__m256i A, __m256i B) {
  return _mm256_blendv_epi8(B, A, cmpGtU64(A, B));
}

ARDF_TGT_AVX2 void minIntoAvx2(uint64_t *Dst, const uint64_t *Src,
                               size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i D = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i S = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I), minU64(D, S));
  }
  for (; I != N; ++I)
    Dst[I] = std::min(Dst[I], Src[I]);
}

ARDF_TGT_AVX2 void maxIntoAvx2(uint64_t *Dst, const uint64_t *Src,
                               size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i D = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i S = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I), maxU64(D, S));
  }
  for (; I != N; ++I)
    Dst[I] = std::max(Dst[I], Src[I]);
}

ARDF_TGT_AVX2 void minRowsAvx2(uint64_t *Dst, const uint64_t *A,
                               const uint64_t *B, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i VA = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i VB = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I), minU64(VA, VB));
  }
  for (; I != N; ++I)
    Dst[I] = std::min(A[I], B[I]);
}

ARDF_TGT_AVX2 void incrementAvx2(uint64_t *Dst, const uint64_t *Src,
                                 size_t N, uint64_t Bound) {
  const __m256i Zero = _mm256_setzero_si256();
  const __m256i Ones = _mm256_set1_epi64x(-1);
  const __m256i One = _mm256_set1_epi64x(1);
  const __m256i Bias = signBias256();
  const __m256i BoundBiased = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(Bound)), Bias);
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i X = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    // NoInstance and AllInstances are fixed points of the increment.
    __m256i Fixed = _mm256_or_si256(_mm256_cmpeq_epi64(X, Zero),
                                    _mm256_cmpeq_epi64(X, Ones));
    __m256i Next = _mm256_add_epi64(X, _mm256_andnot_si256(Fixed, One));
    // Next < Bound keeps Next; otherwise clamp to AllInstances.
    __m256i Lt =
        _mm256_cmpgt_epi64(BoundBiased, _mm256_xor_si256(Next, Bias));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_blendv_epi8(Ones, Next, Lt));
  }
  for (; I != N; ++I)
    Dst[I] = packed::increment(Src[I], Bound);
}

ARDF_TGT_AVX2 uint64_t xorAccumAvx2(const uint64_t *A, const uint64_t *B,
                                    size_t N) {
  __m256i Acc = _mm256_setzero_si256();
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i VA = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i VB = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    Acc = _mm256_or_si256(Acc, _mm256_xor_si256(VA, VB));
  }
  __m128i Half = _mm_or_si128(_mm256_castsi256_si128(Acc),
                              _mm256_extracti128_si256(Acc, 1));
  uint64_t Tail = static_cast<uint64_t>(_mm_cvtsi128_si64(Half)) |
                  static_cast<uint64_t>(_mm_extract_epi64(Half, 1));
  for (; I != N; ++I)
    Tail |= A[I] ^ B[I];
  return Tail;
}

/// Rows at least this long stream their cells with non-temporal
/// stores: the 16B-per-cell export is the largest write stream in a
/// solve, the caller reads it well after the solve finishes, and NT
/// stores skip both the read-for-ownership traffic and the cache
/// pollution. Short rows keep ordinary stores (they are about to be
/// read and fit in cache anyway).
constexpr size_t NtStoreMinCells = 256;

ARDF_TGT_AVX2 void unpackAvx2(DistanceValue *Dst, const uint64_t *Src,
                              size_t N) {
  const UnpackImages &Images = unpackImages();
  const __m256i Zero = _mm256_setzero_si256();
  const __m256i Ones = _mm256_set1_epi64x(-1);
  const __m256i One = _mm256_set1_epi64x(1);
  const __m256i TagNo = _mm256_set1_epi64x(Images.TagNo);
  const __m256i TagFin = _mm256_set1_epi64x(Images.TagFinite);
  const __m256i TagAll = _mm256_set1_epi64x(Images.TagAll);
  unsigned char *Raw = reinterpret_cast<unsigned char *>(Dst);
  size_t I = 0;
  bool Stream = N >= NtStoreMinCells;
  if (Stream)
    // Scalar-unpack up to the first 32B-aligned cell so the streaming
    // stores (which require alignment) cover the rest.
    for (; I != N && (reinterpret_cast<uintptr_t>(Raw + I * 16) & 31) != 0;
         ++I)
      Dst[I] = packed::unpack(Src[I]);
  for (; I + 4 <= N; I += 4) {
    __m256i X = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    __m256i IsNo = _mm256_cmpeq_epi64(X, Zero);
    __m256i IsAll = _mm256_cmpeq_epi64(X, Ones);
    __m256i Tag = _mm256_blendv_epi8(
        _mm256_blendv_epi8(TagFin, TagNo, IsNo), TagAll, IsAll);
    // Finite packed X encodes distance X - 1; the two fixed points
    // store distance 0.
    __m256i Dist = _mm256_andnot_si256(_mm256_or_si256(IsNo, IsAll),
                                       _mm256_sub_epi64(X, One));
    // Interleave {tag, dist} pairs back into 16-byte cells.
    __m256i Lo = _mm256_unpacklo_epi64(Tag, Dist); // T0 D0 T2 D2
    __m256i Hi = _mm256_unpackhi_epi64(Tag, Dist); // T1 D1 T3 D3
    __m256i Cells0 = _mm256_permute2x128_si256(Lo, Hi, 0x20);
    __m256i Cells1 = _mm256_permute2x128_si256(Lo, Hi, 0x31);
    if (Stream) {
      _mm256_stream_si256(reinterpret_cast<__m256i *>(Raw + I * 16), Cells0);
      _mm256_stream_si256(reinterpret_cast<__m256i *>(Raw + I * 16 + 32),
                          Cells1);
    } else {
      _mm256_storeu_si256(reinterpret_cast<__m256i *>(Raw + I * 16), Cells0);
      _mm256_storeu_si256(reinterpret_cast<__m256i *>(Raw + I * 16 + 32),
                          Cells1);
    }
  }
  for (; I != N; ++I)
    Dst[I] = packed::unpack(Src[I]);
  if (Stream)
    _mm_sfence();
}

constexpr RowOps Avx2Ops = {
    Isa::AVX2,
    minIntoAvx2,
    maxIntoAvx2,
    minRowsAvx2,
    incrementAvx2,
    xorAccumAvx2,
    unpackAvx2,
};

// Narrowed-cell AVX2 backend: 8 lanes per step, and unlike the 64-bit
// lanes AVX2 has native unsigned 32-bit min/max, so only the increment
// still needs the sign-bias compare.

ARDF_TGT_AVX2 void minInto32Avx2(uint32_t *Dst, const uint32_t *Src,
                                 size_t N) {
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i D = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i S = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_min_epu32(D, S));
  }
  for (; I != N; ++I)
    Dst[I] = std::min(Dst[I], Src[I]);
}

ARDF_TGT_AVX2 void maxInto32Avx2(uint32_t *Dst, const uint32_t *Src,
                                 size_t N) {
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i D = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i S = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_max_epu32(D, S));
  }
  for (; I != N; ++I)
    Dst[I] = std::max(Dst[I], Src[I]);
}

ARDF_TGT_AVX2 void minRows32Avx2(uint32_t *Dst, const uint32_t *A,
                                 const uint32_t *B, size_t N) {
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i VA = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i VB = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_min_epu32(VA, VB));
  }
  for (; I != N; ++I)
    Dst[I] = std::min(A[I], B[I]);
}

ARDF_TGT_AVX2 void increment32Avx2(uint32_t *Dst, const uint32_t *Src,
                                   size_t N, uint32_t Bound) {
  const __m256i Zero = _mm256_setzero_si256();
  const __m256i Ones = _mm256_set1_epi32(-1);
  const __m256i One = _mm256_set1_epi32(1);
  const __m256i Bias = _mm256_set1_epi32(INT32_MIN);
  const __m256i BoundBiased =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(Bound)), Bias);
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i X = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    __m256i Fixed = _mm256_or_si256(_mm256_cmpeq_epi32(X, Zero),
                                    _mm256_cmpeq_epi32(X, Ones));
    __m256i Next = _mm256_add_epi32(X, _mm256_andnot_si256(Fixed, One));
    __m256i Lt =
        _mm256_cmpgt_epi32(BoundBiased, _mm256_xor_si256(Next, Bias));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_blendv_epi8(Ones, Next, Lt));
  }
  for (; I != N; ++I)
    Dst[I] = packed::increment32(Src[I], Bound);
}

ARDF_TGT_AVX2 uint32_t xorAccum32Avx2(const uint32_t *A, const uint32_t *B,
                                      size_t N) {
  __m256i Acc = _mm256_setzero_si256();
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i VA = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i VB = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    Acc = _mm256_or_si256(Acc, _mm256_xor_si256(VA, VB));
  }
  __m128i Half = _mm_or_si128(_mm256_castsi256_si128(Acc),
                              _mm256_extracti128_si256(Acc, 1));
  Half = _mm_or_si128(Half, _mm_srli_si128(Half, 8));
  Half = _mm_or_si128(Half, _mm_srli_si128(Half, 4));
  uint32_t Tail = static_cast<uint32_t>(_mm_cvtsi128_si32(Half));
  for (; I != N; ++I)
    Tail |= A[I] ^ B[I];
  return Tail;
}

ARDF_TGT_AVX2 void unpack32Avx2(DistanceValue *Dst, const uint32_t *Src,
                                size_t N) {
  const UnpackImages &Images = unpackImages();
  const __m256i Zero = _mm256_setzero_si256();
  // Widened cells compare against the 32-bit sentinel, not all-ones.
  const __m256i All = _mm256_set1_epi64x(
      static_cast<long long>(packed::AllInstances32));
  const __m256i One = _mm256_set1_epi64x(1);
  const __m256i TagNo = _mm256_set1_epi64x(Images.TagNo);
  const __m256i TagFin = _mm256_set1_epi64x(Images.TagFinite);
  const __m256i TagAll = _mm256_set1_epi64x(Images.TagAll);
  unsigned char *Raw = reinterpret_cast<unsigned char *>(Dst);
  size_t I = 0;
  bool Stream = N >= NtStoreMinCells;
  if (Stream)
    for (; I != N && (reinterpret_cast<uintptr_t>(Raw + I * 16) & 31) != 0;
         ++I)
      Dst[I] = packed::unpack32(Src[I]);
  for (; I + 4 <= N; I += 4) {
    __m256i X = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Src + I)));
    __m256i IsNo = _mm256_cmpeq_epi64(X, Zero);
    __m256i IsAll = _mm256_cmpeq_epi64(X, All);
    __m256i Tag = _mm256_blendv_epi8(
        _mm256_blendv_epi8(TagFin, TagNo, IsNo), TagAll, IsAll);
    __m256i Dist = _mm256_andnot_si256(_mm256_or_si256(IsNo, IsAll),
                                       _mm256_sub_epi64(X, One));
    __m256i Lo = _mm256_unpacklo_epi64(Tag, Dist);
    __m256i Hi = _mm256_unpackhi_epi64(Tag, Dist);
    __m256i Cells0 = _mm256_permute2x128_si256(Lo, Hi, 0x20);
    __m256i Cells1 = _mm256_permute2x128_si256(Lo, Hi, 0x31);
    if (Stream) {
      _mm256_stream_si256(reinterpret_cast<__m256i *>(Raw + I * 16), Cells0);
      _mm256_stream_si256(reinterpret_cast<__m256i *>(Raw + I * 16 + 32),
                          Cells1);
    } else {
      _mm256_storeu_si256(reinterpret_cast<__m256i *>(Raw + I * 16), Cells0);
      _mm256_storeu_si256(reinterpret_cast<__m256i *>(Raw + I * 16 + 32),
                          Cells1);
    }
  }
  for (; I != N; ++I)
    Dst[I] = packed::unpack32(Src[I]);
  if (Stream)
    _mm_sfence();
}

constexpr RowOps32 Avx2Ops32 = {
    Isa::AVX2,
    minInto32Avx2,
    maxInto32Avx2,
    minRows32Avx2,
    increment32Avx2,
    xorAccum32Avx2,
    unpack32Avx2,
};

//===----------------------------------------------------------------------===//
// AVX-512F backend (x86-64): 8 lanes per step, native unsigned min and
// compares, mask-blended clamp, scalar tails.
//===----------------------------------------------------------------------===//

#define ARDF_TGT_AVX512 __attribute__((target("avx512f")))

ARDF_TGT_AVX512 void minIntoAvx512(uint64_t *Dst, const uint64_t *Src,
                                   size_t N) {
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m512i D = _mm512_loadu_si512(Dst + I);
    __m512i S = _mm512_loadu_si512(Src + I);
    _mm512_storeu_si512(Dst + I, _mm512_min_epu64(D, S));
  }
  for (; I != N; ++I)
    Dst[I] = std::min(Dst[I], Src[I]);
}

ARDF_TGT_AVX512 void maxIntoAvx512(uint64_t *Dst, const uint64_t *Src,
                                   size_t N) {
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m512i D = _mm512_loadu_si512(Dst + I);
    __m512i S = _mm512_loadu_si512(Src + I);
    _mm512_storeu_si512(Dst + I, _mm512_max_epu64(D, S));
  }
  for (; I != N; ++I)
    Dst[I] = std::max(Dst[I], Src[I]);
}

ARDF_TGT_AVX512 void minRowsAvx512(uint64_t *Dst, const uint64_t *A,
                                   const uint64_t *B, size_t N) {
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m512i VA = _mm512_loadu_si512(A + I);
    __m512i VB = _mm512_loadu_si512(B + I);
    _mm512_storeu_si512(Dst + I, _mm512_min_epu64(VA, VB));
  }
  for (; I != N; ++I)
    Dst[I] = std::min(A[I], B[I]);
}

ARDF_TGT_AVX512 void incrementAvx512(uint64_t *Dst, const uint64_t *Src,
                                     size_t N, uint64_t Bound) {
  const __m512i Zero = _mm512_setzero_si512();
  const __m512i Ones = _mm512_set1_epi64(-1);
  const __m512i One = _mm512_set1_epi64(1);
  const __m512i BoundV =
      _mm512_set1_epi64(static_cast<long long>(Bound));
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m512i X = _mm512_loadu_si512(Src + I);
    __mmask8 Fixed =
        static_cast<__mmask8>(_mm512_cmpeq_epi64_mask(X, Zero) |
                              _mm512_cmpeq_epi64_mask(X, Ones));
    __m512i Next =
        _mm512_mask_add_epi64(X, static_cast<__mmask8>(~Fixed), X, One);
    __mmask8 Lt = _mm512_cmplt_epu64_mask(Next, BoundV);
    _mm512_storeu_si512(Dst + I, _mm512_mask_mov_epi64(Ones, Lt, Next));
  }
  for (; I != N; ++I)
    Dst[I] = packed::increment(Src[I], Bound);
}

ARDF_TGT_AVX512 uint64_t xorAccumAvx512(const uint64_t *A, const uint64_t *B,
                                        size_t N) {
  __m512i Acc = _mm512_setzero_si512();
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m512i VA = _mm512_loadu_si512(A + I);
    __m512i VB = _mm512_loadu_si512(B + I);
    Acc = _mm512_or_si512(Acc, _mm512_xor_si512(VA, VB));
  }
  uint64_t Tail = static_cast<uint64_t>(_mm512_reduce_or_epi64(Acc));
  for (; I != N; ++I)
    Tail |= A[I] ^ B[I];
  return Tail;
}

ARDF_TGT_AVX512 void unpackAvx512(DistanceValue *Dst, const uint64_t *Src,
                                  size_t N) {
  const UnpackImages &Images = unpackImages();
  const __m512i Zero = _mm512_setzero_si512();
  const __m512i Ones = _mm512_set1_epi64(-1);
  const __m512i One = _mm512_set1_epi64(1);
  const __m512i TagNo = _mm512_set1_epi64(Images.TagNo);
  const __m512i TagFin = _mm512_set1_epi64(Images.TagFinite);
  const __m512i TagAll = _mm512_set1_epi64(Images.TagAll);
  const __m512i IdxLo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
  const __m512i IdxHi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
  unsigned char *Raw = reinterpret_cast<unsigned char *>(Dst);
  size_t I = 0;
  bool Stream = N >= NtStoreMinCells;
  if (Stream)
    // Scalar-unpack up to the first 64B-aligned cell (see unpackAvx2).
    for (; I != N && (reinterpret_cast<uintptr_t>(Raw + I * 16) & 63) != 0;
         ++I)
      Dst[I] = packed::unpack(Src[I]);
  for (; I + 8 <= N; I += 8) {
    __m512i X = _mm512_loadu_si512(Src + I);
    __mmask8 IsNo = _mm512_cmpeq_epi64_mask(X, Zero);
    __mmask8 IsAll = _mm512_cmpeq_epi64_mask(X, Ones);
    __m512i Tag = _mm512_mask_mov_epi64(
        _mm512_mask_mov_epi64(TagFin, IsNo, TagNo), IsAll, TagAll);
    // Finite packed X encodes distance X - 1; fixed points store 0.
    __m512i Dist = _mm512_maskz_sub_epi64(
        static_cast<__mmask8>(~(IsNo | IsAll)), X, One);
    // Interleave {tag, dist} pairs back into 16-byte cells.
    __m512i Cells0 = _mm512_permutex2var_epi64(Tag, IdxLo, Dist);
    __m512i Cells1 = _mm512_permutex2var_epi64(Tag, IdxHi, Dist);
    if (Stream) {
      _mm512_stream_si512(reinterpret_cast<__m512i *>(Raw + I * 16), Cells0);
      _mm512_stream_si512(reinterpret_cast<__m512i *>(Raw + I * 16 + 64),
                          Cells1);
    } else {
      _mm512_storeu_si512(Raw + I * 16, Cells0);
      _mm512_storeu_si512(Raw + I * 16 + 64, Cells1);
    }
  }
  for (; I != N; ++I)
    Dst[I] = packed::unpack(Src[I]);
  if (Stream)
    _mm_sfence();
}

constexpr RowOps Avx512Ops = {
    Isa::AVX512,
    minIntoAvx512,
    maxIntoAvx512,
    minRowsAvx512,
    incrementAvx512,
    xorAccumAvx512,
    unpackAvx512,
};

// Narrowed-cell AVX-512F backend: 16 lanes per step, native unsigned
// 32-bit min/max/compare throughout.

ARDF_TGT_AVX512 void minInto32Avx512(uint32_t *Dst, const uint32_t *Src,
                                     size_t N) {
  size_t I = 0;
  for (; I + 16 <= N; I += 16) {
    __m512i D = _mm512_loadu_si512(Dst + I);
    __m512i S = _mm512_loadu_si512(Src + I);
    _mm512_storeu_si512(Dst + I, _mm512_min_epu32(D, S));
  }
  for (; I != N; ++I)
    Dst[I] = std::min(Dst[I], Src[I]);
}

ARDF_TGT_AVX512 void maxInto32Avx512(uint32_t *Dst, const uint32_t *Src,
                                     size_t N) {
  size_t I = 0;
  for (; I + 16 <= N; I += 16) {
    __m512i D = _mm512_loadu_si512(Dst + I);
    __m512i S = _mm512_loadu_si512(Src + I);
    _mm512_storeu_si512(Dst + I, _mm512_max_epu32(D, S));
  }
  for (; I != N; ++I)
    Dst[I] = std::max(Dst[I], Src[I]);
}

ARDF_TGT_AVX512 void minRows32Avx512(uint32_t *Dst, const uint32_t *A,
                                     const uint32_t *B, size_t N) {
  size_t I = 0;
  for (; I + 16 <= N; I += 16) {
    __m512i VA = _mm512_loadu_si512(A + I);
    __m512i VB = _mm512_loadu_si512(B + I);
    _mm512_storeu_si512(Dst + I, _mm512_min_epu32(VA, VB));
  }
  for (; I != N; ++I)
    Dst[I] = std::min(A[I], B[I]);
}

ARDF_TGT_AVX512 void increment32Avx512(uint32_t *Dst, const uint32_t *Src,
                                       size_t N, uint32_t Bound) {
  const __m512i Zero = _mm512_setzero_si512();
  const __m512i Ones = _mm512_set1_epi32(-1);
  const __m512i One = _mm512_set1_epi32(1);
  const __m512i BoundV = _mm512_set1_epi32(static_cast<int>(Bound));
  size_t I = 0;
  for (; I + 16 <= N; I += 16) {
    __m512i X = _mm512_loadu_si512(Src + I);
    __mmask16 Fixed = _mm512_cmpeq_epi32_mask(X, Zero) |
                      _mm512_cmpeq_epi32_mask(X, Ones);
    __m512i Next =
        _mm512_mask_add_epi32(X, static_cast<__mmask16>(~Fixed), X, One);
    __mmask16 Lt = _mm512_cmplt_epu32_mask(Next, BoundV);
    _mm512_storeu_si512(Dst + I, _mm512_mask_mov_epi32(Ones, Lt, Next));
  }
  for (; I != N; ++I)
    Dst[I] = packed::increment32(Src[I], Bound);
}

ARDF_TGT_AVX512 uint32_t xorAccum32Avx512(const uint32_t *A,
                                          const uint32_t *B, size_t N) {
  __m512i Acc = _mm512_setzero_si512();
  size_t I = 0;
  for (; I + 16 <= N; I += 16) {
    __m512i VA = _mm512_loadu_si512(A + I);
    __m512i VB = _mm512_loadu_si512(B + I);
    Acc = _mm512_or_si512(Acc, _mm512_xor_si512(VA, VB));
  }
  uint32_t Tail = static_cast<uint32_t>(_mm512_reduce_or_epi32(Acc));
  for (; I != N; ++I)
    Tail |= A[I] ^ B[I];
  return Tail;
}

ARDF_TGT_AVX512 void unpack32Avx512(DistanceValue *Dst, const uint32_t *Src,
                                    size_t N) {
  const UnpackImages &Images = unpackImages();
  const __m512i Zero = _mm512_setzero_si512();
  // Widened cells compare against the 32-bit sentinel, not all-ones.
  const __m512i All =
      _mm512_set1_epi64(static_cast<long long>(packed::AllInstances32));
  const __m512i One = _mm512_set1_epi64(1);
  const __m512i TagNo = _mm512_set1_epi64(Images.TagNo);
  const __m512i TagFin = _mm512_set1_epi64(Images.TagFinite);
  const __m512i TagAll = _mm512_set1_epi64(Images.TagAll);
  const __m512i IdxLo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
  const __m512i IdxHi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
  unsigned char *Raw = reinterpret_cast<unsigned char *>(Dst);
  size_t I = 0;
  bool Stream = N >= NtStoreMinCells;
  if (Stream)
    for (; I != N && (reinterpret_cast<uintptr_t>(Raw + I * 16) & 63) != 0;
         ++I)
      Dst[I] = packed::unpack32(Src[I]);
  for (; I + 8 <= N; I += 8) {
    __m512i X = _mm512_cvtepu32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I)));
    __mmask8 IsNo = _mm512_cmpeq_epi64_mask(X, Zero);
    __mmask8 IsAll = _mm512_cmpeq_epi64_mask(X, All);
    __m512i Tag = _mm512_mask_mov_epi64(
        _mm512_mask_mov_epi64(TagFin, IsNo, TagNo), IsAll, TagAll);
    __m512i Dist = _mm512_maskz_sub_epi64(
        static_cast<__mmask8>(~(IsNo | IsAll)), X, One);
    __m512i Cells0 = _mm512_permutex2var_epi64(Tag, IdxLo, Dist);
    __m512i Cells1 = _mm512_permutex2var_epi64(Tag, IdxHi, Dist);
    if (Stream) {
      _mm512_stream_si512(reinterpret_cast<__m512i *>(Raw + I * 16), Cells0);
      _mm512_stream_si512(reinterpret_cast<__m512i *>(Raw + I * 16 + 64),
                          Cells1);
    } else {
      _mm512_storeu_si512(Raw + I * 16, Cells0);
      _mm512_storeu_si512(Raw + I * 16 + 64, Cells1);
    }
  }
  for (; I != N; ++I)
    Dst[I] = packed::unpack32(Src[I]);
  if (Stream)
    _mm_sfence();
}

constexpr RowOps32 Avx512Ops32 = {
    Isa::AVX512,
    minInto32Avx512,
    maxInto32Avx512,
    minRows32Avx512,
    increment32Avx512,
    xorAccum32Avx512,
    unpack32Avx512,
};

#endif // ARDF_SIMD_X86

//===----------------------------------------------------------------------===//
// NEON backend (AArch64): 2 lanes per step. NEON is baseline on
// AArch64, so no target attributes are needed.
//===----------------------------------------------------------------------===//

#if ARDF_SIMD_NEON

inline uint64x2_t minU64Neon(uint64x2_t A, uint64x2_t B) {
  return vbslq_u64(vcgtq_u64(A, B), B, A);
}

inline uint64x2_t maxU64Neon(uint64x2_t A, uint64x2_t B) {
  return vbslq_u64(vcgtq_u64(A, B), A, B);
}

void minIntoNeon(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    vst1q_u64(Dst + I, minU64Neon(vld1q_u64(Dst + I), vld1q_u64(Src + I)));
  for (; I != N; ++I)
    Dst[I] = std::min(Dst[I], Src[I]);
}

void maxIntoNeon(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    vst1q_u64(Dst + I, maxU64Neon(vld1q_u64(Dst + I), vld1q_u64(Src + I)));
  for (; I != N; ++I)
    Dst[I] = std::max(Dst[I], Src[I]);
}

void minRowsNeon(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                 size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    vst1q_u64(Dst + I, minU64Neon(vld1q_u64(A + I), vld1q_u64(B + I)));
  for (; I != N; ++I)
    Dst[I] = std::min(A[I], B[I]);
}

void incrementNeon(uint64_t *Dst, const uint64_t *Src, size_t N,
                   uint64_t Bound) {
  const uint64x2_t Zero = vdupq_n_u64(0);
  const uint64x2_t Ones = vdupq_n_u64(UINT64_MAX);
  const uint64x2_t One = vdupq_n_u64(1);
  const uint64x2_t BoundV = vdupq_n_u64(Bound);
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    uint64x2_t X = vld1q_u64(Src + I);
    uint64x2_t Fixed = vorrq_u64(vceqq_u64(X, Zero), vceqq_u64(X, Ones));
    uint64x2_t Next = vaddq_u64(X, vbicq_u64(One, Fixed));
    uint64x2_t Lt = vcgtq_u64(BoundV, Next);
    vst1q_u64(Dst + I, vbslq_u64(Lt, Next, Ones));
  }
  for (; I != N; ++I)
    Dst[I] = packed::increment(Src[I], Bound);
}

uint64_t xorAccumNeon(const uint64_t *A, const uint64_t *B, size_t N) {
  uint64x2_t Acc = vdupq_n_u64(0);
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    Acc = vorrq_u64(Acc, veorq_u64(vld1q_u64(A + I), vld1q_u64(B + I)));
  uint64_t Tail = vgetq_lane_u64(Acc, 0) | vgetq_lane_u64(Acc, 1);
  for (; I != N; ++I)
    Tail |= A[I] ^ B[I];
  return Tail;
}

// Unpack stays scalar on NEON: the 8B -> 16B widening store is
// bandwidth-bound and the scalar loop already saturates it there.
constexpr RowOps NeonOps = {
    Isa::NEON,
    minIntoNeon,
    maxIntoNeon,
    minRowsNeon,
    incrementNeon,
    xorAccumNeon,
    unpackScalar,
};

// Narrowed cells ride the scalar loops on NEON: the u32 min/max sweeps
// are exactly the shape the AArch64 baseline compiler auto-vectorizes,
// so a hand-written table would only restate the codegen.
constexpr RowOps32 NeonOps32 = {
    Isa::NEON,
    minInto32Scalar,
    maxInto32Scalar,
    minRows32Scalar,
    increment32Scalar,
    xorAccum32Scalar,
    unpack32Scalar,
};

#endif // ARDF_SIMD_NEON

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

/// Process-wide dispatch state: the active table pointer (atomic so the
/// test hook can repoint it) plus what ARDF_FORCE_ISA did. Initialized
/// on first use under the magic-static lock.
struct DispatchState {
  std::atomic<const RowOps *> Active;
  simd::ForceStatus Status = simd::ForceStatus::None;

  DispatchState() {
    Isa Tier = simd::bestSupportedIsa();
    if (const char *Env = std::getenv("ARDF_FORCE_ISA")) {
      Isa Forced;
      if (!simd::parseIsaName(Env, Forced))
        Status = simd::ForceStatus::Invalid;
      else if (!simd::isaSupported(Forced))
        Status = simd::ForceStatus::Unsupported;
      else {
        Tier = Forced;
        Status = simd::ForceStatus::Applied;
      }
    }
    Active.store(&simd::backendOps(Tier), std::memory_order_relaxed);
  }
};

DispatchState &dispatchState() {
  static DispatchState State;
  return State;
}

} // namespace

bool simd::isaSupported(Isa Tier) {
  switch (Tier) {
  case Isa::Scalar:
    return true;
  case Isa::NEON:
#if ARDF_SIMD_NEON
    return true;
#else
    return false;
#endif
  case Isa::AVX2:
#if ARDF_SIMD_X86
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
  case Isa::AVX512:
#if ARDF_SIMD_X86
    return __builtin_cpu_supports("avx512f");
#else
    return false;
#endif
  }
  return false;
}

simd::Isa simd::bestSupportedIsa() {
  if (isaSupported(Isa::AVX512))
    return Isa::AVX512;
  if (isaSupported(Isa::AVX2))
    return Isa::AVX2;
  if (isaSupported(Isa::NEON))
    return Isa::NEON;
  return Isa::Scalar;
}

const RowOps &simd::backendOps(Isa Tier) {
  assert(isaSupported(Tier) && "backendOps: tier not executable here");
  switch (Tier) {
#if ARDF_SIMD_X86
  case Isa::AVX512:
    return Avx512Ops;
  case Isa::AVX2:
    return Avx2Ops;
#endif
#if ARDF_SIMD_NEON
  case Isa::NEON:
    return NeonOps;
#endif
  default:
    return ScalarOps;
  }
}

const RowOps32 &simd::backendOps32(Isa Tier) {
  assert(isaSupported(Tier) && "backendOps32: tier not executable here");
  switch (Tier) {
#if ARDF_SIMD_X86
  case Isa::AVX512:
    return Avx512Ops32;
  case Isa::AVX2:
    return Avx2Ops32;
#endif
#if ARDF_SIMD_NEON
  case Isa::NEON:
    return NeonOps32;
#endif
  default:
    return ScalarOps32;
  }
}

const RowOps &simd::rowOps() {
  return *dispatchState().Active.load(std::memory_order_relaxed);
}

const RowOps32 &simd::rowOps32() { return backendOps32(rowOps().Tier); }

simd::Isa simd::activeIsa() { return rowOps().Tier; }

simd::ForceStatus simd::forceStatus() { return dispatchState().Status; }

bool simd::setActiveIsaForTesting(Isa Tier) {
  if (!isaSupported(Tier))
    return false;
  dispatchState().Active.store(&backendOps(Tier),
                               std::memory_order_relaxed);
  return true;
}

const char *simd::isaName(Isa Tier) {
  switch (Tier) {
  case Isa::Scalar:
    return "scalar";
  case Isa::NEON:
    return "neon";
  case Isa::AVX2:
    return "avx2";
  case Isa::AVX512:
    return "avx512";
  }
  return "unknown";
}

bool simd::parseIsaName(std::string_view Name, Isa &Out) {
  if (Name == "scalar")
    Out = Isa::Scalar;
  else if (Name == "neon")
    Out = Isa::NEON;
  else if (Name == "avx2")
    Out = Isa::AVX2;
  else if (Name == "avx512")
    Out = Isa::AVX512;
  else
    return false;
  return true;
}
