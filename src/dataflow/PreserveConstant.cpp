//===- dataflow/PreserveConstant.cpp - The p constant of Section 3.1.2 ---===//

#include "dataflow/PreserveConstant.h"

#include <cassert>

using namespace ardf;

namespace {

/// The conservative result when nothing precise can be said: must-mode
/// preserves nothing (safe underestimate), may-mode preserves everything
/// (safe overestimate).
DistanceValue conservative(ProblemMode Mode) {
  return Mode == ProblemMode::Must ? DistanceValue::noInstance()
                                   : DistanceValue::allInstances();
}

/// Saturates finite distances that already cover the whole iteration
/// range to AllInstances.
DistanceValue clampToTrip(DistanceValue V, int64_t TripCount) {
  if (V.isFinite() && TripCount != UnknownTripCount &&
      V.getDistance() >= TripCount - 1)
    return DistanceValue::allInstances();
  return V;
}

/// Handles a constant kill distance k == C: instances at exactly
/// distance C are killed every iteration. Identical for must and may
/// (a constant k is the paper's "definite kill").
DistanceValue constantKill(Rational C, int64_t Pr, int64_t TripCount) {
  if (!C.isInteger())
    return DistanceValue::allInstances(); // never hits an integer distance
  int64_t CI = C.asInteger();
  if (CI == Pr)
    return DistanceValue::noInstance();
  if (CI < Pr)
    return DistanceValue::allInstances(); // kill outside the range
  return clampToTrip(DistanceValue::finite(CI - 1), TripCount);
}

/// True if the rational \p X is an integer within the iteration range
/// [1, UB] (UB == UnknownTripCount means unbounded).
bool isIntegerIterationInRange(const Rational &X, int64_t TripCount) {
  if (!X.isInteger())
    return false;
  int64_t I = X.asInteger();
  if (I < 1)
    return false;
  return TripCount == UnknownTripCount || I <= TripCount;
}

/// The numeric min-k scan of Section 3.1.2 case (iii): k(i) =
/// (Da*i + Db) / A1 with Da != 0, over integer i in [1, UB].
DistanceValue numericKillScan(int64_t Da, int64_t Db, int64_t A1, int64_t Pr,
                              int64_t TripCount) {
  assert(Da != 0 && A1 != 0 && "numeric scan needs a non-constant k");
  auto KAt = [&](int64_t I) { return Rational(Da * I + Db, A1); };

  // Where k crosses pr: k(x) == Pr  <=>  x == (Pr*A1 - Db) / Da.
  Rational XStar(Pr * A1 - Db, Da);

  // An exact integer hit k(i) == Pr kills the newest in-range instance
  // in that iteration; nothing is guaranteed to survive.
  if (isIntegerIterationInRange(XStar, TripCount))
    return DistanceValue::noInstance();

  bool SlopePositive = (Da > 0) == (A1 > 0);
  Rational M; // min{ k(i) | i in I, k(i) > Pr }
  if (SlopePositive) {
    // k increasing: the first i above the crossing gives the minimum.
    int64_t I0 = XStar.floor() + 1;
    if (I0 < 1)
      I0 = 1;
    if (TripCount != UnknownTripCount && I0 > TripCount)
      return DistanceValue::allInstances(); // k <= Pr throughout I
    M = KAt(I0);
  } else {
    // k decreasing: values above Pr form a prefix; its last element
    // attains the minimum above Pr.
    int64_t ILast = XStar.ceil() - 1;
    if (TripCount != UnknownTripCount && ILast > TripCount)
      ILast = TripCount;
    if (ILast < 1)
      return DistanceValue::allInstances();
    M = KAt(ILast);
  }
  assert(M > Rational(Pr) && "scan selected a kill distance below pr");

  int64_t P = M.isInteger() ? M.asInteger() - 1 : M.floor();
  if (P < Pr)
    return DistanceValue::noInstance();
  return clampToTrip(DistanceValue::finite(P), TripCount);
}

/// Preserve constant when the tracked reference is loop-invariant
/// (A1 == 0): all its instances denote the same memory cell.
DistanceValue invariantPreserved(const AffineAccess &D,
                                 const AffineAccess &K, ProblemMode Mode,
                                 int64_t Pr, int64_t TripCount) {
  Poly Diff = D.B - K.B;
  if (K.A.isZero()) {
    // Both invariant: either always the same cell or (provably) never.
    if (Diff.isZero())
      return constantKill(Rational(0), Pr, TripCount);
    if (Diff.isConstant())
      return DistanceValue::allInstances();
    return conservative(Mode);
  }
  // Moving killer over a fixed cell: it can coincide at most once; a
  // single kill invalidates the all-iterations guarantee of a
  // must-problem but is not a definite per-iteration kill for may.
  if (Mode == ProblemMode::May)
    return DistanceValue::allInstances();
  if (!Diff.isConstant() || !K.A.isConstant())
    return DistanceValue::noInstance();
  Rational Hit(Diff.getConstant(), K.A.getConstant());
  if (isIntegerIterationInRange(Hit, TripCount))
    return DistanceValue::noInstance();
  return DistanceValue::allInstances();
}

} // namespace

DistanceValue ardf::computePreserveConstant(const PreserveQuery &Q) {
  assert(Q.Preserved && "preserve query without tracked reference");
  assert((Q.Pr == 0 || Q.Pr == 1) && "pr is a predicate");

  // Whole-array kills (non-affine or summary-node killers).
  if (!Q.Killer)
    return conservative(Q.Mode);

  const AffineAccess &D = *Q.Preserved;
  const AffineAccess &K = *Q.Killer;

  if (D.A.isZero())
    return invariantPreserved(D, K, Q.Mode, Q.Pr, Q.TripCount);

  // Backward problems interchange past and future (Section 3.4), which
  // negates the kill-distance numerator.
  int64_t Sign = Q.Direction == FlowDirection::Backward ? -1 : 1;
  Poly Da = (D.A - K.A).scaled(Sign);
  Poly Db = (D.B - K.B).scaled(Sign);

  if (Da.isZero()) {
    // k(i) == Db / A1 is a constant whenever Db is a rational multiple
    // of A1 (covers the symbolic cases of Section 3.6, e.g. N / N).
    std::optional<Rational> C =
        Db.isZero() ? std::optional<Rational>(Rational(0)) : Db.ratioTo(D.A);
    if (C)
      return constantKill(*C, Q.Pr, Q.TripCount);
    return conservative(Q.Mode);
  }

  // Non-constant k: only a definite (constant) kill lowers p in a
  // may-problem (Section 3.3).
  if (Q.Mode == ProblemMode::May)
    return DistanceValue::allInstances();

  if (!Da.isConstant() || !Db.isConstant() || !D.A.isConstant())
    return conservative(Q.Mode);
  return numericKillScan(Da.getConstant(), Db.getConstant(),
                         D.A.getConstant(), Q.Pr, Q.TripCount);
}
