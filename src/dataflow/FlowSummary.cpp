//===- dataflow/FlowSummary.cpp - Transfer composition and application ---===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Lowering composes the program's packed flow functions into per-node
// transfer rows -- one lattice/PackedTransfer.h Transfer per cell,
// stored as a Floor row plus a Cap row per node with one scalar shift
// count (the shift comes only from the exit increment, which hits every
// cell of a row alike) -- then closes over the back edge and evaluates
// at the concrete initialization state. All row work runs through the
// active VectorOps table: a meet of transfer rows is MinInto/MaxInto on
// both component rows, composition with a body node's function is
// MinRows against the preserve row plus the sparse generate patch
// (applied to both rows, mirroring the kernel's patch), and the exit
// increment is the Increment sweep on both rows.
//
// The pass structure that makes one symbolic pass possible: in the
// working order, every node's meet reads rows already final in this
// pass, except the source's, which reads the back-edge node's row from
// the previous state. So a whole pass is one Transfer per node of the
// back-edge row X it started from; running it symbolically once yields
// TIn/TOut, the concrete init supplies X0, the closure evaluates
// X1 = TOut[B](X0), and pass two's rows -- the exported fixed point --
// are TIn[n](X1) / TOut[n](X1).
//
//===----------------------------------------------------------------------===//

#include "dataflow/FlowSummary.h"

#include "dataflow/SolverTelemetry.h"
#include "dataflow/VectorOps.h"
#include "lattice/PackedTransfer.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace ardf;

namespace {

/// Evaluates one node's transfer row at \p X into \p Dst:
/// min(max(shift^Shift(X), Floor), Cap), all through row sweeps.
void applyTransferRow(uint64_t *Dst, const uint64_t *X,
                      const uint64_t *Floor, const uint64_t *Cap,
                      uint32_t Shift, uint64_t Bound, unsigned T,
                      const simd::RowOps &Ops) {
  std::copy(X, X + T, Dst);
  for (uint32_t I = 0; I != Shift; ++I)
    Ops.Increment(Dst, Dst, T, Bound);
  Ops.MaxInto(Dst, Floor, T);
  Ops.MinInto(Dst, Cap, T);
}

/// The structural preconditions of the one-symbolic-pass scheme (see
/// file comment): the working source leads the order with the back-edge
/// node as its only predecessor, and every other node's predecessors
/// strictly precede it.
bool summaryStructureHolds(const CompiledFlowProgram &CF) {
  const unsigned N = CF.NumNodes;
  if (N == 0 || CF.Order.size() != N || CF.Order.front() != CF.SourceNode)
    return false;
  std::vector<uint32_t> Pos(N, UINT32_MAX);
  for (unsigned I = 0; I != N; ++I) {
    unsigned Node = CF.Order[I];
    if (Node >= N || Pos[Node] != UINT32_MAX)
      return false;
    Pos[Node] = I;
  }
  const unsigned Source = CF.SourceNode;
  const unsigned Back = CF.Order.back();
  if (CF.PredOffsets[Source + 1] - CF.PredOffsets[Source] != 1 ||
      CF.Preds[CF.PredOffsets[Source]] != Back)
    return false;
  for (unsigned Node = 0; Node != N; ++Node) {
    if (Node == Source)
      continue;
    for (uint32_t K = CF.PredOffsets[Node]; K != CF.PredOffsets[Node + 1];
         ++K)
      if (Pos[CF.Preds[K]] >= Pos[Node])
        return false;
  }
  return true;
}

/// Duplicate of the kernel's conservative fill (anonymous there): both
/// matrices overwritten with the problem's safe value, result tagged.
void fillDegraded(SolveResult &Result, bool IsMust, size_t Cells,
                  BreachReason Reason) {
  DistanceValue Fill =
      IsMust ? DistanceValue::noInstance() : DistanceValue::allInstances();
  DistanceValue *DI = Result.In.data();
  DistanceValue *DO = Result.Out.data();
  for (size_t C = 0; C != Cells; ++C) {
    DI[C] = Fill;
    DO[C] = Fill;
  }
  Result.Converged = true;
  Result.Outcome = SolveOutcome::Degraded;
  Result.Breach = Reason;
}

/// Mirrors the kernel's resetKernel for a summary application: shapes
/// the result matrices and zeroes the ledgers. No packed buffers exist
/// to shape. True when a matrix allocation grew.
bool resetApply(SolveResult &Result, const FlowSummary &S) {
  bool GrewIn = Result.In.reshape(S.NumNodes, S.NumTracked);
  bool GrewOut = Result.Out.reshape(S.NumNodes, S.NumTracked);
  Result.NodeVisits = 0;
  Result.Passes = 0;
  Result.MeetOps = 0;
  Result.ApplyOps = 0;
  Result.Converged = true;
  Result.Outcome = SolveOutcome::Ok;
  Result.Breach = BreachReason::None;
  Result.History.clear();
  return GrewIn || GrewOut;
}

/// The application proper: replay the kernel's ledger and budget
/// boundaries, then export the precomputed fixed point. Visit totals,
/// pass counts, failpoint evaluations (one "solver.pass" per boundary),
/// and degradation points all match a kernel solve of the same program
/// under the same options bit for bit. With \p SkipExport the caller
/// guarantees \p Result's matrices already hold this summary's clean
/// export, so a breach-free application writes nothing (a breach still
/// overwrites with the conservative fill). Returns true exactly when
/// the matrices hold the clean export on exit.
bool runApply(const FlowSummary &S, const SolverOptions &Opts,
              SolveResult &Result, bool SkipExport = false) {
  assert(S.Valid && summaryEligible(Opts) &&
         "callers gate on Valid and summaryEligible");
  telem::Span Sp("summary-apply", "solver", S.ProblemName.c_str());
  telem::LatencyTimer LT(telem::Histo::SolveNs);
  detail::BudgetGuard Guard(Opts.Budget, S.IsMust, S.NumNodes,
                            S.NumTracked);
  const unsigned N = S.NumNodes;
  BreachReason Breach = Guard.checkCells();
  if (Breach == BreachReason::None) {
    // The kernel's boundary structure: the initialization pass (N
    // visits for must, none for may), then two schedule passes, each
    // boundary consulting the guard with the running visit total.
    if (S.IsMust)
      Result.NodeVisits += N;
    Breach = Guard.check(Result.NodeVisits);
    for (unsigned P = 0; P != 2 && Breach == BreachReason::None; ++P) {
      Result.NodeVisits += N;
      ++Result.Passes;
      Breach = Guard.check(Result.NodeVisits);
    }
  }
  if (Breach != BreachReason::None) {
    fillDegraded(Result, S.IsMust, S.cells(), Breach);
  } else if (SkipExport) {
    // Warm hit: the matrices already hold exactly the bytes the export
    // below would write. Nothing to do.
  } else if (S.Narrow32) {
    const simd::RowOps32 &Ops = simd::rowOps32();
    Ops.Unpack(Result.In.data(), S.FinalIn32.data(), S.cells());
    Ops.Unpack(Result.Out.data(), S.FinalOut32.data(), S.cells());
  } else {
    const simd::RowOps &Ops = simd::rowOps();
    Ops.Unpack(Result.In.data(), S.FinalIn.data(), S.cells());
    Ops.Unpack(Result.Out.data(), S.FinalOut.data(), S.cells());
  }
  detail::finishSolveCounts(Result, S.IsMust, S.NumNodes, S.NumTracked,
                            S.MeetEdgesAll, S.MeetEdgesNoSource);
  detail::recordSolveTelemetry(Result, S.IsMust, S.NumNodes,
                               /*PackedEngine=*/true);
  telem::count(telem::Counter::SummaryApplies);
  if (Sp.active()) {
    Sp.arg("nodes", S.NumNodes);
    Sp.arg("tracked", S.NumTracked);
    Sp.arg("node_visits", Result.NodeVisits);
    Sp.arg("passes", Result.Passes);
    Sp.arg("warm_skip", SkipExport && Breach == BreachReason::None);
  }
  return Breach == BreachReason::None;
}

} // namespace

FlowSummary FlowSummary::lower(const CompiledFlowProgram &CF) {
  telem::Span Sp("summary-lower", "solver", CF.ProblemName.c_str());
  telem::count(telem::Counter::SummaryLowerings);
  FlowSummary S;
  S.NumNodes = CF.NumNodes;
  S.NumTracked = CF.NumTracked;
  S.IsMust = CF.IsMust;
  S.Narrow32 = CF.Narrow32;
  S.MeetEdgesAll = CF.MeetEdgesAll;
  S.MeetEdgesNoSource = CF.MeetEdgesNoSource;
  S.ProblemName = CF.ProblemName;
  if (!summaryStructureHolds(CF))
    return S;

  const unsigned N = CF.NumNodes;
  const unsigned T = CF.NumTracked;
  const size_t Cells = CF.cells();
  const uint64_t Bound = CF.IncBound;
  const simd::RowOps &Ops = simd::rowOps();

  // The symbolic pass: per node, the Floor/Cap rows and scalar shift of
  // its IN and OUT transfers as functions of the back-edge row the pass
  // started from.
  std::vector<uint64_t> FloorIn(Cells), CapIn(Cells);
  std::vector<uint64_t> FloorOut(Cells), CapOut(Cells);
  std::vector<uint32_t> KIn(N, 0), KOut(N, 0);
  for (unsigned Node : CF.Order) {
    uint64_t *FI = FloorIn.data() + static_cast<size_t>(Node) * T;
    uint64_t *CI = CapIn.data() + static_cast<size_t>(Node) * T;
    uint64_t *FO = FloorOut.data() + static_cast<size_t>(Node) * T;
    uint64_t *CO = CapOut.data() + static_cast<size_t>(Node) * T;
    if (Node == CF.SourceNode) {
      // The source's meet is the back edge itself: the identity
      // transfer of X.
      std::fill(FI, FI + T, packed::NoInstance);
      std::fill(CI, CI + T, packed::AllInstances);
      KIn[Node] = 0;
    } else {
      const uint32_t *P = CF.Preds.data() + CF.PredOffsets[Node];
      unsigned K = CF.PredOffsets[Node + 1] - CF.PredOffsets[Node];
      const size_t P0 = static_cast<size_t>(P[0]) * T;
      std::copy(FloorOut.data() + P0, FloorOut.data() + P0 + T, FI);
      std::copy(CapOut.data() + P0, CapOut.data() + P0 + T, CI);
      KIn[Node] = KOut[P[0]];
      for (unsigned I = 1; I != K; ++I) {
        // The meet closed-forms need equal accumulated shifts; today's
        // loop flow graphs guarantee it (the increment sits at the
        // working source or sink), future general CFGs might not.
        if (KOut[P[I]] != KIn[Node])
          return S;
        const size_t PI = static_cast<size_t>(P[I]) * T;
        if (CF.IsMust) {
          Ops.MinInto(FI, FloorOut.data() + PI, T);
          Ops.MinInto(CI, CapOut.data() + PI, T);
        } else {
          Ops.MaxInto(FI, FloorOut.data() + PI, T);
          Ops.MaxInto(CI, CapOut.data() + PI, T);
        }
      }
    }
    if (Node == CF.ExitNode) {
      // Composing the increment shifts both clamp rows and bumps the
      // shift count; canonical order is preserved (monotone).
      Ops.Increment(FO, FI, T, Bound);
      Ops.Increment(CO, CI, T, Bound);
      KOut[Node] = KIn[Node] + 1;
    } else {
      // Composing the body function: the dense preserve min caps the
      // Cap row, the sparse generate patch lands on both rows exactly
      // as the kernel patches its OUT row, and the final MinInto
      // restores the canonical Floor <= Cap form.
      std::copy(FI, FI + T, FO);
      Ops.MinRows(CO, CI, CF.Preserve.data() + static_cast<size_t>(Node) * T,
                  T);
      for (uint32_t K = CF.GenOffsets[Node]; K != CF.GenOffsets[Node + 1];
           ++K) {
        uint32_t C = CF.GenCols[K];
        FO[C] = packed::meetMay(FO[C], packed::Zero);
        CO[C] = packed::meetMust(packed::meetMay(CO[C], packed::Zero),
                                 CF.GenQ[K]);
      }
      Ops.MinInto(FO, CO, T);
      KOut[Node] = KIn[Node];
    }
  }

  // The concrete initialization state at the back-edge node. The may
  // init is the bottom fill; the must init is one in-order concrete
  // sweep (source pinned, meets over already-initialized rows, generate
  // cells raised -- no exit increment, exactly initMust).
  const unsigned Back = CF.Order.back();
  std::vector<uint64_t> X0(T);
  if (CF.IsMust) {
    std::vector<uint64_t> InitOut(Cells);
    for (unsigned Node : CF.Order) {
      uint64_t *Row = InitOut.data() + static_cast<size_t>(Node) * T;
      if (Node == CF.SourceNode) {
        std::fill(Row, Row + T, packed::NoInstance);
      } else {
        const uint32_t *P = CF.Preds.data() + CF.PredOffsets[Node];
        unsigned K = CF.PredOffsets[Node + 1] - CF.PredOffsets[Node];
        const size_t P0 = static_cast<size_t>(P[0]) * T;
        std::copy(InitOut.data() + P0, InitOut.data() + P0 + T, Row);
        for (unsigned I = 1; I != K; ++I)
          Ops.MinInto(Row, InitOut.data() + static_cast<size_t>(P[I]) * T,
                      T);
      }
      for (uint32_t K = CF.GenOffsets[Node]; K != CF.GenOffsets[Node + 1];
           ++K)
        Row[CF.GenCols[K]] = packed::AllInstances;
    }
    std::copy(InitOut.data() + static_cast<size_t>(Back) * T,
              InitOut.data() + static_cast<size_t>(Back) * T + T, X0.data());
  } else {
    std::fill(X0.begin(), X0.end(), packed::AllInstances);
  }

  // Close over the back edge: pass one only feeds pass two through the
  // back-edge row, so X1 = TOut[Back](X0) is all of pass one the final
  // pass can observe. Pass two's rows are the exported fixed point.
  std::vector<uint64_t> X1(T);
  applyTransferRow(X1.data(), X0.data(),
                   FloorOut.data() + static_cast<size_t>(Back) * T,
                   CapOut.data() + static_cast<size_t>(Back) * T, KOut[Back],
                   Bound, T, Ops);
  S.FinalIn.resize(Cells);
  S.FinalOut.resize(Cells);
  for (unsigned Node = 0; Node != N; ++Node) {
    const size_t R = static_cast<size_t>(Node) * T;
    applyTransferRow(S.FinalIn.data() + R, X1.data(), FloorIn.data() + R,
                     CapIn.data() + R, KIn[Node], Bound, T, Ops);
    applyTransferRow(S.FinalOut.data() + R, X1.data(), FloorOut.data() + R,
                     CapOut.data() + R, KOut[Node], Bound, T, Ops);
  }

  // Narrowed programs store the narrowed image (exact: the wide fixed
  // point of a Narrow32 program never leaves the narrowing's image --
  // the same argument that lets the kernel solve in uint32 cells).
  if (S.Narrow32) {
    S.FinalIn32.resize(Cells);
    S.FinalOut32.resize(Cells);
    for (size_t C = 0; C != Cells; ++C) {
      assert(packed::narrowable(S.FinalIn[C]) &&
             packed::narrowable(S.FinalOut[C]) &&
             "Narrow32 fixed point left the narrowing image");
      S.FinalIn32[C] = packed::narrow(S.FinalIn[C]);
      S.FinalOut32[C] = packed::narrow(S.FinalOut[C]);
    }
    S.FinalIn.clear();
    S.FinalIn.shrink_to_fit();
    S.FinalOut.clear();
    S.FinalOut.shrink_to_fit();
  }

  S.Valid = true;
  static std::atomic<uint64_t> NextId{1};
  S.Id = NextId.fetch_add(1, std::memory_order_relaxed);
  if (Sp.active()) {
    Sp.arg("nodes", N);
    Sp.arg("tracked", T);
    Sp.arg("cells", Cells);
  }
  return S;
}

SolveResult ardf::applySummary(const FlowSummary &S,
                               const SolverOptions &Opts) {
  SolveResult Result;
  resetApply(Result, S);
  runApply(S, Opts, Result);
  return Result;
}

const SolveResult &ardf::applySummary(const FlowSummary &S,
                                      SolveWorkspace &WS,
                                      const SolverOptions &Opts) {
  // Warm when the matrices still hold this summary's clean export:
  // every other Result writer (kernel, reference, a different or
  // degraded summary) resets the token, and a matching Id implies the
  // shape matched, so resetApply below cannot disturb the bytes.
  bool Warm = S.Id != 0 && WS.WarmSummaryId == S.Id;
  if (resetApply(WS.Result, S)) {
    ++WS.Growths;
    Warm = false;
  }
  ++WS.Solves;
  bool Clean = runApply(S, Opts, WS.Result, /*SkipExport=*/Warm);
  WS.WarmSummaryId = Clean ? S.Id : 0;
  return WS.Result;
}
