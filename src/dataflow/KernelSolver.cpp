//===- dataflow/KernelSolver.cpp - Branch-free packed pass loop ----------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// The packed kernel engine: runs the paper's pass schedule over the flat
// packed matrices of a CompiledFlowProgram. Whole-row meets and flow
// applications are tight min/max loops with no data-dependent branches,
// the generate side is a sparse per-node patch, and the fixed point is
// unpacked into the caller's DistanceMatrix SolveResult so every client
// of solveDataFlow works unchanged. Results are bit-identical to the
// reference solver (the packed operators are the image of the
// DistanceValue operators under the order isomorphism of
// PackedDistance.h), which the kernel-vs-reference oracle tests assert.
//
// The engine exists to win the memory-bandwidth game the reference
// solver loses at large shapes, so the pass loop is frugal with bytes:
// cells are 8B instead of 16B -- or 4B when the program's constants
// narrow (CompiledFlowProgram::Narrow32; the solvers below are
// templated over the cell type) -- the IN rows of non-final passes live
// in a one-row scratch buffer (nothing ever reads them again), and the
// buffers are reshaped without refilling between warm solves (every
// cell the result exposes is written before it is read).
//
//===----------------------------------------------------------------------===//

#include "dataflow/CompiledFlow.h"
#include "dataflow/SolverTelemetry.h"
#include "dataflow/VectorOps.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace ardf;

namespace {

/// The cell-width policy the solver templates bind: which row-operation
/// table to call through, which Preserve image to sweep, and how packed
/// uint64 constants (GenQ, IncBound) reach cell width. The lattice
/// anchors NoInstance (0) and Zero (1) are width-invariant; only the
/// AllInstances sentinel moves, via constant().
template <typename Cell> struct CellTraits;

template <> struct CellTraits<uint64_t> {
  using Ops = simd::RowOps;
  static const Ops &ops() { return simd::rowOps(); }
  static uint64_t constant(uint64_t C) { return C; }
  template <typename Program> static const uint64_t *preserve(const Program &P) {
    return P.Preserve.data();
  }
};

template <> struct CellTraits<uint32_t> {
  using Ops = simd::RowOps32;
  static const Ops &ops() { return simd::rowOps32(); }
  // Pre: narrowable -- compile() only sets Narrow32 after vetting every
  // packed constant.
  static uint32_t constant(uint64_t C) { return packed::narrow(C); }
  template <typename Program> static const uint32_t *preserve(const Program &P) {
    return P.Preserve32.data();
  }
};

/// Overwrites both result matrices with the conservative lattice value
/// (must: NoInstance, may: AllInstances) and tags \p Result degraded.
/// The matrices carry their own shape, so the fill serves both a
/// single-program solve and one member of a group solve.
void fillDegraded(SolveResult &Result, bool IsMust, size_t Cells,
                  BreachReason Reason) {
  DistanceValue Fill =
      IsMust ? DistanceValue::noInstance() : DistanceValue::allInstances();
  DistanceValue *DI = Result.In.data();
  DistanceValue *DO = Result.Out.data();
  for (size_t C = 0; C != Cells; ++C) {
    DI[C] = Fill;
    DO[C] = Fill;
  }
  Result.Converged = true;
  Result.Outcome = SolveOutcome::Degraded;
  Result.Breach = Reason;
}

void fillDegraded(SolveResult &Result, const CompiledFlowProgram &CF,
                  BreachReason Reason) {
  fillDegraded(Result, CF.IsMust, CF.cells(), Reason);
}

template <typename Cell> class KernelSolver {
  using Traits = CellTraits<Cell>;

public:
  KernelSolver(const CompiledFlowProgram &CF, const SolverOptions &Opts,
               SolveResult &Result, std::vector<Cell> &InBuf,
               std::vector<Cell> &OutBuf, std::vector<Cell> &ScratchBuf)
      : CF(CF), Opts(Opts), Result(Result), In(InBuf.data()),
        Out(OutBuf.data()), Scratch(ScratchBuf.data()),
        Preserve(Traits::preserve(CF)), T(CF.NumTracked),
        Ops(Traits::ops()), All(Traits::constant(packed::AllInstances)),
        IncBound(Traits::constant(CF.IncBound)),
        // Change-tracked passes diff against the previous IN rows and
        // history snapshots unpack the IN matrix after every pass, so
        // both modes keep IN real throughout; the plain paper schedule
        // only needs the IN matrix of the final pass.
        RealIn(Opts.RecordHistory ||
               Opts.Strat == SolverOptions::Strategy::IterateToFixpoint) {}

  void run(const detail::BudgetGuard &Guard) {
    if (CF.IsMust)
      initMust();
    else
      initMay();
    snapshot("init");
    if (degradeIfBreached(Guard.check(Result.NodeVisits)))
      return;

    if (Opts.Strat == SolverOptions::Strategy::PaperSchedule) {
      for (unsigned P = 0; P != 2; ++P) {
        passFast(/*Final=*/P == 1);
        ++Result.Passes;
        if (Opts.RecordHistory)
          snapshot("pass " + std::to_string(Result.Passes));
        if (degradeIfBreached(Guard.check(Result.NodeVisits)))
          return;
      }
    } else {
      Result.Converged = false;
      for (unsigned P = 0; P != Opts.MaxPasses; ++P) {
        bool Changed = passTracked();
        ++Result.Passes;
        if (Opts.RecordHistory)
          snapshot("pass " + std::to_string(Result.Passes));
        if (degradeIfBreached(Guard.check(Result.NodeVisits)))
          return;
        if (!Changed) {
          Result.Converged = true;
          break;
        }
      }
    }
    // Without RealIn the final fast pass already exported both
    // matrices row by row; nothing is left to unpack.
    if (RealIn)
      unpackInto(Result.In, Result.Out);
  }

private:
  /// Budget breach: skip the remaining passes (and the unpack) and
  /// expose the conservative fill directly in the result matrices.
  /// Checked at the same pass boundaries as the reference solver, so
  /// under identical deterministic breaches (visits, failpoints) both
  /// engines degrade at the same point to the same bits.
  bool degradeIfBreached(BreachReason Reason) {
    if (Reason == BreachReason::None)
      return false;
    fillDegraded(Result, CF, Reason);
    return true;
  }

  /// The must-problem initialization pass: optimistic AllInstances at
  /// generating cells along the meet-over-all-paths, with the working
  /// source pinned to bottom.
  void initMust() {
    for (unsigned Node : CF.Order) {
      Cell *InRow = RealIn ? In + static_cast<size_t>(Node) * T : Scratch;
      Cell *OutRow = Out + static_cast<size_t>(Node) * T;
      if (Node == CF.SourceNode)
        std::fill(InRow, InRow + T, Cell(packed::NoInstance));
      else
        meetRow(Node, InRow);
      std::copy(InRow, InRow + T, OutRow);
      for (uint32_t K = CF.GenOffsets[Node]; K != CF.GenOffsets[Node + 1];
           ++K)
        OutRow[CF.GenCols[K]] = All;
    }
    Result.NodeVisits += static_cast<unsigned>(CF.Order.size());
  }

  /// The may-problem initial guess: bottom (= all instances) everywhere.
  /// The IN matrix only needs the guess when the pass loop will read it
  /// (change tracking) or expose it (history).
  void initMay() {
    std::fill(Out, Out + CF.cells(), All);
    if (RealIn)
      std::fill(In, In + CF.cells(), All);
  }

  /// Whole-row meet over the working predecessors into \p Dst.
  void meetRow(unsigned Node, Cell *Dst) {
    const uint32_t *P = CF.Preds.data() + CF.PredOffsets[Node];
    unsigned K = CF.PredOffsets[Node + 1] - CF.PredOffsets[Node];
    assert(K != 0 && "flow graph node without predecessors");
    const Cell *First = Out + static_cast<size_t>(P[0]) * T;
    std::copy(First, First + T, Dst);
    for (unsigned I = 1; I != K; ++I) {
      const Cell *S = Out + static_cast<size_t>(P[I]) * T;
      if (CF.IsMust)
        Ops.MinInto(Dst, S, T);
      else
        Ops.MaxInto(Dst, S, T);
    }
  }

  /// Whole-row flow application into \p OutRow: the dense preserve
  /// sweep plus the sparse generate patch for body nodes, the
  /// saturating increment at the exit node. Exactly applyNode's
  /// case analysis: min(in, p), then max with pack(0) and min with the
  /// post-generation constant at generating cells only.
  void applyRow(unsigned Node, const Cell *InRow, Cell *OutRow) {
    if (Node == CF.ExitNode) {
      Ops.Increment(OutRow, InRow, T, IncBound);
      return;
    }
    Ops.MinRows(OutRow, InRow, Preserve + static_cast<size_t>(Node) * T, T);
    for (uint32_t K = CF.GenOffsets[Node]; K != CF.GenOffsets[Node + 1];
         ++K) {
      uint32_t C = CF.GenCols[K];
      OutRow[C] = std::min(std::max(OutRow[C], Cell(packed::Zero)),
                           Traits::constant(CF.GenQ[K]));
    }
  }

  /// One pass of the paper schedule: no change tracking, maximal
  /// vectorizability. Without RealIn the packed IN matrix is never
  /// materialized at all: non-final meets land in the one-row scratch
  /// (or are the single predecessor's OUT row itself, untouched), and
  /// the final pass unpacks each meet row straight into the result's
  /// IN matrix -- the row is in cache right here, so the fused unpack
  /// replaces a full packed-IN write plus a cold re-read at the end.
  void passFast(bool Final) {
    for (unsigned Node : CF.Order) {
      const Cell *InRow;
      if (RealIn) {
        Cell *Dst = In + static_cast<size_t>(Node) * T;
        meetRow(Node, Dst);
        InRow = Dst;
      } else {
        unsigned K = CF.PredOffsets[Node + 1] - CF.PredOffsets[Node];
        if (K == 1) {
          // A one-predecessor meet is that row; skip the copy. Exact
          // self-aliasing in applyRow is safe: every row op loads its
          // lane before storing it.
          const uint32_t *P = CF.Preds.data() + CF.PredOffsets[Node];
          InRow = Out + static_cast<size_t>(P[0]) * T;
        } else {
          meetRow(Node, Scratch);
          InRow = Scratch;
        }
        if (Final)
          Ops.Unpack(Result.In.data() + static_cast<size_t>(Node) * T,
                     InRow, T);
      }
      Cell *OutRow = Out + static_cast<size_t>(Node) * T;
      applyRow(Node, InRow, OutRow);
      // Each node is applied exactly once per pass, so its OUT row is
      // final right here -- export it while it is still hot instead of
      // re-streaming the whole matrix afterwards.
      if (Final && !RealIn)
        Ops.Unpack(Result.Out.data() + static_cast<size_t>(Node) * T,
                   OutRow, T);
    }
    Result.NodeVisits += static_cast<unsigned>(CF.Order.size());
  }

  /// One IterateToFixpoint pass with an XOR change accumulator (packed
  /// equality is value equality). The scratch row holds each node's
  /// previous OUT so the diff can be taken after the sparse patch.
  bool passTracked() {
    Cell Diff = 0;
    for (unsigned Node : CF.Order) {
      Cell *InRow = In + static_cast<size_t>(Node) * T;
      Cell *OutRow = Out + static_cast<size_t>(Node) * T;
      std::copy(InRow, InRow + T, Scratch);
      meetRow(Node, InRow);
      Diff |= Ops.XorAccum(InRow, Scratch, T);
      std::copy(OutRow, OutRow + T, Scratch);
      applyRow(Node, InRow, OutRow);
      Diff |= Ops.XorAccum(OutRow, Scratch, T);
    }
    Result.NodeVisits += static_cast<unsigned>(CF.Order.size());
    return Diff != 0;
  }

  void unpackInto(DistanceMatrix &MIn, DistanceMatrix &MOut) const {
    Ops.Unpack(MIn.data(), In, CF.cells());
    Ops.Unpack(MOut.data(), Out, CF.cells());
  }

  void snapshot(std::string Label) {
    if (!Opts.RecordHistory)
      return;
    PassSnapshot S;
    S.Label = std::move(Label);
    S.In.reset(CF.NumNodes, T);
    S.Out.reset(CF.NumNodes, T);
    unpackInto(S.In, S.Out);
    Result.History.push_back(std::move(S));
  }

  const CompiledFlowProgram &CF;
  const SolverOptions &Opts;
  SolveResult &Result;
  Cell *In;
  Cell *Out;
  Cell *Scratch;
  const Cell *Preserve;
  const unsigned T;
  const typename Traits::Ops &Ops;
  const Cell All;
  const Cell IncBound;
  const bool RealIn;
};

/// Mirrors resetResult in Framework.cpp and additionally shapes the
/// packed buffers, reusing every allocation; true when anything grew.
/// Shaping never refills retained cells: the kernel writes every cell
/// of both result matrices (unpackInto) and of every packed row it ever
/// reads, so a refill would only stream stale megabytes through cache.
template <typename Cell>
bool resetKernel(SolveResult &Result, std::vector<Cell> &InBuf,
                 std::vector<Cell> &OutBuf, std::vector<Cell> &ScratchBuf,
                 const CompiledFlowProgram &CF, const SolverOptions &Opts,
                 bool SkipPacked) {
  bool GrewIn = Result.In.reshape(CF.NumNodes, CF.NumTracked);
  bool GrewOut = Result.Out.reshape(CF.NumNodes, CF.NumTracked);
  Result.NodeVisits = 0;
  Result.Passes = 0;
  Result.MeetOps = 0;
  Result.ApplyOps = 0;
  Result.Converged = true;
  Result.Outcome = SolveOutcome::Ok;
  Result.Breach = BreachReason::None;
  Result.History.clear();
  // A matrix-cell breach skips all solving, so the packed working set
  // is never materialized -- the point of the cap.
  if (SkipPacked)
    return GrewIn || GrewOut;
  size_t CapIn = InBuf.capacity();
  size_t CapOut = OutBuf.capacity();
  size_t CapScratch = ScratchBuf.capacity();
  // The plain paper schedule unpacks IN rows straight out of the final
  // pass (see passFast), so the packed IN matrix exists only for modes
  // that read or snapshot it.
  if (Opts.RecordHistory ||
      Opts.Strat == SolverOptions::Strategy::IterateToFixpoint)
    InBuf.resize(CF.cells());
  OutBuf.resize(CF.cells());
  ScratchBuf.resize(CF.NumTracked);
  return GrewIn || GrewOut || InBuf.capacity() != CapIn ||
         OutBuf.capacity() != CapOut || ScratchBuf.capacity() != CapScratch;
}

/// Runs the packed kernel over \p CF into \p Result, with per-solve
/// span and counter telemetry (inert when no context is installed).
template <typename Cell>
void runKernel(const CompiledFlowProgram &CF, const SolverOptions &Opts,
               SolveResult &Result, std::vector<Cell> &InBuf,
               std::vector<Cell> &OutBuf, std::vector<Cell> &ScratchBuf) {
  telem::Span S("solve", "solver", CF.ProblemName.c_str());
  telem::LatencyTimer LT(telem::Histo::SolveNs);
  detail::BudgetGuard Guard(Opts.Budget, CF.IsMust, CF.NumNodes,
                            CF.NumTracked);
  if (BreachReason Cells = Guard.checkCells();
      Cells != BreachReason::None)
    fillDegraded(Result, CF, Cells);
  else
    KernelSolver<Cell>(CF, Opts, Result, InBuf, OutBuf, ScratchBuf)
        .run(Guard);
  detail::finishSolveCounts(Result, CF.IsMust, CF.NumNodes, CF.NumTracked,
                            CF.MeetEdgesAll, CF.MeetEdgesNoSource);
  detail::recordSolveTelemetry(Result, CF.IsMust, CF.NumNodes,
                               /*PackedEngine=*/true);
  if (S.active()) {
    S.arg("nodes", CF.NumNodes);
    S.arg("tracked", CF.NumTracked);
    S.arg("node_visits", Result.NodeVisits);
    S.arg("passes", Result.Passes);
  }
}

/// The interleaved solver: every member of a CompiledFlowGroup swept in
/// one paper-schedule run over the wide SoA matrices. The meets split
/// each wide row into the must prefix (MinInto) and the may suffix
/// (MaxInto); the flow application is polarity-free (the preserve min
/// and the exit increment are shared by both problem kinds), so it runs
/// full wide rows. Per member it keeps an own BudgetGuard, checked at
/// exactly the pass boundaries an independent solve would check, and an
/// own visit/pass ledger -- a member that breaches freezes its counters
/// and receives the conservative fill at the end, while the sweep
/// carries the remaining members to their fixed points.
template <typename Cell> class GroupSolver {
  using Traits = CellTraits<Cell>;

public:
  GroupSolver(const CompiledFlowGroup &G, const SolverOptions &Opts,
              std::vector<SolveResult> &Results, std::vector<Cell> &OutBuf,
              std::vector<Cell> &ScratchBuf)
      : G(G), Opts(Opts), Results(Results), Out(OutBuf.data()),
        Scratch(ScratchBuf.data()), Preserve(Traits::preserve(G)),
        T(G.TotalTracked), MustT(G.MustTracked), Ops(Traits::ops()),
        All(Traits::constant(packed::AllInstances)),
        IncBound(Traits::constant(G.IncBound)) {}

  void run() {
    assert(Opts.Strat == SolverOptions::Strategy::PaperSchedule &&
           !Opts.RecordHistory &&
           "group solves support only the plain paper schedule");
    const size_t NumM = G.Members.size();
    Breach.assign(NumM, BreachReason::None);
    Guards.clear();
    Guards.reserve(NumM);
    unsigned Live = 0;
    for (size_t I = 0; I != NumM; ++I) {
      const CompiledFlowGroup::Member &M = G.Members[I];
      Guards.emplace_back(Opts.Budget, M.IsMust, G.NumNodes, M.Count);
      Breach[I] = Guards[I].checkCells();
      Live += Breach[I] == BreachReason::None;
    }

    // Same boundary structure as an independent solve of each member:
    // initialization, guard check, two passes with a check after each.
    if (Live != 0) {
      init();
      Live = checkBoundary();
    }
    for (unsigned P = 0; P != 2 && Live != 0; ++P) {
      pass(/*Final=*/P == 1);
      Live = checkBoundary();
    }

    // Live members were exported row by row during the final pass (a
    // member that never breached was live for it); breached members
    // get the conservative fill, overwriting any rows the final pass
    // exported before their breach was detected.
    for (size_t I = 0; I != NumM; ++I) {
      const CompiledFlowGroup::Member &M = G.Members[I];
      if (Breach[I] != BreachReason::None)
        fillDegraded(Results[M.PartIndex], M.IsMust,
                     static_cast<size_t>(G.NumNodes) * M.Count, Breach[I]);
    }
  }

private:
  /// The may segment's initial guess (bottom = AllInstances, zero node
  /// visits) followed by the must segment's initialization pass, which
  /// patches only the must prefix of each node's generate list. IN rows
  /// are scratch: the paper schedule materializes IN on the final pass.
  void init() {
    if (T != MustT)
      for (unsigned Node = 0; Node != G.NumNodes; ++Node) {
        Cell *Row = Out + static_cast<size_t>(Node) * T;
        std::fill(Row + MustT, Row + T, All);
      }
    if (MustT != 0)
      for (unsigned Node : G.Order) {
        Cell *OutRow = Out + static_cast<size_t>(Node) * T;
        if (Node == G.SourceNode)
          std::fill(Scratch, Scratch + MustT, Cell(packed::NoInstance));
        else
          meetRow(Node, Scratch, MustT);
        std::copy(Scratch, Scratch + MustT, OutRow);
        for (uint32_t K = G.GenOffsets[Node]; K != G.GenMustEnd[Node]; ++K)
          OutRow[G.GenCols[K]] = All;
      }
    forEachLive([&](const CompiledFlowGroup::Member &M, SolveResult &R) {
      if (M.IsMust)
        R.NodeVisits += G.NumNodes;
    });
  }

  /// Whole-row meet over the working predecessors: min on the must
  /// prefix, max on the may suffix. \p Width is MustT during the must
  /// initialization pass and T during the main passes.
  void meetRow(unsigned Node, Cell *Dst, unsigned Width) {
    const uint32_t *P = G.Preds.data() + G.PredOffsets[Node];
    unsigned K = G.PredOffsets[Node + 1] - G.PredOffsets[Node];
    assert(K != 0 && "flow graph node without predecessors");
    const Cell *First = Out + static_cast<size_t>(P[0]) * T;
    std::copy(First, First + Width, Dst);
    for (unsigned I = 1; I != K; ++I) {
      const Cell *S = Out + static_cast<size_t>(P[I]) * T;
      if (MustT != 0)
        Ops.MinInto(Dst, S, MustT);
      if (Width > MustT)
        Ops.MaxInto(Dst + MustT, S + MustT, Width - MustT);
    }
  }

  /// One main pass over all members at once. The flow application needs
  /// no polarity split, so the wide rows run through the same MinRows /
  /// Increment / sparse-patch sequence as a single-program pass. No
  /// wide packed IN matrix exists: the final pass deinterleaves each
  /// meet row straight into the live members' unpacked IN matrices
  /// while the row is hot (mirroring passFast's fusion; a breached
  /// member's rows are skipped -- the conservative fill owns them).
  void pass(bool Final) {
    for (unsigned Node : G.Order) {
      const Cell *InRow;
      unsigned K = G.PredOffsets[Node + 1] - G.PredOffsets[Node];
      if (K == 1) {
        // A one-predecessor meet is that row itself (see passFast).
        const uint32_t *P = G.Preds.data() + G.PredOffsets[Node];
        InRow = Out + static_cast<size_t>(P[0]) * T;
      } else {
        meetRow(Node, Scratch, T);
        InRow = Scratch;
      }
      Cell *OutRow = Out + static_cast<size_t>(Node) * T;
      if (Final)
        forEachLive([&](const CompiledFlowGroup::Member &M,
                        SolveResult &R) {
          Ops.Unpack(R.In.data() + static_cast<size_t>(Node) * M.Count,
                     InRow + M.Begin, M.Count);
        });
      if (Node == G.ExitNode) {
        Ops.Increment(OutRow, InRow, T, IncBound);
      } else {
        Ops.MinRows(OutRow, InRow, Preserve + static_cast<size_t>(Node) * T,
                    T);
        for (uint32_t K = G.GenOffsets[Node]; K != G.GenOffsets[Node + 1];
             ++K) {
          uint32_t C = G.GenCols[K];
          OutRow[C] = std::min(std::max(OutRow[C], Cell(packed::Zero)),
                               Traits::constant(G.GenQ[K]));
        }
      }
      // The OUT row is final after its one application per pass;
      // deinterleave it into the live members while it is hot (see
      // passFast).
      if (Final)
        forEachLive([&](const CompiledFlowGroup::Member &M,
                        SolveResult &R) {
          Ops.Unpack(R.Out.data() + static_cast<size_t>(Node) * M.Count,
                     OutRow + M.Begin, M.Count);
        });
    }
    forEachLive([&](const CompiledFlowGroup::Member &, SolveResult &R) {
      R.NodeVisits += G.NumNodes;
      ++R.Passes;
    });
  }

  /// Per-member pass-boundary budget check; a breached member freezes
  /// (its counters stop, its fill happens at the end). Returns the
  /// number of members still live.
  unsigned checkBoundary() {
    unsigned Live = 0;
    for (size_t I = 0; I != G.Members.size(); ++I) {
      if (Breach[I] != BreachReason::None)
        continue;
      Breach[I] =
          Guards[I].check(Results[G.Members[I].PartIndex].NodeVisits);
      Live += Breach[I] == BreachReason::None;
    }
    return Live;
  }

  template <typename Fn> void forEachLive(Fn &&F) {
    for (size_t I = 0; I != G.Members.size(); ++I)
      if (Breach[I] == BreachReason::None)
        F(G.Members[I], Results[G.Members[I].PartIndex]);
  }

  const CompiledFlowGroup &G;
  const SolverOptions &Opts;
  std::vector<SolveResult> &Results;
  Cell *Out;
  Cell *Scratch;
  const Cell *Preserve;
  const unsigned T;
  const unsigned MustT;
  const typename Traits::Ops &Ops;
  const Cell All;
  const Cell IncBound;
  std::vector<detail::BudgetGuard> Guards;
  std::vector<BreachReason> Breach;
};

/// True when every member trips the matrix-cell cap: no packed buffers
/// are materialized at all, mirroring the single-program SkipPacked
/// path. One admissible member forces the full wide working set (its
/// columns cannot be swept without the rest of the row).
bool groupSkipsPacked(const CompiledFlowGroup &G, const SolverOptions &Opts) {
  uint64_t Cap = Opts.Budget.MaxMatrixCells;
  if (Cap == 0)
    return false;
  for (const CompiledFlowGroup::Member &M : G.Members)
    if (static_cast<uint64_t>(G.NumNodes) * M.Count <= Cap)
      return false;
  return true;
}

/// Group analogue of resetKernel: shapes every member's result matrices
/// and the wide packed buffers, reusing allocations; true when anything
/// grew.
template <typename Cell>
bool resetGroup(std::vector<SolveResult> &Results, std::vector<Cell> &OutBuf,
                std::vector<Cell> &ScratchBuf, const CompiledFlowGroup &G,
                bool SkipPacked) {
  bool Grew = false;
  if (Results.size() != G.Members.size()) {
    Results.resize(G.Members.size());
    Grew = true;
  }
  for (const CompiledFlowGroup::Member &M : G.Members) {
    SolveResult &R = Results[M.PartIndex];
    Grew |= R.In.reshape(G.NumNodes, M.Count);
    Grew |= R.Out.reshape(G.NumNodes, M.Count);
    R.NodeVisits = 0;
    R.Passes = 0;
    R.MeetOps = 0;
    R.ApplyOps = 0;
    R.Converged = true;
    R.Outcome = SolveOutcome::Ok;
    R.Breach = BreachReason::None;
    R.History.clear();
  }
  if (SkipPacked)
    return Grew;
  size_t CapOut = OutBuf.capacity();
  size_t CapScratch = ScratchBuf.capacity();
  OutBuf.resize(G.cells());
  ScratchBuf.resize(G.TotalTracked);
  return Grew || OutBuf.capacity() != CapOut ||
         ScratchBuf.capacity() != CapScratch;
}

/// Runs the interleaved kernel over \p G, then finishes each member's
/// operation counts and telemetry exactly as an independent packed
/// solve would (one SolverRunsPacked tick per member, plus one group
/// sweep tick).
template <typename Cell>
void runGroupKernel(const CompiledFlowGroup &G, const SolverOptions &Opts,
                    std::vector<SolveResult> &Results,
                    std::vector<Cell> &OutBuf,
                    std::vector<Cell> &ScratchBuf) {
  telem::Span S("solve-group", "solver");
  telem::LatencyTimer LT(telem::Histo::SolveNs);
  GroupSolver<Cell>(G, Opts, Results, OutBuf, ScratchBuf).run();
  for (const CompiledFlowGroup::Member &M : G.Members) {
    SolveResult &R = Results[M.PartIndex];
    detail::finishSolveCounts(R, M.IsMust, G.NumNodes, M.Count,
                              M.MeetEdgesAll, M.MeetEdgesNoSource);
    detail::recordSolveTelemetry(R, M.IsMust, G.NumNodes,
                                 /*PackedEngine=*/true);
  }
  if (telem::Telemetry *Telem = telem::Telemetry::current())
    Telem->add(telem::Counter::SolverGroupSweeps);
  if (S.active()) {
    S.arg("members", G.Members.size());
    S.arg("nodes", G.NumNodes);
    S.arg("tracked", G.TotalTracked);
    S.arg("isa_tier", static_cast<uint64_t>(simd::activeIsa()));
  }
}

} // namespace

SolveResult ardf::solveCompiled(const CompiledFlowProgram &CF,
                                const SolverOptions &Opts) {
  SolveResult Result;
  bool SkipPacked = Opts.Budget.MaxMatrixCells != 0 &&
                    CF.cells() > Opts.Budget.MaxMatrixCells;
  if (CF.Narrow32) {
    std::vector<uint32_t> InBuf, OutBuf, ScratchBuf;
    resetKernel(Result, InBuf, OutBuf, ScratchBuf, CF, Opts, SkipPacked);
    runKernel(CF, Opts, Result, InBuf, OutBuf, ScratchBuf);
  } else {
    std::vector<uint64_t> InBuf, OutBuf, ScratchBuf;
    resetKernel(Result, InBuf, OutBuf, ScratchBuf, CF, Opts, SkipPacked);
    runKernel(CF, Opts, Result, InBuf, OutBuf, ScratchBuf);
  }
  return Result;
}

const SolveResult &ardf::solveCompiled(const CompiledFlowProgram &CF,
                                       SolveWorkspace &WS,
                                       const SolverOptions &Opts) {
  bool SkipPacked = Opts.Budget.MaxMatrixCells != 0 &&
                    CF.cells() > Opts.Budget.MaxMatrixCells;
  WS.WarmSummaryId = 0;
  if (CF.Narrow32) {
    if (resetKernel(WS.Result, WS.PackedIn32, WS.PackedOut32,
                    WS.PackedScratch32, CF, Opts, SkipPacked))
      ++WS.Growths;
    ++WS.Solves;
    runKernel(CF, Opts, WS.Result, WS.PackedIn32, WS.PackedOut32,
              WS.PackedScratch32);
  } else {
    if (resetKernel(WS.Result, WS.PackedIn, WS.PackedOut, WS.PackedScratch,
                    CF, Opts, SkipPacked))
      ++WS.Growths;
    ++WS.Solves;
    runKernel(CF, Opts, WS.Result, WS.PackedIn, WS.PackedOut,
              WS.PackedScratch);
  }
  return WS.Result;
}

std::vector<SolveResult>
ardf::solveCompiledGroup(const CompiledFlowGroup &G,
                         const SolverOptions &Opts) {
  std::vector<SolveResult> Results;
  bool Skip = groupSkipsPacked(G, Opts);
  if (G.Narrow32) {
    std::vector<uint32_t> OutBuf, ScratchBuf;
    resetGroup(Results, OutBuf, ScratchBuf, G, Skip);
    runGroupKernel(G, Opts, Results, OutBuf, ScratchBuf);
  } else {
    std::vector<uint64_t> OutBuf, ScratchBuf;
    resetGroup(Results, OutBuf, ScratchBuf, G, Skip);
    runGroupKernel(G, Opts, Results, OutBuf, ScratchBuf);
  }
  return Results;
}

const std::vector<SolveResult> &
ardf::solveCompiledGroup(const CompiledFlowGroup &G, GroupSolveWorkspace &WS,
                         const SolverOptions &Opts) {
  bool Skip = groupSkipsPacked(G, Opts);
  if (G.Narrow32) {
    if (resetGroup(WS.Results, WS.PackedOut32, WS.PackedScratch32, G, Skip))
      ++WS.Growths;
    ++WS.Solves;
    runGroupKernel(G, Opts, WS.Results, WS.PackedOut32, WS.PackedScratch32);
  } else {
    if (resetGroup(WS.Results, WS.PackedOut, WS.PackedScratch, G, Skip))
      ++WS.Growths;
    ++WS.Solves;
    runGroupKernel(G, Opts, WS.Results, WS.PackedOut, WS.PackedScratch);
  }
  return WS.Results;
}
