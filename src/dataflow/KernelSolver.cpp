//===- dataflow/KernelSolver.cpp - Branch-free packed pass loop ----------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// The packed kernel engine: runs the paper's pass schedule over the flat
// uint64 matrices of a CompiledFlowProgram. Whole-row meets and flow
// applications are tight min/max loops with no data-dependent branches,
// the generate side is a sparse per-node patch, and the fixed point is
// unpacked into the caller's DistanceMatrix SolveResult so every client
// of solveDataFlow works unchanged. Results are bit-identical to the
// reference solver (the packed operators are the image of the
// DistanceValue operators under the order isomorphism of
// PackedDistance.h), which the kernel-vs-reference oracle tests assert.
//
// The engine exists to win the memory-bandwidth game the reference
// solver loses at large shapes, so the pass loop is frugal with bytes:
// cells are 8B instead of 16B, the IN rows of non-final passes live in
// a one-row scratch buffer (nothing ever reads them again), and the
// buffers are reshaped without refilling between warm solves (every
// cell the result exposes is written before it is read).
//
//===----------------------------------------------------------------------===//

#include "dataflow/CompiledFlow.h"
#include "dataflow/SolverTelemetry.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace ardf;

namespace {

class KernelSolver {
public:
  KernelSolver(const CompiledFlowProgram &CF, const SolverOptions &Opts,
               SolveResult &Result, std::vector<uint64_t> &InBuf,
               std::vector<uint64_t> &OutBuf,
               std::vector<uint64_t> &ScratchBuf)
      : CF(CF), Opts(Opts), Result(Result), In(InBuf.data()),
        Out(OutBuf.data()), Scratch(ScratchBuf.data()), T(CF.NumTracked),
        // Change-tracked passes diff against the previous IN rows and
        // history snapshots unpack the IN matrix after every pass, so
        // both modes keep IN real throughout; the plain paper schedule
        // only needs the IN matrix of the final pass.
        RealIn(Opts.RecordHistory ||
               Opts.Strat == SolverOptions::Strategy::IterateToFixpoint) {}

  void run(const detail::BudgetGuard &Guard) {
    if (CF.IsMust)
      initMust();
    else
      initMay();
    snapshot("init");
    if (degradeIfBreached(Guard.check(Result.NodeVisits)))
      return;

    if (Opts.Strat == SolverOptions::Strategy::PaperSchedule) {
      for (unsigned P = 0; P != 2; ++P) {
        passFast(/*Final=*/P == 1);
        ++Result.Passes;
        if (Opts.RecordHistory)
          snapshot("pass " + std::to_string(Result.Passes));
        if (degradeIfBreached(Guard.check(Result.NodeVisits)))
          return;
      }
    } else {
      Result.Converged = false;
      for (unsigned P = 0; P != Opts.MaxPasses; ++P) {
        bool Changed = passTracked();
        ++Result.Passes;
        if (Opts.RecordHistory)
          snapshot("pass " + std::to_string(Result.Passes));
        if (degradeIfBreached(Guard.check(Result.NodeVisits)))
          return;
        if (!Changed) {
          Result.Converged = true;
          break;
        }
      }
    }
    unpackInto(Result.In, Result.Out);
  }

private:
  /// Budget breach: skip the remaining passes (and the unpack) and
  /// expose the conservative fill directly in the result matrices.
  /// Checked at the same pass boundaries as the reference solver, so
  /// under identical deterministic breaches (visits, failpoints) both
  /// engines degrade at the same point to the same bits.
  bool degradeIfBreached(BreachReason Reason);

  /// The must-problem initialization pass: optimistic AllInstances at
  /// generating cells along the meet-over-all-paths, with the working
  /// source pinned to bottom.
  void initMust() {
    for (unsigned Node : CF.Order) {
      uint64_t *InRow = RealIn ? In + static_cast<size_t>(Node) * T : Scratch;
      uint64_t *OutRow = Out + static_cast<size_t>(Node) * T;
      if (Node == CF.SourceNode)
        std::fill(InRow, InRow + T, packed::NoInstance);
      else
        meetRow(Node, InRow);
      std::copy(InRow, InRow + T, OutRow);
      for (uint32_t K = CF.GenOffsets[Node]; K != CF.GenOffsets[Node + 1];
           ++K)
        OutRow[CF.GenCols[K]] = packed::AllInstances;
    }
    Result.NodeVisits += static_cast<unsigned>(CF.Order.size());
  }

  /// The may-problem initial guess: bottom (= all instances) everywhere.
  /// The IN matrix only needs the guess when the pass loop will read it
  /// (change tracking) or expose it (history).
  void initMay() {
    std::fill(Out, Out + CF.cells(), packed::AllInstances);
    if (RealIn)
      std::fill(In, In + CF.cells(), packed::AllInstances);
  }

  /// Whole-row meet over the working predecessors into \p Dst.
  void meetRow(unsigned Node, uint64_t *Dst) {
    const uint32_t *P = CF.Preds.data() + CF.PredOffsets[Node];
    unsigned K = CF.PredOffsets[Node + 1] - CF.PredOffsets[Node];
    assert(K != 0 && "flow graph node without predecessors");
    const uint64_t *First = Out + static_cast<size_t>(P[0]) * T;
    std::copy(First, First + T, Dst);
    for (unsigned I = 1; I != K; ++I) {
      const uint64_t *S = Out + static_cast<size_t>(P[I]) * T;
      if (CF.IsMust)
        for (unsigned C = 0; C != T; ++C)
          Dst[C] = std::min(Dst[C], S[C]);
      else
        for (unsigned C = 0; C != T; ++C)
          Dst[C] = std::max(Dst[C], S[C]);
    }
  }

  /// Whole-row flow application into \p OutRow: the dense preserve
  /// sweep plus the sparse generate patch for body nodes, the
  /// saturating increment at the exit node. Exactly applyNode's
  /// case analysis: min(in, p), then max with pack(0) and min with the
  /// post-generation constant at generating cells only.
  void applyRow(unsigned Node, const uint64_t *InRow, uint64_t *OutRow) {
    if (Node == CF.ExitNode) {
      const uint64_t B = CF.IncBound;
      for (unsigned C = 0; C != T; ++C)
        OutRow[C] = packed::increment(InRow[C], B);
      return;
    }
    const uint64_t *P = CF.Preserve.data() + static_cast<size_t>(Node) * T;
    for (unsigned C = 0; C != T; ++C)
      OutRow[C] = std::min(InRow[C], P[C]);
    for (uint32_t K = CF.GenOffsets[Node]; K != CF.GenOffsets[Node + 1];
         ++K) {
      uint32_t C = CF.GenCols[K];
      OutRow[C] = std::min(std::max(OutRow[C], packed::Zero), CF.GenQ[K]);
    }
  }

  /// One pass of the paper schedule: no change tracking, maximal
  /// vectorizability. Only the final pass materializes IN rows.
  void passFast(bool Final) {
    bool KeepIn = RealIn || Final;
    for (unsigned Node : CF.Order) {
      uint64_t *InRow =
          KeepIn ? In + static_cast<size_t>(Node) * T : Scratch;
      meetRow(Node, InRow);
      applyRow(Node, InRow, Out + static_cast<size_t>(Node) * T);
    }
    Result.NodeVisits += static_cast<unsigned>(CF.Order.size());
  }

  /// One IterateToFixpoint pass with an XOR change accumulator (packed
  /// equality is value equality). The scratch row holds each node's
  /// previous OUT so the diff can be taken after the sparse patch.
  bool passTracked() {
    uint64_t Diff = 0;
    for (unsigned Node : CF.Order) {
      uint64_t *InRow = In + static_cast<size_t>(Node) * T;
      uint64_t *OutRow = Out + static_cast<size_t>(Node) * T;
      std::copy(InRow, InRow + T, Scratch);
      meetRow(Node, InRow);
      for (unsigned C = 0; C != T; ++C)
        Diff |= InRow[C] ^ Scratch[C];
      std::copy(OutRow, OutRow + T, Scratch);
      applyRow(Node, InRow, OutRow);
      for (unsigned C = 0; C != T; ++C)
        Diff |= OutRow[C] ^ Scratch[C];
    }
    Result.NodeVisits += static_cast<unsigned>(CF.Order.size());
    return Diff != 0;
  }

  void unpackInto(DistanceMatrix &MIn, DistanceMatrix &MOut) const {
    size_t Cells = CF.cells();
    DistanceValue *DI = MIn.data();
    DistanceValue *DO = MOut.data();
    for (size_t C = 0; C != Cells; ++C) {
      DI[C] = packed::unpack(In[C]);
      DO[C] = packed::unpack(Out[C]);
    }
  }

  void snapshot(std::string Label) {
    if (!Opts.RecordHistory)
      return;
    PassSnapshot S;
    S.Label = std::move(Label);
    S.In.reset(CF.NumNodes, T);
    S.Out.reset(CF.NumNodes, T);
    unpackInto(S.In, S.Out);
    Result.History.push_back(std::move(S));
  }

  const CompiledFlowProgram &CF;
  const SolverOptions &Opts;
  SolveResult &Result;
  uint64_t *In;
  uint64_t *Out;
  uint64_t *Scratch;
  const unsigned T;
  const bool RealIn;
};

/// Overwrites both result matrices with the conservative lattice value
/// (must: NoInstance, may: AllInstances) and tags \p Result degraded.
void fillDegraded(SolveResult &Result, const CompiledFlowProgram &CF,
                  BreachReason Reason) {
  DistanceValue Fill = CF.IsMust ? DistanceValue::noInstance()
                                 : DistanceValue::allInstances();
  size_t Cells = CF.cells();
  DistanceValue *DI = Result.In.data();
  DistanceValue *DO = Result.Out.data();
  for (size_t C = 0; C != Cells; ++C) {
    DI[C] = Fill;
    DO[C] = Fill;
  }
  Result.Converged = true;
  Result.Outcome = SolveOutcome::Degraded;
  Result.Breach = Reason;
}

bool KernelSolver::degradeIfBreached(BreachReason Reason) {
  if (Reason == BreachReason::None)
    return false;
  fillDegraded(Result, CF, Reason);
  return true;
}

/// Mirrors resetResult in Framework.cpp and additionally shapes the
/// packed buffers, reusing every allocation; true when anything grew.
/// Shaping never refills retained cells: the kernel writes every cell
/// of both result matrices (unpackInto) and of every packed row it ever
/// reads, so a refill would only stream stale megabytes through cache.
bool resetKernel(SolveResult &Result, std::vector<uint64_t> &InBuf,
                 std::vector<uint64_t> &OutBuf,
                 std::vector<uint64_t> &ScratchBuf,
                 const CompiledFlowProgram &CF, bool SkipPacked) {
  bool GrewIn = Result.In.reshape(CF.NumNodes, CF.NumTracked);
  bool GrewOut = Result.Out.reshape(CF.NumNodes, CF.NumTracked);
  Result.NodeVisits = 0;
  Result.Passes = 0;
  Result.MeetOps = 0;
  Result.ApplyOps = 0;
  Result.Converged = true;
  Result.Outcome = SolveOutcome::Ok;
  Result.Breach = BreachReason::None;
  Result.History.clear();
  // A matrix-cell breach skips all solving, so the packed working set
  // is never materialized -- the point of the cap.
  if (SkipPacked)
    return GrewIn || GrewOut;
  size_t CapIn = InBuf.capacity();
  size_t CapOut = OutBuf.capacity();
  size_t CapScratch = ScratchBuf.capacity();
  InBuf.resize(CF.cells());
  OutBuf.resize(CF.cells());
  ScratchBuf.resize(CF.NumTracked);
  return GrewIn || GrewOut || InBuf.capacity() != CapIn ||
         OutBuf.capacity() != CapOut || ScratchBuf.capacity() != CapScratch;
}

/// Runs the packed kernel over \p CF into \p Result, with per-solve
/// span and counter telemetry (inert when no context is installed).
void runKernel(const CompiledFlowProgram &CF, const SolverOptions &Opts,
               SolveResult &Result, std::vector<uint64_t> &InBuf,
               std::vector<uint64_t> &OutBuf,
               std::vector<uint64_t> &ScratchBuf) {
  telem::Span S("solve", "solver", CF.ProblemName.c_str());
  detail::BudgetGuard Guard(Opts.Budget, CF.IsMust, CF.NumNodes,
                            CF.NumTracked);
  if (BreachReason Cells = Guard.checkCells();
      Cells != BreachReason::None)
    fillDegraded(Result, CF, Cells);
  else
    KernelSolver(CF, Opts, Result, InBuf, OutBuf, ScratchBuf).run(Guard);
  detail::finishSolveCounts(Result, CF.IsMust, CF.NumNodes, CF.NumTracked,
                            CF.MeetEdgesAll, CF.MeetEdgesNoSource);
  detail::recordSolveTelemetry(Result, CF.IsMust, CF.NumNodes,
                               /*PackedEngine=*/true);
  if (S.active()) {
    S.arg("nodes", CF.NumNodes);
    S.arg("tracked", CF.NumTracked);
    S.arg("node_visits", Result.NodeVisits);
    S.arg("passes", Result.Passes);
  }
}

} // namespace

SolveResult ardf::solveCompiled(const CompiledFlowProgram &CF,
                                const SolverOptions &Opts) {
  SolveResult Result;
  std::vector<uint64_t> InBuf;
  std::vector<uint64_t> OutBuf;
  std::vector<uint64_t> ScratchBuf;
  bool SkipPacked = Opts.Budget.MaxMatrixCells != 0 &&
                    CF.cells() > Opts.Budget.MaxMatrixCells;
  resetKernel(Result, InBuf, OutBuf, ScratchBuf, CF, SkipPacked);
  runKernel(CF, Opts, Result, InBuf, OutBuf, ScratchBuf);
  return Result;
}

const SolveResult &ardf::solveCompiled(const CompiledFlowProgram &CF,
                                       SolveWorkspace &WS,
                                       const SolverOptions &Opts) {
  bool SkipPacked = Opts.Budget.MaxMatrixCells != 0 &&
                    CF.cells() > Opts.Budget.MaxMatrixCells;
  if (resetKernel(WS.Result, WS.PackedIn, WS.PackedOut, WS.PackedScratch,
                  CF, SkipPacked))
    ++WS.Growths;
  ++WS.Solves;
  runKernel(CF, Opts, WS.Result, WS.PackedIn, WS.PackedOut,
            WS.PackedScratch);
  return WS.Result;
}
