//===- dataflow/CompiledFlow.h - Compiled packed flow programs -*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CompiledFlowProgram lowers one FrameworkInstance into flat arrays
/// the kernel solver can sweep without a single data-dependent branch:
///
///   * the packed preserve constant per (node, tracked) cell in
///     row-major NumNodes x NumTracked layout,
///   * the generating cells as a sparse per-node patch list (CSR:
///     column + packed post-generation preserve constant) — a
///     statement generates for the handful of classes it references,
///     so a dense generate matrix would be megabytes of identity
///     values streamed through the cache every pass,
///   * the working traversal order and the working predecessor lists in
///     CSR form (one flat id array plus per-node offsets),
///   * the scalar solve parameters (meet polarity, source/exit node,
///     packed increment bound).
///
/// applyNode collapses into the branch-free dense sweep
///
///   out = min(in, Preserve)
///
/// per non-exit cell, followed by the sparse generate patch
///
///   out[c] = min(max(out[c], pack(0)), GenQ[k])
///
/// at each generating cell, and the exit node is the branch-free packed
/// increment. The fixed point over the packed arrays is provably the
/// image of the reference fixed point because pack is an order
/// isomorphism that commutes with every operator (see DESIGN.md §8);
/// the kernel solver unpacks bit-identical DistanceMatrix results.
///
/// Compile once per instance (LoopAnalysisSession memoizes), then solve
/// any number of times through a SolveWorkspace with zero allocation.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_COMPILEDFLOW_H
#define ARDF_DATAFLOW_COMPILEDFLOW_H

#include "dataflow/Framework.h"
#include "lattice/PackedDistance.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ardf {

/// One FrameworkInstance lowered to flat packed tables (see file
/// comment). Plain data: cheap to move, trivially shareable read-only
/// across threads once built.
struct CompiledFlowProgram {
  unsigned NumNodes = 0;
  unsigned NumTracked = 0;

  /// Meet polarity: min for must-problems, max for may-problems.
  bool IsMust = true;

  /// First node of the working order (pinned to bottom by the must
  /// initialization pass).
  unsigned SourceNode = 0;

  /// The i := i + 1 node, whose flow function is the packed increment.
  unsigned ExitNode = 0;

  /// Packed saturation bound of the exit increment
  /// (packed::incrementBound of the instance's trip count).
  uint64_t IncBound = packed::AllInstances;

  /// Working traversal order (forward: RPO; backward: reversed RPO).
  std::vector<unsigned> Order;

  /// Working predecessor lists in CSR layout, indexed by node id:
  /// preds of node n are Preds[PredOffsets[n] .. PredOffsets[n+1]).
  std::vector<uint32_t> PredOffsets;
  std::vector<uint32_t> Preds;

  /// Row-major NumNodes x NumTracked packed preserve constants
  /// (pack(preserveAt), min-applied to every non-exit cell).
  std::vector<uint64_t> Preserve;

  /// Generating cells of node n, sparse and CSR by node id: columns
  /// GenCols[GenOffsets[n] .. GenOffsets[n+1]) with the matching packed
  /// post-generation preserve constants in GenQ.
  std::vector<uint32_t> GenOffsets;
  std::vector<uint32_t> GenCols;
  std::vector<uint64_t> GenQ;

  /// Display name of the lowered problem (telemetry span labels).
  std::string ProblemName;

  /// Meet operations one tracked component costs per pass, mirrored
  /// from the instance's orientation (see LoopOrientation) so kernel
  /// solves account operations without touching the instance.
  unsigned MeetEdgesAll = 0;
  unsigned MeetEdgesNoSource = 0;

  /// Cells per matrix side.
  size_t cells() const {
    return static_cast<size_t>(NumNodes) * NumTracked;
  }

  /// Lowers \p FW. The program captures everything the solver needs; it
  /// does not alias FW and may outlive it.
  static CompiledFlowProgram compile(const FrameworkInstance &FW);
};

/// Solves \p CF's equation system with the packed kernel (same pass
/// schedule and strategies as solveDataFlow) and unpacks into a fresh
/// SolveResult, bit-identical to the reference solver's.
SolveResult solveCompiled(const CompiledFlowProgram &CF,
                          const SolverOptions &Opts = SolverOptions());

/// Workspace form: recycles both the unpacked result matrices and the
/// packed uint64 buffers, so warm repeated solves are allocation-free.
const SolveResult &solveCompiled(const CompiledFlowProgram &CF,
                                 SolveWorkspace &WS,
                                 const SolverOptions &Opts = SolverOptions());

} // namespace ardf

#endif // ARDF_DATAFLOW_COMPILEDFLOW_H
