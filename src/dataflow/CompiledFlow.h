//===- dataflow/CompiledFlow.h - Compiled packed flow programs -*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CompiledFlowProgram lowers one FrameworkInstance into flat arrays
/// the kernel solver can sweep without a single data-dependent branch:
///
///   * the packed preserve constant per (node, tracked) cell in
///     row-major NumNodes x NumTracked layout,
///   * the generating cells as a sparse per-node patch list (CSR:
///     column + packed post-generation preserve constant) — a
///     statement generates for the handful of classes it references,
///     so a dense generate matrix would be megabytes of identity
///     values streamed through the cache every pass,
///   * the working traversal order and the working predecessor lists in
///     CSR form (one flat id array plus per-node offsets),
///   * the scalar solve parameters (meet polarity, source/exit node,
///     packed increment bound).
///
/// applyNode collapses into the branch-free dense sweep
///
///   out = min(in, Preserve)
///
/// per non-exit cell, followed by the sparse generate patch
///
///   out[c] = min(max(out[c], pack(0)), GenQ[k])
///
/// at each generating cell, and the exit node is the branch-free packed
/// increment. The fixed point over the packed arrays is provably the
/// image of the reference fixed point because pack is an order
/// isomorphism that commutes with every operator (see DESIGN.md §8);
/// the kernel solver unpacks bit-identical DistanceMatrix results.
///
/// Compile once per instance (LoopAnalysisSession memoizes), then solve
/// any number of times through a SolveWorkspace with zero allocation.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_COMPILEDFLOW_H
#define ARDF_DATAFLOW_COMPILEDFLOW_H

#include "dataflow/Framework.h"
#include "lattice/PackedDistance.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ardf {

/// One FrameworkInstance lowered to flat packed tables (see file
/// comment). Plain data: cheap to move, trivially shareable read-only
/// across threads once built.
struct CompiledFlowProgram {
  unsigned NumNodes = 0;
  unsigned NumTracked = 0;

  /// Meet polarity: min for must-problems, max for may-problems.
  bool IsMust = true;

  /// First node of the working order (pinned to bottom by the must
  /// initialization pass).
  unsigned SourceNode = 0;

  /// The i := i + 1 node, whose flow function is the packed increment.
  unsigned ExitNode = 0;

  /// Packed saturation bound of the exit increment
  /// (packed::incrementBound of the instance's trip count).
  uint64_t IncBound = packed::AllInstances;

  /// Working traversal order (forward: RPO; backward: reversed RPO).
  std::vector<unsigned> Order;

  /// Working predecessor lists in CSR layout, indexed by node id:
  /// preds of node n are Preds[PredOffsets[n] .. PredOffsets[n+1]).
  std::vector<uint32_t> PredOffsets;
  std::vector<uint32_t> Preds;

  /// Row-major NumNodes x NumTracked packed preserve constants
  /// (pack(preserveAt), min-applied to every non-exit cell).
  std::vector<uint64_t> Preserve;

  /// Generating cells of node n, sparse and CSR by node id: columns
  /// GenCols[GenOffsets[n] .. GenOffsets[n+1]) with the matching packed
  /// post-generation preserve constants in GenQ.
  std::vector<uint32_t> GenOffsets;
  std::vector<uint32_t> GenCols;
  std::vector<uint64_t> GenQ;

  /// True when every packed constant (IncBound, Preserve, GenQ) is
  /// narrowable to 32-bit cells (see PackedDistance.h); the kernel then
  /// sweeps uint32_t matrices -- half the memory traffic -- and still
  /// unpacks bit-identical results. Loop distances are bounded by trip
  /// counts, so in practice only unknown-trip programs stay wide.
  bool Narrow32 = false;

  /// Narrowed image of Preserve, filled exactly when Narrow32.
  std::vector<uint32_t> Preserve32;

  /// Display name of the lowered problem (telemetry span labels).
  std::string ProblemName;

  /// Meet operations one tracked component costs per pass, mirrored
  /// from the instance's orientation (see LoopOrientation) so kernel
  /// solves account operations without touching the instance.
  unsigned MeetEdgesAll = 0;
  unsigned MeetEdgesNoSource = 0;

  /// Cells per matrix side.
  size_t cells() const {
    return static_cast<size_t>(NumNodes) * NumTracked;
  }

  /// Lowers \p FW. The program captures everything the solver needs; it
  /// does not alias FW and may outlive it.
  static CompiledFlowProgram compile(const FrameworkInstance &FW);
};

/// Solves \p CF's equation system with the packed kernel (same pass
/// schedule and strategies as solveDataFlow) and unpacks into a fresh
/// SolveResult, bit-identical to the reference solver's.
SolveResult solveCompiled(const CompiledFlowProgram &CF,
                          const SolverOptions &Opts = SolverOptions());

/// Workspace form: recycles both the unpacked result matrices and the
/// packed uint64 buffers, so warm repeated solves are allocation-free.
const SolveResult &solveCompiled(const CompiledFlowProgram &CF,
                                 SolveWorkspace &WS,
                                 const SolverOptions &Opts = SolverOptions());

/// Several compiled flow programs of one loop fused into a
/// structure-of-arrays layout: the members share the graph, the working
/// order, the CSR predecessor lists, and the exit increment bound, so
/// their matrices interleave column-wise into one wide NumNodes x
/// TotalTracked matrix per side. One row sweep then meets and applies
/// every member at once -- the meet touches each predecessor row one
/// time instead of once per problem, and the wide rows keep the SIMD
/// lanes of VectorOps.h full even when individual problems track few
/// references.
///
/// Must members occupy the leading columns and may members the trailing
/// ones, so the mixed-polarity meet is two segment sweeps (min then
/// max), and the must-initialization pass patches a per-node prefix of
/// the generate list. Columns never interact, so every member's fixed
/// point -- and its unpacked SolveResult, visit counts included -- is
/// bit-identical to an independent solve of its CompiledFlowProgram.
///
/// Members may only differ in problem parameters, not orientation:
/// fusing requires equal traversal tables, which holds exactly for
/// same-direction problems of one LoopAnalysisSession (the session
/// builds one LoopOrientation per direction and shares it).
struct CompiledFlowGroup {
  unsigned NumNodes = 0;

  /// Total interleaved row width (sum of member widths).
  unsigned TotalTracked = 0;

  /// Columns [0, MustTracked) belong to must members (min meet); the
  /// rest to may members (max meet).
  unsigned MustTracked = 0;

  unsigned SourceNode = 0;
  unsigned ExitNode = 0;
  uint64_t IncBound = packed::AllInstances;

  /// Shared traversal tables (identical across members by precondition).
  std::vector<unsigned> Order;
  std::vector<uint32_t> PredOffsets;
  std::vector<uint32_t> Preds;

  /// Row-major NumNodes x TotalTracked packed preserve constants, member
  /// columns side by side.
  std::vector<uint64_t> Preserve;

  /// Generating cells in wide-column space, CSR by node id; within a
  /// node the must-member cells form a prefix ending at GenMustEnd[n]
  /// (the slice the must-initialization pass patches).
  std::vector<uint32_t> GenOffsets;
  std::vector<uint32_t> GenCols;
  std::vector<uint64_t> GenQ;
  std::vector<uint32_t> GenMustEnd;

  /// Narrowed-cell layout, exactly as in CompiledFlowProgram: the group
  /// narrows when every member does (members share IncBound already).
  bool Narrow32 = false;
  std::vector<uint32_t> Preserve32;

  /// One fused problem: its column range plus the per-problem scalars
  /// the solver needs to account visits, meets, and budgets exactly as
  /// an independent solve would.
  struct Member {
    /// Index into the part list compileGroup was given (group results
    /// are returned in that order).
    unsigned PartIndex = 0;
    unsigned Begin = 0;
    unsigned Count = 0;
    bool IsMust = true;
    unsigned MeetEdgesAll = 0;
    unsigned MeetEdgesNoSource = 0;
    std::string ProblemName;
  };

  /// Fused members, must problems first.
  std::vector<Member> Members;

  /// Cells per wide matrix side.
  size_t cells() const {
    return static_cast<size_t>(NumNodes) * TotalTracked;
  }

  /// Fuses \p Parts (each outliving nothing -- the group copies what it
  /// needs). Pre: at least one part, and all parts share NumNodes,
  /// Order, predecessor tables, source/exit nodes, and increment bound.
  static CompiledFlowGroup
  compile(const std::vector<const CompiledFlowProgram *> &Parts);
};

/// Recyclable buffers for repeated interleaved solves: the per-member
/// result matrices plus the wide packed working set. Warm repeats are
/// allocation-free once grown, like SolveWorkspace.
class GroupSolveWorkspace {
public:
  /// Results of the most recent group solve, indexed like the part list
  /// the group was compiled from (valid until the next solve).
  const std::vector<SolveResult> &results() const { return Results; }

  /// Solves that had to grow an allocation, and total solves run.
  unsigned matrixGrowths() const { return Growths; }
  unsigned solves() const { return Solves; }

private:
  friend const std::vector<SolveResult> &
  solveCompiledGroup(const CompiledFlowGroup &G, GroupSolveWorkspace &WS,
                     const SolverOptions &Opts);
  std::vector<SolveResult> Results;
  std::vector<uint64_t> PackedOut;
  std::vector<uint64_t> PackedScratch;
  std::vector<uint32_t> PackedOut32;
  std::vector<uint32_t> PackedScratch32;
  unsigned Growths = 0;
  unsigned Solves = 0;
};

/// Solves every member of \p G in one interleaved sweep, returning one
/// SolveResult per part in part order, each bit-identical to an
/// independent solveCompiled of that part (budget degradation
/// semantics, visit counts, and telemetry per member included).
///
/// Pre: Opts.Strat == Strategy::PaperSchedule and !Opts.RecordHistory
/// (change tracking and history snapshots would couple the members;
/// LoopAnalysisSession::solveInterleaved falls back to independent
/// solves for those modes).
std::vector<SolveResult>
solveCompiledGroup(const CompiledFlowGroup &G,
                   const SolverOptions &Opts = SolverOptions());

/// Workspace form of the interleaved solve (see GroupSolveWorkspace).
const std::vector<SolveResult> &
solveCompiledGroup(const CompiledFlowGroup &G, GroupSolveWorkspace &WS,
                   const SolverOptions &Opts = SolverOptions());

} // namespace ardf

#endif // ARDF_DATAFLOW_COMPILEDFLOW_H
