//===- dataflow/References.cpp - Reference universe of a loop ------------===//

#include "dataflow/References.h"

#include <cassert>
#include <map>

using namespace ardf;

namespace {

/// Collects the induction variables of \p Loop and all loops nested in it.
void collectInnerIVs(const DoLoopStmt &Loop, std::vector<std::string> &IVs) {
  IVs.push_back(Loop.getIndVar());
  forEachStmt(Loop.getBody(), [&](const Stmt &S) {
    if (const auto *Inner = dyn_cast<DoLoopStmt>(&S))
      IVs.push_back(Inner->getIndVar());
  });
}

} // namespace

ReferenceUniverse::ReferenceUniverse(const LoopFlowGraph &Graph,
                                     const Program &P,
                                     const std::string &IVOverride)
    : Graph(&Graph), Prog(&P),
      IV(IVOverride.empty() ? Graph.getIndVar() : IVOverride) {
  ByNode.resize(Graph.getNumNodes());
  for (unsigned Node = 0, E = Graph.getNumNodes(); Node != E; ++Node)
    collectFromNode(Node);
  computeAccessClasses();
}

void ReferenceUniverse::computeAccessClasses() {
  // The canonical printed affine form is computed once per occurrence
  // here; framework instances group and cache by the resulting class
  // ids without touching strings again.
  ClassOf.assign(Occs.size(), noAccessClass);
  std::map<std::string, unsigned> ClassOfKey;
  for (const RefOccurrence &Occ : Occs) {
    if (!Occ.isTrackable())
      continue;
    std::string Key = Occ.arrayName() + "|" + Occ.Affine->A.toString() +
                      "|" + Occ.Affine->B.toString();
    auto [It, Inserted] = ClassOfKey.try_emplace(Key, NumClasses);
    if (Inserted)
      ++NumClasses;
    ClassOf[Occ.Id] = It->second;
  }
}

void ReferenceUniverse::collectFromNode(unsigned Node) {
  const FlowNode &N = Graph->getNode(Node);
  switch (N.Kind) {
  case FlowNodeKind::Statement: {
    const auto *AS = cast<AssignStmt>(N.S);
    // Uses on the right-hand side first (they are evaluated first), then
    // uses in the target's subscripts, then the definition itself.
    collectExpr(*AS->getRHS(), Node, *N.S, /*InSummary=*/false);
    if (const ArrayRefExpr *Target = AS->getArrayTarget()) {
      for (const ExprPtr &Sub : Target->subscripts())
        collectExpr(*Sub, Node, *N.S, /*InSummary=*/false);
      addOccurrence(*Target, Node, *N.S, /*IsDef=*/true,
                    /*InSummary=*/false);
    }
    break;
  }
  case FlowNodeKind::Guard:
    collectExpr(*cast<IfStmt>(N.S)->getCond(), Node, *N.S,
                /*InSummary=*/false);
    break;
  case FlowNodeKind::Summary:
    collectSummary(*cast<DoLoopStmt>(N.S), Node);
    break;
  case FlowNodeKind::Exit:
    break;
  }
}

void ReferenceUniverse::collectExpr(const Expr &E, unsigned Node,
                                    const Stmt &Owner, bool InSummary) {
  forEachSubExpr(E, [&](const Expr &Sub) {
    if (const auto *AR = dyn_cast<ArrayRefExpr>(&Sub))
      addOccurrence(*AR, Node, Owner, /*IsDef=*/false, InSummary);
  });
}

void ReferenceUniverse::collectSummary(const DoLoopStmt &Inner,
                                       unsigned Node) {
  std::vector<std::string> InnerIVs;
  collectInnerIVs(Inner, InnerIVs);

  forEachStmt(Inner.getBody(), [&](const Stmt &S) {
    // Nested inner loops are traversed by forEachStmt itself; only the
    // per-statement references need handling here.
    switch (S.getKind()) {
    case Stmt::Kind::Assign: {
      const auto *AS = cast<AssignStmt>(&S);
      collectExpr(*AS->getRHS(), Node, S, /*InSummary=*/true);
      if (const ArrayRefExpr *Target = AS->getArrayTarget()) {
        for (const ExprPtr &Sub : Target->subscripts())
          collectExpr(*Sub, Node, S, /*InSummary=*/true);
        addOccurrence(*Target, Node, S, /*IsDef=*/true, /*InSummary=*/true);
      }
      break;
    }
    case Stmt::Kind::If:
      collectExpr(*cast<IfStmt>(&S)->getCond(), Node, S, /*InSummary=*/true);
      break;
    case Stmt::Kind::While:
      collectExpr(*cast<WhileStmt>(&S)->getCond(), Node, S,
                  /*InSummary=*/true);
      break;
    case Stmt::Kind::DoLoop:
    case Stmt::Kind::Break:
      break;
    }
  });

  // Occurrences inside the summary are trackable in the enclosing loop
  // only when affine in the outer IV with inner-IV-free coefficients
  // (Section 3.2: references of the form X[a * i2 + b]).
  for (RefOccurrence &Occ : Occs) {
    if (Occ.Node != Node || !Occ.Affine)
      continue;
    for (const std::string &IV : InnerIVs) {
      if (Occ.Affine->A.mentions(IV) || Occ.Affine->B.mentions(IV)) {
        Occ.Affine.reset();
        break;
      }
    }
  }
}

void ReferenceUniverse::addOccurrence(const ArrayRefExpr &Ref, unsigned Node,
                                      const Stmt &Owner, bool IsDef,
                                      bool InSummary) {
  RefOccurrence Occ;
  Occ.Id = Occs.size();
  Occ.Node = Node;
  Occ.Ref = &Ref;
  Occ.OwnerStmt = &Owner;
  Occ.IsDef = IsDef;
  Occ.InSummary = InSummary;
  Occ.Affine = makeAffineAccess(Ref, *Prog, IV);
  // Non-affine references cannot be reasoned about individually; summary
  // references conservatively kill every same-array instance of the
  // enclosing loop (Section 3.2).
  Occ.KillsWholeArray = !Occ.Affine.has_value() || InSummary;
  ByNode[Node].push_back(Occ.Id);
  Occs.push_back(std::move(Occ));
}
