//===- dataflow/Provenance.cpp - Solution derivation recording -----------===//

#include "dataflow/Provenance.h"

#include "cfg/LoopFlowGraph.h"
#include "dataflow/Framework.h"
#include "dataflow/References.h"
#include "ir/PrettyPrinter.h"

#include <cassert>
#include <functional>
#include <ostream>
#include <sstream>
#include <unordered_map>

using namespace ardf;

unsigned SolveProvenance::settledLayer(unsigned Node, unsigned Idx,
                                       bool IsIn) const {
  const std::vector<DistanceValue> &Cells = IsIn ? CellIn : CellOut;
  DistanceValue Final = Cells[cellIndex(Passes, Node, Idx)];
  unsigned L = Passes;
  while (L > 0 && Cells[cellIndex(L - 1, Node, Idx)] == Final)
    --L;
  return L;
}

DistanceValue SolveProvenance::applyTransfer(unsigned Node, unsigned Idx,
                                             DistanceValue In) const {
  if (Node == ExitNode)
    return In.increment(TripCount);
  DistanceValue Out =
      DistanceValue::min(In, Preserve[Node * NumTracked + Idx]);
  if (!GenAt[Node * NumTracked + Idx])
    return Out;
  Out = DistanceValue::max(Out, DistanceValue::finite(0));
  return DistanceValue::min(Out, PreserveAfter[Node * NumTracked + Idx]);
}

SolveProvenance SolveProvenance::capture(const FrameworkInstance &FW) {
  SolveProvenance P;
  const LoopFlowGraph &Graph = FW.getGraph();
  P.NumNodes = Graph.getNumNodes();
  P.NumTracked = FW.getNumTracked();
  P.IsMust = FW.getSpec().isMust();
  P.Backward = FW.getSpec().isBackward();
  P.TripCount = FW.getTripCount();
  P.ProblemName = FW.getSpec().Name;
  P.ExitNode = Graph.getExit();
  P.Order = FW.workingOrder();
  P.SourceNode = P.Order.front();
  P.OrderPos.assign(P.NumNodes, 0);
  for (unsigned I = 0; I != P.Order.size(); ++I)
    P.OrderPos[P.Order[I]] = I;

  P.PredOffset.reserve(P.NumNodes + 1);
  P.PredOffset.push_back(0);
  for (unsigned N = 0; N != P.NumNodes; ++N) {
    const std::vector<unsigned> &Preds = FW.workingPreds(N);
    P.PredList.insert(P.PredList.end(), Preds.begin(), Preds.end());
    P.PredOffset.push_back(P.PredList.size());
  }

  P.Tracked.reserve(P.NumTracked);
  for (unsigned Idx = 0; Idx != P.NumTracked; ++Idx) {
    const RefOccurrence &Occ = FW.getTracked(Idx);
    TrackedInfo TI;
    TI.OccId = Occ.Id;
    TI.Node = Occ.Node;
    TI.Loc = Occ.Ref->getLoc();
    TI.RefText = exprToString(*Occ.Ref);
    TI.IsDef = Occ.IsDef;
    P.Tracked.push_back(std::move(TI));
  }

  P.Nodes.reserve(P.NumNodes);
  for (unsigned N = 0; N != P.NumNodes; ++N) {
    NodeInfo NI;
    NI.Label = Graph.nodeLabel(N);
    if (const Stmt *S = Graph.getNode(N).S)
      NI.Loc = S->getLoc();
    NI.IsExit = N == P.ExitNode;
    P.Nodes.push_back(std::move(NI));
  }

  P.Preserve.resize(P.NumNodes * P.NumTracked);
  P.PreserveAfter.resize(P.NumNodes * P.NumTracked);
  P.GenAt.resize(P.NumNodes * P.NumTracked);
  for (unsigned N = 0; N != P.NumNodes; ++N)
    for (unsigned Idx = 0; Idx != P.NumTracked; ++Idx) {
      P.Preserve[N * P.NumTracked + Idx] = FW.preserveAt(Idx, N);
      P.PreserveAfter[N * P.NumTracked + Idx] = FW.preserveAfterGen(Idx, N);
      P.GenAt[N * P.NumTracked + Idx] = FW.generatesAt(Idx, N);
    }
  return P;
}

//===----------------------------------------------------------------------===//
// Derivation DAG construction
//===----------------------------------------------------------------------===//

DerivationGraph ardf::buildDerivation(const SolveProvenance &P,
                                      unsigned Node, unsigned Idx,
                                      bool IsIn) {
  assert(!P.Degraded && "no derivation for a degraded recording");
  DerivationGraph G;
  G.QueryNode = Node;
  G.QueryIdx = Idx;
  G.QueryIsIn = IsIn;
  G.SettledLayer = P.settledLayer(Node, Idx, IsIn);

  // Interning memo: (side, layer, node) -> derivation node id. The
  // tracked index is fixed for the whole graph.
  std::unordered_map<uint64_t, uint32_t> Memo;
  auto key = [&P](bool OutSide, unsigned L, unsigned N) {
    return (uint64_t(L) * P.NumNodes + N) * 2 + (OutSide ? 1 : 0);
  };

  std::function<uint32_t(unsigned, unsigned)> outAt;
  std::function<uint32_t(unsigned, unsigned)> inAt;

  // IN of (layer, node): a meet over predecessor OUTs, except the two
  // pinned initializations (must source at layer 0; any may layer-0
  // cell), which are leaves.
  inAt = [&](unsigned L, unsigned N) -> uint32_t {
    auto It = Memo.find(key(false, L, N));
    if (It != Memo.end())
      return It->second;
    uint32_t Id = G.Nodes.size();
    Memo.emplace(key(false, L, N), Id);
    G.Nodes.emplace_back();
    if (L == 0 && (!P.IsMust || N == P.SourceNode)) {
      DerivationNode &D = G.Nodes[Id];
      D.K = DerivationNode::Kind::Init;
      D.Layer = L;
      D.Node = N;
      D.Value = P.in(L, N, Idx);
      return Id;
    }
    unsigned NP = P.numPreds(N);
    std::vector<uint32_t> Inputs;
    std::vector<DistanceValue> Vals;
    Inputs.reserve(NP);
    Vals.reserve(NP);
    for (unsigned K = 0; K != NP; ++K) {
      Inputs.push_back(outAt(P.predLayer(L, N, K), P.pred(N, K)));
      Vals.push_back(P.meetInput(L, N, K, Idx));
    }
    DerivationNode &D = G.Nodes[Id];
    D.K = DerivationNode::Kind::Meet;
    D.Layer = L;
    D.Node = N;
    D.Value = P.in(L, N, Idx);
    D.Inputs = std::move(Inputs);
    D.InputValues = std::move(Vals);
    for (unsigned K = 0; K != NP; ++K)
      if (D.InputValues[K] == D.Value) {
        D.Winner = static_cast<int>(K);
        break;
      }
    return Id;
  };

  // OUT of (layer, node): layer 0 is the initialization seed (for a
  // must non-generating interior node the seed is the propagated
  // layer-0 meet, recorded as its input); later layers apply the node
  // transfer to the same layer's IN.
  outAt = [&](unsigned L, unsigned N) -> uint32_t {
    auto It = Memo.find(key(true, L, N));
    if (It != Memo.end())
      return It->second;
    uint32_t Id = G.Nodes.size();
    Memo.emplace(key(true, L, N), Id);
    G.Nodes.emplace_back();
    if (L == 0) {
      bool Propagated = P.IsMust && !P.GenAt[N * P.NumTracked + Idx] &&
                        N != P.SourceNode;
      std::vector<uint32_t> Inputs;
      if (Propagated)
        Inputs.push_back(inAt(0, N));
      DerivationNode &D = G.Nodes[Id];
      D.K = DerivationNode::Kind::Init;
      D.Layer = 0;
      D.Node = N;
      D.Value = P.out(0, N, Idx);
      D.Inputs = std::move(Inputs);
      return Id;
    }
    uint32_t In = inAt(L, N);
    DerivationNode &D = G.Nodes[Id];
    D.K = DerivationNode::Kind::Transfer;
    D.Layer = L;
    D.Node = N;
    D.Value = P.out(L, N, Idx);
    D.Inputs.push_back(In);
    return Id;
  };

  G.Root = IsIn ? inAt(P.Passes, Node) : outAt(P.Passes, Node);
  return G;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

const char *meetName(const SolveProvenance &P) {
  return P.IsMust ? "must-meet (min)" : "may-meet (max)";
}

/// One-line explanation of \p D in the context of tracked index
/// \p Idx, without operand references.
std::string describeNode(const SolveProvenance &P, const DerivationNode &D,
                         unsigned Idx) {
  const SolveProvenance::TrackedInfo &TI = P.Tracked[Idx];
  const std::string &Label = P.Nodes[D.Node].Label;
  std::ostringstream OS;
  switch (D.K) {
  case DerivationNode::Kind::Init:
    if (!P.IsMust)
      OS << "init [" << Label << "]: may guess T";
    else if (P.GenAt[D.Node * P.NumTracked + Idx])
      OS << "init [" << Label << "]: " << TI.RefText
         << " generated here, optimistic seed T";
    else if (D.Inputs.empty())
      OS << "init [" << Label << "]: loop entry pinned to _";
    else
      OS << "init [" << Label << "]: seed propagated";
    break;
  case DerivationNode::Kind::Meet: {
    OS << "IN pass " << D.Layer << " [" << Label << "]: " << meetName(P)
       << " of " << D.InputValues.size() << " path"
       << (D.InputValues.size() == 1 ? "" : "s");
    bool Lost = false;
    for (unsigned K = 0; K != D.InputValues.size(); ++K)
      if (D.InputValues[K] != D.Value) {
        OS << (Lost ? ", " : "; lost: ") << D.InputValues[K].toString()
           << " from [" << P.Nodes[P.pred(D.Node, K)].Label << "]";
        Lost = true;
      }
    break;
  }
  case DerivationNode::Kind::Transfer: {
    DistanceValue In = P.in(D.Layer, D.Node, Idx);
    if (D.Node == P.ExitNode) {
      OS << "OUT pass " << D.Layer << " [" << Label
         << "]: back edge, distance + 1";
      if (In != D.Value && D.Value.isAllInstances())
        OS << " (saturated to T)";
    } else if (P.GenAt[D.Node * P.NumTracked + Idx]) {
      OS << "OUT pass " << D.Layer << " [" << Label << "]: generates "
         << TI.RefText << ", distance 0";
    } else if (In != D.Value) {
      OS << "OUT pass " << D.Layer << " [" << Label
         << "]: killed here, preserve p="
         << P.Preserve[D.Node * P.NumTracked + Idx].toString();
    } else {
      OS << "OUT pass " << D.Layer << " [" << Label << "]: preserved";
    }
    break;
  }
  }
  return OS.str();
}

} // namespace

void ardf::printDerivation(std::ostream &OS, const SolveProvenance &P,
                           const DerivationGraph &G) {
  unsigned Idx = G.QueryIdx;
  const DerivationNode &Root = G.root();
  OS << "derivation of " << (G.QueryIsIn ? "IN" : "OUT") << "["
     << P.Nodes[G.QueryNode].Label << "] for " << P.Tracked[Idx].RefText
     << " = " << Root.Value.toString() << "  (problem " << P.ProblemName
     << ", settled at pass " << G.SettledLayer << ")\n";

  std::vector<char> Printed(G.Nodes.size(), 0);
  std::function<void(uint32_t, unsigned)> rec = [&](uint32_t Id,
                                                    unsigned Depth) {
    const DerivationNode &D = G.Nodes[Id];
    for (unsigned I = 0; I != Depth; ++I)
      OS << "  ";
    OS << "#" << Id << " = " << D.Value.toString() << "  "
       << describeNode(P, D, Idx);
    if (Printed[Id]) {
      OS << "  (shared, expanded above)\n";
      return;
    }
    Printed[Id] = 1;
    OS << '\n';
    for (uint32_t In : D.Inputs)
      rec(In, Depth + 1);
  };
  rec(G.Root, 1);
}

std::vector<ProvenanceStep>
ardf::derivationTrail(const SolveProvenance &P, const DerivationGraph &G) {
  unsigned Idx = G.QueryIdx;
  const SolveProvenance::TrackedInfo &TI = P.Tracked[Idx];

  // Walk the winning path root -> leaf, then report it in chronological
  // (leaf -> root) order, keeping only the eventful steps.
  std::vector<uint32_t> Path;
  uint32_t Cur = G.Root;
  for (;;) {
    Path.push_back(Cur);
    const DerivationNode &D = G.Nodes[Cur];
    if (D.Inputs.empty())
      break;
    if (D.K == DerivationNode::Kind::Meet)
      Cur = D.Inputs[D.Winner >= 0 ? unsigned(D.Winner) : 0u];
    else
      Cur = D.Inputs.front();
  }

  std::vector<ProvenanceStep> Steps;
  auto locOf = [&](const DerivationNode &D) {
    SourceLoc L = P.Nodes[D.Node].Loc;
    return L.isValid() ? L : TI.Loc;
  };
  for (auto It = Path.rbegin(); It != Path.rend(); ++It) {
    const DerivationNode &D = G.Nodes[*It];
    std::ostringstream Msg;
    bool Keep = false;
    switch (D.K) {
    case DerivationNode::Kind::Init:
      Keep = true;
      if (!P.IsMust)
        Msg << TI.RefText << ": optimistic may guess T";
      else if (P.GenAt[D.Node * P.NumTracked + Idx])
        Msg << TI.RefText << " generated by '" << P.Nodes[D.Node].Label
            << "' (optimistic seed)";
      else if (D.Node == P.SourceNode && D.Inputs.empty())
        Msg << "loop entry: no instance of " << TI.RefText << " yet";
      else
        Msg << "seed propagated to '" << P.Nodes[D.Node].Label << "'";
      break;
    case DerivationNode::Kind::Meet: {
      std::ostringstream Lost;
      for (unsigned K = 0; K != D.InputValues.size(); ++K)
        if (D.InputValues[K] != D.Value)
          Lost << (Lost.tellp() > 0 ? ", " : "")
               << D.InputValues[K].toString() << " from '"
               << P.Nodes[P.pred(D.Node, K)].Label << "'";
      if (Lost.tellp() > 0) {
        Keep = true;
        Msg << meetName(P) << " at '" << P.Nodes[D.Node].Label
            << "' kept " << D.Value.toString() << "; lost "
            << Lost.str();
      }
      break;
    }
    case DerivationNode::Kind::Transfer: {
      DistanceValue In = P.in(D.Layer, D.Node, Idx);
      if (D.Node == P.ExitNode) {
        Keep = true;
        Msg << "back edge: distance + 1 -> " << D.Value.toString();
      } else if (P.GenAt[D.Node * P.NumTracked + Idx]) {
        Keep = true;
        Msg << TI.RefText << " generated by '" << P.Nodes[D.Node].Label
            << "': distance 0";
      } else if (In != D.Value) {
        Keep = true;
        Msg << "killed at '" << P.Nodes[D.Node].Label << "': "
            << In.toString() << " -> " << D.Value.toString()
            << " (preserve "
            << P.Preserve[D.Node * P.NumTracked + Idx].toString() << ")";
      }
      break;
    }
    }
    if (Keep)
      Steps.push_back({locOf(D), Msg.str()});
  }

  const DerivationNode &Root = G.root();
  std::ostringstream Final;
  Final << (G.QueryIsIn ? "IN" : "OUT") << "['" << P.Nodes[G.QueryNode].Label
        << "'] for " << TI.RefText << " settled to "
        << Root.Value.toString() << " at pass " << G.SettledLayer;
  Steps.push_back({locOf(Root), Final.str()});
  return Steps;
}

std::string ardf::derivationToJson(const SolveProvenance &P,
                                   const DerivationGraph &G) {
  std::ostringstream OS;
  auto esc = [](const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    return Out;
  };
  OS << "{\"problem\":\"" << esc(P.ProblemName) << "\",\"cell\":\""
     << esc(P.Tracked[G.QueryIdx].RefText) << "\",\"node\":"
     << G.QueryNode << ",\"side\":\"" << (G.QueryIsIn ? "in" : "out")
     << "\",\"value\":\"" << G.root().Value.toString()
     << "\",\"settled_pass\":" << G.SettledLayer << ",\"root\":" << G.Root
     << ",\"nodes\":[";
  for (unsigned I = 0; I != G.Nodes.size(); ++I) {
    const DerivationNode &D = G.Nodes[I];
    if (I)
      OS << ',';
    const char *Kind = D.K == DerivationNode::Kind::Init ? "init"
                       : D.K == DerivationNode::Kind::Meet ? "meet"
                                                           : "transfer";
    OS << "{\"id\":" << I << ",\"kind\":\"" << Kind << "\",\"pass\":"
       << D.Layer << ",\"node\":" << D.Node << ",\"label\":\""
       << esc(P.Nodes[D.Node].Label) << "\",\"value\":\""
       << D.Value.toString() << "\",\"inputs\":[";
    for (unsigned K = 0; K != D.Inputs.size(); ++K)
      OS << (K ? "," : "") << D.Inputs[K];
    OS << ']';
    if (D.K == DerivationNode::Kind::Meet) {
      OS << ",\"winner\":" << D.Winner << ",\"input_values\":[";
      for (unsigned K = 0; K != D.InputValues.size(); ++K)
        OS << (K ? "," : "") << '"' << D.InputValues[K].toString() << '"';
      OS << ']';
    }
    OS << '}';
  }
  OS << "]}";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Replay oracle
//===----------------------------------------------------------------------===//

bool ardf::replayProvenance(const SolveProvenance &P, std::string *WhyNot) {
  if (P.Degraded)
    return true;
  auto fail = [WhyNot](const std::string &Why) {
    if (WhyNot)
      *WhyNot = Why;
    return false;
  };
  auto meet = [&P](DistanceValue A, DistanceValue B) {
    return P.IsMust ? DistanceValue::min(A, B) : DistanceValue::max(A, B);
  };
  auto cellName = [](unsigned L, unsigned N, unsigned Idx) {
    std::ostringstream OS;
    OS << "layer " << L << " node " << N << " idx " << Idx;
    return OS.str();
  };

  for (unsigned L = 0; L <= P.Passes; ++L) {
    for (unsigned Pos = 0; Pos != P.Order.size(); ++Pos) {
      unsigned N = P.Order[Pos];
      for (unsigned Idx = 0; Idx != P.NumTracked; ++Idx) {
        DistanceValue In, Out;
        if (L == 0 && !P.IsMust) {
          In = DistanceValue::allInstances();
          Out = DistanceValue::allInstances();
        } else if (L == 0 && N == P.SourceNode) {
          In = DistanceValue::noInstance();
          Out = P.GenAt[N * P.NumTracked + Idx]
                    ? DistanceValue::allInstances()
                    : In;
        } else {
          unsigned NP = P.numPreds(N);
          if (NP == 0)
            return fail("node without working predecessors at " +
                        cellName(L, N, Idx));
          In = P.meetInput(L, N, 0, Idx);
          for (unsigned K = 1; K != NP; ++K)
            In = meet(In, P.meetInput(L, N, K, Idx));
          // Each recorded operand must be the predecessor cell it
          // claims to be (the recording is the derivation, not a
          // parallel reconstruction).
          for (unsigned K = 0; K != NP; ++K) {
            unsigned Pred = P.pred(N, K);
            if (L == 0 && P.OrderPos[Pred] >= Pos)
              continue; // not yet written during the init pass
            DistanceValue Claimed =
                P.out(P.predLayer(L, N, K), Pred, Idx);
            if (P.meetInput(L, N, K, Idx) != Claimed)
              return fail("meet operand " + std::to_string(K) +
                          " disagrees with pred OUT at " +
                          cellName(L, N, Idx));
          }
          Out = L == 0 ? (P.GenAt[N * P.NumTracked + Idx]
                              ? DistanceValue::allInstances()
                              : In)
                       : P.applyTransfer(N, Idx, In);
        }
        if (In != P.in(L, N, Idx))
          return fail("replayed IN " + In.toString() +
                      " != recorded " + P.in(L, N, Idx).toString() +
                      " at " + cellName(L, N, Idx));
        if (Out != P.out(L, N, Idx))
          return fail("replayed OUT " + Out.toString() +
                      " != recorded " + P.out(L, N, Idx).toString() +
                      " at " + cellName(L, N, Idx));
      }
    }
  }
  return true;
}
