//===- dataflow/VectorOps.h - SIMD row operations --------------*- C++ -*-===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-parallel layer under the packed kernel engine. The packed
/// lattice (lattice/PackedDistance.h) reduced every flow operator to
/// exact unsigned 64-bit arithmetic -- min, max, a saturating add, an
/// XOR diff -- so whole matrix rows can be swept with SIMD. This header
/// names those row operations once and dispatches them at runtime:
///
///   MinInto    Dst[i] = min(Dst[i], Src[i])        (must meet)
///   MaxInto    Dst[i] = max(Dst[i], Src[i])        (may meet)
///   MinRows    Dst[i] = min(A[i], B[i])            (preserve apply)
///   Increment  Dst[i] = packed::increment(Src[i])  (exit node)
///   XorAccum   OR over i of A[i] ^ B[i]            (change tracking)
///   Unpack     Dst[i] = packed::unpack(Src[i])     (result export)
///
/// Four backends implement the table: portable scalar loops (always
/// available, and what the compiler auto-vectorizes for the baseline
/// ISA), AVX2 and AVX-512 on x86-64 (compiled with per-function target
/// attributes, so a plain baseline build still carries them), and NEON
/// on AArch64. rowOps() picks the widest backend the host supports via
/// CPUID at first use -- not at configure time, so one binary serves a
/// whole fleet -- and the choice can be pinned with the ARDF_FORCE_ISA
/// environment variable (scalar|avx2|avx512|neon) or, tier by tier
/// within one process, with setActiveIsaForTesting (what the
/// scalar-vs-SIMD bit-identity oracle iterates).
///
/// Every operation is exact integer arithmetic: all backends return
/// bit-identical results by construction, and the VectorOps tests
/// assert it over boundary-heavy random rows for every supported tier.
///
//===----------------------------------------------------------------------===//

#ifndef ARDF_DATAFLOW_VECTOROPS_H
#define ARDF_DATAFLOW_VECTOROPS_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ardf {

class DistanceValue;

namespace simd {

/// Instruction-set tiers a backend can target, widest last.
enum class Isa : uint8_t { Scalar, NEON, AVX2, AVX512 };

/// One backend's row-operation table (see the file comment for the
/// per-entry semantics). Plain function pointers: the kernel solver
/// loads the table once per solve and calls through it, so the dispatch
/// cost is independent of row count.
struct RowOps {
  Isa Tier;
  void (*MinInto)(uint64_t *Dst, const uint64_t *Src, size_t N);
  void (*MaxInto)(uint64_t *Dst, const uint64_t *Src, size_t N);
  void (*MinRows)(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                  size_t N);
  void (*Increment)(uint64_t *Dst, const uint64_t *Src, size_t N,
                    uint64_t Bound);
  uint64_t (*XorAccum)(const uint64_t *A, const uint64_t *B, size_t N);
  void (*Unpack)(DistanceValue *Dst, const uint64_t *Src, size_t N);
};

/// The same operation table over narrowed uint32_t cells (see
/// PackedDistance.h): twice the lanes per vector and half the memory
/// traffic, for compiled programs whose constants narrow. Unpack here
/// widens while it unpacks, so narrowed solves export the same 16-byte
/// DistanceValue cells.
struct RowOps32 {
  Isa Tier;
  void (*MinInto)(uint32_t *Dst, const uint32_t *Src, size_t N);
  void (*MaxInto)(uint32_t *Dst, const uint32_t *Src, size_t N);
  void (*MinRows)(uint32_t *Dst, const uint32_t *A, const uint32_t *B,
                  size_t N);
  void (*Increment)(uint32_t *Dst, const uint32_t *Src, size_t N,
                    uint32_t Bound);
  uint32_t (*XorAccum)(const uint32_t *A, const uint32_t *B, size_t N);
  void (*Unpack)(DistanceValue *Dst, const uint32_t *Src, size_t N);
};

/// The active row-operation table: the widest host-supported tier,
/// unless overridden by ARDF_FORCE_ISA or setActiveIsaForTesting.
/// Selected once (thread-safe); the returned reference is stable.
const RowOps &rowOps();

/// The narrowed-cell table of the same active tier as rowOps().
const RowOps32 &rowOps32();

/// The tier rowOps() currently dispatches to.
Isa activeIsa();

/// True when this host can execute \p Tier (Scalar is always true).
bool isaSupported(Isa Tier);

/// The widest tier isaSupported() admits on this host.
Isa bestSupportedIsa();

/// Display name of \p Tier: "scalar", "neon", "avx2", "avx512".
const char *isaName(Isa Tier);

/// Parses an ARDF_FORCE_ISA-style name into \p Out; false if \p Name
/// is not a known tier name.
bool parseIsaName(std::string_view Name, Isa &Out);

/// What the ARDF_FORCE_ISA environment variable did at dispatch time.
enum class ForceStatus : uint8_t {
  None,        ///< Variable unset: auto-detected tier.
  Applied,     ///< Named tier recognized, supported, and active.
  Unsupported, ///< Named tier not executable here; fell back to auto.
  Invalid      ///< Unrecognized name; fell back to auto.
};
ForceStatus forceStatus();

/// Repoints rowOps() at \p Tier for the rest of the process (or until
/// the next call). Returns false -- leaving the active table unchanged
/// -- when the host cannot execute \p Tier. Test-only: not thread-safe
/// against concurrent solves; the oracle suites iterate tiers in one
/// single-threaded process.
bool setActiveIsaForTesting(Isa Tier);

/// The raw backend table of \p Tier regardless of the active choice.
/// Pre: isaSupported(Tier).
const RowOps &backendOps(Isa Tier);

/// Narrowed-cell analogue of backendOps. Pre: isaSupported(Tier).
const RowOps32 &backendOps32(Isa Tier);

} // namespace simd
} // namespace ardf

#endif // ARDF_DATAFLOW_VECTOROPS_H
