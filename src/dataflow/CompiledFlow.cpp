//===- dataflow/CompiledFlow.cpp - Compiled packed flow programs ---------===//

#include "dataflow/CompiledFlow.h"

#include "cfg/LoopFlowGraph.h"
#include "telemetry/Telemetry.h"

#include <cassert>

using namespace ardf;

CompiledFlowProgram CompiledFlowProgram::compile(const FrameworkInstance &FW) {
  telem::Telemetry *Telem = telem::Telemetry::current();
  telem::Span S("compile-flow", "flow", FW.getSpec().Name);
  uint64_t Start = Telem ? telem::wallNowNs() : 0;

  CompiledFlowProgram CF;
  CF.NumNodes = FW.getGraph().getNumNodes();
  CF.NumTracked = FW.getNumTracked();
  CF.IsMust = FW.getSpec().isMust();
  CF.ProblemName = FW.getSpec().Name;
  CF.MeetEdgesAll = FW.meetEdges(false);
  CF.MeetEdgesNoSource = FW.meetEdges(true);
  CF.Order = FW.workingOrder();
  assert(!CF.Order.empty() && "flow graph without nodes");
  CF.SourceNode = CF.Order.front();
  CF.ExitNode = FW.getGraph().getExit();
  CF.IncBound = packed::incrementBound(FW.getTripCount());

  // Working predecessor lists, CSR by node id.
  CF.PredOffsets.resize(CF.NumNodes + 1, 0);
  size_t TotalPreds = 0;
  for (unsigned Node = 0; Node != CF.NumNodes; ++Node)
    TotalPreds += FW.workingPreds(Node).size();
  CF.Preds.reserve(TotalPreds);
  for (unsigned Node = 0; Node != CF.NumNodes; ++Node) {
    CF.PredOffsets[Node] = static_cast<uint32_t>(CF.Preds.size());
    for (unsigned Pred : FW.workingPreds(Node))
      CF.Preds.push_back(Pred);
  }
  CF.PredOffsets[CF.NumNodes] = static_cast<uint32_t>(CF.Preds.size());

  // Dense packed preserve constants plus the sparse generate patch
  // lists (a statement generates only for the classes it references, so
  // the generate side of the transfer is a few cells per node).
  CF.Preserve.resize(CF.cells());
  CF.GenOffsets.resize(CF.NumNodes + 1, 0);
  for (unsigned Node = 0; Node != CF.NumNodes; ++Node) {
    CF.GenOffsets[Node] = static_cast<uint32_t>(CF.GenCols.size());
    size_t Row = static_cast<size_t>(Node) * CF.NumTracked;
    for (unsigned Idx = 0; Idx != CF.NumTracked; ++Idx) {
      CF.Preserve[Row + Idx] = packed::pack(FW.preserveAt(Idx, Node));
      if (FW.generatesAt(Idx, Node)) {
        CF.GenCols.push_back(Idx);
        CF.GenQ.push_back(packed::pack(FW.preserveAfterGen(Idx, Node)));
      }
    }
  }
  CF.GenOffsets[CF.NumNodes] = static_cast<uint32_t>(CF.GenCols.size());

  if (Telem) {
    Telem->add(telem::Counter::FlowCompiles);
    Telem->add(telem::Counter::FlowCompiledCells, CF.cells());
    Telem->add(telem::Counter::FlowCompileNs, telem::wallNowNs() - Start);
  }
  if (S.active()) {
    S.arg("cells", CF.cells());
    S.arg("gen_cells", CF.GenCols.size());
    S.arg("pred_edges", CF.Preds.size());
  }
  return CF;
}
