//===- dataflow/CompiledFlow.cpp - Compiled packed flow programs ---------===//

#include "dataflow/CompiledFlow.h"

#include "cfg/LoopFlowGraph.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace ardf;

CompiledFlowProgram CompiledFlowProgram::compile(const FrameworkInstance &FW) {
  telem::Telemetry *Telem = telem::Telemetry::current();
  telem::Span S("compile-flow", "flow", FW.getSpec().Name);
  uint64_t Start = Telem ? telem::wallNowNs() : 0;

  CompiledFlowProgram CF;
  CF.NumNodes = FW.getGraph().getNumNodes();
  CF.NumTracked = FW.getNumTracked();
  CF.IsMust = FW.getSpec().isMust();
  CF.ProblemName = FW.getSpec().Name;
  CF.MeetEdgesAll = FW.meetEdges(false);
  CF.MeetEdgesNoSource = FW.meetEdges(true);
  CF.Order = FW.workingOrder();
  assert(!CF.Order.empty() && "flow graph without nodes");
  CF.SourceNode = CF.Order.front();
  CF.ExitNode = FW.getGraph().getExit();
  CF.IncBound = packed::incrementBound(FW.getTripCount());

  // Working predecessor lists, CSR by node id.
  CF.PredOffsets.resize(CF.NumNodes + 1, 0);
  size_t TotalPreds = 0;
  for (unsigned Node = 0; Node != CF.NumNodes; ++Node)
    TotalPreds += FW.workingPreds(Node).size();
  CF.Preds.reserve(TotalPreds);
  for (unsigned Node = 0; Node != CF.NumNodes; ++Node) {
    CF.PredOffsets[Node] = static_cast<uint32_t>(CF.Preds.size());
    for (unsigned Pred : FW.workingPreds(Node))
      CF.Preds.push_back(Pred);
  }
  CF.PredOffsets[CF.NumNodes] = static_cast<uint32_t>(CF.Preds.size());

  // Dense packed preserve constants plus the sparse generate patch
  // lists (a statement generates only for the classes it references, so
  // the generate side of the transfer is a few cells per node).
  CF.Preserve.resize(CF.cells());
  CF.GenOffsets.resize(CF.NumNodes + 1, 0);
  for (unsigned Node = 0; Node != CF.NumNodes; ++Node) {
    CF.GenOffsets[Node] = static_cast<uint32_t>(CF.GenCols.size());
    size_t Row = static_cast<size_t>(Node) * CF.NumTracked;
    for (unsigned Idx = 0; Idx != CF.NumTracked; ++Idx) {
      CF.Preserve[Row + Idx] = packed::pack(FW.preserveAt(Idx, Node));
      if (FW.generatesAt(Idx, Node)) {
        CF.GenCols.push_back(Idx);
        CF.GenQ.push_back(packed::pack(FW.preserveAfterGen(Idx, Node)));
      }
    }
  }
  CF.GenOffsets[CF.NumNodes] = static_cast<uint32_t>(CF.GenCols.size());

  // Decide cell narrowing from the constants alone: reachable values
  // are bounded by the constants (meets and clamps never exceed their
  // operands, the increment saturates at IncBound), so narrowable
  // constants imply a narrowable fixed point. An unknown trip count
  // leaves IncBound at AllInstances, where the increment's saturation
  // no longer commutes with the map -- such programs stay wide.
  CF.Narrow32 = CF.IncBound != packed::AllInstances &&
                packed::narrowable(CF.IncBound) &&
                std::all_of(CF.Preserve.begin(), CF.Preserve.end(),
                            packed::narrowable) &&
                std::all_of(CF.GenQ.begin(), CF.GenQ.end(),
                            packed::narrowable);
  if (CF.Narrow32) {
    CF.Preserve32.resize(CF.Preserve.size());
    std::transform(CF.Preserve.begin(), CF.Preserve.end(),
                   CF.Preserve32.begin(),
                   [](uint64_t V) { return packed::narrow(V); });
  }

  if (Telem) {
    Telem->add(telem::Counter::FlowCompiles);
    Telem->add(telem::Counter::FlowCompiledCells, CF.cells());
    Telem->add(telem::Counter::FlowCompileNs, telem::wallNowNs() - Start);
  }
  if (S.active()) {
    S.arg("cells", CF.cells());
    S.arg("gen_cells", CF.GenCols.size());
    S.arg("pred_edges", CF.Preds.size());
  }
  return CF;
}

CompiledFlowGroup
CompiledFlowGroup::compile(const std::vector<const CompiledFlowProgram *> &Parts) {
  assert(!Parts.empty() && "group needs at least one member");
  telem::Telemetry *Telem = telem::Telemetry::current();
  telem::Span S("compile-group", "flow");
  uint64_t Start = Telem ? telem::wallNowNs() : 0;

  const CompiledFlowProgram &Head = *Parts.front();
  CompiledFlowGroup G;
  G.NumNodes = Head.NumNodes;
  G.SourceNode = Head.SourceNode;
  G.ExitNode = Head.ExitNode;
  G.IncBound = Head.IncBound;
  G.Order = Head.Order;
  G.PredOffsets = Head.PredOffsets;
  G.Preds = Head.Preds;

  for (const CompiledFlowProgram *CF : Parts) {
    (void)CF;
    assert(CF->NumNodes == G.NumNodes && CF->Order == G.Order &&
           CF->PredOffsets == G.PredOffsets && CF->Preds == G.Preds &&
           CF->SourceNode == G.SourceNode && CF->ExitNode == G.ExitNode &&
           CF->IncBound == G.IncBound &&
           "group members must share orientation");
  }

  // Column layout: must members first so each polarity's columns form
  // one contiguous segment per row.
  for (unsigned Pass = 0; Pass != 2; ++Pass) {
    bool WantMust = Pass == 0;
    for (size_t P = 0; P != Parts.size(); ++P) {
      const CompiledFlowProgram &CF = *Parts[P];
      if (CF.IsMust != WantMust)
        continue;
      Member M;
      M.PartIndex = static_cast<unsigned>(P);
      M.Begin = G.TotalTracked;
      M.Count = CF.NumTracked;
      M.IsMust = CF.IsMust;
      M.MeetEdgesAll = CF.MeetEdgesAll;
      M.MeetEdgesNoSource = CF.MeetEdgesNoSource;
      M.ProblemName = CF.ProblemName;
      G.Members.push_back(std::move(M));
      G.TotalTracked += CF.NumTracked;
      if (WantMust)
        G.MustTracked = G.TotalTracked;
    }
  }

  // Interleave the preserve rows and remap the generate patches into
  // wide-column space, must cells leading within each node.
  G.Preserve.resize(G.cells());
  G.GenOffsets.resize(G.NumNodes + 1, 0);
  G.GenMustEnd.resize(G.NumNodes, 0);
  for (unsigned Node = 0; Node != G.NumNodes; ++Node) {
    G.GenOffsets[Node] = static_cast<uint32_t>(G.GenCols.size());
    size_t Row = static_cast<size_t>(Node) * G.TotalTracked;
    for (const Member &M : G.Members) {
      const CompiledFlowProgram &CF = *Parts[M.PartIndex];
      size_t SrcRow = static_cast<size_t>(Node) * CF.NumTracked;
      std::copy(CF.Preserve.begin() + SrcRow,
                CF.Preserve.begin() + SrcRow + CF.NumTracked,
                G.Preserve.begin() + Row + M.Begin);
      for (uint32_t K = CF.GenOffsets[Node]; K != CF.GenOffsets[Node + 1];
           ++K) {
        G.GenCols.push_back(M.Begin + CF.GenCols[K]);
        G.GenQ.push_back(CF.GenQ[K]);
      }
      if (M.IsMust)
        G.GenMustEnd[Node] = static_cast<uint32_t>(G.GenCols.size());
    }
    if (G.GenMustEnd[Node] < G.GenOffsets[Node])
      G.GenMustEnd[Node] = G.GenOffsets[Node];
  }
  G.GenOffsets[G.NumNodes] = static_cast<uint32_t>(G.GenCols.size());

  // The group narrows exactly when every member does (the shared
  // IncBound and the member constants were all vetted per part).
  G.Narrow32 = std::all_of(
      Parts.begin(), Parts.end(),
      [](const CompiledFlowProgram *CF) { return CF->Narrow32; });
  if (G.Narrow32) {
    G.Preserve32.resize(G.Preserve.size());
    std::transform(G.Preserve.begin(), G.Preserve.end(),
                   G.Preserve32.begin(),
                   [](uint64_t V) { return packed::narrow(V); });
  }

  if (Telem) {
    Telem->add(telem::Counter::FlowGroupCompiles);
    Telem->add(telem::Counter::FlowCompiledCells, G.cells());
    Telem->add(telem::Counter::FlowCompileNs, telem::wallNowNs() - Start);
  }
  if (S.active()) {
    S.arg("members", G.Members.size());
    S.arg("cells", G.cells());
    S.arg("must_tracked", G.MustTracked);
  }
  return G;
}
