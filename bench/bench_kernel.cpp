//===- bench/bench_kernel.cpp - Packed kernel vs reference solver --------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// The packed-lattice kernel experiment: the paper's practicality claim
// (Section 3.2, bench rows C1/C4) prices the solver at a fixed 3N/2N
// sweep, so the per-element cost of the sweep is the whole ballgame.
// This bench compares the Reference engine (16-byte tagged
// DistanceValue, branchy compares) against the PackedKernel engine
// (branch-free min/max/saturating-add over flat uint64 rows) on the
// bench_scaling loop shapes, solver-only with warm workspaces — the
// steady state of a driver re-analyzing loops. Also prices the one-time
// CompiledFlowProgram lowering and the end-to-end four-problem session.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "analysis/LoopAnalysisSession.h"
#include "dataflow/CompiledFlow.h"
#include "dataflow/VectorOps.h"
#include "frontend/Parser.h"
#include "telemetry/Telemetry.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>

using namespace ardf;

namespace {

/// The bench_scaling loop family (same generator parameters and seeds).
std::string sourceFor(int64_t Stmts) {
  return ardfbench::makeSyntheticLoop(Stmts, 4, 20, Stmts * 3 + 20 + 7,
                                      1000);
}

double secondsOf(unsigned Reps, const std::function<void()> &Fn) {
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Reps; ++I)
    Fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void printKernelTable() {
  std::printf("== packed kernel vs reference solver (warm workspace, "
              "must-reaching-defs) ==\n");
  std::printf("%6s | %6s %6s %12s %12s %8s\n", "stmts", "nodes", "|G|",
              "reference", "packed", "speedup");
  for (unsigned Stmts : {8u, 32u, 128u, 512u}) {
    Program P = parseOrDie(sourceFor(Stmts));
    LoopAnalysisSession Session(P, *P.getFirstLoop());
    const ProblemSpec Spec = ProblemSpec::mustReachingDefs();
    const FrameworkInstance &FW = Session.instance(Spec);
    const CompiledFlowProgram &CF = Session.compiledFlow(Spec);

    SolveWorkspace RefWS, KernWS;
    solveDataFlow(FW, RefWS);   // warm-up
    solveCompiled(CF, KernWS);

    unsigned Reps = Stmts <= 32 ? 2000 : Stmts <= 128 ? 300 : 30;
    double TR = secondsOf(Reps, [&] {
      benchmark::DoNotOptimize(solveDataFlow(FW, RefWS).In.data());
    });
    double TK = secondsOf(Reps, [&] {
      benchmark::DoNotOptimize(solveCompiled(CF, KernWS).In.data());
    });
    std::printf("%6u | %6u %6u %10.2fus %10.2fus %7.2fx\n", Stmts,
                FW.getGraph().getNumNodes(), FW.getNumTracked(),
                TR / Reps * 1e6, TK / Reps * 1e6, TR / TK);
  }
  std::printf("(both engines produce bit-identical SolveResult matrices; "
              "the kernel sweeps packed uint64 rows through the %s "
              "row-op backend)\n\n",
              simd::isaName(simd::activeIsa()));
}

template <typename SolveFn>
void solverBench(benchmark::State &State, ProblemSpec Spec, SolveFn Solve) {
  Program P = parseOrDie(sourceFor(State.range(0)));
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const FrameworkInstance &FW = Session.instance(Spec);
  const CompiledFlowProgram &CF = Session.compiledFlow(Spec);
  SolveWorkspace WS;
  for (auto _ : State)
    benchmark::DoNotOptimize(Solve(FW, CF, WS).In.data());
}

const SolveResult &refSolve(const FrameworkInstance &FW,
                            const CompiledFlowProgram &,
                            SolveWorkspace &WS) {
  return solveDataFlow(FW, WS);
}

const SolveResult &kernSolve(const FrameworkInstance &,
                             const CompiledFlowProgram &CF,
                             SolveWorkspace &WS) {
  return solveCompiled(CF, WS);
}

void BM_ReferenceSolve(benchmark::State &State) {
  solverBench(State, ProblemSpec::mustReachingDefs(), refSolve);
}
BENCHMARK(BM_ReferenceSolve)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_PackedKernelSolve(benchmark::State &State) {
  solverBench(State, ProblemSpec::mustReachingDefs(), kernSolve);
}
BENCHMARK(BM_PackedKernelSolve)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

// The may-problem (2N schedule, max-meet) for both engines.
void BM_ReferenceSolveMay(benchmark::State &State) {
  solverBench(State, ProblemSpec::reachingReferences(), refSolve);
}
BENCHMARK(BM_ReferenceSolveMay)->Arg(32)->Arg(512);

void BM_PackedKernelSolveMay(benchmark::State &State) {
  solverBench(State, ProblemSpec::reachingReferences(), kernSolve);
}
BENCHMARK(BM_PackedKernelSolveMay)->Arg(32)->Arg(512);

// Armed-but-unhit budget: every ceiling enabled and generous, so the
// guard is evaluated at each pass boundary but never breaches. Priced
// against the unbudgeted BM_*Solve rows above; the delta is the whole
// cost of the robustness layer on the happy path and must stay at
// noise level (a few integer compares per pass).
SolverOptions armedBudgetOptions() {
  SolverOptions Opts;
  Opts.Budget.VisitSlack = 4.0;
  Opts.Budget.MaxNodeVisits = 1u << 30;
  Opts.Budget.MaxMatrixCells = 1u << 30;
  Opts.Budget.DeadlineNs = 3600ull * 1000000000ull;
  return Opts;
}

void BM_ReferenceSolveBudgeted(benchmark::State &State) {
  SolverOptions Opts = armedBudgetOptions();
  solverBench(State, ProblemSpec::mustReachingDefs(),
              [&](const FrameworkInstance &FW, const CompiledFlowProgram &,
                  SolveWorkspace &WS) -> const SolveResult & {
                return solveDataFlow(FW, WS, Opts);
              });
}
BENCHMARK(BM_ReferenceSolveBudgeted)->Arg(32)->Arg(512);

void BM_PackedKernelSolveBudgeted(benchmark::State &State) {
  SolverOptions Opts = armedBudgetOptions();
  solverBench(State, ProblemSpec::mustReachingDefs(),
              [&](const FrameworkInstance &, const CompiledFlowProgram &CF,
                  SolveWorkspace &WS) -> const SolveResult & {
                return solveCompiled(CF, WS, Opts);
              });
}
BENCHMARK(BM_PackedKernelSolveBudgeted)->Arg(32)->Arg(512);

// The SoA interleaving experiment: the three forward paper problems
// fused into one CompiledFlowGroup (shared traversal tables, one wide
// row sweep) against the same three problems solved back-to-back over
// their individual compiled programs. Both warm-workspace and
// bit-identical per member; the delta is pure sweep fusion -- one pass
// over the graph structure instead of three, wider rows for the SIMD
// backends.
std::vector<ProblemSpec> forwardPaperProblems() {
  return {ProblemSpec::mustReachingDefs(), ProblemSpec::availableValues(),
          ProblemSpec::reachingReferences()};
}

void BM_IndependentForwardSolves(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0)));
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  std::vector<const CompiledFlowProgram *> Parts;
  for (const ProblemSpec &Spec : forwardPaperProblems())
    Parts.push_back(&Session.compiledFlow(Spec));
  std::vector<SolveWorkspace> WS(Parts.size());
  for (auto _ : State) {
    unsigned Visits = 0;
    for (size_t I = 0; I != Parts.size(); ++I)
      Visits += solveCompiled(*Parts[I], WS[I]).NodeVisits;
    benchmark::DoNotOptimize(Visits);
  }
}
BENCHMARK(BM_IndependentForwardSolves)->Arg(32)->Arg(128)->Arg(512);

void BM_InterleavedForwardSolves(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0)));
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const CompiledFlowGroup &G =
      Session.compiledFlowGroup(forwardPaperProblems());
  GroupSolveWorkspace WS;
  for (auto _ : State) {
    const std::vector<SolveResult> &R = solveCompiledGroup(G, WS);
    unsigned Visits = 0;
    for (const SolveResult &M : R)
      Visits += M.NodeVisits;
    benchmark::DoNotOptimize(Visits);
  }
}
BENCHMARK(BM_InterleavedForwardSolves)->Arg(32)->Arg(128)->Arg(512);

// The one-time lowering cost a session amortizes over repeated solves.
void BM_CompileFlowProgram(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0)));
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const FrameworkInstance &FW =
      Session.instance(ProblemSpec::mustReachingDefs());
  for (auto _ : State) {
    CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
    benchmark::DoNotOptimize(CF.Preserve.data());
  }
}
BENCHMARK(BM_CompileFlowProgram)->Arg(32)->Arg(512);

// End to end: the four paper problems through a fresh session, engine
// selected per run (compile cost included for the packed engine).
// Counters-only telemetry exports the solver work into the BENCH json;
// the solver-only benches above stay telemetry-free so their numbers
// price the zero-overhead-off tier.
void fourProblemsBench(benchmark::State &State,
                       SolverOptions::Engine Eng) {
  Program P = parseOrDie(sourceFor(State.range(0)));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  SolverOptions Opts;
  Opts.Eng = Eng;
  telem::Telemetry Telem;
  telem::TelemetryScope Scope(Telem);
  for (auto _ : State) {
    LoopAnalysisSession Session(P, Loop);
    unsigned Visits = 0;
    for (const ProblemSpec &Spec :
         {ProblemSpec::mustReachingDefs(), ProblemSpec::availableValues(),
          ProblemSpec::busyStores(), ProblemSpec::reachingReferences()})
      Visits += Session.solve(Spec, Opts).NodeVisits;
    benchmark::DoNotOptimize(Visits);
  }
  State.counters["node_visits"] =
      benchmark::Counter(Telem.get(telem::Counter::SolverNodeVisits),
                         benchmark::Counter::kAvgIterations);
  State.counters["meet_ops"] =
      benchmark::Counter(Telem.get(telem::Counter::SolverMeetOps),
                         benchmark::Counter::kAvgIterations);
  State.counters["apply_ops"] =
      benchmark::Counter(Telem.get(telem::Counter::SolverApplyOps),
                         benchmark::Counter::kAvgIterations);
  if (Eng == SolverOptions::Engine::PackedKernel)
    State.counters["flow_compiles"] =
        benchmark::Counter(Telem.get(telem::Counter::FlowCompiles),
                           benchmark::Counter::kAvgIterations);
}

void BM_FourProblemsSessionReference(benchmark::State &State) {
  fourProblemsBench(State, SolverOptions::Engine::Reference);
}
BENCHMARK(BM_FourProblemsSessionReference)->Arg(32)->Arg(512);

void BM_FourProblemsSessionPacked(benchmark::State &State) {
  fourProblemsBench(State, SolverOptions::Engine::PackedKernel);
}
BENCHMARK(BM_FourProblemsSessionPacked)->Arg(32)->Arg(512);

// The PackedSimd end-to-end: fresh session per iteration, the four
// paper problems submitted as one batch so the cache-missing specs fuse
// per direction (forward triple + lone backward) -- the path the driver
// takes under --engine=simd, compile and group-fuse costs included.
void BM_FourProblemsSessionSimd(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0)));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  std::vector<ProblemSpec> Specs = {
      ProblemSpec::mustReachingDefs(), ProblemSpec::availableValues(),
      ProblemSpec::busyStores(), ProblemSpec::reachingReferences()};
  SolverOptions Opts;
  Opts.Eng = SolverOptions::Engine::PackedSimd;
  telem::Telemetry Telem;
  telem::TelemetryScope Scope(Telem);
  for (auto _ : State) {
    LoopAnalysisSession Session(P, Loop);
    unsigned Visits = 0;
    for (const SolveResult *R : Session.solveInterleaved(Specs, Opts))
      Visits += R->NodeVisits;
    benchmark::DoNotOptimize(Visits);
  }
  State.counters["node_visits"] =
      benchmark::Counter(Telem.get(telem::Counter::SolverNodeVisits),
                         benchmark::Counter::kAvgIterations);
  State.counters["group_sweeps"] =
      benchmark::Counter(Telem.get(telem::Counter::SolverGroupSweeps),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FourProblemsSessionSimd)->Arg(32)->Arg(512);

} // namespace

int main(int argc, char **argv) {
  printKernelTable();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
