//===- bench/bench_multidim_fig4.cpp - Fig. 4 multi-dimensional refs -----===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Experiment F4 (Section 3.6): per-level analysis of the Fig. 4 nest
// with symbolic dimension sizes. The paper's stated outcome: the X
// recurrence (distance 1) is found with respect to i, the Y recurrence
// (distance 2) with respect to j, and the coupled Z recurrence with
// respect to neither — reproduced and checked here, then timed.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

using namespace ardf;

namespace {

const char *Fig4 = R"(
  array X[N, N];
  array Y[N, N];
  array Z[N, N];
  do j = 1, UB2 {
    do i = 1, UB1 {
      X[i+1, j] = X[i, j];
      Y[i, j+1] = Y[i, j-1];
      Z[i+1, j] = Z[i, j-1];
    }
  }
)";

struct Findings {
  bool XFound = false;
  bool YFound = false;
  bool ZFound = false;
  int64_t XDist = -1, YDist = -1;
};

Findings analyze(const Program &P, const DoLoopStmt &Body,
                 const std::string &IV) {
  Findings F;
  LoopDataFlow DF(P, Body, ProblemSpec::mustReachingDefs(), IV);
  for (const ReusePair &Pair : DF.reusePairs(RefSelector::Uses)) {
    const std::string &Array =
        DF.universe().occurrence(Pair.SourceId).arrayName();
    if (Array == "X") {
      F.XFound = true;
      F.XDist = Pair.Distance;
    } else if (Array == "Y") {
      F.YFound = true;
      F.YDist = Pair.Distance;
    } else if (Array == "Z") {
      F.ZFound = true;
    }
  }
  return F;
}

void printFig4Table() {
  Program P = parseOrDie(Fig4);
  const auto *Outer = P.getFirstLoop();
  const auto *Inner = cast<DoLoopStmt>(Outer->getBody()[0].get());

  Findings WrtI = analyze(P, *Inner, "i");
  Findings WrtJ = analyze(P, *Inner, "j");

  std::printf("== F4: Fig. 4 recurrences per analysis level ==\n");
  std::printf("%14s | %12s %12s %12s\n", "analysis", "X[i+1,j]",
              "Y[i,j+1]", "Z[i+1,j]");
  std::printf("%14s | %9s @%lld %9s %3s %12s\n", "w.r.t. i",
              WrtI.XFound ? "found" : "-",
              static_cast<long long>(WrtI.XDist), WrtI.YFound ? "found" : "-",
              "", WrtI.ZFound ? "found" : "-");
  std::printf("%14s | %12s %9s @%lld %12s\n", "w.r.t. j",
              WrtJ.XFound ? "found" : "-", WrtJ.YFound ? "found" : "-",
              static_cast<long long>(WrtJ.YDist),
              WrtJ.ZFound ? "found" : "-");

  bool Reproduced = WrtI.XFound && WrtI.XDist == 1 && !WrtI.YFound &&
                    !WrtI.ZFound && WrtJ.YFound && WrtJ.YDist == 2 &&
                    !WrtJ.XFound && !WrtJ.ZFound;
  std::printf("paper outcome (X@1 wrt i, Y@2 wrt j, Z in neither): %s\n\n",
              Reproduced ? "REPRODUCED" : "MISMATCH");
}

void BM_Fig4AnalysisPerLevel(benchmark::State &State) {
  Program P = parseOrDie(Fig4);
  const auto *Outer = P.getFirstLoop();
  const auto *Inner = cast<DoLoopStmt>(Outer->getBody()[0].get());
  for (auto _ : State) {
    Findings A = analyze(P, *Inner, "i");
    Findings B = analyze(P, *Inner, "j");
    benchmark::DoNotOptimize(A.XFound);
    benchmark::DoNotOptimize(B.YFound);
  }
}
BENCHMARK(BM_Fig4AnalysisPerLevel);

void BM_SymbolicLinearization(benchmark::State &State) {
  Program P = parseOrDie(Fig4);
  const auto *Outer = P.getFirstLoop();
  const auto *Inner = cast<DoLoopStmt>(Outer->getBody()[0].get());
  const auto *AS = cast<AssignStmt>(Inner->getBody()[0].get());
  for (auto _ : State) {
    std::optional<AffineAccess> A =
        makeAffineAccess(*AS->getArrayTarget(), P, "i");
    benchmark::DoNotOptimize(A.has_value());
  }
}
BENCHMARK(BM_SymbolicLinearization);

} // namespace

int main(int argc, char **argv) {
  printFig4Table();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
