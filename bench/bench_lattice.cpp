//===- bench/bench_lattice.cpp - Fig. 2 lattice operations ---------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Experiment F2: validates the lattice laws of the Fig. 2 chain at
// runtime (meet/join, increment, saturation) and measures the cost of
// the primitive operations — the constant factor behind every node
// visit of the solver.
//
//===----------------------------------------------------------------------===//

#include "lattice/Distance.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace ardf;

namespace {

void printLawCheck() {
  std::vector<DistanceValue> Chain = {
      DistanceValue::noInstance(),   DistanceValue::finite(0),
      DistanceValue::finite(1),      DistanceValue::finite(17),
      DistanceValue::finite(999),    DistanceValue::allInstances()};
  unsigned Checked = 0, Failed = 0;
  for (const DistanceValue &A : Chain) {
    for (const DistanceValue &B : Chain) {
      ++Checked;
      // min(x, bottom) = bottom; min(x, top) = x (the paper's laws).
      if (DistanceValue::min(A, DistanceValue::noInstance()) !=
          DistanceValue::noInstance())
        ++Failed;
      if (DistanceValue::min(A, DistanceValue::allInstances()) != A)
        ++Failed;
      if (DistanceValue::min(A, B) != DistanceValue::min(B, A))
        ++Failed;
      if (DistanceValue::max(A, DistanceValue::min(A, B)) != A)
        ++Failed;
    }
  }
  std::printf("== Fig. 2 lattice law check ==\n");
  std::printf("pairs checked: %u, law violations: %u (%s)\n\n", Checked,
              Failed, Failed == 0 ? "REPRODUCED" : "MISMATCH");
}

void BM_Meet(benchmark::State &State) {
  DistanceValue A = DistanceValue::finite(3);
  DistanceValue B = DistanceValue::finite(7);
  for (auto _ : State) {
    DistanceValue C = DistanceValue::min(A, B);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_Meet);

void BM_Increment(benchmark::State &State) {
  DistanceValue A = DistanceValue::finite(3);
  for (auto _ : State) {
    DistanceValue C = A.increment(1000);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_Increment);

void BM_TupleMeet(benchmark::State &State) {
  std::vector<DistanceValue> A(State.range(0), DistanceValue::finite(5));
  std::vector<DistanceValue> B(State.range(0), DistanceValue::finite(2));
  for (auto _ : State) {
    for (size_t I = 0; I != A.size(); ++I)
      A[I] = DistanceValue::min(A[I], B[I]);
    benchmark::DoNotOptimize(A.data());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_TupleMeet)->Arg(4)->Arg(64)->Arg(1024);

} // namespace

int main(int argc, char **argv) {
  printLawCheck();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
