//===- bench/bench_loads_fig7.cpp - Fig. 7 redundant loads ---------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Experiment F7: redundant load elimination (scalar replacement) on the
// Fig. 7 loop. The conditional use of A[i] re-reads the value the
// unconditional store A[i+1] produced one iteration earlier; the
// transformed loop keeps it in a scalar temporary. Reports the load
// reduction across trip counts plus the deeper-pipeline sweep.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "transform/LoadElimination.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

using namespace ardf;

namespace {

std::string fig7Source(int64_t N) {
  return "do i = 1, " + std::to_string(N) +
         " {\n  if (A[i] > 0) { y = y + A[i]; }\n  A[i+1] = i * x;\n}\n";
}

ExecStats run(const Program &P, int64_t X, int64_t &YOut) {
  Interpreter I(P);
  I.setScalar("x", X);
  I.seedArray("A", 32, 23);
  I.run();
  YOut = I.scalar("y");
  return I.stats();
}

void printFig7Table() {
  std::printf("== F7: Fig. 7 redundant load elimination ==\n");
  std::printf("%8s %4s | %10s %10s %8s %10s\n", "N", "x", "loads",
              "after", "saved%%", "result");
  for (int64_t N : {100, 1000, 10000}) {
    Program P = parseOrDie(fig7Source(N));
    LoadElimResult R = eliminateRedundantLoads(P);
    for (int64_t X : {3, -1}) {
      int64_t YBefore = 0, YAfter = 0;
      ExecStats Before = run(P, X, YBefore);
      ExecStats After = run(R.Transformed, X, YAfter);
      std::printf("%8lld %4lld | %10llu %10llu %7.1f%% %10s\n",
                  static_cast<long long>(N), static_cast<long long>(X),
                  static_cast<unsigned long long>(Before.ArrayLoads),
                  static_cast<unsigned long long>(After.ArrayLoads),
                  Before.ArrayLoads
                      ? 100.0 * (Before.ArrayLoads - After.ArrayLoads) /
                            Before.ArrayLoads
                      : 0.0,
                  YBefore == YAfter ? "identical" : "MISMATCH");
    }
  }

  std::printf("\ndeep reuse sweep (A[i+D] = A[i] + x, N = 1000):\n");
  std::printf("%6s | %10s %10s %14s\n", "D", "loads", "after",
              "temps introduced");
  for (int64_t D : {1, 2, 4, 8}) {
    std::string Source = "do i = 1, 1000 { A[i+" + std::to_string(D) +
                         "] = A[i] + x; }";
    Program P = parseOrDie(Source);
    LoadElimResult R = eliminateRedundantLoads(P);
    int64_t Y = 0;
    ExecStats Before = run(P, 2, Y);
    ExecStats After = run(R.Transformed, 2, Y);
    std::printf("%6lld | %10llu %10llu %14u\n", static_cast<long long>(D),
                static_cast<unsigned long long>(Before.ArrayLoads),
                static_cast<unsigned long long>(After.ArrayLoads),
                R.TempsIntroduced);
  }
  std::printf("shape check: in-loop loads drop to ~0, preheader fills "
              "grow linearly with D\n\n");
}

void BM_LoadElimAnalysis(benchmark::State &State) {
  Program P = parseOrDie(fig7Source(1000));
  for (auto _ : State) {
    LoadElimResult R = eliminateRedundantLoads(P);
    benchmark::DoNotOptimize(R.LoadsEliminated);
  }
}
BENCHMARK(BM_LoadElimAnalysis);

void BM_TransformedExecution(benchmark::State &State) {
  Program P = parseOrDie(fig7Source(1000));
  LoadElimResult R = eliminateRedundantLoads(P);
  for (auto _ : State) {
    Interpreter I(R.Transformed);
    I.setScalar("x", 3);
    I.run();
    benchmark::DoNotOptimize(I.stats().ArrayLoads);
  }
}
BENCHMARK(BM_TransformedExecution);

void BM_OriginalExecution(benchmark::State &State) {
  Program P = parseOrDie(fig7Source(1000));
  for (auto _ : State) {
    Interpreter I(P);
    I.setScalar("x", 3);
    I.run();
    benchmark::DoNotOptimize(I.stats().ArrayLoads);
  }
}
BENCHMARK(BM_OriginalExecution);

} // namespace

int main(int argc, char **argv) {
  printFig7Table();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
