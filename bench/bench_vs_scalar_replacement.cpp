//===- bench/bench_vs_scalar_replacement.cpp - Flow sensitivity (C3) -----===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Experiment C3 (Sections 1 and 5): the framework's flow-sensitive reuse
// detection versus dependence-based scalar replacement [Callahan, Carr &
// Kennedy 90]. On straight-line loops both find the same reuse; under
// conditional control flow the baseline gives up while the framework
// keeps finding (and safely rejecting) reuse — the paper's central
// motivation. Measured as reuse opportunities found and as the load
// reduction actually realized.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "analysis/LoopDataFlow.h"
#include "baseline/DepScalarReplacement.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "transform/LoadElimination.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ardf;

namespace {

unsigned frameworkReuse(const Program &P, const DoLoopStmt &Loop) {
  LoopDataFlow DF(P, Loop, ProblemSpec::availableValuesPerOccurrence());
  unsigned Count = 0;
  for (const ReusePair &Pair : DF.reusePairs(RefSelector::Uses)) {
    (void)Pair;
    ++Count;
  }
  return Count;
}

void printComparison() {
  std::printf("== C3: framework vs dependence-based scalar replacement ==\n");
  std::printf("%6s %6s | %10s %10s | %12s\n", "stmts", "cond%%",
              "baseline", "framework", "loads saved");
  for (unsigned Stmts : {4u, 8u, 16u}) {
    for (int Cond : {0, 30, 60}) {
      std::string Source = ardfbench::makeSyntheticLoop(
          Stmts, 2, Cond, Stmts * 13 + Cond + 1, 500);
      Program P = parseOrDie(Source);
      const DoLoopStmt &Loop = *P.getFirstLoop();

      BaselineSRResult Base = findReuseDependenceBased(P, Loop);
      unsigned FrameworkCount = frameworkReuse(P, Loop);

      // Realized savings from the framework-driven transform.
      LoadElimResult LR = eliminateRedundantLoads(P);
      Interpreter Before(P), After(LR.Transformed);
      for (const char *Arr : {"A", "B"}) {
        Before.seedArray(Arr, 600, 5);
        After.seedArray(Arr, 600, 5);
      }
      Before.run();
      After.run();
      long long Saved =
          static_cast<long long>(Before.stats().ArrayLoads) -
          static_cast<long long>(After.stats().ArrayLoads);
      bool Same = Before.state().Arrays == After.state().Arrays;

      std::printf("%6u %5d%% | %10s %10u | %10lld %s\n", Stmts, Cond,
                  Base.BailedOnControlFlow
                      ? "bailed"
                      : std::to_string(Base.Reuses.size()).c_str(),
                  FrameworkCount, Saved, Same ? "" : "(MISMATCH!)");
    }
  }
  std::printf("shape check: parity at 0%% conditionals; baseline bails and "
              "the framework keeps finding reuse as conditionals grow\n\n");
}

void BM_BaselineAnalysis(benchmark::State &State) {
  std::string Source = ardfbench::makeSyntheticLoop(16, 2, 0, 99, 500);
  Program P = parseOrDie(Source);
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    BaselineSRResult R = findReuseDependenceBased(P, Loop);
    benchmark::DoNotOptimize(R.Reuses.data());
  }
}
BENCHMARK(BM_BaselineAnalysis);

void BM_FrameworkAnalysis(benchmark::State &State) {
  std::string Source = ardfbench::makeSyntheticLoop(16, 2, 0, 99, 500);
  Program P = parseOrDie(Source);
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    unsigned Count = frameworkReuse(P, Loop);
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_FrameworkAnalysis);

void BM_FrameworkAnalysisConditional(benchmark::State &State) {
  std::string Source = ardfbench::makeSyntheticLoop(16, 2, 50, 99, 500);
  Program P = parseOrDie(Source);
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    unsigned Count = frameworkReuse(P, Loop);
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_FrameworkAnalysisConditional);

} // namespace

int main(int argc, char **argv) {
  printComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
