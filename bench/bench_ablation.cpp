//===- bench/bench_ablation.cpp - Design-choice ablations ----------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Ablations of the design choices DESIGN.md calls out:
//
//   A1  grouping of textually identical references into one G element
//       (the paper's formulation) versus per-occurrence tracking —
//       grouping is what lets a value generated in both branches of a
//       conditional stay available at the join;
//   A2  the pipeline-depth cap of the load-elimination client;
//   A3  the distance-vector nest extension (the paper's future work)
//       versus the two per-loop analyses on coupled-subscript nests.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "analysis/DistanceVector.h"
#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "transform/LoadElimination.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ardf;

namespace {

unsigned reuseCount(const Program &P, const DoLoopStmt &Loop,
                    ProblemSpec Spec) {
  LoopDataFlow DF(P, Loop, Spec);
  return DF.reusePairs(RefSelector::Uses).size();
}

void printGroupingAblation() {
  std::printf("== A1: grouped vs per-occurrence tracking ==\n");
  struct Case {
    const char *Name;
    const char *Source;
  } Cases[] = {
      {"diamond",
       "do i = 1, 100 { if (x == 0) { B[i] = A[i]; } else { C[i] = A[i]; } "
       "D_[i] = A[i]; }"},
      {"straight", "do i = 1, 100 { B[i] = A[i]; C[i] = A[i]; }"},
      {"both-branch-def",
       "do i = 1, 100 { if (x == 0) { A[i] = 1; } else { A[i] = 2; } "
       "B[i] = A[i]; }"},
  };
  std::printf("%18s | %10s %14s\n", "loop", "grouped", "per-occurrence");
  for (const Case &C : Cases) {
    Program P = parseOrDie(C.Source);
    unsigned Grouped =
        reuseCount(P, *P.getFirstLoop(), ProblemSpec::availableValues());
    unsigned PerOcc = reuseCount(P, *P.getFirstLoop(),
                                 ProblemSpec::availableValuesPerOccurrence());
    std::printf("%18s | %10u %14u\n", C.Name, Grouped, PerOcc);
  }
  std::printf("shape check: grouping finds the join reuse the "
              "per-occurrence tuple provably cannot\n\n");
}

void printDepthCapAblation() {
  std::printf("== A2: pipeline depth cap (A[i+6] = A[i] + x) ==\n");
  std::printf("%6s | %10s %8s\n", "cap", "loads", "temps");
  Program P = parseOrDie("do i = 1, 1000 { A[i+6] = A[i] + x; }");
  for (int64_t Cap : {2, 4, 6, 8}) {
    LoadElimOptions Opts;
    Opts.MaxDistance = Cap;
    LoadElimResult R = eliminateRedundantLoads(P, Opts);
    Interpreter I(R.Transformed);
    I.seedArray("A", 1100, 3);
    I.run();
    std::printf("%6lld | %10llu %8u\n", static_cast<long long>(Cap),
                static_cast<unsigned long long>(I.stats().ArrayLoads),
                R.TempsIntroduced);
  }
  std::printf("shape check: the reuse at distance 6 is only converted "
              "once the cap admits a 7-deep pipeline\n\n");
}

void printNestExtensionAblation() {
  std::printf("== A3: per-loop analyses vs distance vectors on Fig. 4's Z "
              "==\n");
  Program P = parseOrDie("array Z[N, N];\n"
                         "do j = 1, 50 { do i = 1, 50 { "
                         "Z[i+1, j] = Z[i, j-1]; } }");
  const auto *Outer = P.getFirstLoop();
  const auto *Inner = cast<DoLoopStmt>(Outer->getBody()[0].get());

  LoopDataFlow WrtI(P, *Inner, ProblemSpec::mustReachingDefs(), "i");
  LoopDataFlow WrtJ(P, *Inner, ProblemSpec::mustReachingDefs(), "j");
  NestAnalysis NA = analyzeTightNest(P, *Outer);

  std::printf("per-loop w.r.t. i: %zu reuse pair(s)\n",
              WrtI.reusePairs(RefSelector::Uses).size());
  std::printf("per-loop w.r.t. j: %zu reuse pair(s)\n",
              WrtJ.reusePairs(RefSelector::Uses).size());
  std::printf("distance vectors:  %zu reuse pair(s)", NA.Reuses.size());
  if (!NA.Reuses.empty())
    std::printf(" at vector (%lld, %lld)",
                static_cast<long long>(NA.Reuses[0].OuterDistance),
                static_cast<long long>(NA.Reuses[0].InnerDistance));
  std::printf("\nshape check: only the vector extension (paper Section 6 "
              "future work) sees the coupled recurrence\n\n");
}

void BM_GroupedAvailability(benchmark::State &State) {
  std::string Source = ardfbench::makeSyntheticLoop(24, 3, 30, 5, 500);
  Program P = parseOrDie(Source);
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    unsigned N = reuseCount(P, Loop, ProblemSpec::availableValues());
    benchmark::DoNotOptimize(N);
  }
}
BENCHMARK(BM_GroupedAvailability);

void BM_PerOccurrenceAvailability(benchmark::State &State) {
  std::string Source = ardfbench::makeSyntheticLoop(24, 3, 30, 5, 500);
  Program P = parseOrDie(Source);
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    unsigned N =
        reuseCount(P, Loop, ProblemSpec::availableValuesPerOccurrence());
    benchmark::DoNotOptimize(N);
  }
}
BENCHMARK(BM_PerOccurrenceAvailability);

void BM_NestDistanceVectors(benchmark::State &State) {
  Program P = parseOrDie("array Z[N, N];\n"
                         "do j = 1, 50 { do i = 1, 50 { "
                         "Z[i+1, j] = Z[i, j-1]; } }");
  for (auto _ : State) {
    NestAnalysis NA = analyzeTightNest(P, *P.getFirstLoop());
    benchmark::DoNotOptimize(NA.Reuses.data());
  }
}
BENCHMARK(BM_NestDistanceVectors);

} // namespace

int main(int argc, char **argv) {
  printGroupingAblation();
  printDepthCapAblation();
  printNestExtensionAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
