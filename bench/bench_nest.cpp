//===- bench/bench_nest.cpp - Loop-nest discovery and per-level solves ----===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Measures the nest pipeline added on top of the single-loop framework:
// CFG construction + dominators + natural loops + bottom-up reduction
// (LoopNestTree) as a function of nest depth and program width, and the
// cost of the per-level solves — one LoopAnalysisSession per ancestor
// induction variable (the Section 3.6 WithRespectTo seam) — that turn a
// flat iteration distance into a distance vector. The CFG/nest counters
// ride along in the JSON snapshot so regressions in block or loop
// counts show up next to the timings.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "analysis/LoopAnalysisSession.h"
#include "analysis/LoopNest.h"
#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"
#include "support/BuildInfo.h"
#include "telemetry/Telemetry.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>

using namespace ardf;

namespace {

/// A perfect nest of \p Depth loops whose outermost level is a counted
/// while (so every timing includes induction-variable recognition) and
/// whose innermost body holds \p Stmts recurrent statements on the
/// innermost induction variable.
std::string nestSourceFor(unsigned Depth, unsigned Stmts) {
  std::ostringstream OS;
  std::string Indent;
  OS << "i0 = 1;\n"
     << "while (i0 <= 40) {\n";
  Indent += "  ";
  for (unsigned D = 1; D != Depth; ++D) {
    OS << Indent << "do i" << D << " = 1, 40 {\n";
    Indent += "  ";
  }
  std::string Iv = "i" + std::to_string(Depth - 1);
  ardfbench::Rng R(Depth * 131 + Stmts);
  for (unsigned S = 0; S != Stmts; ++S) {
    char Arr = static_cast<char>('A' + R.range(0, 3));
    OS << Indent << Arr << "[" << Iv << " + 1] = " << Arr << "[" << Iv
       << "] + " << static_cast<char>('A' + R.range(0, 3)) << "[" << Iv
       << " - " << R.range(1, 2) << "];\n";
  }
  for (unsigned D = Depth; D != 1; --D) {
    Indent.resize(Indent.size() - 2);
    OS << Indent << "}\n";
  }
  OS << "  i0 = i0 + 1;\n"
     << "}\n";
  return OS.str();
}

/// \p Loops independent two-level nests side by side: width scaling for
/// the single CFG + dominator computation the whole program shares.
std::string wideSourceFor(unsigned Loops) {
  std::ostringstream OS;
  for (unsigned L = 0; L != Loops; ++L)
    OS << "do a" << L << " = 1, 40 {\n"
       << "  do b" << L << " = 1, 40 {\n"
       << "    A[b" << L << " + 1] = A[b" << L << "] + " << L << ";\n"
       << "  }\n"
       << "}\n";
  return OS.str();
}

/// The innermost (deepest) supported loop of the nest.
const NestLoop &deepestLoop(const LoopNestTree &T) {
  const NestLoop *Best = nullptr;
  T.forEach([&](const NestLoop &N) {
    if (N.isSupported() && (!Best || N.Depth > Best->Depth))
      Best = &N;
  });
  return *Best;
}

/// Solves every paper problem at every nest level of the deepest loop:
/// one session for its own level plus one WithRespectTo session per
/// supported ancestor. Returns the number of sessions built.
unsigned solveAllLevels(const Program &P, const LoopNestTree &T) {
  const NestLoop &Inner = deepestLoop(T);
  unsigned Sessions = 0;
  auto SolveAll = [](LoopAnalysisSession &S) {
    for (const ProblemSpec &Spec : paperProblems())
      benchmark::DoNotOptimize(&S.solve(Spec));
  };
  LoopAnalysisSession Own(P, *Inner.Analyzed);
  SolveAll(Own);
  ++Sessions;
  for (const NestLoop *A : Inner.ancestors()) {
    if (!A->isSupported())
      continue;
    LoopAnalysisSession Level(P, *Inner.Analyzed, A->iv(), A->tripCount());
    SolveAll(Level);
    ++Sessions;
  }
  return Sessions;
}

double secondsOf(unsigned Reps, const std::function<void()> &Fn) {
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Reps; ++I)
    Fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void printNestTable() {
  std::printf("== nest pipeline: discovery + per-level solves vs depth ==\n");
  std::printf("%5s | %8s %8s | %12s %12s | %8s\n", "depth", "blocks",
              "loops", "discovery", "solves", "sessions");
  for (unsigned Depth : {1u, 2u, 3u, 4u}) {
    Program P = parseOrDie(nestSourceFor(Depth, 8));
    telem::Telemetry Telem;
    unsigned Sessions = 0;
    double DiscoverS, SolveS;
    {
      telem::TelemetryScope Scope(Telem);
      constexpr unsigned Reps = 20;
      DiscoverS =
          secondsOf(Reps, [&] { benchmark::DoNotOptimize(LoopNestTree(P)); }) /
          Reps;
      LoopNestTree T(P);
      SolveS = secondsOf(Reps, [&] { Sessions = solveAllLevels(P, T); }) / Reps;
    }
    unsigned Runs = 21; // 20 timed discoveries + the one kept
    std::printf("%5u | %8llu %8llu | %10.2fus %10.2fus | %8u\n", Depth,
                static_cast<unsigned long long>(
                    Telem.get(telem::Counter::CfgBlocks) / Runs),
                static_cast<unsigned long long>(
                    Telem.get(telem::Counter::CfgLoops) / Runs),
                DiscoverS * 1e6, SolveS * 1e6, Sessions);
  }
  std::printf("(discovery = CFG + dominators + natural loops + reduction; "
              "solves = all paper problems once per nest level)\n\n");
}

void BM_NestDiscovery(benchmark::State &State) {
  Program P = parseOrDie(nestSourceFor(State.range(0), 8));
  telem::Telemetry Telem;
  telem::TelemetryScope Scope(Telem);
  for (auto _ : State) {
    LoopNestTree T(P);
    benchmark::DoNotOptimize(T.supportedCount());
  }
  double Iters = static_cast<double>(State.iterations());
  State.counters["cfg_blocks"] =
      benchmark::Counter(Telem.get(telem::Counter::CfgBlocks) / Iters);
  State.counters["cfg_loops"] =
      benchmark::Counter(Telem.get(telem::Counter::CfgLoops) / Iters);
  State.counters["nest_reduced"] =
      benchmark::Counter(Telem.get(telem::Counter::NestReduced) / Iters);
}
BENCHMARK(BM_NestDiscovery)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_NestDiscoveryWide(benchmark::State &State) {
  Program P = parseOrDie(wideSourceFor(State.range(0)));
  for (auto _ : State) {
    LoopNestTree T(P);
    benchmark::DoNotOptimize(T.supportedCount());
  }
}
BENCHMARK(BM_NestDiscoveryWide)->Arg(4)->Arg(16)->Arg(64);

void BM_NestPerLevelSolves(benchmark::State &State) {
  Program P = parseOrDie(nestSourceFor(State.range(0), 8));
  LoopNestTree T(P);
  unsigned Sessions = 0;
  for (auto _ : State)
    Sessions = solveAllLevels(P, T);
  State.counters["sessions"] = benchmark::Counter(Sessions);
}
BENCHMARK(BM_NestPerLevelSolves)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_NestDriverRun(benchmark::State &State) {
  // End-to-end: what ardf-lint/ardf-stats pay per nest — discovery,
  // reduction, and a session per loop, via the driver.
  Program P = parseOrDie(nestSourceFor(State.range(0), 8));
  for (auto _ : State) {
    ProgramAnalysisDriver Driver(P, DriverOptions());
    Driver.run();
    benchmark::DoNotOptimize(Driver.loops().data());
  }
}
BENCHMARK(BM_NestDriverRun)->Arg(2)->Arg(4);

} // namespace

int main(int argc, char **argv) {
  printNestTable();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
