//===- bench/bench_summary.cpp - Transfer-summary warm re-solves ---------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// The loop-transfer-summary experiment: Engine::Summary composes each
// node's packed flow functions along the acyclic loop flow graph once
// (closing over the back edge), after which every re-solve of the
// instance is a straight unpack of the precomputed fixed point -- O(N)
// cell writes, zero schedule passes. This bench prices the three legs
// against the packed kernel on the bench_scaling loop family: the
// one-time lowering (cold), the warm per-re-solve application, and the
// kernel sweep the application replaces. The daemon-style incremental
// scenario (edit one loop of a many-loop program, rerun) rides on the
// driver's structural diff.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "analysis/LoopAnalysisSession.h"
#include "dataflow/CompiledFlow.h"
#include "dataflow/FlowSummary.h"
#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"
#include "support/BuildInfo.h"
#include "telemetry/Telemetry.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>

using namespace ardf;

namespace {

/// The bench_scaling loop family (same generator parameters and seeds
/// as bench_kernel, so rows are comparable across the two files).
std::string sourceFor(int64_t Stmts) {
  return ardfbench::makeSyntheticLoop(Stmts, 4, 20, Stmts * 3 + 20 + 7,
                                      1000);
}

double secondsOf(unsigned Reps, const std::function<void()> &Fn) {
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Reps; ++I)
    Fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void printSummaryTable() {
  std::printf("== transfer-summary apply vs packed kernel (warm "
              "workspace, must-reaching-defs) ==\n");
  std::printf("%6s | %6s %6s %12s %12s %8s %12s\n", "stmts", "nodes", "|G|",
              "kernel", "summary", "speedup", "cold-lower");
  for (unsigned Stmts : {8u, 32u, 128u, 512u}) {
    Program P = parseOrDie(sourceFor(Stmts));
    LoopAnalysisSession Session(P, *P.getFirstLoop());
    const ProblemSpec Spec = ProblemSpec::mustReachingDefs();
    const FrameworkInstance &FW = Session.instance(Spec);
    const CompiledFlowProgram &CF = Session.compiledFlow(Spec);
    const FlowSummary &S = Session.flowSummary(Spec);

    SolveWorkspace KernWS, SumWS;
    solveCompiled(CF, KernWS); // warm-up
    applySummary(S, SumWS);

    unsigned Reps = Stmts <= 32 ? 5000 : Stmts <= 128 ? 1000 : 100;
    double TK = secondsOf(Reps, [&] {
      benchmark::DoNotOptimize(solveCompiled(CF, KernWS).In.data());
    });
    double TS = secondsOf(Reps, [&] {
      benchmark::DoNotOptimize(applySummary(S, SumWS).In.data());
    });
    unsigned LowerReps = Stmts <= 128 ? 200 : 30;
    double TL = secondsOf(LowerReps, [&] {
      FlowSummary L = FlowSummary::lower(CF);
      benchmark::DoNotOptimize(L.FinalIn.data());
      benchmark::DoNotOptimize(L.FinalIn32.data());
    });
    std::printf("%6u | %6u %6u %10.2fus %10.2fus %7.2fx %10.2fus\n", Stmts,
                FW.getGraph().getNumNodes(), FW.getNumTracked(),
                TK / Reps * 1e6, TS / Reps * 1e6, TK / TS,
                TL / LowerReps * 1e6);
  }
  std::printf("(applications are bit-identical to the kernel's "
              "SolveResult; the summary replays budget boundaries and "
              "telemetry, and a workspace already holding the clean "
              "export skips even the unpack -- the O(1) warm path)\n\n");
}

/// Warm re-solve: the summary is composed once outside the timed loop;
/// each iteration is one full budget-checked application. After the
/// first iteration the workspace holds the summary's clean export, so
/// the steady state is the O(1) warm path (counter/budget replay, no
/// export sweep).
void summaryApplyBench(benchmark::State &State, ProblemSpec Spec) {
  Program P = parseOrDie(sourceFor(State.range(0)));
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const FlowSummary &S = Session.flowSummary(Spec);
  SolveWorkspace WS;
  for (auto _ : State)
    benchmark::DoNotOptimize(applySummary(S, WS).In.data());
}

void BM_SummaryWarmApply(benchmark::State &State) {
  summaryApplyBench(State, ProblemSpec::mustReachingDefs());
}
BENCHMARK(BM_SummaryWarmApply)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_SummaryWarmApplyMay(benchmark::State &State) {
  summaryApplyBench(State, ProblemSpec::reachingReferences());
}
BENCHMARK(BM_SummaryWarmApplyMay)->Arg(32)->Arg(512);

// The export sweep a *cold* workspace pays: alternating two summaries
// of the same program defeats the warm-skip token every iteration, so
// each apply runs the full fixed-point unpack. This bounds what any
// workspace-switching caller pays; the warm benchmark above is the
// steady state. Each iteration is two applies (one per summary).
void BM_SummaryApplyExport(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0)));
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const CompiledFlowProgram &CF =
      Session.compiledFlow(ProblemSpec::mustReachingDefs());
  FlowSummary S1 = FlowSummary::lower(CF);
  FlowSummary S2 = FlowSummary::lower(CF);
  SolveWorkspace WS;
  for (auto _ : State) {
    benchmark::DoNotOptimize(applySummary(S1, WS).In.data());
    benchmark::DoNotOptimize(applySummary(S2, WS).In.data());
  }
}
BENCHMARK(BM_SummaryApplyExport)->Arg(32)->Arg(128)->Arg(512);

// The kernel sweep the warm apply replaces, re-measured in this binary
// so the committed JSON carries the ratio under one compiler/ISA/run.
void BM_PackedKernelSolve(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0)));
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const CompiledFlowProgram &CF =
      Session.compiledFlow(ProblemSpec::mustReachingDefs());
  SolveWorkspace WS;
  for (auto _ : State)
    benchmark::DoNotOptimize(solveCompiled(CF, WS).In.data());
}
BENCHMARK(BM_PackedKernelSolve)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

// The one-time composition cost a session amortizes over re-solves.
void BM_SummaryColdLower(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0)));
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const CompiledFlowProgram &CF =
      Session.compiledFlow(ProblemSpec::mustReachingDefs());
  for (auto _ : State) {
    FlowSummary S = FlowSummary::lower(CF);
    benchmark::DoNotOptimize(S.FinalIn.data());
    benchmark::DoNotOptimize(S.FinalIn32.data());
  }
}
BENCHMARK(BM_SummaryColdLower)->Arg(32)->Arg(512);

// The daemon scenario: a program of range(0) loops, one of which is
// edited back and forth. Each iteration is two driver.rerun calls (one
// per direction); the structural diff carries every unchanged loop's
// session -- summaries included -- so only the edited loop re-lowers
// and re-solves. Counters export how much summary work actually ran.
void BM_DriverRerunOneEdit(benchmark::State &State) {
  unsigned NumLoops = State.range(0);
  std::string BaseSrc =
      ardfbench::makeSyntheticProgram(NumLoops, 16, 4, 20, 42);
  std::string EditSrc =
      ardfbench::makeSyntheticProgram(NumLoops - 1, 16, 4, 20, 42) +
      ardfbench::makeSyntheticLoop(16, 4, 20, 777);
  Program A = parseOrDie(BaseSrc);
  Program B = parseOrDie(EditSrc);
  DriverOptions Opts;
  Opts.Solver.Eng = SolverOptions::Engine::Summary;
  ProgramAnalysisDriver Driver(A, Opts);
  Driver.run();
  telem::Telemetry Telem;
  telem::TelemetryScope Scope(Telem);
  unsigned Reused = 0;
  for (auto _ : State) {
    Reused += Driver.rerun(B).Reused;
    Reused += Driver.rerun(A).Reused;
    benchmark::DoNotOptimize(Reused);
  }
  State.counters["reused_loops"] =
      benchmark::Counter(Reused, benchmark::Counter::kAvgIterations);
  State.counters["summary_lowerings"] =
      benchmark::Counter(Telem.get(telem::Counter::SummaryLowerings),
                         benchmark::Counter::kAvgIterations);
  State.counters["summary_applies"] =
      benchmark::Counter(Telem.get(telem::Counter::SummaryApplies),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DriverRerunOneEdit)->Arg(8)->Arg(32);

} // namespace

int main(int argc, char **argv) {
  printSummaryTable();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
