//===- bench/bench_table1.cpp - Regenerates the paper's Table 1 ----------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Experiment T1/F1/F3: prints the Fig. 3 loop flow graph and the exact
// Table 1 data flow tuples (initialization pass + two iterate passes)
// for must-reaching definitions on the Fig. 1 loop, then times the
// whole analysis stack (parse excluded vs included).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <iostream>

using namespace ardf;

namespace {

const char *Fig1 = R"(
  do i = 1, 1000 {
    C[i+2] = C[i] * 2;
    B[2*i] = C[i] + X;
    if (C[i] == 0) { C[i] = B[i-1]; }
    B[i] = C[i+1];
  }
)";

void printTable1() {
  Program P = parseOrDie(Fig1);
  SolverOptions Opts;
  Opts.RecordHistory = true;
  LoopDataFlow DF(P, *P.getFirstLoop(), ProblemSpec::mustReachingDefs(),
                  Opts);
  const LoopFlowGraph &Graph = DF.graph();

  std::cout << "== Table 1: must-reaching definitions on Fig. 1 ==\n";
  std::cout << "tuple order " << DF.framework().tupleHeader() << "\n";
  for (const PassSnapshot &Snap : DF.result().History) {
    std::cout << "-- " << Snap.Label << " --\n";
    for (unsigned Id : Graph.reversePostorder()) {
      unsigned Num = Graph.getNode(Id).StmtNumber;
      if (!Num)
        continue;
      std::cout << "  IN[" << Num << "] = " << tupleToString(Snap.In[Id])
                << "  OUT[" << Num << "] = " << tupleToString(Snap.Out[Id])
                << '\n';
    }
  }
  std::cout << "node visits: " << DF.result().NodeVisits << " (= 3 * "
            << Graph.getNumNodes() << ")\n";
  std::cout << "paper fixed point IN[1] = (2, 1, _, T): "
            << (tupleToString(DF.result().In[Graph.getEntry()]) ==
                        "(2, 1, _, T)"
                    ? "REPRODUCED"
                    : "MISMATCH")
            << "\n\n";
}

void BM_Table1Analysis(benchmark::State &State) {
  Program P = parseOrDie(Fig1);
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    LoopDataFlow DF(P, Loop, ProblemSpec::mustReachingDefs());
    benchmark::DoNotOptimize(DF.result().In.data());
  }
}
BENCHMARK(BM_Table1Analysis);

void BM_Table1ParseAndAnalyze(benchmark::State &State) {
  for (auto _ : State) {
    Program P = parseOrDie(Fig1);
    LoopDataFlow DF(P, *P.getFirstLoop(),
                    ProblemSpec::mustReachingDefs());
    benchmark::DoNotOptimize(DF.result().In.data());
  }
}
BENCHMARK(BM_Table1ParseAndAnalyze);

} // namespace

int main(int argc, char **argv) {
  printTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
