//===- bench/bench_batch.cpp - Batched analysis engine -------------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// The batching experiment: Section 4 runs several (G, K) problems over
// the same loop (register allocation wants delta-available values,
// load/store elimination adds the per-occurrence variants and
// delta-busy stores). A LoopAnalysisSession builds the
// problem-independent tables once, so solving the paper's four problems
// through one session is compared against four standalone LoopDataFlow
// constructions. A second experiment measures whole-program throughput
// of ProgramAnalysisDriver at 1/2/4/8 worker threads (loops/sec), and a
// third isolates the flat-matrix workspace reuse (allocation-free
// repeated solves).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "analysis/LoopDataFlow.h"
#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"
#include "telemetry/Telemetry.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace ardf;

namespace {

std::string loopSourceFor(unsigned Stmts) {
  return ardfbench::makeSyntheticLoop(Stmts, 4, 20, Stmts * 5 + 11, 1000);
}

constexpr unsigned DriverLoops = 64;
constexpr unsigned DriverStmts = 24;

std::string programSource() {
  return ardfbench::makeSyntheticProgram(DriverLoops, DriverStmts, 4, 20,
                                         20260807, 1000);
}

unsigned solveAllStandalone(const Program &P, const DoLoopStmt &Loop) {
  unsigned Visits = 0;
  for (const ProblemSpec &Spec : paperProblems()) {
    LoopDataFlow DF(P, Loop, Spec);
    Visits += DF.result().NodeVisits;
  }
  return Visits;
}

unsigned solveAllSession(const Program &P, const DoLoopStmt &Loop) {
  LoopAnalysisSession Session(P, Loop);
  unsigned Visits = 0;
  for (const ProblemSpec &Spec : paperProblems())
    Visits += Session.solve(Spec).NodeVisits;
  return Visits;
}

double secondsOf(unsigned Reps, unsigned (*Fn)(const Program &,
                                               const DoLoopStmt &),
                 const Program &P, const DoLoopStmt &Loop) {
  auto Start = std::chrono::steady_clock::now();
  unsigned Sink = 0;
  for (unsigned I = 0; I != Reps; ++I)
    Sink += Fn(P, Loop);
  benchmark::DoNotOptimize(Sink);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void printSessionTable() {
  std::printf("== batched analysis: 4 paper problems on one loop ==\n");
  std::printf("%6s | %12s %12s %8s\n", "stmts", "standalone", "session",
              "speedup");
  for (unsigned Stmts : {8u, 32u, 128u}) {
    Program P = parseOrDie(loopSourceFor(Stmts));
    const DoLoopStmt &Loop = *P.getFirstLoop();
    unsigned Reps = Stmts <= 8 ? 400 : Stmts <= 32 ? 100 : 25;
    // Warm up once so first-touch effects hit neither side.
    solveAllStandalone(P, Loop);
    solveAllSession(P, Loop);
    double TS = secondsOf(Reps, solveAllStandalone, P, Loop);
    double TB = secondsOf(Reps, solveAllSession, P, Loop);
    std::printf("%6u | %10.2fus %10.2fus %7.2fx\n", Stmts,
                TS / Reps * 1e6, TB / Reps * 1e6, TS / TB);
  }
  std::printf("(standalone rebuilds graph+universe+orders per problem; "
              "the session builds them once)\n\n");
}

void printDriverTable() {
  Program P = parseOrDie(programSource());
  std::printf("== driver throughput: %u loops x 4 problems ==\n",
              DriverLoops);
  std::printf("%7s | %10s %10s %8s\n", "threads", "time", "loops/s",
              "speedup");
  double T1 = 0;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    DriverOptions Opts;
    Opts.Threads = Threads;
    auto Start = std::chrono::steady_clock::now();
    ProgramAnalysisDriver Driver(P, Opts);
    Driver.run();
    double T = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
    benchmark::DoNotOptimize(Driver.totalNodeVisits());
    if (Threads == 1)
      T1 = T;
    std::printf("%7u | %8.2fms %10.0f %7.2fx\n", Threads, T * 1e3,
                DriverLoops / T, T1 / T);
  }
  std::printf("(speedup is bounded by the hardware concurrency of the "
              "machine running the bench)\n\n");
}

void BM_FourProblemsStandalone(benchmark::State &State) {
  Program P = parseOrDie(loopSourceFor(State.range(0)));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State)
    benchmark::DoNotOptimize(solveAllStandalone(P, Loop));
}
BENCHMARK(BM_FourProblemsStandalone)->Arg(8)->Arg(32)->Arg(128);

void BM_FourProblemsSession(benchmark::State &State) {
  Program P = parseOrDie(loopSourceFor(State.range(0)));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  // Counters-only telemetry (no sink): the BENCH json carries the
  // solver work alongside the times, at the relaxed-atomic-add tier of
  // the overhead contract.
  telem::Telemetry Telem;
  telem::TelemetryScope Scope(Telem);
  for (auto _ : State)
    benchmark::DoNotOptimize(solveAllSession(P, Loop));
  State.counters["node_visits"] =
      benchmark::Counter(Telem.get(telem::Counter::SolverNodeVisits),
                         benchmark::Counter::kAvgIterations);
  State.counters["meet_ops"] =
      benchmark::Counter(Telem.get(telem::Counter::SolverMeetOps),
                         benchmark::Counter::kAvgIterations);
  State.counters["apply_ops"] =
      benchmark::Counter(Telem.get(telem::Counter::SolverApplyOps),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FourProblemsSession)->Arg(8)->Arg(32)->Arg(128);

// Optimization-client shapes through the session API: the register
// pipelining front half (grouped available values + reuse pairs) and
// the load/store elimination pair of per-occurrence problems.
void BM_PipeliningClientSession(benchmark::State &State) {
  Program P = parseOrDie(loopSourceFor(32));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    LoopAnalysisSession Session(P, Loop);
    benchmark::DoNotOptimize(Session.reusePairs(
        ProblemSpec::availableValues(), RefSelector::Uses));
  }
}
BENCHMARK(BM_PipeliningClientSession);

void BM_LoadStoreClientSession(benchmark::State &State) {
  Program P = parseOrDie(loopSourceFor(32));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    LoopAnalysisSession Session(P, Loop);
    benchmark::DoNotOptimize(Session.reusePairs(
        ProblemSpec::availableValuesPerOccurrence(), RefSelector::Uses));
    benchmark::DoNotOptimize(Session.reusePairs(
        ProblemSpec::busyStoresPerOccurrence(), RefSelector::Defs));
  }
}
BENCHMARK(BM_LoadStoreClientSession);

// Workspace reuse: repeated solves of a prebuilt instance, fresh
// result allocation vs recycled matrices.
void BM_RepeatedSolveFresh(benchmark::State &State) {
  Program P = parseOrDie(loopSourceFor(State.range(0)));
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const FrameworkInstance &FW =
      Session.instance(ProblemSpec::mustReachingDefs());
  for (auto _ : State) {
    SolveResult R = solveDataFlow(FW);
    benchmark::DoNotOptimize(R.In.data());
  }
}
BENCHMARK(BM_RepeatedSolveFresh)->Arg(32)->Arg(128);

void BM_RepeatedSolveWorkspace(benchmark::State &State) {
  Program P = parseOrDie(loopSourceFor(State.range(0)));
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const FrameworkInstance &FW =
      Session.instance(ProblemSpec::mustReachingDefs());
  SolveWorkspace WS;
  for (auto _ : State) {
    const SolveResult &R = solveDataFlow(FW, WS);
    benchmark::DoNotOptimize(R.In.data());
  }
}
BENCHMARK(BM_RepeatedSolveWorkspace)->Arg(32)->Arg(128);

void BM_DriverThroughput(benchmark::State &State) {
  Program P = parseOrDie(programSource());
  telem::Telemetry Telem;
  telem::TelemetryScope Scope(Telem);
  for (auto _ : State) {
    DriverOptions Opts;
    Opts.Threads = State.range(0);
    ProgramAnalysisDriver Driver(P, Opts);
    Driver.run();
    benchmark::DoNotOptimize(Driver.totalNodeVisits());
  }
  State.SetItemsProcessed(State.iterations() * DriverLoops);
  State.counters["loops"] =
      benchmark::Counter(Telem.get(telem::Counter::DriverLoops),
                         benchmark::Counter::kAvgIterations);
  State.counters["node_visits"] =
      benchmark::Counter(Telem.get(telem::Counter::SolverNodeVisits),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DriverThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Driver throughput with every budget ceiling armed but sized so no
// loop ever breaches: prices the robustness layer's happy path at the
// batch level (per-pass guard checks plus per-loop outcome tallying).
// Compare against the unbudgeted BM_DriverThroughput rows; the delta
// must stay at noise level.
void BM_DriverThroughputBudgeted(benchmark::State &State) {
  Program P = parseOrDie(programSource());
  telem::Telemetry Telem;
  telem::TelemetryScope Scope(Telem);
  unsigned Degraded = 0, Failed = 0;
  for (auto _ : State) {
    DriverOptions Opts;
    Opts.Threads = State.range(0);
    Opts.Solver.Budget.VisitSlack = 4.0;
    Opts.Solver.Budget.MaxNodeVisits = 1u << 30;
    Opts.Solver.Budget.MaxMatrixCells = 1u << 30;
    Opts.Solver.Budget.DeadlineNs = 3600ull * 1000000000ull;
    ProgramAnalysisDriver Driver(P, Opts);
    Driver.run();
    benchmark::DoNotOptimize(Driver.totalNodeVisits());
    Degraded += Driver.report().Degraded;
    Failed += Driver.report().Failed;
  }
  State.SetItemsProcessed(State.iterations() * DriverLoops);
  // Armed-but-unhit by construction: any degradation would mean the
  // bench is no longer pricing the happy path.
  State.counters["degraded"] = Degraded;
  State.counters["failed"] = Failed;
  State.counters["breaches"] =
      benchmark::Counter(Telem.get(telem::Counter::BudgetBreaches));
}
BENCHMARK(BM_DriverThroughputBudgeted)->Arg(1)->Arg(4)->UseRealTime();

} // namespace

int main(int argc, char **argv) {
  printSessionTable();
  printDriverTable();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
