//===- bench/bench_lint.cpp - Lint engine throughput ----------------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Measures the end-to-end diagnostics engine: parse + validate + the
// four framework-backed checks per loop, with and without the
// two-engine cross-check, plus the cost of rendering the diagnostics in
// each output format. The cross-check column shows what the permanent
// packed-vs-reference oracle costs when shipped to users; rendering is
// benchmarked separately because CI pipelines run --format=sarif on
// every push.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "lint/LintEngine.h"
#include "lint/Render.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <sstream>

using namespace ardf;

namespace {

std::string loopSourceFor(unsigned Stmts) {
  return ardfbench::makeSyntheticLoop(Stmts, 4, 20, Stmts * 7 + 3, 1000);
}

std::string programSourceFor(unsigned Loops) {
  return ardfbench::makeSyntheticProgram(Loops, 16, 4, 20, 20260807, 1000);
}

LintOptions lintOpts(SolverOptions::Engine Eng, bool CrossCheck) {
  LintOptions Opts;
  Opts.Engine = Eng;
  Opts.CrossCheck = CrossCheck;
  return Opts;
}

void printLintTable() {
  std::printf("== lint throughput: full engine over one synthetic loop ==\n");
  std::printf("%6s | %12s %12s %12s | %6s\n", "stmts", "reference", "packed",
              "crosscheck", "diags");
  for (unsigned Stmts : {8u, 32u, 128u}) {
    std::string Src = loopSourceFor(Stmts);
    unsigned Reps = Stmts <= 8 ? 200 : Stmts <= 32 ? 50 : 10;
    size_t Diags = 0;
    double Times[3];
    const LintOptions Configs[] = {
        lintOpts(SolverOptions::Engine::Reference, false),
        lintOpts(SolverOptions::Engine::PackedKernel, false),
        lintOpts(SolverOptions::Engine::Reference, true),
    };
    for (int C = 0; C != 3; ++C) {
      lintSource(Src, "bench.arf", Configs[C]); // warm-up
      auto Start = std::chrono::steady_clock::now();
      for (unsigned I = 0; I != Reps; ++I) {
        LintResult R = lintSource(Src, "bench.arf", Configs[C]);
        Diags = R.Diags.size();
        benchmark::DoNotOptimize(R.Diags.data());
      }
      Times[C] = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count() /
                 Reps;
    }
    std::printf("%6u | %10.2fus %10.2fus %10.2fus | %6zu\n", Stmts,
                Times[0] * 1e6, Times[1] * 1e6, Times[2] * 1e6, Diags);
  }
  std::printf("(crosscheck solves every problem with BOTH engines and "
              "compares the solutions)\n\n");
}

void BM_LintLoop(benchmark::State &State) {
  std::string Src = loopSourceFor(State.range(0));
  LintOptions Opts = lintOpts(SolverOptions::Engine::Reference, false);
  for (auto _ : State)
    benchmark::DoNotOptimize(lintSource(Src, "bench.arf", Opts).Diags.data());
}
BENCHMARK(BM_LintLoop)->Arg(8)->Arg(32)->Arg(128);

void BM_LintLoopPacked(benchmark::State &State) {
  std::string Src = loopSourceFor(State.range(0));
  LintOptions Opts = lintOpts(SolverOptions::Engine::PackedKernel, false);
  for (auto _ : State)
    benchmark::DoNotOptimize(lintSource(Src, "bench.arf", Opts).Diags.data());
}
BENCHMARK(BM_LintLoopPacked)->Arg(8)->Arg(32)->Arg(128);

void BM_LintLoopCrossCheck(benchmark::State &State) {
  std::string Src = loopSourceFor(State.range(0));
  LintOptions Opts = lintOpts(SolverOptions::Engine::Reference, true);
  for (auto _ : State)
    benchmark::DoNotOptimize(lintSource(Src, "bench.arf", Opts).Diags.data());
}
BENCHMARK(BM_LintLoopCrossCheck)->Arg(8)->Arg(32)->Arg(128);

void BM_LintProgram(benchmark::State &State) {
  std::string Src = programSourceFor(State.range(0));
  LintOptions Opts = lintOpts(SolverOptions::Engine::Reference, false);
  for (auto _ : State)
    benchmark::DoNotOptimize(lintSource(Src, "bench.arf", Opts).Diags.data());
}
BENCHMARK(BM_LintProgram)->Arg(4)->Arg(16)->Arg(64);

void BM_RenderText(benchmark::State &State) {
  std::string Src = programSourceFor(16);
  LintResult R = lintSource(Src, "bench.arf",
                            lintOpts(SolverOptions::Engine::Reference, false));
  SourceMap Sources;
  Sources.add("bench.arf", Src);
  for (auto _ : State) {
    std::ostringstream OS;
    renderText(OS, R.Diags, Sources);
    benchmark::DoNotOptimize(OS.str().data());
  }
}
BENCHMARK(BM_RenderText);

void BM_RenderJsonLines(benchmark::State &State) {
  LintResult R =
      lintSource(programSourceFor(16), "bench.arf",
                 lintOpts(SolverOptions::Engine::Reference, false));
  for (auto _ : State) {
    std::ostringstream OS;
    renderJsonLines(OS, R.Diags);
    benchmark::DoNotOptimize(OS.str().data());
  }
}
BENCHMARK(BM_RenderJsonLines);

void BM_RenderSarif(benchmark::State &State) {
  LintResult R =
      lintSource(programSourceFor(16), "bench.arf",
                 lintOpts(SolverOptions::Engine::Reference, false));
  for (auto _ : State) {
    std::ostringstream OS;
    renderSarif(OS, R.Diags);
    benchmark::DoNotOptimize(OS.str().data());
  }
}
BENCHMARK(BM_RenderSarif);

} // namespace

int main(int argc, char **argv) {
  printLintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
