//===- bench/bench_pipeline_fig5.cpp - Fig. 5 register pipelining --------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Experiment F5: reproduces the Fig. 5 comparison on the simulated
// machine. The paper shows that a 3-stage register pipeline removes all
// in-loop loads of A[i]; we report loads/stores/moves/cycles for the
// conventional code, the explicit-move pipeline, and the rotating
// register window (Cydra 5 ICP, Section 4.1.4), across trip counts and
// pipeline depths.
//
//===----------------------------------------------------------------------===//

#include "codegen/LoopCodeGen.h"
#include "frontend/Parser.h"
#include "machine/Simulator.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

using namespace ardf;

namespace {

MachineStats simulate(const std::string &Source, PipelineMode Mode) {
  Program P = parseOrDie(Source);
  CodeGenOptions Opts;
  Opts.Mode = Mode;
  CodeGenResult CG = generateLoopCode(P, Opts);
  MachineSimulator Sim(CG.Prog);
  auto It = CG.ScalarRegs.find("X");
  if (It != CG.ScalarRegs.end())
    Sim.setReg(It->second, 7);
  Sim.run();
  return Sim.stats();
}

void printFig5Table() {
  std::printf("== F5: Fig. 5 loop A[i+2] = A[i] + X over N iterations ==\n");
  std::printf("%8s %10s | %8s %8s %8s %8s\n", "N", "variant", "loads",
              "stores", "moves", "cycles");
  for (int64_t N : {100, 1000, 10000}) {
    std::string Source =
        "do i = 1, " + std::to_string(N) + " { A[i+2] = A[i] + X; }";
    struct Row {
      const char *Name;
      PipelineMode Mode;
    } Rows[] = {{"conv", PipelineMode::None},
                {"moves", PipelineMode::Moves},
                {"rotate", PipelineMode::Rotate}};
    for (const Row &R : Rows) {
      MachineStats S = simulate(Source, R.Mode);
      std::printf("%8lld %10s | %8llu %8llu %8llu %8llu\n",
                  static_cast<long long>(N), R.Name,
                  static_cast<unsigned long long>(S.Loads),
                  static_cast<unsigned long long>(S.Stores),
                  static_cast<unsigned long long>(S.Moves),
                  static_cast<unsigned long long>(S.Cycles));
    }
  }

  std::printf("\npipeline depth sweep (A[i+D] = A[i] + X, N = 1000):\n");
  std::printf("%6s | %10s %12s %12s\n", "depth", "conv loads",
              "moves cycles", "rot cycles");
  for (int64_t D : {1, 2, 3, 4, 6, 8}) {
    std::string Source = "do i = 1, 1000 { A[i+" + std::to_string(D) +
                         "] = A[i] + X; }";
    MachineStats Conv = simulate(Source, PipelineMode::None);
    MachineStats Mov = simulate(Source, PipelineMode::Moves);
    MachineStats Rot = simulate(Source, PipelineMode::Rotate);
    std::printf("%6lld | %10llu %12llu %12llu\n",
                static_cast<long long>(D + 1),
                static_cast<unsigned long long>(Conv.Loads),
                static_cast<unsigned long long>(Mov.Cycles),
                static_cast<unsigned long long>(Rot.Cycles));
  }
  std::printf("shape check: pipelined loads stay O(depth); rotating beats "
              "moves for deep pipelines\n\n");
}

void BM_SimulateConventional(benchmark::State &State) {
  std::string Source = "do i = 1, 1000 { A[i+2] = A[i] + X; }";
  Program P = parseOrDie(Source);
  CodeGenResult CG = generateLoopCode(P, {});
  for (auto _ : State) {
    MachineSimulator Sim(CG.Prog);
    Sim.run();
    benchmark::DoNotOptimize(Sim.stats().Cycles);
  }
}
BENCHMARK(BM_SimulateConventional);

void BM_SimulateRotating(benchmark::State &State) {
  std::string Source = "do i = 1, 1000 { A[i+2] = A[i] + X; }";
  Program P = parseOrDie(Source);
  CodeGenOptions Opts;
  Opts.Mode = PipelineMode::Rotate;
  CodeGenResult CG = generateLoopCode(P, Opts);
  for (auto _ : State) {
    MachineSimulator Sim(CG.Prog);
    Sim.run();
    benchmark::DoNotOptimize(Sim.stats().Cycles);
  }
}
BENCHMARK(BM_SimulateRotating);

void BM_CodeGenPipelined(benchmark::State &State) {
  Program P = parseOrDie("do i = 1, 1000 { A[i+2] = A[i] + X; }");
  CodeGenOptions Opts;
  Opts.Mode = PipelineMode::Moves;
  for (auto _ : State) {
    CodeGenResult CG = generateLoopCode(P, Opts);
    benchmark::DoNotOptimize(CG.Prog.Code.data());
  }
}
BENCHMARK(BM_CodeGenPipelined);

} // namespace

int main(int argc, char **argv) {
  printFig5Table();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
