//===- bench/BenchUtils.h - Shared synthetic workload generator -*- C++ -*-==//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// The paper evaluates on hand-written kernels; the scaling and
// convergence benches additionally need loop bodies of controlled size.
// This generator emits deterministic Fortran-style loops with a mix of
// recurrent array accesses and conditional statements.
//
//===----------------------------------------------------------------------===//

#ifndef ARDF_BENCH_BENCHUTILS_H
#define ARDF_BENCH_BENCHUTILS_H

#include <cstdint>
#include <sstream>
#include <string>

namespace ardfbench {

/// Deterministic xorshift generator.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 2654435769u + 97) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }
};

/// Emits a loop with \p Stmts statements over \p Arrays arrays,
/// \p CondPercent percent of them under conditionals, all subscripts
/// affine with offsets in [-3, 3].
inline std::string makeSyntheticLoop(unsigned Stmts, unsigned Arrays,
                                     int CondPercent, uint64_t Seed,
                                     int64_t Trip = 1000) {
  Rng R(Seed);
  std::ostringstream OS;
  OS << "do i = 1, " << Trip << " {\n";
  auto Ref = [&](std::ostringstream &Out) {
    Out << static_cast<char>('A' + R.range(0, Arrays - 1)) << "[i";
    int64_t Off = R.range(-3, 3);
    if (Off > 0)
      Out << " + " << Off;
    else if (Off < 0)
      Out << " - " << -Off;
    Out << "]";
  };
  for (unsigned S = 0; S != Stmts; ++S) {
    bool Cond = R.chance(CondPercent);
    OS << "  ";
    if (Cond) {
      OS << "if (";
      Ref(OS);
      OS << " > " << R.range(-50, 50) << ") { ";
    }
    Ref(OS);
    OS << " = ";
    Ref(OS);
    OS << " + ";
    Ref(OS);
    OS << ";";
    if (Cond)
      OS << " }";
    OS << '\n';
  }
  OS << "}\n";
  return OS.str();
}

} // namespace ardfbench

#endif // ARDF_BENCH_BENCHUTILS_H
