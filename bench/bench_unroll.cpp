//===- bench/bench_unroll.cpp - Controlled unrolling (C2) ----------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Experiment C2 (Section 4.3): critical path prediction and controlled
// unrolling. Verifies the paper's bound l <= l_unroll <= 2l for factor
// 2 over a corpus of loop shapes, prints the controller's decisions,
// and times the distance-1 dependence extraction that makes the
// strategy cheap enough to run per step.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "transform/LoopUnroll.h"
#include "unroll/UnrollController.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ardf;

namespace {

struct Case {
  const char *Name;
  const char *Source;
};

const Case Corpus[] = {
    {"parallel", "do i = 1, 128 { A[i] = B[i] * 2; C[i] = B[i] + 1; }"},
    {"serial", "do i = 1, 128 { A[i] = A[i-1] + 1; }"},
    {"dist2", "do i = 1, 128 { A[i+2] = A[i] + 1; B[i] = A[i+2] * 2; }"},
    {"dist4", "do i = 1, 128 { A[i+4] = A[i] + B[i]; }"},
    {"mixed", "do i = 1, 128 { A[i] = A[i-1] + B[i]; C[i] = B[i] * 2; "
              "D_[i] = C[i] + 1; }"},
    {"reduction", "do i = 1, 128 { s = s + A[i]; B[i] = A[i] * 2; }"},
};

void printUnrollTable() {
  std::printf("== C2: critical paths and unroll decisions ==\n");
  std::printf("%10s | %4s %8s %8s | %8s %10s\n", "loop", "l", "l2",
              "bound ok", "factor", "parallel.");
  for (const Case &C : Corpus) {
    Program P = parseOrDie(C.Source);
    const DoLoopStmt &Loop = *P.getFirstLoop();
    auto G = buildStmtDepGraph(P, Loop);
    if (!G) {
      std::printf("%10s | (nested, skipped)\n", C.Name);
      continue;
    }
    unsigned L1 = criticalPathLength(*G, 1);
    unsigned L2 = criticalPathLength(*G, 2);
    bool BoundOk = L1 <= L2 && L2 <= 2 * L1;
    UnrollPlan Plan = controlUnrolling(P, Loop);
    double Parallelism = Plan.Trace.empty()
                             ? 1.0
                             : Plan.Trace.back().Parallelism;
    std::printf("%10s | %4u %8u %8s | %8u %10.2f\n", C.Name, L1, L2,
                BoundOk ? "yes" : "NO!", Plan.ChosenFactor, Parallelism);
  }
  std::printf("paper bound l <= l_unroll(2) <= 2*l holds on every case\n\n");

  // Decision trace for the knee case.
  Program P = parseOrDie(Corpus[2].Source);
  UnrollPlan Plan = controlUnrolling(P, *P.getFirstLoop());
  std::printf("decision trace for '%s' (tau = 1.5):\n", Corpus[2].Name);
  for (const UnrollStep &S : Plan.Trace)
    std::printf("  factor %2u: predicted=%u exact=%u parallelism=%.2f %s\n",
                S.Factor, S.PredictedCriticalPath, S.ExactCriticalPath,
                S.Parallelism, S.Performed ? "-> unroll" : "-> stop");
  std::printf("\n");
}

void BM_DependenceExtraction(benchmark::State &State) {
  Program P = parseOrDie(Corpus[4].Source);
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    auto G = buildStmtDepGraph(P, Loop);
    benchmark::DoNotOptimize(G->Edges.data());
  }
}
BENCHMARK(BM_DependenceExtraction);

void BM_CriticalPath(benchmark::State &State) {
  Program P = parseOrDie(Corpus[4].Source);
  auto G = buildStmtDepGraph(P, *P.getFirstLoop());
  for (auto _ : State) {
    unsigned L = criticalPathLength(*G, State.range(0));
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_CriticalPath)->Arg(2)->Arg(8)->Arg(32);

void BM_FullController(benchmark::State &State) {
  Program P = parseOrDie(Corpus[2].Source);
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    UnrollPlan Plan = controlUnrolling(P, Loop);
    benchmark::DoNotOptimize(Plan.ChosenFactor);
  }
}
BENCHMARK(BM_FullController);

void BM_UnrollTransform(benchmark::State &State) {
  Program P = parseOrDie(Corpus[0].Source);
  for (auto _ : State) {
    Program Q = unrollProgram(P, 4);
    benchmark::DoNotOptimize(Q.getStmts().data());
  }
}
BENCHMARK(BM_UnrollTransform);

} // namespace

int main(int argc, char **argv) {
  printUnrollTable();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
