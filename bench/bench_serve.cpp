//===- bench/bench_serve.cpp - Daemon request latency and throughput ------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Measures the analysis-as-a-service claim: a cold request pays parse +
// driver build + full solve, a warm edit pays one loop's re-solve
// through ProgramAnalysisDriver::rerun, and an identical repeat pays
// only the response-memo replay. The table prints the cold/warm/memo
// split per engine; the google-benchmark timings add sustained
// requests/sec at 1 and N submitter threads. The summary-engine rows
// export the warm-apply counters (summary_applies, summary_cache_hits)
// so BENCH_serve.json records how many solves the warm path served
// without schedule passes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "serve/Server.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <string>

using namespace ardf;
using namespace ardf::serve;

namespace {

/// A deterministic multi-loop program; edits mutate one loop's trip
/// count so reruns re-solve exactly one loop.
std::string programSource(unsigned Loops, int64_t Trip0) {
  std::string Src =
      "do z = 1, " + std::to_string(Trip0) + " {\n  A[z] = A[z - 1] + 1;\n}\n";
  Src += ardfbench::makeSyntheticProgram(Loops - 1, 12, 4, 20, 20260809, 500);
  return Src;
}

std::string quote(const std::string &S) {
  std::string Out;
  json::appendQuoted(Out, S);
  return Out;
}

std::string analyzeLine(const std::string &Src, const std::string &File,
                        const char *Engine) {
  return "{\"method\":\"analyze\",\"file\":" + quote(File) +
         ",\"engine\":\"" + Engine + "\",\"source\":" + quote(Src) + "}";
}

/// Synchronous request round trip.
std::string call(AnalysisServer &S, const std::string &Line) {
  std::promise<std::string> P;
  std::future<std::string> F = P.get_future();
  S.submit(Line, [&P](std::string R) { P.set_value(std::move(R)); });
  return F.get();
}

double secondsFor(AnalysisServer &S, const std::string &Line) {
  auto Start = std::chrono::steady_clock::now();
  call(S, Line);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void printServeTable() {
  std::printf("== ardf-serve: cold vs warm vs memo, per engine ==\n");
  std::printf("%10s | %12s %12s %12s\n", "engine", "cold", "warm-edit",
              "memo-hit");
  for (const char *Engine : {"reference", "packed", "summary"}) {
    AnalysisServer S;
    std::string File = std::string("bench-") + Engine + ".arf";
    // Cold: first contact builds the document, driver, and sessions.
    double Cold =
        secondsFor(S, analyzeLine(programSource(8, 100), File, Engine));
    // Warm: one-loop edits rerun through the structural diff; average a
    // few so one scheduler hiccup does not skew the row.
    double Warm = 0;
    constexpr int Edits = 10;
    for (int I = 0; I != Edits; ++I)
      Warm +=
          secondsFor(S, analyzeLine(programSource(8, 101 + I), File, Engine));
    Warm /= Edits;
    // Memo: the identical line replays rendered bytes.
    std::string Last = analyzeLine(programSource(8, 100 + Edits), File,
                                   Engine);
    call(S, Last);
    double Memo = 0;
    for (int I = 0; I != Edits; ++I)
      Memo += secondsFor(S, Last);
    Memo /= Edits;
    std::printf("%10s | %10.2fus %10.2fus %10.2fus\n", Engine, Cold * 1e6,
                Warm * 1e6, Memo * 1e6);
  }
  std::printf("(warm-edit re-solves one mutated loop via rerun; memo-hit "
              "replays the rendered response)\n\n");
}

void BM_ServeColdDocument(benchmark::State &State) {
  // Every iteration hits a fresh file: document creation + full solve.
  // A generous tenant quota keeps eviction out of the measurement.
  ServeOptions Opts;
  Opts.TenantQuota = 1u << 20;
  AnalysisServer S(Opts);
  std::string Src = programSource(4, 100);
  uint64_t N = 0;
  for (auto _ : State) {
    std::string R = call(
        S, analyzeLine(Src, "cold" + std::to_string(N++) + ".arf",
                       "reference"));
    benchmark::DoNotOptimize(R.data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ServeColdDocument);

void BM_ServeWarmRerun(benchmark::State &State) {
  // One document, a new one-loop edit per iteration: the rerun path.
  AnalysisServer S;
  call(S, analyzeLine(programSource(4, 100), "warm.arf", "reference"));
  int64_t Trip = 200;
  for (auto _ : State) {
    std::string R =
        call(S, analyzeLine(programSource(4, Trip++), "warm.arf",
                            "reference"));
    benchmark::DoNotOptimize(R.data());
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["reruns"] = static_cast<double>(
      S.telemetry().get(telem::Counter::ServeReruns));
}
BENCHMARK(BM_ServeWarmRerun);

void BM_ServeWarmRerunSummary(benchmark::State &State) {
  // The same edit stream under the summary engine: warm re-solves apply
  // memoized transfer summaries instead of running schedule passes; the
  // exported counters record how many solves the summaries served.
  AnalysisServer S;
  call(S, analyzeLine(programSource(4, 100), "warm.arf", "summary"));
  int64_t Trip = 200;
  for (auto _ : State) {
    std::string R =
        call(S, analyzeLine(programSource(4, Trip++), "warm.arf",
                            "summary"));
    benchmark::DoNotOptimize(R.data());
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["summary_applies"] = static_cast<double>(
      S.telemetry().get(telem::Counter::SummaryApplies));
  State.counters["summary_cache_hits"] = static_cast<double>(
      S.telemetry().get(telem::Counter::SummaryCacheHits));
}
BENCHMARK(BM_ServeWarmRerunSummary);

void BM_ServeMemoHit(benchmark::State &State) {
  // The identical request line: content hash + options key -> replay.
  AnalysisServer S;
  std::string Line = analyzeLine(programSource(4, 100), "memo.arf",
                                 "reference");
  call(S, Line);
  for (auto _ : State) {
    std::string R = call(S, Line);
    benchmark::DoNotOptimize(R.data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ServeMemoHit);

/// Shared server for the threaded throughput rows (google-benchmark
/// constructs/destroys per-thread state around the measurement, so the
/// server lives across the whole family run).
struct ThroughputFixture {
  std::unique_ptr<AnalysisServer> S;
  std::string Line;
  /// (Re)builds the server with one worker per submitter thread. Rows
  /// run sequentially, so a rebuild at row start never races an old
  /// row's submit.
  void ensure(int Threads) {
    if (S && S->options().Workers == static_cast<unsigned>(Threads))
      return;
    S.reset();
    ServeOptions Opts;
    Opts.Workers = static_cast<unsigned>(Threads);
    Opts.QueueDepth = 1024;
    S = std::make_unique<AnalysisServer>(Opts);
    Line = analyzeLine(programSource(4, 100), "tp.arf", "reference");
    // Prime the memo so the measurement is pure request machinery.
    std::promise<std::string> P;
    std::future<std::string> F = P.get_future();
    S->submit(Line, [&P](std::string R) { P.set_value(std::move(R)); });
    F.get();
  }
};

ThroughputFixture TP;
std::mutex TPM;

void BM_ServeRequestsPerSec(benchmark::State &State) {
  {
    std::lock_guard<std::mutex> L(TPM);
    TP.ensure(State.threads());
  }
  for (auto _ : State) {
    std::promise<std::string> P;
    std::future<std::string> F = P.get_future();
    TP.S->submit(TP.Line,
                 [&P](std::string R) { P.set_value(std::move(R)); });
    benchmark::DoNotOptimize(F.get().data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ServeRequestsPerSec)->Threads(1)->Threads(4)
    ->UseRealTime();

} // namespace

int main(int argc, char **argv) {
  printServeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
