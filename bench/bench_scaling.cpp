//===- bench/bench_scaling.cpp - Practicality / scaling (C4) -------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Experiment C4: the practicality claim. Node visits stay exactly 3N
// (must) / 2N (may) as loops grow; wall-clock per analysis scales with
// N * |G| (tuple width times nodes, the O(N^2) work/space of Section
// 3.2). Sweeps body size, conditional density, and reference density.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ardf;

namespace {

void printScalingTable() {
  std::printf("== C4: analysis scale (must-reaching-defs) ==\n");
  std::printf("%6s | %6s %6s %10s %12s\n", "stmts", "nodes", "|G|",
              "visits", "visits/3N");
  for (unsigned Stmts : {8u, 32u, 128u, 512u}) {
    std::string Source =
        ardfbench::makeSyntheticLoop(Stmts, 4, 20, Stmts + 3, 1000);
    Program P = parseOrDie(Source);
    LoopDataFlow DF(P, *P.getFirstLoop(),
                    ProblemSpec::mustReachingDefs());
    unsigned N = DF.graph().getNumNodes();
    std::printf("%6u | %6u %6u %10u %12.2f\n", Stmts, N,
                DF.framework().getNumTracked(), DF.result().NodeVisits,
                static_cast<double>(DF.result().NodeVisits) / (3.0 * N));
  }
  std::printf("shape check: visits/3N == 1.00 at every size "
              "(the practicality claim)\n\n");
}

std::string sourceFor(int64_t Stmts, int Cond) {
  return ardfbench::makeSyntheticLoop(Stmts, 4, Cond, Stmts * 3 + Cond + 7,
                                      1000);
}

void BM_MustAnalysis(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0), 20));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    LoopDataFlow DF(P, Loop, ProblemSpec::mustReachingDefs());
    benchmark::DoNotOptimize(DF.result().In.data());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_MustAnalysis)->Range(8, 512)->Complexity();

void BM_MayAnalysis(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0), 20));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    LoopDataFlow DF(P, Loop, ProblemSpec::reachingReferences());
    benchmark::DoNotOptimize(DF.result().In.data());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_MayAnalysis)->Range(8, 512)->Complexity();

void BM_AvailableValues(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0), 20));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    LoopDataFlow DF(P, Loop, ProblemSpec::availableValues());
    benchmark::DoNotOptimize(DF.result().In.data());
  }
}
BENCHMARK(BM_AvailableValues)->Arg(8)->Arg(64)->Arg(256);

void BM_BusyStores(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(State.range(0), 20));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    LoopDataFlow DF(P, Loop, ProblemSpec::busyStores());
    benchmark::DoNotOptimize(DF.result().In.data());
  }
}
BENCHMARK(BM_BusyStores)->Arg(8)->Arg(64)->Arg(256);

void BM_ConditionalDensity(benchmark::State &State) {
  Program P = parseOrDie(sourceFor(64, State.range(0)));
  const DoLoopStmt &Loop = *P.getFirstLoop();
  for (auto _ : State) {
    LoopDataFlow DF(P, Loop, ProblemSpec::mustReachingDefs());
    benchmark::DoNotOptimize(DF.result().In.data());
  }
}
BENCHMARK(BM_ConditionalDensity)->Arg(0)->Arg(30)->Arg(60)->Arg(90);

} // namespace

int main(int argc, char **argv) {
  printScalingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
