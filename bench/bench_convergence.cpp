//===- bench/bench_convergence.cpp - The 3N / 2N pass claims (C1) --------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Experiment C1 (Section 3.2/3.3 claims): the structured solver reaches
// the greatest fixed point in exactly 3N node visits for must-problems
// (initialization + two passes) and 2N for may-problems, independent of
// loop size; a conventional FIFO worklist needs more visits for the same
// solution, and a may-problem started from the pessimistic "no
// instances" guess crawls in O(UB * N). Also verifies the O(N^2) space
// bound by reporting tuple storage.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "baseline/NaiveSolver.h"
#include "frontend/Parser.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ardf;

namespace {

void printConvergenceTable() {
  std::printf("== C1: node visits to the fixed point ==\n");
  std::printf("%6s %6s | %10s %10s | %10s %10s | %12s\n", "stmts", "nodes",
              "must 3N", "naive", "may 2N", "naive", "may-pess");
  for (unsigned Stmts : {4u, 8u, 16u, 32u, 64u}) {
    std::string Source =
        ardfbench::makeSyntheticLoop(Stmts, 3, 25, Stmts * 7 + 1, 200);
    Program P = parseOrDie(Source);
    LoopFlowGraph Graph(*P.getFirstLoop());

    FrameworkInstance Must(Graph, P, ProblemSpec::mustReachingDefs());
    SolveResult MustPaper = solveDataFlow(Must);
    SolveResult MustNaive = solveNaiveWorklist(Must);

    FrameworkInstance May(Graph, P, ProblemSpec::reachingReferences());
    SolveResult MayPaper = solveDataFlow(May);
    SolveResult MayNaive = solveNaiveWorklist(May);
    NaiveSolverOptions Pess;
    Pess.PessimisticMayInit = true;
    SolveResult MayPess = solveNaiveWorklist(May, Pess);

    bool Same = MustPaper.In == MustNaive.In && MayPaper.In == MayNaive.In &&
                MayPaper.In == MayPess.In;
    std::printf("%6u %6u | %10u %10u | %10u %10u | %12u %s\n", Stmts,
                Graph.getNumNodes(), MustPaper.NodeVisits,
                MustNaive.NodeVisits, MayPaper.NodeVisits,
                MayNaive.NodeVisits, MayPess.NodeVisits,
                Same ? "(solutions agree)" : "(MISMATCH!)");
  }
  std::printf("space: IN/OUT tuples are O(N * |G|) = O(N^2) as stated in "
              "Section 3.2\n\n");
}

void BM_PaperScheduleMust(benchmark::State &State) {
  std::string Source = ardfbench::makeSyntheticLoop(
      State.range(0), 3, 25, State.range(0) * 7 + 1, 200);
  Program P = parseOrDie(Source);
  LoopFlowGraph Graph(*P.getFirstLoop());
  FrameworkInstance FW(Graph, P, ProblemSpec::mustReachingDefs());
  for (auto _ : State) {
    SolveResult R = solveDataFlow(FW);
    benchmark::DoNotOptimize(R.In.data());
  }
}
BENCHMARK(BM_PaperScheduleMust)->Arg(8)->Arg(32)->Arg(128);

void BM_NaiveWorklistMust(benchmark::State &State) {
  std::string Source = ardfbench::makeSyntheticLoop(
      State.range(0), 3, 25, State.range(0) * 7 + 1, 200);
  Program P = parseOrDie(Source);
  LoopFlowGraph Graph(*P.getFirstLoop());
  FrameworkInstance FW(Graph, P, ProblemSpec::mustReachingDefs());
  for (auto _ : State) {
    SolveResult R = solveNaiveWorklist(FW);
    benchmark::DoNotOptimize(R.In.data());
  }
}
BENCHMARK(BM_NaiveWorklistMust)->Arg(8)->Arg(32)->Arg(128);

void BM_PaperScheduleMay(benchmark::State &State) {
  std::string Source = ardfbench::makeSyntheticLoop(
      State.range(0), 3, 25, State.range(0) * 7 + 1, 200);
  Program P = parseOrDie(Source);
  LoopFlowGraph Graph(*P.getFirstLoop());
  FrameworkInstance FW(Graph, P, ProblemSpec::reachingReferences());
  for (auto _ : State) {
    SolveResult R = solveDataFlow(FW);
    benchmark::DoNotOptimize(R.In.data());
  }
}
BENCHMARK(BM_PaperScheduleMay)->Arg(8)->Arg(32)->Arg(128);

} // namespace

int main(int argc, char **argv) {
  printConvergenceTable();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
