//===- bench/bench_stores_fig6.cpp - Fig. 6 redundant stores -------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Experiment F6: redundant store elimination on the Fig. 6 loop. The
// paper claims the 1-redundant store can be removed from all but the
// final iteration; we verify observational equivalence under the
// interpreter and report the store-count reduction across trip counts
// and condition densities.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "transform/StoreElimination.h"

#include "support/BuildInfo.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

using namespace ardf;

namespace {

std::string fig6Source(int64_t N) {
  return "do i = 1, " + std::to_string(N) +
         " {\n  A[i] = i + x;\n  if (x == 0) { A[i+1] = 99; }\n}\n";
}

ExecStats run(const Program &P, int64_t X) {
  Interpreter I(P);
  I.setScalar("x", X);
  I.seedArray("A", 64, 11);
  I.run();
  return I.stats();
}

bool sameState(const Program &A, const Program &B, int64_t X) {
  Interpreter IA(A), IB(B);
  IA.setScalar("x", X);
  IB.setScalar("x", X);
  IA.seedArray("A", 64, 11);
  IB.seedArray("A", 64, 11);
  IA.run();
  IB.run();
  return IA.state().Arrays == IB.state().Arrays;
}

void printFig6Table() {
  std::printf("== F6: Fig. 6 redundant store elimination ==\n");
  std::printf("%8s %4s | %10s %10s %8s %10s\n", "N", "x", "stores",
              "after", "saved%%", "state");
  for (int64_t N : {100, 1000, 10000}) {
    Program P = parseOrDie(fig6Source(N));
    StoreElimResult R = eliminateRedundantStores(P);
    for (int64_t X : {0, 1}) {
      ExecStats Before = run(P, X);
      ExecStats After = run(R.Transformed, X);
      std::printf("%8lld %4lld | %10llu %10llu %7.1f%% %10s\n",
                  static_cast<long long>(N), static_cast<long long>(X),
                  static_cast<unsigned long long>(Before.ArrayStores),
                  static_cast<unsigned long long>(After.ArrayStores),
                  100.0 * (Before.ArrayStores - After.ArrayStores) /
                      Before.ArrayStores,
                  sameState(P, R.Transformed, X) ? "identical"
                                                 : "MISMATCH");
    }
  }
  Program P = parseOrDie(fig6Source(1000));
  StoreElimResult R = eliminateRedundantStores(P);
  std::printf("eliminated %u store(s), unpeeled %lld iteration(s): %s\n\n",
              R.StoresEliminated,
              static_cast<long long>(R.UnpeeledIterations),
              R.Notes.empty() ? "" : R.Notes.front().c_str());
}

void BM_StoreElimAnalysis(benchmark::State &State) {
  Program P = parseOrDie(fig6Source(1000));
  for (auto _ : State) {
    StoreElimResult R = eliminateRedundantStores(P);
    benchmark::DoNotOptimize(R.StoresEliminated);
  }
}
BENCHMARK(BM_StoreElimAnalysis);

void BM_TransformedExecution(benchmark::State &State) {
  Program P = parseOrDie(fig6Source(1000));
  StoreElimResult R = eliminateRedundantStores(P);
  for (auto _ : State) {
    Interpreter I(R.Transformed);
    I.setScalar("x", 0);
    I.run();
    benchmark::DoNotOptimize(I.stats().ArrayStores);
  }
}
BENCHMARK(BM_TransformedExecution);

void BM_OriginalExecution(benchmark::State &State) {
  Program P = parseOrDie(fig6Source(1000));
  for (auto _ : State) {
    Interpreter I(P);
    I.setScalar("x", 0);
    I.run();
    benchmark::DoNotOptimize(I.stats().ArrayStores);
  }
}
BENCHMARK(BM_OriginalExecution);

} // namespace

int main(int argc, char **argv) {
  printFig6Table();
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("ardf_library_build_type",
                              ardf::libraryBuildType());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
