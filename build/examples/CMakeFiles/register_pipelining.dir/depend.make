# Empty dependencies file for register_pipelining.
# This may be replaced when dependencies are built.
