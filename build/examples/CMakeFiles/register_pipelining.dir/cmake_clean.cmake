file(REMOVE_RECURSE
  "CMakeFiles/register_pipelining.dir/register_pipelining.cpp.o"
  "CMakeFiles/register_pipelining.dir/register_pipelining.cpp.o.d"
  "register_pipelining"
  "register_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
