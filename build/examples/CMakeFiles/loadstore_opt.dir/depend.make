# Empty dependencies file for loadstore_opt.
# This may be replaced when dependencies are built.
