file(REMOVE_RECURSE
  "CMakeFiles/loadstore_opt.dir/loadstore_opt.cpp.o"
  "CMakeFiles/loadstore_opt.dir/loadstore_opt.cpp.o.d"
  "loadstore_opt"
  "loadstore_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadstore_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
