file(REMOVE_RECURSE
  "CMakeFiles/loop_unrolling.dir/loop_unrolling.cpp.o"
  "CMakeFiles/loop_unrolling.dir/loop_unrolling.cpp.o.d"
  "loop_unrolling"
  "loop_unrolling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_unrolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
