# Empty compiler generated dependencies file for loop_unrolling.
# This may be replaced when dependencies are built.
