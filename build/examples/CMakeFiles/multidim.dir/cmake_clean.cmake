file(REMOVE_RECURSE
  "CMakeFiles/multidim.dir/multidim.cpp.o"
  "CMakeFiles/multidim.dir/multidim.cpp.o.d"
  "multidim"
  "multidim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
