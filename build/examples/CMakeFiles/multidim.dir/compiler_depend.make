# Empty compiler generated dependencies file for multidim.
# This may be replaced when dependencies are built.
