# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/ir_tests[1]_include.cmake")
include("/root/repo/build/tests/frontend_tests[1]_include.cmake")
include("/root/repo/build/tests/affine_tests[1]_include.cmake")
include("/root/repo/build/tests/cfg_tests[1]_include.cmake")
include("/root/repo/build/tests/lattice_tests[1]_include.cmake")
include("/root/repo/build/tests/dataflow_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/interp_tests[1]_include.cmake")
include("/root/repo/build/tests/transform_tests[1]_include.cmake")
include("/root/repo/build/tests/unroll_tests[1]_include.cmake")
include("/root/repo/build/tests/scalardf_tests[1]_include.cmake")
include("/root/repo/build/tests/regalloc_tests[1]_include.cmake")
include("/root/repo/build/tests/codegen_tests[1]_include.cmake")
include("/root/repo/build/tests/baseline_tests[1]_include.cmake")
include("/root/repo/build/tests/passes_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
