file(REMOVE_RECURSE
  "CMakeFiles/dataflow_tests.dir/dataflow/CustomSpecTest.cpp.o"
  "CMakeFiles/dataflow_tests.dir/dataflow/CustomSpecTest.cpp.o.d"
  "CMakeFiles/dataflow_tests.dir/dataflow/FrameworkTest.cpp.o"
  "CMakeFiles/dataflow_tests.dir/dataflow/FrameworkTest.cpp.o.d"
  "CMakeFiles/dataflow_tests.dir/dataflow/PreserveConstantTest.cpp.o"
  "CMakeFiles/dataflow_tests.dir/dataflow/PreserveConstantTest.cpp.o.d"
  "CMakeFiles/dataflow_tests.dir/dataflow/Table1Test.cpp.o"
  "CMakeFiles/dataflow_tests.dir/dataflow/Table1Test.cpp.o.d"
  "dataflow_tests"
  "dataflow_tests.pdb"
  "dataflow_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
