
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dataflow/CustomSpecTest.cpp" "tests/CMakeFiles/dataflow_tests.dir/dataflow/CustomSpecTest.cpp.o" "gcc" "tests/CMakeFiles/dataflow_tests.dir/dataflow/CustomSpecTest.cpp.o.d"
  "/root/repo/tests/dataflow/FrameworkTest.cpp" "tests/CMakeFiles/dataflow_tests.dir/dataflow/FrameworkTest.cpp.o" "gcc" "tests/CMakeFiles/dataflow_tests.dir/dataflow/FrameworkTest.cpp.o.d"
  "/root/repo/tests/dataflow/PreserveConstantTest.cpp" "tests/CMakeFiles/dataflow_tests.dir/dataflow/PreserveConstantTest.cpp.o" "gcc" "tests/CMakeFiles/dataflow_tests.dir/dataflow/PreserveConstantTest.cpp.o.d"
  "/root/repo/tests/dataflow/Table1Test.cpp" "tests/CMakeFiles/dataflow_tests.dir/dataflow/Table1Test.cpp.o" "gcc" "tests/CMakeFiles/dataflow_tests.dir/dataflow/Table1Test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ardf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
