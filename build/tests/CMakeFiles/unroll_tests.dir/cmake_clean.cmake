file(REMOVE_RECURSE
  "CMakeFiles/unroll_tests.dir/unroll/RegisterPressureTest.cpp.o"
  "CMakeFiles/unroll_tests.dir/unroll/RegisterPressureTest.cpp.o.d"
  "CMakeFiles/unroll_tests.dir/unroll/UnrollControllerTest.cpp.o"
  "CMakeFiles/unroll_tests.dir/unroll/UnrollControllerTest.cpp.o.d"
  "unroll_tests"
  "unroll_tests.pdb"
  "unroll_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unroll_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
