# Empty dependencies file for unroll_tests.
# This may be replaced when dependencies are built.
