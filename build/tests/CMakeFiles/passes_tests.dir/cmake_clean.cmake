file(REMOVE_RECURSE
  "CMakeFiles/passes_tests.dir/passes/PassesTest.cpp.o"
  "CMakeFiles/passes_tests.dir/passes/PassesTest.cpp.o.d"
  "passes_tests"
  "passes_tests.pdb"
  "passes_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passes_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
