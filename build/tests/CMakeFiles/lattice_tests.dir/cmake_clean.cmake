file(REMOVE_RECURSE
  "CMakeFiles/lattice_tests.dir/lattice/DistanceTest.cpp.o"
  "CMakeFiles/lattice_tests.dir/lattice/DistanceTest.cpp.o.d"
  "lattice_tests"
  "lattice_tests.pdb"
  "lattice_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
