# Empty compiler generated dependencies file for affine_tests.
# This may be replaced when dependencies are built.
