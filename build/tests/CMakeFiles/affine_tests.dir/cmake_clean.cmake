file(REMOVE_RECURSE
  "CMakeFiles/affine_tests.dir/affine/AffineAccessTest.cpp.o"
  "CMakeFiles/affine_tests.dir/affine/AffineAccessTest.cpp.o.d"
  "CMakeFiles/affine_tests.dir/affine/PolyTest.cpp.o"
  "CMakeFiles/affine_tests.dir/affine/PolyTest.cpp.o.d"
  "affine_tests"
  "affine_tests.pdb"
  "affine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
