file(REMOVE_RECURSE
  "CMakeFiles/scalardf_tests.dir/scalardf/ScalarLivenessTest.cpp.o"
  "CMakeFiles/scalardf_tests.dir/scalardf/ScalarLivenessTest.cpp.o.d"
  "scalardf_tests"
  "scalardf_tests.pdb"
  "scalardf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalardf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
