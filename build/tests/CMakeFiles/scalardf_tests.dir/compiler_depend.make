# Empty compiler generated dependencies file for scalardf_tests.
# This may be replaced when dependencies are built.
