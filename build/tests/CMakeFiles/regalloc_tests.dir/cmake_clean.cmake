file(REMOVE_RECURSE
  "CMakeFiles/regalloc_tests.dir/regalloc/RegAllocTest.cpp.o"
  "CMakeFiles/regalloc_tests.dir/regalloc/RegAllocTest.cpp.o.d"
  "regalloc_tests"
  "regalloc_tests.pdb"
  "regalloc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regalloc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
