file(REMOVE_RECURSE
  "CMakeFiles/transform_tests.dir/transform/LoadElimTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/LoadElimTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/LoopUnrollTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/LoopUnrollTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/RewriteTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/RewriteTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/StoreElimTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/StoreElimTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/TransformPropertyTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/TransformPropertyTest.cpp.o.d"
  "transform_tests"
  "transform_tests.pdb"
  "transform_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
