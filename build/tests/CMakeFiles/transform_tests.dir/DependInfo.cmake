
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transform/LoadElimTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/LoadElimTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/LoadElimTest.cpp.o.d"
  "/root/repo/tests/transform/LoopUnrollTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/LoopUnrollTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/LoopUnrollTest.cpp.o.d"
  "/root/repo/tests/transform/RewriteTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/RewriteTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/RewriteTest.cpp.o.d"
  "/root/repo/tests/transform/StoreElimTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/StoreElimTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/StoreElimTest.cpp.o.d"
  "/root/repo/tests/transform/TransformPropertyTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/TransformPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/TransformPropertyTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ardf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
