
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/affine/AffineAccess.cpp" "src/CMakeFiles/ardf.dir/affine/AffineAccess.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/affine/AffineAccess.cpp.o.d"
  "/root/repo/src/affine/Poly.cpp" "src/CMakeFiles/ardf.dir/affine/Poly.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/affine/Poly.cpp.o.d"
  "/root/repo/src/analysis/Dependence.cpp" "src/CMakeFiles/ardf.dir/analysis/Dependence.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/analysis/Dependence.cpp.o.d"
  "/root/repo/src/analysis/DistanceVector.cpp" "src/CMakeFiles/ardf.dir/analysis/DistanceVector.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/analysis/DistanceVector.cpp.o.d"
  "/root/repo/src/analysis/HierarchicalAnalysis.cpp" "src/CMakeFiles/ardf.dir/analysis/HierarchicalAnalysis.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/analysis/HierarchicalAnalysis.cpp.o.d"
  "/root/repo/src/analysis/LoopDataFlow.cpp" "src/CMakeFiles/ardf.dir/analysis/LoopDataFlow.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/analysis/LoopDataFlow.cpp.o.d"
  "/root/repo/src/baseline/DepScalarReplacement.cpp" "src/CMakeFiles/ardf.dir/baseline/DepScalarReplacement.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/baseline/DepScalarReplacement.cpp.o.d"
  "/root/repo/src/baseline/DependenceTest.cpp" "src/CMakeFiles/ardf.dir/baseline/DependenceTest.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/baseline/DependenceTest.cpp.o.d"
  "/root/repo/src/baseline/NaiveSolver.cpp" "src/CMakeFiles/ardf.dir/baseline/NaiveSolver.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/baseline/NaiveSolver.cpp.o.d"
  "/root/repo/src/cfg/LoopFlowGraph.cpp" "src/CMakeFiles/ardf.dir/cfg/LoopFlowGraph.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/cfg/LoopFlowGraph.cpp.o.d"
  "/root/repo/src/codegen/LoopCodeGen.cpp" "src/CMakeFiles/ardf.dir/codegen/LoopCodeGen.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/codegen/LoopCodeGen.cpp.o.d"
  "/root/repo/src/dataflow/Framework.cpp" "src/CMakeFiles/ardf.dir/dataflow/Framework.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/dataflow/Framework.cpp.o.d"
  "/root/repo/src/dataflow/PreserveConstant.cpp" "src/CMakeFiles/ardf.dir/dataflow/PreserveConstant.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/dataflow/PreserveConstant.cpp.o.d"
  "/root/repo/src/dataflow/References.cpp" "src/CMakeFiles/ardf.dir/dataflow/References.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/dataflow/References.cpp.o.d"
  "/root/repo/src/frontend/Lexer.cpp" "src/CMakeFiles/ardf.dir/frontend/Lexer.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/frontend/Lexer.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "src/CMakeFiles/ardf.dir/frontend/Parser.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/frontend/Parser.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/ardf.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/CMakeFiles/ardf.dir/ir/Expr.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/ir/Expr.cpp.o.d"
  "/root/repo/src/ir/PrettyPrinter.cpp" "src/CMakeFiles/ardf.dir/ir/PrettyPrinter.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/ir/PrettyPrinter.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "src/CMakeFiles/ardf.dir/ir/Program.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/ir/Program.cpp.o.d"
  "/root/repo/src/ir/Stmt.cpp" "src/CMakeFiles/ardf.dir/ir/Stmt.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/ir/Stmt.cpp.o.d"
  "/root/repo/src/lattice/Distance.cpp" "src/CMakeFiles/ardf.dir/lattice/Distance.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/lattice/Distance.cpp.o.d"
  "/root/repo/src/liverange/LiveRanges.cpp" "src/CMakeFiles/ardf.dir/liverange/LiveRanges.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/liverange/LiveRanges.cpp.o.d"
  "/root/repo/src/machine/MachineIR.cpp" "src/CMakeFiles/ardf.dir/machine/MachineIR.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/machine/MachineIR.cpp.o.d"
  "/root/repo/src/machine/Simulator.cpp" "src/CMakeFiles/ardf.dir/machine/Simulator.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/machine/Simulator.cpp.o.d"
  "/root/repo/src/passes/LoopNormalize.cpp" "src/CMakeFiles/ardf.dir/passes/LoopNormalize.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/passes/LoopNormalize.cpp.o.d"
  "/root/repo/src/passes/Validate.cpp" "src/CMakeFiles/ardf.dir/passes/Validate.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/passes/Validate.cpp.o.d"
  "/root/repo/src/regalloc/IRIG.cpp" "src/CMakeFiles/ardf.dir/regalloc/IRIG.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/regalloc/IRIG.cpp.o.d"
  "/root/repo/src/scalardf/ScalarLiveness.cpp" "src/CMakeFiles/ardf.dir/scalardf/ScalarLiveness.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/scalardf/ScalarLiveness.cpp.o.d"
  "/root/repo/src/support/Rational.cpp" "src/CMakeFiles/ardf.dir/support/Rational.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/support/Rational.cpp.o.d"
  "/root/repo/src/transform/LoadElimination.cpp" "src/CMakeFiles/ardf.dir/transform/LoadElimination.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/transform/LoadElimination.cpp.o.d"
  "/root/repo/src/transform/LoopUnroll.cpp" "src/CMakeFiles/ardf.dir/transform/LoopUnroll.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/transform/LoopUnroll.cpp.o.d"
  "/root/repo/src/transform/Rewrite.cpp" "src/CMakeFiles/ardf.dir/transform/Rewrite.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/transform/Rewrite.cpp.o.d"
  "/root/repo/src/transform/StoreElimination.cpp" "src/CMakeFiles/ardf.dir/transform/StoreElimination.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/transform/StoreElimination.cpp.o.d"
  "/root/repo/src/unroll/RegisterPressure.cpp" "src/CMakeFiles/ardf.dir/unroll/RegisterPressure.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/unroll/RegisterPressure.cpp.o.d"
  "/root/repo/src/unroll/StmtDepGraph.cpp" "src/CMakeFiles/ardf.dir/unroll/StmtDepGraph.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/unroll/StmtDepGraph.cpp.o.d"
  "/root/repo/src/unroll/UnrollController.cpp" "src/CMakeFiles/ardf.dir/unroll/UnrollController.cpp.o" "gcc" "src/CMakeFiles/ardf.dir/unroll/UnrollController.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
