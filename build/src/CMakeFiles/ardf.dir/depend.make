# Empty dependencies file for ardf.
# This may be replaced when dependencies are built.
