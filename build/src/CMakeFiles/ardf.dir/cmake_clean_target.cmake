file(REMOVE_RECURSE
  "libardf.a"
)
