# Empty compiler generated dependencies file for bench_unroll.
# This may be replaced when dependencies are built.
