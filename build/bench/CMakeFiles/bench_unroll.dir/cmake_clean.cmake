file(REMOVE_RECURSE
  "CMakeFiles/bench_unroll.dir/bench_unroll.cpp.o"
  "CMakeFiles/bench_unroll.dir/bench_unroll.cpp.o.d"
  "bench_unroll"
  "bench_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
