file(REMOVE_RECURSE
  "CMakeFiles/bench_loads_fig7.dir/bench_loads_fig7.cpp.o"
  "CMakeFiles/bench_loads_fig7.dir/bench_loads_fig7.cpp.o.d"
  "bench_loads_fig7"
  "bench_loads_fig7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loads_fig7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
