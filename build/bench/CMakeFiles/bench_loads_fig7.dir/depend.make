# Empty dependencies file for bench_loads_fig7.
# This may be replaced when dependencies are built.
