file(REMOVE_RECURSE
  "CMakeFiles/bench_stores_fig6.dir/bench_stores_fig6.cpp.o"
  "CMakeFiles/bench_stores_fig6.dir/bench_stores_fig6.cpp.o.d"
  "bench_stores_fig6"
  "bench_stores_fig6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stores_fig6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
