# Empty dependencies file for bench_stores_fig6.
# This may be replaced when dependencies are built.
