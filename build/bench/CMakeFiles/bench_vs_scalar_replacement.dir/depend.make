# Empty dependencies file for bench_vs_scalar_replacement.
# This may be replaced when dependencies are built.
