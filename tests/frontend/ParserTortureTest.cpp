//===- tests/frontend/ParserTortureTest.cpp - Malformed-input torture -----===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the parser over hostile inputs -- truncated tokens, pathological
/// nesting, out-of-range subscripts, NUL bytes, random garbage, and the
/// checked-in fuzz corpus -- and asserts the recovery-mode contract on
/// every one: no crash, a failed parse carries located diagnostics, and
/// the recovered partial program round-trips through the pretty-printer.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace ardf;

namespace {

/// The invariant every torture input must satisfy, crash-freedom aside
/// (the test process itself enforces that one).
void expectRecovered(const std::string &Source, const std::string &Label) {
  ParseResult First = parseProgram(Source);
  if (!First.succeeded()) {
    ASSERT_FALSE(First.Diags.empty())
        << Label << ": failed parse without diagnostics";
    for (const ParseDiagnostic &D : First.Diags) {
      EXPECT_GE(D.Line, 1u) << Label;
      EXPECT_GE(D.Col, 1u) << Label;
    }
  }
  // The recovered (possibly partial) program must be well-formed: its
  // printed form parses cleanly and printing is a fixed point.
  std::string Printed = programToString(First.Prog);
  ParseResult Second = parseProgram(Printed);
  ASSERT_TRUE(Second.succeeded())
      << Label << ": partial program does not re-parse:\n"
      << Printed << Second.diagnosticsToString();
  EXPECT_EQ(programToString(Second.Prog), Printed) << Label;
}

const char ValidProgram[] =
    "array A[100]; array B[100];\n"
    "do i = 1, 100 {\n"
    "  A[i+1] = A[i] + B[2*i];\n"
    "  if (A[i] == 0) { B[i] = -1; } else { B[i] = A[i-1]; }\n"
    "}\n";

} // namespace

// Every byte-length prefix of a valid program: each one truncates some
// token or construct mid-flight.
TEST(ParserTortureTest, TruncatedPrefixes) {
  std::string Full = ValidProgram;
  for (size_t Len = 0; Len <= Full.size(); ++Len)
    expectRecovered(Full.substr(0, Len),
                    "prefix of length " + std::to_string(Len));
}

TEST(ParserTortureTest, DeepExpressionNesting) {
  // 100k open parens: without the parser's depth cap this is a stack
  // overflow, not a diagnostic.
  std::string Source = "x = ";
  Source.append(100000, '(');
  Source += "1";
  expectRecovered(Source, "100k open parens");

  // Balanced but far past the cap.
  std::string Balanced = "x = ";
  Balanced.append(5000, '(');
  Balanced += "1";
  Balanced.append(5000, ')');
  Balanced += ";";
  expectRecovered(Balanced, "5k balanced parens");

  ParseResult R = parseProgram(Balanced);
  ASSERT_FALSE(R.succeeded());
  bool SawDepth = false;
  for (const ParseDiagnostic &D : R.Diags)
    SawDepth |= D.Message.find("nesting too deep") != std::string::npos;
  EXPECT_TRUE(SawDepth);
}

TEST(ParserTortureTest, DeepStatementNesting) {
  std::string Source;
  for (int I = 0; I != 5000; ++I)
    Source += "do i = 1, 2 { ";
  Source += "x = 1;";
  expectRecovered(Source, "5k nested do loops");

  std::string Ifs;
  for (int I = 0; I != 5000; ++I)
    Ifs += "if (x) { ";
  Ifs += "y = 2;";
  expectRecovered(Ifs, "5k nested ifs");
}

TEST(ParserTortureTest, ModestNestingStillParses) {
  // The cap must not reject reasonable programs: 50 nested loops parse.
  std::string Source;
  for (int I = 0; I != 50; ++I)
    Source += "do i" + std::to_string(I) + " = 1, 2 { ";
  Source += "x = 1;";
  for (int I = 0; I != 50; ++I)
    Source += " }";
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.succeeded()) << R.diagnosticsToString();
}

TEST(ParserTortureTest, GiantSubscriptLiterals) {
  // Literals past int64 range used to escape as std::out_of_range from
  // std::stoll; now they are Error tokens with a located diagnostic.
  expectRecovered("do i = 1, 10 { A[99999999999999999999999999] = 1; }",
                  "overflowing subscript");
  expectRecovered("x = 18446744073709551617;", "overflowing rhs literal");
  ParseResult R = parseProgram("x = 99999999999999999999999999;");
  EXPECT_FALSE(R.succeeded());

  // The largest representable literal still parses fine.
  ParseResult Max = parseProgram("x = 9223372036854775807;");
  EXPECT_TRUE(Max.succeeded()) << Max.diagnosticsToString();
}

TEST(ParserTortureTest, NulAndHighBytes) {
  std::string Source = "do i = 1, 10 { A[i] = ";
  Source += '\0';
  Source += '\x01';
  Source += '\xff';
  Source += " 1; }";
  expectRecovered(Source, "NUL and high bytes mid-expression");

  std::string AllNul(64, '\0');
  expectRecovered(AllNul, "64 NUL bytes");
}

TEST(ParserTortureTest, DiagnosticFloodIsBounded) {
  // 50k stray tokens must not produce 50k diagnostics.
  std::string Source(50000, ']');
  ParseResult R = parseProgram(Source);
  ASSERT_FALSE(R.succeeded());
  EXPECT_LE(R.Diags.size(), 101u);
  EXPECT_NE(R.Diags.back().Message.find("too many errors"),
            std::string::npos);
}

TEST(ParserTortureTest, DeterministicGarbage) {
  // Deterministic xorshift byte soup; full byte range, varied lengths.
  uint64_t S = 0x9e3779b97f4a7c15ull;
  auto Next = [&S] {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  };
  for (int Case = 0; Case != 200; ++Case) {
    std::string Source;
    size_t Len = Next() % 512;
    for (size_t I = 0; I != Len; ++I)
      Source += static_cast<char>(Next() & 0xff);
    expectRecovered(Source, "garbage case " + std::to_string(Case));
  }
}

// The checked-in fuzz corpus doubles as a regression suite: every seed
// (and any crasher later minimized into the corpus) holds the contract.
TEST(ParserTortureTest, FuzzCorpusSeeds) {
  namespace fs = std::filesystem;
  fs::path Dir(ARDF_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(Dir)) << Dir;
  unsigned Count = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (!E.is_regular_file())
      continue;
    std::ifstream In(E.path(), std::ios::binary);
    ASSERT_TRUE(In.good()) << E.path();
    std::ostringstream SS;
    SS << In.rdbuf();
    expectRecovered(SS.str(), E.path().filename().string());
    ++Count;
  }
  EXPECT_GE(Count, 8u) << "fuzz corpus went missing";
}
