//===- tests/frontend/LexerTest.cpp - Tokenizer behavior -----------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

std::vector<TokenKind> kindsOf(const std::string &Src) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : lex(Src))
    Kinds.push_back(T.Kind);
  return Kinds;
}

} // namespace

TEST(LexerTest, Keywords) {
  auto K = kindsOf("array do if else");
  ASSERT_EQ(K.size(), 5u);
  EXPECT_EQ(K[0], TokenKind::KwArray);
  EXPECT_EQ(K[1], TokenKind::KwDo);
  EXPECT_EQ(K[2], TokenKind::KwIf);
  EXPECT_EQ(K[3], TokenKind::KwElse);
  EXPECT_EQ(K[4], TokenKind::EndOfFile);
}

TEST(LexerTest, IdentifiersAndIntegers) {
  std::vector<Token> Toks = lex("A2 _x 42");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[0].Text, "A2");
  EXPECT_EQ(Toks[1].Text, "_x");
  EXPECT_EQ(Toks[2].Kind, TokenKind::Integer);
  EXPECT_EQ(Toks[2].IntValue, 42);
}

TEST(LexerTest, TwoCharOperators) {
  auto K = kindsOf("== != <= >= && || < > = !");
  std::vector<TokenKind> Expected = {
      TokenKind::EqEq,    TokenKind::NotEq,     TokenKind::LessEq,
      TokenKind::GreaterEq, TokenKind::AmpAmp,  TokenKind::PipePipe,
      TokenKind::Less,    TokenKind::Greater,   TokenKind::Assign,
      TokenKind::Bang,    TokenKind::EndOfFile};
  EXPECT_EQ(K, Expected);
}

TEST(LexerTest, Punctuation) {
  auto K = kindsOf("( ) [ ] { } , ; + - * /");
  std::vector<TokenKind> Expected = {
      TokenKind::LParen,   TokenKind::RParen, TokenKind::LBracket,
      TokenKind::RBracket, TokenKind::LBrace, TokenKind::RBrace,
      TokenKind::Comma,    TokenKind::Semi,   TokenKind::Plus,
      TokenKind::Minus,    TokenKind::Star,   TokenKind::Slash,
      TokenKind::EndOfFile};
  EXPECT_EQ(K, Expected);
}

TEST(LexerTest, CommentsSkipped) {
  auto K = kindsOf("x // comment to end\ny");
  ASSERT_EQ(K.size(), 3u);
  EXPECT_EQ(K[0], TokenKind::Identifier);
  EXPECT_EQ(K[1], TokenKind::Identifier);
}

TEST(LexerTest, PositionsTracked) {
  std::vector<Token> Toks = lex("a\n  b");
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[0].Col, 1u);
  EXPECT_EQ(Toks[1].Line, 2u);
  EXPECT_EQ(Toks[1].Col, 3u);
}

TEST(LexerTest, UnknownCharacterIsError) {
  auto K = kindsOf("a @ b");
  ASSERT_EQ(K.size(), 4u);
  EXPECT_EQ(K[1], TokenKind::Error);
}

TEST(LexerTest, EmptyInput) {
  auto K = kindsOf("");
  ASSERT_EQ(K.size(), 1u);
  EXPECT_EQ(K[0], TokenKind::EndOfFile);
}
