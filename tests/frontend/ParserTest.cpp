//===- tests/frontend/ParserTest.cpp - Parser behavior -------------------===//

#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace ardf;

TEST(ParserTest, SimpleLoop) {
  ParseResult R = parseProgram("do i = 1, 10 { A[i] = A[i] + 1; }");
  ASSERT_TRUE(R.succeeded()) << R.diagnosticsToString();
  const DoLoopStmt *Loop = R.Prog.getFirstLoop();
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->getIndVar(), "i");
  EXPECT_EQ(Loop->getConstantTripCount(), 10);
  ASSERT_EQ(Loop->getBody().size(), 1u);
}

TEST(ParserTest, ArrayDeclarations) {
  ParseResult R = parseProgram("array A[100]; array X[N, M];");
  ASSERT_TRUE(R.succeeded()) << R.diagnosticsToString();
  ASSERT_NE(R.Prog.getArrayDecl("A"), nullptr);
  EXPECT_EQ(R.Prog.getArrayDecl("A")->getNumDims(), 1u);
  ASSERT_NE(R.Prog.getArrayDecl("X"), nullptr);
  EXPECT_EQ(R.Prog.getArrayDecl("X")->getNumDims(), 2u);
}

TEST(ParserTest, IfElse) {
  ParseResult R = parseProgram(
      "do i = 1, 10 { if (A[i] == 0) { x = 1; } else { x = 2; y = 3; } }");
  ASSERT_TRUE(R.succeeded()) << R.diagnosticsToString();
  const auto *IS =
      cast<IfStmt>(R.Prog.getFirstLoop()->getBody()[0].get());
  EXPECT_EQ(IS->getThen().size(), 1u);
  ASSERT_TRUE(IS->hasElse());
  EXPECT_EQ(IS->getElse().size(), 2u);
}

TEST(ParserTest, PrecedenceClimbs) {
  ParseResult R = parseProgram("x = a + b * c - d;");
  ASSERT_TRUE(R.succeeded());
  const auto *AS = cast<AssignStmt>(R.Prog.getStmts()[0].get());
  EXPECT_EQ(exprToString(*AS->getRHS()), "a + b * c - d");
  // a + (b*c), then subtraction left-assoc: (a + b*c) - d.
  const auto *Top = cast<BinaryExpr>(AS->getRHS());
  EXPECT_EQ(Top->getOp(), BinaryOpKind::Sub);
}

TEST(ParserTest, ParenthesesOverride) {
  ParseResult R = parseProgram("x = (a + b) * c;");
  ASSERT_TRUE(R.succeeded());
  const auto *AS = cast<AssignStmt>(R.Prog.getStmts()[0].get());
  const auto *Top = cast<BinaryExpr>(AS->getRHS());
  EXPECT_EQ(Top->getOp(), BinaryOpKind::Mul);
}

TEST(ParserTest, NegativeLiteralsAndUnary) {
  ParseResult R = parseProgram("x = -y + A[-1 * i];");
  ASSERT_TRUE(R.succeeded()) << R.diagnosticsToString();
}

TEST(ParserTest, NestedLoops) {
  ParseResult R = parseProgram(
      "do j = 1, M { do i = 1, N { X[i+1, j] = X[i, j]; } }");
  ASSERT_TRUE(R.succeeded()) << R.diagnosticsToString();
  const DoLoopStmt *Outer = R.Prog.getFirstLoop();
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->getIndVar(), "j");
  const auto *Inner = cast<DoLoopStmt>(Outer->getBody()[0].get());
  EXPECT_EQ(Inner->getIndVar(), "i");
}

TEST(ParserTest, StepClause) {
  ParseResult R = parseProgram("do i = 1, 10, 2 { x = i; } "
                               "do k = 10, 1, -1 { y = k; }");
  ASSERT_TRUE(R.succeeded()) << R.diagnosticsToString();
  const auto *First = cast<DoLoopStmt>(R.Prog.getStmts()[0].get());
  EXPECT_EQ(First->getStep(), 2);
  const auto *Second = cast<DoLoopStmt>(R.Prog.getStmts()[1].get());
  EXPECT_EQ(Second->getStep(), -1);
}

TEST(ParserTest, ErrorsAreReportedWithPositions) {
  ParseResult R = parseProgram("do i = 1 10 { }");
  ASSERT_FALSE(R.succeeded());
  EXPECT_FALSE(R.Diags.empty());
  EXPECT_EQ(R.Diags[0].Line, 1u);
}

TEST(ParserTest, RecoversAndKeepsGoing) {
  ParseResult R = parseProgram("x = ; y = 2;");
  EXPECT_FALSE(R.succeeded());
  // The second statement should still parse.
  bool FoundY = false;
  for (const StmtPtr &S : R.Prog.getStmts())
    if (const auto *AS = dyn_cast<AssignStmt>(S.get()))
      if (const auto *V = dyn_cast<VarRef>(AS->getLHS()))
        FoundY |= V->getName() == "y";
  EXPECT_TRUE(FoundY);
}

TEST(ParserTest, MultiDimReferences) {
  ParseResult R = parseProgram("Y[i, j + 1] = Y[i, j - 1];");
  ASSERT_TRUE(R.succeeded());
  const auto *AS = cast<AssignStmt>(R.Prog.getStmts()[0].get());
  ASSERT_NE(AS->getArrayTarget(), nullptr);
  EXPECT_EQ(AS->getArrayTarget()->getNumSubscripts(), 2u);
}

TEST(ParserTest, WhileLoop) {
  ParseResult R = parseProgram(
      "i = 1; while (i <= 10) { A[i] = A[i] + 1; i = i + 1; }");
  ASSERT_TRUE(R.succeeded()) << R.diagnosticsToString();
  ASSERT_EQ(R.Prog.getStmts().size(), 2u);
  const auto *WS = cast<WhileStmt>(R.Prog.getStmts()[1].get());
  const auto *Cond = cast<BinaryExpr>(WS->getCond());
  EXPECT_EQ(Cond->getOp(), BinaryOpKind::Le);
  EXPECT_EQ(WS->getBody().size(), 2u);
}

TEST(ParserTest, BreakStatement) {
  ParseResult R = parseProgram(
      "do i = 1, 10 { if (A[i] == 0) { break; } A[i] = 1; }");
  ASSERT_TRUE(R.succeeded()) << R.diagnosticsToString();
  const auto *IS = cast<IfStmt>(R.Prog.getFirstLoop()->getBody()[0].get());
  EXPECT_TRUE(isa<BreakStmt>(IS->getThen()[0].get()));
}

TEST(ParserTest, WhileRequiresParenthesizedCondition) {
  ParseResult R = parseProgram("while i <= 10 { i = i + 1; }");
  EXPECT_FALSE(R.succeeded());
}

TEST(ParserTest, BreakRequiresSemicolon) {
  ParseResult R = parseProgram("do i = 1, 10 { break }");
  EXPECT_FALSE(R.succeeded());
}

TEST(ParserTest, GeneralBoundsRoundTrip) {
  // Non-normalized bounds: expression lower bound, negative step.
  ParseResult R = parseProgram("do i = n + 1, 2 * m, -3 { A[i] = 0; }");
  ASSERT_TRUE(R.succeeded()) << R.diagnosticsToString();
  const DoLoopStmt *Loop = R.Prog.getFirstLoop();
  EXPECT_EQ(Loop->getStep(), -3);
  EXPECT_FALSE(Loop->isNormalized());
  std::string Printed = programToString(R.Prog);
  ParseResult Second = parseProgram(Printed);
  ASSERT_TRUE(Second.succeeded()) << Printed;
  EXPECT_TRUE(R.Prog.equals(Second.Prog)) << Printed;
}

TEST(ParserTest, WhileBreakRoundTrip) {
  const char *Source = "i = 0;\n"
                       "while (i < 8) {\n"
                       "  A[i] = A[i + 1];\n"
                       "  if (A[i] == 3) {\n"
                       "    break;\n"
                       "  }\n"
                       "  i = i + 2;\n"
                       "}\n";
  ParseResult First = parseProgram(Source);
  ASSERT_TRUE(First.succeeded()) << First.diagnosticsToString();
  std::string Printed = programToString(First.Prog);
  ParseResult Second = parseProgram(Printed);
  ASSERT_TRUE(Second.succeeded()) << Printed;
  EXPECT_TRUE(First.Prog.equals(Second.Prog)) << Printed;
  EXPECT_EQ(programToString(Second.Prog), Printed);
}

namespace {

/// Tiny deterministic generator for round-trip fuzzing.
struct FuzzRng {
  uint64_t S;
  explicit FuzzRng(uint64_t Seed) : S(Seed * 48271 + 11) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
};

void fuzzExpr(FuzzRng &R, unsigned Depth, std::string &Out) {
  if (Depth == 0 || R.range(0, 3) == 0) {
    switch (R.range(0, 2)) {
    case 0:
      Out += std::to_string(R.range(-9, 9));
      return;
    case 1:
      Out += static_cast<char>('a' + R.range(0, 3));
      return;
    default:
      Out += static_cast<char>('A' + R.range(0, 2));
      Out += "[i";
      if (R.range(0, 1)) {
        Out += " + ";
        Out += std::to_string(R.range(1, 4));
      }
      Out += "]";
      return;
    }
  }
  static const char *Ops[] = {" + ", " - ", " * ", " / "};
  Out += "(";
  fuzzExpr(R, Depth - 1, Out);
  Out += Ops[R.range(0, 3)];
  fuzzExpr(R, Depth - 1, Out);
  Out += ")";
}

std::string fuzzProgram(uint64_t Seed) {
  FuzzRng R(Seed);
  std::string Out;
  // Loop form: plain DO, DO with a step clause, or a counted while
  // (init + guard + trailing increment).
  unsigned Form = R.range(0, 3);
  if (Form == 3) {
    Out += "i = " + std::to_string(R.range(0, 3)) + ";\n";
    Out += "while (i " + std::string(R.range(0, 1) ? "<" : "<=") + " " +
           std::to_string(R.range(2, 50)) + ") {\n";
  } else {
    Out += "do i = " + std::to_string(R.range(1, 3)) + ", " +
           std::to_string(R.range(4, 50));
    if (Form == 2)
      Out += ", " + std::to_string(R.range(2, 4));
    Out += " {\n";
  }
  unsigned N = R.range(1, 5);
  for (unsigned S = 0; S != N; ++S) {
    bool Guarded = R.range(0, 3) == 0;
    if (Guarded) {
      Out += "if (";
      fuzzExpr(R, 1, Out);
      Out += " > 0) { ";
      if (Form != 3 && R.range(0, 3) == 0) {
        // Occasional guarded early exit (DO forms only, so the
        // while's increment stays reachable for the recognizer).
        Out += "break; }\n";
        continue;
      }
    }
    Out += static_cast<char>('A' + R.range(0, 2));
    Out += "[i] = ";
    fuzzExpr(R, R.range(1, 3), Out);
    Out += ";";
    if (Guarded)
      Out += " }";
    Out += "\n";
  }
  if (Form == 3)
    Out += "i = i + " + std::to_string(R.range(1, 3)) + ";\n";
  Out += "}\n";
  return Out;
}

} // namespace

// Property sweep: print(parse(x)) is a fixed point of parse-then-print
// for structurally varied generated programs.
TEST(ParserTest, RoundTripFuzz) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::string Source = fuzzProgram(Seed);
    ParseResult First = parseProgram(Source);
    ASSERT_TRUE(First.succeeded())
        << "seed " << Seed << ":\n" << Source
        << First.diagnosticsToString();
    std::string Printed = programToString(First.Prog);
    ParseResult Second = parseProgram(Printed);
    ASSERT_TRUE(Second.succeeded()) << "seed " << Seed << ":\n" << Printed;
    EXPECT_EQ(programToString(Second.Prog), Printed) << "seed " << Seed;
  }
}
